// Command twlsimd is the sharded simulation daemon: an HTTP service that
// accepts experiment-grid jobs (scheme × attack/benchmark × seed), runs the
// cells on a preemptible worker pool, streams per-cell progress as JSONL,
// and dedupes identical cells through a content-addressed on-disk result
// cache. Simulations are deterministic, so a cached cell is the cell.
//
//	twlsimd -data /var/lib/twlsimd &
//	curl -d '{"schemes":["TWL_swp","BWL"],"attacks":["repeat","scan"]}' localhost:8080/jobs
//	curl localhost:8080/jobs/job-0001-deadbeef
//	curl localhost:8080/metrics
//
// SIGINT/SIGTERM drain gracefully: in-flight cells stop at their next
// checkpoint (writing a final one), and a restarted daemon resumes every
// incomplete cell from its checkpoint to a bit-identical result. A SIGKILL
// loses at most one checkpoint interval.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"twl/internal/cliutil"
	"twl/internal/serve"
)

func main() {
	var (
		addr      = flag.String("addr", "localhost:8080", "listen address")
		dataDir   = flag.String("data", "", "service state directory (jobs, result cache, checkpoints); required")
		workers   = flag.Int("workers", 0, "simulation workers (0: GOMAXPROCS)")
		ckptEvery = flag.Uint64("checkpoint-every", 0, "per-cell checkpoint cadence in demand writes (0: simulator default)")
	)
	flag.Parse()

	cliutil.Check("twlsimd", cliutil.NoArgs(flag.Args()))
	cliutil.Check("twlsimd", cliutil.Required("-data", *dataDir))
	cliutil.Check("twlsimd", cliutil.NonNegativeInt("-workers", *workers))

	srv, err := serve.New(serve.Config{
		DataDir:         *dataDir,
		Workers:         *workers,
		CheckpointEvery: *ckptEvery,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "twlsimd:", err)
		os.Exit(1)
	}

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Printf("twlsimd: serving on http://%s (state in %s)\n", *addr, *dataDir)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Printf("twlsimd: %v, draining\n", sig)
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "twlsimd:", err)
		_ = srv.Close()
		os.Exit(1)
	}

	// Stop accepting requests, then drain the workers (each in-flight cell
	// stops at its next checkpoint and is persisted as pending).
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "twlsimd: shutdown:", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "twlsimd:", err)
	}
	if err := srv.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "twlsimd:", err)
		os.Exit(1)
	}
	fmt.Println("twlsimd: drained")
}
