package analytic

import (
	"math"
	"testing"
)

func TestNoWearLeveling(t *testing.T) {
	// Hottest share 1% on a page with endurance 1000, total 100000:
	// dies after 1000/0.01 = 100000 demand writes → normalized 1.0.
	got, err := NoWearLeveling(0.01, 1000, 100000)
	if err != nil || math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("got %v, %v", got, err)
	}
	if _, err := NoWearLeveling(0, 1, 1); err == nil {
		t.Fatal("zero share accepted")
	}
	if _, err := NoWearLeveling(0.5, 0, 1); err == nil {
		t.Fatal("zero endurance accepted")
	}
}

func TestUniformLeveling(t *testing.T) {
	end := []uint64{80, 100, 120}
	// min 80, total 300, n 3 → 240/300 = 0.8; with 25% overhead → 0.64.
	got, err := UniformLeveling(end, 0.25)
	if err != nil || math.Abs(got-0.64) > 1e-12 {
		t.Fatalf("got %v, %v", got, err)
	}
	if _, err := UniformLeveling(nil, 0); err == nil {
		t.Fatal("empty map accepted")
	}
	if _, err := UniformLeveling(end, -1); err == nil {
		t.Fatal("negative overhead accepted")
	}
}

func TestRemainingLeveling(t *testing.T) {
	end := []uint64{100, 100}
	// quantum 10: usable 180/200 = 0.9.
	got, err := RemainingLeveling(end, 0, 10)
	if err != nil || math.Abs(got-0.9) > 1e-12 {
		t.Fatalf("got %v, %v", got, err)
	}
	// Huge quantum clamps at zero.
	got, err = RemainingLeveling(end, 0, 1e9)
	if err != nil || got != 0 {
		t.Fatalf("clamp got %v, %v", got, err)
	}
}

func TestTWLPairBoundSWPBeatsAdjacent(t *testing.T) {
	// Endurances with real spread: SWP pairs have near-equal sums, adjacent
	// pairing leaves a weak-weak pair.
	end := []uint64{50, 60, 140, 150}
	swp, err := PairStrongWeak(end)
	if err != nil {
		t.Fatal(err)
	}
	ap, err := PairAdjacent(end)
	if err != nil {
		t.Fatal(err)
	}
	bSWP, err := TWLPairBound(swp, 0)
	if err != nil {
		t.Fatal(err)
	}
	bAP, err := TWLPairBound(ap, 0)
	if err != nil {
		t.Fatal(err)
	}
	// SWP sums: 50+150=200, 60+140=200 → min 200 → bound 1.0.
	if math.Abs(bSWP-1.0) > 1e-12 {
		t.Fatalf("SWP bound %v, want 1.0", bSWP)
	}
	// Adjacent sums: 110, 290 → min 110 → bound 2×110/400 = 0.55.
	if math.Abs(bAP-0.55) > 1e-12 {
		t.Fatalf("adjacent bound %v, want 0.55", bAP)
	}
	if bSWP <= bAP {
		t.Fatal("SWP bound not above adjacent")
	}
}

func TestPairingValidation(t *testing.T) {
	if _, err := PairStrongWeak([]uint64{1, 2, 3}); err == nil {
		t.Fatal("odd count accepted")
	}
	if _, err := PairAdjacent(nil); err == nil {
		t.Fatal("empty accepted")
	}
	if _, err := TWLPairBound(nil, 0); err == nil {
		t.Fatal("no pairs accepted")
	}
}

func TestSwapProbabilityCases(t *testing.T) {
	// The four cases of Section 4.2.
	// Case 1: E_A ≈ E_B (r=1) → 1/2 for any p.
	for _, p := range []float64{0, 0.3, 0.5, 1} {
		got, err := SwapProbability(p, 1)
		if err != nil || math.Abs(got-0.5) > 1e-12 {
			t.Fatalf("case 1 p=%v: %v, %v", p, got, err)
		}
	}
	// Case 2: r → ∞, p → 1: swap → 0.
	got, _ := SwapProbability(1, 1e9)
	if got > 1e-8 {
		t.Fatalf("case 2: %v", got)
	}
	// Case 3: r → ∞, p → 0: swap → 1.
	got, _ = SwapProbability(0, 1e9)
	if got < 1-1e-8 {
		t.Fatalf("case 3: %v", got)
	}
	// Case 4: p = 1/2 → 1/2 regardless of r.
	got, _ = SwapProbability(0.5, 7)
	if math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("case 4: %v", got)
	}
	if _, err := SwapProbability(-0.1, 2); err == nil {
		t.Fatal("bad p accepted")
	}
	if _, err := SwapProbability(0.5, 0.5); err == nil {
		t.Fatal("r < 1 accepted")
	}
}
