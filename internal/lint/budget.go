package lint

import (
	"bufio"
	"bytes"
	"fmt"
	"go/ast"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// The hotpath allocation budget turns the fast-path performance work (run
// fast-forward, event horizons, bulk wear) into a statically gated
// invariant: functions annotated //twl:hotpath have the compiler's escape
// analysis output (go build -gcflags=-m) captured, and every heap
// allocation the compiler reports inside such a function is diffed against
// the committed twlint.budget file. A new allocation in a hot path fails
// `make lint` instead of silently costing ~25ns per write in a loop that
// runs 10^8 times per lifetime.
//
// The budget file records one block per annotated function —
//
//	<import-path> <func> <alloc-count>
//		<escape message>        (one indented line per allocation)
//
// keyed by message text, not source position, so unrelated edits that only
// shift line numbers do not churn the file. Regenerate with
// `twlint -update-budget` (or `make budget`, which also fails when
// regeneration changes the committed file).

// hotFunc is one //twl:hotpath-annotated function: where it lives and the
// line range its escape diagnostics attribute to.
type hotFunc struct {
	pkg        string // import path
	name       string // receiver-qualified: "(*Device).WriteN" or "RunLifetime"
	file       string // absolute path of the declaring file
	start, end int    // inclusive line range of the declaration
	dir        string // package directory (the go build argument)
	pos        string // "file:line:col" of the declaration, for diagnostics
}

// hotName renders the receiver-qualified function name.
func hotName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	recv := ""
	switch t := fd.Recv.List[0].Type.(type) {
	case *ast.StarExpr:
		if id, ok := t.X.(*ast.Ident); ok {
			recv = "(*" + id.Name + ")"
		}
	case *ast.Ident:
		recv = "(" + t.Name + ")"
	}
	if recv == "" {
		return fd.Name.Name
	}
	return recv + "." + fd.Name.Name
}

// isHotpath reports whether the function declaration carries the
// //twl:hotpath directive in its doc comment (directive position only, like
// //go: comments — prose mentions do not count).
func isHotpath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(c.Text, "//twl:hotpath") {
			return true
		}
	}
	return false
}

// findHotpathFuncs scans the loaded packages for //twl:hotpath functions.
func findHotpathFuncs(pkgs []*Package) []hotFunc {
	var hot []hotFunc
	for _, p := range pkgs {
		for _, f := range p.Files {
			if testSupport(f) {
				continue
			}
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || !isHotpath(fd) {
					continue
				}
				start := p.Fset.Position(fd.Pos())
				end := p.Fset.Position(fd.End())
				abs, err := filepath.Abs(start.Filename)
				if err != nil {
					abs = start.Filename
				}
				hot = append(hot, hotFunc{
					pkg:   p.Path,
					name:  hotName(fd),
					file:  abs,
					start: start.Line,
					end:   end.Line,
					dir:   p.Dir,
					pos:   fmt.Sprintf("%s:%d:%d", relPath(start.Filename), start.Line, start.Column),
				})
			}
		}
	}
	sort.Slice(hot, func(i, j int) bool {
		if hot[i].pkg != hot[j].pkg {
			return hot[i].pkg < hot[j].pkg
		}
		return hot[i].name < hot[j].name
	})
	return hot
}

// escapeDiag is one parsed escape-analysis line: an allocation the compiler
// placed on the heap.
type escapeDiag struct {
	file      string // absolute path
	line, col int
	msg       string
}

// heapMessage reports whether an escape-analysis message describes a heap
// allocation (as opposed to inlining decisions, "does not escape" results,
// or parameter leak summaries).
func heapMessage(msg string) bool {
	return strings.HasSuffix(msg, "escapes to heap") || strings.HasPrefix(msg, "moved to heap")
}

// collectEscapes compiles the given package directories with -gcflags=-m
// and parses the heap-allocation diagnostics. The go build cache replays
// compiler diagnostics for unchanged packages, so repeated runs are cheap.
// dirs are passed verbatim as go build arguments; relative positions in the
// output are resolved against the working directory.
func collectEscapes(dirs []string) ([]escapeDiag, error) {
	if len(dirs) == 0 {
		return nil, nil
	}
	args := append([]string{"build", "-gcflags=-m"}, dirs...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go build -gcflags=-m: %v\n%s", err, stderr.String())
	}
	wd, err := os.Getwd()
	if err != nil {
		return nil, err
	}
	var out []escapeDiag
	sc := bufio.NewScanner(&stderr)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "#") {
			continue
		}
		d, ok := parseEscapeLine(line)
		if !ok || !heapMessage(d.msg) {
			continue
		}
		if !filepath.IsAbs(d.file) {
			d.file = filepath.Join(wd, d.file)
		}
		out = append(out, d)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// parseEscapeLine splits "file.go:12:34: message".
func parseEscapeLine(line string) (escapeDiag, bool) {
	var d escapeDiag
	rest := line
	for i := 0; i < 2; i++ { // message may itself contain ": "
		idx := strings.Index(rest, ".go:")
		if idx < 0 {
			return d, false
		}
		rest = rest[idx+len(".go:"):]
		break
	}
	fileEnd := strings.Index(line, ".go:") + len(".go")
	d.file = line[:fileEnd]
	parts := strings.SplitN(line[fileEnd+1:], ":", 3)
	if len(parts) != 3 {
		return d, false
	}
	ln, err1 := strconv.Atoi(parts[0])
	col, err2 := strconv.Atoi(parts[1])
	if err1 != nil || err2 != nil {
		return d, false
	}
	d.line, d.col = ln, col
	d.msg = strings.TrimSpace(parts[2])
	return d, true
}

// budgetKey identifies one hotpath function in the budget file.
func budgetKey(pkg, name string) string { return pkg + " " + name }

// observedBudget attributes the escape diagnostics to the hotpath
// functions, returning the per-function sorted allocation messages (every
// hot function gets an entry, possibly empty) and, alongside, the source
// position of each allocation for precise diagnostics.
func observedBudget(hot []hotFunc, escapes []escapeDiag) (map[string][]string, map[string]string) {
	obs := make(map[string][]string, len(hot))
	pos := map[string]string{}
	for _, h := range hot {
		key := budgetKey(h.pkg, h.name)
		if _, ok := obs[key]; !ok {
			obs[key] = nil
		}
		for _, e := range escapes {
			if e.file != h.file || e.line < h.start || e.line > h.end {
				continue
			}
			obs[key] = append(obs[key], e.msg)
			if _, ok := pos[key+" "+e.msg]; !ok {
				pos[key+" "+e.msg] = fmt.Sprintf("%s:%d:%d", relPath(e.file), e.line, e.col)
			}
		}
		sort.Strings(obs[key])
	}
	return obs, pos
}

// formatBudget renders the budget file deterministically.
func formatBudget(hot []hotFunc, obs map[string][]string) string {
	var b strings.Builder
	b.WriteString(`# twlint.budget — the hotpath allocation budget (DESIGN.md "Static
# contracts"). One block per //twl:hotpath function:
#
#	<import-path> <function> <heap-allocation-count>
#		<escape-analysis message>   (one indented line per allocation)
#
# Allocations are keyed by escape-analysis message, not source position, so
# line-number churn does not touch this file. Regenerate with make budget
# (or: go run ./cmd/twlint -update-budget ./...); make lint fails when the
# compiler reports an allocation this file does not record.
`)
	for _, h := range hot {
		key := budgetKey(h.pkg, h.name)
		msgs := obs[key]
		fmt.Fprintf(&b, "%s %s %d\n", h.pkg, h.name, len(msgs))
		for _, m := range msgs {
			fmt.Fprintf(&b, "\t%s\n", m)
		}
	}
	return b.String()
}

// parseBudget reads a budget file into the same shape observedBudget
// produces.
func parseBudget(path string) (map[string][]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer func() { _ = f.Close() }() // read side: Close cannot lose data
	want := map[string][]string{}
	sc := bufio.NewScanner(f)
	cur := ""
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if strings.HasPrefix(strings.TrimSpace(text), "#") || strings.TrimSpace(text) == "" {
			continue
		}
		if strings.HasPrefix(text, "\t") {
			if cur == "" {
				return nil, fmt.Errorf("%s:%d: allocation line before any function line", path, line)
			}
			want[cur] = append(want[cur], strings.TrimPrefix(text, "\t"))
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 3 {
			return nil, fmt.Errorf("%s:%d: want \"pkg func count\", got %q", path, line, text)
		}
		n, err := strconv.Atoi(fields[2])
		if err != nil {
			return nil, fmt.Errorf("%s:%d: bad count %q", path, line, fields[2])
		}
		cur = fields[0] + " " + fields[1]
		want[cur] = make([]string, 0, n)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return want, nil
}

// CheckBudget runs the hotpath allocation-budget phase over the loaded
// packages: find the //twl:hotpath functions, capture the escape analysis
// of their packages, and diff the observed heap allocations against the
// budget file at path. With update set, the file is rewritten from the
// observation instead and no diff diagnostics are produced.
func CheckBudget(pkgs []*Package, path string, update bool) ([]Diagnostic, error) {
	hot := findHotpathFuncs(pkgs)
	dirSet := map[string]bool{}
	dirs := make([]string, 0, 8)
	for _, h := range hot {
		dir := h.dir
		if !filepath.IsAbs(dir) && !strings.HasPrefix(dir, "./") {
			// A bare relative path would be taken as an import path by the
			// go tool; anchor it as a filesystem path.
			dir = "./" + dir
		}
		if !dirSet[dir] {
			dirSet[dir] = true
			dirs = append(dirs, dir)
		}
	}
	sort.Strings(dirs)
	escapes, err := collectEscapes(dirs)
	if err != nil {
		return nil, err
	}
	obs, obsPos := observedBudget(hot, escapes)
	if update {
		if err := os.WriteFile(path, []byte(formatBudget(hot, obs)), 0o644); err != nil {
			return nil, err
		}
		return nil, nil
	}
	want, err := parseBudget(path)
	if err != nil {
		return nil, fmt.Errorf("reading hotpath budget: %w (run -update-budget to create it)", err)
	}
	return diffBudget(hot, obs, obsPos, want, path), nil
}

// diffBudget compares the observed allocations against the committed
// budget, most specific position first.
func diffBudget(hot []hotFunc, obs map[string][]string, obsPos map[string]string, want map[string][]string, path string) []Diagnostic {
	var diags []Diagnostic
	seen := map[string]bool{}
	for _, h := range hot {
		key := budgetKey(h.pkg, h.name)
		if seen[key] {
			continue
		}
		seen[key] = true
		wantMsgs, inBudget := want[key]
		if !inBudget {
			diags = append(diags, Diagnostic{
				Analyzer: "hotpath", Package: h.pkg, Pos: h.pos,
				Message: fmt.Sprintf("//twl:hotpath function %s is not recorded in %s; run make budget (twlint -update-budget) to admit it", h.name, relPath(path)),
			})
			continue
		}
		diags = append(diags, diffAllocs(h, key, obs[key], wantMsgs, obsPos, path)...)
	}
	// Budget entries whose function no longer exists (renamed, annotation
	// dropped) are stale and must be pruned so the file stays the exact
	// inventory of hot paths.
	keys := make([]string, 0, len(want))
	for k := range want {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if seen[k] {
			continue
		}
		fields := strings.Fields(k)
		pkg := ""
		if len(fields) > 0 {
			pkg = fields[0]
		}
		diags = append(diags, Diagnostic{
			Analyzer: "hotpath", Package: pkg, Pos: relPath(path) + ":1:1",
			Message: fmt.Sprintf("budget entry %q matches no //twl:hotpath function; run make budget to prune it", k),
		})
	}
	return diags
}

// diffAllocs diffs one function's observed allocation multiset against the
// budgeted one.
func diffAllocs(h hotFunc, key string, got, wantMsgs []string, obsPos map[string]string, path string) []Diagnostic {
	count := func(msgs []string) map[string]int {
		m := map[string]int{}
		for _, s := range msgs {
			m[s]++
		}
		return m
	}
	gotN, wantN := count(got), count(wantMsgs)
	var diags []Diagnostic
	reported := map[string]bool{}
	for _, msg := range got {
		if reported[msg] {
			continue
		}
		reported[msg] = true
		if gotN[msg] > wantN[msg] {
			pos := obsPos[key+" "+msg]
			if pos == "" {
				pos = h.pos
			}
			diags = append(diags, Diagnostic{
				Analyzer: "hotpath", Package: h.pkg, Pos: pos,
				Message: fmt.Sprintf("new heap allocation in //twl:hotpath function %s: %q (%d observed, budget allows %d); remove the allocation or re-budget with make budget", h.name, msg, gotN[msg], wantN[msg]),
			})
		}
	}
	wantSorted := append([]string(nil), wantMsgs...)
	sort.Strings(wantSorted)
	for _, msg := range wantSorted {
		if reported[msg] {
			continue
		}
		reported[msg] = true
		if wantN[msg] > gotN[msg] {
			diags = append(diags, Diagnostic{
				Analyzer: "hotpath", Package: h.pkg, Pos: h.pos,
				Message: fmt.Sprintf("budgeted allocation in %s no longer observed: %q; run make budget to tighten %s", h.name, msg, relPath(path)),
			})
		}
	}
	return diags
}
