package sim

import (
	"math"
	"testing"

	"twl/internal/rng"
)

// TestShardRequestsAgainstInterleaver pins ShardRequests/GlobalIndex to a
// literal round-robin walk: deal `total` requests across S shards one at a
// time and compare every count against the closed form.
func TestShardRequestsAgainstInterleaver(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 7, 32, 128} {
		for _, total := range []uint64{0, 1, 2, 5, 127, 128, 129, 1000, 4096} {
			counts := make([]uint64, shards)
			for tt := uint64(1); tt <= total; tt++ {
				counts[(tt-1)%uint64(shards)]++
			}
			for k := 0; k < shards; k++ {
				if got := ShardRequests(total, k, shards); got != counts[k] {
					t.Fatalf("ShardRequests(%d, %d, %d) = %d, interleaver says %d",
						total, k, shards, got, counts[k])
				}
			}
			if err := CheckQuotaSum(total, shards); err != nil {
				t.Fatalf("total %d shards %d: %v", total, shards, err)
			}
		}
	}
}

// TestGlobalIndexRoundTrip: the d-th request of shard k sits at a global
// position that ShardRequests maps back to exactly d requests for k.
func TestGlobalIndexRoundTrip(t *testing.T) {
	for _, shards := range []int{1, 2, 16, 128} {
		for k := 0; k < shards; k++ {
			for _, d := range []uint64{1, 2, 100, 1 << 30} {
				g := GlobalIndex(d, k, shards)
				if got := ShardRequests(g, k, shards); got != d {
					t.Fatalf("shards=%d k=%d d=%d: GlobalIndex=%d, ShardRequests back = %d",
						shards, k, d, g, got)
				}
				// The position one earlier holds one request less for k.
				if got := ShardRequests(g-1, k, shards); got != d-1 {
					t.Fatalf("shards=%d k=%d d=%d: ShardRequests(g-1) = %d, want %d",
						shards, k, d, got, d-1)
				}
			}
		}
	}
}

// TestMergeScoutAgainstInterleaver simulates random per-shard failure
// points, finds the global first failure by literally walking the
// round-robin stream, and requires MergeScout to agree.
func TestMergeScoutAgainstInterleaver(t *testing.T) {
	drv := rng.NewXorshift(42)
	for trial := 0; trial < 200; trial++ {
		shards := 1 + drv.Intn(16)
		outcomes := make([]ShardOutcome, shards)
		for k := range outcomes {
			outcomes[k] = ShardOutcome{Demand: uint64(1 + drv.Intn(50)), Failed: drv.Intn(3) > 0}
		}

		// Reference: deal global requests one at a time; shard k dies when
		// its local count reaches outcomes[k].Demand (if Failed).
		refWinner, refGlobal := -1, uint64(0)
		local := make([]uint64, shards)
	walk:
		for g := uint64(1); ; g++ {
			k := int((g - 1) % uint64(shards))
			local[k]++
			if outcomes[k].Failed && local[k] == outcomes[k].Demand {
				refWinner, refGlobal = k, g
				break walk
			}
			allDone := true
			for i := range outcomes {
				if local[i] < outcomes[i].Demand {
					allDone = false
					break
				}
			}
			if allDone {
				break walk
			}
		}

		winner, global, failed := MergeScout(outcomes)
		if refWinner < 0 {
			if failed {
				t.Fatalf("trial %d: MergeScout failed=%v, reference saw no failure (outcomes %+v)",
					trial, failed, outcomes)
			}
			var sum uint64
			for _, o := range outcomes {
				sum += o.Demand
			}
			if global != sum {
				t.Fatalf("trial %d: capped global %d, want demand sum %d", trial, global, sum)
			}
			continue
		}
		if !failed || winner != refWinner || global != refGlobal {
			t.Fatalf("trial %d: MergeScout = (%d, %d, %v), reference = (%d, %d) (outcomes %+v)",
				trial, winner, global, failed, refWinner, refGlobal, outcomes)
		}
		// Phase-2 consistency: the winner's quota is its scout demand, every
		// other shard's quota is strictly below its survival point.
		for i, o := range outcomes {
			q := ShardQuota(global, i, shards)
			if i == winner {
				if q != o.Demand {
					t.Fatalf("trial %d: winner quota %d != scout demand %d", trial, q, o.Demand)
				}
			} else if o.Failed && q >= o.Demand {
				t.Fatalf("trial %d: shard %d quota %d not below its failure point %d",
					trial, i, q, o.Demand)
			}
		}
		if err := CheckQuotaSum(global, shards); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

// TestShardRequestsNoOverflow exercises totals at the uint64 ceiling.
func TestShardRequestsNoOverflow(t *testing.T) {
	const shards = 128
	total := uint64(math.MaxUint64)
	var prev uint64 = math.MaxUint64
	for k := 0; k < shards; k++ {
		got := ShardRequests(total, k, shards)
		if got == 0 || got > total {
			t.Fatalf("ShardRequests(MaxUint64, %d, %d) = %d out of range", k, shards, got)
		}
		if got > prev {
			t.Fatalf("shard %d count %d exceeds shard %d count %d (must be non-increasing)",
				k, got, k-1, prev)
		}
		prev = got
	}
}
