package report

import (
	"strings"
	"testing"
)

func TestHeatmapRender(t *testing.T) {
	h := NewHeatmap("Wear", []float64{0, 0.5, 1.0, 0.25}, 2)
	out := h.String()
	if !strings.Contains(out, "Wear") {
		t.Fatal("title missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + 2 data rows + legend
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if len([]rune(lines[1])) != 2 || len([]rune(lines[2])) != 2 {
		t.Fatalf("row widths wrong:\n%s", out)
	}
	// Max value renders darkest; zero renders blank.
	if r := []rune(lines[2])[0]; r != '@' {
		t.Fatalf("max cell = %q, want '@'", r)
	}
	if r := []rune(lines[1])[0]; r != ' ' {
		t.Fatalf("zero cell = %q, want blank", r)
	}
}

func TestHeatmapAllZero(t *testing.T) {
	h := NewHeatmap("", []float64{0, 0, 0}, 8)
	out := h.String() // must not panic or divide by zero
	if !strings.Contains(out, "scale") {
		t.Fatal("legend missing")
	}
}

func TestHeatmapNonZeroVisible(t *testing.T) {
	// A tiny non-zero value must not render as blank.
	h := NewHeatmap("", []float64{0.001, 1000}, 2)
	row := strings.Split(h.String(), "\n")[0]
	if []rune(row)[0] == ' ' {
		t.Fatal("tiny value rendered invisible")
	}
}

func TestHeatmapDefaultWidth(t *testing.T) {
	h := NewHeatmap("", make([]float64, 100), 0)
	if h.width != 64 {
		t.Fatalf("default width %d", h.width)
	}
}
