// detector_study contrasts the two defense philosophies around the paper:
// reactive (detect the malicious stream, then respond — references [11]/[7],
// implemented here as the detector-driven RBSG) versus structural (TWL,
// which needs no detection because there is no prediction to mislead).
//
// The detector's two statistics stream live for each workload, then the
// lifetime comparison shows where reaction lags structure.
//
//	go run ./examples/detector_study
package main

import (
	"fmt"
	"log"

	"twl"
	"twl/internal/attack"
	"twl/internal/sim"
	"twl/internal/trace"
)

func main() {
	const pages = 512

	fmt.Println("=== What the detector sees ===")
	fmt.Println()
	fmt.Printf("%-22s %13s %12s %8s\n", "write stream", "concentration", "correlation", "alarm")
	observe := func(name string, next func() (int, bool)) {
		d, err := twl.NewDetector(pages)
		if err != nil {
			log.Fatal(err)
		}
		writes := 0
		for writes < 200000 {
			addr, w := next()
			if !w {
				continue
			}
			d.Observe(addr)
			writes++
		}
		st := d.Stats()
		fmt.Printf("%-22s %13.3f %12.3f %8v\n", name, st.Concentration, st.Correlation, d.EverAlarmed())
	}

	benign, err := trace.BenchmarkByName("canneal")
	if err != nil {
		log.Fatal(err)
	}
	g, err := trace.NewSynthetic(benign, pages, 3)
	if err != nil {
		log.Fatal(err)
	}
	observe("benign (canneal)", g.Next)

	for _, mode := range []twl.AttackMode{twl.AttackRepeat, twl.AttackInconsistent, twl.AttackScan} {
		st, err := attack.New(attack.DefaultConfig(mode, pages, 7))
		if err != nil {
			log.Fatal(err)
		}
		fb := attack.Feedback{}
		observe(mode.String()+" attack", func() (int, bool) { return st.Next(fb), true })
	}

	fmt.Println()
	fmt.Println("Repeat screams (concentration ~1); the inconsistent attack betrays")
	fmt.Println("itself through anti-correlated windows; scan is indistinguishable from")
	fmt.Println("a benign streaming workload — detection alone cannot cover everything.")
	fmt.Println()

	fmt.Println("=== Reaction vs structure, under the inconsistent attack ===")
	fmt.Println()
	sys := twl.SystemConfig{Pages: pages, PageSize: 4096, MeanEndurance: 5000, SigmaFraction: 0.11, Seed: 9}
	for _, scheme := range []string{"RBSG", "TWL_swp"} {
		dev, err := sys.NewDevice()
		if err != nil {
			log.Fatal(err)
		}
		s, err := twl.NewScheme(scheme, dev, 11)
		if err != nil {
			log.Fatal(err)
		}
		logical := dev.Pages()
		if z, ok := s.(interface{ LogicalPages() int }); ok {
			logical = z.LogicalPages()
		}
		st, err := attack.New(attack.DefaultConfig(attack.Inconsistent, logical, 13))
		if err != nil {
			log.Fatal(err)
		}
		res, err := sim.RunLifetime(s, sim.FromAttack(st), sim.LifetimeConfig{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s survives %5.1f%% of ideal lifetime\n", scheme, 100*res.Normalized)
	}
	fmt.Println()
	fmt.Println("RBSG's detector fires and its relocation chases the hot set, but the")
	fmt.Println("attack reverses faster than any reaction; TWL's endurance-proportional")
	fmt.Println("toss-up never needed to know it was under attack.")
}
