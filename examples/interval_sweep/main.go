// interval_sweep reproduces the Figure 7 design exploration: how the
// toss-up interval trades swap overhead (panel a) against attack lifetime
// (panel b), using the public API directly rather than the canned
// experiment runner — a template for exploring custom TWL configurations.
//
//	go run ./examples/interval_sweep
package main

import (
	"fmt"
	"log"

	"twl"
	"twl/internal/attack"
	"twl/internal/sim"
	"twl/internal/trace"
)

func main() {
	sys := twl.SystemConfig{
		Pages: 1024, PageSize: 4096, MeanEndurance: 10000, SigmaFraction: 0.11, Seed: 8,
	}
	bench, err := trace.BenchmarkByName("canneal")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("interval  swap/write ratio  scan-attack lifetime")
	for _, interval := range []int{1, 2, 4, 8, 16, 32, 64, 128} {
		cfg := twl.TWLConfig{
			Pairing:               twl.PairStrongWeak,
			TossUpInterval:        interval,
			InterPairSwapInterval: 128,
			Seed:                  5,
			UseFeistel:            true,
		}

		// Panel (a): swap overhead under benign traffic.
		dev, err := sys.NewDevice()
		if err != nil {
			log.Fatal(err)
		}
		engine, err := twl.NewTWL(dev, cfg)
		if err != nil {
			log.Fatal(err)
		}
		g, err := trace.NewSynthetic(bench, sys.Pages, 3)
		if err != nil {
			log.Fatal(err)
		}
		for i := 0; i < 200000; i++ {
			if addr, write := g.Next(); write {
				_ = engine.Write(addr, uint64(i)) // ratio experiment: only Stats matter
			}
		}
		ratio := engine.Stats().SwapWriteRatio()

		// Panel (b): lifetime under the scan attack.
		dev2, err := sys.NewDevice()
		if err != nil {
			log.Fatal(err)
		}
		engine2, err := twl.NewTWL(dev2, cfg)
		if err != nil {
			log.Fatal(err)
		}
		st, err := attack.New(attack.DefaultConfig(attack.Scan, sys.Pages, 7))
		if err != nil {
			log.Fatal(err)
		}
		res, err := sim.RunLifetime(engine2, sim.FromAttack(st), sim.LifetimeConfig{})
		if err != nil {
			log.Fatal(err)
		}
		years := res.Years(twl.IdealYears(8e9))
		marker := ""
		if interval == 32 {
			marker = "   <- the paper's choice"
		}
		fmt.Printf("%8d  %16.4f  %17.2f y%s\n", interval, ratio, years, marker)
	}

	fmt.Println("\nSmaller intervals toss more often and pay more swap writes; the paper")
	fmt.Println("picks 32 to keep overhead near 2% while clearing the 3-year server floor.")
}
