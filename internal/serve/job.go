package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"twl"
	"twl/internal/cache"
	"twl/internal/obs"
)

// JobSpec is the wire format of one experiment grid: the cross product of
// schemes × workloads × seeds over one system configuration. Zero-valued
// system fields take the SmallSystem defaults, so a minimal job is just
// {"schemes": ["TWL_swp"], "attacks": ["repeat"]}.
type JobSpec struct {
	// Schemes lists the wear-leveling schemes (SchemeNames vocabulary,
	// case-insensitive; canonicalized on submit).
	Schemes []string `json:"schemes"`
	// Attacks and Benches list the workloads; at least one of the two must
	// be non-empty. Every scheme runs against every workload.
	Attacks []string `json:"attacks,omitempty"`
	Benches []string `json:"benches,omitempty"`
	// Seeds lists the system seeds (default: [1]). Every scheme × workload
	// pair runs once per seed.
	Seeds []uint64 `json:"seeds,omitempty"`

	// System configuration; zero values take the SmallSystem defaults.
	Pages         int     `json:"pages,omitempty"`
	PageSize      int     `json:"page_size,omitempty"`
	MeanEndurance float64 `json:"mean_endurance,omitempty"`
	SigmaFraction float64 `json:"sigma_fraction,omitempty"`
	Packed        bool    `json:"packed,omitempty"`

	// Shards > 0 routes attack cells through the bank-sharded runner
	// (Pages must divide evenly). Bench cells cannot shard — the runner
	// rejects them with ErrUnshardableSource and the service falls back to
	// the unsharded path automatically.
	Shards int `json:"shards,omitempty"`
	// MaxDemandWrites caps each cell (0: the simulator default, 2 × total
	// endurance).
	MaxDemandWrites uint64 `json:"max_demand_writes,omitempty"`
}

// dedupe drops later duplicates from a grid axis, preserving first-seen
// order. Axes must be duplicate-free after canonicalization so one job
// never expands to two cells with the same key — same-key cells share
// checkpoint paths and may only ever run one at a time (the server
// serializes them across jobs; within a job they must not exist at all).
func dedupe[T comparable](in []T) []T {
	seen := make(map[T]struct{}, len(in))
	out := in[:0]
	for _, v := range in {
		if _, ok := seen[v]; ok {
			continue
		}
		seen[v] = struct{}{}
		out = append(out, v)
	}
	return out
}

// normalize validates the spec, fills defaults, canonicalizes scheme names
// and drops duplicate axis entries, so equivalent submissions derive
// identical cell keys and no job holds two cells with the same key.
func (sp *JobSpec) normalize() error {
	if len(sp.Schemes) == 0 {
		return fmt.Errorf("serve: job needs at least one scheme")
	}
	if len(sp.Attacks)+len(sp.Benches) == 0 {
		return fmt.Errorf("serve: job needs at least one attack or bench workload")
	}
	canon := map[string]string{}
	for _, name := range twl.SchemeNames() {
		canon[strings.ToLower(name)] = name
	}
	for i, name := range sp.Schemes {
		c, ok := canon[strings.ToLower(name)]
		if !ok {
			return fmt.Errorf("serve: unknown scheme %q (known: %s)",
				name, strings.Join(twl.SchemeNames(), ", "))
		}
		sp.Schemes[i] = c
	}
	sp.Schemes = dedupe(sp.Schemes)
	for _, name := range sp.Attacks {
		if _, err := twl.ParseAttackMode(name); err != nil {
			return fmt.Errorf("serve: %w", err)
		}
	}
	sp.Attacks = dedupe(sp.Attacks)
	for _, name := range sp.Benches {
		if _, err := twl.BenchmarkByName(name); err != nil {
			return fmt.Errorf("serve: %w", err)
		}
	}
	sp.Benches = dedupe(sp.Benches)
	if len(sp.Seeds) == 0 {
		sp.Seeds = []uint64{1}
	}
	sp.Seeds = dedupe(sp.Seeds)
	def := twl.SmallSystem(0)
	if sp.Pages == 0 {
		sp.Pages = def.Pages
	}
	if sp.PageSize == 0 {
		sp.PageSize = def.PageSize
	}
	if sp.MeanEndurance == 0 {
		sp.MeanEndurance = def.MeanEndurance
	}
	if sp.SigmaFraction == 0 {
		sp.SigmaFraction = def.SigmaFraction
	}
	if sp.Shards < 0 {
		return fmt.Errorf("serve: shards must be non-negative, got %d", sp.Shards)
	}
	if sp.Shards > 0 && sp.Pages%sp.Shards != 0 {
		return fmt.Errorf("serve: pages (%d) must divide evenly into %d shards", sp.Pages, sp.Shards)
	}
	return sp.system(sp.Seeds[0]).Validate()
}

// system builds the cell's SystemConfig for one seed.
func (sp JobSpec) system(seed uint64) twl.SystemConfig {
	return twl.SystemConfig{
		Pages:         sp.Pages,
		PageSize:      sp.PageSize,
		MeanEndurance: sp.MeanEndurance,
		SigmaFraction: sp.SigmaFraction,
		Packed:        sp.Packed,
		Seed:          seed,
	}
}

// Cell statuses. pending → running → one of the terminal three; a preempted
// running cell returns to pending and is re-enqueued on restart.
const (
	cellPending   = "pending"
	cellRunning   = "running"
	cellDone      = "done"
	cellFailed    = "failed"
	cellCancelled = "cancelled"
)

// cell is one scheme × workload × seed simulation of a job. Status, Cached,
// Error and Result are mutable and guarded by the owning Server's mu; the
// identity fields are immutable after construction.
type cell struct {
	Scheme string `json:"scheme"`
	// Source is "attack:<mode>" or "bench:<name>".
	Source string `json:"source"`
	Seed   uint64 `json:"seed"`
	// Key is the content address of the cell's result (see cellMaterial).
	Key    string      `json:"key"`
	Status string      `json:"status"`
	Cached bool        `json:"cached,omitempty"`
	Error  string      `json:"error,omitempty"`
	Result *cellResult `json:"result,omitempty"`
}

// name labels the cell in trace events: "TWL_swp/attack:repeat/seed=1".
func (c *cell) name() string {
	return fmt.Sprintf("%s/%s/seed=%d", c.Scheme, c.Source, c.Seed)
}

// sourceKind splits the Source field into its kind ("attack" or "bench")
// and workload name.
func (c *cell) sourceKind() (kind, name string) {
	kind, name, _ = strings.Cut(c.Source, ":")
	return kind, name
}

// cellMaterial is the canonical key material of one cell: every
// construction input that can change the result, in fixed field order,
// under a version prefix so a change to result semantics invalidates old
// cache entries. Sharding is part of the key — a sharded run is a different
// (also deterministic) experiment than an unsharded one, not a different
// route to the same bytes.
func cellMaterial(sys twl.SystemConfig, scheme, source string, shards int, maxDemand uint64) string {
	return fmt.Sprintf(
		"twlcell/v1|scheme=%s|source=%s|pages=%d|page_size=%d|mean_endurance=%g|sigma_fraction=%g|packed=%t|seed=%d|shards=%d|cap=%d",
		scheme, source, sys.Pages, sys.PageSize, sys.MeanEndurance, sys.SigmaFraction,
		sys.Packed, sys.Seed, shards, maxDemand)
}

// buildCells expands a normalized spec into its deterministic cell list:
// scheme-major, attacks before benches, seeds innermost.
func buildCells(sp JobSpec) []*cell {
	var sources []string
	for _, a := range sp.Attacks {
		sources = append(sources, "attack:"+a)
	}
	for _, b := range sp.Benches {
		sources = append(sources, "bench:"+b)
	}
	var cells []*cell
	for _, scheme := range sp.Schemes {
		for _, src := range sources {
			for _, seed := range sp.Seeds {
				shards := sp.Shards
				if strings.HasPrefix(src, "bench:") {
					// Bench cells always run unsharded (the runner would
					// reject them); key them that way so a resubmission
					// without shards hits the same cache entry.
					shards = 0
				}
				cells = append(cells, &cell{
					Scheme: scheme,
					Source: src,
					Seed:   seed,
					Key:    cache.Key(cellMaterial(sp.system(seed), scheme, src, shards, sp.MaxDemandWrites)),
					Status: cellPending,
				})
			}
		}
	}
	return cells
}

// cellResult is the serializable mirror of twl.LifetimeResult (FailCause is
// an error there, a string here), plus the sharded-run extras when the cell
// ran through the bank-sharded runner.
type cellResult struct {
	Scheme       string       `json:"scheme"`
	DemandWrites uint64       `json:"demand_writes"`
	DemandReads  uint64       `json:"demand_reads"`
	DeviceWrites uint64       `json:"device_writes"`
	SwapWrites   uint64       `json:"swap_writes"`
	Swaps        uint64       `json:"swaps"`
	FailedPage   int          `json:"failed_page"`
	Capped       bool         `json:"capped"`
	FailCause    string       `json:"fail_cause,omitempty"`
	RetiredPages int          `json:"retired_pages,omitempty"`
	SparesUsed   int          `json:"spares_used,omitempty"`
	SparePages   int          `json:"spare_pages,omitempty"`
	Normalized   float64      `json:"normalized_lifetime"`
	Cycles       int64        `json:"cycles"`
	Sharded      *shardedInfo `json:"sharded,omitempty"`
}

// shardedInfo records the partitioning of a cell that ran sharded.
type shardedInfo struct {
	Shards      int      `json:"shards"`
	ShardPages  int      `json:"shard_pages"`
	FailedShard int      `json:"failed_shard"`
	ShardDemand []uint64 `json:"shard_demand"`
}

// fromLifetime converts a simulator result to its wire mirror.
func fromLifetime(r twl.LifetimeResult) cellResult {
	out := cellResult{
		Scheme:       r.Scheme,
		DemandWrites: r.DemandWrites,
		DemandReads:  r.DemandReads,
		DeviceWrites: r.DeviceWrites,
		SwapWrites:   r.SwapWrites,
		Swaps:        r.Swaps,
		FailedPage:   r.FailedPage,
		Capped:       r.Capped,
		RetiredPages: r.RetiredPages,
		SparesUsed:   r.SparesUsed,
		SparePages:   r.SparePages,
		Normalized:   r.Normalized,
		Cycles:       r.Cycles,
	}
	if r.FailCause != nil {
		out.FailCause = r.FailCause.Error()
	}
	return out
}

// toLifetime reconstructs the simulator result. The only FailCause the
// simulator produces today is capacity exhaustion; an unrecognized string
// round-trips as an opaque error with the same text.
func (r cellResult) toLifetime() twl.LifetimeResult {
	out := twl.LifetimeResult{
		Scheme:       r.Scheme,
		DemandWrites: r.DemandWrites,
		DemandReads:  r.DemandReads,
		DeviceWrites: r.DeviceWrites,
		SwapWrites:   r.SwapWrites,
		Swaps:        r.Swaps,
		FailedPage:   r.FailedPage,
		Capped:       r.Capped,
		RetiredPages: r.RetiredPages,
		SparesUsed:   r.SparesUsed,
		SparePages:   r.SparePages,
		Normalized:   r.Normalized,
		Cycles:       r.Cycles,
	}
	switch r.FailCause {
	case "":
	case twl.ErrCapacityExhausted.Error():
		out.FailCause = twl.ErrCapacityExhausted
	default:
		out.FailCause = fmt.Errorf("%s", r.FailCause)
	}
	return out
}

// envelopeVersion versions the cached payload layout; a bump orphans (but
// does not corrupt) old entries — the worker treats a version mismatch as a
// miss and recomputes.
const envelopeVersion = 1

// cellEnvelope is the cached payload of one completed cell: the result plus
// the key material it was derived from, so a cache entry is auditable
// without the submitting job.
type cellEnvelope struct {
	Version  int        `json:"version"`
	Material string     `json:"material"`
	Result   cellResult `json:"result"`
}

// job is one submitted grid. The mutable state (cell statuses, cancelled)
// is guarded by the owning Server's mu; trace and tracer are internally
// synchronized and safe to use without it.
type job struct {
	id        string
	spec      JobSpec
	cells     []*cell
	cancelled bool
	trace     *obs.TraceBuffer
	tracer    *obs.Tracer
}

// jobFile is the on-disk form of a job, written atomically on every state
// change so a killed daemon reloads its queue on restart.
type jobFile struct {
	ID        string  `json:"id"`
	Spec      JobSpec `json:"spec"`
	Cancelled bool    `json:"cancelled,omitempty"`
	Cells     []*cell `json:"cells"`
}

// persistJob atomically writes the job's state file. Must be called with
// the server's mu held (it snapshots mutable cell state).
func persistJob(dir string, j *job) error {
	jf := jobFile{ID: j.id, Spec: j.spec, Cancelled: j.cancelled, Cells: j.cells}
	b, err := json.MarshalIndent(jf, "", "  ")
	if err != nil {
		return fmt.Errorf("serve: encode job %s: %w", j.id, err)
	}
	path := filepath.Join(dir, j.id+".json")
	tmp, err := os.CreateTemp(dir, j.id+".tmp-*")
	if err != nil {
		return fmt.Errorf("serve: persist job %s: %w", j.id, err)
	}
	if _, err := tmp.Write(b); err != nil {
		_ = tmp.Close()
		_ = os.Remove(tmp.Name())
		return fmt.Errorf("serve: persist job %s: %w", j.id, err)
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmp.Name())
		return fmt.Errorf("serve: persist job %s: %w", j.id, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		_ = os.Remove(tmp.Name())
		return fmt.Errorf("serve: persist job %s: %w", j.id, err)
	}
	return nil
}

// loadJobs reads every job file in dir, in lexical (= submission) order.
// Cells that were running when the previous daemon died come back pending.
func loadJobs(dir string) ([]*job, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("serve: load jobs: %w", err)
	}
	var jobs []*job
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".json" {
			continue
		}
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, fmt.Errorf("serve: load jobs: %w", err)
		}
		var jf jobFile
		if err := json.Unmarshal(b, &jf); err != nil {
			return nil, fmt.Errorf("serve: load job %s: %w", e.Name(), err)
		}
		j := &job{id: jf.ID, spec: jf.Spec, cancelled: jf.Cancelled, cells: jf.Cells}
		for _, c := range j.cells {
			if c.Status == cellRunning {
				c.Status = cellPending
			}
		}
		jobs = append(jobs, j)
	}
	return jobs, nil
}

// jobID derives a deterministic identifier: a submission counter plus a
// spec-hash suffix, so restarted daemons never reuse an id for a different
// grid and ids are stable without wall-clock or randomness.
func jobID(n int, sp JobSpec) string {
	b, err := json.Marshal(sp)
	if err != nil {
		// A normalized spec is plain data; this cannot fail short of a
		// programming error.
		panic(err)
	}
	return fmt.Sprintf("job-%04d-%s", n, cache.Key(string(b))[:8])
}

// jobSeq parses the submission counter back out of an id ("job-0007-..." →
// 7); ok is false for foreign file names.
func jobSeq(id string) (int, bool) {
	var n int
	var rest string
	if _, err := fmt.Sscanf(id, "job-%d-%s", &n, &rest); err != nil {
		return 0, false
	}
	return n, true
}
