// Command hwcost prints the Section 5.4 design-overhead report: per-page
// metadata storage (WCT/ET/RT/SWPT bits) and controller logic gates for the
// full-size 32 GB system, plus any alternative capacity via -pages.
package main

import (
	"flag"
	"fmt"
	"os"

	"twl"
	"twl/internal/hwcost"
	"twl/internal/report"
)

func main() {
	var (
		pages    = flag.Int("pages", 0, "page count for an alternative system (default: 32GB/4KB)")
		pageSize = flag.Int("pagesize", 4096, "page size in bytes")
	)
	flag.Parse()

	hc := twl.HardwareCost()
	tb := report.NewTable("Section 5.4 — TWL design overhead (32 GB system)", "item", "cost")
	tb.AddRowf("WCT entry", fmt.Sprintf("%d bits", hc.Storage.WCTBits))
	tb.AddRowf("ET entry", fmt.Sprintf("%d bits", hc.Storage.ETBits))
	tb.AddRowf("RT entry", fmt.Sprintf("%d bits", hc.Storage.RTBits))
	tb.AddRowf("SWPT entry", fmt.Sprintf("%d bits", hc.Storage.SWPTBits))
	tb.AddRowf("total per page", fmt.Sprintf("%d bits", hc.TotalBits))
	tb.AddRowf("storage ratio", fmt.Sprintf("%.3g (paper: 2.5e-3)", hc.StorageRatio))
	tb.AddRowf("RNG (8-bit Feistel)", fmt.Sprintf("<=%d gates", hc.Logic.RNGGates))
	tb.AddRowf("divider + comparators", fmt.Sprintf("%d gates", hc.Logic.ArithmeticGates))
	tb.AddRowf("total logic", fmt.Sprintf("%d gates", hc.Logic.TotalGates))
	fatal(tb.Render(os.Stdout))

	if *pages > 0 {
		cfg := hwcost.DefaultStorageConfig()
		cfg.Pages = *pages
		cfg.PageSize = *pageSize
		s, err := hwcost.Storage(cfg)
		fatal(err)
		fmt.Printf("\nAlternative system (%d pages x %d B): %d bits/page, ratio %.3g\n",
			*pages, *pageSize, s.TotalBits(), s.Ratio(*pageSize))
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "hwcost:", err)
		os.Exit(1)
	}
}
