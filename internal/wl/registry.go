package wl

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"twl/internal/pcm"
)

// Sentinel errors for the scheme API. Callers match them with errors.Is
// instead of string-matching messages.
var (
	// ErrUnknownScheme reports a scheme name no registration covers.
	ErrUnknownScheme = errors.New("unknown wear-leveling scheme")
	// ErrDuplicateScheme reports a registration whose name or alias is
	// already taken.
	ErrDuplicateScheme = errors.New("scheme already registered")
	// ErrBadConfig reports an invalid scheme or system configuration.
	ErrBadConfig = errors.New("invalid configuration")
	// ErrCapacityExhausted reports that a lifetime run ended because the
	// fault-tolerance layer ran out of capacity — the spare pool was
	// exhausted or the retirement threshold was crossed — rather than at
	// the device's first page failure. LifetimeResult.FailCause carries it.
	ErrCapacityExhausted = errors.New("spare capacity exhausted")
)

// Registration describes one scheme in a Registry.
type Registration struct {
	// Name is the canonical identifier ("BWL", "TWL_swp", …) as the paper's
	// figures and SchemeNames spell it.
	Name string
	// Aliases are extra accepted spellings; all lookups are
	// case-insensitive, so aliases only cover genuinely different names
	// ("TWL" for "TWL_swp", "sg" for "StartGap").
	Aliases []string
	// Order positions the scheme in Names() — the order the paper's figures
	// present them. Ties break by name.
	Order int
	// Doc is a one-line description for listings.
	Doc string
	// New builds the scheme over a device.
	New Factory
}

// Registry maps scheme names to factories. The package-level Default
// registry is populated by each scheme package's init; tests build their
// own instances.
type Registry struct {
	mu      sync.RWMutex
	byKey   map[string]*Registration // lowercased name/alias -> registration
	ordered []*Registration
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: map[string]*Registration{}}
}

// Add registers a scheme. It fails with ErrBadConfig on a registration
// without a name or factory and with ErrDuplicateScheme when the name or
// any alias is already taken (case-insensitively).
func (r *Registry) Add(reg Registration) error {
	if reg.Name == "" {
		return fmt.Errorf("wl: registration needs a Name: %w", ErrBadConfig)
	}
	if reg.New == nil {
		return fmt.Errorf("wl: registration %q needs a New factory: %w", reg.Name, ErrBadConfig)
	}
	keys := make([]string, 0, 1+len(reg.Aliases))
	keys = append(keys, strings.ToLower(reg.Name))
	for _, a := range reg.Aliases {
		keys = append(keys, strings.ToLower(a))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, k := range keys {
		if prev, ok := r.byKey[k]; ok {
			return fmt.Errorf("wl: %q conflicts with %q: %w", reg.Name, prev.Name, ErrDuplicateScheme)
		}
	}
	stored := reg
	stored.Aliases = append([]string(nil), reg.Aliases...)
	for _, k := range keys {
		r.byKey[k] = &stored
	}
	r.ordered = append(r.ordered, &stored)
	sort.SliceStable(r.ordered, func(i, j int) bool {
		if r.ordered[i].Order != r.ordered[j].Order {
			return r.ordered[i].Order < r.ordered[j].Order
		}
		return r.ordered[i].Name < r.ordered[j].Name
	})
	return nil
}

// MustAdd is Add panicking on error, for init-time registration.
func (r *Registry) MustAdd(reg Registration) {
	if err := r.Add(reg); err != nil {
		panic(err)
	}
}

// Lookup finds a registration by name or alias, case-insensitively.
func (r *Registry) Lookup(name string) (Registration, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	reg, ok := r.byKey[strings.ToLower(name)]
	if !ok {
		return Registration{}, false
	}
	return *reg, true
}

// Names returns the canonical scheme names in display order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, len(r.ordered))
	for i, reg := range r.ordered {
		names[i] = reg.Name
	}
	return names
}

// Registrations returns copies of all registrations in display order.
func (r *Registry) Registrations() []Registration {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Registration, len(r.ordered))
	for i, reg := range r.ordered {
		out[i] = *reg
	}
	return out
}

// New builds the named scheme over dev. An unrecognized name wraps
// ErrUnknownScheme; factory failures are wrapped with the canonical scheme
// name.
//
// Deprecated: use Build, which additionally accepts functional options for
// decorator composition. New is Build with no options.
func (r *Registry) New(name string, dev *pcm.Device, seed uint64) (Scheme, error) {
	reg, ok := r.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("wl: %w: %q (known: %s)",
			ErrUnknownScheme, name, strings.Join(r.Names(), ", "))
	}
	s, err := reg.New(dev, seed)
	if err != nil {
		return nil, fmt.Errorf("wl: building %s: %w", reg.Name, err)
	}
	return s, nil
}

// Default is the process-wide registry. Every scheme package registers
// itself here in init, so importing a scheme package (directly or through
// the twl facade) makes it constructible by name.
var Default = NewRegistry()

// Register adds a scheme to the Default registry, panicking on conflict —
// registration happens in package init where a conflict is a programmer
// error.
func Register(reg Registration) { Default.MustAdd(reg) }

// NewByName builds a scheme from the Default registry.
//
// Deprecated: use Build, which additionally accepts functional options for
// decorator composition. NewByName is Build with no options.
func NewByName(name string, dev *pcm.Device, seed uint64) (Scheme, error) {
	return Default.New(name, dev, seed)
}

// Names lists the Default registry's canonical scheme names in display
// order.
func Names() []string { return Default.Names() }
