package twl

import (
	"testing"

	"twl/internal/attack"
	"twl/internal/detect"
	"twl/internal/rng"
	"twl/internal/sim"
	"twl/internal/trace"
	"twl/internal/wl"
)

// Integration tests drive full experiment-scale scenarios across module
// boundaries with the paranoid invariant checker enabled.

// TestIntegrationParanoidLifetimes runs every scheme to first failure under
// a mixed workload with invariants checked throughout.
func TestIntegrationParanoidLifetimes(t *testing.T) {
	sys := SmallSystem(77)
	for _, name := range SchemeNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			dev, err := sys.NewDevice()
			if err != nil {
				t.Fatal(err)
			}
			s, err := NewScheme(name, dev, 5)
			if err != nil {
				t.Fatal(err)
			}
			b, err := trace.BenchmarkByName("x264")
			if err != nil {
				t.Fatal(err)
			}
			g, err := trace.NewSynthetic(b, sys.Pages, 9)
			if err != nil {
				t.Fatal(err)
			}
			res, err := sim.RunLifetime(s, sim.FromWorkload(g), sim.LifetimeConfig{
				CheckEvery:      50000,
				MaxDemandWrites: 3_000_000,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.DemandWrites == 0 {
				t.Fatal("no writes served")
			}
			// Wear conservation across the whole run.
			if res.DeviceWrites != res.DemandWrites+res.SwapWrites {
				t.Fatalf("wear not conserved: %d != %d + %d",
					res.DeviceWrites, res.DemandWrites, res.SwapWrites)
			}
		})
	}
}

// TestIntegrationDataIntegrityAllSchemes verifies that every scheme
// preserves data across hundreds of thousands of operations interleaved
// with its internal swaps — the end-to-end correctness property behind all
// lifetime numbers.
func TestIntegrationDataIntegrityAllSchemes(t *testing.T) {
	sys := SmallSystem(88)
	sys.MeanEndurance = 1e12 // integrity, not wear-out, is under test
	for _, name := range SchemeNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			dev, err := sys.NewDevice()
			if err != nil {
				t.Fatal(err)
			}
			s, err := NewScheme(name, dev, 3)
			if err != nil {
				t.Fatal(err)
			}
			logical := s.Device().Pages()
			if z, ok := s.(interface{ LogicalPages() int }); ok {
				logical = z.LogicalPages()
			}
			shadow := make([]uint64, logical)
			written := make([]bool, logical)
			src := rng.NewXorshift(11)
			for i := 0; i < 300000; i++ {
				la := src.Intn(logical)
				if src.Intn(5) == 0 {
					got, _ := s.Read(la)
					if written[la] && got != shadow[la] {
						t.Fatalf("op %d: Read(%d) = %d, want %d", i, la, got, shadow[la])
					}
				} else {
					tag := src.Uint64()
					s.Write(la, tag)
					shadow[la] = tag
					written[la] = true
				}
			}
		})
	}
}

// TestIntegrationWRLVulnerableTWLImmune reproduces the Section 3
// demonstration end-to-end: the same inconsistent attacker (full-space
// targets, as in Figure 3 where the malicious program owns all of memory)
// destroys WRL while TWL retains most of its lifetime.
func TestIntegrationWRLVulnerableTWLImmune(t *testing.T) {
	sys := SmallSystem(99)
	run := func(scheme string) float64 {
		dev, err := sys.NewDevice()
		if err != nil {
			t.Fatal(err)
		}
		s, err := NewScheme(scheme, dev, 7)
		if err != nil {
			t.Fatal(err)
		}
		cfg := attack.DefaultConfig(attack.Inconsistent, sys.Pages, 13)
		cfg.TargetPages = sys.Pages
		st, err := attack.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.RunLifetime(s, sim.FromAttack(st), sim.LifetimeConfig{})
		if err != nil {
			t.Fatal(err)
		}
		return res.Normalized
	}
	wrl := run("WRL")
	twl := run("TWL_swp")
	if twl < 1.5*wrl {
		t.Fatalf("TWL %.3f not clearly above WRL %.3f under the inconsistent attack", twl, wrl)
	}
	if twl < 0.45 {
		t.Fatalf("TWL normalized %.3f; immunity broken", twl)
	}
}

// TestIntegrationDetectorSeesWhatTWLSurvives wires the attack, a scheme and
// the detector together: the detector flags the attack stream while TWL,
// unaware of the alarm, survives it anyway — defense in depth.
func TestIntegrationDetectorSeesWhatTWLSurvives(t *testing.T) {
	sys := SmallSystem(111)
	dev, err := sys.NewDevice()
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewScheme("TWL_swp", dev, 5)
	if err != nil {
		t.Fatal(err)
	}
	d, err := detect.New(detect.DefaultConfig(sys.Pages))
	if err != nil {
		t.Fatal(err)
	}
	st, err := attack.New(attack.DefaultConfig(attack.Inconsistent, sys.Pages, 17))
	if err != nil {
		t.Fatal(err)
	}
	timing := dev.Timing()
	fb := attack.Feedback{}
	for i := 0; i < 1_000_000; i++ {
		la := st.Next(fb)
		d.Observe(la)
		cost := s.Write(la, uint64(i))
		fb = attack.Feedback{Blocked: cost.Blocked, Cycles: cost.Cycles(timing)}
		if _, failed := dev.Failed(); failed {
			t.Fatalf("TWL died after only %d attack writes", i)
		}
	}
	if !d.EverAlarmed() {
		t.Fatal("detector never flagged the inconsistent attack")
	}
}

// TestIntegrationTraceFileRoundTrip generates a synthetic trace, encodes it
// through the binary codec, replays it from the file representation and
// confirms the replay produces the identical wear pattern as the direct
// stream — the tracegen/benchsim pipeline end to end.
func TestIntegrationTraceFileRoundTrip(t *testing.T) {
	const pages = 256
	b, err := trace.BenchmarkByName("ferret")
	if err != nil {
		t.Fatal(err)
	}
	g, err := trace.NewSynthetic(b, pages, 21)
	if err != nil {
		t.Fatal(err)
	}
	var recs []trace.Record
	if err := g.Generate(50000, func(r trace.Record) error {
		recs = append(recs, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	runOver := func(src sim.Source) *Device {
		sys := SystemConfig{Pages: pages, PageSize: 4096, MeanEndurance: 1e12, SigmaFraction: 0.11, Seed: 5}
		dev, err := sys.NewDevice()
		if err != nil {
			t.Fatal(err)
		}
		s, err := NewScheme("TWL_swp", dev, 9)
		if err != nil {
			t.Fatal(err)
		}
		fb := attack.Feedback{}
		for i := 0; i < 50000; i++ {
			addr, write := src.Next(fb)
			if write {
				s.Write(addr, uint64(i))
			} else {
				s.Read(addr)
			}
		}
		return dev
	}

	fileSrc, err := sim.FromTrace(recs, pages)
	if err != nil {
		t.Fatal(err)
	}
	devA := runOver(fileSrc)

	g2, err := trace.NewSynthetic(b, pages, 21)
	if err != nil {
		t.Fatal(err)
	}
	devB := runOver(sim.FromWorkload(g2))

	for p := 0; p < pages; p++ {
		if devA.Wear(p) != devB.Wear(p) {
			t.Fatalf("wear diverged at page %d: %d vs %d", p, devA.Wear(p), devB.Wear(p))
		}
	}
}

// TestIntegrationCostCyclesConsistency: accumulated cycles reported by the
// lifetime engine must equal the sum of per-request costs under the Table 1
// timing for a deterministic run.
func TestIntegrationCostCyclesConsistency(t *testing.T) {
	sys := SmallSystem(123)
	dev, err := sys.NewDevice()
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewScheme("SR", dev, 3)
	if err != nil {
		t.Fatal(err)
	}
	timing := dev.Timing()
	var manual int64
	var costs []wl.Cost
	// Replay a fixed address pattern manually…
	for i := 0; i < 10000; i++ {
		cost := s.Write(i%sys.Pages, uint64(i))
		costs = append(costs, cost)
		manual += cost.Cycles(timing)
	}
	if manual <= 0 {
		t.Fatal("no cycles accumulated")
	}
	// …and verify each cost decomposes as writes×2000 + reads×250 + extra.
	for i, c := range costs {
		want := int64(c.DeviceWrites)*2000 + int64(c.DeviceReads)*250 + int64(c.ExtraCycles)
		if c.Cycles(timing) != want {
			t.Fatalf("op %d: cycles %d, want %d", i, c.Cycles(timing), want)
		}
	}
}

// TestIntegrationLocalScanVsStartGap: the extension attack — a scan
// confined to a small window — hurts slow-rotation Start-Gap far more than
// a full scan does, while TWL barely notices the difference.
func TestIntegrationLocalScanVsStartGap(t *testing.T) {
	sys := SmallSystem(55)
	run := func(scheme string, local bool) float64 {
		dev, err := sys.NewDevice()
		if err != nil {
			t.Fatal(err)
		}
		s, err := NewScheme(scheme, dev, 3)
		if err != nil {
			t.Fatal(err)
		}
		var st attack.Stream
		if local {
			st, err = attack.NewLocalScan(sys.Pages, 8, 0)
		} else {
			st, err = attack.New(attack.DefaultConfig(attack.Scan, sys.Pages, 1))
		}
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.RunLifetime(s, sim.FromAttack(st), sim.LifetimeConfig{})
		if err != nil {
			t.Fatal(err)
		}
		return res.Normalized
	}
	sgFull := run("StartGap", false)
	sgLocal := run("StartGap", true)
	twlFull := run("TWL_swp", false)
	twlLocal := run("TWL_swp", true)
	if sgLocal > 0.6*sgFull {
		t.Fatalf("local scan barely hurt Start-Gap: %.3f vs %.3f", sgLocal, sgFull)
	}
	if twlLocal < 0.6*twlFull {
		t.Fatalf("local scan hurt TWL too much: %.3f vs %.3f", twlLocal, twlFull)
	}
}

// TestIntegrationReactiveDefenseLagsTWL quantifies the paper's core
// argument against detection-based defenses: the adaptive RBSG (detector +
// targeted relocation) handles the repeat attack well, but the inconsistent
// attack — many moderately-hot addresses, reversing faster than the
// detector's response can chase them — leaves it clearly behind TWL, whose
// protection needs no detection at all.
func TestIntegrationReactiveDefenseLagsTWL(t *testing.T) {
	sys := SmallSystem(222)
	run := func(scheme string, mode AttackMode) float64 {
		dev, err := sys.NewDevice()
		if err != nil {
			t.Fatal(err)
		}
		s, err := NewScheme(scheme, dev, 7)
		if err != nil {
			t.Fatal(err)
		}
		logical := dev.Pages()
		if z, ok := s.(interface{ LogicalPages() int }); ok {
			logical = z.LogicalPages()
		}
		st, err := attack.New(attack.DefaultConfig(mode, logical, 13))
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.RunLifetime(s, sim.FromAttack(st), sim.LifetimeConfig{})
		if err != nil {
			t.Fatal(err)
		}
		return res.Normalized
	}
	rbsgRepeat := run("RBSG", AttackRepeat)
	if rbsgRepeat < 0.1 {
		t.Fatalf("adaptive RBSG collapsed under repeat (%.3f); its detector response is broken", rbsgRepeat)
	}
	rbsgInc := run("RBSG", AttackInconsistent)
	twlInc := run("TWL_swp", AttackInconsistent)
	if twlInc <= rbsgInc {
		t.Fatalf("TWL (%.3f) not above the reactive defense (%.3f) under the inconsistent attack",
			twlInc, rbsgInc)
	}
}

// TestIntegrationPhaseChangesAreNotAttacks: a benign program whose working
// set moves between phases must not trip the attack detector (single
// decorrelation events are not the repeated reversals of the inconsistent
// attack), and BWL must re-learn the hot set instead of collapsing.
func TestIntegrationPhaseChangesAreNotAttacks(t *testing.T) {
	const pages = 512
	b, err := trace.BenchmarkByName("canneal")
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDetector(pages)
	if err != nil {
		t.Fatal(err)
	}
	// Phases far apart relative to the detection window: the phase change
	// flags at most one window at a time.
	p, err := trace.NewPhased(b, pages, 200_000, 5)
	if err != nil {
		t.Fatal(err)
	}
	writes := 0
	for writes < 1_000_000 {
		addr, w := p.Next()
		if !w {
			continue
		}
		d.Observe(addr)
		writes++
	}
	if p.Phases() < 3 {
		t.Fatalf("only %d phases exercised", p.Phases())
	}
	if d.EverAlarmed() {
		t.Fatalf("detector false-alarmed on benign phase changes: %+v", d.Stats())
	}

	// Phase changes are mini "inconsistent writes": every boundary turns
	// previously-cold addresses hot, and a prediction-trusting scheme (BWL)
	// grinds weak pages until it re-learns. The damage is per-boundary, so
	// BWL's lifetime must degrade with phase *frequency* — while TWL, which
	// predicts nothing, must not care about phases at all. This is the
	// paper's consistency assumption made measurable on benign workloads.
	sys := SystemConfig{Pages: pages, PageSize: 4096, MeanEndurance: 5000, SigmaFraction: 0.11, Seed: 3}
	lifetime := func(scheme string, phaseWrites int) float64 {
		dev, err := sys.NewDevice()
		if err != nil {
			t.Fatal(err)
		}
		s, err := NewScheme(scheme, dev, 7)
		if err != nil {
			t.Fatal(err)
		}
		var src sim.Source
		if phaseWrites > 0 {
			pg, err := trace.NewPhased(b, pages, phaseWrites, 9)
			if err != nil {
				t.Fatal(err)
			}
			src = phasedSource{pg}
		} else {
			g, err := trace.NewSynthetic(b, pages, 9)
			if err != nil {
				t.Fatal(err)
			}
			src = sim.FromWorkload(g)
		}
		res, err := sim.RunLifetime(s, src, sim.LifetimeConfig{})
		if err != nil {
			t.Fatal(err)
		}
		return res.Normalized
	}
	bwlFrequent := lifetime("BWL", 100_000)
	bwlRare := lifetime("BWL", 800_000)
	if bwlRare <= bwlFrequent {
		t.Fatalf("BWL not improving with rarer phases: %.3f (rare) vs %.3f (frequent)",
			bwlRare, bwlFrequent)
	}
	twlStationary := lifetime("TWL_swp", 0)
	twlPhased := lifetime("TWL_swp", 100_000)
	if twlPhased < 0.75*twlStationary {
		t.Fatalf("TWL affected by phases: %.3f vs stationary %.3f", twlPhased, twlStationary)
	}
}

// phasedSource adapts trace.Phased to sim.Source.
type phasedSource struct{ p *trace.Phased }

func (s phasedSource) Next(attack.Feedback) (int, bool) { return s.p.Next() }
