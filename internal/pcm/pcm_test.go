package pcm

import (
	"testing"
	"testing/quick"
)

func testDevice(t *testing.T, pages int, endurance uint64) *Device {
	t.Helper()
	geom := Geometry{Pages: pages, PageSize: 4096, LineSize: 128, Ranks: 4, Banks: 32}
	end := make([]uint64, pages)
	for i := range end {
		end[i] = endurance
	}
	d, err := NewDevice(geom, DefaultTiming(), end)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestGeometryValidate(t *testing.T) {
	bad := []Geometry{
		{Pages: 0, PageSize: 4096, LineSize: 128, Ranks: 1, Banks: 1},
		{Pages: 10, PageSize: 0, LineSize: 128, Ranks: 1, Banks: 1},
		{Pages: 10, PageSize: 4096, LineSize: 100, Ranks: 1, Banks: 1}, // 100 doesn't divide 4096
		{Pages: 10, PageSize: 4096, LineSize: 128, Ranks: 0, Banks: 1},
		{Pages: 10, PageSize: 4096, LineSize: 128, Ranks: 1, Banks: 0},
	}
	for i, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("case %d: geometry %+v unexpectedly valid", i, g)
		}
	}
	if err := DefaultGeometry().Validate(); err != nil {
		t.Fatalf("default geometry invalid: %v", err)
	}
}

func TestDefaultGeometryMatchesTable1(t *testing.T) {
	g := DefaultGeometry()
	if g.Capacity() != 32<<30 {
		t.Fatalf("capacity = %d, want 32 GiB", g.Capacity())
	}
	if g.PageSize != 4096 || g.LineSize != 128 || g.Ranks != 4 || g.Banks != 32 {
		t.Fatalf("geometry does not match Table 1: %+v", g)
	}
	if g.LinesPerPage() != 32 {
		t.Fatalf("lines per page = %d, want 32", g.LinesPerPage())
	}
}

func TestDefaultTimingMatchesTable1(t *testing.T) {
	tm := DefaultTiming()
	if tm.ReadCycles != 250 || tm.SetCycles != 2000 || tm.ResetCycles != 250 {
		t.Fatalf("timing does not match Table 1: %+v", tm)
	}
	if tm.WriteCycles() != 2000 {
		t.Fatalf("write cycles = %d, want 2000 (SET-limited)", tm.WriteCycles())
	}
	if s := tm.Seconds(2e9); s != 1.0 {
		t.Fatalf("2e9 cycles at 2GHz = %v s, want 1", s)
	}
}

func TestNewDeviceValidation(t *testing.T) {
	geom := Geometry{Pages: 4, PageSize: 4096, LineSize: 128, Ranks: 1, Banks: 1}
	if _, err := NewDevice(geom, DefaultTiming(), []uint64{1, 2, 3}); err == nil {
		t.Fatal("mismatched endurance map accepted")
	}
	if _, err := NewDevice(geom, DefaultTiming(), []uint64{1, 2, 3, 0}); err == nil {
		t.Fatal("zero endurance accepted")
	}
}

func TestNewDeviceCopiesEnduranceMap(t *testing.T) {
	geom := Geometry{Pages: 2, PageSize: 4096, LineSize: 128, Ranks: 1, Banks: 1}
	end := []uint64{10, 20}
	d, err := NewDevice(geom, DefaultTiming(), end)
	if err != nil {
		t.Fatal(err)
	}
	end[0] = 999
	if d.Endurance(0) != 10 {
		t.Fatal("device endurance aliased caller's slice")
	}
}

func TestWriteWearAndFailure(t *testing.T) {
	d := testDevice(t, 4, 3)
	for i := 0; i < 2; i++ {
		if d.Write(1, uint64(i)) {
			t.Fatalf("write %d reported failure before endurance reached", i)
		}
	}
	if _, failed := d.Failed(); failed {
		t.Fatal("device reports failure with max wear 2 < endurance 3")
	}
	if !d.Write(1, 99) {
		t.Fatal("third write did not report wear-out (endurance 3)")
	}
	page, failed := d.Failed()
	if !failed || page != 1 {
		t.Fatalf("Failed() = %d,%v, want 1,true", page, failed)
	}
	if d.Remaining(1) != 0 {
		t.Fatalf("Remaining(1) = %d, want 0", d.Remaining(1))
	}
	if d.FailedPages() != 1 {
		t.Fatalf("FailedPages = %d, want 1", d.FailedPages())
	}
}

func TestFirstFailureSticky(t *testing.T) {
	d := testDevice(t, 4, 1)
	d.Write(2, 0)
	d.Write(3, 0)
	if page, _ := d.Failed(); page != 2 {
		t.Fatalf("first failed page = %d, want 2", page)
	}
	if d.FailedPages() != 2 {
		t.Fatalf("FailedPages = %d, want 2", d.FailedPages())
	}
}

func TestPayloadReadback(t *testing.T) {
	d := testDevice(t, 8, 100)
	d.Write(3, 0xDEAD)
	d.Write(5, 0xBEEF)
	if v := d.Read(3); v != 0xDEAD {
		t.Fatalf("Read(3) = %x, want dead", v)
	}
	if v := d.Peek(5); v != 0xBEEF {
		t.Fatalf("Peek(5) = %x, want beef", v)
	}
	if d.TotalReads() != 1 {
		t.Fatalf("TotalReads = %d, want 1 (Peek must not count)", d.TotalReads())
	}
}

func TestWearAccounting(t *testing.T) {
	d := testDevice(t, 4, 1000)
	for i := 0; i < 10; i++ {
		d.Write(i%4, 0)
	}
	if d.TotalWrites() != 10 {
		t.Fatalf("TotalWrites = %d, want 10", d.TotalWrites())
	}
	var sum uint64
	for p := 0; p < 4; p++ {
		sum += d.Wear(p)
	}
	if sum != 10 {
		t.Fatalf("sum of wear = %d, want 10", sum)
	}
}

// TestWearConservationProperty: total device wear always equals the number
// of Write calls, for arbitrary write sequences.
func TestWearConservationProperty(t *testing.T) {
	check := func(addrs []uint8) bool {
		d := testDevice(t, 256, 1<<40)
		for _, a := range addrs {
			d.Write(int(a), uint64(a))
		}
		var sum uint64
		for p := 0; p < 256; p++ {
			sum += d.Wear(p)
		}
		return sum == uint64(len(addrs)) && d.TotalWrites() == uint64(len(addrs))
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestRewriteNMatchesSerialRewrites: the hosted-write bulk operation must be
// indistinguishable from n sequential Write(pp, Peek(pp)) calls — payload
// preserved, wear and the device write counter advanced, and the endurance
// crossing clamped at (and including) the failing write.
func TestRewriteNMatchesSerialRewrites(t *testing.T) {
	bulk := testDevice(t, 4, 20)
	serial := testDevice(t, 4, 20)
	for _, d := range []*Device{bulk, serial} {
		d.Write(1, 777)
	}
	rewrite := func(n int) {
		if got := bulk.RewriteN(1, n); got != n {
			t.Fatalf("RewriteN(1, %d) applied %d before the endurance crossing", n, got)
		}
		for i := 0; i < n; i++ {
			serial.Write(1, serial.Peek(1))
		}
	}
	rewrite(5)
	rewrite(1)
	if bulk.Peek(1) != 777 || bulk.Wear(1) != serial.Wear(1) || bulk.writes != serial.writes {
		t.Fatalf("bulk state diverges: payload %d wear %d/%d writes %d/%d",
			bulk.Peek(1), bulk.Wear(1), serial.Wear(1), bulk.writes, serial.writes)
	}
	if bulk.FailedPages() != 0 {
		t.Fatalf("premature failure log: %d entries", bulk.FailedPages())
	}
	// 7 of 20 writes spent; a 100-write request must clamp at the 13 left.
	if got := bulk.RewriteN(1, 100); got != 13 {
		t.Fatalf("RewriteN clamp applied %d, want 13", got)
	}
	if bulk.FailedPages() != 1 || bulk.FailureAt(0) != 1 {
		t.Fatalf("endurance crossing not logged: %d failures", bulk.FailedPages())
	}
	// Writes to an already-failed page keep counting, without re-logging.
	if got := bulk.RewriteN(1, 3); got != 3 {
		t.Fatalf("post-failure RewriteN applied %d, want 3", got)
	}
	if bulk.FailedPages() != 1 {
		t.Fatalf("dead page re-logged: %d failures", bulk.FailedPages())
	}
	if bulk.Wear(1) != 23 || bulk.Peek(1) != 777 {
		t.Fatalf("post-failure wear %d payload %d, want 23 / 777", bulk.Wear(1), bulk.Peek(1))
	}
	if got := bulk.RewriteN(1, 0); got != 0 {
		t.Fatalf("RewriteN(1, 0) applied %d", got)
	}
}

func TestTotalEndurance(t *testing.T) {
	geom := Geometry{Pages: 3, PageSize: 4096, LineSize: 128, Ranks: 1, Banks: 1}
	d, err := NewDevice(geom, DefaultTiming(), []uint64{5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	if d.TotalEndurance() != 21 {
		t.Fatalf("TotalEndurance = %d, want 21", d.TotalEndurance())
	}
}

func TestSummary(t *testing.T) {
	geom := Geometry{Pages: 2, PageSize: 4096, LineSize: 128, Ranks: 1, Banks: 1}
	d, _ := NewDevice(geom, DefaultTiming(), []uint64{10, 100})
	for i := 0; i < 5; i++ {
		d.Write(0, 0)
	}
	for i := 0; i < 20; i++ {
		d.Write(1, 0)
	}
	s := d.Summary()
	if s.TotalWear != 25 {
		t.Fatalf("TotalWear = %d, want 25", s.TotalWear)
	}
	if s.MaxWear != 20 || s.MaxWearPage != 1 {
		t.Fatalf("MaxWear = %d@%d, want 20@1", s.MaxWear, s.MaxWearPage)
	}
	// Fractions: page0 = 0.5, page1 = 0.2 → max fraction on page 0.
	if s.MaxFractionPage != 0 || s.MaxFraction != 0.5 {
		t.Fatalf("MaxFraction = %v@%d, want 0.5@0", s.MaxFraction, s.MaxFractionPage)
	}
	if s.MeanFraction != 0.35 {
		t.Fatalf("MeanFraction = %v, want 0.35", s.MeanFraction)
	}
}

func TestWearHistogram(t *testing.T) {
	geom := Geometry{Pages: 4, PageSize: 4096, LineSize: 128, Ranks: 1, Banks: 1}
	d, _ := NewDevice(geom, DefaultTiming(), []uint64{10, 10, 10, 10})
	// Fractions: 0.0, 0.2, 0.5, 1.0
	for i := 0; i < 2; i++ {
		d.Write(1, 0)
	}
	for i := 0; i < 5; i++ {
		d.Write(2, 0)
	}
	for i := 0; i < 10; i++ {
		d.Write(3, 0)
	}
	h := d.WearHistogram(4) // buckets [0,.25) [.25,.5) [.5,.75) [.75,1]
	want := []int{2, 0, 1, 1}
	for i := range want {
		if h[i] != want[i] {
			t.Fatalf("histogram = %v, want %v", h, want)
		}
	}
	if d.WearHistogram(0) != nil {
		t.Fatal("zero-bucket histogram should be nil")
	}
}

func TestReset(t *testing.T) {
	d := testDevice(t, 4, 2)
	d.Write(0, 7)
	d.Write(0, 7)
	d.Read(0)
	if _, failed := d.Failed(); !failed {
		t.Fatal("setup: expected failure")
	}
	d.Reset()
	if _, failed := d.Failed(); failed {
		t.Fatal("failure survived Reset")
	}
	if d.TotalWrites() != 0 || d.TotalReads() != 0 || d.Wear(0) != 0 || d.Peek(0) != 0 {
		t.Fatal("counters survived Reset")
	}
	if d.Endurance(0) != 2 {
		t.Fatal("endurance map lost in Reset")
	}
}

func BenchmarkDeviceWrite(b *testing.B) {
	geom := Geometry{Pages: 1 << 14, PageSize: 4096, LineSize: 128, Ranks: 4, Banks: 32}
	end := make([]uint64, geom.Pages)
	for i := range end {
		end[i] = 1 << 62
	}
	d, err := NewDevice(geom, DefaultTiming(), end)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Write(i&(1<<14-1), uint64(i))
	}
}
