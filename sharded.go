package twl

import (
	"fmt"
	"os"
	"path/filepath"

	"twl/internal/attack"
	"twl/internal/pcm"
	"twl/internal/pv"
	"twl/internal/sim"
	"twl/internal/snap"
	"twl/internal/wl"
)

// Sharded lifetime runs. A full-geometry device (4 ranks × 32 banks, the
// paper's Table 1) is too large to simulate as one sequential request loop
// in reasonable time, but a real memory controller interleaves traffic
// across banks — and every scheme here levels wear within the region it
// manages. RunShardedLifetime exploits that: the device is split into
// Shards equal bank groups, each simulated as an independent device +
// scheme + attack stream, with the conceptual global request stream
// round-robining across shards (global request t goes to shard (t−1) mod
// Shards). Because shards share no state, the global run factors exactly
// into independent local runs plus merge arithmetic (internal/sim/shard.go),
// and the shards execute in parallel on all cores.
//
// The merge is exact, not approximate. Phase 1 (scout) runs every shard to
// its local first failure; the shard whose failure lands earliest in the
// interleaved global stream is the global first failure. Phase 2 re-runs
// every other shard capped to exactly the number of requests the global
// stream would have sent it by that point — a cap the scout already proved
// it survives — so the merged counters are the exact global state at first
// failure. Results are bit-reproducible regardless of scheduling, and each
// shard can checkpoint/resume independently (CheckpointDir).

// ShardedConfig controls a sharded lifetime run.
type ShardedConfig struct {
	// Scheme is the wear-leveling scheme name (see SchemeNames).
	Scheme string
	// Mode is the attack driven at every shard (each shard gets its own
	// stream over its own logical space, seeded per shard — the
	// bank-interleaved view of a device-wide attack).
	Mode AttackMode
	// Bench, when non-empty, names a benchmark trace workload instead of an
	// attack. Trace sources do not factor across bank groups (their address
	// statistics are not interleave-invariant), so RunShardedLifetime
	// rejects such configs with ErrUnshardableSource; callers route them to
	// the unsharded path (RunBenchCell). The field exists so grid
	// schedulers can submit every cell through one config type and branch
	// on the typed error instead of guessing.
	Bench string
	// Shards is the number of independent bank groups; 0 uses the full
	// geometry's Ranks × Banks (= 128). SystemConfig.Pages must divide
	// evenly by it.
	Shards int
	// MaxDemandWrites caps the global run; 0 means 2 × total endurance.
	MaxDemandWrites uint64
	// CheckpointDir, when non-empty, checkpoints every shard run into
	// per-shard files under this directory (created if missing). With
	// Resume set, shards restore from their checkpoint files when present
	// and re-serve only the tail — the final result is bit-identical to an
	// uninterrupted run. Resume must use the same configuration that wrote
	// the checkpoints.
	CheckpointDir string
	// Resume restores shard state from CheckpointDir files when present.
	Resume bool
	// CheckpointEvery is the per-shard checkpoint cadence in demand writes
	// (0 uses the sim default).
	CheckpointEvery uint64
	// Metrics, when non-nil, receives per-shard cell timings and the merged
	// run gauges. Timing series are wall-clock and not reproducible; the
	// returned result is.
	Metrics *MetricsRegistry
	// Trace, when non-nil, receives one cell event per shard run.
	Trace *Tracer
	// Stop, when non-nil, preempts the run: the dispatcher stops handing
	// out shard tasks once it returns true, and in-flight shards wind down
	// at their next checkpoint (writing a final one first — see
	// sim.LifetimeConfig.Stop). The run returns an error wrapping
	// ErrRunStopped; with CheckpointDir set, re-running with Resume
	// finishes bit-identically. Must be safe for concurrent use.
	Stop func() bool
}

// ShardedResult is the merged outcome of a sharded lifetime run. The
// embedded LifetimeResult holds the exact global counters at first failure
// (or at the cap): DemandWrites is the global interleaved demand count and
// FailedPage is the global physical page index (shard-major: shard i owns
// pages [i·ShardPages, (i+1)·ShardPages)).
type ShardedResult struct {
	LifetimeResult
	// Shards and ShardPages record the partitioning.
	Shards     int
	ShardPages int
	// FailedShard is the shard whose page death ended the global run (-1
	// when the run hit the cap on every shard).
	FailedShard int
	// ShardDemand is the exact number of demand writes each shard served
	// within the merged global run; it sums to DemandWrites.
	ShardDemand []uint64
}

// shardSeedStride separates per-shard RNG streams (golden-ratio stride, the
// standard splitmix increment).
const shardSeedStride = 0x9E3779B97F4A7C15

func shardSeed(base uint64, shard int) uint64 {
	return base + shardSeedStride*(uint64(shard)+1)
}

// shardedRun carries the validated, derived parameters of one sharded run.
type shardedRun struct {
	sys    SystemConfig
	cfg    ShardedConfig
	shards int
	sp     int      // pages per shard
	end    []uint64 // global endurance map, sliced per shard
}

// buildShard constructs shard i's independent device, scheme and attack
// source. The endurance slice comes from one global process-variation map,
// so the sharded device is page-for-page the full-geometry device; only the
// traffic and scheme scope are per shard.
func (r *shardedRun) buildShard(i int) (Scheme, sim.Source, error) {
	geom := pcm.Geometry{
		Pages:    r.sp,
		PageSize: r.sys.PageSize,
		LineSize: 128,
		Ranks:    1,
		Banks:    1,
	}
	end := r.end[i*r.sp : (i+1)*r.sp]
	var dev *Device
	var err error
	if r.sys.Packed {
		dev, err = pcm.NewPackedDevice(geom, pcm.DefaultTiming(), end)
	} else {
		dev, err = pcm.NewDevice(geom, pcm.DefaultTiming(), end)
	}
	if err != nil {
		return nil, nil, fmt.Errorf("twl: shard %d device: %w", i, err)
	}
	seed := shardSeed(r.sys.Seed, i)
	s, err := wl.Build(r.cfg.Scheme, dev, seed)
	if err != nil {
		return nil, nil, fmt.Errorf("twl: shard %d scheme: %w", i, err)
	}
	st, err := attack.New(attack.DefaultConfig(r.cfg.Mode, r.sp, seed))
	if err != nil {
		return nil, nil, fmt.Errorf("twl: shard %d attack: %w", i, err)
	}
	return s, sim.FromAttack(st), nil
}

// runShard executes shard i capped at `cap` demand writes, checkpointing
// under the given phase tag when CheckpointDir is set.
func (r *shardedRun) runShard(i int, cap uint64, phase string) (LifetimeResult, error) {
	s, src, err := r.buildShard(i)
	if err != nil {
		return LifetimeResult{}, err
	}
	lc := sim.LifetimeConfig{MaxDemandWrites: cap, Stop: r.cfg.Stop}
	if r.cfg.CheckpointDir != "" {
		path := filepath.Join(r.cfg.CheckpointDir, fmt.Sprintf("shard-%04d.%s.ckpt", i, phase))
		resume := false
		if r.cfg.Resume {
			if _, err := os.Stat(path); err == nil {
				resume = true
			}
		}
		lc.Checkpoint = &sim.CheckpointConfig{Path: path, Every: r.cfg.CheckpointEvery, Resume: resume}
	}
	res, err := sim.RunLifetime(s, src, lc)
	if err != nil {
		return LifetimeResult{}, fmt.Errorf("twl: shard %d (%s): %w", i, phase, err)
	}
	return res, nil
}

// skippedShard is the result of a shard the global stream never reaches
// within the cap: a fresh device serving zero requests.
func skippedShard(scheme string) LifetimeResult {
	return LifetimeResult{Scheme: scheme, FailedPage: -1, Capped: true}
}

// RunShardedLifetime runs a full-geometry lifetime experiment sharded
// across the device's bank groups. See the package comment above for the
// model and the exactness argument; internal/sim/shard.go holds the merge
// arithmetic and its reference tests.
//
// The configuration is restricted to what shards cleanly: attack sources
// (each shard attacks its own logical space) and no spare pool
// (SystemConfig.SparePages must be 0 — retirement remaps across the whole
// device and does not factor).
func RunShardedLifetime(sys SystemConfig, cfg ShardedConfig) (*ShardedResult, error) {
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	if sys.SparePages != 0 {
		return nil, fmt.Errorf("twl: %w: sharded runs do not support spare pages (got %d)",
			ErrBadConfig, sys.SparePages)
	}
	if cfg.Bench != "" {
		return nil, fmt.Errorf("%w: benchmark workload %q must run unsharded (RunBenchCell)",
			ErrUnshardableSource, cfg.Bench)
	}
	shards := cfg.Shards
	if shards == 0 {
		full := pcm.DefaultGeometry()
		shards = full.Ranks * full.Banks
	}
	if shards < 1 {
		return nil, fmt.Errorf("twl: %w: Shards must be positive, got %d", ErrBadConfig, cfg.Shards)
	}
	if sys.Pages%shards != 0 {
		return nil, fmt.Errorf("twl: %w: Pages (%d) must divide evenly into %d shards",
			ErrBadConfig, sys.Pages, shards)
	}
	if cfg.CheckpointDir != "" {
		if err := os.MkdirAll(cfg.CheckpointDir, 0o755); err != nil {
			return nil, fmt.Errorf("twl: checkpoint dir: %w", err)
		}
		// A SIGKILL mid-install leaves a stale temp file next to the real
		// checkpoints; no writer is live yet, so this is the safe moment to
		// clear them.
		if _, err := snap.SweepOrphans(cfg.CheckpointDir); err != nil {
			return nil, fmt.Errorf("twl: checkpoint dir: %w", err)
		}
	}

	end, err := pv.Generate(pv.Config{
		Pages: sys.Pages,
		Mean:  sys.MeanEndurance,
		Sigma: sys.SigmaFraction * sys.MeanEndurance,
		Model: pv.Gaussian,
		Seed:  sys.Seed,
	})
	if err != nil {
		return nil, err
	}
	var totalEnd uint64
	for _, e := range end {
		totalEnd += e
	}
	globalCap := cfg.MaxDemandWrites
	if globalCap == 0 {
		if globalCap = 2 * totalEnd; globalCap < totalEnd {
			globalCap = ^uint64(0)
		}
	}

	r := &shardedRun{sys: sys, cfg: cfg, shards: shards, sp: sys.Pages / shards, end: end}

	// Phase 1 — scout: every shard runs to its local first failure (or its
	// share of the global cap).
	scout := make([]LifetimeResult, shards)
	var tasks []cellTask
	for i := 0; i < shards; i++ {
		i := i
		cap := sim.ShardRequests(globalCap, i, shards)
		if cap == 0 {
			scout[i] = skippedShard("")
			continue
		}
		tasks = append(tasks, cellTask{name: fmt.Sprintf("shard/%d/scout", i), run: func() error {
			res, err := r.runShard(i, cap, "scout")
			if err != nil {
				return err
			}
			scout[i] = res
			return nil
		}})
	}
	completed, err := runCellsStop(cfg.Metrics, cfg.Trace, cfg.Stop, tasks)
	if err != nil {
		return nil, fmt.Errorf("twl: sharded scout aborted with %d/%d shards done: %w",
			countCompleted(completed), len(tasks), err)
	}
	// A nil error with an incomplete mask means the preemption hook stopped
	// the dispatcher before every shard ran.
	if n := countCompleted(completed); n != len(tasks) {
		return nil, fmt.Errorf("twl: sharded scout preempted with %d/%d shards done: %w",
			n, len(tasks), ErrRunStopped)
	}

	outcomes := make([]sim.ShardOutcome, shards)
	for i, res := range scout {
		outcomes[i] = sim.ShardOutcome{Demand: res.DemandWrites, Failed: !res.Capped}
	}
	winner, globalDemand, failed := sim.MergeScout(outcomes)

	out := &ShardedResult{
		Shards:      shards,
		ShardPages:  r.sp,
		FailedShard: winner,
		ShardDemand: make([]uint64, shards),
	}
	final := scout
	if failed {
		// Phase 2 — exact: re-run every other shard capped to precisely the
		// requests the global stream sends it before the failure. The scout
		// proved each such shard survives its quota, so these runs cap out
		// (a failure here means the merge arithmetic or a scheme's
		// determinism is broken — fail loudly).
		if err := sim.CheckQuotaSum(globalDemand, shards); err != nil {
			return nil, err
		}
		if q := sim.ShardQuota(globalDemand, winner, shards); q != scout[winner].DemandWrites {
			return nil, fmt.Errorf("twl: winner shard %d demand %d does not match its quota %d",
				winner, scout[winner].DemandWrites, q)
		}
		exact := make([]LifetimeResult, shards)
		exact[winner] = scout[winner]
		tasks = tasks[:0]
		for i := 0; i < shards; i++ {
			if i == winner {
				continue
			}
			i := i
			quota := sim.ShardQuota(globalDemand, i, shards)
			if quota == 0 {
				exact[i] = skippedShard(scout[winner].Scheme)
				continue
			}
			tasks = append(tasks, cellTask{name: fmt.Sprintf("shard/%d/exact", i), run: func() error {
				res, err := r.runShard(i, quota, "exact")
				if err != nil {
					return err
				}
				if !res.Capped {
					return fmt.Errorf("twl: shard %d failed at demand %d inside its quota %d — "+
						"scout said it survives; non-deterministic scheme or merge bug",
						i, res.DemandWrites, quota)
				}
				if res.DemandWrites != quota {
					return fmt.Errorf("twl: shard %d served %d demand writes, quota %d",
						i, res.DemandWrites, quota)
				}
				exact[i] = res
				return nil
			}})
		}
		completed, err := runCellsStop(cfg.Metrics, cfg.Trace, cfg.Stop, tasks)
		if err != nil {
			return nil, fmt.Errorf("twl: sharded exact phase aborted with %d/%d shards done: %w",
				countCompleted(completed), len(tasks), err)
		}
		if n := countCompleted(completed); n != len(tasks) {
			return nil, fmt.Errorf("twl: sharded exact phase preempted with %d/%d shards done: %w",
				n, len(tasks), ErrRunStopped)
		}
		final = exact
	}

	// Deterministic merge: sum counters in shard order.
	merged := LifetimeResult{Scheme: cfg.Scheme, FailedPage: -1, Capped: !failed}
	for i, res := range final {
		if res.Scheme != "" {
			merged.Scheme = res.Scheme
		}
		out.ShardDemand[i] = res.DemandWrites
		merged.DemandWrites += res.DemandWrites
		merged.DemandReads += res.DemandReads
		merged.DeviceWrites += res.DeviceWrites
		merged.SwapWrites += res.SwapWrites
		merged.Swaps += res.Swaps
		merged.Cycles += res.Cycles
	}
	if failed {
		if merged.DemandWrites != globalDemand {
			return nil, fmt.Errorf("twl: merged demand %d does not match global first failure %d",
				merged.DemandWrites, globalDemand)
		}
		merged.FailedPage = final[winner].FailedPage + winner*r.sp
	}
	merged.Normalized = float64(merged.DemandWrites) / float64(totalEnd)
	out.LifetimeResult = merged

	if cfg.Metrics != nil {
		reg := cfg.Metrics
		reg.Help("twl_sharded_shards", "independent bank-group shards in the run")
		reg.Help("twl_sharded_failed_shard", "shard index of the global first failure (-1 if capped)")
		reg.Help("twl_sharded_demand_writes", "merged global demand writes at first failure")
		reg.Help("twl_sharded_normalized_lifetime", "merged demand writes / total endurance")
		reg.Gauge("twl_sharded_shards").Set(float64(shards))
		reg.Gauge("twl_sharded_failed_shard").Set(float64(out.FailedShard))
		reg.Gauge("twl_sharded_demand_writes").Set(float64(merged.DemandWrites))
		reg.Gauge("twl_sharded_normalized_lifetime").Set(merged.Normalized)
	}
	return out, nil
}
