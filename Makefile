# Tier-1 verification (referenced from ROADMAP.md): formatting, static
# analysis, build and the full race-enabled test suite.
.PHONY: check fmt vet build test

check: fmt vet build test

fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	go vet ./...

build:
	go build ./...

test:
	go test -race ./...
