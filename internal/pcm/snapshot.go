package pcm

import (
	"fmt"
	"io"

	"twl/internal/snap"
)

// Snapshot serializes the device's mutable state: wear counters, payload
// tags, traffic totals, the failure log with its handled prefix, the
// retirement redirect table and the min-remaining watermark. Geometry,
// timing and the endurance map are construction inputs and are not
// persisted — Restore requires a device built with the same ones.
//
// The watermark (slack/slackAt/slackValid) must be persisted even though it
// is only a cache: MinRemainingAtLeast's conservative-"no" path depends on
// when the last rescan happened, so dropping it would let a resumed run
// answer a horizon query differently from the uninterrupted run.
// The wire format is storage-width independent: a packed device writes its
// uint32 wear counters as the same length-prefixed uint64 stream a wide
// device writes, so checkpoints interoperate between the two modes and the
// differential tests can compare snapshots byte for byte.
func (d *Device) Snapshot(w io.Writer) error {
	sw := snap.NewWriter(w)
	if d.wear32 != nil {
		sw.U32(uint32(len(d.wear32)))
		for _, wv := range d.wear32 {
			sw.U64(uint64(wv))
		}
	} else {
		sw.U64s(d.wear)
	}
	sw.U64s(d.payload)
	sw.U64(d.writes)
	sw.U64(d.reads)
	sw.Ints(d.failedLog)
	sw.Int(d.acked)
	sw.Bool(d.redirect != nil)
	if d.redirect != nil {
		sw.Ints(d.redirect)
	}
	sw.U64(d.slack)
	sw.U64(d.slackAt)
	sw.Bool(d.slackValid)
	return sw.Err()
}

// Restore loads state written by Snapshot into a device with identical
// geometry (the wear/payload lengths are validated against it). The
// isTarget index is derived from the restored redirect table rather than
// persisted.
func (d *Device) Restore(r io.Reader) error {
	sr := snap.NewReader(r)
	if d.wear32 != nil {
		if err := restoreWear32(sr, d.wear32); err != nil {
			return err
		}
	} else {
		sr.U64sInto(d.wear)
	}
	sr.U64sInto(d.payload)
	d.writes = sr.U64()
	d.reads = sr.U64()
	d.failedLog = sr.IntSlice(d.geom.TotalPages())
	d.acked = sr.Int()
	d.redirect = nil
	d.isTarget = nil
	if sr.Bool() {
		redirect := make([]int, d.geom.TotalPages())
		sr.IntsInto(redirect)
		isTarget := make([]bool, len(redirect))
		if sr.Err() == nil {
			for pp, t := range redirect {
				if t < 0 {
					continue
				}
				if t < d.geom.Pages || t >= len(redirect) {
					return fmt.Errorf("pcm: checkpoint redirect %d -> %d outside spare range", pp, t)
				}
				isTarget[t] = true
			}
			d.redirect = redirect
			d.isTarget = isTarget
		}
	}
	d.slack = sr.U64()
	d.slackAt = sr.U64()
	d.slackValid = sr.Bool()
	return sr.Err()
}

// restoreWear32 reads the uint64-wire wear stream into a packed device's
// uint32 counters, rejecting values the packed width cannot represent (a
// checkpoint taken on a wide device whose wear outgrew uint32).
func restoreWear32(sr *snap.Reader, dst []uint32) error {
	if got := sr.U32(); sr.Err() == nil && int(got) != len(dst) {
		return fmt.Errorf("pcm: checkpoint wear length %d does not match %d pages", got, len(dst))
	}
	for i := range dst {
		v := sr.U64()
		if v > 1<<32-1 {
			return fmt.Errorf("pcm: checkpoint wear %d at page %d exceeds packed width", v, i)
		}
		dst[i] = uint32(v)
	}
	return sr.Err()
}
