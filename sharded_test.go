package twl

import (
	"errors"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"twl/internal/attack"
	"twl/internal/pcm"
	"twl/internal/pv"
	"twl/internal/sim"
	"twl/internal/wl"
)

// shardedTestSystem is small enough that a sharded run with every phase
// finishes in well under a second.
func shardedTestSystem(seed uint64) SystemConfig {
	sys := SmallSystem(seed)
	return sys
}

// TestShardedSingleShardMatchesDirect: with Shards=1 the orchestration is a
// plain lifetime run; reproduce it by hand through the same constructors
// and require an identical result.
func TestShardedSingleShardMatchesDirect(t *testing.T) {
	sys := shardedTestSystem(21)
	res, err := RunShardedLifetime(sys, ShardedConfig{Scheme: "TWL_swp", Mode: AttackInconsistent, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}

	end, err := pv.Generate(pv.Config{
		Pages: sys.Pages, Mean: sys.MeanEndurance, Sigma: sys.SigmaFraction * sys.MeanEndurance,
		Model: pv.Gaussian, Seed: sys.Seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	var totalEnd uint64
	for _, e := range end {
		totalEnd += e
	}
	geom := pcm.Geometry{Pages: sys.Pages, PageSize: sys.PageSize, LineSize: 128, Ranks: 1, Banks: 1}
	dev, err := pcm.NewDevice(geom, pcm.DefaultTiming(), end)
	if err != nil {
		t.Fatal(err)
	}
	seed := shardSeed(sys.Seed, 0)
	s, err := wl.Build("TWL_swp", dev, seed)
	if err != nil {
		t.Fatal(err)
	}
	st, err := attack.New(attack.DefaultConfig(attack.Inconsistent, sys.Pages, seed))
	if err != nil {
		t.Fatal(err)
	}
	direct, err := sim.RunLifetime(s, sim.FromAttack(st), sim.LifetimeConfig{MaxDemandWrites: 2 * totalEnd})
	if err != nil {
		t.Fatal(err)
	}

	if res.LifetimeResult != direct {
		t.Errorf("sharded (1 shard) differs from direct run:\nsharded: %+v\ndirect: %+v",
			res.LifetimeResult, direct)
	}
	if res.FailedShard != 0 || res.Shards != 1 || res.ShardPages != sys.Pages {
		t.Errorf("sharded bookkeeping: %+v", res)
	}
}

// TestShardedReproducible: two identical invocations produce identical
// merged results, regardless of worker scheduling.
func TestShardedReproducible(t *testing.T) {
	sys := shardedTestSystem(9)
	cfg := ShardedConfig{Scheme: "TWL_swp", Mode: AttackInconsistent, Shards: 8}
	a, err := RunShardedLifetime(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunShardedLifetime(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("sharded run not reproducible:\nfirst: %+v\nsecond: %+v", a, b)
	}
	var sum uint64
	for _, d := range a.ShardDemand {
		sum += d
	}
	if sum != a.DemandWrites {
		t.Errorf("ShardDemand sums to %d, DemandWrites %d", sum, a.DemandWrites)
	}
	if !a.Capped && a.FailedShard < 0 {
		t.Errorf("failed run without a failed shard: %+v", a)
	}
}

// TestShardedPackedMatchesWide ties the tentpole layers together: the same
// sharded run on packed storage (packed device + packed TWL engine) and on
// wide storage must merge to the identical result.
func TestShardedPackedMatchesWide(t *testing.T) {
	sys := shardedTestSystem(33)
	cfg := ShardedConfig{Scheme: "TWL_swp", Mode: AttackInconsistent, Shards: 8}
	wide, err := RunShardedLifetime(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys.Packed = true
	packed, err := RunShardedLifetime(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wide, packed) {
		t.Errorf("packed sharded run differs from wide:\nwide: %+v\npacked: %+v", wide, packed)
	}
}

// TestShardedResume: a run writing per-shard checkpoints, then re-invoked
// with Resume, restores each shard mid-stream and still produces the
// bit-identical merged result.
func TestShardedResume(t *testing.T) {
	sys := shardedTestSystem(5)
	dir := t.TempDir()
	cfg := ShardedConfig{
		Scheme:          "TWL_swp",
		Mode:            AttackInconsistent,
		Shards:          4,
		CheckpointDir:   dir,
		CheckpointEvery: 4096,
	}
	first, err := RunShardedLifetime(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	matches, err := filepath.Glob(filepath.Join(dir, "shard-*.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 {
		t.Fatal("no per-shard checkpoint files were written")
	}

	cfg.Resume = true
	resumed, err := RunShardedLifetime(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, resumed) {
		t.Errorf("resumed run differs:\nfirst: %+v\nresumed: %+v", first, resumed)
	}
}

// TestShardedAnalyticBounds cross-checks the merged lifetime against the
// analytic envelope: normalized lifetime cannot exceed 1 (no scheme can
// serve more demand than the array's total endurance minus overheads), TWL
// under the inconsistent attack must stay a healthy fraction of ideal
// (the paper's headline property), and NOWL under the repeat attack must
// die at roughly the weakest page's endurance — orders of magnitude less.
func TestShardedAnalyticBounds(t *testing.T) {
	sys := shardedTestSystem(13)
	twl, err := RunShardedLifetime(sys, ShardedConfig{Scheme: "TWL_swp", Mode: AttackInconsistent, Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	if twl.Capped {
		t.Fatalf("TWL run hit the 2x-endurance cap; something is wrong: %+v", twl.LifetimeResult)
	}
	if twl.Normalized > 1.0 {
		t.Errorf("TWL normalized lifetime %.3f exceeds the analytic ceiling 1.0", twl.Normalized)
	}
	if twl.Normalized < 0.2 {
		t.Errorf("TWL normalized lifetime %.3f under inconsistent attack; expected a healthy fraction of ideal", twl.Normalized)
	}
	if twl.FailedPage < 0 || twl.FailedPage >= sys.Pages {
		t.Errorf("global FailedPage %d out of range [0, %d)", twl.FailedPage, sys.Pages)
	}

	nowl, err := RunShardedLifetime(sys, ShardedConfig{Scheme: "NOWL", Mode: AttackRepeat, Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Repeat hammers one page per shard; without leveling the global first
	// failure lands near the weakest hammered page's endurance, far below
	// even one page-share of the array.
	if nowl.Normalized > twl.Normalized/10 {
		t.Errorf("NOWL normalized %.5f not well below TWL %.3f — merge or attack wiring broken",
			nowl.Normalized, twl.Normalized)
	}
}

// TestShardedValidation covers the rejected configurations.
func TestShardedValidation(t *testing.T) {
	sys := shardedTestSystem(1)

	bad := sys
	bad.SparePages = 16
	if _, err := RunShardedLifetime(bad, ShardedConfig{Scheme: "TWL_swp", Mode: AttackRepeat, Shards: 4}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("spare pages: got %v, want ErrBadConfig", err)
	}

	if _, err := RunShardedLifetime(sys, ShardedConfig{Scheme: "TWL_swp", Mode: AttackRepeat, Shards: 7}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("non-dividing shards: got %v, want ErrBadConfig", err)
	}

	if _, err := RunShardedLifetime(sys, ShardedConfig{Scheme: "no-such-scheme", Mode: AttackRepeat, Shards: 4}); !errors.Is(err, ErrUnknownScheme) {
		t.Errorf("unknown scheme: got %v, want ErrUnknownScheme", err)
	}
}

// TestShardedDefaultShardCount: Shards=0 uses the full geometry's bank
// count (4 ranks x 32 banks = 128).
func TestShardedDefaultShardCount(t *testing.T) {
	sys := shardedTestSystem(2)
	// 512 pages / 128 shards = 4 pages per shard; TWL needs even pages, so
	// this exercises tiny shards end to end.
	res, err := RunShardedLifetime(sys, ShardedConfig{Scheme: "TWL_swp", Mode: AttackRepeat})
	if err != nil {
		t.Fatal(err)
	}
	full := pcm.DefaultGeometry()
	if res.Shards != full.Ranks*full.Banks {
		t.Errorf("default Shards = %d, want %d", res.Shards, full.Ranks*full.Banks)
	}
	if res.ShardPages != sys.Pages/res.Shards {
		t.Errorf("ShardPages = %d, want %d", res.ShardPages, sys.Pages/res.Shards)
	}
}

// TestShardedRejectsBenchSource: benchmark trace sources do not factor
// across bank groups, so a Bench config must fail with the typed
// ErrUnshardableSource (the service routes such cells to RunBenchCell).
func TestShardedRejectsBenchSource(t *testing.T) {
	sys := shardedTestSystem(3)
	_, err := RunShardedLifetime(sys, ShardedConfig{Scheme: "TWL_swp", Bench: "vips", Shards: 4})
	if !errors.Is(err, ErrUnshardableSource) {
		t.Fatalf("bench source: got %v, want ErrUnshardableSource", err)
	}
	if !strings.Contains(err.Error(), "vips") {
		t.Errorf("error %v does not name the rejected workload", err)
	}
}

// TestShardedStopResume: a preempted sharded run returns ErrRunStopped,
// leaves resumable per-shard checkpoints, and a resumed run without the
// hook finishes identically to one that was never preempted.
func TestShardedStopResume(t *testing.T) {
	sys := shardedTestSystem(5)
	baseline, err := RunShardedLifetime(sys, ShardedConfig{
		Scheme: "TWL_swp", Mode: AttackInconsistent, Shards: 4,
	})
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	cfg := ShardedConfig{
		Scheme:          "TWL_swp",
		Mode:            AttackInconsistent,
		Shards:          4,
		CheckpointDir:   dir,
		CheckpointEvery: 4096,
	}
	stopCfg := cfg
	var stopped atomic.Bool
	stopCfg.Stop = func() bool {
		// Fire on the first poll; every shard then winds down at its next
		// checkpoint boundary.
		stopped.Store(true)
		return true
	}
	if _, err := RunShardedLifetime(sys, stopCfg); !errors.Is(err, ErrRunStopped) {
		t.Fatalf("preempted run: got %v, want ErrRunStopped", err)
	}
	if !stopped.Load() {
		t.Fatal("Stop hook was never polled")
	}

	cfg.Resume = true
	resumed, err := RunShardedLifetime(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(baseline, resumed) {
		t.Errorf("resume after preemption differs:\nbaseline: %+v\nresumed: %+v", baseline, resumed)
	}
}
