// Package attack implements the wear-out attack streams of Section 5.2:
// the repeat, random and scan write modes from Qureshi et al. (HPCA 2011)
// and the paper's own inconsistent-write attack (Section 3.2), which
// alternates a write-intensity distribution and its reverse across detected
// swap phases to mislead prediction-based wear leveling.
//
// Attackers observe only what the Section 3.1 threat model allows: the
// addresses they issue and the memory response time of each request (swaps
// block the memory, producing a detectable latency spike). Internal states
// of the wear-leveling engine are never consulted.
package attack

import (
	"errors"
	"fmt"

	"twl/internal/rng"
)

// Mode enumerates the attack modes of Figure 6.
type Mode int

const (
	// Repeat fixes one address and writes it forever.
	Repeat Mode = iota
	// Random writes uniformly random addresses.
	Random
	// Scan writes consecutive addresses, wrapping around.
	Scan
	// Inconsistent reverses its write-intensity distribution every time it
	// detects the end of a swap phase (the paper's attack).
	Inconsistent
)

// String implements fmt.Stringer; these labels appear in the Figure 6 rows.
func (m Mode) String() string {
	switch m {
	case Repeat:
		return "repeat"
	case Random:
		return "random"
	case Scan:
		return "scan"
	case Inconsistent:
		return "inconsistent"
	default:
		return fmt.Sprintf("attack.Mode(%d)", int(m))
	}
}

// Modes lists all four attack modes in Figure 6 order.
func Modes() []Mode { return []Mode{Repeat, Random, Scan, Inconsistent} }

// Feedback is what the attacker observes after each request: whether the
// response time spiked (a swap blocked the request) — the footnote-1 signal.
type Feedback struct {
	Blocked bool
	Cycles  int64
}

// Stream produces the attack's write addresses one at a time.
type Stream interface {
	// Name labels the stream in reports.
	Name() string
	// Next returns the next logical page to write, given the feedback from
	// the previously issued request.
	Next(fb Feedback) int
}

// RunStream is the optional fast-forward interface for streams whose next
// writes form a maximal same-address run that does not depend on per-request
// feedback (the repeat attack: one address forever). NextRun returns the
// address and how many consecutive writes of it the stream commits to; the
// caller treats all n as consumed even if it stops early (the run has no
// internal state to rewind). Feedback-driven streams must implement
// FeedbackRunStream instead, so the caller knows to relay the served
// requests' feedback.
type RunStream interface {
	Stream
	NextRun(fb Feedback) (addr int, n int)
}

// SweepStream is the optional fast-forward interface for streams whose next
// writes cover consecutive ascending addresses addr, addr+1, …, addr+n-1
// without wrapping (the scan attack: one full pass per call). The same
// feedback-independence and all-n-consumed rules as RunStream apply.
type SweepStream interface {
	Stream
	NextSweep(fb Feedback) (addr int, n int)
}

// FeedbackRunStream is the fast-forward interface for feedback-driven
// streams (the inconsistent attack). The stream still emits same-address
// runs, but because its control state evolves with every response it
// observes, a run may only extend as far as the stream can prove that *no
// possible feedback sequence* changes its output — the stream's own
// feedback reactions become the event horizons, exactly as scheme-internal
// events do for wl.RunWriter.
//
// Protocol: NextRun(fb) consumes fb as the feedback of the request before
// the run (like Next) and commits to n same-address writes. The caller
// serves them and, for every serving step, relays the served requests'
// feedback through Observe(fb, k) — uniform feedback for a bulk-absorbed
// chunk of k, the individual feedback for a per-write-served request
// (k == 1). Observe consumes at most the feedback of the run's first n-1
// requests; the last request's feedback reaches the stream through the next
// NextRun call, exactly as in the per-request protocol. A caller that
// serves every request through Next instead (never calling NextRun) sees
// the identical stream.
type FeedbackRunStream interface {
	Stream
	NextRun(fb Feedback) (addr int, n int)
	Observe(fb Feedback, n int)
}

// repeatRunLength is how many writes a repeat RunStream commits to per
// NextRun call; the stream is infinite, so the value only bounds how much
// work a simulator buys per call.
const repeatRunLength = 1 << 20

// Config describes an attack to construct.
type Config struct {
	Mode Mode
	// Pages is the logical address space the attacker may touch.
	Pages int
	// TargetPages is how many distinct addresses the inconsistent attack
	// cycles over (N in Section 3.2); 0 targets a quarter of the logical
	// space — the compromised OS can write anywhere, and a large target set
	// keeps the attacked-cold addresses at the bottom of every hot/cold
	// ranking. Ignored by other modes.
	TargetPages int
	// QuietThreshold is how many unblocked writes after a blocked one the
	// inconsistent attacker waits before declaring the swap phase over.
	QuietThreshold int
	// Seed drives the random mode.
	Seed uint64
}

// DefaultConfig returns an attack over pages logical pages.
func DefaultConfig(mode Mode, pages int, seed uint64) Config {
	return Config{
		Mode:           mode,
		Pages:          pages,
		TargetPages:    0, // inconsistent mode: a quarter of the space
		QuietThreshold: 48,
		Seed:           seed,
	}
}

// New constructs the attack stream described by cfg.
func New(cfg Config) (Stream, error) {
	if cfg.Pages <= 0 {
		return nil, errors.New("attack: Pages must be positive")
	}
	switch cfg.Mode {
	case Repeat:
		return &repeatStream{addr: 0}, nil
	case Random:
		return &randomStream{n: cfg.Pages, src: rng.NewXorshift(cfg.Seed)}, nil
	case Scan:
		return &scanStream{n: cfg.Pages}, nil
	case Inconsistent:
		n := cfg.TargetPages
		if n == 0 {
			n = cfg.Pages / 4
			if n < 2 {
				n = 2
			}
		}
		if n < 2 {
			return nil, errors.New("attack: inconsistent attack needs TargetPages >= 2")
		}
		if n > cfg.Pages {
			n = cfg.Pages
		}
		q := cfg.QuietThreshold
		if q <= 0 {
			q = 48
		}
		s := &inconsistentStream{n: n, quietThreshold: q}
		s.buildWeights()
		return s, nil
	default:
		return nil, fmt.Errorf("attack: unknown mode %v", cfg.Mode)
	}
}

type repeatStream struct{ addr int }

func (s *repeatStream) Name() string         { return "repeat" }
func (s *repeatStream) Next(fb Feedback) int { return s.addr }

// NextRun implements RunStream: the repeat attack is one unbounded
// same-address run.
func (s *repeatStream) NextRun(Feedback) (int, int) { return s.addr, repeatRunLength }

type randomStream struct {
	n   int // snap: construction input
	src *rng.Xorshift
}

func (s *randomStream) Name() string         { return "random" }
func (s *randomStream) Next(fb Feedback) int { return s.src.Intn(s.n) }

type scanStream struct {
	n   int // snap: construction input
	pos int
}

func (s *scanStream) Name() string { return "scan" }
func (s *scanStream) Next(fb Feedback) int {
	a := s.pos
	s.pos++
	if s.pos >= s.n {
		s.pos = 0
	}
	return a
}

// NextSweep implements SweepStream: the rest of the current ascending pass,
// after which the scan wraps to address 0.
func (s *scanStream) NextSweep(Feedback) (int, int) {
	a := s.pos
	s.pos = 0
	return a, s.n - a
}

// inconsistentStream implements the Section 3.2 attack. It cycles through N
// target addresses in bursts — address i written weights[i] times per pass,
// the Figure 3 pattern — and reverses the weight vector whenever it detects
// that a swap phase has completed: a blocked response followed by
// quietThreshold unblocked writes. Reversals are rate-limited to a minimum
// spacing of several passes (the attacker wants the misleading distribution
// observed for a full prediction window before striking), and a fallback
// reversal fires if no swap has been observed for many passes, so schemes
// whose maintenance is invisible still face an alternating distribution.
//
// The weight vector is the limit case of the paper's W_1 < W_k < W_N: the
// lower half of the targets receives zero writes — maximally cold, so any
// hot/cold classifier files them with the coldest data and parks them on
// the weakest pages — and the upper half ramps up to the 90-write bursts of
// the Figure 3 example. After a reversal the halves exchange roles and the
// previously-frozen addresses take the heaviest bursts.
type inconsistentStream struct {
	n              int   // snap: construction input
	weights        []int // snap: derived by buildWeights
	passLen        int   // snap: derived by buildWeights
	quietThreshold int   // snap: construction input

	idx       int // current target address
	remaining int // writes left in the current burst
	reversed  bool

	sawBlock   bool
	quiet      int
	sinceFlip  int
	minFlipAt  int // snap: derived by buildWeights
	fallbackAt int // snap: derived by buildWeights

	// owed is how many served requests of the current NextRun commitment
	// still owe the stream their feedback (see FeedbackRunStream): their
	// swap-detection halves were deferred to Observe when the run's
	// emission halves were bulk-applied.
	owed int

	// Reversals counts distribution flips (exported via accessor for tests
	// and experiment logs).
	reversals int
}

var _ FeedbackRunStream = (*inconsistentStream)(nil)

// buildWeights constructs the burst lengths: zero for the cold half,
// an ascending 2..90 ramp (the Figure 3 spread) for the hot half.
func (s *inconsistentStream) buildWeights() {
	s.weights = make([]int, s.n)
	total := 0
	half := s.n / 2
	for i := half; i < s.n; i++ {
		span := s.n - half - 1
		w := 2
		if span > 0 {
			w = 2 + (88*(i-half))/span
		}
		s.weights[i] = w
		total += w
	}
	s.passLen = total
	s.minFlipAt = 4 * total
	s.fallbackAt = 20 * total
	s.idx = -1
	s.advance()
}

// advance moves to the next target with a non-zero burst.
func (s *inconsistentStream) advance() {
	for {
		s.idx++
		if s.idx >= s.n {
			s.idx = 0
		}
		if w := s.weight(s.idx); w > 0 {
			s.remaining = w
			return
		}
	}
}

func (s *inconsistentStream) Name() string { return "inconsistent" }

// Reversals reports how many times the distribution flipped.
func (s *inconsistentStream) Reversals() int { return s.reversals }

func (s *inconsistentStream) Next(fb Feedback) int {
	// Swap-phase detection (Section 3.2 step-1/step-2): remember blocked
	// responses; once the memory has been quiet for quietThreshold writes
	// after a block, the swap phase is over — reverse the distribution.
	if fb.Blocked {
		s.sawBlock = true
		s.quiet = 0
	} else if s.sawBlock {
		s.quiet++
		if s.quiet >= s.quietThreshold && s.sinceFlip >= s.minFlipAt {
			s.reverse()
		}
	}
	s.sinceFlip++
	if s.sinceFlip >= s.fallbackAt {
		// No observable swap for many passes: flip anyway.
		s.reverse()
	}

	// Burst emission.
	if s.remaining == 0 {
		s.advance()
	}
	s.remaining--
	return s.idx
}

// NextRun implements FeedbackRunStream. Next interleaves two independent
// halves per request: the swap-detection half (sawBlock/quiet bookkeeping,
// which reads the previous request's feedback and may reverse) and the
// emission half (sinceFlip and burst advance, which may also reverse via the
// fallback). As long as no reversal can fire, the halves touch disjoint
// state and commute — so NextRun serves the first request through the full
// serial Next (absorbing any reversal at the run head), bulk-applies the
// emission halves of the longest provably reversal-free extension, and
// defers that extension's detection halves to Observe.
func (s *inconsistentStream) NextRun(fb Feedback) (int, int) {
	a := s.Next(fb)
	h := s.safeHorizon()
	s.sinceFlip += h
	s.remaining -= h
	s.owed = h
	return a, 1 + h
}

// safeHorizon returns how many writes beyond the one just emitted are
// guaranteed to repeat the same address with no reversal, whatever feedback
// the served writes produce. Three bounds: the current burst's remainder
// (the address changes after it), the fallback reversal (fires when
// sinceFlip reaches fallbackAt, feedback-independent), and the earliest
// future request at which the swap-end reversal could fire assuming
// worst-case feedback — a quiet streak running on unbroken if a block was
// already seen, or a block on the very next response otherwise.
func (s *inconsistentStream) safeHorizon() int {
	h := s.remaining
	if f := s.fallbackAt - s.sinceFlip - 1; f < h {
		h = f
	}
	// j is the earliest request index (1-based, counting from the next
	// request) at which quiet could reach quietThreshold; the reversal
	// additionally requires sinceFlip (read before its increment) to have
	// reached minFlipAt by then.
	j := s.quietThreshold + 1
	if s.sawBlock {
		j = s.quietThreshold - s.quiet
	}
	if m := s.minFlipAt - s.sinceFlip + 1; m > j {
		j = m
	}
	if j-1 < h {
		h = j - 1
	}
	if h < 0 {
		h = 0
	}
	return h
}

// Observe implements FeedbackRunStream: the deferred swap-detection halves
// of n served requests, under their shared feedback. Within a NextRun
// commitment safeHorizon guarantees no reversal can fire, so the halves
// reduce to O(1) counter arithmetic; the run's last request is never
// consumed here (owed caps at n-1) — its feedback arrives through the next
// NextRun, as in the serial protocol.
func (s *inconsistentStream) Observe(fb Feedback, n int) {
	if n > s.owed {
		n = s.owed
	}
	if n <= 0 {
		return
	}
	s.owed -= n
	if fb.Blocked {
		s.sawBlock = true
		s.quiet = 0
	} else if s.sawBlock {
		s.quiet += n
	}
}

// weight returns the current burst length for address i under the current
// orientation.
func (s *inconsistentStream) weight(i int) int {
	if s.reversed {
		return s.weights[s.n-1-i]
	}
	return s.weights[i]
}

// reverse flips the distribution and restarts the pass.
func (s *inconsistentStream) reverse() {
	s.reversed = !s.reversed
	s.reversals++
	s.sawBlock = false
	s.quiet = 0
	s.sinceFlip = 0
	s.idx = -1
	s.advance()
}
