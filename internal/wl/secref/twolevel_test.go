package secref

import (
	"testing"

	"twl/internal/wl"
	"twl/internal/wl/wltest"
)

func buildTwoLevel(tb testing.TB, seed uint64) wl.Scheme {
	s, err := NewTwoLevel(wltest.NewDevice(tb, 256, seed), TwoLevelConfig{
		Regions: 8, InnerInterval: 8, OuterInterval: 64, Seed: seed,
	})
	if err != nil {
		tb.Fatal(err)
	}
	return s
}

func TestTwoLevelConformance(t *testing.T) {
	wltest.Run(t, buildTwoLevel)
}

func TestTwoLevelValidation(t *testing.T) {
	dev := wltest.NewDevice(t, 256, 1)
	bad := []TwoLevelConfig{
		{Regions: 0, InnerInterval: 8, OuterInterval: 64},
		{Regions: 8, InnerInterval: 0, OuterInterval: 64},
		{Regions: 8, InnerInterval: 8, OuterInterval: 0},
		{Regions: 3, InnerInterval: 8, OuterInterval: 64}, // 3 doesn't divide 256
	}
	for i, cfg := range bad {
		if _, err := NewTwoLevel(dev, cfg); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	// Region size must be a power of two.
	dev192 := wltest.NewDevice(t, 192, 1)
	if _, err := NewTwoLevel(dev192, TwoLevelConfig{Regions: 4, InnerInterval: 8, OuterInterval: 64}); err == nil {
		t.Error("region size 48 accepted")
	}
	// Two-level also needs a power-of-two total page count for the outer
	// XOR remap.
	dev192b := wltest.NewDevice(t, 192, 1)
	if _, err := NewTwoLevel(dev192b, TwoLevelConfig{Regions: 3, InnerInterval: 8, OuterInterval: 64}); err == nil {
		t.Error("non-power-of-two total accepted")
	}
}

func TestDefaultTwoLevelConfigScales(t *testing.T) {
	cfg := DefaultTwoLevelConfig(2048, 20000, 1)
	if cfg.Regions <= 0 || 2048%cfg.Regions != 0 {
		t.Fatalf("bad region count %d", cfg.Regions)
	}
	// The inner deposit quantum (regionSize × inner / 2) must be well below
	// the endurance.
	regionSize := 2048 / cfg.Regions
	if float64(regionSize*cfg.InnerInterval)/2 > 20000/2 {
		t.Fatalf("inner quantum too coarse: region %d × interval %d vs endurance 20000",
			regionSize, cfg.InnerInterval)
	}
	// Higher endurance affords coarser (cheaper) intervals.
	cfgHi := DefaultTwoLevelConfig(2048, 1e8, 1)
	if cfgHi.InnerInterval < cfg.InnerInterval || cfgHi.OuterInterval < cfg.OuterInterval {
		t.Fatalf("intervals did not scale up with endurance: %+v vs %+v", cfgHi, cfg)
	}
}

// TestTwoLevelSpreadsRepeatAcrossRegions: the single-level scheme confines
// a repeat stream to one region forever; the outer level must carry it
// across regions.
func TestTwoLevelSpreadsRepeatAcrossRegions(t *testing.T) {
	dev := wltest.NewDevice(t, 256, 3)
	s, err := NewTwoLevel(dev, TwoLevelConfig{Regions: 8, InnerInterval: 4, OuterInterval: 16, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	const writes = 200000
	for i := 0; i < writes; i++ {
		s.Write(5, uint64(i))
	}
	regionsTouched := 0
	for r := 0; r < 8; r++ {
		var wear uint64
		for p := r * 32; p < (r+1)*32; p++ {
			wear += dev.Wear(p)
		}
		if wear > 0 {
			regionsTouched++
		}
	}
	if regionsTouched < 6 {
		t.Fatalf("repeat stream touched only %d/8 regions; outer level not rotating", regionsTouched)
	}
}

// TestTwoLevelUniformWear: under a repeat stream the combined levels must
// keep the max page wear within a small multiple of the mean.
func TestTwoLevelUniformWear(t *testing.T) {
	dev := wltest.NewDevice(t, 256, 4)
	s, err := NewTwoLevel(dev, TwoLevelConfig{Regions: 8, InnerInterval: 4, OuterInterval: 16, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	const writes = 400000
	for i := 0; i < writes; i++ {
		s.Write(100, uint64(i))
	}
	sum := dev.Summary()
	mean := float64(sum.TotalWear) / 256
	if float64(sum.MaxWear) > 5*mean {
		t.Fatalf("max wear %d > 5× mean %.0f", sum.MaxWear, mean)
	}
}

func TestTwoLevelInvariantsMidSweeps(t *testing.T) {
	dev := wltest.NewDevice(t, 64, 5)
	s, err := NewTwoLevel(dev, TwoLevelConfig{Regions: 4, InnerInterval: 1, OuterInterval: 3, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64*8; i++ {
		s.Write(i%64, uint64(i))
		if err := s.CheckInvariants(); err != nil {
			t.Fatalf("after write %d: %v", i, err)
		}
	}
}

func TestTwoLevelName(t *testing.T) {
	if buildTwoLevel(t, 1).Name() != "SR2" {
		t.Fatal("name mismatch")
	}
}
