package wl

import (
	"io"

	"twl/internal/obs"
	"twl/internal/pcm"
	"twl/internal/snap"
)

// Instrument wraps a scheme so that every request it serves is recorded in
// reg: per-operation counters, a blocked-request counter, and a latency
// histogram, all labeled with the scheme name. Every baseline gets metrics
// for free — no scheme needs its own instrumentation code.
//
// The wrapper is built with Wrap, so it preserves every optional interface
// the scheme implements: paranoid-mode invariant checks (Checker), the bulk
// fast paths (RunWriter/SweepWriter — absorbed writes are accounted in the
// same counters the per-request path uses, so both paths report identical
// metrics), and checkpointing (Snapshotter — the wrapper persists its own
// counter state ahead of the scheme's, so a resumed run's metrics continue
// where the checkpointed run left off).
func Instrument(s Scheme, reg *obs.Registry) Scheme {
	label := obs.L("scheme", s.Name())
	reg.Help("twl_scheme_requests_total", "logical requests served by the scheme, by op")
	reg.Help("twl_scheme_blocked_total", "requests delayed behind an internal swap phase")
	reg.Help("twl_scheme_request_cycles", "per-request latency in CPU cycles")
	w := &instrumented{
		Scheme:  s,
		timing:  s.Device().Timing(),
		writes:  reg.Counter("twl_scheme_requests_total", label, obs.L("op", "write")),
		reads:   reg.Counter("twl_scheme_requests_total", label, obs.L("op", "read")),
		blocked: reg.Counter("twl_scheme_blocked_total", label),
		latency: reg.Histogram("twl_scheme_request_cycles", obs.DefaultLatencyBuckets(), label),
	}
	return Wrap(w, s)
}

// instrumented decorates a Scheme with metric recording. Wrap exposes its
// optional-interface methods only when the wrapped scheme has the matching
// capability, so the bulk and snapshot methods may assert on w.Scheme
// unconditionally.
type instrumented struct {
	Scheme             // snap: wrapped scheme; checkpointed by its own Snapshot call below
	timing  pcm.Timing // snap: construction input
	writes  *obs.Counter
	reads   *obs.Counter
	blocked *obs.Counter
	latency *obs.Histogram
}

func (w *instrumented) Write(la int, tag uint64) Cost {
	cost := w.Scheme.Write(la, tag)
	w.writes.Inc()
	w.record(cost)
	return cost
}

func (w *instrumented) Read(la int) (uint64, Cost) {
	v, cost := w.Scheme.Read(la)
	w.reads.Inc()
	w.record(cost)
	return v, cost
}

func (w *instrumented) record(cost Cost) {
	if cost.Blocked {
		w.blocked.Inc()
	}
	w.latency.Observe(float64(cost.Cycles(w.timing)))
}

// WriteRun forwards the same-address fast path and accounts the absorbed
// prefix as `absorbed` identical per-request writes. Absorbed writes share
// one unblocked cost by the RunWriter contract, so a single counter add and
// one ObserveN leave the metrics bit-identical to the per-request path.
//
//twl:hotpath
func (w *instrumented) WriteRun(la int, tag uint64, n int) (Cost, int) {
	cost, absorbed := w.Scheme.(RunWriter).WriteRun(la, tag, n)
	w.recordBulk(cost, absorbed, w.writes)
	return cost, absorbed
}

// WriteSweep forwards the consecutive-address fast path; accounting matches
// WriteRun.
//
//twl:hotpath
func (w *instrumented) WriteSweep(la int, tag uint64, n int) (Cost, int) {
	cost, absorbed := w.Scheme.(SweepWriter).WriteSweep(la, tag, n)
	w.recordBulk(cost, absorbed, w.writes)
	return cost, absorbed
}

func (w *instrumented) recordBulk(cost Cost, absorbed int, op *obs.Counter) {
	if absorbed <= 0 {
		return
	}
	op.Add(uint64(absorbed))
	w.latency.ObserveN(float64(cost.Cycles(w.timing)), uint64(absorbed))
}

// CheckInvariants forwards paranoid-mode checks to the wrapped scheme.
func (w *instrumented) CheckInvariants() error {
	return w.Scheme.(Checker).CheckInvariants()
}

// Snapshot persists the wrapper's counter values ahead of the wrapped
// scheme's state. The metric handles live in the caller's registry, which a
// resumed run recreates from scratch; restoring the recorded values keeps
// twl_scheme_* series identical to an uninterrupted run.
func (w *instrumented) Snapshot(out io.Writer) error {
	sw := snap.NewWriter(out)
	sw.Tag("instr")
	sw.U64(w.writes.Value())
	sw.U64(w.reads.Value())
	sw.U64(w.blocked.Value())
	hs := w.latency.Snapshot()
	sw.F64s(hs.Bounds)
	sw.U64s(hs.Counts)
	sw.U64(hs.Count)
	sw.F64(hs.Sum)
	if err := sw.Err(); err != nil {
		return err
	}
	return w.Scheme.(Snapshotter).Snapshot(out)
}

// Restore loads counter values written by Snapshot into the (freshly
// created, all-zero) metric handles, then restores the wrapped scheme.
func (w *instrumented) Restore(in io.Reader) error {
	sr := snap.NewReader(in)
	sr.Expect("instr")
	w.writes.Add(sr.U64())
	w.reads.Add(sr.U64())
	w.blocked.Add(sr.U64())
	cur := w.latency.Snapshot()
	hs := obs.HistogramSnapshot{
		Bounds: make([]float64, len(cur.Bounds)),
		Counts: make([]uint64, len(cur.Counts)),
	}
	sr.F64sInto(hs.Bounds)
	sr.U64sInto(hs.Counts)
	hs.Count = sr.U64()
	hs.Sum = sr.F64()
	if err := sr.Err(); err != nil {
		return err
	}
	if err := w.latency.AddSnapshot(hs); err != nil {
		return err
	}
	return w.Scheme.(Snapshotter).Restore(in)
}
