package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"twl"
	"twl/internal/obs"
)

// testSpec is a grid small enough to finish in well under a second per
// cell: 256 pages at mean endurance 3000.
func testSpec() JobSpec {
	return JobSpec{
		Schemes:       []string{"TWL_swp", "NOWL"},
		Attacks:       []string{"repeat"},
		Pages:         256,
		MeanEndurance: 3000,
	}
}

func newTestServer(t *testing.T, dir string, workers int) *Server {
	t.Helper()
	srv, err := New(Config{DataDir: dir, Workers: workers, CheckpointEvery: 2048})
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// postJob submits a spec and returns the response status and decoded body.
func postJob(t *testing.T, ts *httptest.Server, body string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

// getStatus fetches /jobs/{id}.
func getStatus(t *testing.T, ts *httptest.Server, id string) (int, jobStatus) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st jobStatus
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, st
}

// waitJob polls until the job leaves the running state (or the deadline
// passes) and returns its final status.
func waitJob(t *testing.T, ts *httptest.Server, id string) jobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		code, st := getStatus(t, ts, id)
		if code != http.StatusOK {
			t.Fatalf("status %s: HTTP %d", id, code)
		}
		if st.Status != "running" {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s did not settle before the deadline", id)
	return jobStatus{}
}

func submitAndWait(t *testing.T, ts *httptest.Server, spec JobSpec) jobStatus {
	t.Helper()
	b, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	code, out := postJob(t, ts, string(b))
	if code != http.StatusCreated {
		t.Fatalf("submit: HTTP %d (%v)", code, out)
	}
	st := waitJob(t, ts, out["id"].(string))
	if st.Status != "done" {
		t.Fatalf("job %s finished %q, want done: %+v", st.ID, st.Status, st.Counts)
	}
	return st
}

// TestJobSpecValidation: malformed grids are rejected before any cell is
// queued, with errors naming the offending field.
func TestJobSpecValidation(t *testing.T) {
	cases := []struct {
		name string
		spec JobSpec
		want string
	}{
		{"no schemes", JobSpec{Attacks: []string{"repeat"}}, "at least one scheme"},
		{"no workloads", JobSpec{Schemes: []string{"NOWL"}}, "at least one attack or bench"},
		{"unknown scheme", JobSpec{Schemes: []string{"XWL"}, Attacks: []string{"repeat"}}, "unknown scheme"},
		{"unknown attack", JobSpec{Schemes: []string{"NOWL"}, Attacks: []string{"ddos"}}, "unknown attack"},
		{"unknown bench", JobSpec{Schemes: []string{"NOWL"}, Benches: []string{"nope"}}, "unknown benchmark"},
		{"negative shards", JobSpec{Schemes: []string{"NOWL"}, Attacks: []string{"repeat"}, Shards: -1}, "non-negative"},
		{"indivisible shards", JobSpec{Schemes: []string{"NOWL"}, Attacks: []string{"repeat"}, Pages: 100, Shards: 3}, "divide evenly"},
		{"bad sigma", JobSpec{Schemes: []string{"NOWL"}, Attacks: []string{"repeat"}, SigmaFraction: 1.5}, "SigmaFraction"},
	}
	for _, tc := range cases {
		err := tc.spec.normalize()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want substring %q", tc.name, err, tc.want)
		}
	}

	// Scheme names canonicalize, so equivalent submissions share cell keys.
	sp := JobSpec{Schemes: []string{"twl_swp"}, Attacks: []string{"repeat"}}
	if err := sp.normalize(); err != nil {
		t.Fatal(err)
	}
	if sp.Schemes[0] != "TWL_swp" {
		t.Errorf("scheme not canonicalized: %q", sp.Schemes[0])
	}
	if len(sp.Seeds) != 1 || sp.Seeds[0] != 1 {
		t.Errorf("default seeds = %v, want [1]", sp.Seeds)
	}
}

// TestHTTPEndpoints drives every endpoint of a live server: submit, job
// list, status with the completed-cell mask, the JSONL trace stream,
// metrics, health, and the malformed-request rejections.
func TestHTTPEndpoints(t *testing.T) {
	srv := newTestServer(t, t.TempDir(), 2)
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Health first.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: HTTP %d", resp.StatusCode)
	}

	// Malformed jobs: broken JSON, unknown fields, bad specs.
	for _, body := range []string{
		`{"schemes": [`,
		`{"schemes": ["NOWL"], "attacks": ["repeat"], "bogus_field": 1}`,
		`{"attacks": ["repeat"]}`,
		`{"schemes": ["XWL"], "attacks": ["repeat"]}`,
		`{"schemes": ["NOWL"], "attacks": ["ddos"]}`,
	} {
		if code, _ := postJob(t, ts, body); code != http.StatusBadRequest {
			t.Errorf("malformed job %q: HTTP %d, want 400", body, code)
		}
	}

	// Unknown job id.
	if code, _ := getStatus(t, ts, "job-9999-ffffffff"); code != http.StatusNotFound {
		t.Errorf("unknown job: HTTP %d, want 404", code)
	}

	st := submitAndWait(t, ts, testSpec())
	if len(st.Cells) != 2 {
		t.Fatalf("cells = %d, want 2", len(st.Cells))
	}
	for i, c := range st.Cells {
		if !st.Completed[i] {
			t.Errorf("completed[%d] = false after done", i)
		}
		if c.Result == nil || c.Result.DemandWrites == 0 {
			t.Errorf("cell %s has no result", c.Source)
		}
	}
	if st.Counts[cellDone] != 2 {
		t.Errorf("counts = %v, want 2 done", st.Counts)
	}

	// Job list includes it.
	resp, err = http.Get(ts.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Jobs []jobSummary `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list.Jobs) != 1 || list.Jobs[0].ID != st.ID || list.Jobs[0].Done != 2 {
		t.Errorf("job list = %+v", list.Jobs)
	}

	// Trace stream: JSONL with the cell lifecycle events.
	resp, err = http.Get(ts.URL + "/jobs/" + st.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	traceBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	events := map[string]int{}
	for _, line := range bytes.Split(bytes.TrimSpace(traceBody), []byte("\n")) {
		var ev struct {
			Event string `json:"event"`
		}
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatalf("trace line %q: %v", line, err)
		}
		events[ev.Event]++
	}
	for _, want := range []string{"cell_queued", "cell_start", "cell_done"} {
		if events[want] != 2 {
			t.Errorf("trace has %d %s events, want 2 (all: %v)", events[want], want, events)
		}
	}

	// Metrics exposition includes the service series.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metricsBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, series := range []string{
		"twl_serve_jobs_total", "twl_serve_cells_total", "twl_serve_cells_running",
		"twl_serve_cache_hits_total", "twl_serve_cache_misses_total",
	} {
		if !bytes.Contains(metricsBody, []byte(series)) {
			t.Errorf("metrics output missing %s", series)
		}
	}
}

// TestCacheHitOnResubmit: an identical grid resubmitted to the same server
// is served entirely from the result cache — zero additional simulated
// cells — with byte-identical results.
func TestCacheHitOnResubmit(t *testing.T) {
	srv := newTestServer(t, t.TempDir(), 2)
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	first := submitAndWait(t, ts, testSpec())
	simulated := srv.Metrics().Counter("twl_serve_cells_total", obs.L("outcome", outcomeSimulated)).Value()
	if simulated != 2 {
		t.Fatalf("first run simulated %d cells, want 2", simulated)
	}

	second := submitAndWait(t, ts, testSpec())
	if second.ID == first.ID {
		t.Fatalf("resubmission reused job id %s", first.ID)
	}
	after := srv.Metrics().Counter("twl_serve_cells_total", obs.L("outcome", outcomeSimulated)).Value()
	if after != simulated {
		t.Errorf("resubmission simulated %d new cells, want 0", after-simulated)
	}
	cached := srv.Metrics().Counter("twl_serve_cells_total", obs.L("outcome", outcomeCached)).Value()
	if cached != 2 {
		t.Errorf("cached outcomes = %d, want 2", cached)
	}
	for i, c := range second.Cells {
		if !c.Cached {
			t.Errorf("cell %s not served from cache", c.Source)
		}
		if !reflect.DeepEqual(c.Result, first.Cells[i].Result) {
			t.Errorf("cell %s cache result diverged:\n  first  %+v\n  second %+v",
				c.Source, first.Cells[i].Result, c.Result)
		}
		if c.Key != first.Cells[i].Key {
			t.Errorf("cell %s key changed across submissions", c.Source)
		}
	}
	if st := srv.CacheStats(); st.Hits < 2 {
		t.Errorf("cache stats %+v, want >= 2 hits", st)
	}
}

// TestDifferentialGrid: a grid run through the service is byte-identical
// to the same cells run directly through the one-shot entry points
// (RunAttackCell / RunBenchCell) — the service adds checkpointing and
// preemption wiring but must not change a single counter. Shards is set so
// the bench cell also exercises the typed-rejection fallback
// (ErrUnshardableSource → unsharded path).
func TestDifferentialGrid(t *testing.T) {
	spec := JobSpec{
		Schemes:       []string{"TWL_swp", "BWL"},
		Attacks:       []string{"repeat", "inconsistent"},
		Benches:       []string{"vips"},
		Pages:         128,
		MeanEndurance: 2000,
	}
	srv := newTestServer(t, t.TempDir(), 2)
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	st := submitAndWait(t, ts, spec)
	norm := spec
	if err := norm.normalize(); err != nil {
		t.Fatal(err)
	}
	for _, c := range st.Cells {
		sys := norm.system(c.Seed)
		kind, name := (&cell{Source: c.Source}).sourceKind()
		var want twl.LifetimeResult
		var err error
		if kind == "attack" {
			var mode twl.AttackMode
			mode, err = twl.ParseAttackMode(name)
			if err == nil {
				want, err = twl.RunAttackCell(sys, c.Scheme, mode, twl.LifetimeConfig{})
			}
		} else {
			want, err = twl.RunBenchCell(sys, c.Scheme, name, twl.LifetimeConfig{})
		}
		if err != nil {
			t.Fatalf("direct %s/%s: %v", c.Scheme, c.Source, err)
		}
		if got := c.Result.toLifetime(); got != want {
			t.Errorf("service result diverged for %s/%s:\n  service %+v\n  direct  %+v",
				c.Scheme, c.Source, got, want)
		}
	}
}

// TestShardedDifferential: a sharded cell through the service equals
// twl.RunShardedLifetime run directly.
func TestShardedDifferential(t *testing.T) {
	spec := JobSpec{
		Schemes:       []string{"TWL_swp"},
		Attacks:       []string{"inconsistent"},
		Pages:         256,
		MeanEndurance: 3000,
		Shards:        4,
	}
	srv := newTestServer(t, t.TempDir(), 2)
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	st := submitAndWait(t, ts, spec)
	c := st.Cells[0]
	if c.Result.Sharded == nil || c.Result.Sharded.Shards != 4 {
		t.Fatalf("cell did not run sharded: %+v", c.Result)
	}
	want, err := twl.RunShardedLifetime(twl.SystemConfig{
		Pages: 256, PageSize: 4096, MeanEndurance: 3000, SigmaFraction: 0.11, Seed: 1,
	}, twl.ShardedConfig{Scheme: "TWL_swp", Mode: twl.AttackInconsistent, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Result.toLifetime(); got != want.LifetimeResult {
		t.Errorf("sharded service result diverged:\n  service %+v\n  direct  %+v", got, want.LifetimeResult)
	}
	if !reflect.DeepEqual(c.Result.Sharded.ShardDemand, want.ShardDemand) {
		t.Errorf("shard demand diverged: %v vs %v", c.Result.Sharded.ShardDemand, want.ShardDemand)
	}
}

// TestPreemptResume is the mid-cell kill path in miniature: a draining
// server preempts the simulation at a checkpoint boundary (ErrRunStopped),
// leaves the checkpoint on disk, and a later attempt resumes from it to
// the bit-identical result of an uninterrupted run.
func TestPreemptResume(t *testing.T) {
	dir := t.TempDir()
	srv := newTestServer(t, dir, 1)
	defer srv.Close()

	spec := JobSpec{Schemes: []string{"TWL_swp"}, Attacks: []string{"repeat"}, Pages: 256, MeanEndurance: 3000}
	if err := spec.normalize(); err != nil {
		t.Fatal(err)
	}
	j := &job{id: "test", spec: spec, cells: buildCells(spec)}
	c := j.cells[0]

	srv.draining.Store(true)
	if _, err := srv.simulate(j, c); !errors.Is(err, twl.ErrRunStopped) {
		t.Fatalf("draining simulate error = %v, want ErrRunStopped", err)
	}
	ckpt := filepath.Join(srv.ckptDir, c.Key+".ckpt")
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("no checkpoint after preemption: %v", err)
	}

	srv.draining.Store(false)
	res, err := srv.simulate(j, c)
	if err != nil {
		t.Fatal(err)
	}
	want, err := twl.RunAttackCell(spec.system(1), "TWL_swp", twl.AttackRepeat, twl.LifetimeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.toLifetime(); got != want {
		t.Errorf("resumed result diverged:\n  resumed %+v\n  direct  %+v", got, want)
	}
}

// TestDrainRestartCompletes is the worker-kill integration path: a drained
// server persists its incomplete cells as pending, and a fresh server over
// the same data directory reloads them, finishes the job, and lands on the
// same grid a direct run produces.
func TestDrainRestartCompletes(t *testing.T) {
	dir := t.TempDir()
	srv := newTestServer(t, dir, 2)
	ts := httptest.NewServer(srv.Handler())

	spec := JobSpec{
		Schemes:       []string{"TWL_swp", "BWL", "NOWL"},
		Attacks:       []string{"repeat", "scan"},
		Pages:         128,
		MeanEndurance: 2000,
	}
	b, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	code, out := postJob(t, ts, string(b))
	if code != http.StatusCreated {
		t.Fatalf("submit: HTTP %d", code)
	}
	id := out["id"].(string)
	// Drain immediately: whatever is mid-cell preempts at its next
	// checkpoint, everything else stays pending.
	ts.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	srv2 := newTestServer(t, dir, 2)
	defer srv2.Close()
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	st := waitJob(t, ts2, id)
	if st.Status != "done" {
		t.Fatalf("restarted job finished %q: %+v", st.Status, st.Counts)
	}
	norm := spec
	if err := norm.normalize(); err != nil {
		t.Fatal(err)
	}
	for _, c := range st.Cells {
		_, name := (&cell{Source: c.Source}).sourceKind()
		mode, err := twl.ParseAttackMode(name)
		if err != nil {
			t.Fatal(err)
		}
		want, err := twl.RunAttackCell(norm.system(c.Seed), c.Scheme, mode, twl.LifetimeConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if got := c.Result.toLifetime(); got != want {
			t.Errorf("post-restart result diverged for %s/%s:\n  service %+v\n  direct  %+v",
				c.Scheme, c.Source, got, want)
		}
	}
}

// TestCancelJob: cancellation settles every cell, the job reports
// cancelled, and a cancelled job accepts no more state changes.
func TestCancelJob(t *testing.T) {
	srv := newTestServer(t, t.TempDir(), 1)
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	spec := testSpec()
	spec.Seeds = []uint64{1, 2, 3, 4}
	b, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	code, out := postJob(t, ts, string(b))
	if code != http.StatusCreated {
		t.Fatalf("submit: HTTP %d", code)
	}
	id := out["id"].(string)
	resp, err := http.Post(ts.URL+"/jobs/"+id+"/cancel", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: HTTP %d", resp.StatusCode)
	}
	st := waitJob(t, ts, id)
	if st.Status != cellCancelled {
		t.Fatalf("cancelled job status %q: %+v", st.Status, st.Counts)
	}
	if st.Counts[cellPending]+st.Counts[cellRunning] != 0 {
		t.Errorf("cancelled job still has live cells: %+v", st.Counts)
	}

	// Cancelling an unknown job 404s.
	resp, err = http.Post(ts.URL+"/jobs/nope/cancel", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("cancel unknown job: HTTP %d, want 404", resp.StatusCode)
	}
}

// TestClosedServerRejectsSubmit: after Close, submissions 503.
func TestClosedServerRejectsSubmit(t *testing.T) {
	srv := newTestServer(t, t.TempDir(), 1)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	if code, _ := postJob(t, ts, string(b)); code != http.StatusServiceUnavailable {
		t.Errorf("submit after close: HTTP %d, want 503", code)
	}
}

// TestSpecDedupe: duplicate grid axes — case-variant schemes, repeated
// workloads and seeds — collapse on normalize, so one job never expands to
// two cells with the same key (same-key cells share checkpoint paths and
// must never run concurrently).
func TestSpecDedupe(t *testing.T) {
	sp := JobSpec{
		Schemes: []string{"TWL_swp", "twl_swp", "NOWL"},
		Attacks: []string{"repeat", "repeat"},
		Benches: []string{"vips", "vips"},
		Seeds:   []uint64{1, 1, 2},
	}
	if err := sp.normalize(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sp.Schemes, []string{"TWL_swp", "NOWL"}) {
		t.Errorf("schemes = %v, want [TWL_swp NOWL]", sp.Schemes)
	}
	if !reflect.DeepEqual(sp.Attacks, []string{"repeat"}) {
		t.Errorf("attacks = %v, want [repeat]", sp.Attacks)
	}
	if !reflect.DeepEqual(sp.Benches, []string{"vips"}) {
		t.Errorf("benches = %v, want [vips]", sp.Benches)
	}
	if !reflect.DeepEqual(sp.Seeds, []uint64{1, 2}) {
		t.Errorf("seeds = %v, want [1 2]", sp.Seeds)
	}
	cells := buildCells(sp)
	if len(cells) != 8 { // 2 schemes × 2 workloads × 2 seeds
		t.Errorf("cells = %d, want 8", len(cells))
	}
	keys := map[string]bool{}
	for _, c := range cells {
		if keys[c.Key] {
			t.Errorf("duplicate cell key %s (%s)", c.Key, c.name())
		}
		keys[c.Key] = true
	}
}

// TestConcurrentSameKeyJobs: two identical grids in flight at once never
// simulate a key twice or trip over its shared checkpoint paths — the
// duplicate cell is held back while the key is in flight and then settles
// from the first run's cache entry. (Before the in-flight ledger both
// copies ran against ckpt/<key>, and the first completion's checkpoint
// removal aborted the survivor's next checkpoint write.) Sharded cells are
// the worst case: the second run's orphan sweep also deleted the first
// run's live temp files.
func TestConcurrentSameKeyJobs(t *testing.T) {
	srv := newTestServer(t, t.TempDir(), 4)
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	spec := JobSpec{
		Schemes:       []string{"TWL_swp"},
		Attacks:       []string{"repeat", "inconsistent"},
		Pages:         256,
		MeanEndurance: 3000,
		Shards:        4,
	}
	b, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for i := 0; i < 2; i++ {
		code, out := postJob(t, ts, string(b))
		if code != http.StatusCreated {
			t.Fatalf("submit %d: HTTP %d", i, code)
		}
		ids = append(ids, out["id"].(string))
	}
	var done []jobStatus
	for _, id := range ids {
		st := waitJob(t, ts, id)
		if st.Status != "done" {
			t.Fatalf("job %s finished %q: %+v", id, st.Status, st.Counts)
		}
		done = append(done, st)
	}
	simulated := srv.Metrics().Counter("twl_serve_cells_total", obs.L("outcome", outcomeSimulated)).Value()
	cached := srv.Metrics().Counter("twl_serve_cells_total", obs.L("outcome", outcomeCached)).Value()
	failed := srv.Metrics().Counter("twl_serve_cells_total", obs.L("outcome", outcomeFailed)).Value()
	if simulated != 2 || cached != 2 || failed != 0 {
		t.Errorf("outcomes simulated=%v cached=%v failed=%v, want 2/2/0", simulated, cached, failed)
	}
	for i := range done[0].Cells {
		if !reflect.DeepEqual(done[0].Cells[i].Result, done[1].Cells[i].Result) {
			t.Errorf("same-key cells diverged:\n  first  %+v\n  second %+v",
				done[0].Cells[i].Result, done[1].Cells[i].Result)
		}
	}
}

// TestSubmitPersistFailure: a submission whose job file cannot be written
// reports the error and leaves no trace — nothing registered, nothing
// queued, the id counter unspent — so the service never runs a job its
// submitter was told failed.
func TestSubmitPersistFailure(t *testing.T) {
	srv := newTestServer(t, t.TempDir(), 1)
	defer srv.Close()
	// Replace jobs/ with a regular file so the atomic persist cannot even
	// create its temp file (permission bits are no obstacle when the tests
	// run as root).
	if err := os.RemoveAll(srv.jobsDir); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(srv.jobsDir, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := srv.Submit(testSpec()); err == nil {
		t.Fatal("submit with unwritable jobs dir reported success")
	}
	srv.mu.Lock()
	jobs, queued, last := len(srv.jobs), len(srv.queue), srv.lastID
	srv.mu.Unlock()
	if jobs != 0 || queued != 0 || last != 0 {
		t.Fatalf("failed submit left state behind: jobs=%d queue=%d lastID=%d", jobs, queued, last)
	}
	// Restore the directory: the next submission takes the first id.
	if err := os.Remove(srv.jobsDir); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(srv.jobsDir, 0o755); err != nil {
		t.Fatal(err)
	}
	id, cells, err := srv.Submit(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(id, "job-0001-") || cells != 2 {
		t.Errorf("post-recovery submit = %s (%d cells), want job-0001-* with 2 cells", id, cells)
	}
}

// TestFailedCellRemovesCheckpoint: a cell that fails outright (here by
// resuming from a corrupt checkpoint, which the CRC rejects) is terminal
// and must not leak its checkpoint file in ckptDir.
func TestFailedCellRemovesCheckpoint(t *testing.T) {
	srv := newTestServer(t, t.TempDir(), 1)
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	spec := JobSpec{Schemes: []string{"TWL_swp"}, Attacks: []string{"repeat"}, Pages: 256, MeanEndurance: 3000}
	norm := spec
	if err := norm.normalize(); err != nil {
		t.Fatal(err)
	}
	ckpt := filepath.Join(srv.ckptDir, buildCells(norm)[0].Key+".ckpt")
	if err := os.WriteFile(ckpt, []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}

	b, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	code, out := postJob(t, ts, string(b))
	if code != http.StatusCreated {
		t.Fatalf("submit: HTTP %d", code)
	}
	st := waitJob(t, ts, out["id"].(string))
	if st.Status != cellFailed || st.Cells[0].Error == "" {
		t.Fatalf("job finished %q (err %q), want failed with an error", st.Status, st.Cells[0].Error)
	}
	if _, err := os.Stat(ckpt); !os.IsNotExist(err) {
		t.Errorf("failed cell left its checkpoint behind (stat err: %v)", err)
	}
}

// TestCloseStopsDispatch: after Close no queued cell is handed to a worker
// — drain latency is bounded by the in-flight cells' checkpoint cadence,
// not by queue length.
func TestCloseStopsDispatch(t *testing.T) {
	srv := newTestServer(t, t.TempDir(), 1)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	spec := testSpec()
	if err := spec.normalize(); err != nil {
		t.Fatal(err)
	}
	j := &job{id: "test", spec: spec, cells: buildCells(spec)}
	srv.mu.Lock()
	srv.jobs[j.id] = j
	srv.queue = append(srv.queue, cellRef{jobID: j.id, idx: 0})
	srv.mu.Unlock()
	if _, _, ok := srv.nextCell(); ok {
		t.Fatal("nextCell dispatched a queued cell after Close")
	}
	if got := j.cells[0].Status; got != cellPending {
		t.Errorf("queued cell status %q after closed dispatch, want pending", got)
	}
}

// TestJobIDDeterminism: ids embed a spec hash and a monotonic counter —
// no wall clock, no randomness.
func TestJobIDDeterminism(t *testing.T) {
	sp := testSpec()
	if err := sp.normalize(); err != nil {
		t.Fatal(err)
	}
	a, b := jobID(1, sp), jobID(1, sp)
	if a != b {
		t.Errorf("jobID not deterministic: %s vs %s", a, b)
	}
	if c := jobID(2, sp); c == a {
		t.Errorf("distinct counters produced one id: %s", c)
	}
	n, ok := jobSeq(a)
	if !ok || n != 1 {
		t.Errorf("jobSeq(%s) = %d,%v", a, n, ok)
	}
	if _, ok := jobSeq("notes.json"); ok {
		t.Error("jobSeq accepted a foreign name")
	}
	if !strings.HasPrefix(a, fmt.Sprintf("job-%04d-", 1)) {
		t.Errorf("unexpected id format %s", a)
	}
}
