package od3p

import (
	"bytes"
	"testing"

	"twl/internal/pcm"
	"twl/internal/wl"
)

// fuzzScheme builds a small OD3P array whose per-page endurances are low and
// uneven, so bulk runs routinely cross endurance boundaries, form pairings,
// chain re-pairings and reach exhaustion — the full degradation regime the
// fast path must reproduce bit-identically.
func fuzzScheme(t *testing.T, base uint8, maxHosted int) *Scheme {
	t.Helper()
	geom := pcm.Geometry{Pages: 8, PageSize: 4096, LineSize: 128, Ranks: 1, Banks: 1}
	end := make([]uint64, geom.Pages)
	for i := range end {
		end[i] = 2 + uint64(base)%29 + uint64(i*i%7)
	}
	dev, err := pcm.NewDevice(geom, pcm.DefaultTiming(), end)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(dev, Config{MaxHosted: maxHosted})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// snapBytes serializes the scheme's full mutable state (remap, pairing
// tables, pair store, counters, stats) for equivalence checks.
func snapBytes(t *testing.T, s *Scheme) string {
	t.Helper()
	var buf bytes.Buffer
	if err := s.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// compareSchemes requires bit-identical scheme and device state — the
// fast-forward contract after any WriteRun/WriteSweep sequence versus the
// per-write equivalent.
func compareSchemes(t *testing.T, fast, slow *Scheme) {
	t.Helper()
	if snapBytes(t, fast) != snapBytes(t, slow) {
		t.Fatal("scheme state diverges between bulk and per-write paths")
	}
	df, ds := fast.dev, slow.dev
	if df.TotalWrites() != ds.TotalWrites() {
		t.Fatalf("device writes: fast %d, slow %d", df.TotalWrites(), ds.TotalWrites())
	}
	for pp := 0; pp < df.Pages(); pp++ {
		if df.Wear(pp) != ds.Wear(pp) || df.Peek(pp) != ds.Peek(pp) {
			t.Fatalf("device page %d: wear %d/%d payload %d/%d",
				pp, df.Wear(pp), ds.Wear(pp), df.Peek(pp), ds.Peek(pp))
		}
	}
	if df.FailedPages() != ds.FailedPages() {
		t.Fatalf("failure log length: fast %d, slow %d", df.FailedPages(), ds.FailedPages())
	}
	for i := 0; i < df.FailedPages(); i++ {
		if df.FailureAt(i) != ds.FailureAt(i) {
			t.Fatalf("failure %d: fast page %d, slow page %d", i, df.FailureAt(i), ds.FailureAt(i))
		}
	}
	if err := fast.CheckInvariants(); err != nil {
		t.Fatalf("fast invariants: %v", err)
	}
	if err := slow.CheckInvariants(); err != nil {
		t.Fatalf("slow invariants: %v", err)
	}
}

// costTotals accumulates wl.Cost over a write sequence; the uniform
// event-free cost contract means a bulk chunk's cost times its length must
// equal the per-write sum.
type costTotals struct {
	writes, reads, cycles, blocked int
}

func (c *costTotals) add(cost wl.Cost, k int) {
	c.writes += cost.DeviceWrites * k
	c.reads += cost.DeviceReads * k
	c.cycles += cost.ExtraCycles * k
	if cost.Blocked {
		c.blocked += k
	}
}

// FuzzEventHorizonOD3P fuzzes the OD3P fast path: for every tuple (endurance
// base, target address, run length, hosting limit) driving WriteRun or
// WriteSweep through the bulk-loop caller protocol must leave scheme, device
// and accumulated cost bit-identical to the per-write loop — across
// endurance crossings, pairing migrations, partner deaths and exhaustion.
// WriteRun's absorbed == 0 must always mean "the next write is the blocked
// pairing event", the scheme's only event.
func FuzzEventHorizonOD3P(f *testing.F) {
	f.Add(uint8(0), uint8(0), uint16(200), uint8(0))
	f.Add(uint8(7), uint8(3), uint16(600), uint8(1))
	f.Add(uint8(28), uint8(5), uint16(50), uint8(2))
	f.Add(uint8(13), uint8(2), uint16(400), uint8(4))
	f.Fuzz(func(t *testing.T, base, la8 uint8, n16 uint16, hosted uint8) {
		const pages = 8
		la := int(la8) % pages
		n := int(n16)%600 + 1
		maxHosted := int(hosted)%3 + 1

		// Same-address run: fast side uses the bulk-loop protocol, slow side
		// is the literal per-write loop.
		fast := fuzzScheme(t, base, maxHosted)
		slow := fuzzScheme(t, base, maxHosted)
		var fc, sc costTotals
		served := 0
		for served < n {
			cost, applied := fast.WriteRun(la, uint64(served), n-served)
			if applied > 0 {
				if cost.Blocked {
					t.Fatal("WriteRun absorbed a blocked write")
				}
				fc.add(cost, applied)
				served += applied
				continue
			}
			ev := fast.Write(la, uint64(served))
			if !ev.Blocked {
				t.Fatal("absorbed == 0 but the served write was not a pairing")
			}
			fc.add(ev, 1)
			served++
		}
		for i := 0; i < n; i++ {
			sc.add(slow.Write(la, uint64(i)), 1)
		}
		if fc != sc {
			t.Fatalf("run cost totals diverge: fast %+v, slow %+v", fc, sc)
		}
		compareSchemes(t, fast, slow)

		// Consecutive-address sweep cycling over the array. Once a page is
		// dead WriteSweep declines (absorbed == 0) and the per-write path
		// serves healthy and dead-page writes alike.
		fast = fuzzScheme(t, base, maxHosted)
		slow = fuzzScheme(t, base, maxHosted)
		fc, sc = costTotals{}, costTotals{}
		served = 0
		for served < n {
			a := served % pages
			run := pages - a
			if rem := n - served; rem < run {
				run = rem
			}
			cost, applied := fast.WriteSweep(a, uint64(served), run)
			if applied > 0 {
				if cost.Blocked {
					t.Fatal("WriteSweep absorbed a blocked write")
				}
				fc.add(cost, applied)
				served += applied
				continue
			}
			fc.add(fast.Write(a, uint64(served)), 1)
			served++
		}
		for i := 0; i < n; i++ {
			sc.add(slow.Write(i%pages, uint64(i)), 1)
		}
		if fc != sc {
			t.Fatalf("sweep cost totals diverge: fast %+v, slow %+v", fc, sc)
		}
		compareSchemes(t, fast, slow)
	})
}
