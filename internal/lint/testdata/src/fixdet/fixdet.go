// Package fixdet exercises the determinism analyzer: wall-clock reads,
// global math/rand draws, and map-iteration-order leaks, next to the benign
// shapes the analyzer must accept (seeded generators, key-indexed writes,
// commutative accumulation, append-then-sort).
package fixdet

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Clocks reads the wall clock twice; both reads are findings.
func Clocks() time.Duration {
	start := time.Now()
	return time.Since(start)
}

// GlobalRand draws from the shared global source: finding.
func GlobalRand() int {
	return rand.Intn(10)
}

// SeededRand builds an explicitly seeded generator; the constructor and the
// method calls on it are clean.
func SeededRand() int {
	r := rand.New(rand.NewSource(1))
	return r.Intn(10)
}

// LeakyAppend records iteration order without restoring a total order:
// finding.
func LeakyAppend(m map[int]int) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

// SortedAppend restores a total order immediately after the loop: clean.
func SortedAppend(m map[int]int) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// Argmax selects by iteration order on count ties: finding.
func Argmax(m map[int]int) (best int) {
	for k := range m {
		if m[k] > m[best] {
			best = k
		}
	}
	return best
}

// LastWins keeps whichever key the map handed out last: finding.
func LastWins(m map[int]int) int {
	var last int
	for k := range m {
		last = k
	}
	return last
}

// Sum accumulates commutatively: clean.
func Sum(m map[int]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Double writes an outer map indexed by the loop key — distinct keys, no
// order dependence: clean.
func Double(m map[int]int) map[int]int {
	out := make(map[int]int, len(m))
	for k, v := range m {
		out[k] = 2 * v
	}
	return out
}

// Stream sends in iteration order: finding.
func Stream(m map[int]int, ch chan<- int) {
	for k := range m {
		ch <- k
	}
}

// Dump prints in iteration order: finding.
func Dump(m map[int]int) {
	for k, v := range m {
		fmt.Println(k, v)
	}
}
