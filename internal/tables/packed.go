package tables

import (
	"fmt"
	"io"

	"twl/internal/snap"
)

// Packed table variants: the wide tables index with int (8 bytes per entry,
// 16 per remap entry with the inverse), which at the paper's full geometry
// (8Mi pages) puts the RT alone at 128 MB. Page addresses fit in uint32 up
// to 4Gi pages, so the packed variants store both mapping directions as
// uint32 — quartering the RT and SWPT — while keeping the int-based method
// surface, the invariants and the snapshot wire format of the wide types
// (snapshots encode entries as int64 either way, so a checkpoint taken with
// packed tables restores into wide ones and vice versa). The wide types
// remain the reference implementation; the packed engine (internal/core)
// selects these when the geometry fits.

// MaxPackedPages is the largest page count the packed tables can address.
const MaxPackedPages = 1 << 32

// Remap32 is the packed remapping table (RT): the same LA ⇄ PA bijection as
// Remap, stored as uint32 in both directions (8 B/page instead of 16).
type Remap32 struct {
	toPhys []uint32 // LA → PA
	toLog  []uint32 // PA → LA
}

// NewRemap32 returns an identity mapping over n pages.
func NewRemap32(n int) (*Remap32, error) {
	if n < 0 || n > MaxPackedPages {
		return nil, fmt.Errorf("tables: %d pages outside packed range [0,%d]", n, MaxPackedPages)
	}
	r := &Remap32{
		toPhys: make([]uint32, n),
		toLog:  make([]uint32, n),
	}
	for i := 0; i < n; i++ {
		r.toPhys[i] = uint32(i)
		r.toLog[i] = uint32(i)
	}
	return r, nil
}

// Len returns the number of pages mapped.
func (r *Remap32) Len() int { return len(r.toPhys) }

// Phys returns the physical page currently backing logical page la.
func (r *Remap32) Phys(la int) int { return int(r.toPhys[la]) }

// Log returns the logical page currently mapped to physical page pa.
func (r *Remap32) Log(pa int) int { return int(r.toLog[pa]) }

// PhysTable returns the LA → PA table itself, for bulk readers (same
// contract as Remap.PhysTable: read-only, invalidated by a Swap).
func (r *Remap32) PhysTable() []uint32 { return r.toPhys }

// SwapLogical exchanges the physical pages backing logical addresses la1
// and la2.
func (r *Remap32) SwapLogical(la1, la2 int) {
	p1, p2 := r.toPhys[la1], r.toPhys[la2]
	r.toPhys[la1], r.toPhys[la2] = p2, p1
	r.toLog[p1], r.toLog[p2] = uint32(la2), uint32(la1)
}

// CheckBijection verifies RT ∘ RT⁻¹ = identity.
func (r *Remap32) CheckBijection() error {
	for la, pa := range r.toPhys {
		if int(pa) >= len(r.toLog) {
			return fmt.Errorf("tables: LA %d maps to out-of-range PA %d", la, pa)
		}
		if int(r.toLog[pa]) != la {
			return fmt.Errorf("tables: LA %d → PA %d but PA %d → LA %d",
				la, pa, pa, r.toLog[pa])
		}
	}
	return nil
}

// Snapshot serializes both directions in Remap's wire format (int64
// entries), so packed and wide checkpoints interoperate.
func (r *Remap32) Snapshot(w io.Writer) error {
	sw := snap.NewWriter(w)
	writeU32sAsInts(sw, r.toPhys)
	writeU32sAsInts(sw, r.toLog)
	return sw.Err()
}

// Restore loads a mapping written by Remap.Snapshot or Remap32.Snapshot.
func (r *Remap32) Restore(rd io.Reader) error {
	sr := snap.NewReader(rd)
	if err := readIntsIntoU32s(sr, r.toPhys, "remap toPhys"); err != nil {
		return err
	}
	if err := readIntsIntoU32s(sr, r.toLog, "remap toLog"); err != nil {
		return err
	}
	return r.CheckBijection()
}

// Pair32 is the packed strong-weak pair table (SWPT): the same fixed-point-
// free involution as PairTable, stored as uint32 (4 B/page instead of 8).
// Pairings are endurance-derived statics, so Pair32 is built from a wide
// PairTable once at engine construction and has no snapshot.
type Pair32 struct {
	partner []uint32
}

// NewPair32 packs a fully-bound wide pair table.
func NewPair32(p *PairTable) (*Pair32, error) {
	if err := p.Check(); err != nil {
		return nil, err
	}
	if p.Len() > MaxPackedPages {
		return nil, fmt.Errorf("tables: %d pages outside packed range [0,%d]", p.Len(), MaxPackedPages)
	}
	q := &Pair32{partner: make([]uint32, p.Len())}
	for i := range q.partner {
		q.partner[i] = uint32(p.Partner(i))
	}
	return q, nil
}

// Len returns the number of pages.
func (p *Pair32) Len() int { return len(p.partner) }

// Partner returns the partner of page a.
func (p *Pair32) Partner(a int) int { return int(p.partner[a]) }

// Check verifies the involution invariant.
func (p *Pair32) Check() error {
	for i, q := range p.partner {
		if int(q) >= len(p.partner) {
			return fmt.Errorf("tables: page %d has invalid partner %d", i, q)
		}
		if int(q) == i {
			return fmt.Errorf("tables: page %d paired with itself", i)
		}
		if int(p.partner[q]) != i {
			return fmt.Errorf("tables: pairing not symmetric: %d→%d but %d→%d",
				i, q, q, p.partner[q])
		}
	}
	return nil
}

// writeU32sAsInts emits a packed column in the wide []int wire format.
func writeU32sAsInts(sw *snap.Writer, vs []uint32) {
	sw.U32(uint32(len(vs)))
	for _, v := range vs {
		sw.I64(int64(v))
	}
}

// readIntsIntoU32s fills a packed column from the wide []int wire format,
// rejecting entries outside the uint32 range.
func readIntsIntoU32s(sr *snap.Reader, dst []uint32, what string) error {
	if got := sr.U32(); sr.Err() == nil && int(got) != len(dst) {
		return fmt.Errorf("tables: %s length %d does not match destination %d", what, got, len(dst))
	}
	for i := range dst {
		v := sr.I64()
		if v < 0 || v >= MaxPackedPages {
			return fmt.Errorf("tables: %s entry %d = %d outside packed range", what, i, v)
		}
		dst[i] = uint32(v)
	}
	return sr.Err()
}

// Bytes accounting: every table reports the heap bytes of its per-page
// state, so engines can itemize their memory footprint for the BENCH
// bytes-per-page audit. Slice headers and bookkeeping are excluded — the
// arrays dominate by orders of magnitude at any interesting geometry.

// Bytes returns the table's per-page state size in bytes.
func (r *Remap) Bytes() int64 { return int64(len(r.toPhys))*8 + int64(len(r.toLog))*8 }

// Bytes returns the table's per-page state size in bytes.
func (r *Remap32) Bytes() int64 { return int64(len(r.toPhys))*4 + int64(len(r.toLog))*4 }

// Bytes returns the table's per-page state size in bytes (the touched list
// grows and shrinks with the workload; it is counted at its current size).
func (w *WriteCounts) Bytes() int64 { return int64(len(w.counts))*8 + int64(len(w.touched))*8 }

// Bytes returns the table's per-page state size in bytes.
func (p *PairTable) Bytes() int64 { return int64(len(p.partner)) * 8 }

// Bytes returns the table's per-page state size in bytes.
func (p *Pair32) Bytes() int64 { return int64(len(p.partner)) * 4 }

// Bytes returns the table's per-page state size in bytes.
func (c *Counter) Bytes() int64 { return int64(len(c.counts)) }
