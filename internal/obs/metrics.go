// Package obs is the observability layer of the simulator: a
// concurrency-safe metrics registry (counters, gauges, fixed-bucket
// histograms), a structured run tracer, and text/JSON/Prometheus exporters.
//
// The paper's attacker works by observing the memory system — timing the
// blocked swap phases of Section 3.1 — so the simulator itself should be
// observable too: lifetime runs emit progress events, per-request cost
// distributions survive the run (the Figure 9 raw material), and every
// experiment grid reports its own cell timing and worker utilization.
//
// The package is stdlib-only and imports nothing else from this module, so
// any layer (device, scheme, simulator, experiment runner, CLI) can depend
// on it without cycles. Hot-path operations (Counter.Inc, Histogram.Observe)
// are lock-free after creation; metric creation takes a registry lock and is
// expected at setup time.
package obs

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"sync"
	"sync/atomic"
)

// Label is one key=value dimension of a metric. Metrics with the same name
// but different label sets are distinct time series, as in Prometheus.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

var (
	nameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// Counter is a monotonically increasing uint64 metric.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 metric that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket distribution metric. A bucket with upper
// bound b counts observations v <= b (Prometheus "le" semantics); values
// above the last bound land in the implicit +Inf bucket.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	count  atomic.Uint64
	sum    Gauge
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// ObserveN records the value v, n times, in one step. For integer-valued
// observations (all cycle latencies are) whose running sum stays below 2^53
// the result is bit-identical to n repeated Observe calls: both the single
// v*n product and the incremental sum are exact in float64.
func (h *Histogram) ObserveN(v float64, n uint64) {
	if n == 0 {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(n)
	h.count.Add(n)
	h.sum.Add(v * float64(n))
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds; Counts[i] is the number of
	// observations v <= Bounds[i] not counted by an earlier bucket.
	// Counts has one extra entry for the +Inf bucket.
	Bounds []float64
	Counts []uint64
	Count  uint64
	Sum    float64
}

// Snapshot copies the histogram state. Concurrent observations may land
// between field reads; each individual bucket is consistent.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    h.sum.Value(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// AddSnapshot merges a previously captured snapshot into the histogram: each
// bucket count, the total count, and the sum are added. Restoring a
// checkpoint into a freshly created (all-zero) histogram therefore
// reproduces the captured state exactly — for the integer-valued
// observations the simulator records, adding the snapshot's sum to 0.0 is
// bit-exact. The snapshot's bounds must equal the histogram's.
func (h *Histogram) AddSnapshot(s HistogramSnapshot) error {
	if len(s.Bounds) != len(h.bounds) || len(s.Counts) != len(h.counts) {
		return fmt.Errorf("obs: histogram snapshot has %d bounds, histogram has %d", len(s.Bounds), len(h.bounds))
	}
	for i, b := range s.Bounds {
		if b != h.bounds[i] {
			return fmt.Errorf("obs: histogram snapshot bound %d is %g, histogram has %g", i, b, h.bounds[i])
		}
	}
	for i, c := range s.Counts {
		h.counts[i].Add(c)
	}
	h.count.Add(s.Count)
	h.sum.Add(s.Sum)
	return nil
}

// LinearBuckets returns n bounds start, start+width, …
func LinearBuckets(start, width float64, n int) []float64 {
	b := make([]float64, n)
	for i := range b {
		b[i] = start + float64(i)*width
	}
	return b
}

// ExponentialBuckets returns n bounds start, start·factor, start·factor², …
func ExponentialBuckets(start, factor float64, n int) []float64 {
	b := make([]float64, n)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

// DefaultLatencyBuckets covers per-request latencies in CPU cycles for the
// Table 1 timing: a bare read is 250 cycles, a write 2000, and swap-blocked
// requests stack several writes, so the range spans one read to many swaps.
func DefaultLatencyBuckets() []float64 {
	return ExponentialBuckets(250, 2, 12) // 250 … 512000 cycles
}

// kind discriminates the metric types inside the registry.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// metric is one registered time series.
type metric struct {
	name   string
	labels []Label // sorted by key
	kind   kind
	help   string

	counter   *Counter
	gauge     *Gauge
	histogram *Histogram
}

// key renders the identity of a series: name plus sorted labels.
func seriesKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	k := name + "{"
	for i, l := range labels {
		if i > 0 {
			k += ","
		}
		k += l.Key + "=" + l.Value
	}
	return k + "}"
}

// Registry holds a set of named metrics. The zero value is not usable; call
// NewRegistry. All methods are safe for concurrent use; the returned
// Counter/Gauge/Histogram handles are lock-free.
type Registry struct {
	mu      sync.Mutex
	ordered []*metric          //twl:guardedby mu
	index   map[string]*metric //twl:guardedby mu
	help    map[string]string  //twl:guardedby mu
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: map[string]*metric{}, help: map[string]string{}}
}

// Help attaches a help string to a metric name; exporters emit it. Safe to
// call before or after the metric is created.
func (r *Registry) Help(name, text string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.help[name] = text
}

// lookup returns the existing series or creates it via make. It panics on a
// malformed name/label or when the name is already registered with a
// different kind — both are programmer errors, caught at setup time.
func (r *Registry) lookup(name string, labels []Label, k kind, make func() *metric) *metric {
	if !nameRe.MatchString(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	sorted := append([]Label(nil), labels...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	for _, l := range sorted {
		if !labelRe.MatchString(l.Key) {
			panic(fmt.Sprintf("obs: invalid label key %q on metric %q", l.Key, name))
		}
	}
	key := seriesKey(name, sorted)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.index[key]; ok {
		if m.kind != k {
			panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", key, m.kind, k))
		}
		return m
	}
	m := make()
	m.name = name
	m.labels = sorted
	m.kind = k
	r.index[key] = m
	r.ordered = append(r.ordered, m)
	return m
}

// Counter returns the counter with the given name and labels, creating it on
// first use.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	m := r.lookup(name, labels, kindCounter, func() *metric {
		return &metric{counter: &Counter{}}
	})
	return m.counter
}

// Gauge returns the gauge with the given name and labels, creating it on
// first use.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	m := r.lookup(name, labels, kindGauge, func() *metric {
		return &metric{gauge: &Gauge{}}
	})
	return m.gauge
}

// Histogram returns the histogram with the given name, bounds and labels,
// creating it on first use. Bounds must be strictly increasing and
// non-empty; they are fixed at creation, and later calls for the same series
// ignore the bounds argument.
func (r *Registry) Histogram(name string, bounds []float64, labels ...Label) *Histogram {
	m := r.lookup(name, labels, kindHistogram, func() *metric {
		if len(bounds) == 0 {
			panic(fmt.Sprintf("obs: histogram %q needs at least one bucket bound", name))
		}
		for i := 1; i < len(bounds); i++ {
			if bounds[i] <= bounds[i-1] {
				panic(fmt.Sprintf("obs: histogram %q bounds must be strictly increasing", name))
			}
		}
		b := append([]float64(nil), bounds...)
		return &metric{histogram: &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}}
	})
	return m.histogram
}

// snapshot copies the registered series (in registration order) and help
// texts for the exporters.
func (r *Registry) snapshot() ([]*metric, map[string]string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	ms := append([]*metric(nil), r.ordered...)
	help := make(map[string]string, len(r.help))
	for k, v := range r.help {
		help[k] = v
	}
	return ms, help
}

// Len returns the number of registered series.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.ordered)
}
