package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
)

// The HTTP surface. All responses are JSON except /metrics (Prometheus
// exposition) and /jobs/{id}/trace (the job's JSONL event stream):
//
//	POST /jobs             submit a JobSpec        → 201 {"id", "cells"}
//	GET  /jobs             list jobs               → {"jobs": [...]}
//	GET  /jobs/{id}        job status + cell mask
//	GET  /jobs/{id}/trace  JSONL trace stream
//	POST /jobs/{id}/cancel cancel a job
//	GET  /metrics          service metrics
//	GET  /healthz          liveness probe

// jobSummary is one row of the job list.
type jobSummary struct {
	ID     string `json:"id"`
	Status string `json:"status"`
	Cells  int    `json:"cells"`
	Done   int    `json:"done"`
}

// jobStatus is the full status of one job: a snapshot of every cell plus
// the completed-cell mask (true exactly for done cells, the resume unit).
type jobStatus struct {
	ID        string         `json:"id"`
	Status    string         `json:"status"`
	Cancelled bool           `json:"cancelled,omitempty"`
	Completed []bool         `json:"completed"`
	Counts    map[string]int `json:"counts"`
	Cells     []cell         `json:"cells"`
}

// Handler returns the service's HTTP mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("POST /jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// writeJSON writes v with the given status; encoding failures turn into a
// 500 only if nothing was written yet.
func writeJSON(w http.ResponseWriter, status int, v any) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, fmt.Sprintf("encode response: %v", err), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(append(b, '\n'))
}

// writeError maps service errors to statuses: unknown job → 404, closed →
// 503, everything else (validation) → 400.
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	switch {
	case errors.Is(err, ErrNoJob):
		status = http.StatusNotFound
	case errors.Is(err, ErrClosed):
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	var spec JobSpec
	if err := dec.Decode(&spec); err != nil {
		writeError(w, fmt.Errorf("serve: decode job: %w", err))
		return
	}
	id, cells, err := s.Submit(spec)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{"id": id, "cells": cells})
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	out := make([]jobSummary, 0, len(s.order))
	for _, id := range s.order {
		j := s.jobs[id]
		done := 0
		for _, c := range j.cells {
			if c.Status == cellDone {
				done++
			}
		}
		out = append(out, jobSummary{ID: id, Status: jobState(j), Cells: len(j.cells), Done: done})
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"jobs": out})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	j := s.jobs[id]
	if j == nil {
		s.mu.Unlock()
		writeError(w, fmt.Errorf("%w: %s", ErrNoJob, id))
		return
	}
	st := jobStatus{
		ID:        j.id,
		Status:    jobState(j),
		Cancelled: j.cancelled,
		Completed: make([]bool, len(j.cells)),
		Counts:    map[string]int{},
		Cells:     make([]cell, len(j.cells)),
	}
	for i, c := range j.cells {
		st.Cells[i] = *c // value snapshot; safe to encode after unlock
		st.Completed[i] = c.Status == cellDone
		st.Counts[c.Status]++
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

// jobState derives the job's status from its cells. Must be called with
// the server's mu held.
//
//twl:locked mu
func jobState(j *job) string {
	counts := map[string]int{}
	for _, c := range j.cells {
		counts[c.Status]++
	}
	if counts[cellPending]+counts[cellRunning] > 0 {
		return "running"
	}
	switch {
	case j.cancelled || counts[cellCancelled] > 0:
		return cellCancelled
	case counts[cellFailed] > 0:
		return cellFailed
	default:
		return cellDone
	}
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		writeError(w, fmt.Errorf("%w: %s", ErrNoJob, id))
		return
	}
	w.Header().Set("Content-Type", "application/jsonl")
	_, _ = w.Write(j.trace.Bytes())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.Cancel(id); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"id": id, "status": "cancelling"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	// The cache keeps its own atomic counters; mirror them into the
	// registry at scrape time (Set is idempotent, so concurrent scrapes
	// cannot double-count).
	st := s.store.Stats()
	s.reg.Gauge("twl_serve_cache_hits_total").Set(float64(st.Hits))
	s.reg.Gauge("twl_serve_cache_misses_total").Set(float64(st.Misses))
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_ = s.reg.WritePrometheus(w)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
