// lifetime_study replays PARSEC-calibrated workloads on every wear-leveling
// scheme and reports normalized lifetime — a miniature Figure 8 run over a
// configurable benchmark subset, including the extra baselines (Start-Gap,
// WRL, two-level SR) the paper mentions but does not plot.
//
//	go run ./examples/lifetime_study
package main

import (
	"fmt"
	"log"

	"twl"
	"twl/internal/sim"
	"twl/internal/trace"
)

func main() {
	sys := twl.SystemConfig{
		Pages: 1024, PageSize: 4096, MeanEndurance: 10000, SigmaFraction: 0.11, Seed: 21,
	}
	benchmarks := []string{"canneal", "vips", "streamcluster"}
	schemes := []string{"NOWL", "StartGap", "SR", "SR2", "WRL", "BWL", "TWL_ap", "TWL_swp"}

	fmt.Printf("%-14s", "benchmark")
	for _, s := range schemes {
		fmt.Printf("%10s", s)
	}
	fmt.Println()

	for _, bn := range benchmarks {
		b, err := trace.BenchmarkByName(bn)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s", bn)
		for _, name := range schemes {
			dev, err := sys.NewDevice()
			if err != nil {
				log.Fatal(err)
			}
			scheme, err := twl.NewScheme(name, dev, 13)
			if err != nil {
				log.Fatal(err)
			}
			g, err := trace.NewSynthetic(b, sys.Pages, 17)
			if err != nil {
				log.Fatal(err)
			}
			res, err := sim.RunLifetime(scheme, sim.FromWorkload(g), sim.LifetimeConfig{})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%10.3f", res.Normalized)
		}
		fmt.Println()
	}

	fmt.Println("\nValues are fractions of the ideal lifetime (1.0 = every page dies at")
	fmt.Println("once under a perfect, overhead-free leveler). PV-aware schemes (TWL,")
	fmt.Println("BWL, WRL) clear the weakest-page bound that caps SR; NOWL dies at the")
	fmt.Println("hottest page. SR here runs with full-scale leveling rates (interval")
	fmt.Println("128), so its showing is weaker than the endurance-rescaled variant the")
	fmt.Println("figure experiments use — see EXPERIMENTS.md, Scaling.")
}
