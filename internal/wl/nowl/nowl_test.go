package nowl

import (
	"testing"

	"twl/internal/wl"
	"twl/internal/wl/wltest"
)

func TestConformance(t *testing.T) {
	wltest.Run(t, func(tb testing.TB, seed uint64) wl.Scheme {
		return New(wltest.NewDevice(tb, 256, seed))
	})
}

func TestIdentityMapping(t *testing.T) {
	dev := wltest.NewDevice(t, 16, 1)
	s := New(dev)
	s.Write(7, 99)
	if dev.Wear(7) != 1 {
		t.Fatalf("wear landed on wrong page: wear(7) = %d", dev.Wear(7))
	}
	if dev.Peek(7) != 99 {
		t.Fatal("payload not at identity-mapped page")
	}
}

func TestNoSwapsEver(t *testing.T) {
	dev := wltest.NewDevice(t, 64, 2)
	s := New(dev)
	for i := 0; i < 100000; i++ {
		if cost := s.Write(i%64, uint64(i)); cost.Blocked || cost.DeviceWrites != 1 {
			t.Fatalf("NOWL produced a non-trivial write cost: %+v", cost)
		}
	}
	if st := s.Stats(); st.Swaps != 0 || st.SwapWrites != 0 {
		t.Fatalf("NOWL reported swaps: %+v", st)
	}
}

func TestRepeatWriteKillsOnePage(t *testing.T) {
	// Under NOWL a repeat write wears out the targeted page after exactly
	// its endurance — the "worn out quickly" bar of Figure 6.
	dev := wltest.NewDeviceEndurance(t, 16, 1000, 3)
	s := New(dev)
	target := 5
	writes := 0
	for {
		s.Write(target, 1)
		writes++
		if _, failed := dev.Failed(); failed {
			break
		}
		if writes > 10000 {
			t.Fatal("page did not wear out")
		}
	}
	if uint64(writes) != dev.Endurance(target) {
		t.Fatalf("wore out after %d writes, endurance is %d", writes, dev.Endurance(target))
	}
	if page, _ := dev.Failed(); page != target {
		t.Fatalf("failed page %d, want %d", page, target)
	}
}

func TestName(t *testing.T) {
	if New(wltest.NewDevice(t, 4, 1)).Name() != "NOWL" {
		t.Fatal("name mismatch")
	}
}
