package attack

import (
	"io"

	"twl/internal/snap"
)

// Checkpoint persistence for the attack streams. Every stream persists its
// position in the address sequence (and, for the random mode, the RNG
// stream position) so a resumed lifetime run issues exactly the writes the
// uninterrupted run would have.

// Snapshot serializes the fixed target address.
func (s *repeatStream) Snapshot(w io.Writer) error {
	sw := snap.NewWriter(w)
	sw.Int(s.addr)
	return sw.Err()
}

// Restore loads state written by Snapshot.
func (s *repeatStream) Restore(r io.Reader) error {
	sr := snap.NewReader(r)
	s.addr = sr.Int()
	return sr.Err()
}

// Snapshot serializes the RNG stream position.
func (s *randomStream) Snapshot(w io.Writer) error {
	return s.src.Snapshot(w)
}

// Restore loads state written by Snapshot.
func (s *randomStream) Restore(r io.Reader) error {
	return s.src.Restore(r)
}

// Snapshot serializes the scan position.
func (s *scanStream) Snapshot(w io.Writer) error {
	sw := snap.NewWriter(w)
	sw.Int(s.pos)
	return sw.Err()
}

// Restore loads state written by Snapshot.
func (s *scanStream) Restore(r io.Reader) error {
	sr := snap.NewReader(r)
	s.pos = sr.Int()
	return sr.Err()
}

// Snapshot serializes the burst position, the swap-phase detector state and
// the deferred-feedback debt of an in-flight NextRun commitment (a bulk-run
// checkpoint can fire mid-run; see FeedbackRunStream).
func (s *inconsistentStream) Snapshot(w io.Writer) error {
	sw := snap.NewWriter(w)
	sw.Int(s.idx)
	sw.Int(s.remaining)
	sw.Bool(s.reversed)
	sw.Bool(s.sawBlock)
	sw.Int(s.quiet)
	sw.Int(s.sinceFlip)
	sw.Int(s.owed)
	sw.Int(s.reversals)
	return sw.Err()
}

// Restore loads state written by Snapshot.
func (s *inconsistentStream) Restore(r io.Reader) error {
	sr := snap.NewReader(r)
	s.idx = sr.Int()
	s.remaining = sr.Int()
	s.reversed = sr.Bool()
	s.sawBlock = sr.Bool()
	s.quiet = sr.Int()
	s.sinceFlip = sr.Int()
	s.owed = sr.Int()
	s.reversals = sr.Int()
	return sr.Err()
}

// Snapshot serializes the window position.
func (s *LocalScan) Snapshot(w io.Writer) error {
	sw := snap.NewWriter(w)
	sw.Int(s.pos)
	sw.Int(s.written)
	sw.Int(s.base)
	return sw.Err()
}

// Restore loads state written by Snapshot.
func (s *LocalScan) Restore(r io.Reader) error {
	sr := snap.NewReader(r)
	s.pos = sr.Int()
	s.written = sr.Int()
	s.base = sr.Int()
	return sr.Err()
}
