package startgap

import (
	"math"
	"testing"

	"twl/internal/rng"
	"twl/internal/wl"
	"twl/internal/wl/wltest"
)

func build(tb testing.TB, seed uint64) wl.Scheme {
	s, err := New(wltest.NewDevice(tb, 257, seed), DefaultConfig(seed))
	if err != nil {
		tb.Fatal(err)
	}
	return s
}

func TestConformance(t *testing.T) {
	wltest.Run(t, build)
}

func TestValidation(t *testing.T) {
	dev := wltest.NewDevice(t, 8, 1)
	if _, err := New(dev, Config{GapInterval: 0}); err == nil {
		t.Fatal("zero gap interval accepted")
	}
	small := wltest.NewDevice(t, 2, 1)
	if _, err := New(small, DefaultConfig(1)); err != nil {
		t.Fatalf("2-page device rejected: %v", err)
	}
}

func TestLogicalPages(t *testing.T) {
	s := build(t, 1).(*Scheme)
	if s.LogicalPages() != 256 {
		t.Fatalf("LogicalPages = %d, want 256 (one page is the gap)", s.LogicalPages())
	}
}

func TestGapMovesEveryInterval(t *testing.T) {
	dev := wltest.NewDevice(t, 33, 2)
	s, err := New(dev, Config{GapInterval: 10, Randomize: false, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 9; i++ {
		if cost := s.Write(0, 1); cost.Blocked {
			t.Fatalf("write %d blocked before gap interval", i)
		}
	}
	cost := s.Write(0, 1)
	if !cost.Blocked || cost.DeviceWrites != 2 {
		t.Fatalf("10th write cost %+v, want blocked gap move (2 writes)", cost)
	}
	if s.Stats().Swaps != 1 {
		t.Fatalf("Swaps = %d, want 1", s.Stats().Swaps)
	}
}

// TestUniformWearUnderRepeat: Start-Gap's whole point — a repeat write
// spreads over the array as the gap rotates pages through the hot slot.
func TestUniformWearUnderRepeat(t *testing.T) {
	const pages = 65
	dev := wltest.NewDevice(t, pages, 3)
	s, err := New(dev, Config{GapInterval: 4, Randomize: true, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	// Enough writes for many full gap rotations: one rotation takes
	// pages × GapInterval writes.
	const writes = 200000
	for i := 0; i < writes; i++ {
		s.Write(7, uint64(i))
	}
	// Max page wear should be far below the NOWL value (= writes) —
	// within a small multiple of the uniform share.
	var maxWear uint64
	for p := 0; p < pages; p++ {
		if w := dev.Wear(p); w > maxWear {
			maxWear = w
		}
	}
	uniform := float64(dev.TotalWrites()) / pages
	if float64(maxWear) > 3*uniform {
		t.Fatalf("max wear %d exceeds 3× uniform share %.0f; gap not leveling", maxWear, uniform)
	}
}

// TestRotationPeriod: after pages × GapInterval writes the gap completes a
// rotation and total swap writes equal writes/GapInterval.
func TestRotationPeriod(t *testing.T) {
	dev := wltest.NewDevice(t, 17, 4)
	s, err := New(dev, Config{GapInterval: 5, Randomize: false, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	const writes = 5 * 17 * 10
	for i := 0; i < writes; i++ {
		s.Write(i%16, uint64(i))
	}
	if got, want := s.Stats().SwapWrites, uint64(writes/5); got != want {
		t.Fatalf("SwapWrites = %d, want %d", got, want)
	}
}

func TestRandomizationSpreadsNeighbors(t *testing.T) {
	// With randomization, logically adjacent pages should not be physically
	// adjacent in general.
	dev := wltest.NewDevice(t, 1025, 5)
	s, err := New(dev, DefaultConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	adjacent := 0
	for la := 0; la < 100; la++ {
		a := s.randomized(la)
		b := s.randomized(la + 1)
		if int(math.Abs(float64(a-b))) == 1 {
			adjacent++
		}
	}
	if adjacent > 50 {
		t.Fatalf("%d/100 logical neighbors stayed physical neighbors", adjacent)
	}
}

func TestRandomizedIsBijective(t *testing.T) {
	s := build(t, 9).(*Scheme)
	seen := make([]bool, s.LogicalPages())
	for la := 0; la < s.LogicalPages(); la++ {
		r := s.randomized(la)
		if seen[r] {
			t.Fatalf("randomization collision at %d", la)
		}
		seen[r] = true
	}
}

func TestLifetimeBeatsNOWLUnderRepeat(t *testing.T) {
	// Endurance ~2000: NOWL dies after ~2000 repeat writes; Start-Gap must
	// survive far longer.
	dev := wltest.NewDeviceEndurance(t, 65, 2000, 6)
	s, err := New(dev, Config{GapInterval: 8, Randomize: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	writes := 0
	for {
		s.Write(3, 1)
		writes++
		if _, failed := dev.Failed(); failed {
			break
		}
		if writes > 10_000_000 {
			break
		}
	}
	if writes < 10*2000 {
		t.Fatalf("Start-Gap died after %d repeat writes — barely better than NOWL", writes)
	}
}

func TestReadAfterRotation(t *testing.T) {
	dev := wltest.NewDevice(t, 9, 7)
	s, err := New(dev, Config{GapInterval: 2, Randomize: true, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	src := rng.NewXorshift(1)
	shadow := map[int]uint64{}
	for i := 0; i < 5000; i++ {
		la := src.Intn(8)
		tag := src.Uint64()
		s.Write(la, tag)
		shadow[la] = tag
	}
	for la, want := range shadow {
		if got, _ := s.Read(la); got != want {
			t.Fatalf("Read(%d) = %d, want %d", la, got, want)
		}
	}
}

// TestCheckInvariantsCatchesCorruption: each deepened invariant trips on the
// specific corruption it guards against.
func TestCheckInvariantsCatchesCorruption(t *testing.T) {
	fresh := func() *Scheme {
		s, err := New(wltest.NewDevice(t, 33, 7), DefaultConfig(7))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 500; i++ {
			s.Write(i%s.LogicalPages(), uint64(i))
		}
		if err := s.CheckInvariants(); err != nil {
			t.Fatalf("healthy scheme failed: %v", err)
		}
		return s
	}
	cases := []struct {
		name    string
		corrupt func(s *Scheme)
	}{
		{"gap counter past interval", func(s *Scheme) { s.sinceMove = s.cfg.GapInterval }},
		{"negative gap counter", func(s *Scheme) { s.sinceMove = -1 }},
		{"non-coprime multiplier", func(s *Scheme) { s.ra = s.logical }},
		{"offset out of range", func(s *Scheme) { s.rb = s.logical }},
		{"gap geometry broken", func(s *Scheme) { s.gapLA = 0 }},
		{"stats desynced from device", func(s *Scheme) { s.stats.SwapWrites++ }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := fresh()
			tc.corrupt(s)
			if err := s.CheckInvariants(); err == nil {
				t.Fatal("corruption not detected")
			}
		})
	}
}
