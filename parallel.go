package twl

import (
	"runtime"
	"sync"
)

// Experiment grids (Figures 6 and 8) are embarrassingly parallel: every
// cell simulates an independent device, scheme and workload. runCells
// executes a fixed-size task list on up to GOMAXPROCS workers; results are
// written into caller-indexed slots, so the outcome is bit-identical to the
// sequential order regardless of scheduling.

// cellTask is one independent simulation producing a value for slot i.
type cellTask func() error

// runCells runs tasks concurrently and returns the first error (if any).
func runCells(tasks []cellTask) error {
	workers := runtime.GOMAXPROCS(0)
	if workers > len(tasks) {
		workers = len(tasks)
	}
	if workers <= 1 {
		for _, t := range tasks {
			if err := t(); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		next     int
	)
	grab := func() (cellTask, bool) {
		mu.Lock()
		defer mu.Unlock()
		if firstErr != nil || next >= len(tasks) {
			return nil, false
		}
		t := tasks[next]
		next++
		return t, true
	}
	fail := func(err error) {
		mu.Lock()
		defer mu.Unlock()
		if firstErr == nil {
			firstErr = err
		}
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				t, ok := grab()
				if !ok {
					return
				}
				if err := t(); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	return firstErr
}
