package attack

import (
	"testing"
)

func mustNew(t *testing.T, cfg Config) Stream {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestModeString(t *testing.T) {
	want := map[Mode]string{Repeat: "repeat", Random: "random", Scan: "scan", Inconsistent: "inconsistent"}
	for m, w := range want {
		if m.String() != w {
			t.Errorf("%v.String() = %q", int(m), m.String())
		}
	}
	if Mode(99).String() == "" {
		t.Error("unknown mode string empty")
	}
	if len(Modes()) != 4 {
		t.Error("Modes() should list the four Figure 6 attacks")
	}
}

func TestValidation(t *testing.T) {
	if _, err := New(Config{Mode: Repeat, Pages: 0}); err == nil {
		t.Error("zero pages accepted")
	}
	if _, err := New(Config{Mode: Inconsistent, Pages: 8, TargetPages: 1}); err == nil {
		t.Error("single-target inconsistent attack accepted")
	}
	if _, err := New(Config{Mode: Mode(42), Pages: 8}); err == nil {
		t.Error("unknown mode accepted")
	}
}

func TestRepeatFixesAddress(t *testing.T) {
	s := mustNew(t, DefaultConfig(Repeat, 64, 1))
	for i := 0; i < 100; i++ {
		if a := s.Next(Feedback{}); a != 0 {
			t.Fatalf("repeat emitted %d", a)
		}
	}
}

func TestRandomCoversSpace(t *testing.T) {
	s := mustNew(t, DefaultConfig(Random, 16, 1))
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		a := s.Next(Feedback{})
		if a < 0 || a >= 16 {
			t.Fatalf("random address %d out of range", a)
		}
		seen[a] = true
	}
	if len(seen) != 16 {
		t.Fatalf("random mode touched only %d/16 addresses", len(seen))
	}
}

func TestScanIsConsecutive(t *testing.T) {
	s := mustNew(t, DefaultConfig(Scan, 4, 1))
	want := []int{0, 1, 2, 3, 0, 1}
	for i, w := range want {
		if a := s.Next(Feedback{}); a != w {
			t.Fatalf("scan step %d = %d, want %d", i, a, w)
		}
	}
}

func TestInconsistentWeightsAscendWithColdHalf(t *testing.T) {
	cfg := DefaultConfig(Inconsistent, 1024, 1)
	cfg.TargetPages = 8
	s := mustNew(t, cfg).(*inconsistentStream)
	// Count burst lengths of the first pass: the lower half of the targets
	// must be untouched (maximally cold) and the upper half strictly
	// ascending up to the 90-write bursts (W1 < Wk < WN, Section 3.2).
	counts := map[int]int{}
	for i := 0; i < s.passLen; i++ {
		counts[s.Next(Feedback{})]++
	}
	for i := 0; i < 4; i++ {
		if counts[i] != 0 {
			t.Fatalf("cold-half address %d written %d times, want 0", i, counts[i])
		}
	}
	for i := 4; i < 7; i++ {
		if counts[i] >= counts[i+1] {
			t.Fatalf("hot-half weights not ascending: %v", counts)
		}
	}
	if counts[7] != 90 {
		t.Fatalf("hottest weight = %d, want 90 (Figure 3)", counts[7])
	}
}

func TestInconsistentReversesAfterSwap(t *testing.T) {
	cfg := DefaultConfig(Inconsistent, 1024, 1)
	cfg.TargetPages = 4
	cfg.QuietThreshold = 8
	s := mustNew(t, cfg).(*inconsistentStream)
	// Run past the minimum flip spacing, then signal one blocked response
	// followed by quiet.
	for i := 0; i < s.minFlipAt+1; i++ {
		s.Next(Feedback{})
	}
	s.Next(Feedback{Blocked: true})
	for i := 0; i < 8; i++ {
		s.Next(Feedback{})
	}
	if s.Reversals() != 1 {
		t.Fatalf("reversals = %d after swap-end signal, want 1", s.Reversals())
	}
	// The previously-frozen cold half must now take the writes.
	counts := map[int]int{}
	for i := 0; i < s.passLen; i++ {
		counts[s.Next(Feedback{})]++
	}
	if counts[0] == 0 || counts[1] == 0 {
		t.Fatalf("after reversal cold half still frozen: %v", counts)
	}
	if counts[3] != 0 {
		t.Fatalf("after reversal the old hot tail still written: %v", counts)
	}
}

func TestInconsistentNoReversalWhileBlocked(t *testing.T) {
	cfg := DefaultConfig(Inconsistent, 1024, 1)
	cfg.TargetPages = 4
	cfg.QuietThreshold = 8
	s := mustNew(t, cfg).(*inconsistentStream)
	// Continuous blocking (mid swap phase): no reversal yet, even past the
	// minimum flip spacing.
	for i := 0; i < s.minFlipAt+100; i++ {
		s.Next(Feedback{Blocked: true})
	}
	if s.Reversals() != 0 {
		t.Fatalf("reversed mid-swap-phase: %d", s.Reversals())
	}
}

func TestInconsistentFallbackReversal(t *testing.T) {
	cfg := DefaultConfig(Inconsistent, 1024, 1)
	cfg.TargetPages = 4
	s := mustNew(t, cfg).(*inconsistentStream)
	// Never signal a block: the fallback must still flip eventually.
	for i := 0; i < s.fallbackAt+10; i++ {
		s.Next(Feedback{})
	}
	if s.Reversals() == 0 {
		t.Fatal("fallback reversal never fired")
	}
}

// TestInconsistentNextRunMatchesSerial drives two identical streams — one
// through the per-write Next path and one through the FeedbackRunStream bulk
// protocol — against the same scripted feedback, and requires bit-identical
// address sequences, including across swap-detection reversals.
func TestInconsistentNextRunMatchesSerial(t *testing.T) {
	newStream := func() *inconsistentStream {
		cfg := DefaultConfig(Inconsistent, 1024, 1)
		cfg.TargetPages = 4
		cfg.QuietThreshold = 8
		return mustNew(t, cfg).(*inconsistentStream)
	}
	serial := newStream()
	bulk := newStream()
	// A deterministic pseudo-schedule of detected swaps: short blocked
	// stretches at a period unaligned with the stream's pass length.
	outcome := func(step int) Feedback {
		return Feedback{Blocked: step%1009 < 3}
	}
	const steps = 200000
	want := make([]int, steps)
	fb := Feedback{}
	for k := 0; k < steps; k++ {
		want[k] = serial.Next(fb)
		fb = outcome(k)
	}
	fb = Feedback{}
	for k := 0; k < steps; {
		addr, n := bulk.NextRun(fb)
		if n < 1 {
			t.Fatalf("NextRun returned n=%d", n)
		}
		if k+n > steps {
			n = steps - k
		}
		for i := 0; i < n; i++ {
			if want[k+i] != addr {
				t.Fatalf("step %d: bulk emits %d, serial emitted %d", k+i, addr, want[k+i])
			}
			fb = outcome(k + i)
			if i < n-1 {
				// The run's last request hands its feedback to the next
				// NextRun instead (see FeedbackRunStream).
				bulk.Observe(fb, 1)
			}
		}
		k += n
	}
	if serial.Reversals() == 0 {
		t.Fatal("script never triggered a reversal; the equivalence is vacuous")
	}
	if bulk.Reversals() != serial.Reversals() {
		t.Fatalf("reversals diverge: bulk %d, serial %d", bulk.Reversals(), serial.Reversals())
	}
}

// TestInconsistentObserveCapsAtOwed: feedback relayed beyond the current
// NextRun commitment must be dropped, not double-counted into the quiet
// window.
func TestInconsistentObserveCapsAtOwed(t *testing.T) {
	cfg := DefaultConfig(Inconsistent, 1024, 1)
	s := mustNew(t, cfg).(*inconsistentStream)
	s.Next(Feedback{Blocked: true})
	// Step into a long burst so the next run has real length.
	for s.remaining < 10 {
		s.Next(Feedback{})
	}
	_, n := s.NextRun(Feedback{})
	if n < 2 {
		t.Fatalf("run too short to exercise the cap: n=%d", n)
	}
	q0 := s.quiet
	s.Observe(Feedback{}, n+1000)
	if s.owed != 0 {
		t.Fatalf("owed = %d after full relay, want 0", s.owed)
	}
	if s.quiet != q0+n-1 {
		t.Fatalf("quiet advanced to %d, want %d (capped at the owed %d requests)", s.quiet, q0+n-1, n-1)
	}
	s.Observe(Feedback{}, 5)
	if s.quiet != q0+n-1 {
		t.Fatalf("Observe past a drained commitment advanced quiet to %d", s.quiet)
	}
}

func TestInconsistentTargetsClampedToPages(t *testing.T) {
	cfg := DefaultConfig(Inconsistent, 4, 1)
	cfg.TargetPages = 100
	s := mustNew(t, cfg)
	for i := 0; i < 1000; i++ {
		if a := s.Next(Feedback{}); a >= 4 {
			t.Fatalf("address %d beyond the 4-page space", a)
		}
	}
}

func TestInconsistentAddressesInTargetRange(t *testing.T) {
	cfg := DefaultConfig(Inconsistent, 1024, 1)
	cfg.TargetPages = 8
	s := mustNew(t, cfg)
	for i := 0; i < 10000; i++ {
		a := s.Next(Feedback{Blocked: i%97 == 0})
		if a < 0 || a >= 8 {
			t.Fatalf("address %d outside target range [0,8)", a)
		}
	}
}
