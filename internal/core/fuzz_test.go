package core

import (
	"testing"

	"twl/internal/pcm"
	"twl/internal/tables"
)

// refTossDistance is the per-write countdown reference for tossUpDistance:
// step the 7-bit WCT one Inc at a time until the toss-up condition from
// Engine.Write fires (value wraps to zero, or reaches the interval). The
// wrap covers interval == tables.MaxInterval, where `>= interval` is
// unreachable in 7 bits.
func refTossDistance(v uint8, interval int) int {
	for i := 1; ; i++ {
		nv := uint8(int(v)+i) & (1<<tables.WCTBits - 1)
		if nv == 0 || int(nv) >= interval {
			return i
		}
	}
}

// refIPSDistance is the per-write countdown reference for ipsDistance:
// count increments until the post-increment compare in Engine.Write fires.
func refIPSDistance(c uint32, interval int) int {
	for i := 1; ; i++ {
		if int64(c)+int64(i) >= int64(interval) {
			return i
		}
	}
}

// fuzzEngine builds a small TWL engine whose starting state matches the
// fuzz tuple: WCT of the target pair advanced to v (by Incs, the only
// mutator), the target page's inter-pair counter preset, and per-page
// endurance low enough that runs routinely hit the failure clamp. The
// seeded counters are folded into the *reachable* state space — a live WCT
// always sits below the interval and an IPS counter below its interval
// (CheckInvariants enforces both) — so the differential starts from a state
// the per-write path could actually be in.
func fuzzEngine(t *testing.T, cfg Config, la int, v uint8, ips uint32, margin uint8) *Engine {
	t.Helper()
	if cfg.TossUpInterval < tables.MaxInterval {
		v %= uint8(cfg.TossUpInterval)
	}
	geom := pcm.DefaultGeometry()
	geom.Pages = 16
	endurance := make([]uint64, geom.Pages)
	for i := range endurance {
		endurance[i] = uint64(margin) + 1 + uint64(i%3)
	}
	dev, err := pcm.NewDevice(geom, pcm.DefaultTiming(), endurance)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := e.pairIdx[e.rt.Phys(la)]
	for i := 0; i < int(v); i++ {
		e.wct.Inc(rep)
	}
	if cfg.InterPairSwapInterval > 0 {
		e.ipsCount[la] = ips % uint32(cfg.InterPairSwapInterval)
	}
	return e
}

// compareEngines requires bit-identical engine and device state — the
// property the fast-forward contract promises after any WriteRun/WriteSweep
// sequence versus the per-write equivalent.
func compareEngines(t *testing.T, fast, slow *Engine) {
	t.Helper()
	df, ds := fast.dev, slow.dev
	if df.TotalWrites() != ds.TotalWrites() {
		t.Fatalf("device writes: fast %d, slow %d", df.TotalWrites(), ds.TotalWrites())
	}
	for pp := 0; pp < df.Pages(); pp++ {
		if df.Wear(pp) != ds.Wear(pp) {
			t.Fatalf("wear[%d]: fast %d, slow %d", pp, df.Wear(pp), ds.Wear(pp))
		}
		if df.Peek(pp) != ds.Peek(pp) {
			t.Fatalf("payload[%d]: fast %d, slow %d", pp, df.Peek(pp), ds.Peek(pp))
		}
		if fast.rt.Phys(fast.rt.Log(pp)) != pp {
			t.Fatalf("fast RT lost bijectivity at %d", pp)
		}
		if fast.wct.Get(fast.pairIdx[pp]) != slow.wct.Get(slow.pairIdx[pp]) {
			t.Fatalf("wct[pair of %d]: fast %d, slow %d",
				pp, fast.wct.Get(fast.pairIdx[pp]), slow.wct.Get(slow.pairIdx[pp]))
		}
	}
	for la := range fast.ipsCount {
		if fast.rt.Phys(la) != slow.rt.Phys(la) {
			t.Fatalf("rt[%d]: fast %d, slow %d", la, fast.rt.Phys(la), slow.rt.Phys(la))
		}
		if fast.ipsCount[la] != slow.ipsCount[la] {
			t.Fatalf("ipsCount[%d]: fast %d, slow %d", la, fast.ipsCount[la], slow.ipsCount[la])
		}
	}
	if fast.stats != slow.stats {
		t.Fatalf("stats: fast %+v, slow %+v", fast.stats, slow.stats)
	}
	if err := fast.CheckInvariants(); err != nil {
		t.Fatalf("fast engine invariants: %v", err)
	}
	if err := slow.CheckInvariants(); err != nil {
		t.Fatalf("slow engine invariants: %v", err)
	}
}

// FuzzEventHorizon fuzzes the event-horizon arithmetic behind the TWL fast
// path. For every tuple (WCT value, toss-up interval, IPS counter and
// interval, run length, endurance margin) it checks that
//
//  1. the O(1) distance helpers agree with a literal per-write countdown,
//     including the wrap-at-zero edge at interval == tables.MaxInterval;
//  2. driving WriteRun through the caller protocol (absorb, fall back to
//     Write on absorbed == 0) leaves engine, device, RNG and stats state
//     bit-identical to per-write Writes — including runs clamped by a page
//     reaching its endurance mid-run;
//  3. the same holds for WriteSweep over a cycling address sweep.
func FuzzEventHorizon(f *testing.F) {
	f.Add(uint8(0), uint8(31), uint32(0), uint16(100), uint16(50), uint8(10), uint8(0))
	f.Add(uint8(127), uint8(127), uint32(9999), uint16(0), uint16(300), uint8(3), uint8(1))
	f.Add(uint8(64), uint8(0), uint32(7), uint16(1), uint16(513), uint8(255), uint8(5))
	f.Add(uint8(1), uint8(119), uint32(42), uint16(8), uint16(64), uint8(0), uint8(2))
	f.Fuzz(func(t *testing.T, v uint8, iv uint8, ips uint32, ipsIv uint16, n16 uint16, margin uint8, mode uint8) {
		v &= 1<<tables.WCTBits - 1
		interval := int(iv)%tables.MaxInterval + 1
		ipsInterval := int(ipsIv) % 200 // 0 disables the inter-pair swap
		n := int(n16)%600 + 1

		if got, want := tossUpDistance(v, interval), refTossDistance(v, interval); got != want {
			t.Fatalf("tossUpDistance(%d, %d) = %d, countdown gives %d", v, interval, got, want)
		}
		if ipsInterval > 0 {
			if got, want := ipsDistance(ips, ipsInterval), refIPSDistance(ips, ipsInterval); got != want {
				t.Fatalf("ipsDistance(%d, %d) = %d, countdown gives %d", ips, ipsInterval, got, want)
			}
		}

		cfg := DefaultConfig(uint64(v)*131 + uint64(ips) + 1)
		cfg.Pairing = Pairing(int(mode) % 3)
		cfg.UseFeistel = mode&4 == 0
		cfg.TossUpInterval = interval
		cfg.InterPairSwapInterval = ipsInterval
		la := int(mode) % 16

		// Same-address run: fast side uses the bulk-loop protocol, slow side
		// is the literal per-write loop. Both stop at n writes or the first
		// page failure.
		fast := fuzzEngine(t, cfg, la, v, ips, margin)
		slow := fuzzEngine(t, cfg, la, v, ips, margin)
		served := 0
		for served < n {
			if _, failed := fast.dev.Failed(); failed {
				break
			}
			cost, applied := fast.WriteRun(la, uint64(served), n-served)
			if applied > 0 {
				if cost.Blocked {
					t.Fatal("WriteRun absorbed a blocked write")
				}
				served += applied
				continue
			}
			fast.Write(la, uint64(served))
			served++
		}
		for i := 0; i < served; i++ {
			if _, failed := slow.dev.Failed(); failed {
				t.Fatalf("slow run failed after %d writes, fast served %d", i, served)
			}
			slow.Write(la, uint64(i))
		}
		if _, failed := fast.dev.Failed(); !failed && served < n {
			t.Fatalf("fast run stopped at %d/%d without a failure", served, n)
		}
		compareEngines(t, fast, slow)

		// Consecutive-address sweep cycling over the page range.
		fast = fuzzEngine(t, cfg, la, v, ips, margin)
		slow = fuzzEngine(t, cfg, la, v, ips, margin)
		pages := fast.dev.Pages()
		served = 0
		for served < n {
			if _, failed := fast.dev.Failed(); failed {
				break
			}
			a := served % pages
			run := pages - a
			if rem := n - served; rem < run {
				run = rem
			}
			cost, applied := fast.WriteSweep(a, uint64(served), run)
			if applied > 0 {
				if cost.Blocked {
					t.Fatal("WriteSweep absorbed a blocked write")
				}
				served += applied
				continue
			}
			fast.Write(a, uint64(served))
			served++
		}
		for i := 0; i < served; i++ {
			if _, failed := slow.dev.Failed(); failed {
				t.Fatalf("slow sweep failed after %d writes, fast served %d", i, served)
			}
			slow.Write(i%pages, uint64(i))
		}
		if _, failed := fast.dev.Failed(); !failed && served < n {
			t.Fatalf("fast sweep stopped at %d/%d without a failure", served, n)
		}
		compareEngines(t, fast, slow)
	})
}
