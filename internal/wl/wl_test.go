package wl

import (
	"testing"

	"twl/internal/pcm"
)

func TestCostAdd(t *testing.T) {
	c := Cost{DeviceWrites: 1, DeviceReads: 2, ExtraCycles: 3}
	c.Add(Cost{DeviceWrites: 4, DeviceReads: 5, ExtraCycles: 6, Blocked: true})
	if c.DeviceWrites != 5 || c.DeviceReads != 7 || c.ExtraCycles != 9 || !c.Blocked {
		t.Fatalf("Add result %+v", c)
	}
	// Blocked is sticky.
	c.Add(Cost{})
	if !c.Blocked {
		t.Fatal("Blocked cleared by Add")
	}
}

func TestCostCycles(t *testing.T) {
	timing := pcm.DefaultTiming()
	c := Cost{DeviceWrites: 2, DeviceReads: 3, ExtraCycles: 7}
	want := int64(2*2000 + 3*250 + 7)
	if got := c.Cycles(timing); got != want {
		t.Fatalf("Cycles = %d, want %d", got, want)
	}
}

func TestStatsSwapWriteRatio(t *testing.T) {
	if (Stats{}).SwapWriteRatio() != 0 {
		t.Fatal("empty stats ratio != 0")
	}
	s := Stats{DemandWrites: 200, SwapWrites: 50}
	if s.SwapWriteRatio() != 0.25 {
		t.Fatalf("ratio = %v", s.SwapWriteRatio())
	}
}

func TestSortByEndurance(t *testing.T) {
	idx := SortByEndurance([]uint64{30, 10, 20})
	want := []int{1, 2, 0}
	for i := range want {
		if idx[i] != want[i] {
			t.Fatalf("order = %v, want %v", idx, want)
		}
	}
	// Stability on ties.
	idx = SortByEndurance([]uint64{5, 5, 5})
	for i, v := range idx {
		if v != i {
			t.Fatalf("tie order not stable: %v", idx)
		}
	}
	if len(SortByEndurance(nil)) != 0 {
		t.Fatal("nil input")
	}
}

func TestValidateLA(t *testing.T) {
	geom := pcm.Geometry{Pages: 4, PageSize: 4096, LineSize: 128, Ranks: 1, Banks: 1}
	dev, err := pcm.NewDevice(geom, pcm.DefaultTiming(), []uint64{1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateLA(dev, 0); err != nil {
		t.Fatal(err)
	}
	if err := ValidateLA(dev, 3); err != nil {
		t.Fatal(err)
	}
	if err := ValidateLA(dev, 4); err == nil {
		t.Fatal("LA 4 accepted on a 4-page device")
	}
	if err := ValidateLA(dev, -1); err == nil {
		t.Fatal("negative LA accepted")
	}
}

func TestLatencyConstantsMatchTable1(t *testing.T) {
	// Table 1: "TWL control logic latency/ table latency: 5/10-cycle,
	// RNG latency: 4-cycle".
	if TableCycles != 10 || ControlCycles != 5 || RNGCycles != 4 {
		t.Fatalf("latency constants %d/%d/%d do not match Table 1",
			TableCycles, ControlCycles, RNGCycles)
	}
}
