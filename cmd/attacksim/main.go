// Command attacksim regenerates the attack experiments of the paper:
//
//	attacksim -fig6    lifetime under the four attack modes (Figure 6)
//	attacksim -fig7    toss-up interval sweep (Figure 7 a & b)
//	attacksim -retire  lifetime beyond first failure with a spare pool
//
// The -retire experiment attaches the page-retirement decorator and runs
// each scheme past its first failure until the spare pool exhausts,
// answering: how much lifetime does the pool buy, and does the attack
// accelerate once its traffic concentrates on the spares?
//
// All run on the scaled default system; -pages/-endurance/-seed adjust the
// scale. Results print as tables plus ASCII bar charts mirroring the
// figures.
package main

import (
	"flag"
	"fmt"
	"os"

	"twl"
	"twl/internal/cliutil"
	"twl/internal/obs"
	"twl/internal/report"
)

func main() {
	var (
		fig6       = flag.Bool("fig6", false, "run the Figure 6 attack grid")
		fig7       = flag.Bool("fig7", false, "run the Figure 7 interval sweep")
		retire     = flag.Bool("retire", false, "run the post-failure retirement experiment")
		spareFrac  = flag.Float64("spare-frac", twl.DefaultSpareFraction, "spare-pool fraction for -retire")
		retireThr  = flag.Float64("retire-threshold", 0, "capacity threshold for -retire (0: run until the pool is exhausted)")
		pages      = flag.Int("pages", 0, "simulated pages (default: DefaultSystem)")
		endurance  = flag.Float64("endurance", 0, "mean endurance (default: DefaultSystem)")
		seed       = flag.Uint64("seed", 1, "simulation seed")
		requests   = flag.Int("requests", 0, "Figure 7a requests per benchmark (default 300000)")
		replicate  = flag.Int("replicate", 0, "replicate the Figure 6 TWL/BWL inconsistent cells over N seeds and report mean±std")
		metrics    = flag.Bool("metrics", false, "print a metrics report (grid-cell timing, worker utilization) after the runs")
		traceFile  = flag.String("trace", "", "write per-cell JSONL trace events to this file")
		traceEvery = flag.Uint64("trace-every", 0, "in-run progress event cadence (0: default)")
		pprofPfx   = flag.String("pprof", "", "capture CPU+heap profiles to PREFIX.cpu.pprof / PREFIX.heap.pprof")
	)
	flag.Parse()
	cliutil.Check("attacksim", cliutil.FirstError(
		cliutil.NoArgs(flag.Args()),
		cliutil.NonNegativeInt("-pages", *pages),
		cliutil.NonNegativeFloat("-endurance", *endurance),
		cliutil.NonNegativeInt("-requests", *requests),
		cliutil.NonNegativeInt("-replicate", *replicate),
		cliutil.Fraction("-spare-frac", *spareFrac, true),
		cliutil.Fraction("-retire-threshold", *retireThr, true),
	))
	if !*fig6 && !*fig7 && !*retire {
		*fig6 = true
		*fig7 = true
	}

	if *pprofPfx != "" {
		stop, err := obs.StartProfile(*pprofPfx)
		fatal(err)
		defer func() { fatal(stop()) }()
	}
	var reg *twl.MetricsRegistry
	if *metrics {
		reg = twl.NewMetrics()
	}
	var tr *twl.Tracer
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		fatal(err)
		defer func() { fatal(f.Close()) }()
		tr = twl.NewRunTracer(f, *traceEvery)
		defer func() { fatal(tr.Err()) }()
	}

	sys := twl.DefaultSystem(*seed)
	if *pages > 0 {
		sys.Pages = *pages
	}
	if *endurance > 0 {
		sys.MeanEndurance = *endurance
	}

	if *fig6 {
		runFig6(sys, reg, tr)
	}
	if *fig7 {
		cfg := twl.DefaultFig7Config()
		if *requests > 0 {
			cfg.RequestsPerBenchmark = *requests
		}
		runFig7(sys, cfg)
	}
	if *retire {
		runRetire(sys, *spareFrac, *retireThr, reg, tr)
	}
	if *replicate > 0 {
		runReplicate(sys, *replicate)
	}
	if reg != nil {
		fmt.Println()
		fatal(reg.WriteText(os.Stdout))
	}
}

// runRetire runs the post-failure experiment: each scheme under the
// inconsistent attack (the paper's hardest pattern) and, for contrast, the
// random attack, with a spare pool behind it. The Accel column compares the
// retirement rate early vs late in each run — above 1, failures arrive
// faster as the run ages, i.e. the attack accelerates once its traffic
// lands on the shrinking spare pool.
func runRetire(sys twl.SystemConfig, frac, threshold float64, reg *twl.MetricsRegistry, tr *twl.Tracer) {
	sys = sys.WithSpareFraction(frac)
	tb := report.NewTable(
		fmt.Sprintf("\nLifetime beyond first failure — %d spare pages (%.1f%%)", sys.SparePages, frac*100),
		"scheme", "attack", "first fail (y)", "final (y)", "extension", "mean gap (Mw)", "accel")
	for _, scheme := range []string{"NOWL", "BWL", "SR", "TWL_swp"} {
		for _, mode := range []twl.AttackMode{twl.AttackRandom, twl.AttackInconsistent} {
			cfg := twl.DefaultRetirementConfig()
			cfg.Scheme = scheme
			cfg.Mode = mode
			cfg.SpareFraction = frac
			cfg.CapacityThreshold = threshold
			cfg.Metrics = reg
			cfg.Trace = tr
			res, err := twl.RunRetirement(sys, cfg)
			fatal(err)
			accel := "n/a"
			if res.Accel > 0 {
				accel = fmt.Sprintf("%.2f", res.Accel)
			}
			tb.AddRow(scheme, mode.String(),
				fmt.Sprintf("%.3f", res.FirstFailureYears),
				fmt.Sprintf("%.3f", res.FinalYears),
				fmt.Sprintf("%.2fx", res.ExtensionRatio),
				fmt.Sprintf("%.3f", res.MeanGapWrites/1e6),
				accel)
		}
	}
	fatal(tb.Render(os.Stdout))
	fmt.Println("\naccel > 1: retirements arrive faster late in the run — the attack speeds up once it targets the spares.")
}

func runReplicate(sys twl.SystemConfig, n int) {
	fmt.Printf("\nReplication over %d seeds (normalized lifetime under the inconsistent attack):\n", n)
	for _, scheme := range []string{"TWL_swp", "BWL", "SR"} {
		res, err := twl.ReplicateAttackLifetime(sys, n, scheme, twl.AttackInconsistent)
		fatal(err)
		fmt.Printf("%-8s mean %.3f  std %.3f  min %.3f  max %.3f\n",
			scheme, res.Mean, res.StdDev, res.Min, res.Max)
	}
}

func runFig6(sys twl.SystemConfig, reg *twl.MetricsRegistry, tr *twl.Tracer) {
	cfg := twl.DefaultFig6Config()
	cfg.Metrics = reg
	cfg.Trace = tr
	res, err := twl.RunFig6(sys, cfg)
	fatal(err)
	tb := report.NewTable(
		fmt.Sprintf("Figure 6 — lifetime under attacks (years; ideal = %.2f y at 8 GB/s)", res.IdealYears),
		"scheme", "repeat", "random", "scan", "inconsistent", "gmean")
	for _, s := range res.Schemes {
		row := []string{s}
		for _, m := range res.Modes {
			row = append(row, fmt.Sprintf("%.2f", res.Cells[s][m.String()].Years))
		}
		row = append(row, fmt.Sprintf("%.2f", res.Gmean[s]))
		tb.AddRow(row...)
	}
	fatal(tb.Render(os.Stdout))

	chart := report.NewSeries("\nGmean lifetime under attacks", "y")
	for _, s := range res.Schemes {
		chart.Add(s, res.Gmean[s])
	}
	fatal(chart.Render(os.Stdout, 40))

	inc := res.Cells["BWL"]["inconsistent"]
	fmt.Printf("\nBWL under the inconsistent attack: %.3g years (%.0f hours) — the paper's headline collapse.\n",
		inc.Years, inc.Seconds/3600)
}

func runFig7(sys twl.SystemConfig, cfg twl.Fig7Config) {
	pts, err := twl.RunFig7(sys, cfg)
	fatal(err)
	tb := report.NewTable("\nFigure 7 — choosing the toss-up interval",
		"interval", "swap/write ratio (PARSEC gmean)", "scan-attack lifetime (y)")
	for _, p := range pts {
		tb.AddRow(fmt.Sprintf("%d", p.Interval),
			fmt.Sprintf("%.4f", p.SwapWriteRatio),
			fmt.Sprintf("%.2f", p.ScanLifetimeYears))
	}
	fatal(tb.Render(os.Stdout))
	fmt.Printf("\nMinimum requirement: %.0f years (server replacement cycle); the paper picks interval 32.\n",
		twl.MinimumLifetimeYears)
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "attacksim:", err)
		os.Exit(1)
	}
}
