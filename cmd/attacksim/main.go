// Command attacksim regenerates the attack experiments of the paper:
//
//	attacksim -fig6    lifetime under the four attack modes (Figure 6)
//	attacksim -fig7    toss-up interval sweep (Figure 7 a & b)
//
// Both run on the scaled default system; -pages/-endurance/-seed adjust the
// scale. Results print as tables plus ASCII bar charts mirroring the
// figures.
package main

import (
	"flag"
	"fmt"
	"os"

	"twl"
	"twl/internal/obs"
	"twl/internal/report"
)

func main() {
	var (
		fig6       = flag.Bool("fig6", false, "run the Figure 6 attack grid")
		fig7       = flag.Bool("fig7", false, "run the Figure 7 interval sweep")
		pages      = flag.Int("pages", 0, "simulated pages (default: DefaultSystem)")
		endurance  = flag.Float64("endurance", 0, "mean endurance (default: DefaultSystem)")
		seed       = flag.Uint64("seed", 1, "simulation seed")
		requests   = flag.Int("requests", 0, "Figure 7a requests per benchmark (default 300000)")
		replicate  = flag.Int("replicate", 0, "replicate the Figure 6 TWL/BWL inconsistent cells over N seeds and report mean±std")
		metrics    = flag.Bool("metrics", false, "print a metrics report (grid-cell timing, worker utilization) after the runs")
		traceFile  = flag.String("trace", "", "write per-cell JSONL trace events to this file")
		traceEvery = flag.Uint64("trace-every", 0, "in-run progress event cadence (0: default)")
		pprofPfx   = flag.String("pprof", "", "capture CPU+heap profiles to PREFIX.cpu.pprof / PREFIX.heap.pprof")
	)
	flag.Parse()
	if !*fig6 && !*fig7 {
		*fig6 = true
		*fig7 = true
	}

	if *pprofPfx != "" {
		stop, err := obs.StartProfile(*pprofPfx)
		fatal(err)
		defer func() { fatal(stop()) }()
	}
	var reg *twl.MetricsRegistry
	if *metrics {
		reg = twl.NewMetrics()
	}
	var tr *twl.Tracer
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		fatal(err)
		defer func() { fatal(f.Close()) }()
		tr = twl.NewRunTracer(f, *traceEvery)
		defer func() { fatal(tr.Err()) }()
	}

	sys := twl.DefaultSystem(*seed)
	if *pages > 0 {
		sys.Pages = *pages
	}
	if *endurance > 0 {
		sys.MeanEndurance = *endurance
	}

	if *fig6 {
		runFig6(sys, reg, tr)
	}
	if *fig7 {
		cfg := twl.DefaultFig7Config()
		if *requests > 0 {
			cfg.RequestsPerBenchmark = *requests
		}
		runFig7(sys, cfg)
	}
	if *replicate > 0 {
		runReplicate(sys, *replicate)
	}
	if reg != nil {
		fmt.Println()
		fatal(reg.WriteText(os.Stdout))
	}
}

func runReplicate(sys twl.SystemConfig, n int) {
	fmt.Printf("\nReplication over %d seeds (normalized lifetime under the inconsistent attack):\n", n)
	for _, scheme := range []string{"TWL_swp", "BWL", "SR"} {
		res, err := twl.ReplicateAttackLifetime(sys, n, scheme, twl.AttackInconsistent)
		fatal(err)
		fmt.Printf("%-8s mean %.3f  std %.3f  min %.3f  max %.3f\n",
			scheme, res.Mean, res.StdDev, res.Min, res.Max)
	}
}

func runFig6(sys twl.SystemConfig, reg *twl.MetricsRegistry, tr *twl.Tracer) {
	cfg := twl.DefaultFig6Config()
	cfg.Metrics = reg
	cfg.Trace = tr
	res, err := twl.RunFig6(sys, cfg)
	fatal(err)
	tb := report.NewTable(
		fmt.Sprintf("Figure 6 — lifetime under attacks (years; ideal = %.2f y at 8 GB/s)", res.IdealYears),
		"scheme", "repeat", "random", "scan", "inconsistent", "gmean")
	for _, s := range res.Schemes {
		row := []string{s}
		for _, m := range res.Modes {
			row = append(row, fmt.Sprintf("%.2f", res.Cells[s][m.String()].Years))
		}
		row = append(row, fmt.Sprintf("%.2f", res.Gmean[s]))
		tb.AddRow(row...)
	}
	fatal(tb.Render(os.Stdout))

	chart := report.NewSeries("\nGmean lifetime under attacks", "y")
	for _, s := range res.Schemes {
		chart.Add(s, res.Gmean[s])
	}
	fatal(chart.Render(os.Stdout, 40))

	inc := res.Cells["BWL"]["inconsistent"]
	fmt.Printf("\nBWL under the inconsistent attack: %.3g years (%.0f hours) — the paper's headline collapse.\n",
		inc.Years, inc.Seconds/3600)
}

func runFig7(sys twl.SystemConfig, cfg twl.Fig7Config) {
	pts, err := twl.RunFig7(sys, cfg)
	fatal(err)
	tb := report.NewTable("\nFigure 7 — choosing the toss-up interval",
		"interval", "swap/write ratio (PARSEC gmean)", "scan-attack lifetime (y)")
	for _, p := range pts {
		tb.AddRow(fmt.Sprintf("%d", p.Interval),
			fmt.Sprintf("%.4f", p.SwapWriteRatio),
			fmt.Sprintf("%.2f", p.ScanLifetimeYears))
	}
	fatal(tb.Render(os.Stdout))
	fmt.Printf("\nMinimum requirement: %.0f years (server replacement cycle); the paper picks interval 32.\n",
		twl.MinimumLifetimeYears)
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "attacksim:", err)
		os.Exit(1)
	}
}
