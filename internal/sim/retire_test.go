package sim

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"twl/internal/obs"
	"twl/internal/wl"
	"twl/internal/wl/wltest"

	// Link the retirement decorator factory so wl.WithRetirement works.
	_ "twl/internal/wl/retire"
)

// Lifetime beyond first failure: these tests drive every registered scheme
// through the retirement decorator (in both stacking orders with the
// instrumentation decorator) and hold the decorated runs to the same
// bit-identity contracts as bare ones — fast-forward vs per-request, and
// kill/resume vs uninterrupted.

// retireSpares is ~3% of diffPages, inside the paper-style 2–5% provisioning
// band.
const retireSpares = 8

// retireOrders names the two decorator stacking orders under test. Options
// apply first-innermost, so "retire_outer" is Retire(Instrument(s)) and
// "instr_outer" is Instrument(Retire(s)).
var retireOrders = map[string][]func(reg *obs.Registry) wl.Option{
	"retire_outer": {
		func(reg *obs.Registry) wl.Option { return wl.WithInstrumentation(reg) },
		func(*obs.Registry) wl.Option { return wl.WithRetirement(wl.RetireConfig{}) },
	},
	"instr_outer": {
		func(*obs.Registry) wl.Option { return wl.WithRetirement(wl.RetireConfig{}) },
		func(reg *obs.Registry) wl.Option { return wl.WithInstrumentation(reg) },
	},
}

// buildRetired constructs a registered scheme over a spare-pool device and
// applies the order's decorator stack. The instrumentation layer shares the
// run's metrics registry, so its counters join the bit-identity comparison.
func buildRetired(t *testing.T, name, order string, reg *obs.Registry) wl.Scheme {
	t.Helper()
	dev := wltest.NewSpareDevice(t, diffPages, retireSpares, diffEndurance, diffSeed)
	opts := make([]wl.Option, 0, 2)
	for _, mk := range retireOrders[order] {
		opts = append(opts, mk(reg))
	}
	s, err := wl.Default.Build(name, dev, diffSeed, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// retireRunOne is diffRunOne for decorated runs: same capture, except wear
// and payload cover the spare region too.
func retireRunOne(t *testing.T, name, order, kind string, disableFF bool, maxWrites uint64, ckpt *CheckpointConfig) diffRun {
	t.Helper()
	reg := obs.NewRegistry()
	s := buildRetired(t, name, order, reg)
	dev := s.Device()
	if maxWrites == 0 {
		maxWrites = 3 * dev.TotalEndurance()
	}
	var traceBuf bytes.Buffer
	tr := obs.NewTracer(&traceBuf, 1000)
	res, err := RunLifetime(s, diffSource(t, kind, demandPages(s)), LifetimeConfig{
		MaxDemandWrites:    maxWrites,
		CheckEvery:         977,
		Metrics:            reg,
		Trace:              tr,
		DisableFastForward: disableFF,
		Checkpoint:         ckpt,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
	out := diffRun{
		res:         res,
		wear:        make([]uint64, dev.TotalPages()),
		payload:     make([]uint64, dev.TotalPages()),
		writes:      dev.TotalWrites(),
		reads:       dev.TotalReads(),
		metricsText: metricsJSON(t, reg),
		traceText:   traceBuf.String(),
	}
	for pp := 0; pp < dev.TotalPages(); pp++ {
		out.wear[pp] = dev.Wear(pp)
		out.payload[pp] = dev.Peek(pp)
	}
	return out
}

// requireRetired fails unless the run actually exercised retirement: it must
// have survived past the first page failure and ended by capacity
// exhaustion, not a bare first death.
func requireRetired(t *testing.T, r diffRun) {
	t.Helper()
	if r.res.RetiredPages == 0 {
		t.Fatal("run retired no pages; decorated differential is vacuous")
	}
	if r.res.Capped {
		t.Fatalf("decorated run capped instead of exhausting the pool: %+v", r.res)
	}
	if r.res.FailCause != wl.ErrCapacityExhausted {
		t.Fatalf("FailCause = %v, want wl.ErrCapacityExhausted", r.res.FailCause)
	}
}

// TestRetireDifferential: every registered scheme, wrapped in both stacking
// orders, must stay bit-identical between the fast-forward and per-request
// paths while retirements fire mid-run — the capacity curve, spare wear,
// metrics (including the instrumentation layer's) and trace events all land
// at the same demand counts either way.
func TestRetireDifferential(t *testing.T) {
	kinds := []string{"repeat", "scan"}
	if testing.Short() {
		kinds = kinds[:1]
	}
	for _, name := range wl.Names() {
		for order := range retireOrders {
			for _, kind := range kinds {
				t.Run(name+"/"+order+"/"+kind, func(t *testing.T) {
					slow := retireRunOne(t, name, order, kind, true, 0, nil)
					fast := retireRunOne(t, name, order, kind, false, 0, nil)
					requireRetired(t, slow)

					if fast.res != slow.res {
						t.Errorf("LifetimeResult differs:\nfast: %+v\nslow: %+v", fast.res, slow.res)
					}
					for pp := range slow.wear {
						if fast.wear[pp] != slow.wear[pp] {
							t.Fatalf("wear[%d]: fast %d, slow %d", pp, fast.wear[pp], slow.wear[pp])
						}
						if fast.payload[pp] != slow.payload[pp] {
							t.Fatalf("payload[%d]: fast %d, slow %d", pp, fast.payload[pp], slow.payload[pp])
						}
					}
					if fast.writes != slow.writes || fast.reads != slow.reads {
						t.Errorf("device totals differ: fast %d/%d, slow %d/%d",
							fast.writes, fast.reads, slow.writes, slow.reads)
					}
					if fast.metricsText != slow.metricsText {
						t.Errorf("metrics registry differs:\nfast:\n%s\nslow:\n%s", fast.metricsText, slow.metricsText)
					}
					if fast.traceText != slow.traceText {
						t.Errorf("trace events differ:\nfast:\n%s\nslow:\n%s", fast.traceText, slow.traceText)
					}
				})
			}
		}
	}
}

// TestRetireLifetimeExtension pins the tentpole's payoff: under the repeat
// attack the decorated run serves strictly more demand writes than the bare
// run on the same device, reports its death cause and pool usage in the
// result, exposes a monotone capacity curve, and exports the twl_retire_*
// series.
func TestRetireLifetimeExtension(t *testing.T) {
	bare := diffRunOne(t, func(t *testing.T) wl.Scheme {
		t.Helper()
		dev := wltest.NewSpareDevice(t, diffPages, retireSpares, diffEndurance, diffSeed)
		s, err := wl.Default.New("TWL_swp", dev, diffSeed)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}, "repeat", false)

	reg := obs.NewRegistry()
	s := buildRetired(t, "TWL_swp", "retire_outer", reg)
	res, err := RunLifetime(s, diffSource(t, "repeat", demandPages(s)), LifetimeConfig{
		MaxDemandWrites: 3 * s.Device().TotalEndurance(),
		Metrics:         reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.DemandWrites <= bare.res.DemandWrites {
		t.Errorf("retired run served %d demand writes, bare run %d — no lifetime extension",
			res.DemandWrites, bare.res.DemandWrites)
	}
	if res.FailCause != wl.ErrCapacityExhausted || res.SparesUsed != retireSpares || res.SparePages != retireSpares {
		t.Errorf("result does not report exhaustion: %+v", res)
	}
	if res.RetiredPages == 0 || res.RetiredPages > res.SparesUsed {
		t.Errorf("RetiredPages = %d outside (0, SparesUsed=%d]", res.RetiredPages, res.SparesUsed)
	}

	rep, ok := wl.AsCapacityReporter(s)
	if !ok {
		t.Fatal("decorated scheme lost the capacity reporter")
	}
	cs := rep.CapacityStats()
	if len(cs.Curve) != cs.SparesUsed {
		t.Fatalf("curve has %d points for %d spares used", len(cs.Curve), cs.SparesUsed)
	}
	for i, p := range cs.Curve {
		if p.SparesUsed != i+1 {
			t.Fatalf("curve[%d].SparesUsed = %d, want %d", i, p.SparesUsed, i+1)
		}
		if i > 0 && p.DemandWrites < cs.Curve[i-1].DemandWrites {
			t.Fatalf("curve demand writes not monotone at %d: %d < %d", i, p.DemandWrites, cs.Curve[i-1].DemandWrites)
		}
	}
	if last := cs.Curve[len(cs.Curve)-1].DemandWrites; last > res.DemandWrites {
		t.Fatalf("last retirement at %d demand writes, run ended at %d", last, res.DemandWrites)
	}

	if got := reg.Gauge("twl_retire_retired_pages").Value(); got != float64(res.RetiredPages) {
		t.Errorf("twl_retire_retired_pages = %v, want %d", got, res.RetiredPages)
	}
	if got := reg.Gauge("twl_retire_capacity_exhausted").Value(); got != 1 {
		t.Errorf("twl_retire_capacity_exhausted = %v, want 1", got)
	}
}

// TestRetireCheckpointResume: a decorated run killed after its first
// retirement (and again one write before its capacity death) must resume
// bit-identically — the decorator's pool bookkeeping and curve ride the
// scheme snapshot through the checkpoint.
func TestRetireCheckpointResume(t *testing.T) {
	schemes := []string{"NOWL", "TWL_swp", "StartGap"}
	if testing.Short() {
		schemes = schemes[:1]
	}
	for _, name := range schemes {
		for order := range retireOrders {
			t.Run(name+"/"+order, func(t *testing.T) {
				baseline := retireRunOne(t, name, order, "repeat", false, 0, nil)
				requireRetired(t, baseline)
				every := baseline.res.DemandWrites/16 | 1
				// Kill one write short of the capacity death: the last
				// checkpoint sits beyond the first retirement, so the resumed
				// run starts with a partially consumed spare pool.
				for _, killAt := range []uint64{baseline.res.DemandWrites / 2, baseline.res.DemandWrites - 1} {
					path := filepath.Join(t.TempDir(), "run.ckpt")
					killed := retireRunOne(t, name, order, "repeat", false, killAt, &CheckpointConfig{Path: path, Every: every})
					if !killed.res.Capped {
						t.Fatalf("killed run was not capped at %d: %+v", killAt, killed.res)
					}
					if _, err := os.Stat(path); err != nil {
						t.Fatalf("killed run left no checkpoint: %v", err)
					}
					resumed := retireRunOne(t, name, order, "repeat", false, 0, &CheckpointConfig{Path: path, Every: every, Resume: true})
					if resumed.res != baseline.res {
						t.Errorf("kill at %d: LifetimeResult differs:\nresumed:  %+v\nbaseline: %+v", killAt, resumed.res, baseline.res)
					}
					for pp := range baseline.wear {
						if resumed.wear[pp] != baseline.wear[pp] || resumed.payload[pp] != baseline.payload[pp] {
							t.Fatalf("kill at %d: device state diverges at page %d", killAt, pp)
						}
					}
					if resumed.metricsText != baseline.metricsText {
						t.Errorf("kill at %d: metrics diverge", killAt)
					}
				}
			})
		}
	}
}

// TestDecoratorStackingSnapshots: for every registered scheme and both
// stacking orders, the composite keeps exactly the bare scheme's optional
// interfaces, and a mid-traffic snapshot restores into a fresh composite
// byte-identically.
func TestDecoratorStackingSnapshots(t *testing.T) {
	for _, name := range wl.Names() {
		for order := range retireOrders {
			t.Run(name+"/"+order, func(t *testing.T) {
				bareDev := wltest.NewSpareDevice(t, 64, 4, 1e15, diffSeed)
				bare, err := wl.Default.New(name, bareDev, diffSeed)
				if err != nil {
					t.Fatal(err)
				}
				reg := obs.NewRegistry()
				s := buildRetired(t, name, order, reg)
				_, bareCk := bare.(wl.Checker)
				_, bareSn := bare.(wl.Snapshotter)
				_, bareRW := bare.(wl.RunWriter)
				_, bareSW := bare.(wl.SweepWriter)
				if _, ok := s.(wl.Checker); ok != bareCk {
					t.Errorf("Checker: composite %v, bare %v", ok, bareCk)
				}
				if _, ok := s.(wl.Snapshotter); ok != bareSn {
					t.Errorf("Snapshotter: composite %v, bare %v", ok, bareSn)
				}
				if _, ok := s.(wl.RunWriter); ok != bareRW {
					t.Errorf("RunWriter: composite %v, bare %v", ok, bareRW)
				}
				if _, ok := s.(wl.SweepWriter); ok != bareSW {
					t.Errorf("SweepWriter: composite %v, bare %v", ok, bareSW)
				}
				if _, ok := wl.AsCapacityReporter(s); !ok {
					t.Error("composite hides the capacity reporter")
				}

				n := demandPages(s)
				for i := 0; i < 5000; i++ {
					s.Write(i*13%n, uint64(i))
				}
				if ck, ok := s.(wl.Checker); ok {
					if err := ck.CheckInvariants(); err != nil {
						t.Fatal(err)
					}
				}
				sn, ok := s.(wl.Snapshotter)
				if !ok {
					return
				}
				var buf bytes.Buffer
				if err := sn.Snapshot(&buf); err != nil {
					t.Fatal(err)
				}
				s2 := buildRetired(t, name, order, obs.NewRegistry())
				if err := s2.(wl.Snapshotter).Restore(bytes.NewReader(buf.Bytes())); err != nil {
					t.Fatal(err)
				}
				var buf2 bytes.Buffer
				if err := s2.(wl.Snapshotter).Snapshot(&buf2); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
					t.Error("snapshot round trip through the decorator stack not byte-identical")
				}
			})
		}
	}
}

// TestInstrumentedStartGapBulkPath: the instrumentation decorator must not
// cost StartGap its RunWriter — an instrumented run still absorbs bulk
// chunks (the regression that motivated wl.Wrap: the old Instrument dropped
// every optional interface except Checker, silently forcing the slow path).
func TestInstrumentedStartGapBulkPath(t *testing.T) {
	dev := wltest.NewDeviceEndurance(t, diffPages, diffEndurance, diffSeed)
	reg := obs.NewRegistry()
	s, err := wl.Default.Build("StartGap", dev, diffSeed, wl.WithInstrumentation(reg))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.(wl.RunWriter); !ok {
		t.Fatal("instrumented StartGap lost wl.RunWriter")
	}
	res, err := RunLifetime(s, diffSource(t, "repeat", demandPages(s)), LifetimeConfig{
		MaxDemandWrites: 3 * dev.TotalEndurance(),
		Metrics:         reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	hist := reg.Histogram("twl_ff_run_length", obs.ExponentialBuckets(1, 4, 11), obs.L("scheme", "StartGap")).Snapshot()
	if hist.Count == 0 {
		t.Fatal("instrumented StartGap absorbed no bulk chunks: fast path not taken")
	}
	// The instrumentation layer saw every demand write, bulk or not.
	instrWrites := reg.Counter("twl_scheme_requests_total", obs.L("scheme", "StartGap"), obs.L("op", "write")).Value()
	if instrWrites != res.DemandWrites {
		t.Errorf("instrumented write counter %d, demand writes %d", instrWrites, res.DemandWrites)
	}
}
