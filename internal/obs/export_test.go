package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

func exportFixture() *Registry {
	r := NewRegistry()
	r.Help("req_total", "requests served")
	r.Counter("req_total", L("op", "write")).Add(90)
	r.Counter("req_total", L("op", "read")).Add(10)
	r.Gauge("utilization").Set(0.75)
	h := r.Histogram("latency_cycles", []float64{250, 500, 1000})
	for _, v := range []float64{100, 250, 600, 5000} {
		h.Observe(v)
	}
	return r
}

// promSampleRe matches one exposition-format sample line:
// name{label="value",...} value
var promSampleRe = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? (NaN|[-+]?(Inf|[0-9].*))$`)

// TestPrometheusExportParses validates the exposition output line-by-line:
// every line is a HELP/TYPE comment or a well-formed sample, every sample's
// value parses, histogram buckets are cumulative and agree with _count.
func TestPrometheusExportParses(t *testing.T) {
	var buf bytes.Buffer
	if err := exportFixture().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	var (
		samples    int
		lastBucket = map[string]uint64{} // histogram name -> last cumulative
		bucketMax  = map[string]uint64{}
	)
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			t.Fatal("blank line in exposition output")
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if !promSampleRe.MatchString(line) {
			t.Fatalf("malformed sample line: %q", line)
		}
		samples++
		name, value := line[:strings.IndexAny(line, "{ ")], line[strings.LastIndex(line, " ")+1:]
		v, err := strconv.ParseFloat(value, 64)
		if err != nil {
			t.Fatalf("unparsable value in %q: %v", line, err)
		}
		if strings.HasSuffix(name, "_bucket") {
			base := strings.TrimSuffix(name, "_bucket")
			cum := uint64(v)
			if cum < lastBucket[base] {
				t.Fatalf("non-cumulative bucket in %q", line)
			}
			lastBucket[base] = cum
			bucketMax[base] = cum
		}
		if strings.HasSuffix(name, "_count") {
			base := strings.TrimSuffix(name, "_count")
			if uint64(v) != bucketMax[base] {
				t.Fatalf("%s_count = %v, want +Inf bucket %d", base, v, bucketMax[base])
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	// 2 counters + 1 gauge + (4 buckets + sum + count) = 9 samples.
	if samples != 9 {
		t.Fatalf("samples = %d, want 9", samples)
	}
}

func TestPrometheusTypeLineOncePerFamily(t *testing.T) {
	var buf bytes.Buffer
	if err := exportFixture().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			seen[strings.Fields(line)[2]]++
		}
	}
	for name, n := range seen {
		if n != 1 {
			t.Fatalf("TYPE line for %s emitted %d times", name, n)
		}
	}
	if seen["req_total"] != 1 {
		t.Fatal("req_total family missing a TYPE line")
	}
}

func TestJSONExportRoundTrips(t *testing.T) {
	var buf bytes.Buffer
	if err := exportFixture().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var out []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("JSON export does not parse: %v", err)
	}
	if len(out) != 4 {
		t.Fatalf("JSON export has %d series, want 4", len(out))
	}
	byName := map[string]map[string]any{}
	for _, m := range out {
		byName[m["name"].(string)+m["kind"].(string)+strings.TrimSpace(
			// labels differentiate the two req_total series
			func() string {
				if l, ok := m["labels"].(map[string]any); ok {
					return l["op"].(string)
				}
				return ""
			}())] = m
	}
	if byName["req_totalcounterwrite"]["value"].(float64) != 90 {
		t.Fatal("write counter value wrong in JSON export")
	}
	hist := byName["latency_cycleshistogram"]
	if hist["count"].(float64) != 4 {
		t.Fatalf("histogram count = %v, want 4", hist["count"])
	}
	buckets := hist["buckets"].([]any)
	if len(buckets) != 4 {
		t.Fatalf("histogram buckets = %d, want 4", len(buckets))
	}
	last := buckets[3].(map[string]any)
	if last["inf"] != true || last["count"].(float64) != 1 {
		t.Fatalf("+Inf bucket wrong: %v", last)
	}
}

func TestTextExportContainsSeries(t *testing.T) {
	var buf bytes.Buffer
	if err := exportFixture().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`req_total{op=write}`, "90",
		"utilization", "0.75",
		"latency_cycles", "count=4",
		"le 250", "le +Inf",
		"# requests served",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("text export missing %q:\n%s", want, out)
		}
	}
}
