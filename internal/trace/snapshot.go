package trace

import (
	"io"

	"twl/internal/snap"
)

// Snapshot serializes the generator's mutable state: the RNG stream
// position and the burst machine. The Zipf solution, cdf/pdf tables and
// rank permutation are derived from the benchmark, page count and seed at
// NewSynthetic and are not persisted.
func (g *Synthetic) Snapshot(w io.Writer) error {
	sw := snap.NewWriter(w)
	if err := g.src.Snapshot(w); err != nil {
		return err
	}
	sw.Int(g.visit)
	sw.Int(g.burstPage)
	sw.Int(g.burstLeft)
	return sw.Err()
}

// Restore loads state written by Snapshot into a generator built with the
// same benchmark, page count and seed.
func (g *Synthetic) Restore(r io.Reader) error {
	if err := g.src.Restore(r); err != nil {
		return err
	}
	sr := snap.NewReader(r)
	g.visit = sr.Int()
	g.burstPage = sr.Int()
	g.burstLeft = sr.Int()
	return sr.Err()
}
