package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// locksAnalyzer extends go vet's copylocks to the concurrency state this
// codebase actually uses. vet only recognizes sync.Locker values; the obs
// registry types carry their hot state in sync/atomic integers
// (obs.Counter, obs.Gauge, obs.Histogram), which copy silently and then
// split into two diverging counters. Rules:
//
//  1. No by-value copies of structs (transitively) containing sync or
//     sync/atomic state: value receivers, value parameters, assignments
//     from existing values, range value variables, and call arguments.
//     Constructing fresh values (composite literals, new, constructor
//     calls) is fine — only copying a live value is flagged.
//  2. No mixed access: a field used as &f with the sync/atomic package
//     functions must not also be read or written as a plain variable in
//     the same package — the plain access tears under the race detector
//     and on weakly ordered hardware.
var locksAnalyzer = &Analyzer{
	Name: "locks",
	Doc:  "forbids by-value copies of sync/atomic-bearing structs and mixed atomic/plain field access",
}

func init() { locksAnalyzer.Run = runLocks }

func runLocks(p *Package, w *World) []Diagnostic {
	lc := &lockChecker{cache: map[types.Type]string{}}
	var diags []Diagnostic
	for _, f := range p.Files {
		if testSupport(f) {
			continue
		}
		diags = append(diags, lc.copies(p, w, f)...)
	}
	diags = append(diags, mixedAtomic(p, w)...)
	return diags
}

// lockChecker memoizes which types transitively hold sync/atomic state.
type lockChecker struct {
	cache map[types.Type]string
}

// lockPath returns a human-readable path to the first sync/atomic component
// of t ("sync.Mutex", "field n: atomic.Uint64"), or "" when t is free of
// them. Slices, maps, pointers and channels break the chain: copying a
// header shares the underlying state instead of splitting it.
func (lc *lockChecker) lockPath(t types.Type) string {
	if s, ok := lc.cache[t]; ok {
		return s
	}
	lc.cache[t] = "" // cycle guard: recursive types get "" while in progress
	res := ""
	switch u := t.(type) {
	case *types.Named:
		if path := syncStateName(u); path != "" {
			res = path
		} else {
			res = lc.lockPath(u.Underlying())
		}
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			f := u.Field(i)
			if inner := lc.lockPath(f.Type()); inner != "" {
				res = fmt.Sprintf("field %s: %s", f.Name(), inner)
				break
			}
		}
	case *types.Array:
		if inner := lc.lockPath(u.Elem()); inner != "" {
			res = "array element: " + inner
		}
	}
	lc.cache[t] = res
	return res
}

// syncStateName matches the sync and sync/atomic types whose value identity
// matters.
func syncStateName(named *types.Named) string {
	obj := named.Obj()
	if obj.Pkg() == nil {
		return ""
	}
	switch obj.Pkg().Path() {
	case "sync":
		switch obj.Name() {
		case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond", "Map", "Pool":
			return "sync." + obj.Name()
		}
	case "sync/atomic":
		return "atomic." + obj.Name()
	}
	return ""
}

// copying reports whether e reads an existing value (as opposed to
// constructing a fresh one), so assigning or passing it duplicates state.
func copying(e ast.Expr) bool {
	switch ast.Unparen(e).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	}
	return false
}

// copies walks one file for rule 1.
func (lc *lockChecker) copies(p *Package, w *World, f *ast.File) []Diagnostic {
	var diags []Diagnostic
	flagValue := func(pos interface{ Pos() token.Pos }, what string, t types.Type) {
		if t == nil {
			return
		}
		if _, isPtr := t.(*types.Pointer); isPtr {
			return
		}
		if path := lc.lockPath(t); path != "" {
			diags = report(diags, p, w, locksAnalyzer, pos.Pos(),
				"%s copies %s by value (%s); use a pointer", what, t, path)
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Recv != nil {
				for _, field := range n.Recv.List {
					flagValue(field, "receiver", p.Info.TypeOf(field.Type))
				}
			}
			for _, field := range n.Type.Params.List {
				flagValue(field, "parameter", p.Info.TypeOf(field.Type))
			}
		case *ast.FuncLit:
			for _, field := range n.Type.Params.List {
				flagValue(field, "parameter", p.Info.TypeOf(field.Type))
			}
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for _, rhs := range n.Rhs {
					if copying(rhs) {
						flagValue(rhs, "assignment", p.Info.TypeOf(rhs))
					}
				}
			}
		case *ast.ValueSpec:
			for _, v := range n.Values {
				if copying(v) {
					flagValue(v, "variable initialization", p.Info.TypeOf(v))
				}
			}
		case *ast.RangeStmt:
			if n.Value != nil {
				if x := p.Info.TypeOf(n.X); x != nil {
					if _, isPtrRange := x.(*types.Pointer); !isPtrRange {
						flagValue(n.Value, "range value variable", p.Info.TypeOf(n.Value))
					}
				}
			}
		case *ast.CallExpr:
			if _, isConv := p.Info.Types[n.Fun]; isConv && p.Info.Types[n.Fun].IsType() {
				return true
			}
			for _, arg := range n.Args {
				if copying(arg) {
					flagValue(arg, "call argument", p.Info.TypeOf(arg))
				}
			}
		}
		return true
	})
	return diags
}

// mixedAtomic implements rule 2 over the whole package: a field passed by
// address to sync/atomic functions must have no plain reads or writes.
func mixedAtomic(p *Package, w *World) []Diagnostic {
	atomicUse := map[*types.Var]token.Pos{}
	plainUse := map[*types.Var]token.Pos{}
	atomicArgs := map[ast.Expr]bool{}

	fieldOf := func(sel *ast.SelectorExpr) *types.Var {
		s := p.Info.Selections[sel]
		if s == nil || s.Kind() != types.FieldVal {
			return nil
		}
		v, _ := s.Obj().(*types.Var)
		return v
	}

	for _, f := range p.Files {
		if testSupport(f) {
			continue
		}
		// First pass: record &x.f arguments to sync/atomic calls.
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !fromPkg(calleeObj(p, call), "sync/atomic") {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op.String() != "&" {
					continue
				}
				if sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr); ok {
					if v := fieldOf(sel); v != nil {
						if _, seen := atomicUse[v]; !seen {
							atomicUse[v] = arg.Pos()
						}
						atomicArgs[un.X] = true
					}
				}
			}
			return true
		})
	}
	// Second pass: report the first plain use of each atomically accessed
	// field, in AST traversal order. Findings are appended during the walk
	// (files sorted, positions ascending) rather than collected into a map
	// and ranged — this package is itself subject to the determinism
	// contract it enforces.
	var diags []Diagnostic
	for _, f := range p.Files {
		if testSupport(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || atomicArgs[ast.Expr(sel)] {
				return true
			}
			v := fieldOf(sel)
			if v == nil {
				return true
			}
			if _, isAtomic := atomicUse[v]; !isAtomic {
				return true
			}
			if _, seen := plainUse[v]; !seen {
				plainUse[v] = sel.Pos()
				diags = report(diags, p, w, locksAnalyzer, sel.Pos(),
					"field %s is accessed with sync/atomic elsewhere in this package; plain access races with the atomic path", v.Name())
			}
			return true
		})
	}
	return diags
}
