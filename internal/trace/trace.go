// Package trace provides memory-access traces for the benchmark
// experiments: a record format with text and binary codecs, and a synthetic
// PARSEC workload generator.
//
// The paper collects traces from gem5 running the PARSEC suite (Table 2) and
// replays them in loops until a PCM page wears out. gem5 and the PARSEC
// inputs are not available offline, so each benchmark is modeled as a
// Zipf-distributed page-write stream calibrated against the two numbers
// Table 2 reports per benchmark: the write bandwidth (which sets the
// real-time scale) and the ratio of no-wear-leveling lifetime to ideal
// lifetime (which pins the hot-page concentration — precisely the property
// wear-leveling evaluation depends on). See DESIGN.md, substitution 1.
package trace

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Op is a memory operation kind.
type Op byte

const (
	// Read is a page read.
	Read Op = 'R'
	// Write is a page write.
	Write Op = 'W'
)

// Record is one trace entry: an operation on a logical page.
type Record struct {
	Op   Op
	Addr uint64
}

// Writer encodes records in the text format, one "R addr" / "W addr" line
// per record.
type Writer struct {
	w   *bufio.Writer
	n   int
	err error
}

// NewWriter returns a text-format trace writer.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// Write appends one record.
func (t *Writer) Write(r Record) error {
	if t.err != nil {
		return t.err
	}
	if r.Op != Read && r.Op != Write {
		return fmt.Errorf("trace: invalid op %q", r.Op)
	}
	_, t.err = fmt.Fprintf(t.w, "%c %d\n", r.Op, r.Addr)
	if t.err == nil {
		t.n++
	}
	return t.err
}

// Count returns how many records have been written.
func (t *Writer) Count() int { return t.n }

// Flush flushes buffered output.
func (t *Writer) Flush() error {
	if t.err != nil {
		return t.err
	}
	return t.w.Flush()
}

// Reader decodes the text format produced by Writer.
type Reader struct {
	s    *bufio.Scanner
	line int
}

// NewReader returns a text-format trace reader.
func NewReader(r io.Reader) *Reader {
	return &Reader{s: bufio.NewScanner(r)}
}

// Read returns the next record, or io.EOF at end of input.
func (t *Reader) Read() (Record, error) {
	for t.s.Scan() {
		t.line++
		line := strings.TrimSpace(t.s.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return Record{}, fmt.Errorf("trace: line %d: want \"op addr\", got %q", t.line, line)
		}
		var op Op
		switch fields[0] {
		case "R", "r":
			op = Read
		case "W", "w":
			op = Write
		default:
			return Record{}, fmt.Errorf("trace: line %d: unknown op %q", t.line, fields[0])
		}
		addr, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return Record{}, fmt.Errorf("trace: line %d: bad address: %v", t.line, err)
		}
		return Record{Op: op, Addr: addr}, nil
	}
	if err := t.s.Err(); err != nil {
		return Record{}, err
	}
	return Record{}, io.EOF
}

// BinaryWriter encodes records compactly: one opcode byte and a
// little-endian varint address per record. Binary traces are ~6× smaller
// than text and decode ~4× faster, which matters when replaying billions of
// records.
type BinaryWriter struct {
	w   *bufio.Writer
	n   int
	buf [11]byte
}

// NewBinaryWriter returns a binary-format trace writer.
func NewBinaryWriter(w io.Writer) *BinaryWriter {
	return &BinaryWriter{w: bufio.NewWriter(w)}
}

// Write appends one record.
func (b *BinaryWriter) Write(r Record) error {
	if r.Op != Read && r.Op != Write {
		return fmt.Errorf("trace: invalid op %q", r.Op)
	}
	b.buf[0] = byte(r.Op)
	n := 1
	v := r.Addr
	for v >= 0x80 {
		b.buf[n] = byte(v) | 0x80
		v >>= 7
		n++
	}
	b.buf[n] = byte(v)
	n++
	if _, err := b.w.Write(b.buf[:n]); err != nil {
		return err
	}
	b.n++
	return nil
}

// Count returns how many records have been written.
func (b *BinaryWriter) Count() int { return b.n }

// Flush flushes buffered output.
func (b *BinaryWriter) Flush() error { return b.w.Flush() }

// BinaryReader decodes the binary format.
type BinaryReader struct {
	r *bufio.Reader
}

// NewBinaryReader returns a binary-format trace reader.
func NewBinaryReader(r io.Reader) *BinaryReader {
	return &BinaryReader{r: bufio.NewReader(r)}
}

// Read returns the next record, or io.EOF at end of input.
func (b *BinaryReader) Read() (Record, error) {
	opb, err := b.r.ReadByte()
	if err != nil {
		return Record{}, err
	}
	op := Op(opb)
	if op != Read && op != Write {
		return Record{}, fmt.Errorf("trace: corrupt stream: opcode 0x%02x", opb)
	}
	var addr uint64
	var shift uint
	for {
		c, err := b.r.ReadByte()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return Record{}, io.ErrUnexpectedEOF
			}
			return Record{}, err
		}
		addr |= uint64(c&0x7F) << shift
		if c < 0x80 {
			break
		}
		shift += 7
		if shift > 63 {
			return Record{}, errors.New("trace: corrupt stream: varint overflow")
		}
	}
	return Record{Op: op, Addr: addr}, nil
}
