package core

import (
	"math"
	"testing"
	"testing/quick"

	"twl/internal/pcm"
	"twl/internal/pv"
	"twl/internal/rng"
)

// newDevice builds a test device with a Gaussian endurance map.
func newDevice(t testing.TB, pages int, meanEndurance float64, seed uint64) *pcm.Device {
	t.Helper()
	geom := pcm.Geometry{Pages: pages, PageSize: 4096, LineSize: 128, Ranks: 4, Banks: 32}
	end, err := pv.Generate(pv.Config{
		Pages: pages, Mean: meanEndurance, Sigma: 0.11 * meanEndurance,
		Model: pv.Gaussian, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	dev, err := pcm.NewDevice(geom, pcm.DefaultTiming(), end)
	if err != nil {
		t.Fatal(err)
	}
	return dev
}

// newFixedDevice builds a device with an explicit endurance map.
func newFixedDevice(t testing.TB, endurance []uint64) *pcm.Device {
	t.Helper()
	geom := pcm.Geometry{Pages: len(endurance), PageSize: 4096, LineSize: 128, Ranks: 1, Banks: 1}
	dev, err := pcm.NewDevice(geom, pcm.DefaultTiming(), endurance)
	if err != nil {
		t.Fatal(err)
	}
	return dev
}

func TestNewValidation(t *testing.T) {
	dev := newDevice(t, 16, 1e6, 1)
	cases := []Config{
		{Pairing: StrongWeak, TossUpInterval: 0, Seed: 1},
		{Pairing: StrongWeak, TossUpInterval: 200, Seed: 1},
		{Pairing: StrongWeak, TossUpInterval: 1, InterPairSwapInterval: -1, Seed: 1},
		{Pairing: Pairing(99), TossUpInterval: 1, Seed: 1},
	}
	for i, cfg := range cases {
		if _, err := New(dev, cfg); err == nil {
			t.Errorf("case %d: config %+v accepted", i, cfg)
		}
	}
	// Odd page counts can't pair.
	odd := newFixedDevice(t, []uint64{10, 10, 10})
	if _, err := New(odd, DefaultConfig(1)); err == nil {
		t.Error("odd page count accepted")
	}
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := DefaultConfig(1)
	if cfg.TossUpInterval != 32 {
		t.Errorf("TossUpInterval = %d, want 32 (Section 5.2)", cfg.TossUpInterval)
	}
	if cfg.InterPairSwapInterval != 128 {
		t.Errorf("InterPairSwapInterval = %d, want 128 (Table 1)", cfg.InterPairSwapInterval)
	}
	if cfg.Pairing != StrongWeak {
		t.Errorf("Pairing = %v, want StrongWeak", cfg.Pairing)
	}
	if !cfg.UseFeistel {
		t.Error("UseFeistel = false, want true (hardware-faithful RNG)")
	}
}

func TestNameReflectsPairing(t *testing.T) {
	dev := newDevice(t, 64, 1e6, 1)
	for _, tc := range []struct {
		p    Pairing
		want string
	}{{StrongWeak, "TWL_swp"}, {Adjacent, "TWL_ap"}, {Random, "TWL_rand"}} {
		cfg := DefaultConfig(1)
		cfg.Pairing = tc.p
		e, err := New(newDevice(t, 64, 1e6, 1), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if e.Name() != tc.want {
			t.Errorf("Name() = %q, want %q", e.Name(), tc.want)
		}
	}
	_ = dev
}

func TestStrongWeakPairingBindsExtremes(t *testing.T) {
	// Endurances 10,20,...,80: SWP must pair weakest(10)↔strongest(80), etc.
	end := []uint64{10, 80, 20, 70, 30, 60, 40, 50}
	dev := newFixedDevice(t, end)
	cfg := DefaultConfig(1)
	e, err := New(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// page0 (10) pairs with page1 (80); page2 (20) with page3 (70); etc.
	wantPartner := map[int]int{0: 1, 2: 3, 4: 5, 6: 7}
	for a, b := range wantPartner {
		if got := e.swpt.Partner(a); got != b {
			t.Errorf("partner(%d) = %d, want %d", a, got, b)
		}
	}
}

func TestAdjacentPairing(t *testing.T) {
	dev := newDevice(t, 8, 1e6, 2)
	cfg := DefaultConfig(1)
	cfg.Pairing = Adjacent
	e, err := New(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 8; p += 2 {
		if e.swpt.Partner(p) != p+1 || e.swpt.Partner(p+1) != p {
			t.Fatalf("adjacent pairing broken at %d", p)
		}
	}
}

func TestRandomPairingIsValidMatching(t *testing.T) {
	dev := newDevice(t, 128, 1e6, 3)
	cfg := DefaultConfig(7)
	cfg.Pairing = Random
	e, err := New(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.swpt.Check(); err != nil {
		t.Fatal(err)
	}
	// Random pairing should differ from adjacent for a 128-page array.
	adjacent := 0
	for p := 0; p < 128; p += 2 {
		if e.swpt.Partner(p) == p+1 {
			adjacent++
		}
	}
	if adjacent == 64 {
		t.Fatal("random pairing produced the adjacent matching")
	}
}

// TestTossUpProbability verifies the core statistical property of Figure 4:
// within a pair with endurances EA and EB, the fraction of writes landing on
// page A converges to EA/(EA+EB).
func TestTossUpProbability(t *testing.T) {
	// Two pages with a 3:1 endurance ratio, toss-up every write, no
	// inter-pair swaps.
	end := []uint64{3 << 40, 1 << 40}
	dev := newFixedDevice(t, end)
	cfg := Config{
		Pairing:               Adjacent,
		TossUpInterval:        1,
		InterPairSwapInterval: 0,
		Seed:                  11,
		UseFeistel:            true,
	}
	e, err := New(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	const n = 200000
	for i := 0; i < n; i++ {
		e.Write(0, uint64(i))
	}
	// Page 0 has 3/4 of total endurance, so demand writes land on it with
	// probability 3/4. Migration writes accompany swaps and split evenly
	// between the two pages at steady state (a swap's migration write goes
	// to the page the data is leaving, which is page 0 w.p.
	// P(on 0)·P(choose 1) = P(on 1)·P(choose 0)); subtract swaps/2 from
	// each page to recover the demand placement.
	demand0 := float64(dev.Wear(0)) - float64(e.Stats().Swaps)/2
	share := demand0 / float64(n)
	if math.Abs(share-0.75) > 0.01 {
		t.Fatalf("strong page demand-write share = %v, want ~0.75", share)
	}
}

// TestSwapProbabilityModel verifies the Section 4.2 model: with EA ≈ EB and
// toss-up every write, the swap probability approaches 1/2 (Case 1).
func TestSwapProbabilityModel(t *testing.T) {
	end := []uint64{1 << 40, 1 << 40}
	dev := newFixedDevice(t, end)
	cfg := Config{Pairing: Adjacent, TossUpInterval: 1, Seed: 5, UseFeistel: true}
	e, err := New(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	const n = 100000
	for i := 0; i < n; i++ {
		e.Write(0, uint64(i)) // always address page 0's logical slot
	}
	ratio := e.Stats().SwapWriteRatio()
	if math.Abs(ratio-0.5) > 0.02 {
		t.Fatalf("swap ratio with equal endurance = %v, want ~0.5 (Case 1)", ratio)
	}
}

// TestSwapProbabilityCase2: EA >> EB and writes addressed to the strong
// page's logical owner produce almost no swaps once the data settles
// (Case 2 of the model).
func TestSwapProbabilityCase2(t *testing.T) {
	end := []uint64{1000 << 30, 1 << 30}
	dev := newFixedDevice(t, end)
	cfg := Config{Pairing: Adjacent, TossUpInterval: 1, Seed: 5, UseFeistel: true}
	e, err := New(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	const n = 100000
	for i := 0; i < n; i++ {
		e.Write(0, uint64(i))
	}
	ratio := e.Stats().SwapWriteRatio()
	if ratio > 0.01 {
		t.Fatalf("swap ratio with 1000:1 endurance = %v, want ~0 (Case 2)", ratio)
	}
}

// TestIntervalReducesSwaps: the swap/write ratio must drop roughly in
// proportion to the toss-up interval (Figure 7a).
func TestIntervalReducesSwaps(t *testing.T) {
	ratioAt := func(interval int) float64 {
		dev := newDevice(t, 256, 1e18, 9)
		cfg := Config{Pairing: StrongWeak, TossUpInterval: interval, Seed: 13, UseFeistel: true}
		e, err := New(dev, cfg)
		if err != nil {
			t.Fatal(err)
		}
		src := rng.NewXorshift(99)
		for i := 0; i < 200000; i++ {
			e.Write(src.Intn(256), uint64(i))
		}
		return e.Stats().SwapWriteRatio()
	}
	r1 := ratioAt(1)
	r8 := ratioAt(8)
	r32 := ratioAt(32)
	if !(r1 > r8 && r8 > r32) {
		t.Fatalf("swap ratio not decreasing in interval: %v, %v, %v", r1, r8, r32)
	}
	// Proportional drop: r8 should be close to r1/8.
	if r8 < r1/16 || r8 > r1/4 {
		t.Fatalf("r8 = %v not ~r1/8 (r1 = %v)", r8, r1)
	}
}

// TestStrongWeakReducesSwapsVsAdjacent: SWP pairs extreme endurances, so
// under *consistent* traffic (p → 1, Cases 2/3 of Section 4.2) its swap
// ratio is lower than adjacent pairing's: once data settles on the strong
// page, P(swap) = E_weak/(E_A+E_B), which SWP drives well below 1/2 while
// near-equal adjacent pairs stay at ~1/2. (Under uniform random traffic,
// p = 1/2 and Case 4 applies: both policies swap at ~1/2 — the model says
// pairing cannot help there, which is why interval-triggering exists.)
func TestStrongWeakReducesSwapsVsAdjacent(t *testing.T) {
	const pages = 512
	run := func(p Pairing) float64 {
		// Wide endurance spread sharpens the separation the model predicts.
		end, err := pv.Generate(pv.Config{
			Pages: pages, Mean: 1e18, Sigma: 0.25e18, Model: pv.Gaussian, Seed: 21,
		})
		if err != nil {
			t.Fatal(err)
		}
		dev := newFixedDevice(t, end)
		cfg := Config{Pairing: p, TossUpInterval: 1, Seed: 17, UseFeistel: true}
		e, err := New(dev, cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Consistent traffic: hammer a handful of fixed addresses in long
		// bursts so p → 1 within each pair.
		for burst := 0; burst < 64; burst++ {
			la := (burst * 17) % pages
			for i := 0; i < 4000; i++ {
				e.Write(la, uint64(i))
			}
		}
		return e.Stats().SwapWriteRatio()
	}
	swp := run(StrongWeak)
	ap := run(Adjacent)
	if swp >= ap {
		t.Fatalf("SWP swap ratio %v not below adjacent %v under consistent traffic", swp, ap)
	}
}

// TestDataIntegrityUnderSwaps: reading a logical page always returns the
// last value written to it, across toss-up swaps and inter-pair swaps.
func TestDataIntegrityUnderSwaps(t *testing.T) {
	dev := newDevice(t, 64, 1e18, 31)
	cfg := Config{
		Pairing: StrongWeak, TossUpInterval: 2, InterPairSwapInterval: 16,
		Seed: 41, UseFeistel: true,
	}
	e, err := New(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	shadow := make(map[int]uint64)
	src := rng.NewXorshift(8)
	for i := 0; i < 100000; i++ {
		la := src.Intn(64)
		if src.Intn(4) == 0 {
			got, _ := e.Read(la)
			want, ok := shadow[la]
			if ok && got != want {
				t.Fatalf("iteration %d: Read(%d) = %d, want %d", i, la, got, want)
			}
		} else {
			tag := src.Uint64()
			e.Write(la, tag)
			shadow[la] = tag
		}
	}
	// Final sweep: every written page must read back its last value.
	for la, want := range shadow {
		if got, _ := e.Read(la); got != want {
			t.Fatalf("final Read(%d) = %d, want %d", la, got, want)
		}
	}
}

// TestInvariantsProperty: arbitrary write/read interleavings preserve the
// engine invariants (RT bijection, SWPT involution, wear conservation).
func TestInvariantsProperty(t *testing.T) {
	check := func(seed uint64, ops uint16) bool {
		dev := newDevice(t, 32, 1e18, seed)
		cfg := Config{
			Pairing: StrongWeak, TossUpInterval: 4, InterPairSwapInterval: 8,
			Seed: seed, UseFeistel: seed%2 == 0,
		}
		e, err := New(dev, cfg)
		if err != nil {
			return false
		}
		src := rng.NewXorshift(seed + 1)
		for i := 0; i < int(ops%4096); i++ {
			if src.Intn(3) == 0 {
				e.Read(src.Intn(32))
			} else {
				e.Write(src.Intn(32), src.Uint64())
			}
		}
		return e.CheckInvariants() == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestSwapCostIsTwoWrites: a toss-up swap costs exactly 2 device writes
// (the Section 4.1 optimization reducing swap-then-write from 3 to 2).
func TestSwapCostIsTwoWrites(t *testing.T) {
	end := []uint64{1 << 40, 1 << 40}
	dev := newFixedDevice(t, end)
	cfg := Config{Pairing: Adjacent, TossUpInterval: 1, Seed: 3, UseFeistel: true}
	e, err := New(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sawSwap := false
	for i := 0; i < 1000; i++ {
		cost := e.Write(0, uint64(i))
		switch cost.DeviceWrites {
		case 1:
			if cost.Blocked {
				t.Fatal("non-swap write reported blocked")
			}
		case 2:
			sawSwap = true
			if !cost.Blocked {
				t.Fatal("swap write not reported blocked")
			}
		default:
			t.Fatalf("write cost %d device writes, want 1 or 2", cost.DeviceWrites)
		}
	}
	if !sawSwap {
		t.Fatal("no swap observed in 1000 equal-endurance toss-ups")
	}
}

// TestInterPairSwapTriggersAtInterval: with toss-ups effectively disabled,
// the inter-pair swap fires exactly every InterPairSwapInterval writes to a
// page.
func TestInterPairSwapTriggersAtInterval(t *testing.T) {
	dev := newDevice(t, 64, 1e18, 7)
	cfg := Config{
		// Interval 128 with only 100 writes per burst: toss-up never fires
		// within the test run for the single pair counter... use a big
		// interval and verify via Swaps counter growth.
		Pairing: StrongWeak, TossUpInterval: 128, InterPairSwapInterval: 16,
		Seed: 2, UseFeistel: true,
	}
	e, err := New(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 16th write to la=5 must be an inter-pair swap (2 device writes).
	for i := 1; i <= 15; i++ {
		if cost := e.Write(5, 1); cost.DeviceWrites != 1 {
			t.Fatalf("write %d: %d device writes before interval", i, cost.DeviceWrites)
		}
	}
	cost := e.Write(5, 1)
	if cost.DeviceWrites != 2 || !cost.Blocked {
		t.Fatalf("16th write: cost %+v, want blocked 2-write inter-pair swap", cost)
	}
	if e.Stats().Swaps != 1 {
		t.Fatalf("Swaps = %d, want 1", e.Stats().Swaps)
	}
}

func TestInterPairSwapDisabled(t *testing.T) {
	dev := newDevice(t, 64, 1e18, 7)
	cfg := Config{Pairing: StrongWeak, TossUpInterval: 128, InterPairSwapInterval: 0, Seed: 2, UseFeistel: true}
	e, err := New(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		e.Write(5, 1)
	}
	// Only toss-up swaps can occur (every 128 writes); inter-pair never.
	if e.Stats().TossUps != 1000/128 {
		t.Fatalf("TossUps = %d, want %d", e.Stats().TossUps, 1000/128)
	}
}

// TestWeakPageProtected: with SWP and toss-ups, a weak page bonded to a
// strong page accumulates proportionally less wear even under writes aimed
// straight at it — the property that defeats the inconsistent attack.
func TestWeakPageProtected(t *testing.T) {
	// Page 0 weak (E=1000), page 1 strong (E=9000).
	end := []uint64{1000, 9000}
	dev := newFixedDevice(t, end)
	cfg := Config{Pairing: Adjacent, TossUpInterval: 1, Seed: 19, UseFeistel: true}
	e, err := New(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Hammer logical page 0 (initially the weak physical page).
	for i := 0; i < 5000; i++ {
		e.Write(0, uint64(i))
		if _, failed := dev.Failed(); failed {
			break
		}
	}
	// The strong page must have absorbed roughly 90% of the demand writes.
	halfSwaps := float64(e.Stats().Swaps) / 2
	demand1 := float64(dev.Wear(1)) - halfSwaps
	demand0 := float64(dev.Wear(0)) - halfSwaps
	share := demand1 / (demand0 + demand1)
	if share < 0.85 {
		t.Fatalf("strong page absorbed only %v of demand writes, want ~0.9", share)
	}
	// And the device must not have failed: 5000 demand writes + swaps fit
	// within the pair's combined endurance when distributed 9:1.
	if _, failed := dev.Failed(); failed {
		t.Fatal("pair wore out despite endurance-proportional reallocation")
	}
}

func TestReadCost(t *testing.T) {
	dev := newDevice(t, 64, 1e18, 3)
	e, err := New(dev, DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	e.Write(7, 42)
	v, cost := e.Read(7)
	if v != 42 {
		t.Fatalf("Read = %d, want 42", v)
	}
	if cost.DeviceReads != 1 || cost.DeviceWrites != 0 || cost.Blocked {
		t.Fatalf("read cost %+v", cost)
	}
	if e.Stats().DemandReads != 1 {
		t.Fatalf("DemandReads = %d", e.Stats().DemandReads)
	}
}

func TestPartnerOfTracksRemap(t *testing.T) {
	dev := newDevice(t, 16, 1e18, 5)
	cfg := Config{Pairing: Adjacent, TossUpInterval: 1, Seed: 1, UseFeistel: true}
	e, err := New(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Initially identity mapping with adjacent pairing: partner of la=0 is 1.
	if got := e.PartnerOf(0); got != 1 {
		t.Fatalf("PartnerOf(0) = %d, want 1", got)
	}
	// After any number of swaps, PartnerOf must agree with the engine's own
	// tables: the physical partner of la's page, seen through RT.
	for i := 0; i < 1000; i++ {
		e.Write(i%16, uint64(i))
	}
	for la := 0; la < 16; la++ {
		pa := e.rt.Phys(la)
		want := e.rt.Log(e.swpt.Partner(pa))
		if got := e.PartnerOf(la); got != want {
			t.Fatalf("PartnerOf(%d) = %d, want %d", la, got, want)
		}
	}
}

// TestXorshiftRNGVariant: the engine also runs on the xorshift source
// (ablation) with the same statistical behavior.
func TestXorshiftRNGVariant(t *testing.T) {
	end := []uint64{3 << 40, 1 << 40}
	dev := newFixedDevice(t, end)
	cfg := Config{Pairing: Adjacent, TossUpInterval: 1, Seed: 11, UseFeistel: false}
	e, err := New(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	const n = 100000
	for i := 0; i < n; i++ {
		e.Write(0, uint64(i))
	}
	demand0 := float64(dev.Wear(0)) - float64(e.Stats().Swaps)/2
	share := demand0 / float64(n)
	if math.Abs(share-0.75) > 0.015 {
		t.Fatalf("xorshift variant: strong share %v, want ~0.75", share)
	}
}

func TestPairingString(t *testing.T) {
	if StrongWeak.String() != "swp" || Adjacent.String() != "ap" || Random.String() != "rand" {
		t.Fatal("Pairing.String mismatch")
	}
	if Pairing(9).String() == "" {
		t.Fatal("unknown pairing string empty")
	}
}

func BenchmarkTWLWrite(b *testing.B) {
	dev := newDevice(b, 1<<12, 1e18, 1)
	e, err := New(dev, DefaultConfig(1))
	if err != nil {
		b.Fatal(err)
	}
	src := rng.NewXorshift(2)
	addrs := make([]int, 1<<16)
	for i := range addrs {
		addrs[i] = src.Intn(1 << 12)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Write(addrs[i&(1<<16-1)], uint64(i))
	}
}

// TestCheckInvariantsCatchesCorruption: each deepened invariant trips on the
// specific corruption it guards against.
func TestCheckInvariantsCatchesCorruption(t *testing.T) {
	fresh := func() *Engine {
		e, err := New(newDevice(t, 32, 1e6, 9), DefaultConfig(9))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2000; i++ {
			e.Write(i%e.dev.Pages(), uint64(i))
		}
		if err := e.CheckInvariants(); err != nil {
			t.Fatalf("healthy engine failed: %v", err)
		}
		return e
	}
	cases := []struct {
		name    string
		corrupt func(e *Engine)
	}{
		{"zero endurance entry", func(e *Engine) { e.et[3] = 0 }},
		{"ET size mismatch", func(e *Engine) { e.et = e.et[:len(e.et)-1] }},
		{"wrong pair representative", func(e *Engine) { e.pairIdx[0] = e.dev.Pages() - 1 }},
		{"WCT on non-representative", func(e *Engine) {
			for pa := range e.pairIdx {
				if e.pairIdx[pa] != pa {
					e.wct.Inc(pa)
					return
				}
			}
		}},
		{"WCT past interval", func(e *Engine) {
			rep := e.pairIdx[0]
			e.wct.Clear(rep)
			for i := 0; i < e.cfg.TossUpInterval; i++ {
				e.wct.Inc(rep)
			}
		}},
		{"ips counter past interval", func(e *Engine) { e.ipsCount[1] = uint32(e.cfg.InterPairSwapInterval) }},
		{"stats desynced from device", func(e *Engine) { e.stats.SwapWrites++ }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := fresh()
			tc.corrupt(e)
			if err := e.CheckInvariants(); err == nil {
				t.Fatal("corruption not detected")
			}
		})
	}
}
