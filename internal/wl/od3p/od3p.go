// Package od3p implements On-Demand Page Paired PCM (Asadinia et al.,
// DAC 2014 — the paper's reference [1]), the related-work scheme that
// handles process-variation failures *reactively*: instead of preventing
// weak pages from wearing out, it lets pages fail and then pairs each
// failed page on demand with a healthy partner, so the memory degrades
// gracefully instead of dying at the first failure.
//
// This complements the wear-leveling schemes: degradation experiments use
// it to study the post-first-failure regime, whereas the paper's lifetime
// metric (and Figures 6–8) stops at the first failure.
//
// Modeling note: in real OD3P a failed page still stores data in its
// surviving lines while its pair partner absorbs the program stress; at
// page granularity this is modeled as (a) all write wear for a failed
// page's owner landing on the partner, and (b) the owner's payload living
// in the pairing store (the joint capacity of the pair). The partner keeps
// serving its own owner unaffected.
package od3p

import (
	"fmt"

	"twl/internal/pcm"
	"twl/internal/tables"
	"twl/internal/wl"
)

// Config parameterizes OD3P.
type Config struct {
	// MaxHosted bounds how many failed owners one healthy page may host.
	MaxHosted int
}

// DefaultConfig returns the default OD3P configuration.
func DefaultConfig() Config {
	return Config{MaxHosted: 1}
}

// Scheme is an OD3P memory manager.
type Scheme struct {
	dev   *pcm.Device // snap: device state is checkpointed by the sim layer
	cfg   Config      // snap: construction input
	rt    *tables.Remap
	stats wl.Stats

	// buddy[pa] is the physical partner absorbing pa's write stress after
	// pa failed (-1 while healthy). If the partner fails too, a fresh one
	// is assigned directly.
	buddy []int
	// hosted[pa] counts how many failed owners pa currently hosts.
	hosted []int
	// store holds the payloads of failed pages' owners (the pair's joint
	// capacity), keyed by the failed physical page.
	store map[int]uint64
	// byStrength: pages by descending endurance, the spare-selection order.
	byStrength []int // snap: derived from the endurance map at New
	pairings   uint64
	// exhausted is set when a pairing was needed but no spare existed.
	exhausted bool
}

// New builds an OD3P scheme over dev.
func New(dev *pcm.Device, cfg Config) (*Scheme, error) {
	if cfg.MaxHosted <= 0 {
		return nil, fmt.Errorf("od3p: MaxHosted must be positive: %w", wl.ErrBadConfig)
	}
	asc := wl.SortByEndurance(dev.EnduranceMap())
	desc := make([]int, len(asc))
	for i, p := range asc {
		desc[len(asc)-1-i] = p
	}
	b := make([]int, dev.Pages())
	for i := range b {
		b[i] = -1
	}
	return &Scheme{
		dev:        dev,
		cfg:        cfg,
		rt:         tables.NewRemap(dev.Pages()),
		buddy:      b,
		hosted:     make([]int, dev.Pages()),
		store:      map[int]uint64{},
		byStrength: desc,
	}, nil
}

var _ wl.Scheme = (*Scheme)(nil)
var _ wl.Checker = (*Scheme)(nil)
var _ wl.RunWriter = (*Scheme)(nil)
var _ wl.SweepWriter = (*Scheme)(nil)

// Name implements wl.Scheme.
func (s *Scheme) Name() string { return "OD3P" }

// dead reports whether a physical page has exhausted its endurance.
func (s *Scheme) dead(pp int) bool { return s.dev.Remaining(pp) == 0 }

// Write implements wl.Scheme.
func (s *Scheme) Write(la int, tag uint64) wl.Cost {
	cost := wl.Cost{ExtraCycles: wl.ControlCycles + wl.TableCycles}
	pa := s.rt.Phys(la)
	s.stats.DemandWrites++

	if !s.dead(pa) {
		s.dev.Write(pa, tag)
		cost.DeviceWrites++
		return cost
	}

	// pa has failed: its owner is served by a partner. (Re)pair if needed.
	b := s.buddy[pa]
	if b < 0 || s.dead(b) {
		nb, ok := s.pickSpare()
		if !ok {
			// No healthy spare left: capacity is exhausted; the write is
			// absorbed by the dead page (data loss in a real system).
			s.exhausted = true
			s.dev.Write(pa, tag)
			cost.DeviceWrites++
			return cost
		}
		if b >= 0 {
			s.hosted[b]--
		}
		// The pairing migration programs the partner once (laying out the
		// pair's joint data).
		s.dev.Write(nb, s.dev.Peek(nb))
		cost.DeviceWrites++
		cost.DeviceReads++
		cost.Blocked = true
		s.stats.Swaps++
		s.stats.SwapWrites++
		s.buddy[pa] = nb
		s.hosted[nb]++
		s.pairings++
		b = nb
	}
	// The owner's payload lives in the pair store; the program stress lands
	// on the partner (rewriting its own payload keeps the partner's owner
	// intact in the page-granularity model).
	s.store[pa] = tag
	s.dev.Write(b, s.dev.Peek(b))
	cost.DeviceWrites++
	return cost
}

// eventFreeCost is the uniform per-write cost of every non-pairing path:
// healthy writes, hosted writes (the partner rewrites its own payload) and
// post-exhaustion writes all touch the device once under the same table and
// control latency, unblocked. The only event is the pairing itself.
func eventFreeCost() wl.Cost {
	return wl.Cost{DeviceWrites: 1, ExtraCycles: wl.ControlCycles + wl.TableCycles}
}

// WriteRun implements wl.RunWriter. OD3P never remaps (the table stays the
// identity; pairing redirects program stress, not addresses) and draws no
// randomness, so a same-address run has exactly one event to stop before:
// the blocked pairing migration, which fires on the first write to a dead
// unpaired page while a spare remains. Every other regime collapses into
// one bulk device operation — WriteN on a healthy page (clamping at its
// endurance crossing), RewriteN on the partner of a hosted page (clamping
// at the partner's), or WriteN on the dead page itself once capacity is
// exhausted.
//
//twl:hotpath
func (s *Scheme) WriteRun(la int, tag uint64, n int) (wl.Cost, int) {
	if n <= 0 {
		return wl.Cost{}, 0
	}
	pa := s.rt.Phys(la)
	if !s.dead(pa) {
		applied := s.dev.WriteN(pa, tag, n)
		s.stats.DemandWrites += uint64(applied)
		return eventFreeCost(), applied
	}
	b := s.buddy[pa]
	if b < 0 || s.dead(b) {
		if _, ok := s.pickSpare(); ok {
			// The next write forms a pairing — a blocked event served
			// through Write.
			return wl.Cost{}, 0
		}
		// Capacity exhausted: writes are absorbed by the dead page, exactly
		// as Write would absorb each of them.
		s.exhausted = true
		applied := s.dev.WriteN(pa, tag, n)
		s.stats.DemandWrites += uint64(applied)
		return eventFreeCost(), applied
	}
	// Hosted: the owner's payload advances in the pair store while the
	// partner absorbs the program stress without changing its own data.
	applied := s.dev.RewriteN(b, n)
	s.store[pa] = tag + uint64(applied) - 1
	s.stats.DemandWrites += uint64(applied)
	return eventFreeCost(), applied
}

// WriteSweep implements wl.SweepWriter: with the identity mapping a
// consecutive-address sweep is a consecutive physical range. The bulk path
// covers the no-failure regime — while every page has wear headroom no
// write can reach the dead-page paths, and MinRemainingAtLeast keeps that
// check O(1) amortized — with WriteRange clamping at the sweep's first
// endurance crossing. Once any page is dead the per-write path takes over
// (absorbed == 0), since a sweep would interleave healthy and dead-page
// writes of differing behavior.
//
//twl:hotpath
func (s *Scheme) WriteSweep(la int, tag uint64, n int) (wl.Cost, int) {
	if n <= 0 || !s.dev.MinRemainingAtLeast(1) {
		return wl.Cost{}, 0
	}
	applied := s.dev.WriteRange(s.rt.Phys(la), tag, n)
	s.stats.DemandWrites += uint64(applied)
	return eventFreeCost(), applied
}

// pickSpare returns the healthiest page not yet at its hosting limit.
func (s *Scheme) pickSpare() (int, bool) {
	for _, cand := range s.byStrength {
		if s.dead(cand) || s.hosted[cand] >= s.cfg.MaxHosted {
			continue
		}
		return cand, true
	}
	return 0, false
}

// Read implements wl.Scheme.
func (s *Scheme) Read(la int) (uint64, wl.Cost) {
	s.stats.DemandReads++
	pa := s.rt.Phys(la)
	cost := wl.Cost{DeviceReads: 1, ExtraCycles: wl.TableCycles}
	if s.dead(pa) {
		if tag, ok := s.store[pa]; ok {
			// Charge the device read against the partner serving the pair.
			if b := s.buddy[pa]; b >= 0 {
				s.dev.Read(b)
			}
			return tag, cost
		}
	}
	return s.dev.Read(pa), cost
}

// Stats implements wl.Scheme.
func (s *Scheme) Stats() wl.Stats { return s.stats }

// Device implements wl.Scheme.
func (s *Scheme) Device() *pcm.Device { return s.dev }

// Pairings returns how many on-demand pairings have been formed.
func (s *Scheme) Pairings() uint64 { return s.pairings }

// Exhausted reports whether a pairing was ever needed with no spare left.
func (s *Scheme) Exhausted() bool { return s.exhausted }

// CapacityLost returns the fraction of physical pages that have failed.
func (s *Scheme) CapacityLost() float64 {
	lost := 0
	for pa := 0; pa < s.dev.Pages(); pa++ {
		if s.dead(pa) {
			lost++
		}
	}
	return float64(lost) / float64(s.dev.Pages())
}

// CheckInvariants implements wl.Checker.
func (s *Scheme) CheckInvariants() error {
	if err := s.rt.CheckBijection(); err != nil {
		return err
	}
	hosted := make([]int, s.dev.Pages())
	for pa, b := range s.buddy {
		if b < 0 {
			continue
		}
		if b == pa {
			return fmt.Errorf("od3p: page %d is its own buddy", pa)
		}
		hosted[b]++
	}
	for pa, n := range hosted {
		if n != s.hosted[pa] {
			return fmt.Errorf("od3p: hosted count mismatch at %d: %d vs %d", pa, n, s.hosted[pa])
		}
		if n > s.cfg.MaxHosted {
			return fmt.Errorf("od3p: page %d hosts %d owners (limit %d)", pa, n, s.cfg.MaxHosted)
		}
	}
	return nil
}

func init() {
	wl.Register(wl.Registration{
		Name:  "OD3P",
		Order: 90,
		Doc:   "on-demand page pairing with graceful degradation (reference [1])",
		New: func(dev *pcm.Device, _ uint64) (wl.Scheme, error) {
			return New(dev, DefaultConfig())
		},
	})
}
