package sim

import (
	"errors"
	"fmt"

	"twl/internal/attack"
	"twl/internal/obs"
	"twl/internal/trace"
	"twl/internal/wl"
)

// PerfConfig controls a performance (Figure 9) run.
type PerfConfig struct {
	// Requests is how many memory requests to simulate per scheme.
	Requests int
	// MaxBandwidthMBps anchors the memory-boundedness model (the most
	// bandwidth-hungry benchmark in the suite; vips at 3309 MBps).
	MaxBandwidthMBps float64
	// Metrics, when non-nil, receives per-request latency histograms and
	// blocked-request counters labeled by scheme and benchmark — the raw
	// distributional material behind the Figure 9 means.
	Metrics *obs.Registry
}

// DefaultPerfConfig returns the configuration used by the Figure 9 bench.
func DefaultPerfConfig() PerfConfig {
	return PerfConfig{Requests: 2_000_000, MaxBandwidthMBps: 3309}
}

// PerfResult reports a scheme's execution time normalized to NOWL.
type PerfResult struct {
	Scheme    string
	Benchmark string
	// MemCycles is the accumulated memory-request latency.
	MemCycles int64
	// BaselineMemCycles is NOWL's latency on the identical request stream.
	BaselineMemCycles int64
	// Normalized is the modeled execution-time ratio vs NOWL (≥ 1).
	Normalized float64
	// Queue is the utilization view: the same request stream replayed
	// against a single-server channel with the benchmark's demand cadence.
	// Swap blocking compounds here in a way bare latency sums do not.
	Queue QueueStats
	// BaselineQueue is NOWL's queue view for comparison.
	BaselineQueue QueueStats
}

// memoryBoundedness models how much of a benchmark's execution time is
// memory time, from its write bandwidth: bandwidth-saturating benchmarks
// (vips) are almost fully memory-bound; trickle writers (streamcluster)
// hide nearly all memory latency behind compute. The affine floor keeps
// every benchmark at least mildly sensitive, matching the non-zero
// overheads Figure 9 shows even for low-bandwidth benchmarks.
func memoryBoundedness(bench trace.Benchmark, maxMBps float64) float64 {
	mu := 0.40 + 0.55*(bench.WriteBandwidthMBps/maxMBps)
	if mu > 1 {
		mu = 1
	}
	return mu
}

// RunPerf measures a scheme's normalized execution time on a benchmark.
// build constructs the scheme under test over a fresh device; buildBaseline
// constructs the NOWL reference over an identical device. Both schemes see
// the identical request sequence (same generator seed).
//
// The model: exec = compute + mem, with compute = mem_nowl × (1−μ)/μ where
// μ is the benchmark's memory-boundedness. Then
//
//	normalized = (compute + mem_scheme) / (compute + mem_nowl)
//	           = 1 + μ × (mem_scheme − mem_nowl)/mem_nowl.
//
// This replaces the paper's gem5+NVMain full-system runs (DESIGN.md,
// substitution 2); the per-request latencies themselves come from the
// Table 1 timing and each scheme's reported Cost.
func RunPerf(bench trace.Benchmark, pages int, seed uint64, cfg PerfConfig,
	build func() (wl.Scheme, error), buildBaseline func() (wl.Scheme, error)) (PerfResult, error) {
	if cfg.Requests <= 0 {
		return PerfResult{}, errors.New("sim: PerfConfig.Requests must be positive")
	}
	if cfg.MaxBandwidthMBps <= 0 {
		return PerfResult{}, errors.New("sim: PerfConfig.MaxBandwidthMBps must be positive")
	}
	mem, services, name, err := measure(bench, pages, seed, cfg.Requests, cfg.Metrics, build)
	if err != nil {
		return PerfResult{}, err
	}
	base, baseServices, _, err := measure(bench, pages, seed, cfg.Requests, cfg.Metrics, buildBaseline)
	if err != nil {
		return PerfResult{}, err
	}
	if base <= 0 {
		return PerfResult{}, errors.New("sim: baseline accumulated no memory cycles")
	}
	mu := memoryBoundedness(bench, cfg.MaxBandwidthMBps)
	normalized := 1 + mu*float64(mem-base)/float64(base)
	if normalized < 1 {
		// A scheme cannot beat the no-op baseline; tiny negative deltas can
		// only come from modeling noise, clamp them.
		normalized = 1
	}
	res := PerfResult{
		Scheme:            name,
		Benchmark:         bench.Name,
		MemCycles:         mem,
		BaselineMemCycles: base,
		Normalized:        normalized,
	}
	// Queue view: requests arrive at the cadence the benchmark's bandwidth
	// implies — one page-sized request every PageSize/BW seconds. The write
	// fraction scales the count of wear-relevant requests to total traffic.
	interarrival := interarrivalCycles(bench)
	if interarrival > 0 {
		if res.Queue, err = QueuedPerf(services, interarrival); err != nil {
			return PerfResult{}, err
		}
		if res.BaselineQueue, err = QueuedPerf(baseServices, interarrival); err != nil {
			return PerfResult{}, err
		}
	}
	return res, nil
}

// interarrivalCycles derives the request cadence from the benchmark's write
// bandwidth: writes arrive at BW/PageSize per second, and total requests at
// writes/WriteFraction; at 2 GHz that spacing in cycles is
// clock × PageSize × WriteFraction / BW.
func interarrivalCycles(bench trace.Benchmark) int64 {
	const clockHz = 2e9
	const pageSize = 4096
	bw := bench.WriteBandwidthMBps * 1e6
	if bw <= 0 || bench.WriteFraction <= 0 {
		return 0
	}
	return int64(clockHz * pageSize * bench.WriteFraction / bw)
}

// measure replays the benchmark stream through a freshly built scheme and
// returns accumulated memory cycles plus the per-request service times.
// When reg is non-nil the scheme is wrapped with wl.Instrument, so the
// per-request costs land in scheme-labeled histograms, and a
// benchmark-labeled request counter tracks coverage.
func measure(bench trace.Benchmark, pages int, seed uint64, requests int,
	reg *obs.Registry, build func() (wl.Scheme, error)) (int64, []int64, string, error) {
	s, err := build()
	if err != nil {
		return 0, nil, "", err
	}
	if s.Device().Pages() < pages {
		return 0, nil, "", fmt.Errorf("sim: scheme device has %d pages, need >= %d", s.Device().Pages(), pages)
	}
	name := s.Name()
	var perfRequests *obs.Counter
	if reg != nil {
		s = wl.Instrument(s, reg)
		reg.Help("twl_perf_requests_total", "performance-run requests, by scheme and benchmark")
		perfRequests = reg.Counter("twl_perf_requests_total",
			obs.L("scheme", name), obs.L("benchmark", bench.Name))
	}
	g, err := trace.NewSynthetic(bench, pages, seed)
	if err != nil {
		return 0, nil, "", err
	}
	timing := s.Device().Timing()
	var cycles int64
	services := make([]int64, 0, requests)
	src := FromWorkload(g)
	var fb attack.Feedback
	for i := 0; i < requests; i++ {
		addr, write := src.Next(fb)
		var cost wl.Cost
		if write {
			cost = s.Write(addr, uint64(i))
		} else {
			_, cost = s.Read(addr)
		}
		c := cost.Cycles(timing)
		cycles += c
		services = append(services, c)
	}
	if perfRequests != nil {
		perfRequests.Add(uint64(requests))
	}
	return cycles, services, name, nil
}
