// Package serve is the twlsimd simulation service: an HTTP front end that
// accepts experiment-grid jobs (scheme × workload × seed), expands them
// into independent cells, and executes the cells on a preemptible worker
// pool. Three properties define it:
//
//   - Content-addressed dedupe: every simulation here is deterministic, so
//     a cell's result is a pure function of its construction inputs. Cells
//     are keyed by a versioned hash of those inputs (see cellMaterial) and
//     results live in an on-disk cache (internal/cache) — a resubmitted
//     cell is served from disk with zero simulation writes. Same-key cells
//     also never simulate concurrently: checkpoint paths are derived from
//     the key, so the dispatcher holds a cell back while its key is in
//     flight (Server.inflight) and the duplicate settles from the first
//     run's cache entry instead of racing it. Within one job duplicates
//     cannot exist at all — spec axes dedupe on submit.
//   - Preemption and resume: long cells checkpoint through internal/snap
//     at the simulator's checkpoint cadence. Shutting the server down (or
//     killing the daemon outright) loses at most one checkpoint interval;
//     on restart the job files reload, incomplete cells re-enqueue, and
//     each resumes from its checkpoint to a bit-identical result.
//   - One result path: cells run through the same RunAttackCell /
//     RunBenchCell / RunShardedLifetime entry points as the one-shot grid
//     runners (RunFig6, RunFig8), so a grid computed through the service
//     is the grid computed locally — the differential tests pin this.
//
// Job state and the cell queue are guarded by Server.mu (machine-checked
// via //twl:guardedby); the drain flag is an atomic so simulation hot loops
// poll it without taking the service lock.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"

	"twl"
	"twl/internal/cache"
	"twl/internal/obs"
	"twl/internal/snap"
)

// Config parameterizes a Server.
type Config struct {
	// DataDir is the service state root: jobs/ (job state files), cache/
	// (content-addressed results), ckpt/ (per-cell checkpoints). Required.
	DataDir string
	// Workers is the simulation worker count (0: GOMAXPROCS).
	Workers int
	// CheckpointEvery is the per-cell checkpoint cadence in demand writes
	// (0: the simulator default). It is also the preemption latency: a
	// draining worker stops at the next checkpoint boundary.
	CheckpointEvery uint64
	// TraceEvery is the per-job trace cadence passed to the job tracer (0:
	// the obs default).
	TraceEvery uint64
}

// ErrClosed is returned by Submit and Cancel after Close began draining.
var ErrClosed = errors.New("serve: server closed")

// ErrNoJob is returned by lookups for an unknown job id.
var ErrNoJob = errors.New("serve: no such job")

// cellRef addresses one cell on the queue.
type cellRef struct {
	jobID string
	idx   int
}

// Server owns the job table, the cell queue and the worker pool.
type Server struct {
	cfg     Config
	reg     *obs.Registry
	store   *cache.Cache
	jobsDir string
	ckptDir string

	mu    sync.Mutex
	cond  *sync.Cond      // signals queue growth, cell completion, shutdown; pairs with mu
	queue []cellRef       //twl:guardedby mu
	jobs  map[string]*job //twl:guardedby mu
	order []string        //twl:guardedby mu
	// inflight holds the keys of claimed cells. A cell whose key is here
	// stays on the queue — its checkpoint paths (ckpt/<key>* ) have exactly
	// one writer — until the running cell settles and broadcasts.
	inflight map[string]struct{} //twl:guardedby mu
	lastID   int                 //twl:guardedby mu
	closed   bool                //twl:guardedby mu

	draining atomic.Bool //twl:guardedby atomic
	wg       sync.WaitGroup

	jobsTotal    *obs.Counter
	preemptions  *obs.Counter
	cellsRunning *obs.Gauge
	outcomes     map[string]*obs.Counter // immutable after construction
}

// Cell outcome labels of the twl_serve_cells_total counter.
const (
	outcomeSimulated = "simulated"
	outcomeCached    = "cached"
	outcomeFailed    = "failed"
	outcomeCancelled = "cancelled"
)

// New builds a server over cfg.DataDir — creating the layout, sweeping
// checkpoint temp files orphaned by a killed predecessor, reloading
// persisted jobs and re-enqueueing their incomplete cells — and starts the
// worker pool. Callers must Close it to join the workers.
func New(cfg Config) (*Server, error) {
	if cfg.DataDir == "" {
		return nil, fmt.Errorf("serve: Config.DataDir is required")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	jobsDir := filepath.Join(cfg.DataDir, "jobs")
	ckptDir := filepath.Join(cfg.DataDir, "ckpt")
	for _, dir := range []string{jobsDir, ckptDir} {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
	}
	// A killed worker can leave a stale snap temp file next to a cell
	// checkpoint; no writer is live before the pool starts, so sweep now.
	// (Sharded cells keep per-cell subdirectories that the sharded runner
	// sweeps itself on entry.)
	if _, err := snap.SweepOrphans(ckptDir); err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	store, err := cache.New(filepath.Join(cfg.DataDir, "cache"))
	if err != nil {
		return nil, err
	}

	reg := obs.NewRegistry()
	reg.Help("twl_serve_jobs_total", "grid jobs accepted")
	reg.Help("twl_serve_cells_total", "cells finished, by outcome")
	reg.Help("twl_serve_cells_running", "cells currently simulating")
	reg.Help("twl_serve_preemptions_total", "cell runs preempted by drain (resumed later from checkpoint)")
	reg.Help("twl_serve_cache_hits_total", "result-cache hits")
	reg.Help("twl_serve_cache_misses_total", "result-cache misses")
	s := &Server{
		cfg:          cfg,
		reg:          reg,
		store:        store,
		jobsDir:      jobsDir,
		ckptDir:      ckptDir,
		jobs:         map[string]*job{},
		inflight:     map[string]struct{}{},
		jobsTotal:    reg.Counter("twl_serve_jobs_total"),
		preemptions:  reg.Counter("twl_serve_preemptions_total"),
		cellsRunning: reg.Gauge("twl_serve_cells_running"),
		outcomes:     map[string]*obs.Counter{},
	}
	s.cond = sync.NewCond(&s.mu)
	for _, o := range []string{outcomeSimulated, outcomeCached, outcomeFailed, outcomeCancelled} {
		s.outcomes[o] = reg.Counter("twl_serve_cells_total", obs.L("outcome", o))
	}

	jobs, err := loadJobs(jobsDir)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	for _, j := range jobs {
		j.trace = &obs.TraceBuffer{}
		j.tracer = obs.NewTracer(j.trace, cfg.TraceEvery)
		s.jobs[j.id] = j
		s.order = append(s.order, j.id)
		if n, ok := jobSeq(j.id); ok && n > s.lastID {
			s.lastID = n
		}
		if !j.cancelled {
			for i, c := range j.cells {
				if c.Status == cellPending {
					s.queue = append(s.queue, cellRef{jobID: j.id, idx: i})
				}
			}
		}
	}
	s.mu.Unlock()

	for w := 0; w < cfg.Workers; w++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.workerLoop()
		}()
	}
	return s, nil
}

// Metrics exposes the service registry (for /metrics and tests).
func (s *Server) Metrics() *obs.Registry { return s.reg }

// CacheStats exposes the result cache's hit/miss counters.
func (s *Server) CacheStats() cache.Stats { return s.store.Stats() }

// Close drains the service: in-flight cells stop at their next checkpoint
// (writing a final one, so no work is lost), workers join, and the job
// files record every preempted cell as pending for the next daemon.
func (s *Server) Close() error {
	s.draining.Store(true)
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

// Submit validates, registers and enqueues one job, returning its
// deterministic id and cell count.
func (s *Server) Submit(spec JobSpec) (id string, cells int, err error) {
	if err := spec.normalize(); err != nil {
		return "", 0, err
	}
	list := buildCells(spec)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return "", 0, ErrClosed
	}
	s.lastID++
	j := &job{
		id:    jobID(s.lastID, spec),
		spec:  spec,
		cells: list,
		trace: &obs.TraceBuffer{},
	}
	j.tracer = obs.NewTracer(j.trace, s.cfg.TraceEvery)
	// Persist before publishing: a job whose submission errored must not
	// linger in memory and run anyway (the restart path would then also
	// resurrect a job its submitter was told failed).
	if err := persistJob(s.jobsDir, j); err != nil {
		s.lastID--
		return "", 0, err
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.jobsTotal.Inc()
	for i, c := range list {
		s.queue = append(s.queue, cellRef{jobID: j.id, idx: i})
		j.tracer.Emit("cell_queued", obs.F("name", c.name()), obs.F("key", c.Key))
	}
	s.cond.Broadcast()
	return j.id, len(list), nil
}

// Cancel marks a job cancelled: pending cells flip to cancelled
// immediately, running cells are preempted at their next checkpoint poll
// and their checkpoints discarded.
func (s *Server) Cancel(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	j := s.jobs[id]
	if j == nil {
		return fmt.Errorf("%w: %s", ErrNoJob, id)
	}
	if j.cancelled {
		return nil
	}
	j.cancelled = true
	for _, c := range j.cells {
		if c.Status == cellPending {
			c.Status = cellCancelled
			s.outcomes[outcomeCancelled].Inc()
		}
	}
	j.tracer.Emit("job_cancelled")
	return persistJob(s.jobsDir, j)
}

// workerLoop pulls cells until the queue closes.
func (s *Server) workerLoop() {
	for {
		j, c, ok := s.nextCell()
		if !ok {
			return
		}
		s.runCell(j, c)
	}
}

// nextCell blocks for the next runnable cell, marking it running and its
// key in flight inside the same critical section so its status is never
// observably "pending but claimed". Returns ok=false when the server is
// draining.
func (s *Server) nextCell() (*job, *cell, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		// Closed means stop dispatching immediately, however long the queue
		// is: unclaimed cells stay pending and their persisted status
		// re-enqueues them on the next daemon's startup. (Draining only the
		// in-flight cells bounds Close latency by one checkpoint interval,
		// not by queue length.)
		if s.closed {
			return nil, nil, false
		}
		for i := 0; i < len(s.queue); {
			ref := s.queue[i]
			j := s.jobs[ref.jobID]
			if j == nil || ref.idx >= len(j.cells) {
				s.queue = append(s.queue[:i], s.queue[i+1:]...)
				continue
			}
			c := j.cells[ref.idx]
			// Cancelled (or already-finished, after a duplicate enqueue)
			// cells are settled elsewhere; drop stale refs.
			if c.Status != cellPending || j.cancelled {
				s.queue = append(s.queue[:i], s.queue[i+1:]...)
				continue
			}
			// A same-key cell (necessarily from another job) is mid-run and
			// owns the key's checkpoint paths; leave this ref queued. The
			// owning run's settlement broadcasts, and the cache probe then
			// serves this cell from the completed result.
			if _, busy := s.inflight[c.Key]; busy {
				i++
				continue
			}
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			c.Status = cellRunning
			s.inflight[c.Key] = struct{}{}
			s.cellsRunning.Add(1)
			return j, c, true
		}
		s.cond.Wait()
	}
}

// runCell executes one claimed cell end to end: cache probe, simulation
// with checkpoint + preemption wiring, cache install, state transition.
func (s *Server) runCell(j *job, c *cell) {
	j.tracer.Emit("cell_start", obs.F("name", c.name()), obs.F("key", c.Key))

	if payload, ok, err := s.store.Get(c.Key); err == nil && ok {
		var env cellEnvelope
		if json.Unmarshal(payload, &env) == nil && env.Version == envelopeVersion {
			// Another job may have completed this cell after a preemption
			// left a checkpoint behind; it will never resume now.
			s.removeCheckpoints(c)
			s.finishCell(j, c, &env.Result, true, nil)
			return
		}
		// Unreadable or version-skewed entry: treat as a miss and recompute
		// (the Put below overwrites it).
	}

	res, err := s.simulate(j, c)
	switch {
	case err == nil:
		env := cellEnvelope{
			Version:  envelopeVersion,
			Material: cellMaterial(j.spec.system(c.Seed), c.Scheme, c.Source, res.shards(), j.spec.MaxDemandWrites),
			Result:   res,
		}
		payload, merr := json.Marshal(env)
		if merr != nil {
			s.removeCheckpoints(c)
			s.finishCell(j, c, nil, false, merr)
			return
		}
		if perr := s.store.Put(c.Key, payload); perr != nil {
			// The simulation succeeded; a cache write failure costs future
			// dedupe, not this job's correctness.
			j.tracer.Emit("cache_error", obs.F("key", c.Key), obs.F("err", perr.Error()))
		}
		s.removeCheckpoints(c)
		s.finishCell(j, c, &res, false, nil)
	case errors.Is(err, twl.ErrRunStopped):
		if s.jobCancelled(j) {
			s.removeCheckpoints(c)
			s.finishCell(j, c, nil, false, err)
			return
		}
		// Drain preemption: the run already wrote its final checkpoint;
		// hand the cell back to the next daemon.
		s.preemptions.Inc()
		s.requeueCell(j, c)
	default:
		// A failed cell is terminal too — it never resumes, so keeping its
		// checkpoint state would leak ckptDir space forever.
		s.removeCheckpoints(c)
		s.finishCell(j, c, nil, false, err)
	}
}

// shards reports the shard count a result ran with (0 when unsharded).
func (r cellResult) shards() int {
	if r.Sharded == nil {
		return 0
	}
	return r.Sharded.Shards
}

// simulate runs the cell's simulation with preemption and checkpointing
// wired in. Sharded specs route attack cells through the bank-sharded
// runner; bench cells are rejected by it with ErrUnshardableSource and fall
// back to the unsharded path — the service-level half of that contract.
func (s *Server) simulate(j *job, c *cell) (cellResult, error) {
	spec := j.spec
	sys := spec.system(c.Seed)
	stop := func() bool { return s.draining.Load() || s.jobCancelled(j) }
	kind, name := c.sourceKind()

	if spec.Shards > 0 {
		scfg := twl.ShardedConfig{
			Scheme:          c.Scheme,
			Shards:          spec.Shards,
			MaxDemandWrites: spec.MaxDemandWrites,
			CheckpointDir:   filepath.Join(s.ckptDir, c.Key),
			Resume:          true,
			CheckpointEvery: s.cfg.CheckpointEvery,
			Stop:            stop,
		}
		if kind == "attack" {
			mode, err := twl.ParseAttackMode(name)
			if err != nil {
				return cellResult{}, err
			}
			scfg.Mode = mode
		} else {
			scfg.Bench = name
		}
		res, err := twl.RunShardedLifetime(sys, scfg)
		switch {
		case err == nil:
			out := fromLifetime(res.LifetimeResult)
			out.Sharded = &shardedInfo{
				Shards:      res.Shards,
				ShardPages:  res.ShardPages,
				FailedShard: res.FailedShard,
				ShardDemand: res.ShardDemand,
			}
			return out, nil
		case errors.Is(err, twl.ErrUnshardableSource):
			// Fall through to the unsharded path below.
		default:
			return cellResult{}, err
		}
	}

	ckpt := filepath.Join(s.ckptDir, c.Key+".ckpt")
	resume := false
	if _, err := os.Stat(ckpt); err == nil {
		resume = true
	}
	lc := twl.LifetimeConfig{
		MaxDemandWrites: spec.MaxDemandWrites,
		Stop:            stop,
		Checkpoint: &twl.CheckpointConfig{
			Path:   ckpt,
			Every:  s.cfg.CheckpointEvery,
			Resume: resume,
		},
	}
	var res twl.LifetimeResult
	var err error
	if kind == "attack" {
		var mode twl.AttackMode
		if mode, err = twl.ParseAttackMode(name); err == nil {
			res, err = twl.RunAttackCell(sys, c.Scheme, mode, lc)
		}
	} else {
		res, err = twl.RunBenchCell(sys, c.Scheme, name, lc)
	}
	if err != nil {
		return cellResult{}, err
	}
	return fromLifetime(res), nil
}

// jobCancelled reads the job's cancel flag under the service lock; it is
// the Stop-hook half of cancellation.
func (s *Server) jobCancelled(j *job) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return j.cancelled
}

// removeCheckpoints discards a cell's checkpoint state (a file for
// unsharded cells, a directory for sharded ones). Completed and cancelled
// cells will never resume, so the space comes back.
func (s *Server) removeCheckpoints(c *cell) {
	_ = os.Remove(filepath.Join(s.ckptDir, c.Key+".ckpt"))
	_ = os.RemoveAll(filepath.Join(s.ckptDir, c.Key))
}

// finishCell settles a cell into a terminal state and persists the job.
// err == nil with a result means success (cached says which path); err
// wrapping ErrRunStopped means the cell's job was cancelled mid-run; any
// other error is a cell failure.
func (s *Server) finishCell(j *job, c *cell, res *cellResult, cached bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cellsRunning.Add(-1)
	// The key's checkpoint paths are free again; wake workers that may be
	// holding a same-key duplicate back.
	delete(s.inflight, c.Key)
	s.cond.Broadcast()
	outcome := outcomeSimulated
	switch {
	case err == nil && cached:
		c.Status = cellDone
		c.Cached = true
		c.Result = res
		outcome = outcomeCached
	case err == nil:
		c.Status = cellDone
		c.Result = res
	case errors.Is(err, twl.ErrRunStopped):
		c.Status = cellCancelled
		outcome = outcomeCancelled
	default:
		c.Status = cellFailed
		c.Error = err.Error()
		outcome = outcomeFailed
	}
	s.outcomes[outcome].Inc()
	fields := []obs.Field{
		obs.F("name", c.name()),
		obs.F("outcome", outcome),
		obs.F("cached", c.Cached),
	}
	if c.Result != nil {
		fields = append(fields,
			obs.F("demand_writes", c.Result.DemandWrites),
			obs.F("normalized_lifetime", c.Result.Normalized),
		)
	}
	if c.Error != "" {
		fields = append(fields, obs.F("err", c.Error))
	}
	j.tracer.Emit("cell_done", fields...)
	if perr := persistJob(s.jobsDir, j); perr != nil {
		j.tracer.Emit("persist_error", obs.F("err", perr.Error()))
	}
}

// requeueCell returns a drain-preempted cell to pending. The server is
// closing, so the cell is not pushed back on the live queue; the persisted
// pending status re-enqueues it on the next daemon's startup. A cancel that
// raced in after the stop poll settles the cell as cancelled instead.
func (s *Server) requeueCell(j *job, c *cell) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cellsRunning.Add(-1)
	delete(s.inflight, c.Key)
	s.cond.Broadcast()
	if j.cancelled {
		c.Status = cellCancelled
		s.outcomes[outcomeCancelled].Inc()
		if perr := persistJob(s.jobsDir, j); perr != nil {
			j.tracer.Emit("persist_error", obs.F("err", perr.Error()))
		}
		return
	}
	c.Status = cellPending
	j.tracer.Emit("cell_preempted", obs.F("name", c.name()), obs.F("key", c.Key))
	if perr := persistJob(s.jobsDir, j); perr != nil {
		j.tracer.Emit("persist_error", obs.F("err", perr.Error()))
	}
}
