package tables

import (
	"io"

	"twl/internal/snap"
)

// Checkpoint persistence for the metadata tables. Every table persists its
// complete contents — they are pure workload state with no derived caches —
// so Restore only validates that the stream's geometry matches the receiver.

// Snapshot serializes both directions of the mapping.
func (r *Remap) Snapshot(w io.Writer) error {
	sw := snap.NewWriter(w)
	sw.Ints(r.toPhys)
	sw.Ints(r.toLog)
	return sw.Err()
}

// Restore loads a mapping written by Snapshot into a table of the same size.
func (r *Remap) Restore(rd io.Reader) error {
	sr := snap.NewReader(rd)
	sr.IntsInto(r.toPhys)
	sr.IntsInto(r.toLog)
	if err := sr.Err(); err != nil {
		return err
	}
	return r.CheckBijection()
}

// Snapshot serializes the counters and the first-touch order. The order
// matters: WRL's swap phase sorts Touched() with a stable comparison, so
// reproducing the pre-sort sequence is part of bit-identical resume.
func (w *WriteCounts) Snapshot(wr io.Writer) error {
	sw := snap.NewWriter(wr)
	sw.U64s(w.counts)
	sw.Ints(w.touched)
	return sw.Err()
}

// Restore loads counters written by Snapshot.
func (w *WriteCounts) Restore(rd io.Reader) error {
	sr := snap.NewReader(rd)
	sr.U64sInto(w.counts)
	w.touched = sr.IntSlice(len(w.counts))
	return sr.Err()
}

// Snapshot serializes the pairing.
func (p *PairTable) Snapshot(w io.Writer) error {
	sw := snap.NewWriter(w)
	sw.Ints(p.partner)
	return sw.Err()
}

// Restore loads a pairing written by Snapshot and re-verifies the
// involution invariant.
func (p *PairTable) Restore(rd io.Reader) error {
	sr := snap.NewReader(rd)
	sr.IntsInto(p.partner)
	if err := sr.Err(); err != nil {
		return err
	}
	return p.Check()
}

// Snapshot serializes the counter entries.
func (c *Counter) Snapshot(w io.Writer) error {
	sw := snap.NewWriter(w)
	sw.U8s(c.counts)
	return sw.Err()
}

// Restore loads entries written by Snapshot.
func (c *Counter) Restore(rd io.Reader) error {
	sr := snap.NewReader(rd)
	sr.U8sInto(c.counts)
	return sr.Err()
}
