// Package clock is the module's single sanctioned wall-clock access point.
//
// Simulations must be bit-reproducible, so the determinism analyzer
// (twlint) forbids calling time.Now and time.Since everywhere in the
// simulation packages; this package stores time.Now as a function value
// instead of calling it, so it needs no allowlist exception. Anything that
// legitimately needs wall time — worker utilization in the experiment
// grids, benchmark harnesses, replication timing — reads it through Now and
// Since, which also makes those durations injectable in tests: swap the
// source with SetForTest and timing-dependent code becomes deterministic.
package clock

import (
	"sync/atomic"
	"time"
)

// source holds the active time source. An atomic pointer (not a plain
// package variable) so tests swapping the source do not race with worker
// goroutines reading it; the concurrency analyzer holds every use to the
// atomic methods.
//
//twl:guardedby atomic
var source atomic.Pointer[func() time.Time]

func init() {
	f := time.Now
	source.Store(&f)
}

// Now returns the current time from the active source (wall clock by
// default).
func Now() time.Time { return (*source.Load())() }

// Since returns the time elapsed since t under the active source.
func Since(t time.Time) time.Duration { return Now().Sub(t) }

// SetForTest replaces the time source and returns a function restoring the
// previous one; callers defer it. Intended for tests only — production code
// never swaps the source.
func SetForTest(f func() time.Time) (restore func()) {
	prev := source.Swap(&f)
	return func() { source.Store(prev) }
}

// Stepper returns a deterministic fake source: the first call yields start,
// and every subsequent call advances by step. Safe for concurrent use, so
// it can back parallel code paths in tests.
func Stepper(start time.Time, step time.Duration) func() time.Time {
	var calls atomic.Int64
	return func() time.Time {
		n := calls.Add(1) - 1
		return start.Add(time.Duration(n) * step)
	}
}
