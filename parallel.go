package twl

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"twl/internal/clock"
	"twl/internal/obs"
)

// Experiment grids (Figures 6 and 8) are embarrassingly parallel: every
// cell simulates an independent device, scheme and workload. runCells
// executes a fixed-size task list on up to GOMAXPROCS workers; results are
// written into caller-indexed slots, so the outcome is bit-identical to the
// sequential order regardless of scheduling.

// cellTask is one independent simulation producing a value for its slot.
// The name labels the cell in metrics and trace events ("fig6/BWL/scan").
type cellTask struct {
	name string
	run  func() error
}

// cellObserver records per-cell timing and worker utilization into an obs
// registry and/or tracer. Either may be nil; a fully nil observer adds no
// clock reads to the run.
type cellObserver struct {
	reg     *obs.Registry
	tr      *obs.Tracer
	cells   *obs.Counter
	seconds *obs.Histogram
	busyNs  atomic.Int64
}

func newCellObserver(reg *obs.Registry, tr *obs.Tracer, workers int) *cellObserver {
	if reg == nil && tr == nil {
		return nil
	}
	o := &cellObserver{reg: reg, tr: tr}
	if reg != nil {
		reg.Help("twl_cells_total", "experiment grid cells completed")
		reg.Help("twl_cell_seconds", "wall-clock seconds per grid cell")
		reg.Help("twl_cells_workers", "concurrent workers used for the grid")
		reg.Help("twl_cells_utilization", "busy time / (wall time x workers) of the grid run")
		o.cells = reg.Counter("twl_cells_total")
		o.seconds = reg.Histogram("twl_cell_seconds", obs.ExponentialBuckets(0.001, 4, 10))
		reg.Gauge("twl_cells_workers").Set(float64(workers))
	}
	return o
}

// observe wraps one task with timing.
func (o *cellObserver) observe(t cellTask) error {
	if o == nil {
		return t.run()
	}
	start := clock.Now()
	err := t.run()
	elapsed := clock.Since(start)
	o.busyNs.Add(int64(elapsed))
	if o.cells != nil {
		o.cells.Inc()
		o.seconds.Observe(elapsed.Seconds())
	}
	if o.tr != nil {
		o.tr.Emit("cell",
			obs.F("name", t.name),
			obs.F("seconds", elapsed.Seconds()),
			obs.F("err", err != nil),
		)
	}
	return err
}

// finish records the whole-grid utilization.
func (o *cellObserver) finish(workers int, wall time.Duration) {
	if o == nil || o.reg == nil || wall <= 0 || workers <= 0 {
		return
	}
	busy := time.Duration(o.busyNs.Load())
	o.reg.Gauge("twl_cells_utilization").Set(busy.Seconds() / (wall.Seconds() * float64(workers)))
}

// runCells runs tasks concurrently. It returns a per-task completion mask —
// completed[i] is true iff tasks[i] ran to success — alongside the first
// error (if any). On error the grid is partial: workers stop grabbing new
// tasks, so an unpredictable subset of the caller-indexed result slots was
// never written. Callers must consult the mask (or abandon the grid) rather
// than consume those zero-valued slots as results. reg and tr are optional
// observability sinks for per-cell timing, worker count and utilization.
func runCells(reg *obs.Registry, tr *obs.Tracer, tasks []cellTask) ([]bool, error) {
	return runCellsStop(reg, tr, nil, tasks)
}

// runCellsStop is runCells with a preemption hook: once stop returns true,
// no further tasks are handed out (in-flight tasks run to their own stop
// point — each task's runner is expected to consult the same hook). A
// preempted grid returns a nil error with a partial mask unless an
// in-flight task reported one; callers that set stop must re-check it
// before treating the mask as complete.
func runCellsStop(reg *obs.Registry, tr *obs.Tracer, stop func() bool, tasks []cellTask) ([]bool, error) {
	workers := runtime.GOMAXPROCS(0)
	if workers > len(tasks) {
		workers = len(tasks)
	}
	obsv := newCellObserver(reg, tr, workers)
	start := time.Time{}
	if obsv != nil {
		start = clock.Now()
	}
	completed, err := dispatchCells(workers, obsv, stop, tasks)
	if obsv != nil {
		obsv.finish(workers, clock.Since(start))
	}
	return completed, err
}

// cellDispatch is the shared state of one worker pool: the task cursor and
// the first-error latch, both confined to mu. The annotations make the
// confinement machine-checked — the concurrency analyzer rejects any access
// outside a critical section of mu.
type cellDispatch struct {
	mu       sync.Mutex
	tasks    []cellTask  // immutable after construction
	stop     func() bool // immutable after construction; nil means never
	next     int         //twl:guardedby mu
	firstErr error       //twl:guardedby mu
}

// grab hands out the next task index, or reports false when the list is
// exhausted, a worker has failed (workers stop grabbing after the first
// error), or the preemption hook fired. The stop poll runs outside the
// critical section — it is the caller's concurrency-safe hook, not state
// confined to mu.
func (d *cellDispatch) grab() (cellTask, int, bool) {
	if d.stop != nil && d.stop() {
		return cellTask{}, 0, false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.firstErr != nil || d.next >= len(d.tasks) {
		return cellTask{}, 0, false
	}
	t, i := d.tasks[d.next], d.next
	d.next++
	return t, i, true
}

// fail latches the first error.
func (d *cellDispatch) fail(err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.firstErr == nil {
		d.firstErr = err
	}
}

// err returns the latched first error, if any.
func (d *cellDispatch) err() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.firstErr
}

// dispatchCells executes tasks on up to `workers` goroutines. The returned
// mask records which tasks completed successfully; each slot is written by
// exactly one worker before wg.Wait, so the caller reads it race-free.
func dispatchCells(workers int, obsv *cellObserver, stop func() bool, tasks []cellTask) ([]bool, error) {
	completed := make([]bool, len(tasks))
	if workers <= 1 {
		for i, t := range tasks {
			if stop != nil && stop() {
				return completed, nil
			}
			if err := obsv.observe(t); err != nil {
				return completed, err
			}
			completed[i] = true
		}
		return completed, nil
	}
	d := &cellDispatch{tasks: tasks, stop: stop}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				t, i, ok := d.grab()
				if !ok {
					return
				}
				if err := obsv.observe(t); err != nil {
					d.fail(err)
					return
				}
				completed[i] = true
			}
		}()
	}
	wg.Wait()
	return completed, d.err()
}

// countCompleted is a helper for error messages about partial grids.
func countCompleted(completed []bool) int {
	n := 0
	for _, c := range completed {
		if c {
			n++
		}
	}
	return n
}
