// Package wl defines the wear-leveling scheme interface shared by the
// paper's contribution (internal/core) and every baseline (nowl, startgap,
// secref, wrl, bwl), together with the cost/statistics plumbing the
// simulator uses for lifetime (Figures 6–8) and performance (Figure 9)
// experiments.
//
// A Scheme sits between the memory controller's request queues and the PCM
// array: it translates logical page addresses to physical pages, applies
// wear to the device, and occasionally performs internal swaps. Swaps block
// the memory — the property the paper's attacker exploits to detect swap
// phases by timing (Section 3.1, footnote 1) — so every operation reports
// its full latency.
package wl

import (
	"fmt"
	"io"
	"sort"

	"twl/internal/pcm"
	"twl/internal/snap"
)

// Cost describes what one logical request cost the machine.
type Cost struct {
	// DeviceWrites is the number of physical page writes performed
	// (1 for a plain write; more when the scheme swapped pages).
	DeviceWrites int
	// DeviceReads is the number of physical page reads performed
	// (migration reads during swaps, plus the demand read for Read).
	DeviceReads int
	// ExtraCycles is controller overhead outside the PCM array: table
	// lookups, RNG evaluation, Bloom-filter probes, sorting stalls.
	ExtraCycles int
	// Blocked reports that the request was delayed behind an internal
	// maintenance operation (swap phase). Attackers detect this.
	Blocked bool
}

// Add accumulates o into c.
func (c *Cost) Add(o Cost) {
	c.DeviceWrites += o.DeviceWrites
	c.DeviceReads += o.DeviceReads
	c.ExtraCycles += o.ExtraCycles
	c.Blocked = c.Blocked || o.Blocked
}

// Cycles converts the cost to CPU cycles under timing t.
func (c Cost) Cycles(t pcm.Timing) int64 {
	return int64(c.DeviceWrites)*int64(t.WriteCycles()) +
		int64(c.DeviceReads)*int64(t.ReadCycles) +
		int64(c.ExtraCycles)
}

// Stats aggregates scheme activity over a run.
type Stats struct {
	DemandWrites uint64 // logical writes served
	DemandReads  uint64 // logical reads served
	SwapWrites   uint64 // device writes caused by internal swaps/migrations
	Swaps        uint64 // internal swap operations
	TossUps      uint64 // toss-up evaluations (TWL only)
}

// Snapshot serializes the counters for a checkpoint.
func (s *Stats) Snapshot(w io.Writer) error {
	sw := snap.NewWriter(w)
	sw.U64(s.DemandWrites)
	sw.U64(s.DemandReads)
	sw.U64(s.SwapWrites)
	sw.U64(s.Swaps)
	sw.U64(s.TossUps)
	return sw.Err()
}

// Restore loads counters written by Snapshot.
func (s *Stats) Restore(r io.Reader) error {
	sr := snap.NewReader(r)
	s.DemandWrites = sr.U64()
	s.DemandReads = sr.U64()
	s.SwapWrites = sr.U64()
	s.Swaps = sr.U64()
	s.TossUps = sr.U64()
	return sr.Err()
}

// SwapWriteRatio returns swap writes per demand write — the Figure 7a
// metric.
func (s Stats) SwapWriteRatio() float64 {
	if s.DemandWrites == 0 {
		return 0
	}
	return float64(s.SwapWrites) / float64(s.DemandWrites)
}

// Scheme is a wear-leveling scheme bound to a PCM device.
type Scheme interface {
	// Name identifies the scheme in reports ("NOWL", "SR", "BWL", "TWL_swp"…).
	Name() string
	// Write serves a logical page write carrying the payload tag.
	Write(la int, tag uint64) Cost
	// Read serves a logical page read, returning the payload last written
	// to la.
	Read(la int) (uint64, Cost)
	// Stats returns the accumulated activity counters.
	Stats() Stats
	// Device returns the underlying PCM array.
	Device() *pcm.Device
}

// Checker is implemented by schemes that can verify their internal
// invariants (mapping bijectivity, pairing involution). The simulator's
// paranoid mode and the integration tests call it.
type Checker interface {
	CheckInvariants() error
}

// Snapshotter is the optional checkpoint interface. A scheme (or any other
// stateful simulation component) that implements it can be serialized into
// a lifetime checkpoint and restored bit-identically.
//
// Contract:
//
//   - Restore is called on a freshly constructed value built with the same
//     configuration and seed as the snapshotted one; it overwrites every
//     piece of mutable state. Configuration and state derived purely from
//     construction inputs (geometry, endurance-derived orderings, scratch
//     buffers) need not be persisted, but anything that evolves with the
//     workload — remap tables, counters, RNG stream positions, phase
//     machines — must be, so that the write stream after Restore is
//     indistinguishable from one that never stopped.
//   - Snapshot must not mutate state, and Restore must fail (returning an
//     error) rather than partially apply when the stream does not match the
//     receiver's geometry.
//   - The scheme's Device() state is checkpointed separately by the
//     simulator; schemes persist only their own structures.
type Snapshotter interface {
	Snapshot(w io.Writer) error
	Restore(r io.Reader) error
}

// MemoryReporter is implemented by schemes that can itemize the heap bytes
// of their per-page metadata tables. The bench tools combine it with
// pcm.Device.Footprint to report bytes-per-page for a whole stack, which is
// how packed-table layouts prove their memory win.
type MemoryReporter interface {
	// TableBytes returns the total bytes of the scheme's per-page state
	// (remap tables, counters, endurance copies); transient scratch space
	// is included at its current size.
	TableBytes() int64
}

// AsMemoryReporter finds the first MemoryReporter in a decorator stack,
// probing each layer's body while walking Unwrap links from the outermost
// layer inward (the same protocol as AsCapacityReporter — memory reporting
// is an extension interface, not one of Wrap's preserved capabilities).
func AsMemoryReporter(s Scheme) (MemoryReporter, bool) {
	for s != nil {
		if r, ok := s.(MemoryReporter); ok {
			return r, true
		}
		u, ok := s.(Unwrapper)
		if !ok {
			return nil, false
		}
		if r, ok := u.Body().(MemoryReporter); ok {
			return r, true
		}
		s = u.Unwrap()
	}
	return nil, false
}

// RunWriter is the optional fast-forward interface for same-address write
// runs. Schemes implement it by computing the distance to their next
// internal event (gap move, refresh step, epoch rotation, toss-up, phase
// transition, …) in O(1) and bulk-applying the event-free prefix of the
// run.
//
// Contract (see DESIGN.md "Run-length fast-forward"):
//
//   - WriteRun(la, tag, n) may absorb 0 <= absorbed <= n writes. The device
//     state, scheme state, Stats, and cost totals after the call must be
//     bit-identical to `absorbed` sequential Write calls, where the i-th
//     call (0-indexed) is Write(la, tag+i).
//   - Every absorbed write must be event-free and share the identical
//     per-write Cost (the returned cost; Blocked must be false). The caller
//     accounts cost × absorbed.
//   - absorbed == 0 means the next write triggers an internal event (or the
//     scheme cannot prove it won't); the caller serves it with a normal
//     Write call and retries the remainder.
//   - Mid-run failure: if one of the absorbed writes wears a page to its
//     endurance, the run stops at (and including) that write — absorbed
//     counts it, nothing after it is applied (pcm.Device.WriteN clamps).
//   - RNG alignment: absorbed writes must consume zero RNG draws. A
//     probabilistic scheme may implement RunWriter only when its randomness
//     is event-sparse — every draw happens at an interval-triggered event
//     (TWL's toss-up and inter-pair swap, and likewise PS-WL/WoLFRaM-style
//     randomized remapping) — so that the RNG stream stays bit-aligned with
//     the per-write path: the fast path stops strictly before each
//     RNG-bearing event and the caller fires it through a normal Write. A
//     scheme that draws randomness on every write has no event-free prefix
//     and must not implement RunWriter.
type RunWriter interface {
	WriteRun(la int, tag uint64, n int) (Cost, int)
}

// SweepWriter is the optional fast-forward interface for consecutive-address
// write sweeps: the i-th write (0-indexed) of the sweep is Write(la+i, tag+i)
// and la+n-1 must be a valid logical address. The contract is otherwise
// identical to RunWriter — bit-identical state versus the sequential calls,
// uniform unblocked per-write cost for the absorbed prefix, absorbed == 0
// meaning "serve one write normally and retry", and mid-sweep failure
// stopping the sweep at the write that wore a page out.
//
// Scan-style sources emit sweeps; schemes whose address mapping advances
// incrementally under la+1 (identity, affine, XOR-in-region) can absorb
// them without per-write table walks.
type SweepWriter interface {
	WriteSweep(la int, tag uint64, n int) (Cost, int)
}

// Latency constants for controller-side structures, from Table 1
// ("TWL control logic latency / table latency: 5/10-cycle, RNG latency:
// 4-cycle"). The baselines reuse the table latency for their own metadata
// structures so the Figure 9 comparison is apples-to-apples.
const (
	TableCycles   = 10 // one metadata-table access
	ControlCycles = 5  // scheme control logic
	RNGCycles     = 4  // random-number generation
)

// Factory builds a scheme over a device; registries in the cmd tools use
// this to select schemes by name.
type Factory func(dev *pcm.Device, seed uint64) (Scheme, error)

// SortByEndurance returns page indices sorted by ascending endurance
// (weakest first). Shared by WRL's swap phase and TWL's strong-weak pairing.
func SortByEndurance(endurance []uint64) []int {
	idx := make([]int, len(endurance))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return endurance[idx[a]] < endurance[idx[b]]
	})
	return idx
}

// ValidateLA bounds-checks a logical address against the device.
func ValidateLA(dev *pcm.Device, la int) error {
	if la < 0 || la >= dev.Pages() {
		return fmt.Errorf("wl: logical address %d out of range [0,%d)", la, dev.Pages())
	}
	return nil
}
