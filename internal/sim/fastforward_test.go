package sim

import (
	"bytes"
	"testing"

	"twl/internal/attack"
	"twl/internal/obs"
	"twl/internal/trace"
	"twl/internal/wl"
	"twl/internal/wl/wltest"

	// Populate the default registry with every scheme so the differential
	// test sweeps all of them.
	_ "twl/internal/core"
	_ "twl/internal/wl/bwl"
	_ "twl/internal/wl/od3p"
	_ "twl/internal/wl/rbsg"
	_ "twl/internal/wl/secref"
	_ "twl/internal/wl/startgap"
	_ "twl/internal/wl/wrl"
)

// runWriters lists the schemes that must implement the fast-forward writer
// interfaces (the deterministic ones); every other registered scheme must
// not, and takes the per-request fallback.
var runWriters = map[string]bool{
	"NOWL":     true,
	"StartGap": true,
	"BWL":      true,
	"SR":       true,
	"SR2":      true,
}

const (
	diffPages     = 256
	diffEndurance = 3000
	diffSeed      = 7
)

// diffTrace builds a replay trace with same-address write bursts of varying
// lengths, interleaved reads (including read runs), and raw addresses beyond
// the page range (exercising the FromTrace folding).
func diffTrace() []trace.Record {
	var recs []trace.Record
	for i := 0; i < 48; i++ {
		addr := uint64(i*37 + i%3*1000)
		for j := 0; j < i%7+1; j++ {
			recs = append(recs, trace.Record{Op: trace.Write, Addr: addr})
		}
		if i%3 == 0 {
			for j := 0; j < i%4+1; j++ {
				recs = append(recs, trace.Record{Op: trace.Read, Addr: addr + 5})
			}
		}
	}
	return recs
}

// diffSource builds the request source for one differential run, sized to
// the scheme's demand-addressable space (schemes with spare gap pages serve
// fewer logical pages than the device holds).
func diffSource(t *testing.T, kind string, pages int) Source {
	t.Helper()
	switch kind {
	case "repeat", "scan":
		mode := attack.Repeat
		if kind == "scan" {
			mode = attack.Scan
		}
		st, err := attack.New(attack.DefaultConfig(mode, pages, diffSeed))
		if err != nil {
			t.Fatal(err)
		}
		return FromAttack(st)
	case "trace":
		src, err := FromTrace(diffTrace(), pages)
		if err != nil {
			t.Fatal(err)
		}
		return src
	}
	t.Fatalf("unknown source kind %q", kind)
	return nil
}

// demandPages returns the scheme's logical page count (LogicalPages when
// the scheme reserves spare pages, the device size otherwise).
func demandPages(s wl.Scheme) int {
	if z, ok := s.(interface{ LogicalPages() int }); ok {
		return z.LogicalPages()
	}
	return s.Device().Pages()
}

// diffRun executes one lifetime run and captures everything comparable:
// the result, the full wear and payload maps, device totals, the metrics
// registry rendering, and the trace event log.
type diffRun struct {
	res         LifetimeResult
	wear        []uint64
	payload     []uint64
	writes      uint64
	reads       uint64
	metricsText string
	traceText   string
}

func diffRunOne(t *testing.T, scheme, kind string, disableFF bool) diffRun {
	t.Helper()
	dev := wltest.NewDeviceEndurance(t, diffPages, diffEndurance, diffSeed)
	s, err := wl.Default.New(scheme, dev, diffSeed)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	var traceBuf bytes.Buffer
	tr := obs.NewTracer(&traceBuf, 1000)
	res, err := RunLifetime(s, diffSource(t, kind, demandPages(s)), LifetimeConfig{
		MaxDemandWrites:    3 * dev.TotalEndurance(),
		CheckEvery:         977,
		Metrics:            reg,
		Trace:              tr,
		DisableFastForward: disableFF,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
	var metricsBuf bytes.Buffer
	if err := reg.WriteText(&metricsBuf); err != nil {
		t.Fatal(err)
	}
	out := diffRun{
		res:         res,
		wear:        make([]uint64, dev.Pages()),
		payload:     make([]uint64, dev.Pages()),
		writes:      dev.TotalWrites(),
		reads:       dev.TotalReads(),
		metricsText: metricsBuf.String(),
		traceText:   traceBuf.String(),
	}
	for pp := 0; pp < dev.Pages(); pp++ {
		out.wear[pp] = dev.Wear(pp)
		out.payload[pp] = dev.Peek(pp)
	}
	return out
}

// TestFastForwardImplementers pins which schemes opt into the fast path, so
// an accidental interface change (or a probabilistic scheme gaining a bogus
// WriteRun) fails loudly.
func TestFastForwardImplementers(t *testing.T) {
	for _, name := range wl.Names() {
		dev := wltest.NewDeviceEndurance(t, diffPages, diffEndurance, diffSeed)
		s, err := wl.Default.New(name, dev, diffSeed)
		if err != nil {
			t.Fatal(err)
		}
		_, isRun := s.(wl.RunWriter)
		if isRun != runWriters[name] {
			t.Errorf("%s: RunWriter = %v, want %v", name, isRun, runWriters[name])
		}
		if _, isSweep := s.(wl.SweepWriter); isSweep && !runWriters[name] {
			t.Errorf("%s: implements SweepWriter but is not a deterministic fast-forward scheme", name)
		}
	}
}

// TestFastForwardDifferential runs every registered scheme against the
// repeat attack, the scan attack, and a bursty trace replay through both the
// fast-forward and the per-request paths, and requires bit-identical
// results: the LifetimeResult struct, the per-page wear map, the per-page
// payload tags, device totals, the rendered metrics registry, and the
// emitted trace events.
func TestFastForwardDifferential(t *testing.T) {
	for _, name := range wl.Names() {
		for _, kind := range []string{"repeat", "scan", "trace"} {
			t.Run(name+"/"+kind, func(t *testing.T) {
				slow := diffRunOne(t, name, kind, true)
				fast := diffRunOne(t, name, kind, false)

				if fast.res != slow.res {
					t.Errorf("LifetimeResult differs:\nfast: %+v\nslow: %+v", fast.res, slow.res)
				}
				if slow.res.Capped && slow.res.DemandWrites == 0 {
					t.Fatal("slow run served no writes; differential test is vacuous")
				}
				for pp := range slow.wear {
					if fast.wear[pp] != slow.wear[pp] {
						t.Fatalf("wear[%d]: fast %d, slow %d", pp, fast.wear[pp], slow.wear[pp])
					}
					if fast.payload[pp] != slow.payload[pp] {
						t.Fatalf("payload[%d]: fast %d, slow %d", pp, fast.payload[pp], slow.payload[pp])
					}
				}
				if fast.writes != slow.writes || fast.reads != slow.reads {
					t.Errorf("device totals differ: fast %d/%d, slow %d/%d",
						fast.writes, fast.reads, slow.writes, slow.reads)
				}
				if fast.metricsText != slow.metricsText {
					t.Errorf("metrics registry differs:\nfast:\n%s\nslow:\n%s", fast.metricsText, slow.metricsText)
				}
				if fast.traceText != slow.traceText {
					t.Errorf("trace events differ:\nfast:\n%s\nslow:\n%s", fast.traceText, slow.traceText)
				}
			})
		}
	}
}
