// Package cache is a content-addressed on-disk result store. Every
// simulation in this repository is deterministic (twlint's determinism
// analyzer bans wall-clock and unseeded randomness from the simulation
// tree), so a cell's result is a pure function of its construction inputs:
// (scheme, system config, seed, workload). Hash those inputs into a key and
// a result computed once is correct forever — the dedupe layer that lets
// the twlsimd service serve a resubmitted cell with zero recomputed writes.
//
// The store is a flat directory of JSON payloads fanned out over 256
// two-hex-digit subdirectories (git-object style, so huge campaigns don't
// degrade into one directory with a million entries). Writes are atomic
// (temp file + rename into place), so a crash mid-Put leaves either the old
// entry or no entry — never a torn one — and concurrent Puts of the same
// key are idempotent last-writer-wins races between identical bytes.
package cache

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
)

// Key derives the content address for a cell from its canonical key
// material. Callers are responsible for making material canonical and
// collision-free for their domain: include every construction input that
// can change the result, in a fixed field order, with an explicit version
// prefix so a change to result semantics invalidates old entries (see
// serve.CellKey for the service's derivation).
func Key(material string) string {
	sum := sha256.Sum256([]byte(material))
	return hex.EncodeToString(sum[:])
}

// Stats is a point-in-time snapshot of the cache's hit/miss counters.
type Stats struct {
	Hits   uint64
	Misses uint64
}

// Cache is a content-addressed store rooted at one directory. Safe for
// concurrent use: entries are immutable once written, and the counters are
// atomics.
type Cache struct {
	dir    string
	hits   atomic.Uint64 //twl:guardedby atomic
	misses atomic.Uint64 //twl:guardedby atomic
}

// New opens (creating if necessary) a cache rooted at dir.
func New(dir string) (*Cache, error) {
	if dir == "" {
		return nil, fmt.Errorf("cache: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cache: %w", err)
	}
	return &Cache{dir: dir}, nil
}

// path fans the key out over a two-hex-digit subdirectory.
func (c *Cache) path(key string) (string, error) {
	if len(key) < 3 {
		return "", fmt.Errorf("cache: key %q too short", key)
	}
	return filepath.Join(c.dir, key[:2], key[2:]+".json"), nil
}

// Get returns the payload stored under key, or ok=false on a miss. A miss
// is not an error; an unreadable entry is.
func (c *Cache) Get(key string) (payload []byte, ok bool, err error) {
	p, err := c.path(key)
	if err != nil {
		return nil, false, err
	}
	b, err := os.ReadFile(p)
	if err != nil {
		if os.IsNotExist(err) {
			c.misses.Add(1)
			return nil, false, nil
		}
		return nil, false, fmt.Errorf("cache: read %s: %w", key, err)
	}
	c.hits.Add(1)
	return b, true, nil
}

// Put stores payload under key, atomically. Re-putting an existing key
// replaces the entry (by the determinism contract the bytes are identical,
// so this is a no-op in effect).
func (c *Cache) Put(key string, payload []byte) error {
	p, err := c.path(key)
	if err != nil {
		return err
	}
	dir := filepath.Dir(p)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	tmp, err := os.CreateTemp(dir, filepath.Base(p)+".tmp-*")
	if err != nil {
		return fmt.Errorf("cache: put %s: %w", key, err)
	}
	if _, err := tmp.Write(payload); err != nil {
		_ = tmp.Close()
		_ = os.Remove(tmp.Name())
		return fmt.Errorf("cache: put %s: %w", key, err)
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmp.Name())
		return fmt.Errorf("cache: put %s: %w", key, err)
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		_ = os.Remove(tmp.Name())
		return fmt.Errorf("cache: put %s: %w", key, err)
	}
	return nil
}

// Len walks the store and counts entries. It exists for tests and the
// service's status endpoint; it is O(entries), not a counter.
func (c *Cache) Len() (int, error) {
	n := 0
	err := filepath.WalkDir(c.dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && filepath.Ext(path) == ".json" {
			n++
		}
		return nil
	})
	if err != nil {
		return 0, fmt.Errorf("cache: %w", err)
	}
	return n, nil
}

// Stats snapshots the hit/miss counters (process-lifetime, not persisted).
func (c *Cache) Stats() Stats {
	return Stats{Hits: c.hits.Load(), Misses: c.misses.Load()}
}
