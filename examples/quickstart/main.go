// Quickstart: build a scaled PCM system, attach Toss-up Wear Leveling, and
// watch it survive the paper's inconsistent-write attack that destroys a
// prediction-based scheme.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"twl"
)

func main() {
	// A scaled PCM: 1024 pages, Gaussian endurance (mean 10000, sigma 11%).
	sys := twl.SystemConfig{
		Pages:         1024,
		PageSize:      4096,
		MeanEndurance: 10000,
		SigmaFraction: 0.11,
		Seed:          42,
	}

	for _, name := range []string{"TWL_swp", "BWL", "NOWL"} {
		dev, err := sys.NewDevice()
		if err != nil {
			log.Fatal(err)
		}
		scheme, err := twl.NewScheme(name, dev, 7)
		if err != nil {
			log.Fatal(err)
		}
		attack, err := twl.NewAttack(twl.AttackInconsistent, sys.Pages, 11)
		if err != nil {
			log.Fatal(err)
		}
		res, err := twl.RunLifetime(scheme, attack)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s survived %8d malicious writes — %5.1f%% of ideal lifetime (%.2f years at 8 GB/s)\n",
			name, res.DemandWrites, 100*res.Normalized, res.Years(twl.IdealYears(8e9)))
	}

	fmt.Println("\nTWL reallocates writes inside strong-weak pairs by endurance ratio,")
	fmt.Println("so the attack's misleading write distribution buys it nothing.")
}
