package wl

import (
	"errors"
	"testing"

	"twl/internal/obs"
)

// blockyScheme reports every third write as blocked, to exercise the
// blocked counter.
type blockyScheme struct {
	fakeScheme
	n int
}

func (b *blockyScheme) Write(la int, tag uint64) Cost {
	b.n++
	return Cost{DeviceWrites: 1, Blocked: b.n%3 == 0}
}

func (b *blockyScheme) CheckInvariants() error { return errors.New("checked") }

func TestInstrumentRecordsMetrics(t *testing.T) {
	dev := testDevice(t, 8)
	reg := obs.NewRegistry()
	s := Instrument(&blockyScheme{fakeScheme: fakeScheme{name: "Fake", dev: dev}}, reg)
	for i := 0; i < 9; i++ {
		s.Write(i%8, uint64(i))
	}
	s.Read(0)

	writes := reg.Counter("twl_scheme_requests_total", obs.L("scheme", "Fake"), obs.L("op", "write"))
	reads := reg.Counter("twl_scheme_requests_total", obs.L("scheme", "Fake"), obs.L("op", "read"))
	blocked := reg.Counter("twl_scheme_blocked_total", obs.L("scheme", "Fake"))
	if writes.Value() != 9 || reads.Value() != 1 {
		t.Fatalf("writes=%d reads=%d, want 9/1", writes.Value(), reads.Value())
	}
	if blocked.Value() != 3 {
		t.Fatalf("blocked=%d, want 3", blocked.Value())
	}
	h := reg.Histogram("twl_scheme_request_cycles", obs.DefaultLatencyBuckets(), obs.L("scheme", "Fake"))
	if h.Count() != 10 {
		t.Fatalf("latency observations=%d, want 10", h.Count())
	}
}

func TestInstrumentPreservesChecker(t *testing.T) {
	dev := testDevice(t, 8)
	reg := obs.NewRegistry()

	// A checker scheme stays a checker, delegating to the original.
	s := Instrument(&blockyScheme{fakeScheme: fakeScheme{name: "C", dev: dev}}, reg)
	c, ok := s.(Checker)
	if !ok {
		t.Fatal("instrumented checker scheme lost the Checker interface")
	}
	if err := c.CheckInvariants(); err == nil || err.Error() != "checked" {
		t.Fatalf("CheckInvariants not delegated: %v", err)
	}

	// A non-checker scheme must NOT grow a fake Checker.
	s2 := Instrument(&fakeScheme{name: "N", dev: dev}, reg)
	if _, ok := s2.(Checker); ok {
		t.Fatal("instrumenting a non-checker scheme fabricated a Checker")
	}
}
