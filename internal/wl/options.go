package wl

import (
	"fmt"

	"twl/internal/obs"
	"twl/internal/pcm"
)

// Functional options for scheme construction. CLIs and experiments compose
// decorators declaratively —
//
//	s, err := wl.Build("TWL_swp", dev, seed,
//		wl.WithRetirement(wl.RetireConfig{}),
//		wl.WithInstrumentation(reg))
//
// — instead of wrapping by hand. Options apply in argument order, first
// option innermost, so the example instruments the retirement decorator's
// output (demand metrics include writes served from spares).

// Option customizes scheme construction in Registry.Build.
type Option func(*buildOptions) error

// buildOptions accumulates the decorator stack Build applies over the
// freshly constructed scheme.
type buildOptions struct {
	wrappers []func(Scheme) (Scheme, error)
}

// WithInstrumentation records every request the scheme serves in reg (see
// Instrument).
func WithInstrumentation(reg *obs.Registry) Option {
	return func(o *buildOptions) error {
		if reg == nil {
			return fmt.Errorf("wl: WithInstrumentation needs a registry: %w", ErrBadConfig)
		}
		o.wrappers = append(o.wrappers, func(s Scheme) (Scheme, error) {
			return Instrument(s, reg), nil
		})
		return nil
	}
}

// WithRetirement wraps the scheme in the fault-tolerant page-retirement
// decorator (internal/wl/retire), which remaps failed pages into the
// device's spare pool so the run continues past the first failure. The
// device must have been built with SparePages > 0. The decorator package
// must be linked in (importing it, directly or via the twl facade,
// registers its factory).
func WithRetirement(cfg RetireConfig) Option {
	return func(o *buildOptions) error {
		if retireFactory == nil {
			return fmt.Errorf("wl: retirement decorator not linked in (import twl/internal/wl/retire): %w", ErrBadConfig)
		}
		o.wrappers = append(o.wrappers, func(s Scheme) (Scheme, error) {
			return retireFactory(s, cfg)
		})
		return nil
	}
}

// WithDecorator applies an arbitrary wrapper; wrap should use Wrap so the
// result preserves the scheme's optional interfaces.
func WithDecorator(wrap func(Scheme) (Scheme, error)) Option {
	return func(o *buildOptions) error {
		if wrap == nil {
			return fmt.Errorf("wl: WithDecorator needs a wrapper: %w", ErrBadConfig)
		}
		o.wrappers = append(o.wrappers, wrap)
		return nil
	}
}

// Compose applies the options' decorators to an already-constructed scheme,
// first option innermost. Callers that build schemes outside a registry
// (experiments with custom constructors) use it to get the same stack Build
// would produce.
func Compose(s Scheme, opts ...Option) (Scheme, error) {
	var o buildOptions
	for _, opt := range opts {
		if err := opt(&o); err != nil {
			return nil, err
		}
	}
	for _, wrap := range o.wrappers {
		next, err := wrap(s)
		if err != nil {
			return nil, fmt.Errorf("wl: decorating %s: %w", s.Name(), err)
		}
		s = next
	}
	return s, nil
}

// Build constructs the named scheme over dev and applies the options'
// decorator stack. This is the canonical constructor; New is the
// option-less shim kept for old call sites.
func (r *Registry) Build(name string, dev *pcm.Device, seed uint64, opts ...Option) (Scheme, error) {
	s, err := r.New(name, dev, seed)
	if err != nil {
		return nil, err
	}
	return Compose(s, opts...)
}

// Build constructs a scheme from the Default registry with options.
func Build(name string, dev *pcm.Device, seed uint64, opts ...Option) (Scheme, error) {
	return Default.Build(name, dev, seed, opts...)
}
