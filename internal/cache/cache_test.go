package cache

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// TestKeyDerivation: the key is a stable sha256 of the material — same
// material, same key; different material, different key.
func TestKeyDerivation(t *testing.T) {
	a := Key("v1|scheme=TWL_swp|attack=repeat|seed=1")
	b := Key("v1|scheme=TWL_swp|attack=repeat|seed=1")
	c := Key("v1|scheme=TWL_swp|attack=repeat|seed=2")
	if a != b {
		t.Errorf("same material produced different keys: %s vs %s", a, b)
	}
	if a == c {
		t.Error("different material produced the same key")
	}
	if len(a) != 64 {
		t.Errorf("key length %d, want 64 hex chars", len(a))
	}
}

// TestGetPutRoundTrip: a stored payload comes back byte-identical; the
// counters track hits and misses.
func TestGetPutRoundTrip(t *testing.T) {
	c, err := New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := Key("cell-1")
	if _, ok, err := c.Get(key); err != nil || ok {
		t.Fatalf("fresh cache hit: ok=%v err=%v", ok, err)
	}
	payload := []byte(`{"demand_writes":123}`)
	if err := c.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	got, ok, err := c.Get(key)
	if err != nil || !ok {
		t.Fatalf("stored entry missing: ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("payload round-trip: got %q", got)
	}
	if st := c.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats %+v, want 1 hit / 1 miss", st)
	}
	if n, err := c.Len(); err != nil || n != 1 {
		t.Errorf("Len = %d/%v, want 1", n, err)
	}
}

// TestEntriesSurviveReopen: the store is durable — a fresh Cache over the
// same directory serves entries written by a previous one (the service's
// restart path).
func TestEntriesSurviveReopen(t *testing.T) {
	dir := t.TempDir()
	c1, err := New(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := Key("cell-2")
	if err := c1.Put(key, []byte("result")); err != nil {
		t.Fatal(err)
	}
	c2, err := New(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok, err := c2.Get(key)
	if err != nil || !ok || string(got) != "result" {
		t.Fatalf("reopened cache: got %q ok=%v err=%v", got, ok, err)
	}
}

// TestFanout: entries land under two-hex-digit subdirectories and no temp
// files survive a Put.
func TestFanout(t *testing.T) {
	dir := t.TempDir()
	c, err := New(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := Key("cell-3")
	if err := c.Put(key, []byte("x")); err != nil {
		t.Fatal(err)
	}
	want := filepath.Join(dir, key[:2], key[2:]+".json")
	if _, err := os.Stat(want); err != nil {
		t.Fatalf("entry not at fanout path %s: %v", want, err)
	}
	entries, err := os.ReadDir(filepath.Join(dir, key[:2]))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if filepath.Ext(e.Name()) != ".json" {
			t.Errorf("non-entry file %s in fanout dir", e.Name())
		}
	}
}

// TestShortKeyRejected: malformed keys are errors, not silent misses.
func TestShortKeyRejected(t *testing.T) {
	c, err := New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Get("ab"); err == nil {
		t.Error("short key accepted by Get")
	}
	if err := c.Put("ab", []byte("x")); err == nil {
		t.Error("short key accepted by Put")
	}
}

// TestConcurrentAccess hammers one cache from many goroutines under -race:
// concurrent Puts of the same key and mixed Get/Put of distinct keys must
// be safe and end with every entry readable.
func TestConcurrentAccess(t *testing.T) {
	c, err := New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	const keys = 16
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < keys; i++ {
				key := Key(fmt.Sprintf("cell-%d", i))
				payload := []byte(fmt.Sprintf(`{"cell":%d}`, i))
				if err := c.Put(key, payload); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				if got, ok, err := c.Get(key); err != nil || !ok || !bytes.Equal(got, payload) {
					t.Errorf("worker %d key %d: got %q ok=%v err=%v", w, i, got, ok, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if n, err := c.Len(); err != nil || n != keys {
		t.Errorf("Len = %d/%v, want %d", n, err, keys)
	}
}
