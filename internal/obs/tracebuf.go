package obs

import (
	"bytes"
	"sync"
)

// TraceBuffer is an in-memory trace sink safe for concurrent writers and
// readers: workers append JSONL events through a Tracer while HTTP handlers
// snapshot the accumulated stream. A plain bytes.Buffer races between
// Tracer.Emit and a reader; this wrapper serializes both sides.
type TraceBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer //twl:guardedby mu
}

// Write appends p to the buffer. It never fails (the error return satisfies
// io.Writer).
func (b *TraceBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

// Bytes returns a copy of the accumulated stream, safe to use after further
// writes.
func (b *TraceBuffer) Bytes() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]byte(nil), b.buf.Bytes()...)
}

// Len reports the accumulated byte count.
func (b *TraceBuffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Len()
}
