package sim

import (
	"testing"

	"twl/internal/wl"
	"twl/internal/wl/wltest"
)

// packedRegistryFactory builds a registered scheme over a packed-storage
// device with the same geometry, endurance map and seed registryFactory
// uses. The device API hides storage width, so every scheme runs unchanged;
// the TWL rows additionally switch to the packed engine through
// core.NewAuto.
func packedRegistryFactory(name string) schemeFactory {
	return func(t *testing.T) wl.Scheme {
		t.Helper()
		dev := wltest.NewPackedDeviceEndurance(t, diffPages, diffEndurance, diffSeed)
		s, err := wl.Default.New(name, dev, diffSeed)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
}

// diffComparePacked runs one configuration on a wide device and on a packed
// device — both through the fast-forward path — and requires bit-identical
// observables, exactly the diffCompare criteria: the LifetimeResult, the
// per-page wear and payload maps, device totals, the rendered metrics and
// the trace events.
func diffComparePacked(t *testing.T, name, kind string) {
	t.Helper()
	wide := diffRunOne(t, registryFactory(name), kind, false)
	packed := diffRunOne(t, packedRegistryFactory(name), kind, false)

	if packed.res != wide.res {
		t.Errorf("LifetimeResult differs:\npacked: %+v\nwide: %+v", packed.res, wide.res)
	}
	if wide.res.Capped && wide.res.DemandWrites == 0 {
		t.Fatal("wide run served no writes; differential test is vacuous")
	}
	for pp := range wide.wear {
		if packed.wear[pp] != wide.wear[pp] {
			t.Fatalf("wear[%d]: packed %d, wide %d", pp, packed.wear[pp], wide.wear[pp])
		}
		if packed.payload[pp] != wide.payload[pp] {
			t.Fatalf("payload[%d]: packed %d, wide %d", pp, packed.payload[pp], wide.payload[pp])
		}
	}
	if packed.writes != wide.writes || packed.reads != wide.reads {
		t.Errorf("device totals differ: packed %d/%d, wide %d/%d",
			packed.writes, packed.reads, wide.writes, wide.reads)
	}
	if packed.metricsText != wide.metricsText {
		t.Errorf("metrics registry differs:\npacked:\n%s\nwide:\n%s", packed.metricsText, wide.metricsText)
	}
	if packed.traceText != wide.traceText {
		t.Errorf("trace events differ:\npacked:\n%s\nwide:\n%s", packed.traceText, wide.traceText)
	}
}

// TestPackedDeviceDifferential extends the differential matrix along the
// storage-width axis: every registered scheme, against every source kind,
// on a wide device versus a packed device. Combined with
// TestFastForwardDifferential (fast vs slow on wide) this closes the square
// — all four path combinations produce identical lifetimes.
func TestPackedDeviceDifferential(t *testing.T) {
	for _, name := range wl.Names() {
		for _, kind := range []string{"repeat", "scan", "trace", "inconsistent"} {
			t.Run(name+"/"+kind, func(t *testing.T) {
				diffComparePacked(t, name, kind)
			})
		}
	}
}
