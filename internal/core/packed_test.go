package core

import (
	"bytes"
	"testing"

	"twl/internal/pcm"
	"twl/internal/pv"
	"twl/internal/rng"
	"twl/internal/wl"
	"twl/internal/wl/wltest"
)

// packedTestEndurance is small enough that differential runs see failures
// and comfortably inside the packed device's uint32 width.
const packedTestEndurance = 5000

// newEnginePair builds a wide engine over a wide device and a packed engine
// over a packed device, both from the same endurance map, seed and config.
func newEnginePair(t testing.TB, pages int, cfg Config) (*Engine, *PackedEngine) {
	t.Helper()
	end, err := pv.Generate(pv.Config{
		Pages: pages, Mean: packedTestEndurance, Sigma: 0.11 * packedTestEndurance,
		Model: pv.Gaussian, Seed: cfg.Seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	geom := pcm.Geometry{Pages: pages, PageSize: 4096, LineSize: 128, Ranks: 4, Banks: 32}
	wideDev, err := pcm.NewDevice(geom, pcm.DefaultTiming(), end)
	if err != nil {
		t.Fatal(err)
	}
	packedDev, err := pcm.NewPackedDevice(geom, pcm.DefaultTiming(), end)
	if err != nil {
		t.Fatal(err)
	}
	wide, err := New(wideDev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	packed, err := NewPacked(packedDev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return wide, packed
}

// comparePackedWide requires byte-identical engine and device snapshots and
// equal stats.
func comparePackedWide(t *testing.T, wide *Engine, packed *PackedEngine, when string) {
	t.Helper()
	if wide.Stats() != packed.Stats() {
		t.Fatalf("%s: stats diverged: wide %+v, packed %+v", when, wide.Stats(), packed.Stats())
	}
	var we, pe bytes.Buffer
	if err := wide.Snapshot(&we); err != nil {
		t.Fatalf("%s: wide engine snapshot: %v", when, err)
	}
	if err := packed.Snapshot(&pe); err != nil {
		t.Fatalf("%s: packed engine snapshot: %v", when, err)
	}
	if !bytes.Equal(we.Bytes(), pe.Bytes()) {
		t.Fatalf("%s: engine snapshots differ (%d vs %d bytes)", when, we.Len(), pe.Len())
	}
	var wd, pd bytes.Buffer
	if err := wide.Device().Snapshot(&wd); err != nil {
		t.Fatalf("%s: wide device snapshot: %v", when, err)
	}
	if err := packed.Device().Snapshot(&pd); err != nil {
		t.Fatalf("%s: packed device snapshot: %v", when, err)
	}
	if !bytes.Equal(wd.Bytes(), pd.Bytes()) {
		t.Fatalf("%s: device snapshots differ (%d vs %d bytes)", when, wd.Len(), pd.Len())
	}
}

// TestPackedEngineConformance runs the full scheme conformance suite
// (data integrity, wear conservation, invariants, cost sanity) against the
// packed engine over a packed device. The endurance mean sits below the
// packed uint32 limit but far above what the suite's workloads inflict, so
// wear-out never interferes.
func TestPackedEngineConformance(t *testing.T) {
	wltest.Run(t, func(tb testing.TB, seed uint64) wl.Scheme {
		dev := wltest.NewPackedDeviceEndurance(tb, 256, 1e9, seed)
		e, err := NewPacked(dev, DefaultConfig(seed))
		if err != nil {
			tb.Fatal(err)
		}
		return e
	})
}

// TestPackedEngineMatchesWide drives both engines through an identical
// random mix of per-write, run and sweep operations and requires
// bit-identical state throughout — the core of the packed/wide differential
// matrix.
func TestPackedEngineMatchesWide(t *testing.T) {
	for _, pairing := range []Pairing{StrongWeak, Adjacent, Random} {
		pairing := pairing
		t.Run(pairing.String(), func(t *testing.T) {
			const pages = 512
			cfg := DefaultConfig(99)
			cfg.Pairing = pairing
			wide, packed := newEnginePair(t, pages, cfg)
			drv := rng.NewXorshift(1234)
			tag := uint64(1)
			for op := 0; op < 6000; op++ {
				switch drv.Intn(10) {
				case 0, 1, 2, 3, 4, 5:
					la := drv.Intn(pages)
					cw := wide.Write(la, tag)
					cp := packed.Write(la, tag)
					if cw != cp {
						t.Fatalf("op %d: Write(%d) cost diverged: wide %+v, packed %+v", op, la, cw, cp)
					}
				case 6:
					la := drv.Intn(pages)
					vw, cw := wide.Read(la)
					vp, cp := packed.Read(la)
					if vw != vp || cw != cp {
						t.Fatalf("op %d: Read(%d) diverged: wide (%d,%+v), packed (%d,%+v)", op, la, vw, cw, vp, cp)
					}
				case 7, 8:
					la := drv.Intn(pages)
					n := 1 + drv.Intn(200)
					cw, aw := wide.WriteRun(la, tag, n)
					cp, ap := packed.WriteRun(la, tag, n)
					if cw != cp || aw != ap {
						t.Fatalf("op %d: WriteRun(%d,%d) diverged: wide (%+v,%d), packed (%+v,%d)",
							op, la, n, cw, aw, cp, ap)
					}
					// Serve the event write so runs make progress past events.
					if aw == 0 {
						if cws, cps := wide.Write(la, tag), packed.Write(la, tag); cws != cps {
							t.Fatalf("op %d: event Write(%d) diverged", op, la)
						}
					}
				default:
					n := 1 + drv.Intn(64)
					la := drv.Intn(pages - n)
					cw, aw := wide.WriteSweep(la, tag, n)
					cp, ap := packed.WriteSweep(la, tag, n)
					if cw != cp || aw != ap {
						t.Fatalf("op %d: WriteSweep(%d,%d) diverged: wide (%+v,%d), packed (%+v,%d)",
							op, la, n, cw, aw, cp, ap)
					}
					if aw == 0 {
						if cws, cps := wide.Write(la, tag), packed.Write(la, tag); cws != cps {
							t.Fatalf("op %d: event Write(%d) diverged", op, la)
						}
					}
				}
				tag += 7
				if op%1000 == 999 {
					comparePackedWide(t, wide, packed, "mid-run")
				}
			}
			if err := wide.CheckInvariants(); err != nil {
				t.Fatalf("wide invariants: %v", err)
			}
			if err := packed.CheckInvariants(); err != nil {
				t.Fatalf("packed invariants: %v", err)
			}
			comparePackedWide(t, wide, packed, "final")
		})
	}
}

// TestPackedEngineSnapshotCrossRestore checkpoints a packed engine mid-run
// and restores the stream into a wide engine (and vice versa); both
// continuations must stay bit-identical to the original.
func TestPackedEngineSnapshotCrossRestore(t *testing.T) {
	const pages = 128
	cfg := DefaultConfig(3)
	wide, packed := newEnginePair(t, pages, cfg)
	drv := rng.NewXorshift(77)
	for op := 0; op < 3000; op++ {
		la := drv.Intn(pages)
		wide.Write(la, uint64(op))
		packed.Write(la, uint64(op))
	}
	var pbuf, wbuf bytes.Buffer
	if err := packed.Snapshot(&pbuf); err != nil {
		t.Fatalf("packed snapshot: %v", err)
	}
	if err := wide.Snapshot(&wbuf); err != nil {
		t.Fatalf("wide snapshot: %v", err)
	}

	// Fresh engines of the opposite width, restored from each other's
	// snapshots. Devices keep their live state — the sim layer checkpoints
	// them separately — so only the scheme state crosses widths here.
	wide2, err := New(wide.Device(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := wide2.Restore(bytes.NewReader(pbuf.Bytes())); err != nil {
		t.Fatalf("restore packed snapshot into wide engine: %v", err)
	}
	packed2, err := NewPacked(packed.Device(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := packed2.Restore(bytes.NewReader(wbuf.Bytes())); err != nil {
		t.Fatalf("restore wide snapshot into packed engine: %v", err)
	}

	for op := 0; op < 2000; op++ {
		la := drv.Intn(pages)
		tag := uint64(1_000_000 + op)
		cw := wide2.Write(la, tag)
		cp := packed2.Write(la, tag)
		if cw != cp {
			t.Fatalf("post-restore op %d: cost diverged: wide %+v, packed %+v", op, cw, cp)
		}
	}
	comparePackedWide(t, wide2, packed2, "post-restore")
}

// TestNewAutoSelection verifies the automatic engine choice: packed device →
// packed engine, wide device → wide engine, packed device with an interval
// beyond the packed width → wide engine (graceful fallback).
func TestNewAutoSelection(t *testing.T) {
	const pages = 64
	end, err := pv.Generate(pv.Config{
		Pages: pages, Mean: packedTestEndurance, Sigma: 0.11 * packedTestEndurance,
		Model: pv.Gaussian, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	geom := pcm.Geometry{Pages: pages, PageSize: 4096, LineSize: 128, Ranks: 1, Banks: 1}
	wideDev, err := pcm.NewDevice(geom, pcm.DefaultTiming(), end)
	if err != nil {
		t.Fatal(err)
	}
	packedDev, err := pcm.NewPackedDevice(geom, pcm.DefaultTiming(), end)
	if err != nil {
		t.Fatal(err)
	}

	s, err := NewAuto(packedDev, DefaultConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.(*PackedEngine); !ok {
		t.Fatalf("NewAuto on packed device returned %T, want *PackedEngine", s)
	}
	if s.Name() != "TWL_swp" {
		t.Fatalf("packed engine Name = %q, want TWL_swp", s.Name())
	}

	s, err = NewAuto(wideDev, DefaultConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.(*Engine); !ok {
		t.Fatalf("NewAuto on wide device returned %T, want *Engine", s)
	}

	big := DefaultConfig(5)
	big.InterPairSwapInterval = MaxPackedIPSInterval + 1
	s, err = NewAuto(packedDev, big)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.(*Engine); !ok {
		t.Fatalf("NewAuto with oversized interval returned %T, want *Engine fallback", s)
	}
}

// TestTableBytesPackedWin verifies the MemoryReporter accounting and the
// headline claim: the packed TWL stack (tables + device) is at least 2×
// smaller per page than the wide stack.
func TestTableBytesPackedWin(t *testing.T) {
	const pages = 512
	cfg := DefaultConfig(11)
	wide, packed := newEnginePair(t, pages, cfg)

	var wr wl.MemoryReporter = wide
	var pr wl.MemoryReporter = packed
	wb, pb := wr.TableBytes(), pr.TableBytes()
	if wb != 53*pages {
		t.Errorf("wide TableBytes = %d, want %d (53 B/page)", wb, 53*pages)
	}
	if pb != 22*pages {
		t.Errorf("packed TableBytes = %d, want %d (22 B/page)", pb, 22*pages)
	}

	wideTotal := wb + wide.Device().Footprint().Total()
	packedTotal := pb + packed.Device().Footprint().Total()
	if ratio := float64(wideTotal) / float64(packedTotal); ratio < 2 {
		t.Errorf("stack footprint ratio wide/packed = %.2f (%d vs %d bytes), want >= 2",
			ratio, wideTotal, packedTotal)
	}
}
