// Command twlsim runs a single wear-leveling lifetime simulation and prints
// the outcome: scheme, workload (attack or PARSEC benchmark), normalized
// lifetime, extrapolated years, swap overhead and wear statistics.
//
// Examples:
//
//	twlsim -scheme TWL_swp -attack inconsistent
//	twlsim -scheme BWL -bench canneal -pages 4096 -endurance 40000
//	twlsim -scheme TWL_swp -attack scan -metrics     # append a metrics report
//	twlsim -scheme SR -attack repeat -trace run.jsonl -trace-every 50000
//	twlsim -bench vips -pprof prof                   # prof.cpu.pprof + prof.heap.pprof
//	twlsim -scheme SR -attack repeat -checkpoint run.ckpt         # crash-safe run
//	twlsim -scheme SR -attack repeat -checkpoint run.ckpt -resume # pick it back up
//	twlsim -config                      # print the simulated configuration
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"twl"
	"twl/internal/attack"
	"twl/internal/cliutil"
	"twl/internal/obs"
	"twl/internal/pcm"
	"twl/internal/report"
	"twl/internal/sim"
	"twl/internal/trace"
)

func main() {
	var (
		scheme     = flag.String("scheme", "TWL_swp", "wear-leveling scheme (see -config for the list)")
		attackMode = flag.String("attack", "", "attack workload: repeat, random, scan, inconsistent")
		bench      = flag.String("bench", "", "PARSEC benchmark workload (Table 2 name)")
		pages      = flag.Int("pages", 0, "simulated pages (default: DefaultSystem)")
		endurance  = flag.Float64("endurance", 0, "mean endurance in writes (default: DefaultSystem)")
		seed       = flag.Uint64("seed", 1, "simulation seed")
		bandwidth  = flag.Float64("bw", twl.Fig6AttackBandwidth, "write bandwidth in B/s for year conversion")
		config     = flag.Bool("config", false, "print the simulated configuration and exit")
		paranoid   = flag.Bool("paranoid", false, "check scheme invariants during the run")
		heatmap    = flag.Bool("heatmap", false, "print the final wear heatmap (wear/endurance per page)")
		metrics    = flag.Bool("metrics", false, "print a metrics report (request counters, latency histogram) after the run")
		traceFile  = flag.String("trace", "", "write structured JSONL progress events to this file")
		traceEvery = flag.Uint64("trace-every", 0, "emit a trace progress event every N demand writes (0: default)")
		pprofPfx   = flag.String("pprof", "", "capture CPU+heap profiles to PREFIX.cpu.pprof / PREFIX.heap.pprof")
		ckptFile   = flag.String("checkpoint", "", "periodically checkpoint the run to this file (crash-safe, atomically replaced)")
		ckptEvery  = flag.Uint64("checkpoint-every", 0, "checkpoint every N demand writes (0: default cadence)")
		resume     = flag.Bool("resume", false, "resume from the -checkpoint file instead of starting fresh")
		spareFrac  = flag.Float64("spare-frac", 0, "provision this fraction of pages as spares and retire failed pages onto them (0: stop at first failure)")
		retireThr  = flag.Float64("retire-threshold", 0, "with -spare-frac, end the run once this fraction of pages is retired (0: run until the pool is exhausted)")
		curveFile  = flag.String("curve", "", "with -spare-frac, write the capacity-vs-writes curve to this CSV file")
	)
	flag.Parse()

	if *config {
		printConfig()
		return
	}
	cliutil.Check("twlsim", cliutil.FirstError(
		cliutil.NoArgs(flag.Args()),
		cliutil.NonNegativeInt("-pages", *pages),
		cliutil.NonNegativeFloat("-endurance", *endurance),
		cliutil.Exclusive("-attack", *attackMode != "", "-bench", *bench != ""),
		cliutil.Requires("-resume", *resume, "-checkpoint", *ckptFile != ""),
		cliutil.Fraction("-spare-frac", *spareFrac, true),
		cliutil.Fraction("-retire-threshold", *retireThr, true),
		cliutil.Requires("-retire-threshold", *retireThr != 0, "-spare-frac", *spareFrac != 0),
		cliutil.Requires("-curve", *curveFile != "", "-spare-frac", *spareFrac != 0),
	))

	if *pprofPfx != "" {
		stop, err := obs.StartProfile(*pprofPfx)
		fatal(err)
		defer func() { fatal(stop()) }()
	}

	sys := twl.DefaultSystem(*seed)
	if *pages > 0 {
		sys.Pages = *pages
	}
	if *endurance > 0 {
		sys.MeanEndurance = *endurance
	}
	var opts []twl.SchemeOption
	if *spareFrac > 0 {
		sys = sys.WithSpareFraction(*spareFrac)
		opts = append(opts, twl.WithRetirement(twl.RetireConfig{CapacityThreshold: *retireThr}))
	}
	dev, err := sys.NewDevice()
	fatal(err)
	s, err := twl.NewScheme(*scheme, dev, *seed+7, opts...)
	fatal(err)

	var src sim.Source
	var ideal float64
	switch {
	case *attackMode != "":
		mode, err := twl.ParseAttackMode(*attackMode)
		fatal(err)
		st, err := attack.New(attack.DefaultConfig(mode, sys.Pages, *seed+11))
		fatal(err)
		src = sim.FromAttack(st)
		ideal = twl.IdealYears(*bandwidth)
		fmt.Printf("workload: %s attack at %.3g B/s (ideal lifetime %.2f years)\n",
			mode, *bandwidth, ideal)
	default:
		name := *bench
		if name == "" {
			name = "canneal"
		}
		b, err := trace.BenchmarkByName(name)
		fatal(err)
		g, err := trace.NewSynthetic(b, sys.Pages, *seed+13)
		fatal(err)
		src = sim.FromWorkload(g)
		ideal = twl.IdealYears(b.WriteBandwidthMBps * 1e6)
		fmt.Printf("workload: PARSEC %s at %.0f MB/s (ideal lifetime %.1f years, footprint %d pages)\n",
			b.Name, b.WriteBandwidthMBps, ideal, g.Footprint())
	}

	cfg := sim.LifetimeConfig{}
	if *paranoid {
		cfg.CheckEvery = 100000
	}
	if *metrics {
		cfg.Metrics = twl.NewMetrics()
	}
	if *traceFile != "" {
		// A resumed run continues the interrupted run's event stream, so the
		// trace file is appended to rather than truncated.
		mode := os.O_CREATE | os.O_WRONLY | os.O_TRUNC
		if *resume {
			mode = os.O_CREATE | os.O_WRONLY | os.O_APPEND
		}
		f, err := os.OpenFile(*traceFile, mode, 0o644)
		fatal(err)
		defer func() { fatal(f.Close()) }()
		tr := twl.NewRunTracer(f, *traceEvery)
		cfg.Trace = tr
		defer func() { fatal(tr.Err()) }()
	}
	if *ckptFile != "" {
		cfg.Checkpoint = &sim.CheckpointConfig{
			Path:   *ckptFile,
			Every:  *ckptEvery,
			Resume: *resume,
		}
	}
	res, err := sim.RunLifetime(s, src, cfg)
	fatal(err)

	tb := report.NewTable(fmt.Sprintf("Lifetime simulation: %s over %d pages (mean endurance %.3g)",
		res.Scheme, sys.Pages, sys.MeanEndurance), "metric", "value")
	tb.AddRowf("demand writes", fmt.Sprintf("%d", res.DemandWrites))
	tb.AddRowf("device writes", fmt.Sprintf("%d", res.DeviceWrites))
	tb.AddRowf("swap writes", fmt.Sprintf("%d", res.SwapWrites))
	tb.AddRowf("swap/write ratio", fmt.Sprintf("%.4f", float64(res.SwapWrites)/float64(max64(res.DemandWrites, 1))))
	tb.AddRowf("normalized lifetime", fmt.Sprintf("%.4f", res.Normalized))
	tb.AddRowf("lifetime (years)", fmt.Sprintf("%.2f", res.Years(ideal)))
	switch {
	case res.Capped:
		tb.AddRowf("note", "run hit the write cap without a failure")
	case *spareFrac > 0:
		// FailedPage is the failure the spare pool could no longer absorb —
		// often a spare index (>= sys.Pages).
		tb.AddRowf("final failed page", fmt.Sprintf("%d (endurance %d)", res.FailedPage, dev.Endurance(res.FailedPage)))
	default:
		tb.AddRowf("first failed page", fmt.Sprintf("%d (endurance %d)", res.FailedPage, dev.Endurance(res.FailedPage)))
	}
	if *spareFrac > 0 {
		tb.AddRowf("spare pool", fmt.Sprintf("%d pages (%.1f%% of %d)", res.SparePages, *spareFrac*100, sys.Pages))
		tb.AddRowf("retired pages", fmt.Sprintf("%d", res.RetiredPages))
		tb.AddRowf("spares used", fmt.Sprintf("%d / %d", res.SparesUsed, res.SparePages))
		switch {
		case res.FailCause != nil:
			tb.AddRowf("end cause", res.FailCause.Error())
		case res.Capped:
			tb.AddRowf("end cause", "write cap")
		}
	}
	fatal(tb.Render(os.Stdout))

	if *curveFile != "" {
		cs, ok := twl.CapacityOf(s)
		if !ok {
			fatal(fmt.Errorf("scheme reports no capacity curve"))
		}
		fatal(writeCurve(*curveFile, cs))
		fmt.Printf("\ncapacity curve: %d retirement events written to %s\n", len(cs.Curve), *curveFile)
	}

	if *heatmap {
		fractions := make([]float64, dev.Pages())
		for p := 0; p < dev.Pages(); p++ {
			fractions[p] = float64(dev.Wear(p)) / float64(dev.Endurance(p))
		}
		fmt.Println()
		fatal(report.NewHeatmap("Wear / endurance by physical page", fractions, 64).Render(os.Stdout))
	}

	if cfg.Metrics != nil {
		fmt.Println()
		fatal(cfg.Metrics.WriteText(os.Stdout))
	}
}

func printConfig() {
	sys := twl.DefaultSystem(1)
	geom := pcm.DefaultGeometry()
	timing := pcm.DefaultTiming()
	tb := report.NewTable("Simulated configuration (Table 1)", "parameter", "value")
	tb.AddRowf("full-size PCM", fmt.Sprintf("%d GB, %d B pages, %d B lines, %d ranks, %d banks",
		geom.Capacity()>>30, geom.PageSize, geom.LineSize, geom.Ranks, geom.Banks))
	tb.AddRowf("read/set/reset latency", fmt.Sprintf("%d/%d/%d cycles at %.0f GHz",
		timing.ReadCycles, timing.SetCycles, timing.ResetCycles, timing.ClockHz/1e9))
	tb.AddRowf("endurance model", fmt.Sprintf("Gaussian, mean 1e8, sigma 11%% (scaled: mean %.3g over %d pages)",
		sys.MeanEndurance, sys.Pages))
	tb.AddRowf("TWL inter-pair swap interval", "128")
	tb.AddRowf("TWL toss-up interval", "32")
	tb.AddRowf("RNG / control / table latency", "4 / 5 / 10 cycles")
	tb.AddRowf("schemes", strings.Join(twl.SchemeNames(), ", "))
	fatal(tb.Render(os.Stdout))
	fmt.Println()
	for _, d := range twl.SchemeDocs() {
		fmt.Println("  " + d)
	}
}

// writeCurve dumps the capacity-vs-writes curve as CSV: one row per
// retirement event, at the demand-write count where it fired.
func writeCurve(path string, cs twl.CapacityStats) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	if _, err := fmt.Fprintln(f, "demand_writes,retired_pages,spares_used"); err != nil {
		return err
	}
	for _, p := range cs.Curve {
		if _, err := fmt.Fprintf(f, "%d,%d,%d\n", p.DemandWrites, p.Retired, p.SparesUsed); err != nil {
			return err
		}
	}
	return nil
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "twlsim:", err)
		os.Exit(1)
	}
}
