package trace

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"testing/quick"
)

func TestTextRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	recs := []Record{{Write, 0}, {Read, 42}, {Write, 1 << 40}, {Read, 7}}
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != len(recs) {
		t.Fatalf("Count = %d, want %d", w.Count(), len(recs))
	}
	r := NewReader(&buf)
	for i, want := range recs {
		got, err := r.Read()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("record %d = %+v, want %+v", i, got, want)
		}
	}
	if _, err := r.Read(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestTextReaderSkipsCommentsAndBlanks(t *testing.T) {
	in := "# header\n\nW 5\n  \n# note\nR 6\n"
	r := NewReader(strings.NewReader(in))
	got1, err := r.Read()
	if err != nil || got1 != (Record{Write, 5}) {
		t.Fatalf("got %+v, %v", got1, err)
	}
	got2, err := r.Read()
	if err != nil || got2 != (Record{Read, 6}) {
		t.Fatalf("got %+v, %v", got2, err)
	}
}

func TestTextReaderErrors(t *testing.T) {
	for _, in := range []string{"X 5\n", "W\n", "W abc\n", "W 1 2\n"} {
		r := NewReader(strings.NewReader(in))
		if _, err := r.Read(); err == nil {
			t.Errorf("input %q: expected error", in)
		}
	}
}

func TestWriterRejectsBadOp(t *testing.T) {
	w := NewWriter(io.Discard)
	if err := w.Write(Record{Op: 'Z'}); err == nil {
		t.Fatal("bad op accepted")
	}
	b := NewBinaryWriter(io.Discard)
	if err := b.Write(Record{Op: 'Z'}); err == nil {
		t.Fatal("binary bad op accepted")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf)
	recs := []Record{{Write, 0}, {Read, 127}, {Write, 128}, {Read, 1<<63 - 1}, {Write, 300}}
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewBinaryReader(&buf)
	for i, want := range recs {
		got, err := r.Read()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("record %d = %+v, want %+v", i, got, want)
		}
	}
	if _, err := r.Read(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

// TestBinaryRoundTripProperty: arbitrary address sequences survive the
// binary codec bit-exactly.
func TestBinaryRoundTripProperty(t *testing.T) {
	check := func(addrs []uint64) bool {
		var buf bytes.Buffer
		w := NewBinaryWriter(&buf)
		for i, a := range addrs {
			op := Read
			if i%2 == 0 {
				op = Write
			}
			if w.Write(Record{Op: op, Addr: a}) != nil {
				return false
			}
		}
		if w.Flush() != nil {
			return false
		}
		r := NewBinaryReader(&buf)
		for i, a := range addrs {
			got, err := r.Read()
			if err != nil || got.Addr != a {
				return false
			}
			wantOp := Read
			if i%2 == 0 {
				wantOp = Write
			}
			if got.Op != wantOp {
				return false
			}
		}
		_, err := r.Read()
		return err == io.EOF
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBinaryReaderCorruptOpcode(t *testing.T) {
	r := NewBinaryReader(bytes.NewReader([]byte{0xFF, 0x01}))
	if _, err := r.Read(); err == nil {
		t.Fatal("corrupt opcode accepted")
	}
}

func TestBinaryReaderTruncatedVarint(t *testing.T) {
	r := NewBinaryReader(bytes.NewReader([]byte{'W', 0x80}))
	if _, err := r.Read(); err != io.ErrUnexpectedEOF {
		t.Fatalf("want ErrUnexpectedEOF, got %v", err)
	}
}

func TestBinarySmallerThanText(t *testing.T) {
	var tb, bb bytes.Buffer
	tw := NewWriter(&tb)
	bw := NewBinaryWriter(&bb)
	for i := 0; i < 1000; i++ {
		rec := Record{Op: Write, Addr: uint64(i * 1000)}
		tw.Write(rec)
		bw.Write(rec)
	}
	tw.Flush()
	bw.Flush()
	if bb.Len() >= tb.Len() {
		t.Fatalf("binary %d bytes not smaller than text %d", bb.Len(), tb.Len())
	}
}
