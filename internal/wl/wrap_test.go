package wl

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"twl/internal/pcm"
)

// capScheme is fakeScheme plus a configurable subset of the optional
// interfaces, built by capBuild from a capability mask. Each optional method
// flips a probe flag so tests can verify which implementation ran.
type capScheme struct {
	fakeScheme
	checked, snapped, restored, ran, swept bool
}

func (c *capScheme) CheckInvariants() error { c.checked = true; return nil }
func (c *capScheme) Snapshot(io.Writer) error {
	c.snapped = true
	return nil
}
func (c *capScheme) Restore(io.Reader) error { c.restored = true; return nil }
func (c *capScheme) WriteRun(la int, tag uint64, n int) (Cost, int) {
	c.ran = true
	return Cost{DeviceWrites: 1}, n
}
func (c *capScheme) WriteSweep(la int, tag uint64, n int) (Cost, int) {
	c.swept = true
	return Cost{DeviceWrites: 1}, n
}

const (
	capChecker = 1 << iota
	capSnapshotter
	capRunWriter
	capSweepWriter
)

// capBuild returns a scheme implementing exactly the optional interfaces in
// mask. The full implementation lives on *capScheme; narrower capability
// sets are carved out with the same embedding trick Wrap uses.
func capBuild(dev *pcm.Device, mask int) (Scheme, *capScheme) {
	c := &capScheme{fakeScheme: fakeScheme{name: "cap", dev: dev}}
	var s Scheme = &c.fakeScheme
	switch mask {
	case 0:
	case capChecker:
		s = struct {
			Scheme
			Checker
		}{s, c}
	case capSnapshotter:
		s = struct {
			Scheme
			Snapshotter
		}{s, c}
	case capChecker | capSnapshotter:
		s = struct {
			Scheme
			Checker
			Snapshotter
		}{s, c, c}
	case capRunWriter:
		s = struct {
			Scheme
			RunWriter
		}{s, c}
	case capChecker | capRunWriter:
		s = struct {
			Scheme
			Checker
			RunWriter
		}{s, c, c}
	case capSnapshotter | capRunWriter:
		s = struct {
			Scheme
			Snapshotter
			RunWriter
		}{s, c, c}
	case capChecker | capSnapshotter | capRunWriter:
		s = struct {
			Scheme
			Checker
			Snapshotter
			RunWriter
		}{s, c, c, c}
	case capSweepWriter:
		s = struct {
			Scheme
			SweepWriter
		}{s, c}
	case capChecker | capSweepWriter:
		s = struct {
			Scheme
			Checker
			SweepWriter
		}{s, c, c}
	case capSnapshotter | capSweepWriter:
		s = struct {
			Scheme
			Snapshotter
			SweepWriter
		}{s, c, c}
	case capChecker | capSnapshotter | capSweepWriter:
		s = struct {
			Scheme
			Checker
			Snapshotter
			SweepWriter
		}{s, c, c, c}
	case capRunWriter | capSweepWriter:
		s = struct {
			Scheme
			RunWriter
			SweepWriter
		}{s, c, c}
	case capChecker | capRunWriter | capSweepWriter:
		s = struct {
			Scheme
			Checker
			RunWriter
			SweepWriter
		}{s, c, c, c}
	case capSnapshotter | capRunWriter | capSweepWriter:
		s = struct {
			Scheme
			Snapshotter
			RunWriter
			SweepWriter
		}{s, c, c, c}
	default:
		s = c
	}
	return s, c
}

// capsOf reports which optional interfaces a scheme exposes, as a mask.
func capsOf(s Scheme) int {
	mask := 0
	if _, ok := s.(Checker); ok {
		mask |= capChecker
	}
	if _, ok := s.(Snapshotter); ok {
		mask |= capSnapshotter
	}
	if _, ok := s.(RunWriter); ok {
		mask |= capRunWriter
	}
	if _, ok := s.(SweepWriter); ok {
		mask |= capSweepWriter
	}
	return mask
}

// passBody is a decorator body with no capabilities of its own.
type passBody struct{ Scheme }

// fullBody is a decorator body implementing every optional interface, with
// probes to verify that Wrap prefers the body's implementations.
type fullBody struct {
	Scheme
	checked, snapped, ran, swept bool
}

func (b *fullBody) CheckInvariants() error   { b.checked = true; return nil }
func (b *fullBody) Snapshot(io.Writer) error { b.snapped = true; return nil }
func (b *fullBody) Restore(io.Reader) error  { return nil }
func (b *fullBody) WriteRun(la int, tag uint64, n int) (Cost, int) {
	b.ran = true
	return Cost{DeviceWrites: 1}, n
}
func (b *fullBody) WriteSweep(la int, tag uint64, n int) (Cost, int) {
	b.swept = true
	return Cost{DeviceWrites: 1}, n
}

// TestWrapPreservesExactCapabilities: for all 16 capability combinations of
// the inner scheme, the composite exposes exactly the inner's set — whether
// the body implements none of the optional interfaces (forwarding) or all
// of them (nothing invented beyond the inner's set).
func TestWrapPreservesExactCapabilities(t *testing.T) {
	dev := testDevice(t, 8)
	for mask := 0; mask < 16; mask++ {
		inner, _ := capBuild(dev, mask)
		if got := capsOf(inner); got != mask {
			t.Fatalf("capBuild(%04b) built capability set %04b", mask, got)
		}
		for _, tc := range []struct {
			name string
			body Scheme
		}{
			{"passBody", &passBody{Scheme: inner}},
			{"fullBody", &fullBody{Scheme: inner}},
		} {
			w := Wrap(tc.body, inner)
			if got := capsOf(w); got != mask {
				t.Errorf("mask %04b, %s: composite capability set %04b", mask, tc.name, got)
			}
		}
	}
}

// TestWrapForwardsToInner: when the body lacks an optional method the
// composite forwards to the inner scheme's implementation.
func TestWrapForwardsToInner(t *testing.T) {
	dev := testDevice(t, 8)
	inner, probe := capBuild(dev, capChecker|capSnapshotter|capRunWriter|capSweepWriter)
	w := Wrap(&passBody{Scheme: inner}, inner)
	if err := w.(Checker).CheckInvariants(); err != nil || !probe.checked {
		t.Fatal("CheckInvariants did not reach the inner scheme")
	}
	if err := w.(Snapshotter).Snapshot(&bytes.Buffer{}); err != nil || !probe.snapped {
		t.Fatal("Snapshot did not reach the inner scheme")
	}
	if err := w.(Snapshotter).Restore(&bytes.Buffer{}); err != nil || !probe.restored {
		t.Fatal("Restore did not reach the inner scheme")
	}
	if _, n := w.(RunWriter).WriteRun(0, 1, 3); n != 3 || !probe.ran {
		t.Fatal("WriteRun did not reach the inner scheme")
	}
	if _, n := w.(SweepWriter).WriteSweep(0, 1, 3); n != 3 || !probe.swept {
		t.Fatal("WriteSweep did not reach the inner scheme")
	}
}

// TestWrapPrefersBodyOverrides: when both body and inner implement an
// optional interface, the composite dispatches to the body.
func TestWrapPrefersBodyOverrides(t *testing.T) {
	dev := testDevice(t, 8)
	inner, probe := capBuild(dev, capChecker|capSnapshotter|capRunWriter|capSweepWriter)
	body := &fullBody{Scheme: inner}
	w := Wrap(body, inner)
	w.(Checker).CheckInvariants()
	w.(Snapshotter).Snapshot(&bytes.Buffer{})
	w.(RunWriter).WriteRun(0, 1, 3)
	w.(SweepWriter).WriteSweep(0, 1, 3)
	if !body.checked || !body.snapped || !body.ran || !body.swept {
		t.Fatalf("body overrides skipped: %+v", body)
	}
	if probe.checked || probe.snapped || probe.ran || probe.swept {
		t.Fatalf("inner reached despite body overrides: checked=%v snapped=%v ran=%v swept=%v",
			probe.checked, probe.snapped, probe.ran, probe.swept)
	}
}

// TestWrapLogicalPages: composites always expose LogicalPages, forwarding
// the inner scheme's value when it has one and falling back to the device
// page count otherwise.
func TestWrapLogicalPages(t *testing.T) {
	dev := testDevice(t, 8)
	plain, _ := capBuild(dev, 0)
	w := Wrap(&passBody{Scheme: plain}, plain)
	lp, ok := w.(interface{ LogicalPages() int })
	if !ok {
		t.Fatal("composite does not expose LogicalPages")
	}
	if got := lp.LogicalPages(); got != 8 {
		t.Fatalf("LogicalPages fallback = %d, want device pages 8", got)
	}
	scoped := &scopedScheme{Scheme: plain}
	w = Wrap(&passBody{Scheme: scoped}, scoped)
	if got := w.(interface{ LogicalPages() int }).LogicalPages(); got != 7 {
		t.Fatalf("LogicalPages = %d, want inner's 7", got)
	}
}

// scopedScheme reserves one physical page for itself, StartGap-style.
type scopedScheme struct{ Scheme }

func (s *scopedScheme) LogicalPages() int { return s.Device().Pages() - 1 }

// TestWrapUnwrapChain: Unwrap exposes the decorator body so stack-walking
// helpers can find extension interfaces the composite hides.
func TestWrapUnwrapChain(t *testing.T) {
	dev := testDevice(t, 8)
	inner, _ := capBuild(dev, capChecker)
	body := &reporterBody{Scheme: inner}
	w := Wrap(body, inner)
	if _, ok := w.(CapacityReporter); ok {
		t.Fatal("composite leaks a non-preserved extension interface directly")
	}
	u, ok := w.(Unwrapper)
	if !ok {
		t.Fatal("composite does not expose Unwrap")
	}
	if u.Body() != Scheme(body) {
		t.Fatal("Body did not return the decorator body")
	}
	if u.Unwrap() != inner {
		t.Fatal("Unwrap did not return the wrapped scheme")
	}
	r, ok := AsCapacityReporter(w)
	if !ok {
		t.Fatal("AsCapacityReporter did not find the body's reporter")
	}
	if got := r.CapacityStats(); got.SparePages != 42 {
		t.Fatalf("reporter stats = %+v, want SparePages 42", got)
	}
	// A second layer on top still reaches the reporter.
	outer := Wrap(&passBody{Scheme: w}, w)
	if _, ok := AsCapacityReporter(outer); !ok {
		t.Fatal("AsCapacityReporter did not walk through two layers")
	}
	// A bare scheme has no reporter and no Unwrap link.
	if _, ok := AsCapacityReporter(inner); ok {
		t.Fatal("AsCapacityReporter invented a reporter on a bare scheme")
	}
}

// reporterBody is a decorator body with a CapacityReporter extension.
type reporterBody struct{ Scheme }

func (b *reporterBody) CapacityStats() CapacityStats { return CapacityStats{SparePages: 42} }

// TestComposeAppliesInOrder: first option innermost.
func TestComposeAppliesInOrder(t *testing.T) {
	dev := testDevice(t, 8)
	inner, _ := capBuild(dev, 0)
	var order []string
	tag := func(name string) Option {
		return WithDecorator(func(s Scheme) (Scheme, error) {
			order = append(order, name)
			return Wrap(&passBody{Scheme: s}, s), nil
		})
	}
	s, err := Compose(inner, tag("a"), tag("b"))
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Fatalf("decorator order = %v, want [a b]", order)
	}
	if s.Name() != "cap" {
		t.Fatalf("composed scheme name = %q", s.Name())
	}
}

// TestComposeErrors: option and wrapper failures surface.
func TestComposeErrors(t *testing.T) {
	dev := testDevice(t, 8)
	inner, _ := capBuild(dev, 0)
	if _, err := Compose(inner, WithDecorator(nil)); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("nil wrapper err = %v, want ErrBadConfig", err)
	}
	if _, err := Compose(inner, WithInstrumentation(nil)); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("nil registry err = %v, want ErrBadConfig", err)
	}
	boom := errors.New("boom")
	_, err := Compose(inner, WithDecorator(func(Scheme) (Scheme, error) { return nil, boom }))
	if !errors.Is(err, boom) {
		t.Fatalf("wrapper failure err = %v, want boom", err)
	}
}

// TestRegistryBuildWithOptions: Build is New plus decorator composition.
func TestRegistryBuildWithOptions(t *testing.T) {
	r := NewRegistry()
	r.MustAdd(Registration{Name: "Fake", New: fakeFactory("Fake")})
	dev := testDevice(t, 8)
	wrapped := false
	s, err := r.Build("fake", dev, 1, WithDecorator(func(s Scheme) (Scheme, error) {
		wrapped = true
		return Wrap(&passBody{Scheme: s}, s), nil
	}))
	if err != nil {
		t.Fatal(err)
	}
	if !wrapped || s.Name() != "Fake" {
		t.Fatalf("Build did not apply the decorator (wrapped=%v, name=%q)", wrapped, s.Name())
	}
	if _, err := r.Build("bogus", dev, 1); !errors.Is(err, ErrUnknownScheme) {
		t.Fatalf("Build unknown scheme err = %v", err)
	}
}
