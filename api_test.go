package twl

import (
	"bufio"
	"bytes"
	"errors"
	"strings"
	"testing"
)

// TestSchemeNamesRoundTrip pins the registry contract: every name listed by
// SchemeNames constructs via NewScheme, and the scheme reports that exact
// name back. This is the consistency the old hardcoded switch could not
// guarantee (SR2 was constructible but unlisted).
func TestSchemeNamesRoundTrip(t *testing.T) {
	names := SchemeNames()
	if len(names) == 0 {
		t.Fatal("no registered schemes")
	}
	sys := SmallSystem(11)
	seen := map[string]bool{}
	for _, name := range names {
		if seen[name] {
			t.Fatalf("SchemeNames lists %q twice", name)
		}
		seen[name] = true
		dev, err := sys.NewDevice()
		if err != nil {
			t.Fatal(err)
		}
		s, err := NewScheme(name, dev, 3)
		if err != nil {
			t.Fatalf("NewScheme(%q): %v", name, err)
		}
		if s.Name() != name {
			t.Errorf("NewScheme(%q).Name() = %q; registry and scheme disagree", name, s.Name())
		}
	}
	for _, required := range []string{"TWL_swp", "SR2", "OD3P", "RBSG", "NOWL"} {
		if !seen[required] {
			t.Errorf("SchemeNames() omits %s", required)
		}
	}
}

func TestSchemeDocsCoverAllSchemes(t *testing.T) {
	docs := SchemeDocs()
	if len(docs) != len(SchemeNames()) {
		t.Fatalf("SchemeDocs() has %d entries, SchemeNames() %d", len(docs), len(SchemeNames()))
	}
	for i, name := range SchemeNames() {
		if !strings.HasPrefix(docs[i], name) {
			t.Errorf("doc %d = %q does not start with scheme name %q", i, docs[i], name)
		}
	}
}

func TestNewSchemeUnknownError(t *testing.T) {
	dev, err := SmallSystem(1).NewDevice()
	if err != nil {
		t.Fatal(err)
	}
	_, err = NewScheme("no-such-scheme", dev, 1)
	if !errors.Is(err, ErrUnknownScheme) {
		t.Fatalf("err = %v, want ErrUnknownScheme", err)
	}
	if !strings.Contains(err.Error(), "TWL_swp") {
		t.Fatalf("error should list known schemes: %v", err)
	}
}

func TestSystemConfigValidate(t *testing.T) {
	good := DefaultSystem(1)
	if err := good.Validate(); err != nil {
		t.Fatalf("DefaultSystem invalid: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*SystemConfig)
	}{
		{"zero pages", func(c *SystemConfig) { c.Pages = 0 }},
		{"negative page size", func(c *SystemConfig) { c.PageSize = -1 }},
		{"zero endurance", func(c *SystemConfig) { c.MeanEndurance = 0 }},
		{"sigma one", func(c *SystemConfig) { c.SigmaFraction = 1 }},
	}
	for _, tc := range cases {
		c := DefaultSystem(1)
		tc.mutate(&c)
		err := c.Validate()
		if !errors.Is(err, ErrBadConfig) {
			t.Errorf("%s: Validate() = %v, want ErrBadConfig", tc.name, err)
		}
		if _, err := c.NewDevice(); !errors.Is(err, ErrBadConfig) {
			t.Errorf("%s: NewDevice() = %v, want ErrBadConfig", tc.name, err)
		}
	}
}

// TestNewSchemeBadConfigPropagates checks that a scheme constructor
// rejecting its derived configuration surfaces as ErrBadConfig through the
// facade. Security Refresh requires a power-of-two page count.
func TestNewSchemeBadConfigPropagates(t *testing.T) {
	sys := SmallSystem(1)
	sys.Pages = 300 // not a power of two
	dev, err := sys.NewDevice()
	if err != nil {
		t.Fatal(err)
	}
	_, err = NewScheme("SR", dev, 1)
	if !errors.Is(err, ErrBadConfig) {
		t.Fatalf("SR over 300 pages: err = %v, want ErrBadConfig", err)
	}
}

// TestRunLifetimeWithObservability is the ISSUE's acceptance scenario: TWL
// under an attack workload on the small system must produce a nonzero
// blocked-request counter and a latency histogram covering every request.
func TestRunLifetimeWithObservability(t *testing.T) {
	sys := SmallSystem(7)
	dev, err := sys.NewDevice()
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewScheme("TWL_swp", dev, 7)
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewAttack(AttackInconsistent, sys.Pages, 7)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewMetrics()
	var traceBuf bytes.Buffer
	tr := NewRunTracer(&traceBuf, 10_000)
	res, err := RunLifetimeWith(s, src, LifetimeConfig{Metrics: reg, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Err() != nil {
		t.Fatalf("tracer error: %v", tr.Err())
	}

	blocked := reg.Counter("twl_sim_blocked_requests_total").Value()
	if blocked == 0 {
		t.Fatal("blocked-request counter is zero; TWL under attack must block some requests")
	}
	writes := reg.Counter("twl_sim_requests_total", MetricLabel("op", "write")).Value()
	if writes != res.DemandWrites {
		t.Fatalf("write counter %d != demand writes %d", writes, res.DemandWrites)
	}
	hist := reg.Histogram("twl_sim_request_cycles", nil).Snapshot()
	if hist.Count != writes {
		t.Fatalf("latency histogram count %d != requests %d", hist.Count, writes)
	}
	if hist.Sum <= 0 {
		t.Fatal("latency histogram sum is zero")
	}

	// The trace must hold a start event, periodic progress and an end event.
	var events []string
	sc := bufio.NewScanner(&traceBuf)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, `{"seq":`) {
			t.Fatalf("trace line is not a seq-ordered JSON object: %s", line)
		}
		switch {
		case strings.Contains(line, `"event":"start"`):
			events = append(events, "start")
		case strings.Contains(line, `"event":"progress"`):
			events = append(events, "progress")
		case strings.Contains(line, `"event":"end"`):
			events = append(events, "end")
		}
	}
	if len(events) < 3 || events[0] != "start" || events[len(events)-1] != "end" {
		t.Fatalf("trace events %v: want start, progress..., end", events)
	}
	progress := 0
	for _, e := range events {
		if e == "progress" {
			progress++
		}
	}
	if progress == 0 {
		t.Fatalf("no progress events in %v", events)
	}

	// The same registry must render in all three export formats.
	for _, render := range []func(*bytes.Buffer) error{
		func(b *bytes.Buffer) error { return reg.WriteText(b) },
		func(b *bytes.Buffer) error { return reg.WriteJSON(b) },
		func(b *bytes.Buffer) error { return reg.WritePrometheus(b) },
	} {
		var b bytes.Buffer
		if err := render(&b); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(b.String(), "twl_sim_blocked_requests_total") {
			t.Fatalf("export missing blocked counter:\n%s", b.String())
		}
	}
}

// TestInstrumentFacade verifies the per-scheme decorator through the public
// API.
func TestInstrumentFacade(t *testing.T) {
	sys := SmallSystem(9)
	dev, err := sys.NewDevice()
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewScheme("NOWL", dev, 1)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewMetrics()
	s = Instrument(s, reg)
	for i := 0; i < 5; i++ {
		s.Write(i, uint64(i))
	}
	s.Read(0)
	got := reg.Counter("twl_scheme_requests_total",
		MetricLabel("scheme", "NOWL"), MetricLabel("op", "write")).Value()
	if got != 5 {
		t.Fatalf("instrumented write counter = %d, want 5", got)
	}
}
