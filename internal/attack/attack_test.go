package attack

import (
	"testing"
)

func mustNew(t *testing.T, cfg Config) Stream {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestModeString(t *testing.T) {
	want := map[Mode]string{Repeat: "repeat", Random: "random", Scan: "scan", Inconsistent: "inconsistent"}
	for m, w := range want {
		if m.String() != w {
			t.Errorf("%v.String() = %q", int(m), m.String())
		}
	}
	if Mode(99).String() == "" {
		t.Error("unknown mode string empty")
	}
	if len(Modes()) != 4 {
		t.Error("Modes() should list the four Figure 6 attacks")
	}
}

func TestValidation(t *testing.T) {
	if _, err := New(Config{Mode: Repeat, Pages: 0}); err == nil {
		t.Error("zero pages accepted")
	}
	if _, err := New(Config{Mode: Inconsistent, Pages: 8, TargetPages: 1}); err == nil {
		t.Error("single-target inconsistent attack accepted")
	}
	if _, err := New(Config{Mode: Mode(42), Pages: 8}); err == nil {
		t.Error("unknown mode accepted")
	}
}

func TestRepeatFixesAddress(t *testing.T) {
	s := mustNew(t, DefaultConfig(Repeat, 64, 1))
	for i := 0; i < 100; i++ {
		if a := s.Next(Feedback{}); a != 0 {
			t.Fatalf("repeat emitted %d", a)
		}
	}
}

func TestRandomCoversSpace(t *testing.T) {
	s := mustNew(t, DefaultConfig(Random, 16, 1))
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		a := s.Next(Feedback{})
		if a < 0 || a >= 16 {
			t.Fatalf("random address %d out of range", a)
		}
		seen[a] = true
	}
	if len(seen) != 16 {
		t.Fatalf("random mode touched only %d/16 addresses", len(seen))
	}
}

func TestScanIsConsecutive(t *testing.T) {
	s := mustNew(t, DefaultConfig(Scan, 4, 1))
	want := []int{0, 1, 2, 3, 0, 1}
	for i, w := range want {
		if a := s.Next(Feedback{}); a != w {
			t.Fatalf("scan step %d = %d, want %d", i, a, w)
		}
	}
}

func TestInconsistentWeightsAscendWithColdHalf(t *testing.T) {
	cfg := DefaultConfig(Inconsistent, 1024, 1)
	cfg.TargetPages = 8
	s := mustNew(t, cfg).(*inconsistentStream)
	// Count burst lengths of the first pass: the lower half of the targets
	// must be untouched (maximally cold) and the upper half strictly
	// ascending up to the 90-write bursts (W1 < Wk < WN, Section 3.2).
	counts := map[int]int{}
	for i := 0; i < s.passLen; i++ {
		counts[s.Next(Feedback{})]++
	}
	for i := 0; i < 4; i++ {
		if counts[i] != 0 {
			t.Fatalf("cold-half address %d written %d times, want 0", i, counts[i])
		}
	}
	for i := 4; i < 7; i++ {
		if counts[i] >= counts[i+1] {
			t.Fatalf("hot-half weights not ascending: %v", counts)
		}
	}
	if counts[7] != 90 {
		t.Fatalf("hottest weight = %d, want 90 (Figure 3)", counts[7])
	}
}

func TestInconsistentReversesAfterSwap(t *testing.T) {
	cfg := DefaultConfig(Inconsistent, 1024, 1)
	cfg.TargetPages = 4
	cfg.QuietThreshold = 8
	s := mustNew(t, cfg).(*inconsistentStream)
	// Run past the minimum flip spacing, then signal one blocked response
	// followed by quiet.
	for i := 0; i < s.minFlipAt+1; i++ {
		s.Next(Feedback{})
	}
	s.Next(Feedback{Blocked: true})
	for i := 0; i < 8; i++ {
		s.Next(Feedback{})
	}
	if s.Reversals() != 1 {
		t.Fatalf("reversals = %d after swap-end signal, want 1", s.Reversals())
	}
	// The previously-frozen cold half must now take the writes.
	counts := map[int]int{}
	for i := 0; i < s.passLen; i++ {
		counts[s.Next(Feedback{})]++
	}
	if counts[0] == 0 || counts[1] == 0 {
		t.Fatalf("after reversal cold half still frozen: %v", counts)
	}
	if counts[3] != 0 {
		t.Fatalf("after reversal the old hot tail still written: %v", counts)
	}
}

func TestInconsistentNoReversalWhileBlocked(t *testing.T) {
	cfg := DefaultConfig(Inconsistent, 1024, 1)
	cfg.TargetPages = 4
	cfg.QuietThreshold = 8
	s := mustNew(t, cfg).(*inconsistentStream)
	// Continuous blocking (mid swap phase): no reversal yet, even past the
	// minimum flip spacing.
	for i := 0; i < s.minFlipAt+100; i++ {
		s.Next(Feedback{Blocked: true})
	}
	if s.Reversals() != 0 {
		t.Fatalf("reversed mid-swap-phase: %d", s.Reversals())
	}
}

func TestInconsistentFallbackReversal(t *testing.T) {
	cfg := DefaultConfig(Inconsistent, 1024, 1)
	cfg.TargetPages = 4
	s := mustNew(t, cfg).(*inconsistentStream)
	// Never signal a block: the fallback must still flip eventually.
	for i := 0; i < s.fallbackAt+10; i++ {
		s.Next(Feedback{})
	}
	if s.Reversals() == 0 {
		t.Fatal("fallback reversal never fired")
	}
}

func TestInconsistentTargetsClampedToPages(t *testing.T) {
	cfg := DefaultConfig(Inconsistent, 4, 1)
	cfg.TargetPages = 100
	s := mustNew(t, cfg)
	for i := 0; i < 1000; i++ {
		if a := s.Next(Feedback{}); a >= 4 {
			t.Fatalf("address %d beyond the 4-page space", a)
		}
	}
}

func TestInconsistentAddressesInTargetRange(t *testing.T) {
	cfg := DefaultConfig(Inconsistent, 1024, 1)
	cfg.TargetPages = 8
	s := mustNew(t, cfg)
	for i := 0; i < 10000; i++ {
		a := s.Next(Feedback{Blocked: i%97 == 0})
		if a < 0 || a >= 8 {
			t.Fatalf("address %d outside target range [0,8)", a)
		}
	}
}
