package tables

import "testing"

// FuzzRemapBijection drives a small remap table with an arbitrary swap
// program decoded from the fuzz input — each byte encodes one SwapLogical or
// SwapPhysical call — and demands that the bijection invariant and the
// forward/inverse consistency survive every prefix of the program.
func FuzzRemapBijection(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00, 0xFF, 0x81, 0x7E})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Fuzz(func(t *testing.T, program []byte) {
		const n = 8
		r := NewRemap(n)
		for i, op := range program {
			a := int(op>>1) % n
			b := int(op>>4) % n
			if op&1 == 0 {
				r.SwapLogical(a, b)
			} else {
				r.SwapPhysical(a, b)
			}
			if err := r.CheckBijection(); err != nil {
				t.Fatalf("after op %d (%#x): %v", i, op, err)
			}
		}
		for la := 0; la < n; la++ {
			if got := r.Log(r.Phys(la)); got != la {
				t.Fatalf("Log(Phys(%d)) = %d", la, got)
			}
		}
	})
}
