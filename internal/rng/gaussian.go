package rng

import "math"

// Gaussian draws normally-distributed values from an underlying uniform
// source using the Box–Muller transform. It is used by the process-variation
// model (endurance ~ N(mean, sigma), Section 5.1: mean 1e8, sigma = 11% of
// the mean).
type Gaussian struct {
	src   Source
	spare float64
	has   bool
}

// NewGaussian returns a Gaussian sampler over src.
func NewGaussian(src Source) *Gaussian {
	return &Gaussian{src: src}
}

// Norm returns a sample from the standard normal distribution N(0, 1).
func (g *Gaussian) Norm() float64 {
	if g.has {
		g.has = false
		return g.spare
	}
	// Box–Muller: generate two independent normals from two uniforms.
	var u1 float64
	for u1 == 0 {
		u1 = g.src.Float64()
	}
	u2 := g.src.Float64()
	r := math.Sqrt(-2 * math.Log(u1))
	theta := 2 * math.Pi * u2
	g.spare = r * math.Sin(theta)
	g.has = true
	return r * math.Cos(theta)
}

// Sample returns a sample from N(mean, sigma).
func (g *Gaussian) Sample(mean, sigma float64) float64 {
	return mean + sigma*g.Norm()
}
