package main

import (
	"bufio"
	"fmt"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Diagnostic is one finding: which analyzer fired, where, and why.
type Diagnostic struct {
	Analyzer string `json:"analyzer"`
	Pos      string `json:"pos"` // file:line:col
	Message  string `json:"message"`
}

// String renders the go-vet-style "pos: [analyzer] message" line.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// diag builds a Diagnostic at pos, shortening absolute paths to be relative
// to the working directory so golden files and CI logs are stable.
func diag(fset *token.FileSet, pos token.Pos, analyzer, format string, args ...any) Diagnostic {
	p := fset.Position(pos)
	if wd, err := os.Getwd(); err == nil {
		if rel, err := filepath.Rel(wd, p.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			p.Filename = rel
		}
	}
	return Diagnostic{
		Analyzer: analyzer,
		Pos:      fmt.Sprintf("%s:%d:%d", p.Filename, p.Line, p.Column),
		Message:  fmt.Sprintf(format, args...),
	}
}

// sortDiags orders findings by position then analyzer, for stable output.
func sortDiags(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		if ds[i].Pos != ds[j].Pos {
			return ds[i].Pos < ds[j].Pos
		}
		if ds[i].Analyzer != ds[j].Analyzer {
			return ds[i].Analyzer < ds[j].Analyzer
		}
		return ds[i].Message < ds[j].Message
	})
}

// Allowlist holds the sanctioned exceptions read from the allowlist file.
// Each entry scopes one analyzer to one package (every finding suppressed)
// or to one named declaration inside it.
type Allowlist struct {
	entries map[string]bool // "analyzer pkgpath" or "analyzer pkgpath decl"
}

// ParseAllowlist reads an allowlist file: one entry per line, formatted
//
//	<analyzer> <package-path> [<decl-name>]
//
// with '#' comments and blank lines ignored. A missing file is an error —
// the allowlist is an explicit contract, not an optional hint.
func ParseAllowlist(path string) (*Allowlist, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer func() { _ = f.Close() }() // read side: Close cannot lose data
	a := &Allowlist{entries: map[string]bool{}}
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(text, '#'); i >= 0 {
			text = strings.TrimSpace(text[:i])
		}
		if text == "" {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 || len(fields) > 3 {
			return nil, fmt.Errorf("%s:%d: want \"analyzer pkgpath [decl]\", got %q", path, line, text)
		}
		a.entries[strings.Join(fields, " ")] = true
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return a, nil
}

// Allows reports whether the analyzer is sanctioned for the whole package or
// for the specific declaration (function or type name) the finding sits in.
func (a *Allowlist) Allows(analyzer, pkgPath, decl string) bool {
	if a == nil {
		return false
	}
	if a.entries[analyzer+" "+pkgPath] {
		return true
	}
	return decl != "" && a.entries[analyzer+" "+pkgPath+" "+decl]
}

// analyzer is one static-analysis pass. run sees a single package plus the
// world (cross-package context) and returns its findings; the driver handles
// allowlist filtering, sorting and output.
type analyzer struct {
	name string
	doc  string
	run  func(p *Package, w *world) []Diagnostic
}

// analyzers is the full suite in the order DESIGN.md documents them.
var analyzers = []*analyzer{
	determinismAnalyzer,
	registryAnalyzer,
	costAnalyzer,
	locksAnalyzer,
	snapshotAnalyzer,
	decoratorAnalyzer,
}

// world is the cross-package context shared by all analyzers over one run:
// every loaded package (the registry analyzer reasons about the whole
// module) and the wl contract types resolved once.
type world struct {
	pkgs  []*Package
	allow *Allowlist
	// wl is the wl package as seen by importers. Packages other than wl
	// itself resolve wl types through the shared importer, so identity
	// comparisons against these hold.
	wl *types.Package
}

// wlContract resolves the wl package's contract types from the viewpoint of
// p: the wl package's own declarations when p IS twl/internal/wl (its
// self-checked types differ from the imported ones), the shared imported
// package otherwise.
func (w *world) wlContract(p *Package) *types.Package {
	if p.Types.Path() == wlPath {
		return p.Types
	}
	return w.wl
}

const wlPath = "twl/internal/wl"

// lookupInterface fetches a named interface's underlying *types.Interface
// from pkg.
func lookupInterface(pkg *types.Package, name string) *types.Interface {
	if pkg == nil {
		return nil
	}
	obj := pkg.Scope().Lookup(name)
	if obj == nil {
		return nil
	}
	iface, _ := obj.Type().Underlying().(*types.Interface)
	return iface
}

// isWLNamed reports whether t is the named type wl.<name>, matching by path
// and name so it holds across independently checked instances of wl.
func isWLNamed(t types.Type, name string) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == wlPath && obj.Name() == name
}
