package trace

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// Fuzz targets guard the decoders against hostile or corrupt trace files:
// they must return errors, never panic or loop. `go test` runs the seed
// corpus; `go test -fuzz=Fuzz<Name>` explores further.

func FuzzTextReader(f *testing.F) {
	f.Add("W 1\nR 2\n")
	f.Add("# comment\n\nw 18446744073709551615\n")
	f.Add("X 5\n")
	f.Add("W\n")
	f.Add("W 99999999999999999999999\n")
	f.Fuzz(func(t *testing.T, in string) {
		r := NewReader(strings.NewReader(in))
		for i := 0; i < 10000; i++ {
			rec, err := r.Read()
			if err != nil {
				return // EOF or a parse error; both fine
			}
			if rec.Op != Read && rec.Op != Write {
				t.Fatalf("decoder produced invalid op %q", rec.Op)
			}
		}
	})
}

func FuzzBinaryReader(f *testing.F) {
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf)
	w.Write(Record{Write, 300})
	w.Write(Record{Read, 1 << 40})
	w.Flush()
	f.Add(buf.Bytes())
	f.Add([]byte{'W', 0x80})
	f.Add([]byte{0xFF})
	f.Add([]byte{'R', 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, in []byte) {
		r := NewBinaryReader(bytes.NewReader(in))
		for i := 0; i < 10000; i++ {
			rec, err := r.Read()
			if err != nil {
				return
			}
			if rec.Op != Read && rec.Op != Write {
				t.Fatalf("decoder produced invalid op %q", rec.Op)
			}
		}
	})
}

func FuzzNVMainReader(f *testing.F) {
	f.Add("NVMV1\n125 W 0x2000 3f 0\n")
	f.Add("1 R zzzz 0 0\n")
	f.Add("1 W 0x 0\n")
	f.Fuzz(func(t *testing.T, in string) {
		r, err := NewNVMainReader(strings.NewReader(in), 4096)
		if err != nil {
			t.Fatal(err) // constructor only rejects bad page sizes
		}
		for i := 0; i < 10000; i++ {
			rec, err := r.Read()
			if err == io.EOF {
				return
			}
			if err != nil {
				return
			}
			if rec.Op != Read && rec.Op != Write {
				t.Fatalf("decoder produced invalid op %q", rec.Op)
			}
		}
	})
}

// FuzzBinaryRoundTrip: any record the writer accepts must decode back
// bit-identically.
func FuzzBinaryRoundTrip(f *testing.F) {
	f.Add(uint64(0), true)
	f.Add(uint64(1<<63), false)
	f.Fuzz(func(t *testing.T, addr uint64, isWrite bool) {
		op := Read
		if isWrite {
			op = Write
		}
		var buf bytes.Buffer
		w := NewBinaryWriter(&buf)
		if err := w.Write(Record{Op: op, Addr: addr}); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		r := NewBinaryReader(&buf)
		got, err := r.Read()
		if err != nil {
			t.Fatal(err)
		}
		if got.Op != op || got.Addr != addr {
			t.Fatalf("round trip %v/%d -> %v/%d", op, addr, got.Op, got.Addr)
		}
	})
}
