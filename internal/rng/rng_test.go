package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestXorshiftDeterminism(t *testing.T) {
	a := NewXorshift(42)
	b := NewXorshift(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams diverged at %d: %x vs %x", i, av, bv)
		}
	}
}

func TestXorshiftSeedsIndependent(t *testing.T) {
	a := NewXorshift(1)
	b := NewXorshift(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 produced %d identical outputs of 1000", same)
	}
}

func TestXorshiftZeroSeed(t *testing.T) {
	x := NewXorshift(0)
	if v := x.Uint64(); v == 0 {
		t.Fatal("zero seed produced zero output (stuck state)")
	}
	// The state must never become the all-zero fixed point.
	for i := 0; i < 10000; i++ {
		if x.state == 0 {
			t.Fatal("state collapsed to zero")
		}
		x.Uint64()
	}
}

func TestXorshiftFloat64Range(t *testing.T) {
	x := NewXorshift(7)
	for i := 0; i < 100000; i++ {
		f := x.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestXorshiftFloat64Mean(t *testing.T) {
	x := NewXorshift(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += x.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestXorshiftIntnUniform(t *testing.T) {
	x := NewXorshift(13)
	const buckets = 16
	const n = 160000
	var counts [buckets]int
	for i := 0; i < n; i++ {
		counts[x.Intn(buckets)]++
	}
	want := float64(n) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 0.08*want {
			t.Fatalf("bucket %d count %d deviates from %v by more than 8%%", b, c, want)
		}
	}
}

func TestXorshiftIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewXorshift(1).Intn(0)
}

func TestXorshiftSplitIndependent(t *testing.T) {
	parent := NewXorshift(99)
	child := parent.Split()
	same := 0
	for i := 0; i < 1000; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("parent and split child produced %d identical outputs", same)
	}
}

func TestFeistelDeterminism(t *testing.T) {
	a := NewFeistel(5)
	b := NewFeistel(5)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("feistel streams diverged at %d", i)
		}
	}
}

// TestFeistelBijection verifies the Feistel network is a permutation of the
// 16-bit space — the structural property that guarantees full period in
// counter mode. This is the invariant the hardware design relies on.
func TestFeistelBijection(t *testing.T) {
	f := NewFeistel(123)
	seen := make([]bool, 1<<16)
	for v := 0; v < 1<<16; v++ {
		out := f.Permutation16(uint16(v))
		if seen[out] {
			t.Fatalf("permutation collision at input %d (output %d)", v, out)
		}
		seen[out] = true
	}
}

func TestFeistelBijectionAnyKey(t *testing.T) {
	// Property: the network is a bijection for every key (seed).
	check := func(seed uint64) bool {
		f := NewFeistel(seed)
		seen := make(map[uint16]bool, 1<<16)
		// Sampling the whole space per seed is cheap enough for a few seeds.
		for v := 0; v < 1<<16; v++ {
			out := f.Permutation16(uint16(v))
			if seen[out] {
				return false
			}
			seen[out] = true
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 8}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestFeistelAlphaRangeAndMean(t *testing.T) {
	f := NewFeistel(77)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		a := f.Alpha()
		if a < 0 || a >= 1 {
			t.Fatalf("Alpha out of range: %v", a)
		}
		sum += a
	}
	mean := sum / n
	// 8-bit alpha has mean (0+...+255)/256/256 = 255/512 ≈ 0.498.
	if math.Abs(mean-0.498) > 0.01 {
		t.Fatalf("alpha mean %v, want ~0.498", mean)
	}
}

func TestFeistelFloat64Uniformity(t *testing.T) {
	f := NewFeistel(3)
	const buckets = 8
	const n = 80000
	var counts [buckets]int
	for i := 0; i < n; i++ {
		counts[int(f.Float64()*buckets)]++
	}
	want := float64(n) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 0.1*want {
			t.Fatalf("feistel bucket %d = %d, want ~%v", b, c, want)
		}
	}
}

func TestGaussianMoments(t *testing.T) {
	g := NewGaussian(NewXorshift(21))
	const n = 300000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := g.Norm()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestGaussianSampleScaling(t *testing.T) {
	g := NewGaussian(NewXorshift(22))
	const n = 200000
	const mean, sigma = 1e8, 1.1e7
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := g.Sample(mean, sigma)
		sum += v
		sumsq += v * v
	}
	m := sum / n
	sd := math.Sqrt(sumsq/n - m*m)
	if math.Abs(m-mean)/mean > 0.005 {
		t.Fatalf("sample mean %v, want ~%v", m, mean)
	}
	if math.Abs(sd-sigma)/sigma > 0.02 {
		t.Fatalf("sample sigma %v, want ~%v", sd, sigma)
	}
}

func TestGaussianSparePath(t *testing.T) {
	// Two consecutive Norm calls exercise both the fresh and the spare path;
	// both must be valid floats.
	g := NewGaussian(NewXorshift(5))
	for i := 0; i < 100; i++ {
		v := g.Norm()
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("invalid normal sample %v at %d", v, i)
		}
	}
}

func BenchmarkXorshiftUint64(b *testing.B) {
	x := NewXorshift(1)
	for i := 0; i < b.N; i++ {
		_ = x.Uint64()
	}
}

func BenchmarkFeistelAlpha(b *testing.B) {
	f := NewFeistel(1)
	for i := 0; i < b.N; i++ {
		_ = f.Alpha()
	}
}
