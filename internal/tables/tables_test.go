package tables

import (
	"testing"
	"testing/quick"

	"twl/internal/rng"
)

func TestRemapIdentity(t *testing.T) {
	r := NewRemap(8)
	for i := 0; i < 8; i++ {
		if r.Phys(i) != i || r.Log(i) != i {
			t.Fatalf("initial mapping not identity at %d", i)
		}
	}
	if err := r.CheckBijection(); err != nil {
		t.Fatal(err)
	}
}

func TestRemapSwapLogical(t *testing.T) {
	r := NewRemap(4)
	r.SwapLogical(0, 3)
	if r.Phys(0) != 3 || r.Phys(3) != 0 {
		t.Fatalf("after swap: Phys(0)=%d Phys(3)=%d", r.Phys(0), r.Phys(3))
	}
	if r.Log(3) != 0 || r.Log(0) != 3 {
		t.Fatalf("inverse not updated: Log(3)=%d Log(0)=%d", r.Log(3), r.Log(0))
	}
	if err := r.CheckBijection(); err != nil {
		t.Fatal(err)
	}
}

func TestRemapSwapPhysical(t *testing.T) {
	r := NewRemap(4)
	r.SwapLogical(0, 1) // LA0→PA1, LA1→PA0
	r.SwapPhysical(0, 2)
	// PA0 held LA1, PA2 held LA2; after the physical swap LA1→PA2, LA2→PA0.
	if r.Phys(1) != 2 || r.Phys(2) != 0 {
		t.Fatalf("Phys(1)=%d Phys(2)=%d, want 2,0", r.Phys(1), r.Phys(2))
	}
	if err := r.CheckBijection(); err != nil {
		t.Fatal(err)
	}
}

func TestRemapSelfSwapIsNoop(t *testing.T) {
	r := NewRemap(4)
	r.SwapLogical(2, 2)
	if r.Phys(2) != 2 {
		t.Fatal("self swap changed mapping")
	}
	if err := r.CheckBijection(); err != nil {
		t.Fatal(err)
	}
}

// TestRemapBijectionProperty: any sequence of swaps preserves the bijection
// and the round-trip identity.
func TestRemapBijectionProperty(t *testing.T) {
	check := func(seed uint64, nOps uint16) bool {
		src := rng.NewXorshift(seed)
		r := NewRemap(64)
		for i := 0; i < int(nOps%512); i++ {
			if src.Intn(2) == 0 {
				r.SwapLogical(src.Intn(64), src.Intn(64))
			} else {
				r.SwapPhysical(src.Intn(64), src.Intn(64))
			}
		}
		if err := r.CheckBijection(); err != nil {
			return false
		}
		for la := 0; la < 64; la++ {
			if r.Log(r.Phys(la)) != la {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteCounts(t *testing.T) {
	w := NewWriteCounts(4)
	w.Record(1)
	w.Record(1)
	w.Record(3)
	if w.Count(1) != 2 || w.Count(3) != 1 || w.Count(0) != 0 {
		t.Fatalf("counts wrong: %v", w.Counts())
	}
	counts := w.Counts()
	w.Record(0)
	if counts[0] != 0 {
		t.Fatal("Counts aliases live counters")
	}
	w.Reset()
	for i := 0; i < 4; i++ {
		if w.Count(i) != 0 {
			t.Fatalf("Reset left count %d at %d", w.Count(i), i)
		}
	}
}

func TestPairTableOddRejected(t *testing.T) {
	if _, err := NewPairTable(5); err == nil {
		t.Fatal("odd page count accepted")
	}
}

func TestPairTableBind(t *testing.T) {
	p, err := NewPairTable(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Bind(0, 2); err != nil {
		t.Fatal(err)
	}
	if err := p.Bind(1, 3); err != nil {
		t.Fatal(err)
	}
	if p.Partner(0) != 2 || p.Partner(2) != 0 {
		t.Fatal("binding not symmetric")
	}
	if err := p.Check(); err != nil {
		t.Fatal(err)
	}
	// Rebinding the same pair is fine.
	if err := p.Bind(2, 0); err != nil {
		t.Fatalf("idempotent bind rejected: %v", err)
	}
}

func TestPairTableBindErrors(t *testing.T) {
	p, _ := NewPairTable(4)
	if err := p.Bind(1, 1); err == nil {
		t.Fatal("self pair accepted")
	}
	p.Bind(0, 1)
	if err := p.Bind(0, 2); err == nil {
		t.Fatal("conflicting pair accepted for a")
	}
	if err := p.Bind(2, 1); err == nil {
		t.Fatal("conflicting pair accepted for b")
	}
}

func TestPairTableRebind(t *testing.T) {
	p, _ := NewPairTable(8)
	p.Bind(0, 1)
	p.Bind(2, 3)
	// Inter-pair swap between pages 0 and 2: partners exchange.
	p.Rebind(0, 2)
	if p.Partner(0) != 3 || p.Partner(3) != 0 {
		t.Fatalf("Partner(0)=%d, want 3", p.Partner(0))
	}
	if p.Partner(2) != 1 || p.Partner(1) != 2 {
		t.Fatalf("Partner(2)=%d, want 1", p.Partner(2))
	}
	p.Bind(4, 5)
	p.Bind(6, 7)
	if err := p.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestPairTableRebindPartnersNoop(t *testing.T) {
	p, _ := NewPairTable(4)
	p.Bind(0, 1)
	p.Bind(2, 3)
	p.Rebind(0, 1) // already partners
	if p.Partner(0) != 1 || p.Partner(1) != 0 {
		t.Fatal("rebind of partners changed pairing")
	}
	if err := p.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestPairTableInvolutionProperty: arbitrary rebind sequences preserve the
// involution invariant.
func TestPairTableInvolutionProperty(t *testing.T) {
	check := func(seed uint64, nOps uint16) bool {
		src := rng.NewXorshift(seed)
		const n = 32
		p, err := NewPairTable(n)
		if err != nil {
			return false
		}
		for i := 0; i < n/2; i++ {
			if err := p.Bind(i, n-1-i); err != nil {
				return false
			}
		}
		for i := 0; i < int(nOps%1024); i++ {
			p.Rebind(src.Intn(n), src.Intn(n))
		}
		return p.Check() == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPairTableCheckDetectsUnpaired(t *testing.T) {
	p, _ := NewPairTable(4)
	p.Bind(0, 1)
	if err := p.Check(); err == nil {
		t.Fatal("Check accepted table with unpaired pages")
	}
}

func TestCounterWrapsAt128(t *testing.T) {
	c := NewCounter(2)
	for i := 1; i <= 127; i++ {
		if v := c.Inc(0); v != uint8(i) {
			t.Fatalf("Inc #%d = %d", i, v)
		}
	}
	if v := c.Inc(0); v != 0 {
		t.Fatalf("128th Inc = %d, want wrap to 0", v)
	}
	if c.Get(1) != 0 {
		t.Fatal("incrementing entry 0 touched entry 1")
	}
	c.Inc(0)
	c.Clear(0)
	if c.Get(0) != 0 {
		t.Fatal("Clear failed")
	}
}

func TestCounterIncReturnsNewValue(t *testing.T) {
	c := NewCounter(1)
	if v := c.Inc(0); v != 1 {
		t.Fatalf("first Inc = %d, want 1", v)
	}
	if v := c.Inc(0); v != 2 {
		t.Fatalf("second Inc = %d, want 2", v)
	}
}

func TestRebindSelfNoop(t *testing.T) {
	p, _ := NewPairTable(4)
	p.Bind(0, 1)
	p.Bind(2, 3)
	p.Rebind(2, 2)
	if err := p.Check(); err != nil {
		t.Fatalf("self rebind broke table: %v", err)
	}
	if p.Partner(2) != 3 {
		t.Fatal("self rebind changed pairing")
	}
}
