// Package pcm models a page-granularity phase-change memory array.
//
// The model matches the evaluation platform in Table 1 of the paper:
// a 32 GB PCM with 4 KB pages and 128-byte lines, organized in 4 ranks and
// 32 banks, with read/set/reset latencies of 250/2000/250 cycles at 2 GHz.
// Wear-leveling operates at page granularity (the paper assumes the write
// granularity is a memory page and data-comparison-write is employed), so
// the device tracks wear, endurance and failure per page.
//
// Each physical page carries an opaque 64-bit payload tag. Wear-leveling
// schemes migrate these tags when they swap pages, which lets the test suite
// verify data integrity end-to-end: reading a logical address must always
// return the last tag written to it regardless of how many internal swaps
// occurred.
package pcm

import (
	"errors"
	"fmt"
)

// Geometry describes the array organization. Only Pages and PageSize affect
// wear simulation; ranks/banks/lines are carried for the timing and cost
// models.
type Geometry struct {
	Pages    int // number of visible (demand-addressable) physical pages
	PageSize int // bytes per page (paper: 4096)
	LineSize int // bytes per line (paper: 128)
	Ranks    int // paper: 4
	Banks    int // paper: 32
	// SparePages reserves extra physical pages beyond Pages for
	// fault-tolerant page retirement (WoLFRaM-style remapping). Spares are
	// invisible to wear-leveling schemes — Pages() and EnduranceMap() cover
	// the visible region only — and absorb traffic only after Remap points
	// a retired visible page at them.
	SparePages int
}

// Validate checks the geometry for internal consistency.
func (g Geometry) Validate() error {
	if g.Pages <= 0 {
		return errors.New("pcm: Pages must be positive")
	}
	if g.SparePages < 0 {
		return errors.New("pcm: SparePages must not be negative")
	}
	if g.PageSize <= 0 {
		return errors.New("pcm: PageSize must be positive")
	}
	if g.LineSize <= 0 || g.PageSize%g.LineSize != 0 {
		return fmt.Errorf("pcm: LineSize %d must divide PageSize %d", g.LineSize, g.PageSize)
	}
	if g.Ranks <= 0 || g.Banks <= 0 {
		return errors.New("pcm: Ranks and Banks must be positive")
	}
	return nil
}

// Capacity returns the visible byte capacity (spares excluded).
func (g Geometry) Capacity() int64 {
	return int64(g.Pages) * int64(g.PageSize)
}

// TotalPages returns the physical page count including the spare region.
func (g Geometry) TotalPages() int { return g.Pages + g.SparePages }

// LinesPerPage returns the number of lines in a page.
func (g Geometry) LinesPerPage() int { return g.PageSize / g.LineSize }

// Timing holds the latency parameters from Table 1, in CPU cycles.
type Timing struct {
	ReadCycles  int // array read (paper: 250)
	SetCycles   int // SET programming (paper: 2000)
	ResetCycles int // RESET programming (paper: 250)
	ClockHz     float64
}

// WriteCycles returns the latency of a page write. A write must wait for its
// slowest line programming operation; with data-comparison-write the worst
// case is a SET, so a write is charged the SET latency (this matches how the
// paper's configuration is normally interpreted for page-granularity
// modeling).
func (t Timing) WriteCycles() int {
	if t.SetCycles > t.ResetCycles {
		return t.SetCycles
	}
	return t.ResetCycles
}

// Seconds converts a cycle count to seconds.
func (t Timing) Seconds(cycles int64) float64 {
	return float64(cycles) / t.ClockHz
}

// DefaultGeometry returns the paper's 32 GB array. Note: 32 GB / 4 KB =
// 8Mi pages; simulations normally run on a scaled page count (see
// DESIGN.md) but the full geometry is available for cost/latency math.
func DefaultGeometry() Geometry {
	return Geometry{
		Pages:    32 << 30 / 4096,
		PageSize: 4096,
		LineSize: 128,
		Ranks:    4,
		Banks:    32,
	}
}

// DefaultTiming returns the Table 1 latencies at 2 GHz.
func DefaultTiming() Timing {
	return Timing{ReadCycles: 250, SetCycles: 2000, ResetCycles: 250, ClockHz: 2e9}
}

// Device is a PCM array with per-page wear tracking.
type Device struct {
	geom      Geometry // snap: construction input
	timing    Timing   // snap: construction input
	endurance []uint64 // snap: construction input
	// invEndurance caches 1/endurance per page so wear-fraction snapshots
	// (Summary, WearHistogram) multiply instead of dividing in their per-page
	// loops.
	invEndurance []float64 // snap: derived from endurance at NewDevice
	wear         []uint64
	payload      []uint64

	// Packed storage mode (NewPackedDevice): end32/wear32 hold the endurance
	// map and wear counters as uint32 and endurance/invEndurance/wear stay
	// nil, halving the per-page device state (16 B/page vs 32 B/page). Every
	// method that touches wear or endurance branches once on wear32 != nil
	// into a u32 twin (packed.go); payload and all failure/retirement state
	// are width-independent and shared. The two modes are bit-identical in
	// behavior and in snapshot wire format — see packed.go for the width
	// constraints that make that hold.
	end32  []uint32 // snap: construction input (width twin of endurance)
	wear32 []uint32

	writes uint64 // total page writes applied (demand + swap alike)
	reads  uint64

	// failedLog records every page that reached its endurance, in failure
	// order; acked counts the prefix a fault-tolerance layer has handled
	// (retired via Remap). Failed reports the first unhandled entry, so a
	// device with no such layer behaves exactly as before: the first
	// failure is permanent and the simulator stops on it.
	failedLog []int
	acked     int

	// redirect maps a retired visible page to the spare now serving it
	// (-1 = not retired); isTarget marks spares currently serving a
	// retired page. Both are nil until the first Remap, so the pre-failure
	// hot paths pay one nil check. isTarget is rebuilt from redirect on
	// Restore.
	redirect []int
	isTarget []bool // snap: derived from redirect on Restore

	// slack/slackAt form a conservative watermark over min-remaining
	// endurance: slack was the exact minimum when the device had written
	// slackAt pages, and one applied write lowers the minimum by at most
	// one, so slack-(writes-slackAt) is a valid lower bound at any later
	// point with no per-write maintenance. MinRemainingAtLeast recomputes
	// the exact minimum when the bound dips below a query; slackValid marks
	// that slack has held the exact minimum at least once, which unlocks
	// the monotone fast path (the minimum never recovers).
	slack      uint64
	slackAt    uint64
	slackValid bool
}

// NewDevice builds a device with the given geometry and per-page endurance
// map. len(endurance) must equal geom.TotalPages() — visible pages first,
// then spares.
func NewDevice(geom Geometry, timing Timing, endurance []uint64) (*Device, error) {
	if err := geom.Validate(); err != nil {
		return nil, err
	}
	if len(endurance) != geom.TotalPages() {
		return nil, fmt.Errorf("pcm: endurance map has %d entries, geometry has %d pages (%d visible + %d spare)",
			len(endurance), geom.TotalPages(), geom.Pages, geom.SparePages)
	}
	for i, e := range endurance {
		if e == 0 {
			return nil, fmt.Errorf("pcm: page %d has zero endurance", i)
		}
	}
	end := make([]uint64, len(endurance))
	copy(end, endurance)
	inv := make([]float64, len(end))
	for i, e := range end {
		inv[i] = 1 / float64(e)
	}
	return &Device{
		geom:         geom,
		timing:       timing,
		endurance:    end,
		invEndurance: inv,
		wear:         make([]uint64, geom.TotalPages()),
		payload:      make([]uint64, geom.TotalPages()),
	}, nil
}

// Geometry returns the device geometry.
func (d *Device) Geometry() Geometry { return d.geom }

// Timing returns the device timing parameters.
func (d *Device) Timing() Timing { return d.timing }

// Pages returns the visible page count — the address space wear-leveling
// schemes manage. Spares are reached only through redirects.
func (d *Device) Pages() int { return d.geom.Pages }

// TotalPages returns the physical page count including the spare region.
func (d *Device) TotalPages() int { return d.geom.TotalPages() }

// SparePages returns the spare-region size.
func (d *Device) SparePages() int { return d.geom.SparePages }

// resolve maps a page address to the physical cell serving it: retired
// visible pages forward to their spare. The nil check keeps the hot paths
// free of redirect cost until the first Remap.
func (d *Device) resolve(pp int) int {
	if d.redirect != nil {
		if t := d.redirect[pp]; t >= 0 {
			return t
		}
	}
	return pp
}

// Endurance returns the endurance limit of physical cell pp (raw: a retired
// page reports its own dead cell, not its spare's).
func (d *Device) Endurance(pp int) uint64 {
	if d.wear32 != nil {
		return uint64(d.end32[pp])
	}
	return d.endurance[pp]
}

// EnduranceMap returns a copy of the visible pages' endurance map, matching
// WriteCounts.Counts: schemes derive their pairing and ordering tables from
// it, and a scheme sorting or perturbing its copy must not corrupt the
// device's ground truth. The spare region is excluded.
func (d *Device) EnduranceMap() []uint64 {
	out := make([]uint64, d.geom.Pages)
	if d.wear32 != nil {
		for i, e := range d.end32[:d.geom.Pages] {
			out[i] = uint64(e)
		}
		return out
	}
	copy(out, d.endurance[:d.geom.Pages])
	return out
}

// Wear returns the accumulated write count of physical cell pp (raw, like
// Endurance, so wear heatmaps show the array's true state — a retired
// page's cell stays pegged at its endurance).
func (d *Device) Wear(pp int) uint64 {
	if d.wear32 != nil {
		return uint64(d.wear32[pp])
	}
	return d.wear[pp]
}

// Remaining returns how many more writes page pp can absorb before failing.
// Unlike Wear/Endurance it follows redirects: writes to a retired page land
// on its spare, so the spare's headroom is the answer schemes need for
// policy and horizon decisions.
func (d *Device) Remaining(pp int) uint64 {
	pp = d.resolve(pp)
	if d.wear32 != nil {
		if d.wear32[pp] >= d.end32[pp] {
			return 0
		}
		return uint64(d.end32[pp] - d.wear32[pp])
	}
	if d.wear[pp] >= d.endurance[pp] {
		return 0
	}
	return d.endurance[pp] - d.wear[pp]
}

// MinRemainingAtLeast reports whether every page can still absorb at least
// n writes. The common case is a watermark comparison; the exact O(pages)
// minimum is recomputed only when the watermark has decayed below n, so
// bulk write paths can hoist their per-write failure pre-checks for almost
// the entire device lifetime.
//
// Wear only grows and writes land only on live cells, so the true minimum
// is monotone non-increasing between remaps. Once a recompute has pinned
// the exact minimum in slack, any query above it is a permanent exact "no"
// with no rescan; queries at or below it that outlive the decay bound
// trigger at most one rescan per pages-worth of writes (a conservative
// "no" in between), so the end-of-life regime costs amortized O(1) and
// callers run their per-write failure checks until the run ends. Remap
// changes the live set — a dead cell leaves it, a fresh spare joins — and
// so invalidates the watermark; the minimum may recover across a remap and
// the next query rescans.
//
// The scan covers the cells writes can actually reach: visible pages that
// are not retired, plus spares currently serving a retired page. Unused
// spares join the live set only through a Remap, which resets the
// watermark.
func (d *Device) MinRemainingAtLeast(n uint64) bool {
	since := d.writes - d.slackAt
	if d.slack >= since && d.slack-since >= n {
		return true
	}
	if d.slackValid {
		if n > d.slack {
			return false
		}
		if since < uint64(d.geom.TotalPages()) {
			return false
		}
	}
	if d.wear32 != nil {
		return d.minRemainingAtLeast32(n)
	}
	min := ^uint64(0)
	visible := d.geom.Pages
	for pp, w := range d.wear {
		if d.redirect != nil {
			if pp < visible {
				if d.redirect[pp] >= 0 {
					continue // retired: writes go to its spare
				}
			} else if !d.isTarget[pp] {
				continue // spare not (or no longer) in service
			}
		} else if pp >= visible {
			break // no retirements yet: spares are unreachable
		}
		var r uint64
		if w < d.endurance[pp] {
			r = d.endurance[pp] - w
		}
		if r < min {
			min = r
		}
	}
	d.slack = min
	d.slackAt = d.writes
	d.slackValid = true
	return min >= n
}

// Write applies one page write to physical page pp (following redirects),
// storing tag as the page payload. It returns true if this write wore the
// cell out (wear reached endurance). Writes to an already-failed page keep
// counting wear; the simulator decides when to stop.
func (d *Device) Write(pp int, tag uint64) bool {
	if d.wear32 != nil {
		return d.write32(pp, tag)
	}
	pp = d.resolve(pp)
	d.wear[pp]++
	d.payload[pp] = tag
	d.writes++
	if d.wear[pp] == d.endurance[pp] {
		d.failedLog = append(d.failedLog, pp)
		return true
	}
	return d.wear[pp] > d.endurance[pp]
}

// WriteN applies n same-page writes to physical page pp in one step and
// returns how many were actually applied. The i-th applied write (0-indexed)
// carries payload tag+i, so the page payload ends at tag+applied-1 — exactly
// what n sequential Write(pp, tag+i) calls would leave behind.
//
// Failure clamping: if the page crosses its endurance mid-run, WriteN stops
// at (and including) the write that wears it out, marks the failure, and
// returns the reduced count; the caller sees applied < n and must not count
// the unapplied remainder. Writes to an already-failed page keep counting
// wear, matching Write.
//
//twl:hotpath
func (d *Device) WriteN(pp int, tag uint64, n int) int {
	if n <= 0 {
		return 0
	}
	if d.wear32 != nil {
		return d.writeN32(pp, tag, n)
	}
	pp = d.resolve(pp)
	applied := uint64(n)
	w, e := d.wear[pp], d.endurance[pp]
	// The boundary test compares against the page's remaining headroom
	// (e-w, well-defined when w < e) rather than forming w+applied, which
	// can wrap uint64 near the endurance ceiling and silently skip the clamp.
	if w < e && applied >= e-w {
		// Crosses the endurance boundary: stop at the failing write.
		applied = e - w
		d.failedLog = append(d.failedLog, pp)
	}
	d.wear[pp] = w + applied
	d.payload[pp] = tag + applied - 1
	d.writes += applied
	return int(applied)
}

// RewriteN applies n writes to physical page pp that each rewrite the
// page's current payload — the hosted-write pattern of pairing schemes
// (OD3P), where a failed page's program stress lands on its partner without
// changing the partner's data. Wear, the device write counter and failure
// clamping behave exactly as WriteN: a mid-run endurance crossing stops the
// count at (and including) the failing write, and writes to an
// already-failed page keep counting. The payload is untouched, matching n
// sequential Write(pp, Peek(pp)) calls.
//
//twl:hotpath
func (d *Device) RewriteN(pp int, n int) int {
	if n <= 0 {
		return 0
	}
	if d.wear32 != nil {
		return d.rewriteN32(pp, n)
	}
	pp = d.resolve(pp)
	applied := uint64(n)
	w, e := d.wear[pp], d.endurance[pp]
	if w < e && applied >= e-w {
		applied = e - w
		d.failedLog = append(d.failedLog, pp)
	}
	d.wear[pp] = w + applied
	d.writes += applied
	return int(applied)
}

// WriteRange applies one write each to the n consecutive physical pages
// pp0, pp0+1, …, carrying tags tag, tag+1, … . It stops after the first
// write that wears a page out (that write is applied and the failure is
// marked, matching Write) and returns how many writes were applied.
//
//twl:hotpath
func (d *Device) WriteRange(pp0 int, tag uint64, n int) int {
	if n <= 0 {
		return 0
	}
	if d.wear32 != nil {
		return d.writeRange32(pp0, tag, n)
	}
	if d.redirect != nil {
		return d.writeRangeSlow(pp0, tag, n)
	}
	wear := d.wear[pp0 : pp0+n]
	end := d.endurance[pp0 : pp0+n][:n]
	pay := d.payload[pp0 : pp0+n][:n]
	for i := range wear {
		w := wear[i] + 1
		wear[i] = w
		pay[i] = tag + uint64(i)
		if w >= end[i] {
			if w == end[i] {
				d.failedLog = append(d.failedLog, pp0+i)
			}
			d.writes += uint64(i + 1)
			return i + 1
		}
	}
	d.writes += uint64(n)
	return n
}

// writeRangeSlow is WriteRange with per-page redirect resolution, used once
// any page has been retired.
func (d *Device) writeRangeSlow(pp0 int, tag uint64, n int) int {
	for i := 0; i < n; i++ {
		pp := d.resolve(pp0 + i)
		w := d.wear[pp] + 1
		d.wear[pp] = w
		d.payload[pp] = tag + uint64(i)
		if w >= d.endurance[pp] {
			if w == d.endurance[pp] {
				d.failedLog = append(d.failedLog, pp)
			}
			d.writes += uint64(i + 1)
			return i + 1
		}
	}
	d.writes += uint64(n)
	return n
}

// WriteSeq applies one write each to the physical pages listed in pps, in
// order, carrying tags tag, tag+1, … — a gather-write over a precomputed
// address vector. Like WriteRange it stops after the first write that wears
// a page out (that write is applied and the failure marked, matching Write)
// and returns how many writes were applied. Schemes whose bulk paths scatter
// across the address space fill a scratch vector and hand it here, so the
// wear/payload/endurance slice headers and the device write counter stay in
// registers instead of being re-touched per write.
//
//twl:hotpath
func (d *Device) WriteSeq(pps []int, tag uint64) int {
	if d.wear32 != nil {
		return d.writeSeq32(pps, tag)
	}
	wear := d.wear
	end := d.endurance[:len(wear)]
	pay := d.payload[:len(wear)]
	redirected := d.redirect != nil
	for i, pp := range pps {
		if redirected {
			pp = d.resolve(pp)
		}
		w := wear[pp] + 1
		wear[pp] = w
		pay[pp] = tag + uint64(i)
		if w >= end[pp] {
			if w == end[pp] {
				d.failedLog = append(d.failedLog, pp)
			}
			d.writes += uint64(i + 1)
			return i + 1
		}
	}
	d.writes += uint64(len(pps))
	return len(pps)
}

// Read reads the payload of physical page pp (following redirects).
func (d *Device) Read(pp int) uint64 {
	d.reads++
	return d.payload[d.resolve(pp)]
}

// Peek returns the payload without counting a device read (used by schemes
// when migrating pages: the migration read is part of the swap operation and
// its latency is charged separately).
func (d *Device) Peek(pp int) uint64 { return d.payload[d.resolve(pp)] }

// Failed reports the first failure no fault-tolerance layer has handled.
// Without such a layer (no AckFailures calls) that is simply the first page
// to wear out, exactly as before spares existed; with one, failures the
// layer retired and acknowledged are invisible here and the run continues.
func (d *Device) Failed() (page int, failed bool) {
	if d.acked < len(d.failedLog) {
		return d.failedLog[d.acked], true
	}
	return -1, false
}

// FailedPages returns how many cells have reached their endurance,
// including retired ones and worn-out spares.
func (d *Device) FailedPages() int { return len(d.failedLog) }

// FailureAt returns the i-th failed cell (0 <= i < FailedPages()), in
// failure order. A fault-tolerance layer drains the log through this.
func (d *Device) FailureAt(i int) int { return d.failedLog[i] }

// AckFailures marks the first n logged failures as handled by a
// fault-tolerance layer; Failed then reports the (n+1)-th failure, if any.
// n must not shrink or exceed the log — a misbehaving layer is a
// programming error, not a device state.
func (d *Device) AckFailures(n int) {
	if n < d.acked || n > len(d.failedLog) {
		panic(fmt.Sprintf("pcm: AckFailures(%d) outside [%d,%d]", n, d.acked, len(d.failedLog)))
	}
	d.acked = n
}

// Remap retires the visible page from, pointing it at the spare page to:
// subsequent accesses to from resolve to to, and to inherits from's current
// payload. The copy models the retirement migration; it is a metadata
// operation on the simulator's books — no wear, no write count — so scheme
// invariants over TotalWrites hold unchanged across a retirement (the
// single migration write is negligible against the millions a spare
// absorbs).
//
// A retired page may be remapped again (its spare wore out and the layer
// moves it to a fresh spare); the exhausted spare leaves service. Remap
// invalidates the min-remaining watermark: the live cell set changed, so
// the minimum may recover.
func (d *Device) Remap(from, to int) error {
	visible := d.geom.Pages
	if from < 0 || from >= visible {
		return fmt.Errorf("pcm: Remap from %d outside visible range [0,%d)", from, visible)
	}
	if to < visible || to >= d.geom.TotalPages() {
		return fmt.Errorf("pcm: Remap to %d outside spare range [%d,%d)", to, visible, d.geom.TotalPages())
	}
	if d.redirect == nil {
		d.redirect = make([]int, d.geom.TotalPages())
		for i := range d.redirect {
			d.redirect[i] = -1
		}
		d.isTarget = make([]bool, d.geom.TotalPages())
	}
	if d.isTarget[to] {
		return fmt.Errorf("pcm: Remap target %d already serves a retired page", to)
	}
	src := d.resolve(from)
	if old := d.redirect[from]; old >= 0 {
		d.isTarget[old] = false
	}
	d.payload[to] = d.payload[src]
	d.redirect[from] = to
	d.isTarget[to] = true
	d.slack = 0
	d.slackAt = d.writes
	d.slackValid = false
	return nil
}

// Redirect reports the spare serving visible page pp, if it was retired.
func (d *Device) Redirect(pp int) (spare int, retired bool) {
	if d.redirect == nil || d.redirect[pp] < 0 {
		return -1, false
	}
	return d.redirect[pp], true
}

// TotalWrites returns the number of page writes applied to the array.
func (d *Device) TotalWrites() uint64 { return d.writes }

// TotalReads returns the number of page reads served.
func (d *Device) TotalReads() uint64 { return d.reads }

// TotalEndurance returns the sum of all cells' endurance, spares included —
// the number of page writes a perfect wear-leveler with perfect retirement
// could absorb. The ideal-lifetime calculations use this. The sum saturates
// at MaxUint64 instead of wrapping, so budget math derived from it (demand
// caps, normalized lifetimes) degrades to a loose bound rather than a small
// garbage value on adversarially large endurance maps.
func (d *Device) TotalEndurance() uint64 {
	var sum uint64
	if d.wear32 != nil {
		for _, e := range d.end32 {
			sum += uint64(e)
		}
		return sum
	}
	for _, e := range d.endurance {
		if next := sum + e; next >= sum {
			sum = next
		} else {
			return ^uint64(0)
		}
	}
	return sum
}

// WearSummary aggregates the wear state of the array.
type WearSummary struct {
	TotalWear   uint64
	MaxWear     uint64
	MaxWearPage int
	// MaxFraction is the highest wear/endurance ratio across pages — 1.0
	// means some page is worn out.
	MaxFraction     float64
	MaxFractionPage int
	MeanFraction    float64
}

// Summary computes the current WearSummary.
func (d *Device) Summary() WearSummary {
	if d.wear32 != nil {
		return d.summary32()
	}
	var s WearSummary
	s.MaxWearPage = -1
	s.MaxFractionPage = -1
	var fracSum float64
	for pp, w := range d.wear {
		s.TotalWear += w
		if w > s.MaxWear {
			s.MaxWear = w
			s.MaxWearPage = pp
		}
		f := float64(w) * d.invEndurance[pp]
		fracSum += f
		if f > s.MaxFraction {
			s.MaxFraction = f
			s.MaxFractionPage = pp
		}
	}
	if len(d.wear) > 0 {
		s.MeanFraction = fracSum / float64(len(d.wear))
	}
	return s
}

// WearHistogram bins wear/endurance fractions into the given number of
// buckets over [0, 1]; fractions above 1 land in the last bucket.
func (d *Device) WearHistogram(buckets int) []int {
	if buckets <= 0 {
		return nil
	}
	if d.wear32 != nil {
		return d.wearHistogram32(buckets)
	}
	h := make([]int, buckets)
	for pp, w := range d.wear {
		f := float64(w) * d.invEndurance[pp]
		b := int(f * float64(buckets))
		if b >= buckets {
			b = buckets - 1
		}
		h[b]++
	}
	return h
}

// Reset clears wear, payloads, failure and retirement state but keeps the
// endurance map.
func (d *Device) Reset() {
	for i := range d.wear {
		d.wear[i] = 0
	}
	for i := range d.wear32 {
		d.wear32[i] = 0
	}
	for i := range d.payload {
		d.payload[i] = 0
	}
	d.writes = 0
	d.reads = 0
	d.failedLog = nil
	d.acked = 0
	d.redirect = nil
	d.isTarget = nil
	d.slack = 0
	d.slackAt = 0
	d.slackValid = false
}
