// Package fixlocks exercises the locks analyzer: by-value copies of structs
// carrying sync or sync/atomic state, and mixed atomic/plain access to the
// same field.
package fixlocks

import (
	"sync"
	"sync/atomic"
)

// Hot carries its count in an atomic; Guarded holds a mutex.
type Hot struct{ n atomic.Int64 }

// Guarded pairs a mutex with the state it guards.
type Guarded struct {
	mu   sync.Mutex
	hits int
}

// ByValueReceiver copies the mutex on every call: finding.
func (g Guarded) ByValueReceiver() int { return g.hits }

// TakeByValue copies the mutex at every call site: finding.
func TakeByValue(g Guarded) int { return g.hits }

// Duplicate splits one atomic counter into two: finding on the assignment.
func Duplicate(h *Hot) int64 {
	dup := *h
	return dup.n.Load()
}

// Drain copies each element into the range value variable: finding.
func Drain(hots []Hot) int64 {
	total := int64(0)
	for _, h := range hots {
		total += h.n.Load()
	}
	return total
}

func observe(h Hot) {} // parameter finding

// Feed dereferences into a by-value argument: finding at the call site too.
func Feed(h *Hot) { observe(*h) }

// SharePointers passes pointers throughout: clean.
func SharePointers(g *Guarded, h *Hot) {
	g.mu.Lock()
	g.hits++
	g.mu.Unlock()
	h.n.Add(1)
}

// racy mixes atomic and plain access to the same field.
type racy struct{ flag int32 }

// Race stores atomically then reads plainly: finding on the plain read.
func Race(r *racy) bool {
	atomic.StoreInt32(&r.flag, 1)
	return r.flag == 1
}
