// Package snap is the checkpoint codec: a little-endian binary
// writer/reader pair with latched errors, plus a versioned, checksummed,
// atomically-replaced file container. The simulator's checkpoint/resume
// layer (internal/sim) serializes every stateful component through this
// package so a resumed lifetime run is bit-identical to an uninterrupted
// one.
//
// Encoding rules:
//
//   - All integers are fixed-width little-endian; int is written as int64.
//   - Slices are length-prefixed (uint32). Fixed-size destinations
//     (U64sInto and friends) require the stored length to match the
//     destination exactly, so a checkpoint taken on a differently-sized
//     system fails loudly instead of partially restoring.
//   - Sections are delimited by string tags (Tag/Expect), so a decode that
//     drifts out of sync reports the section where it happened.
//
// Errors are latched: after the first failure every subsequent operation is
// a no-op (reads return zeros), and Err reports the first failure. Callers
// write or read a whole structure and check once.
package snap

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
)

// Writer serializes primitives onto an io.Writer with error latching.
type Writer struct {
	w   io.Writer
	err error
	buf [8]byte
}

// NewWriter returns a Writer over w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// Err returns the first write error, if any.
func (w *Writer) Err() error { return w.err }

func (w *Writer) write(b []byte) {
	if w.err != nil {
		return
	}
	if _, err := w.w.Write(b); err != nil {
		w.err = err
	}
}

// Write implements io.Writer by delegating to the underlying stream, so a
// layered encoder (device/scheme/source Snapshot methods taking io.Writer)
// can append its section of a checkpoint through the same Writer.
func (w *Writer) Write(p []byte) (int, error) {
	if w.err != nil {
		return 0, w.err
	}
	n, err := w.w.Write(p)
	if err != nil {
		w.err = err
	}
	return n, err
}

// U8 writes one byte.
func (w *Writer) U8(v uint8) {
	w.buf[0] = v
	w.write(w.buf[:1])
}

// U16 writes a uint16.
func (w *Writer) U16(v uint16) {
	binary.LittleEndian.PutUint16(w.buf[:2], v)
	w.write(w.buf[:2])
}

// U32 writes a uint32.
func (w *Writer) U32(v uint32) {
	binary.LittleEndian.PutUint32(w.buf[:4], v)
	w.write(w.buf[:4])
}

// U64 writes a uint64.
func (w *Writer) U64(v uint64) {
	binary.LittleEndian.PutUint64(w.buf[:8], v)
	w.write(w.buf[:8])
}

// I64 writes an int64.
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// Int writes an int as int64.
func (w *Writer) Int(v int) { w.I64(int64(v)) }

// Bool writes a bool as one byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// F64 writes a float64 by its IEEE-754 bits.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// String writes a length-prefixed string.
func (w *Writer) String(s string) {
	w.U32(uint32(len(s)))
	w.write([]byte(s))
}

// Tag writes a section tag; Reader.Expect verifies it on decode.
func (w *Writer) Tag(tag string) { w.String(tag) }

// U64s writes a length-prefixed []uint64.
func (w *Writer) U64s(vs []uint64) {
	w.U32(uint32(len(vs)))
	for _, v := range vs {
		w.U64(v)
	}
}

// U32s writes a length-prefixed []uint32.
func (w *Writer) U32s(vs []uint32) {
	w.U32(uint32(len(vs)))
	for _, v := range vs {
		w.U32(v)
	}
}

// U16s writes a length-prefixed []uint16.
func (w *Writer) U16s(vs []uint16) {
	w.U32(uint32(len(vs)))
	for _, v := range vs {
		w.U16(v)
	}
}

// U8s writes a length-prefixed []uint8.
func (w *Writer) U8s(vs []uint8) {
	w.U32(uint32(len(vs)))
	w.write(vs)
}

// Ints writes a length-prefixed []int (as int64s).
func (w *Writer) Ints(vs []int) {
	w.U32(uint32(len(vs)))
	for _, v := range vs {
		w.Int(v)
	}
}

// F64s writes a length-prefixed []float64.
func (w *Writer) F64s(vs []float64) {
	w.U32(uint32(len(vs)))
	for _, v := range vs {
		w.F64(v)
	}
}

// Reader deserializes primitives from an io.Reader with error latching.
type Reader struct {
	r   io.Reader
	err error
	buf [8]byte
}

// NewReader returns a Reader over r.
func NewReader(r io.Reader) *Reader { return &Reader{r: r} }

// Err returns the first read error, if any.
func (r *Reader) Err() error { return r.err }

// fail latches a decode error.
func (r *Reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("snap: "+format, args...)
	}
}

func (r *Reader) read(b []byte) bool {
	if r.err != nil {
		return false
	}
	if _, err := io.ReadFull(r.r, b); err != nil {
		r.err = fmt.Errorf("snap: truncated input: %w", err)
		return false
	}
	return true
}

// Read implements io.Reader by delegating to the underlying stream, so a
// layered decoder (device/scheme/source Restore methods taking io.Reader)
// can consume its section of a checkpoint through the same Reader.
func (r *Reader) Read(p []byte) (int, error) {
	if r.err != nil {
		return 0, r.err
	}
	n, err := r.r.Read(p)
	if err != nil && err != io.EOF {
		r.err = err
	}
	return n, err
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	if !r.read(r.buf[:1]) {
		return 0
	}
	return r.buf[0]
}

// U16 reads a uint16.
func (r *Reader) U16() uint16 {
	if !r.read(r.buf[:2]) {
		return 0
	}
	return binary.LittleEndian.Uint16(r.buf[:2])
}

// U32 reads a uint32.
func (r *Reader) U32() uint32 {
	if !r.read(r.buf[:4]) {
		return 0
	}
	return binary.LittleEndian.Uint32(r.buf[:4])
}

// U64 reads a uint64.
func (r *Reader) U64() uint64 {
	if !r.read(r.buf[:8]) {
		return 0
	}
	return binary.LittleEndian.Uint64(r.buf[:8])
}

// I64 reads an int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// Int reads an int written by Writer.Int.
func (r *Reader) Int() int { return int(r.I64()) }

// Bool reads a bool.
func (r *Reader) Bool() bool { return r.U8() != 0 }

// F64 reads a float64.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// String reads a length-prefixed string of at most maxLen bytes.
func (r *Reader) String(maxLen int) string {
	n := r.U32()
	if r.err != nil {
		return ""
	}
	if int(n) > maxLen {
		r.fail("string length %d exceeds limit %d", n, maxLen)
		return ""
	}
	b := make([]byte, n)
	if !r.read(b) {
		return ""
	}
	return string(b)
}

// maxTagLen bounds section tags; tags are short literals.
const maxTagLen = 64

// Expect reads a section tag and latches an error unless it matches want.
func (r *Reader) Expect(want string) {
	got := r.String(maxTagLen)
	if r.err == nil && got != want {
		r.fail("section tag mismatch: got %q, want %q", got, want)
	}
}

// sliceLen reads and validates a fixed-destination slice length.
func (r *Reader) sliceLen(want int, what string) bool {
	n := r.U32()
	if r.err != nil {
		return false
	}
	if int(n) != want {
		r.fail("%s length %d does not match destination %d", what, n, want)
		return false
	}
	return true
}

// U64sInto fills dst from a slice written by U64s; the stored length must
// equal len(dst).
func (r *Reader) U64sInto(dst []uint64) {
	if !r.sliceLen(len(dst), "uint64 slice") {
		return
	}
	for i := range dst {
		dst[i] = r.U64()
	}
}

// U32sInto fills dst from a slice written by U32s.
func (r *Reader) U32sInto(dst []uint32) {
	if !r.sliceLen(len(dst), "uint32 slice") {
		return
	}
	for i := range dst {
		dst[i] = r.U32()
	}
}

// U16sInto fills dst from a slice written by U16s.
func (r *Reader) U16sInto(dst []uint16) {
	if !r.sliceLen(len(dst), "uint16 slice") {
		return
	}
	for i := range dst {
		dst[i] = r.U16()
	}
}

// U8sInto fills dst from a slice written by U8s.
func (r *Reader) U8sInto(dst []uint8) {
	if !r.sliceLen(len(dst), "uint8 slice") {
		return
	}
	r.read(dst)
}

// IntsInto fills dst from a slice written by Ints.
func (r *Reader) IntsInto(dst []int) {
	if !r.sliceLen(len(dst), "int slice") {
		return
	}
	for i := range dst {
		dst[i] = r.Int()
	}
}

// IntSlice reads a variable-length []int of at most maxLen entries (for
// state whose size is data-dependent, like first-touch orderings).
func (r *Reader) IntSlice(maxLen int) []int {
	n := r.U32()
	if r.err != nil {
		return nil
	}
	if int(n) > maxLen {
		r.fail("int slice length %d exceeds limit %d", n, maxLen)
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = r.Int()
	}
	return out
}

// F64sInto fills dst from a slice written by F64s.
func (r *Reader) F64sInto(dst []float64) {
	if !r.sliceLen(len(dst), "float64 slice") {
		return
	}
	for i := range dst {
		dst[i] = r.F64()
	}
}

// File container. A checkpoint file is:
//
//	magic   uint32  "TWLS"
//	version uint32  format version (Version)
//	length  uint64  payload byte count
//	crc     uint32  CRC-32C (Castagnoli) of the payload
//	payload length bytes
//
// WriteFile streams the payload straight into a temp file in the
// destination directory — through a buffered writer and a running CRC-32C,
// so the payload is never held in memory — then backfills the header,
// fsyncs the file and renames it over the target. A crash mid-checkpoint
// leaves the previous checkpoint intact (and at worst an orphaned temp
// file; see SweepOrphans), and a torn write is caught by the length/CRC
// check on load.

// Magic identifies a checkpoint file.
const Magic uint32 = 0x534C5754 // "TWLS" little-endian

// Version is the current checkpoint format version. Loaders reject other
// versions rather than guessing at layouts. v2: the inconsistent attack
// stream additionally persists its deferred-feedback debt (owed).
const Version uint32 = 2

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// hdrLen is the fixed size of the file header (magic, version, length, crc).
const hdrLen = 4 + 4 + 8 + 4

// crcCountWriter passes writes through to an underlying writer while
// maintaining a running CRC-32C and byte count, so WriteFile can stream an
// arbitrarily large payload without ever holding it in memory.
type crcCountWriter struct {
	w   io.Writer
	crc uint32
	n   uint64
}

func (c *crcCountWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.crc = crc32.Update(c.crc, castagnoli, p[:n])
	c.n += uint64(n)
	return n, err
}

// WriteFile atomically writes a checkpoint file at path whose payload is
// produced by encode. The payload is streamed to the temp file as encode
// produces it (a full-geometry packed checkpoint would otherwise double the
// engine's resident memory); the length/CRC header is backfilled once the
// payload size and checksum are known, before the fsync + rename install.
// It returns the total file size in bytes.
func WriteFile(path string, encode func(*Writer) error) (int64, error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return 0, fmt.Errorf("snap: create temp checkpoint: %w", err)
	}
	cleanup := func() { _ = os.Remove(tmp.Name()) }
	fail := func(stage string, err error) (int64, error) {
		_ = tmp.Close()
		cleanup()
		return 0, fmt.Errorf("snap: %s checkpoint: %w", stage, err)
	}

	// Reserve the header, stream the payload behind it through a buffered
	// running-CRC writer, then backfill the real header.
	var zero [hdrLen]byte
	if _, err := tmp.Write(zero[:]); err != nil {
		return fail("write", err)
	}
	cw := &crcCountWriter{w: tmp}
	bw := bufio.NewWriterSize(cw, 1<<16)
	w := NewWriter(bw)
	if err := encode(w); err != nil {
		_ = tmp.Close()
		cleanup()
		return 0, fmt.Errorf("snap: encode: %w", err)
	}
	if err := w.Err(); err != nil {
		_ = tmp.Close()
		cleanup()
		return 0, fmt.Errorf("snap: encode: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fail("write", err)
	}

	var hdr bytes.Buffer
	hw := NewWriter(&hdr)
	hw.U32(Magic)
	hw.U32(Version)
	hw.U64(cw.n)
	hw.U32(cw.crc)
	if err := hw.Err(); err != nil {
		return fail("encode header of", err)
	}
	if _, err := tmp.WriteAt(hdr.Bytes(), 0); err != nil {
		return fail("write header of", err)
	}
	if err := tmp.Sync(); err != nil {
		return fail("sync", err)
	}
	if err := tmp.Close(); err != nil {
		cleanup()
		return 0, fmt.Errorf("snap: close checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		cleanup()
		return 0, fmt.Errorf("snap: install checkpoint: %w", err)
	}
	return int64(hdrLen) + int64(cw.n), nil
}

// SweepOrphans removes orphaned checkpoint temp files (the "<name>.tmp-*"
// files WriteFile creates and renames away) left in dir by a process killed
// mid-install, so long-lived resume directories do not accumulate garbage.
// It must not run concurrently with WriteFile calls targeting the same
// directory — call it at startup, before any checkpoint writer is live. It
// returns the number of files removed. A missing directory sweeps zero
// files without error.
func SweepOrphans(dir string) (int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, fmt.Errorf("snap: sweep orphans: %w", err)
	}
	removed := 0
	for _, e := range entries {
		if e.IsDir() || !strings.Contains(e.Name(), ".tmp-") {
			continue
		}
		if err := os.Remove(filepath.Join(dir, e.Name())); err != nil {
			return removed, fmt.Errorf("snap: sweep orphans: %w", err)
		}
		removed++
	}
	return removed, nil
}

// ReadFile loads, verifies and decodes a checkpoint file written by
// WriteFile. decode must consume the payload exactly.
func ReadFile(path string, decode func(*Reader) error) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("snap: read checkpoint: %w", err)
	}
	if len(data) < hdrLen {
		return fmt.Errorf("snap: checkpoint %s too short (%d bytes)", path, len(data))
	}
	hr := NewReader(bytes.NewReader(data[:hdrLen]))
	if m := hr.U32(); m != Magic {
		return fmt.Errorf("snap: %s is not a checkpoint file (magic %#x)", path, m)
	}
	if v := hr.U32(); v != Version {
		return fmt.Errorf("snap: %s has format version %d, this build reads %d", path, v, Version)
	}
	length := hr.U64()
	crc := hr.U32()
	if err := hr.Err(); err != nil {
		return err
	}
	payload := data[hdrLen:]
	if uint64(len(payload)) != length {
		return fmt.Errorf("snap: %s payload is %d bytes, header declares %d (torn write?)",
			path, len(payload), length)
	}
	if got := crc32.Checksum(payload, castagnoli); got != crc {
		return fmt.Errorf("snap: %s checksum mismatch: file %#x, computed %#x (corrupt checkpoint)",
			path, crc, got)
	}
	br := bytes.NewReader(payload)
	r := NewReader(br)
	if err := decode(r); err != nil {
		return fmt.Errorf("snap: decode %s: %w", path, err)
	}
	if err := r.Err(); err != nil {
		return fmt.Errorf("snap: decode %s: %w", path, err)
	}
	if br.Len() != 0 {
		return fmt.Errorf("snap: decode %s left %d unread payload bytes", path, br.Len())
	}
	return nil
}
