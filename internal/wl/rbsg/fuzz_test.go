package rbsg

import (
	"bytes"
	"testing"

	"twl/internal/detect"
	"twl/internal/pcm"
	"twl/internal/wl"
)

// fuzzScheme builds a small RBSG array with a tight detector window, a short
// gap interval and low, uneven endurance, so a few hundred writes routinely
// cross window closes, gap moves, alarm boosts, cross-region shuffles and
// the endurance clamp — every event the fast path must stop before.
func fuzzScheme(t *testing.T, base, win, iv uint8) *Scheme {
	t.Helper()
	geom := pcm.Geometry{Pages: 64, PageSize: 4096, LineSize: 128, Ranks: 1, Banks: 1}
	end := make([]uint64, geom.Pages)
	for i := range end {
		end[i] = 40 + uint64(base)%200 + uint64(i%5)
	}
	dev, err := pcm.NewDevice(geom, pcm.DefaultTiming(), end)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(dev, Config{
		Regions:              8,
		BaseGapInterval:      int(iv)%40 + 2,
		BoostFactor:          4,
		AlarmShuffleInterval: 16,
		Detector: detect.Config{
			WindowWrites:       int(win)%60 + 12,
			TrackTop:           8,
			ConcentrationAlarm: 0.3,
			ReversalAlarm:      -0.2,
			AlarmWindows:       2,
		},
		Seed: uint64(base)*977 + 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// snapBytes serializes the scheme's full mutable state (remap, region
// rotation progress, detector, shuffle RNG position, counters, stats) for
// equivalence checks — RNG-stream alignment included.
func snapBytes(t *testing.T, s *Scheme) string {
	t.Helper()
	var buf bytes.Buffer
	if err := s.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// compareSchemes requires bit-identical scheme and device state — the
// fast-forward contract after any WriteRun/WriteSweep sequence versus the
// per-write equivalent.
func compareSchemes(t *testing.T, fast, slow *Scheme) {
	t.Helper()
	if snapBytes(t, fast) != snapBytes(t, slow) {
		t.Fatal("scheme state diverges between bulk and per-write paths")
	}
	df, ds := fast.dev, slow.dev
	if df.TotalWrites() != ds.TotalWrites() {
		t.Fatalf("device writes: fast %d, slow %d", df.TotalWrites(), ds.TotalWrites())
	}
	for pp := 0; pp < df.Pages(); pp++ {
		if df.Wear(pp) != ds.Wear(pp) || df.Peek(pp) != ds.Peek(pp) {
			t.Fatalf("device page %d: wear %d/%d payload %d/%d",
				pp, df.Wear(pp), ds.Wear(pp), df.Peek(pp), ds.Peek(pp))
		}
	}
	if df.FailedPages() != ds.FailedPages() {
		t.Fatalf("failure log length: fast %d, slow %d", df.FailedPages(), ds.FailedPages())
	}
	if err := fast.CheckInvariants(); err != nil {
		t.Fatalf("fast invariants: %v", err)
	}
	if err := slow.CheckInvariants(); err != nil {
		t.Fatalf("slow invariants: %v", err)
	}
}

// eventFired reports whether serving one write through the per-write path
// actually ran an event, given the pre-write observables: a gap move or a
// non-degenerate shuffle blocks, a window close bumps the window count, and
// a degenerate shuffle (no hottest address, or the swap picked the same
// page) still resets the shuffle countdown.
func eventFired(s *Scheme, cost wl.Cost, windows0, sinceShuffle0 int) bool {
	return cost.Blocked || s.det.Stats().Windows != windows0 || s.sinceShuffle < sinceShuffle0
}

// FuzzEventHorizonRBSG fuzzes the RBSG event-horizon arithmetic: for every
// tuple (endurance base, detector window, gap interval, target address, run
// length) driving WriteRun or WriteSweep through the bulk-loop caller
// protocol must leave scheme, device, detector, RNG and accumulated cost
// bit-identical to the per-write loop, and absorbed == 0 must always mean
// "the next write fires an event" (no silent livelock, no early stop).
func FuzzEventHorizonRBSG(f *testing.F) {
	f.Add(uint8(0), uint8(0), uint8(0), uint8(0), uint16(300))
	f.Add(uint8(100), uint8(17), uint8(3), uint8(9), uint16(600))
	f.Add(uint8(200), uint8(50), uint8(39), uint8(55), uint16(120))
	f.Add(uint8(42), uint8(30), uint8(1), uint8(20), uint16(500))
	f.Fuzz(func(t *testing.T, base, win, iv, la8 uint8, n16 uint16) {
		n := int(n16)%600 + 1

		// Same-address run: fast side uses the bulk-loop protocol, slow side
		// is the literal per-write loop. Both stop at n writes or the first
		// page failure, mirroring the lifetime loop.
		fast := fuzzScheme(t, base, win, iv)
		slow := fuzzScheme(t, base, win, iv)
		la := int(la8) % fast.LogicalPages()
		var fc, sc costTotals
		served := 0
		for served < n {
			if _, failed := fast.dev.Failed(); failed {
				break
			}
			cost, applied := fast.WriteRun(la, uint64(served), n-served)
			if applied > 0 {
				if cost.Blocked {
					t.Fatal("WriteRun absorbed a blocked write")
				}
				fc.add(cost, applied)
				served += applied
				continue
			}
			w0, ss0 := fast.det.Stats().Windows, fast.sinceShuffle
			ev := fast.Write(la, uint64(served))
			if !eventFired(fast, ev, w0, ss0) {
				t.Fatal("absorbed == 0 but the served write fired no event")
			}
			fc.add(ev, 1)
			served++
		}
		for i := 0; i < served; i++ {
			if _, failed := slow.dev.Failed(); failed {
				t.Fatalf("slow run failed after %d writes, fast served %d", i, served)
			}
			sc.add(slow.Write(la, uint64(i)), 1)
		}
		if _, failed := fast.dev.Failed(); !failed && served < n {
			t.Fatalf("fast run stopped at %d/%d without a failure", served, n)
		}
		if fc != sc {
			t.Fatalf("run cost totals diverge: fast %+v, slow %+v", fc, sc)
		}
		compareSchemes(t, fast, slow)

		// Consecutive-address sweep cycling over the demand address space,
		// fanning out across all regions' gap-move horizons.
		fast = fuzzScheme(t, base, win, iv)
		slow = fuzzScheme(t, base, win, iv)
		lp := fast.LogicalPages()
		fc, sc = costTotals{}, costTotals{}
		served = 0
		for served < n {
			if _, failed := fast.dev.Failed(); failed {
				break
			}
			a := served % lp
			run := lp - a
			if rem := n - served; rem < run {
				run = rem
			}
			cost, applied := fast.WriteSweep(a, uint64(served), run)
			if applied > 0 {
				if cost.Blocked {
					t.Fatal("WriteSweep absorbed a blocked write")
				}
				fc.add(cost, applied)
				served += applied
				continue
			}
			w0, ss0 := fast.det.Stats().Windows, fast.sinceShuffle
			ev := fast.Write(a, uint64(served))
			if !eventFired(fast, ev, w0, ss0) {
				t.Fatal("sweep absorbed == 0 but the served write fired no event")
			}
			fc.add(ev, 1)
			served++
		}
		for i := 0; i < served; i++ {
			if _, failed := slow.dev.Failed(); failed {
				t.Fatalf("slow sweep failed after %d writes, fast served %d", i, served)
			}
			sc.add(slow.Write(i%lp, uint64(i)), 1)
		}
		if _, failed := fast.dev.Failed(); !failed && served < n {
			t.Fatalf("fast sweep stopped at %d/%d without a failure", served, n)
		}
		if fc != sc {
			t.Fatalf("sweep cost totals diverge: fast %+v, slow %+v", fc, sc)
		}
		compareSchemes(t, fast, slow)
	})
}

// costTotals accumulates wl.Cost over a write sequence; the uniform
// event-free cost contract means a bulk chunk's cost times its length must
// equal the per-write sum.
type costTotals struct {
	writes, reads, cycles, blocked int
}

func (c *costTotals) add(cost wl.Cost, k int) {
	c.writes += cost.DeviceWrites * k
	c.reads += cost.DeviceReads * k
	c.cycles += cost.ExtraCycles * k
	if cost.Blocked {
		c.blocked += k
	}
}
