package sim

import (
	"errors"
	"fmt"
	"io"

	"twl/internal/clock"
	"twl/internal/obs"
	"twl/internal/snap"
	"twl/internal/wl"
)

// Crash-safe checkpointing. A lifetime run is hours of simulated writes; a
// crash (or SIGKILL) used to throw all of it away. With a CheckpointConfig
// the run periodically serializes every piece of mutable state — device
// wear, scheme tables, RNG stream positions, source position, the request
// loop's own accounting, metrics and trace sequence — into one versioned,
// CRC-checked file (internal/snap), written atomically so a crash mid-write
// leaves the previous checkpoint intact. Resuming reloads that file into a
// freshly constructed, identically configured system and continues
// bit-identically: the resumed run's results, wear, payloads, metrics and
// trace tail are indistinguishable from a run that was never interrupted,
// under both the per-request and the fast-forward paths.

// CheckpointConfig enables periodic checkpoints of a lifetime run.
type CheckpointConfig struct {
	// Path is the checkpoint file. Each checkpoint atomically replaces it
	// (write to temp file, fsync, rename), so the file always holds the
	// latest complete checkpoint.
	Path string
	// Every is the checkpoint cadence in demand writes (0 selects
	// DefaultCheckpointEvery). The fast-forward path clamps its bulk chunks
	// at this cadence, so checkpoints land at exactly the same demand counts
	// as on the per-request path.
	Every uint64
	// Resume loads Path before serving the first request. The scheme,
	// source and config must be constructed exactly as for the interrupted
	// run (same seeds, same geometry); the checkpoint carries every byte of
	// mutable state but no construction inputs. Metrics and Trace sinks, if
	// configured, should be fresh: restored counter and histogram values are
	// added onto whatever the registry already holds.
	Resume bool
}

// DefaultCheckpointEvery is the checkpoint cadence when CheckpointConfig
// leaves Every zero: every 2^22 ≈ 4.2M demand writes keeps a scaled-system
// lifetime run to a handful of checkpoints.
const DefaultCheckpointEvery = 1 << 22

// Source snapshot support. The wrapper types delegate to the wrapped
// stream's own wl.Snapshotter implementation, so RunLifetime can checkpoint
// any source whose underlying generator opts in.

// Snapshot implements wl.Snapshotter when the wrapped attack stream does.
func (a attackSource) Snapshot(w io.Writer) error {
	sn, ok := a.s.(wl.Snapshotter)
	if !ok {
		return fmt.Errorf("sim: attack stream %T does not support checkpointing", a.s)
	}
	return sn.Snapshot(w)
}

// Restore implements wl.Snapshotter when the wrapped attack stream does.
func (a attackSource) Restore(r io.Reader) error {
	sn, ok := a.s.(wl.Snapshotter)
	if !ok {
		return fmt.Errorf("sim: attack stream %T does not support checkpointing", a.s)
	}
	return sn.Restore(r)
}

// Snapshot implements wl.Snapshotter via the synthetic generator.
func (w workloadSource) Snapshot(wr io.Writer) error { return w.g.Snapshot(wr) }

// Restore implements wl.Snapshotter via the synthetic generator.
func (w workloadSource) Restore(r io.Reader) error { return w.g.Restore(r) }

// Snapshot implements wl.Snapshotter: only the replay position is mutable
// (the folded records are construction inputs).
func (r *replaySource) Snapshot(w io.Writer) error {
	sw := snap.NewWriter(w)
	sw.Int(r.pos)
	return sw.Err()
}

// Restore implements wl.Snapshotter.
func (r *replaySource) Restore(rd io.Reader) error {
	sr := snap.NewReader(rd)
	pos := sr.Int()
	if err := sr.Err(); err != nil {
		return err
	}
	if pos < 0 || pos >= len(r.recs) {
		return fmt.Errorf("sim: checkpoint replay position %d outside trace of %d records", pos, len(r.recs))
	}
	r.pos = pos
	return nil
}

// validateCheckpointConfig fails fast — before any request is served — when
// a checkpointed run involves a scheme or source that cannot be serialized.
func validateCheckpointConfig(s wl.Scheme, src Source, ckpt *CheckpointConfig) error {
	if ckpt.Path == "" {
		return errors.New("sim: CheckpointConfig needs a path")
	}
	if _, ok := s.(wl.Snapshotter); !ok {
		return fmt.Errorf("sim: scheme %s does not support checkpointing", s.Name())
	}
	if _, ok := src.(wl.Snapshotter); !ok {
		return fmt.Errorf("sim: source %T does not support checkpointing", src)
	}
	return nil
}

// initCkptMetrics registers the checkpoint observability series. They
// describe the checkpoint machinery itself, not the simulated system, so
// they are not part of a checkpoint and resume comparisons exclude them.
func (l *lifetimeState) initCkptMetrics(reg *obs.Registry) {
	reg.Help("twl_ckpt_total", "checkpoints written during the run")
	reg.Help("twl_ckpt_bytes", "size of the most recent checkpoint file")
	reg.Help("twl_ckpt_seconds", "wall-clock seconds per checkpoint write")
	l.ckptTotal = reg.Counter("twl_ckpt_total")
	l.ckptBytes = reg.Gauge("twl_ckpt_bytes")
	l.ckptSecs = reg.Histogram("twl_ckpt_seconds", obs.ExponentialBuckets(1e-4, 4, 10))
}

// ckptAt writes a checkpoint when demand sits on the configured cadence,
// then polls the preemption hook when one is set. Called by the request
// loops after a write's accounting, invariant check and failure check, so a
// checkpoint always captures a consistent, non-failed state. A checkpoint
// that cannot be written aborts the run: a caller who asked for crash
// safety must not silently lose it.
//
// A stop request returns an error wrapping ErrRunStopped; with
// checkpointing configured, a final checkpoint is written at the stop point
// first (unless the cadence checkpoint above just captured this exact
// demand count), so a preempted run resumes from where it stopped.
func (l *lifetimeState) ckptAt() error {
	if l.ckptEvery != 0 && l.demand != 0 && l.demand%l.ckptEvery == 0 {
		if err := l.writeCheckpoint(); err != nil {
			return err
		}
	}
	if l.stop != nil && l.demand >= l.nextStop {
		l.nextStop = l.demand + l.stopEvery
		if l.stop() {
			if l.ckptEvery != 0 && l.demand%l.ckptEvery != 0 {
				if err := l.writeCheckpoint(); err != nil {
					return err
				}
			}
			return fmt.Errorf("%w after %d demand writes", ErrRunStopped, l.demand)
		}
	}
	return nil
}

// writeCheckpoint serializes the full run state into the checkpoint file.
func (l *lifetimeState) writeCheckpoint() error {
	start := clock.Now()
	n, err := snap.WriteFile(l.ckptPath, l.encodeCheckpoint)
	if err != nil {
		return fmt.Errorf("sim: checkpoint at %d demand writes: %w", l.demand, err)
	}
	if l.ckptTotal != nil {
		l.ckptTotal.Inc()
		l.ckptBytes.Set(float64(n))
		l.ckptSecs.Observe(clock.Since(start).Seconds())
	}
	return nil
}

// encodeCheckpoint writes the tagged checkpoint sections: run identity,
// loop accounting (including a partially consumed source run — the source
// has already committed past it, so the remainder must survive the resume),
// then the device, scheme, source, metrics and trace state.
func (l *lifetimeState) encodeCheckpoint(sw *snap.Writer) error {
	sw.Tag("meta")
	sw.String(l.s.Name())
	sw.Int(l.dev.Pages())
	sw.U64(l.dev.TotalEndurance())

	sw.Tag("loop")
	sw.U64(l.demand)
	sw.U64(l.blocked)
	sw.I64(l.cycles)
	sw.Bool(l.fb.Blocked)
	sw.I64(l.fb.Cycles)
	sw.Bool(l.runActive)
	sw.Int(l.runAddr)
	sw.Int(l.runN)
	sw.Int(l.runOff)
	if err := sw.Err(); err != nil {
		return err
	}

	sw.Tag("device")
	if err := l.dev.Snapshot(sw); err != nil {
		return err
	}
	sw.Tag("scheme")
	if err := l.s.(wl.Snapshotter).Snapshot(sw); err != nil {
		return err
	}
	sw.Tag("source")
	if err := l.src.(wl.Snapshotter).Snapshot(sw); err != nil {
		return err
	}

	sw.Tag("metrics")
	sw.Bool(l.metrics != nil)
	if l.metrics != nil {
		sw.U64(l.metrics.writes.Value())
		sw.U64(l.metrics.reads.Value())
		sw.U64(l.metrics.blocked.Value())
		snapHistogram(sw, l.metrics.latency)
	}
	sw.Bool(l.ffRunLen != nil)
	if l.ffRunLen != nil {
		snapHistogram(sw, l.ffRunLen)
		sw.U64(l.ffEvents.Value())
	}

	sw.Tag("trace")
	sw.Bool(l.tracer != nil)
	if l.tracer != nil {
		sw.U64(l.tracer.Seq())
	}
	return sw.Err()
}

// restoreCheckpoint loads the checkpoint file into the freshly constructed
// run. The device, scheme and source were built with the same configuration
// and seeds as the interrupted run; this overwrites their mutable state and
// the loop accounting, after validating that the checkpoint matches the run
// it is being applied to.
func (l *lifetimeState) restoreCheckpoint() error {
	return snap.ReadFile(l.ckptPath, func(sr *snap.Reader) error {
		sr.Expect("meta")
		name := sr.String(128)
		pages := sr.Int()
		totalEnd := sr.U64()
		if err := sr.Err(); err != nil {
			return err
		}
		if name != l.s.Name() {
			return fmt.Errorf("sim: checkpoint is for scheme %q, run uses %q", name, l.s.Name())
		}
		if pages != l.dev.Pages() {
			return fmt.Errorf("sim: checkpoint has %d pages, device has %d", pages, l.dev.Pages())
		}
		if totalEnd != l.dev.TotalEndurance() {
			return fmt.Errorf("sim: checkpoint total endurance %d, device has %d", totalEnd, l.dev.TotalEndurance())
		}

		sr.Expect("loop")
		l.demand = sr.U64()
		l.blocked = sr.U64()
		l.cycles = sr.I64()
		l.fb.Blocked = sr.Bool()
		l.fb.Cycles = sr.I64()
		l.runActive = sr.Bool()
		l.runAddr = sr.Int()
		l.runN = sr.Int()
		l.runOff = sr.Int()
		if err := sr.Err(); err != nil {
			return err
		}

		sr.Expect("device")
		if err := l.dev.Restore(sr); err != nil {
			return err
		}
		sr.Expect("scheme")
		if err := l.s.(wl.Snapshotter).Restore(sr); err != nil {
			return err
		}
		sr.Expect("source")
		if err := l.src.(wl.Snapshotter).Restore(sr); err != nil {
			return err
		}

		sr.Expect("metrics")
		hasMetrics := sr.Bool()
		if hasMetrics != (l.metrics != nil) {
			return fmt.Errorf("sim: checkpoint metrics=%v but run metrics=%v; resume with the same Metrics configuration", hasMetrics, l.metrics != nil)
		}
		if hasMetrics {
			l.metrics.writes.Add(sr.U64())
			l.metrics.reads.Add(sr.U64())
			l.metrics.blocked.Add(sr.U64())
			if err := restoreHistogram(sr, l.metrics.latency); err != nil {
				return err
			}
		}
		if sr.Bool() { // fast-forward series were live when the checkpoint was taken
			if l.reg == nil {
				return errors.New("sim: checkpoint has fast-forward metrics but run has no registry")
			}
			l.initFFMetrics()
			if err := restoreHistogram(sr, l.ffRunLen); err != nil {
				return err
			}
			l.ffEvents.Add(sr.U64())
		}

		sr.Expect("trace")
		hasTrace := sr.Bool()
		if hasTrace != (l.tracer != nil) {
			return fmt.Errorf("sim: checkpoint trace=%v but run trace=%v; resume with the same Trace configuration", hasTrace, l.tracer != nil)
		}
		if hasTrace {
			l.tracer.SetSeq(sr.U64())
		}
		return sr.Err()
	})
}

// snapHistogram appends a histogram's full state (bounds, buckets, count,
// sum) to the checkpoint.
func snapHistogram(sw *snap.Writer, h *obs.Histogram) {
	s := h.Snapshot()
	sw.F64s(s.Bounds)
	sw.U64s(s.Counts)
	sw.U64(s.Count)
	sw.F64(s.Sum)
}

// restoreHistogram merges a checkpointed histogram into the live (freshly
// created, all-zero) handle. Histogram.AddSnapshot validates that the
// bucket bounds match.
func restoreHistogram(sr *snap.Reader, h *obs.Histogram) error {
	cur := h.Snapshot()
	s := obs.HistogramSnapshot{
		Bounds: make([]float64, len(cur.Bounds)),
		Counts: make([]uint64, len(cur.Counts)),
	}
	sr.F64sInto(s.Bounds)
	sr.U64sInto(s.Counts)
	s.Count = sr.U64()
	s.Sum = sr.F64()
	if err := sr.Err(); err != nil {
		return err
	}
	return h.AddSnapshot(s)
}
