package twl

import (
	"errors"
	"math"
	"testing"
	"time"

	"twl/internal/clock"
)

func TestReplicateAggregates(t *testing.T) {
	base := SmallSystem(10)
	calls := 0
	res, err := Replicate(base, 4, func(sys SystemConfig) (float64, error) {
		calls++
		return float64(sys.Seed - base.Seed), nil // 0,1,2,3
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 4 || res.Runs != 4 {
		t.Fatalf("calls=%d runs=%d", calls, res.Runs)
	}
	if res.Mean != 1.5 || res.Min != 0 || res.Max != 3 {
		t.Fatalf("mean/min/max = %v/%v/%v", res.Mean, res.Min, res.Max)
	}
	// Sample σ (÷n−1): the four runs are a sample of the seed population.
	want := math.Sqrt((2.25 + 0.25 + 0.25 + 2.25) / 3)
	if math.Abs(res.StdDev-want) > 1e-12 {
		t.Fatalf("stddev %v, want %v", res.StdDev, want)
	}
}

// TestReplicateSingleRunStdDev: one run gives no spread estimate; the sample
// estimator must report 0, not NaN (÷n−1 would divide by zero).
func TestReplicateSingleRunStdDev(t *testing.T) {
	res, err := Replicate(SmallSystem(10), 1, func(SystemConfig) (float64, error) {
		return 42, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.StdDev != 0 {
		t.Fatalf("single-run stddev %v, want 0", res.StdDev)
	}
}

// TestReplicateDurationsInjectable: run durations come from internal/clock,
// so a deterministic source makes them exact — each run brackets one measure
// call with two clock reads, giving one step per run under a Stepper.
func TestReplicateDurationsInjectable(t *testing.T) {
	start := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	restore := clock.SetForTest(clock.Stepper(start, time.Second))
	defer restore()
	res, err := Replicate(SmallSystem(10), 3, func(SystemConfig) (float64, error) {
		return 1, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Durations) != 3 {
		t.Fatalf("got %d durations, want 3", len(res.Durations))
	}
	for i, d := range res.Durations {
		if d != time.Second {
			t.Fatalf("run %d duration %v, want 1s", i, d)
		}
	}
	if res.Elapsed != 3*time.Second {
		t.Fatalf("elapsed %v, want 3s", res.Elapsed)
	}
}

func TestReplicateValidation(t *testing.T) {
	if _, err := Replicate(SmallSystem(1), 0, nil); err == nil {
		t.Fatal("n=0 accepted")
	}
	wantErr := errors.New("boom")
	_, err := Replicate(SmallSystem(1), 2, func(SystemConfig) (float64, error) { return 0, wantErr })
	if err == nil || !errors.Is(err, wantErr) {
		t.Fatalf("error not propagated: %v", err)
	}
}

// TestReplicateAttackLifetimeStable: TWL's immunity is not a seed artifact
// — across seeds the inconsistent-attack lifetime has a tight spread and
// every run clears SR-level performance.
func TestReplicateAttackLifetimeStable(t *testing.T) {
	res, err := ReplicateAttackLifetime(SmallSystem(100), 5, "TWL_swp", AttackInconsistent)
	if err != nil {
		t.Fatal(err)
	}
	if res.Min < 0.4 {
		t.Fatalf("worst seed normalized %v; immunity not robust (values %v)", res.Min, res.Values)
	}
	if res.StdDev > 0.15 {
		t.Fatalf("spread too wide: %+v", res)
	}
}

func TestReplicateBenchmarkLifetime(t *testing.T) {
	res, err := ReplicateBenchmarkLifetime(SmallSystem(200), 3, "NOWL", "canneal")
	if err != nil {
		t.Fatal(err)
	}
	// NOWL on canneal is calibrated to the Table 2 ratio ~0.017.
	if res.Mean < 0.005 || res.Mean > 0.06 {
		t.Fatalf("NOWL canneal mean %v outside the calibrated band", res.Mean)
	}
}
