// Command benchsim regenerates the benchmark experiments of the paper:
//
//	benchsim -table2   PARSEC write bandwidths and lifetimes (Table 2)
//	benchsim -fig8     normalized lifetime per benchmark (Figure 8)
//	benchsim -fig9     normalized execution time per benchmark (Figure 9)
//
// All run on the scaled default system; -pages/-endurance/-seed adjust the
// scale and -benchmarks restricts the suite (comma-separated Table 2 names).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"twl"
	"twl/internal/cliutil"
	"twl/internal/obs"
	"twl/internal/report"
)

func main() {
	var (
		table2     = flag.Bool("table2", false, "regenerate Table 2")
		fig8       = flag.Bool("fig8", false, "regenerate Figure 8")
		fig9       = flag.Bool("fig9", false, "regenerate Figure 9")
		pages      = flag.Int("pages", 0, "simulated pages (default: DefaultSystem)")
		endurance  = flag.Float64("endurance", 0, "mean endurance (default: DefaultSystem)")
		seed       = flag.Uint64("seed", 1, "simulation seed")
		benches    = flag.String("benchmarks", "", "comma-separated benchmark subset")
		requests   = flag.Int("requests", 0, "Figure 9 requests per benchmark (default 1e6)")
		metrics    = flag.Bool("metrics", false, "print a metrics report (cell timing, per-scheme latency histograms) after the runs")
		traceFile  = flag.String("trace", "", "write per-cell JSONL trace events to this file")
		traceEvery = flag.Uint64("trace-every", 0, "in-run progress event cadence (0: default)")
		pprofPfx   = flag.String("pprof", "", "capture CPU+heap profiles to PREFIX.cpu.pprof / PREFIX.heap.pprof")
	)
	flag.Parse()
	cliutil.Check("benchsim", cliutil.FirstError(
		cliutil.NoArgs(flag.Args()),
		cliutil.NonNegativeInt("-pages", *pages),
		cliutil.NonNegativeFloat("-endurance", *endurance),
		cliutil.NonNegativeInt("-requests", *requests),
	))
	if !*table2 && !*fig8 && !*fig9 {
		*table2, *fig8, *fig9 = true, true, true
	}

	if *pprofPfx != "" {
		stop, err := obs.StartProfile(*pprofPfx)
		fatal(err)
		defer func() { fatal(stop()) }()
	}
	var reg *twl.MetricsRegistry
	if *metrics {
		reg = twl.NewMetrics()
	}
	var tr *twl.Tracer
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		fatal(err)
		defer func() { fatal(f.Close()) }()
		tr = twl.NewRunTracer(f, *traceEvery)
		defer func() { fatal(tr.Err()) }()
	}

	sys := twl.DefaultSystem(*seed)
	if *pages > 0 {
		sys.Pages = *pages
	}
	if *endurance > 0 {
		sys.MeanEndurance = *endurance
	}
	var subset []string
	if *benches != "" {
		subset = strings.Split(*benches, ",")
	}

	if *table2 {
		runTable2(sys)
	}
	if *fig8 {
		cfg := twl.DefaultFig8Config()
		cfg.Benchmarks = subset
		cfg.Metrics = reg
		cfg.Trace = tr
		runFig8(sys, cfg)
	}
	if *fig9 {
		cfg := twl.DefaultFig9Config()
		cfg.Benchmarks = subset
		cfg.Metrics = reg
		if *requests > 0 {
			cfg.Requests = *requests
		}
		runFig9(sys, cfg)
	}
	if reg != nil {
		fmt.Println()
		fatal(reg.WriteText(os.Stdout))
	}
}

func runTable2(sys twl.SystemConfig) {
	rows, err := twl.RunTable2(sys)
	fatal(err)
	tb := report.NewTable("Table 2 — PARSEC benchmarks (reproduced vs paper)",
		"benchmark", "write BW (MB/s)", "ideal (y)", "paper ideal", "w/o WL (y)", "paper w/o WL")
	for _, r := range rows {
		tb.AddRow(r.Benchmark,
			fmt.Sprintf("%.0f", r.WriteBandwidthMBps),
			fmt.Sprintf("%.1f", r.IdealYears),
			fmt.Sprintf("%.1f", r.PaperIdealYears),
			fmt.Sprintf("%.2f", r.NoWLYears),
			fmt.Sprintf("%.1f", r.PaperNoWLYears))
	}
	fatal(tb.Render(os.Stdout))
}

func runFig8(sys twl.SystemConfig, cfg twl.Fig8Config) {
	res, err := twl.RunFig8(sys, cfg)
	fatal(err)
	headers := append([]string{"benchmark"}, cfg.Schemes...)
	tb := report.NewTable("\nFigure 8 — normalized lifetime (fraction of ideal)", headers...)
	for _, row := range res.Rows {
		cells := []string{row.Benchmark}
		for _, s := range cfg.Schemes {
			cells = append(cells, fmt.Sprintf("%.3f", row.Normalized[s]))
		}
		tb.AddRow(cells...)
	}
	cells := []string{"MEAN"}
	for _, s := range cfg.Schemes {
		cells = append(cells, fmt.Sprintf("%.3f", res.Mean[s]))
	}
	tb.AddRow(cells...)
	fatal(tb.Render(os.Stdout))

	chart := report.NewSeries("\nMean normalized lifetime", "")
	for _, s := range cfg.Schemes {
		chart.Add(s, res.Mean[s])
	}
	fatal(chart.Render(os.Stdout, 40))
}

func runFig9(sys twl.SystemConfig, cfg twl.Fig9Config) {
	res, err := twl.RunFig9(sys, cfg)
	fatal(err)
	headers := append([]string{"benchmark"}, cfg.Schemes...)
	tb := report.NewTable("\nFigure 9 — normalized execution time (vs no wear leveling)", headers...)
	for _, row := range res.Rows {
		cells := []string{row.Benchmark}
		for _, s := range cfg.Schemes {
			cells = append(cells, fmt.Sprintf("%.4f", row.Normalized[s]))
		}
		tb.AddRow(cells...)
	}
	cells := []string{"MEAN"}
	for _, s := range cfg.Schemes {
		cells = append(cells, fmt.Sprintf("%.4f", res.Mean[s]))
	}
	tb.AddRow(cells...)
	fatal(tb.Render(os.Stdout))
	for _, s := range cfg.Schemes {
		fmt.Printf("%s mean overhead: %.2f%%\n", s, 100*(res.Mean[s]-1))
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsim:", err)
		os.Exit(1)
	}
}
