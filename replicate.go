package twl

import (
	"errors"
	"fmt"
	"math"
	"time"

	"twl/internal/clock"
	"twl/internal/stats"
)

// Replication runs an experiment across independent seeds and aggregates
// the result — the error bars the paper omits. Every randomized input
// (endurance map, scheme RNGs, workload) derives from the per-run seed, so
// runs are fully independent.

// ReplicateResult aggregates a replicated scalar measurement.
type ReplicateResult struct {
	Runs   int
	Values []float64
	Mean   float64
	// StdDev is the sample standard deviation (Bessel-corrected, ÷n−1): the
	// replicated runs are a sample of the seed population, not the
	// population itself, so the unbiased estimator is the right error bar.
	// It is 0 when Runs == 1.
	StdDev float64
	Min    float64
	Max    float64
	// Durations holds the wall time of each run and Elapsed their sum, read
	// through internal/clock so tests can inject a deterministic source.
	Durations []time.Duration
	Elapsed   time.Duration
}

// Replicate runs measure over n independently seeded systems derived from
// base (seeds base.Seed, base.Seed+1, …) and aggregates the returned
// scalar.
func Replicate(base SystemConfig, n int, measure func(sys SystemConfig) (float64, error)) (ReplicateResult, error) {
	if n <= 0 {
		return ReplicateResult{}, errors.New("twl: Replicate needs n > 0")
	}
	res := ReplicateResult{Runs: n, Min: math.Inf(1), Max: math.Inf(-1)}
	for i := 0; i < n; i++ {
		sys := base
		sys.Seed = base.Seed + uint64(i)
		start := clock.Now()
		v, err := measure(sys)
		d := clock.Since(start)
		if err != nil {
			return ReplicateResult{}, fmt.Errorf("twl: replicate run %d: %w", i, err)
		}
		res.Durations = append(res.Durations, d)
		res.Elapsed += d
		res.Values = append(res.Values, v)
		if v < res.Min {
			res.Min = v
		}
		if v > res.Max {
			res.Max = v
		}
	}
	res.Mean = stats.Mean(res.Values)
	res.StdDev = stats.StdDevSample(res.Values)
	return res, nil
}

// ReplicateAttackLifetime replicates one Figure 6 cell: the normalized
// lifetime of scheme under mode, across n seeds.
func ReplicateAttackLifetime(base SystemConfig, n int, scheme string, mode AttackMode) (ReplicateResult, error) {
	return Replicate(base, n, func(sys SystemConfig) (float64, error) {
		res, err := RunFig6(sys, Fig6Config{
			Schemes:              []string{scheme},
			Modes:                []AttackMode{mode},
			BandwidthBytesPerSec: Fig6AttackBandwidth,
		})
		if err != nil {
			return 0, err
		}
		return res.Cells[scheme][mode.String()].Normalized, nil
	})
}

// ReplicateBenchmarkLifetime replicates one Figure 8 cell: the normalized
// lifetime of scheme on the named benchmark, across n seeds.
func ReplicateBenchmarkLifetime(base SystemConfig, n int, scheme, benchmark string) (ReplicateResult, error) {
	return Replicate(base, n, func(sys SystemConfig) (float64, error) {
		res, err := RunFig8(sys, Fig8Config{
			Schemes:    []string{scheme},
			Benchmarks: []string{benchmark},
		})
		if err != nil {
			return 0, err
		}
		return res.Rows[0].Normalized[scheme], nil
	})
}
