package trace

import (
	"testing"
)

func TestPhasedValidation(t *testing.T) {
	b, _ := BenchmarkByName("canneal")
	if _, err := NewPhased(b, 256, 0, 1); err == nil {
		t.Fatal("zero phase length accepted")
	}
	bad := b
	bad.WriteFraction = 0
	if _, err := NewPhased(bad, 256, 1000, 1); err == nil {
		t.Fatal("invalid inner config accepted")
	}
}

func TestPhasedAdvancesPhases(t *testing.T) {
	b, _ := BenchmarkByName("canneal")
	p, err := NewPhased(b, 256, 1000, 3)
	if err != nil {
		t.Fatal(err)
	}
	writes := 0
	for writes < 5500 {
		if _, w := p.Next(); w {
			writes++
		}
	}
	if p.Phases() != 5 {
		t.Fatalf("phases = %d after 5500 writes at 1000/phase, want 5", p.Phases())
	}
}

// TestPhasedMovesHotSet: the hottest page before and after a phase change
// must (almost always) differ.
func TestPhasedMovesHotSet(t *testing.T) {
	b, _ := BenchmarkByName("vips")
	p, err := NewPhased(b, 512, 50000, 7)
	if err != nil {
		t.Fatal(err)
	}
	hotOf := func() int {
		counts := map[int]int{}
		writes := 0
		for writes < 40000 {
			addr, w := p.Next()
			if w {
				counts[addr]++
				writes++
			}
		}
		best, bestN := -1, -1
		for a, n := range counts {
			if n > bestN {
				best, bestN = a, n
			}
		}
		return best
	}
	h1 := hotOf()
	// Drain past the phase boundary.
	writes := 0
	for writes < 20000 {
		if _, w := p.Next(); w {
			writes++
		}
	}
	h2 := hotOf()
	if h1 == h2 {
		t.Fatalf("hottest page %d unchanged across a phase boundary", h1)
	}
}

// TestPhasedPreservesConcentration: the per-phase hottest share still
// matches the Table 2 calibration (phases move the hot set, not its shape).
func TestPhasedPreservesConcentration(t *testing.T) {
	b, _ := BenchmarkByName("canneal")
	p, err := NewPhased(b, 512, 1<<30, 9) // effectively one long phase
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	writes := 0
	for writes < 500000 {
		addr, w := p.Next()
		if w {
			counts[addr]++
			writes++
		}
	}
	max := 0
	for _, n := range counts {
		if n > max {
			max = n
		}
	}
	share := float64(max) / float64(writes)
	want := p.Inner().HottestShare()
	if share < want*0.85 || share > want*1.15 {
		t.Fatalf("share %v vs designed %v", share, want)
	}
}
