package rng

import (
	"io"

	"twl/internal/snap"
)

// The RNG sources persist their exact stream position so a checkpointed
// lifetime run resumes with the same draw sequence it would have produced
// uninterrupted. Both types implement the wl.Snapshotter shape.

// Snapshot serializes the generator state.
func (x *Xorshift) Snapshot(w io.Writer) error {
	sw := snap.NewWriter(w)
	sw.U64(x.state)
	return sw.Err()
}

// Restore loads state written by Snapshot.
func (x *Xorshift) Restore(r io.Reader) error {
	sr := snap.NewReader(r)
	x.state = sr.U64()
	return sr.Err()
}

// Snapshot serializes the round keys and stream position.
func (f *Feistel) Snapshot(w io.Writer) error {
	sw := snap.NewWriter(w)
	for _, k := range f.keys {
		sw.U8(k)
	}
	sw.U16(f.counter)
	sw.U64(f.buf)
	sw.U64(uint64(f.bufLen))
	return sw.Err()
}

// Restore loads state written by Snapshot.
func (f *Feistel) Restore(r io.Reader) error {
	sr := snap.NewReader(r)
	for i := range f.keys {
		f.keys[i] = sr.U8()
	}
	f.counter = sr.U16()
	f.buf = sr.U64()
	f.bufLen = uint(sr.U64())
	return sr.Err()
}
