package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// snapshotAnalyzer enforces the checkpoint-completeness contract
// (DESIGN.md "Checkpoint format"): a type that declares a Snapshot method
// with the wl.Snapshotter shape (func (T) Snapshot(io.Writer) error) is a
// persisted type, and every one of its fields must either be written out by
// Snapshot (directly or through a helper method on the same type) or carry
// a "snap:" comment stating why it is exempt (derived state, construction
// input, state checkpointed by another layer). A field that is neither is
// mutable state the checkpoint silently drops — the resumed run diverges
// from the uninterrupted one in ways the differential tests may only catch
// for the schemes and workloads they happen to cover.
//
// Types that only inherit Snapshot through an embedded field are not
// re-checked: the promoted method cannot see the outer type's fields, so
// the outer type either has no state of its own or must declare its own
// Snapshot.
var snapshotAnalyzer = &Analyzer{
	Name: "snapshot",
	Doc:  "every field of a persisted type must be written by Snapshot or carry a snap: comment",
}

func init() { snapshotAnalyzer.Run = runSnapshot }

func runSnapshot(p *Package, w *World) []Diagnostic {
	var diags []Diagnostic
	for _, f := range p.Files {
		if testSupport(f) {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Name.Name != "Snapshot" || fd.Recv == nil {
				continue
			}
			fn, ok := p.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			sig := fn.Type().(*types.Signature)
			if !snapshotterShape(sig) {
				continue
			}
			recv := sig.Recv().Type()
			if ptr, ok := recv.(*types.Pointer); ok {
				recv = ptr.Elem()
			}
			named, ok := recv.(*types.Named)
			if !ok {
				continue
			}
			st, ok := named.Underlying().(*types.Struct)
			if !ok {
				continue
			}
			covered := fieldsUsedBy(p, named, fd)
			diags = checkPersistedStruct(diags, p, w, named, st, covered)
		}
	}
	return diags
}

// snapshotterShape matches func(io.Writer) error — the Snapshot half of the
// wl.Snapshotter contract.
func snapshotterShape(sig *types.Signature) bool {
	if sig.Params().Len() != 1 || sig.Results().Len() != 1 {
		return false
	}
	if !types.Identical(sig.Results().At(0).Type(), types.Universe.Lookup("error").Type()) {
		return false
	}
	named, ok := sig.Params().At(0).Type().(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "io" && named.Obj().Name() == "Writer"
}

// fieldsUsedBy collects the struct fields referenced from the Snapshot
// method, following calls into other methods of the same named type (a
// Snapshot split across unexported helpers still counts), and returns them
// keyed by field object.
func fieldsUsedBy(p *Package, named *types.Named, snapshot *ast.FuncDecl) map[types.Object]bool {
	methods := methodDecls(p, named)
	covered := map[types.Object]bool{}
	visited := map[*ast.FuncDecl]bool{}
	queue := []*ast.FuncDecl{snapshot}
	for len(queue) > 0 {
		fd := queue[0]
		queue = queue[1:]
		if fd.Body == nil || visited[fd] {
			continue
		}
		visited[fd] = true
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			s := p.Info.Selections[sel]
			if s == nil {
				return true
			}
			switch s.Kind() {
			case types.FieldVal:
				covered[s.Obj()] = true
			case types.MethodVal, types.MethodExpr:
				if m, ok := methods[s.Obj()]; ok {
					queue = append(queue, m)
				}
			}
			return true
		})
	}
	return covered
}

// methodDecls indexes the package's method declarations whose receiver is
// the given named type, keyed by their types.Func object.
func methodDecls(p *Package, named *types.Named) map[types.Object]*ast.FuncDecl {
	out := map[types.Object]*ast.FuncDecl{}
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Recv == nil {
				continue
			}
			fn, ok := p.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			recv := fn.Type().(*types.Signature).Recv().Type()
			if ptr, ok := recv.(*types.Pointer); ok {
				recv = ptr.Elem()
			}
			if r, ok := recv.(*types.Named); ok && r.Obj() == named.Obj() {
				out[fn] = fd
			}
		}
	}
	return out
}

// checkPersistedStruct walks the struct declaration's fields in source form
// (the comments live on the AST) and reports every field that is neither
// covered by Snapshot nor annotated with a snap: comment.
func checkPersistedStruct(diags []Diagnostic, p *Package, w *World, named *types.Named, st *types.Struct, covered map[types.Object]bool) []Diagnostic {
	astStruct := structDecl(p, named)
	if astStruct == nil {
		return diags // declared via a type alias or in another package
	}
	i := 0 // flattened field index, aligned with st.Field ordering
	for _, fld := range astStruct.Fields.List {
		n := len(fld.Names)
		if n == 0 {
			n = 1 // embedded field
		}
		for j := 0; j < n; j++ {
			if i >= st.NumFields() {
				return diags
			}
			obj := st.Field(i)
			i++
			if covered[obj] || snapExempt(fld) {
				continue
			}
			diags = report(diags, p, w, snapshotAnalyzer, obj.Pos(),
				"field %s of persisted type %s is neither written by Snapshot nor marked with a snap: comment; its state is silently dropped on checkpoint", obj.Name(), named.Obj().Name())
		}
	}
	return diags
}

// structDecl finds the *ast.StructType of the named type's declaration in p.
func structDecl(p *Package, named *types.Named) *ast.StructType {
	pos := named.Obj().Pos()
	for _, f := range p.Files {
		if pos < f.Pos() || pos >= f.End() {
			continue
		}
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || ts.Name.Pos() != pos {
					continue
				}
				st, _ := ts.Type.(*ast.StructType)
				return st
			}
		}
	}
	return nil
}

// snapExempt reports whether the field declaration carries a snap: comment
// (doc comment or trailing line comment) sanctioning its exclusion from the
// checkpoint.
func snapExempt(fld *ast.Field) bool {
	for _, cg := range []*ast.CommentGroup{fld.Doc, fld.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if strings.Contains(c.Text, "snap:") {
				return true
			}
		}
	}
	return false
}
