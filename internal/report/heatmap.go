package report

import (
	"fmt"
	"io"
	"strings"
)

// Heatmap renders a slice of values as a block of shade characters, row by
// row — used to visualize per-page wear at a glance (uniform gray =
// leveled; hot spots = concentration; the attack experiments make weak-page
// grinding visible instantly).
type Heatmap struct {
	title  string
	values []float64
	width  int
}

// shades maps value/max buckets to characters, light to dark.
var shades = []rune{' ', '·', '-', '=', '+', '#', '@'}

// NewHeatmap creates a heatmap of values wrapped at width cells per row.
func NewHeatmap(title string, values []float64, width int) *Heatmap {
	if width <= 0 {
		width = 64
	}
	return &Heatmap{title: title, values: values, width: width}
}

// Render writes the heatmap to w with a legend.
func (h *Heatmap) Render(w io.Writer) error {
	var max float64
	for _, v := range h.values {
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	if h.title != "" {
		b.WriteString(h.title)
		b.WriteByte('\n')
	}
	for i := 0; i < len(h.values); i += h.width {
		end := i + h.width
		if end > len(h.values) {
			end = len(h.values)
		}
		for _, v := range h.values[i:end] {
			b.WriteRune(h.shade(v, max))
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "scale: '%c' = 0", shades[0])
	for i := 1; i < len(shades); i++ {
		fmt.Fprintf(&b, "  '%c' <= %.3g", shades[i], max*float64(i)/float64(len(shades)-1))
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// shade picks the character for value v against maximum max.
func (h *Heatmap) shade(v, max float64) rune {
	if max <= 0 || v <= 0 {
		return shades[0]
	}
	idx := int(v / max * float64(len(shades)-1))
	if idx >= len(shades) {
		idx = len(shades) - 1
	}
	if idx < 1 {
		idx = 1 // any non-zero value must be visible
	}
	return shades[idx]
}

// String renders to a string.
func (h *Heatmap) String() string {
	var b strings.Builder
	_ = h.Render(&b) // strings.Builder never errors
	return b.String()
}
