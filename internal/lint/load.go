package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one type-checked package under analysis: the parsed files, the
// type information, and the metadata the analyzers key their scope rules on.
type Package struct {
	// Path is the import path ("twl/internal/wl/startgap"); fixture packages
	// loaded from a directory get a synthetic path.
	Path string
	// Dir is the directory holding the files.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// testSupport reports whether file is test infrastructure: _test.go files are
// never loaded, but non-test files that import "testing" (conformance-suite
// helpers like internal/wl/wltest) count as test code for the analyzers that
// only police production paths.
func testSupport(file *ast.File) bool {
	for _, imp := range file.Imports {
		if imp.Path.Value == `"testing"` {
			return true
		}
	}
	return false
}

// Loader parses and type-checks packages. All packages share one FileSet and
// one source importer, so identical imports resolve to identical type
// objects (the importer caches) and cross-package type comparisons work.
// Loading is sequential — the shared importer is not safe for concurrent
// use — while the analysis phase over the loaded packages runs in parallel
// (see Run).
type Loader struct {
	fset *token.FileSet
	imp  types.Importer
}

// NewLoader returns a loader with a fresh FileSet and source importer.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{fset: fset, imp: importer.ForCompiler(fset, "source", nil)}
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
}

// list enumerates the non-test packages matching patterns via the go
// command — the module-aware package discovery go/build alone cannot do.
func list(patterns []string) ([]listedPackage, error) {
	args := append([]string{"list", "-json=ImportPath,Dir,GoFiles"}, patterns...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// Load lists, parses and type-checks the packages matching patterns, in a
// deterministic order.
func (l *Loader) Load(patterns []string) ([]*Package, error) {
	metas, err := list(patterns)
	if err != nil {
		return nil, err
	}
	sort.Slice(metas, func(i, j int) bool { return metas[i].ImportPath < metas[j].ImportPath })
	pkgs := make([]*Package, 0, len(metas))
	for _, m := range metas {
		if len(m.GoFiles) == 0 {
			continue
		}
		files := make([]string, len(m.GoFiles))
		for i, f := range m.GoFiles {
			files[i] = filepath.Join(m.Dir, f)
		}
		p, err := l.check(m.ImportPath, m.Dir, files)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// LoadDir parses and type-checks every .go file directly inside dir as one
// package under the synthetic import path. Fixture packages under testdata/
// (invisible to go list by design) load through this path.
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	return l.check(path, dir, names)
}

// check parses the named files and runs the type checker over them.
func (l *Loader) check(path, dir string, filenames []string) (*Package, error) {
	files := make([]*ast.File, 0, len(filenames))
	for _, name := range filenames {
		f, err := parser.ParseFile(l.fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %v", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: l.imp}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", path, err)
	}
	return &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}, nil
}
