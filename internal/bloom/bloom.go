// Package bloom provides the Bloom-filter substrate for the bloom-filter
// based wear-leveling baseline (Yun et al., DATE 2012 — "BWL" in the paper).
//
// Two structures are provided: a plain membership Bloom filter and a
// counting Bloom filter whose per-slot counters let BWL approximate
// per-address write counts and apply dynamic hot/cold thresholds without a
// full write-number table.
package bloom

import (
	"errors"
	"math"
)

// hashPair derives k hash values from two independent mixes of the key
// (Kirsch–Mitzenmacher double hashing), the standard hardware-friendly
// construction.
func hashPair(key uint64) (uint64, uint64) {
	h1 := key
	h1 ^= h1 >> 33
	h1 *= 0xFF51AFD7ED558CCD
	h1 ^= h1 >> 33
	h2 := key
	h2 *= 0xC2B2AE3D27D4EB4F
	h2 ^= h2 >> 29
	h2 *= 0x165667B19E3779F9
	h2 ^= h2 >> 32
	if h2 == 0 {
		h2 = 0x9E3779B97F4A7C15
	}
	return h1, h2
}

// Filter is a classic Bloom filter over uint64 keys.
type Filter struct {
	bits   []uint64
	nbits  uint64 // snap: derived from nbits at NewFilter
	hashes int    // snap: construction input
	items  int
}

// NewFilter builds a filter with nbits bits (rounded up to a multiple of 64)
// and k hash functions.
func NewFilter(nbits int, k int) (*Filter, error) {
	if nbits <= 0 || k <= 0 {
		return nil, errors.New("bloom: nbits and k must be positive")
	}
	words := (nbits + 63) / 64
	return &Filter{
		bits:   make([]uint64, words),
		nbits:  uint64(words) * 64,
		hashes: k,
	}, nil
}

// Add inserts key.
func (f *Filter) Add(key uint64) {
	h1, h2 := hashPair(key)
	for i := 0; i < f.hashes; i++ {
		idx := (h1 + uint64(i)*h2) % f.nbits
		f.bits[idx/64] |= 1 << (idx % 64)
	}
	f.items++
}

// AddN inserts key n times. The bit set is idempotent, so this sets the
// key's bits once and bumps the item count by n — identical end state to n
// Add calls.
func (f *Filter) AddN(key uint64, n int) {
	if n <= 0 {
		return
	}
	h1, h2 := hashPair(key)
	for i := 0; i < f.hashes; i++ {
		idx := (h1 + uint64(i)*h2) % f.nbits
		f.bits[idx/64] |= 1 << (idx % 64)
	}
	f.items += n
}

// Contains reports whether key may have been inserted (no false negatives;
// false positives at the designed rate).
func (f *Filter) Contains(key uint64) bool {
	h1, h2 := hashPair(key)
	for i := 0; i < f.hashes; i++ {
		idx := (h1 + uint64(i)*h2) % f.nbits
		if f.bits[idx/64]&(1<<(idx%64)) == 0 {
			return false
		}
	}
	return true
}

// Reset clears the filter.
func (f *Filter) Reset() {
	for i := range f.bits {
		f.bits[i] = 0
	}
	f.items = 0
}

// Items returns the number of Add calls since the last Reset.
func (f *Filter) Items() int { return f.items }

// FalsePositiveRate estimates the current false-positive probability from
// the fill level: (1 - e^(-k·n/m))^k.
func (f *Filter) FalsePositiveRate() float64 {
	k := float64(f.hashes)
	n := float64(f.items)
	m := float64(f.nbits)
	return math.Pow(1-math.Exp(-k*n/m), k)
}

// Counting is a counting Bloom filter: each slot is a saturating counter, so
// it can approximate per-key frequencies (the minimum across the key's
// slots, the count-min sketch estimate).
type Counting struct {
	slots  []uint16
	nslots uint64 // snap: construction input
	hashes int    // snap: construction input
	adds   uint64
	maxVal uint16 // snap: constant set at NewCounting
}

// NewCounting builds a counting filter with nslots counters and k hashes.
func NewCounting(nslots int, k int) (*Counting, error) {
	if nslots <= 0 || k <= 0 {
		return nil, errors.New("bloom: nslots and k must be positive")
	}
	return &Counting{
		slots:  make([]uint16, nslots),
		nslots: uint64(nslots),
		hashes: k,
		maxVal: math.MaxUint16,
	}, nil
}

// Add increments the key's slots (saturating) and returns the new estimate.
func (c *Counting) Add(key uint64) uint16 {
	h1, h2 := hashPair(key)
	est := c.maxVal
	for i := 0; i < c.hashes; i++ {
		idx := (h1 + uint64(i)*h2) % c.nslots
		if c.slots[idx] < c.maxVal {
			c.slots[idx]++
		}
		if c.slots[idx] < est {
			est = c.slots[idx]
		}
	}
	c.adds++
	return est
}

// AddN increments the key's slots by n (saturating per slot) and returns
// the new estimate — the end state matches n sequential Add calls, each of
// which saturates independently.
func (c *Counting) AddN(key uint64, n int) uint16 {
	if n <= 0 {
		return c.Estimate(key)
	}
	h1, h2 := hashPair(key)
	est := c.maxVal
	for i := 0; i < c.hashes; i++ {
		idx := (h1 + uint64(i)*h2) % c.nslots
		if room := c.maxVal - c.slots[idx]; uint64(room) >= uint64(n) {
			c.slots[idx] += uint16(n)
		} else {
			c.slots[idx] = c.maxVal
		}
		if c.slots[idx] < est {
			est = c.slots[idx]
		}
	}
	c.adds += uint64(n)
	return est
}

// Estimate returns the count-min estimate for key (an upper bound on the
// true count).
func (c *Counting) Estimate(key uint64) uint16 {
	h1, h2 := hashPair(key)
	est := c.maxVal
	for i := 0; i < c.hashes; i++ {
		idx := (h1 + uint64(i)*h2) % c.nslots
		if c.slots[idx] < est {
			est = c.slots[idx]
		}
	}
	return est
}

// Reset clears all counters.
func (c *Counting) Reset() {
	for i := range c.slots {
		c.slots[i] = 0
	}
	c.adds = 0
}

// Adds returns the number of Add calls since the last Reset.
func (c *Counting) Adds() uint64 { return c.adds }

// Halve divides every slot by two. BWL-style schemes use periodic halving to
// age out stale history so the hot set tracks the current phase.
func (c *Counting) Halve() {
	for i := range c.slots {
		c.slots[i] >>= 1
	}
}
