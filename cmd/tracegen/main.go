// Command tracegen generates and inspects synthetic PARSEC memory traces.
//
//	tracegen -bench canneal -n 1000000 -o canneal.trace        # text format
//	tracegen -bench vips -n 5000000 -binary -o vips.btrace     # binary
//	tracegen -inspect canneal.trace                            # statistics
//
// Generated traces replay through the simulator (sim.FromTrace) or any
// external tool; the text format is one "W addr" / "R addr" line per
// record.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"twl/internal/cliutil"
	"twl/internal/obs"
	"twl/internal/report"
	"twl/internal/trace"
)

func main() {
	var (
		bench    = flag.String("bench", "canneal", "PARSEC benchmark (Table 2 name)")
		n        = flag.Int("n", 1_000_000, "number of records to generate")
		pages    = flag.Int("pages", 2048, "logical page count")
		seed     = flag.Uint64("seed", 1, "generator seed")
		binary   = flag.Bool("binary", false, "write the compact binary format")
		out      = flag.String("o", "", "output file (default stdout)")
		inspect  = flag.String("inspect", "", "inspect an existing trace file instead of generating")
		metrics  = flag.Bool("metrics", false, "print a record-count metrics report to stderr after generating")
		pprofPfx = flag.String("pprof", "", "capture CPU+heap profiles to PREFIX.cpu.pprof / PREFIX.heap.pprof")
	)
	flag.Parse()
	cliutil.Check("tracegen", cliutil.FirstError(
		cliutil.NoArgs(flag.Args()),
		cliutil.PositiveInt("-n", *n),
		cliutil.PositiveInt("-pages", *pages),
	))

	if *pprofPfx != "" {
		stop, err := obs.StartProfile(*pprofPfx)
		fatal(err)
		defer func() { fatal(stop()) }()
	}

	if *inspect != "" {
		fatal(inspectTrace(*inspect, *binary))
		return
	}

	b, err := trace.BenchmarkByName(*bench)
	fatal(err)
	g, err := trace.NewSynthetic(b, *pages, *seed)
	fatal(err)

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		fatal(err)
		defer func() { fatal(f.Close()) }()
		w = f
	}

	var sink func(trace.Record) error
	var flush func() error
	var count func() int
	if *binary {
		bw := trace.NewBinaryWriter(w)
		sink, flush, count = bw.Write, bw.Flush, bw.Count
	} else {
		tw := trace.NewWriter(w)
		sink, flush, count = tw.Write, tw.Flush, tw.Count
	}
	var reg *obs.Registry
	if *metrics {
		reg = obs.NewRegistry()
		reg.Help("twl_trace_records_total", "trace records generated, by op")
		writes := reg.Counter("twl_trace_records_total", obs.L("op", "write"))
		reads := reg.Counter("twl_trace_records_total", obs.L("op", "read"))
		inner := sink
		sink = func(rec trace.Record) error {
			if rec.Op == trace.Write {
				writes.Inc()
			} else {
				reads.Inc()
			}
			return inner(rec)
		}
	}
	fatal(g.Generate(*n, sink))
	fatal(flush())
	format := "text"
	if *binary {
		format = "binary"
	}
	fmt.Fprintf(os.Stderr, "tracegen: %d %s records (%s, %d pages, zipf s=%.3f)\n",
		count(), format, b.Name, *pages, g.Exponent())
	if reg != nil {
		fatal(reg.WriteText(os.Stderr))
	}
}

func inspectTrace(path string, binary bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer func() { _ = f.Close() }() // read side: Close cannot lose data

	read := func() (trace.Record, error) { return trace.Record{}, io.EOF }
	if binary {
		r := trace.NewBinaryReader(f)
		read = r.Read
	} else {
		r := trace.NewReader(f)
		read = r.Read
	}

	counts := map[uint64]int{}
	var reads, writes int
	for {
		rec, err := read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if rec.Op == trace.Write {
			writes++
			counts[rec.Addr]++
		} else {
			reads++
		}
	}
	shares := make([]int, 0, len(counts))
	for _, c := range counts {
		shares = append(shares, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(shares)))
	tb := report.NewTable(fmt.Sprintf("Trace %s", path), "metric", "value")
	tb.AddRowf("records", reads+writes)
	tb.AddRowf("writes", writes)
	tb.AddRowf("reads", reads)
	tb.AddRowf("distinct written pages", len(counts))
	if len(shares) > 0 && writes > 0 {
		tb.AddRowf("hottest page share", fmt.Sprintf("%.4f", float64(shares[0])/float64(writes)))
		top10 := 0
		for i := 0; i < len(shares) && i < 10; i++ {
			top10 += shares[i]
		}
		tb.AddRowf("top-10 pages share", fmt.Sprintf("%.4f", float64(top10)/float64(writes)))
	}
	return tb.Render(os.Stdout)
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}
