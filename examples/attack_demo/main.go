// attack_demo walks through the Section 3 wear-out attack step by step on a
// tiny Figure 1-sized system, showing exactly how the inconsistent write
// pattern turns Wear Rate Leveling against its own PCM, and why TWL does
// not care.
//
//	go run ./examples/attack_demo
package main

import (
	"fmt"
	"log"

	"twl"
	"twl/internal/attack"
	"twl/internal/sim"
)

func main() {
	// A small array keeps the run instant: 512 pages, endurance ~5000.
	sys := twl.SystemConfig{
		Pages: 512, PageSize: 4096, MeanEndurance: 5000, SigmaFraction: 0.11, Seed: 3,
	}

	fmt.Println("=== The inconsistent-write attack (Section 3.2) ===")
	fmt.Println()
	fmt.Println("Step 1: write addresses with an ascending intensity ramp, keeping half")
	fmt.Println("        of the targets completely cold, and watch for the latency spike")
	fmt.Println("        of a swap phase.")
	fmt.Println("Step 2: when the swap completes, REVERSE the ramp: the addresses the")
	fmt.Println("        scheme just parked on its weakest pages now take 90-write bursts.")
	fmt.Println()

	for _, name := range []string{"WRL", "BWL", "SR", "TWL_swp"} {
		dev, err := sys.NewDevice()
		if err != nil {
			log.Fatal(err)
		}
		scheme, err := twl.NewScheme(name, dev, 9)
		if err != nil {
			log.Fatal(err)
		}
		cfg := attack.DefaultConfig(attack.Inconsistent, sys.Pages, 5)
		st, err := attack.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sim.RunLifetime(scheme, sim.FromAttack(st), sim.LifetimeConfig{})
		if err != nil {
			log.Fatal(err)
		}
		verdict := "DEAD"
		switch {
		case res.Normalized > 0.45:
			verdict = "protected"
		case res.Normalized > 0.2:
			verdict = "degraded"
		}
		fmt.Printf("%-8s first page failed after %8d writes (%.1f%% of ideal) — %s\n",
			name, res.DemandWrites, 100*res.Normalized, verdict)
	}

	fmt.Println()
	fmt.Println("WRL and BWL trust the observed write distribution to persist; the")
	fmt.Println("reversal lands the heaviest writes exactly on their weakest pages.")
	fmt.Println("SR is merely degraded — it is oblivious, so it cannot be misled, but")
	fmt.Println("its uniform leveling is capped by the weakest page (and this demo runs")
	fmt.Println("it with full-scale refresh rates; see EXPERIMENTS.md on scaling). TWL")
	fmt.Println("reallocates every write probabilistically by endurance — there is no")
	fmt.Println("prediction to mislead.")
}
