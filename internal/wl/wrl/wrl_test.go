package wrl

import (
	"testing"

	"twl/internal/pcm"
	"twl/internal/wl"
	"twl/internal/wl/wltest"
)

func build(tb testing.TB, seed uint64) wl.Scheme {
	dev := wltest.NewDevice(tb, 256, seed)
	s, err := New(dev, Config{PredictionWrites: 2048, RunningMultiplier: 10, MaxSwapFraction: 1})
	if err != nil {
		tb.Fatal(err)
	}
	return s
}

func TestConformance(t *testing.T) {
	wltest.Run(t, build)
}

func TestValidation(t *testing.T) {
	dev := wltest.NewDevice(t, 64, 1)
	bad := []Config{
		{PredictionWrites: 0, RunningMultiplier: 10, MaxSwapFraction: 1},
		{PredictionWrites: 100, RunningMultiplier: 0, MaxSwapFraction: 1},
		{PredictionWrites: 100, RunningMultiplier: 10, MaxSwapFraction: 0},
		{PredictionWrites: 100, RunningMultiplier: 10, MaxSwapFraction: 1.5},
	}
	for i, cfg := range bad {
		if _, err := New(dev, cfg); err == nil {
			t.Errorf("case %d: %+v accepted", i, cfg)
		}
	}
}

// TestHotMapsToStrong is the Figure 1 scenario: after a prediction phase in
// which one address dominates, the swap phase must map it to the strongest
// physical page.
func TestHotMapsToStrong(t *testing.T) {
	geom := pcm.Geometry{Pages: 4, PageSize: 4096, LineSize: 128, Ranks: 1, Banks: 1}
	// Endurances as in Figure 1: PA1..PA4 = 40, 60, 80, 120.
	dev, err := pcm.NewDevice(geom, pcm.DefaultTiming(), []uint64{40, 60, 80, 120})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(dev, Config{PredictionWrites: 19, RunningMultiplier: 10, MaxSwapFraction: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Prediction-phase traffic of Figure 1b: LA1×9, LA2×4, LA3×4, LA4×2.
	for i := 0; i < 9; i++ {
		s.Write(0, 100)
	}
	for i := 0; i < 4; i++ {
		s.Write(1, 200)
	}
	for i := 0; i < 4; i++ {
		s.Write(2, 300)
	}
	for i := 0; i < 2; i++ {
		s.Write(3, 400)
	}
	// The 19th write ended the prediction phase and ran the swap. LA1 (hot)
	// must now be on PA4 (endurance 120) and LA4 (cold) on PA1 (40) — the
	// Figure 1c state.
	if got := s.rt.Phys(0); got != 3 {
		t.Fatalf("hot LA1 mapped to PA%d, want PA4 (index 3)", got+1)
	}
	if got := s.rt.Phys(3); got != 0 {
		t.Fatalf("cold LA4 mapped to PA%d, want PA1 (index 0)", got+1)
	}
	// Data must have moved with the remap.
	if v, _ := s.Read(0); v != 100 {
		t.Fatalf("LA1 data = %d, want 100", v)
	}
	if v, _ := s.Read(3); v != 400 {
		t.Fatalf("LA4 data = %d, want 400", v)
	}
}

func TestSwapPhaseBlocks(t *testing.T) {
	dev := wltest.NewDevice(t, 64, 2)
	s, err := New(dev, Config{PredictionWrites: 100, RunningMultiplier: 10, MaxSwapFraction: 1})
	if err != nil {
		t.Fatal(err)
	}
	blockedAt := -1
	for i := 0; i < 100; i++ {
		// Skewed traffic so the swap phase has real work.
		la := i % 8
		if cost := s.Write(la, uint64(i)); cost.Blocked {
			blockedAt = i
		}
	}
	if blockedAt != 99 {
		t.Fatalf("swap phase blocked at write %d, want 99 (end of prediction)", blockedAt)
	}
}

func TestPhaseCycle(t *testing.T) {
	dev := wltest.NewDevice(t, 64, 3)
	s, err := New(dev, Config{PredictionWrites: 50, RunningMultiplier: 2, MaxSwapFraction: 1})
	if err != nil {
		t.Fatal(err)
	}
	// One full cycle = 50 prediction + 100 running; the next blocked write
	// (swap) should occur at write 150 + 50 = 200... i.e. writes 50 and 200
	// are the swap triggers (1-indexed).
	blocked := []int{}
	for i := 1; i <= 400; i++ {
		if cost := s.Write(i%16, uint64(i)); cost.Blocked {
			blocked = append(blocked, i)
		}
	}
	if len(blocked) < 2 {
		t.Fatalf("expected at least 2 swap phases in 400 writes, got %v", blocked)
	}
	if blocked[0] != 50 {
		t.Fatalf("first swap at write %d, want 50", blocked[0])
	}
	if blocked[1] != 200 {
		t.Fatalf("second swap at write %d, want 200 (50 + 100 running + 50 prediction)", blocked[1])
	}
}

// TestConsistentWorkloadProtectsWeakPages: with a consistent hot set, weak
// pages end up with cold data and accumulate little wear — WRL working as
// designed.
func TestConsistentWorkloadProtectsWeakPages(t *testing.T) {
	dev := wltest.NewDevice(t, 128, 4)
	s, err := New(dev, Config{PredictionWrites: 1024, RunningMultiplier: 10, MaxSwapFraction: 1})
	if err != nil {
		t.Fatal(err)
	}
	// 90% of writes hit 8 hot addresses, consistently.
	for i := 0; i < 300000; i++ {
		var la int
		if i%10 != 0 {
			la = i % 8
		} else {
			la = 8 + (i/10)%120
		}
		s.Write(la, uint64(i))
	}
	// The weakest pages should carry much-below-average wear.
	weakest := wl.SortByEndurance(dev.EnduranceMap())[:8]
	var weakWear, total uint64
	for _, p := range weakest {
		weakWear += dev.Wear(p)
	}
	total = dev.TotalWrites()
	meanWear := float64(total) / 128
	weakMean := float64(weakWear) / 8
	if weakMean > meanWear {
		t.Fatalf("weak pages wear %.0f not below array mean %.0f under consistent load",
			weakMean, meanWear)
	}
}

func TestPartialSwapFraction(t *testing.T) {
	dev := wltest.NewDevice(t, 128, 5)
	s, err := New(dev, Config{PredictionWrites: 256, RunningMultiplier: 5, MaxSwapFraction: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50000; i++ {
		s.Write(i%32, uint64(i))
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestName(t *testing.T) {
	if build(t, 1).Name() != "WRL" {
		t.Fatal("name mismatch")
	}
}
