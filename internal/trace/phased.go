package trace

import (
	"fmt"

	"twl/internal/rng"
)

// Phased wraps a Synthetic generator with program-phase behavior: every
// PhaseWrites writes, the rank→page assignment reshuffles, moving the hot
// working set to different pages — the way real programs change phases
// (new allocation epochs, different processing stages).
//
// Phases stress the adaptive machinery in two ways the stationary generator
// cannot: prediction-based schemes (WRL, BWL) must re-learn the hot set,
// and the attack detector must NOT confuse a legitimate phase change
// (which also decorrelates consecutive windows, once) with the
// inconsistent-write attack (which reverses the distribution repeatedly).
type Phased struct {
	inner       *Synthetic
	phaseWrites int
	writes      int
	phases      int
	src         *rng.Xorshift
}

// NewPhased builds a phased generator: bench over pages pages, reshuffling
// the working set every phaseWrites writes.
func NewPhased(bench Benchmark, pages int, phaseWrites int, seed uint64) (*Phased, error) {
	if phaseWrites <= 0 {
		return nil, fmt.Errorf("trace: phaseWrites must be positive, got %d", phaseWrites)
	}
	inner, err := NewSynthetic(bench, pages, seed)
	if err != nil {
		return nil, err
	}
	return &Phased{
		inner:       inner,
		phaseWrites: phaseWrites,
		src:         rng.NewXorshift(seed ^ 0x9E9E9E9E),
	}, nil
}

// Next returns the next request, advancing the phase when due.
func (p *Phased) Next() (addr int, write bool) {
	addr, write = p.inner.Next()
	if write {
		p.writes++
		if p.writes >= p.phaseWrites {
			p.writes = 0
			p.phases++
			p.inner.buildPerm(p.src.Uint64())
		}
	}
	return addr, write
}

// Phases returns how many phase changes have occurred.
func (p *Phased) Phases() int { return p.phases }

// Inner exposes the wrapped generator (for calibration inspection).
func (p *Phased) Inner() *Synthetic { return p.inner }
