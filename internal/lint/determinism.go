package lint

import (
	"go/ast"
	"go/types"
)

// determinismAnalyzer enforces bit-reproducibility: the differential tests
// that prove the fast-forward engine correct compare entire simulation
// states, so any hidden entropy source — wall clocks, the global math/rand
// stream, map iteration order — silently invalidates them.
//
// Scope: the twl facade and every twl/internal/ package, skipping files that
// import "testing" (conformance-suite helpers). Rules:
//
//   - no calls to time.Now or time.Since; the sanctioned wall-clock access
//     point is internal/clock (granted via the allowlist).
//   - no use of math/rand's global source (package-level functions other
//     than the New*/constructor family); simulations draw from internal/rng.
//   - no map iteration whose body leaks the iteration order: appending to
//     an outer slice (unless the very next statement restores a total order
//     with sort.Ints/sort.Strings/sort.Float64s/slices.Sort), assigning to
//     outer variables (conditionally — order-dependent selection like
//     argmax — or unconditionally, last-iteration-wins), printing, or
//     sending on a channel. Writes to outer maps indexed by the loop key
//     stay order-independent and pass; so do commutative op-assignments
//     (x += v).
var determinismAnalyzer = &Analyzer{
	Name: "determinism",
	Doc:  "forbids wall clocks, global math/rand, and map-iteration-order leaks in simulation packages",
}

func init() { determinismAnalyzer.Run = runDeterminism }

func runDeterminism(p *Package, w *World) []Diagnostic {
	if !internalScope(p.Path) {
		return nil
	}
	var diags []Diagnostic
	for _, f := range p.Files {
		if testSupport(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				diags = clockAndRandCalls(diags, p, w, n)
			case *ast.RangeStmt:
				if t := p.Info.TypeOf(n.X); t != nil {
					if _, ok := t.Underlying().(*types.Map); ok {
						diags = mapRangeBody(diags, p, w, f, n)
					}
				}
			}
			return true
		})
	}
	return diags
}

// clockAndRandCalls flags wall-clock reads and global math/rand draws.
func clockAndRandCalls(diags []Diagnostic, p *Package, w *World, call *ast.CallExpr) []Diagnostic {
	obj := calleeObj(p, call)
	if obj == nil {
		return diags
	}
	switch {
	case pkgFunc(obj, "time", "Now"):
		diags = report(diags, p, w, determinismAnalyzer, call.Pos(),
			"wall-clock read time.Now breaks bit-reproducibility; route it through internal/clock")
	case pkgFunc(obj, "time", "Since"):
		diags = report(diags, p, w, determinismAnalyzer, call.Pos(),
			"time.Since reads the wall clock implicitly; route it through internal/clock")
	case fromPkg(obj, "math/rand") || fromPkg(obj, "math/rand/v2"):
		// Constructors (New, NewSource, NewZipf, NewPCG, …) build explicitly
		// seeded generators; everything else draws from the global source.
		if len(obj.Name()) < 3 || obj.Name()[:3] != "New" {
			diags = report(diags, p, w, determinismAnalyzer, call.Pos(),
				"global math/rand source is shared mutable state; use internal/rng with an explicit seed")
		}
	}
	return diags
}

// mapRangeBody walks the body of a range-over-map looking for statements
// that leak the (randomized) iteration order into results.
func mapRangeBody(diags []Diagnostic, p *Package, w *World, f *ast.File, rng *ast.RangeStmt) []Diagnostic {
	body := rng.Body
	loopVars := map[types.Object]bool{}
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := e.(*ast.Ident); ok && id != nil {
			if obj := p.Info.Defs[id]; obj != nil {
				loopVars[obj] = true
			}
		}
	}
	// outer reports whether the lvalue chain is rooted at a variable declared
	// outside the loop body (and not a loop variable).
	outer := func(e ast.Expr) bool {
		id := rootIdent(e)
		if id == nil {
			return false
		}
		obj := p.Info.ObjectOf(id)
		if obj == nil || loopVars[obj] {
			return false
		}
		if _, ok := obj.(*types.Var); !ok {
			return false
		}
		return obj.Pos() < body.Pos() || obj.Pos() >= body.End()
	}
	// keyIndexed reports an index expression into an outer map/slice whose
	// index is the loop key — distinct keys, order-independent.
	keyObj := func() types.Object {
		if id, ok := rng.Key.(*ast.Ident); ok {
			return p.Info.Defs[id]
		}
		return nil
	}()
	keyIndexed := func(e ast.Expr) bool {
		ix, ok := ast.Unparen(e).(*ast.IndexExpr)
		if !ok || keyObj == nil {
			return false
		}
		id, ok := ast.Unparen(ix.Index).(*ast.Ident)
		return ok && p.Info.ObjectOf(id) == keyObj
	}

	var visit func(n ast.Node, cond bool)
	visit = func(n ast.Node, cond bool) {
		switch n := n.(type) {
		case nil:
			return
		case *ast.IfStmt:
			visit(n.Init, cond)
			visit(n.Body, true)
			visit(n.Else, true)
			return
		case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			ast.Inspect(n, func(m ast.Node) bool {
				if stmt, ok := m.(ast.Stmt); ok && m != n {
					visit(stmt, true)
					return false
				}
				return true
			})
			return
		case *ast.AssignStmt:
			diags = mapRangeAssign(diags, p, w, f, rng, n, cond, outer, keyIndexed)
			return
		case *ast.IncDecStmt:
			// x++ accumulates commutatively, like x += 1.
			return
		case *ast.SendStmt:
			diags = report(diags, p, w, determinismAnalyzer, n.Pos(),
				"channel send inside range over map leaks iteration order")
			return
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				if obj := calleeObj(p, call); fromPkg(obj, "fmt") {
					switch obj.Name() {
					case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
						diags = report(diags, p, w, determinismAnalyzer, n.Pos(),
							"output written inside range over map appears in iteration order")
					}
				}
			}
			return
		case *ast.BlockStmt:
			for _, s := range n.List {
				visit(s, cond)
			}
			return
		case *ast.ForStmt:
			visit(n.Body, cond)
			return
		case *ast.RangeStmt:
			// A nested range is scanned independently by the outer Inspect
			// when it ranges over a map; as a body statement its writes are
			// still order-tainted by the enclosing map range.
			visit(n.Body, cond)
			return
		case ast.Stmt:
			return
		}
	}
	for _, s := range body.List {
		visit(s, false)
	}
	return diags
}

// mapRangeAssign classifies one assignment inside a map-range body.
func mapRangeAssign(diags []Diagnostic, p *Package, w *World, f *ast.File, rng *ast.RangeStmt,
	as *ast.AssignStmt, cond bool, outer, keyIndexed func(ast.Expr) bool) []Diagnostic {
	for i, lhs := range as.Lhs {
		if !outer(lhs) || keyIndexed(lhs) {
			continue
		}
		// x = append(x, …): allowed only when a total-order sort of x
		// immediately follows the loop.
		if isSelfAppend(p, as, i) {
			if !sortedAfter(p, f, rng, lhs) {
				diags = report(diags, p, w, determinismAnalyzer, as.Pos(),
					"append inside range over map records iteration order; sort the result immediately after the loop (sort.Ints/sort.Strings/sort.Float64s/slices.Sort) or iterate sorted keys")
			}
			continue
		}
		if as.Tok.IsOperator() && as.Tok.String() != "=" && as.Tok.String() != ":=" {
			// Op-assignments (+=, *=, |=, …) accumulate; order-independent
			// for the integer arithmetic this codebase uses them for.
			continue
		}
		if cond {
			diags = report(diags, p, w, determinismAnalyzer, as.Pos(),
				"conditional write to outer variable inside range over map selects by iteration order; iterate sorted keys instead")
		} else {
			diags = report(diags, p, w, determinismAnalyzer, as.Pos(),
				"write to outer variable inside range over map keeps the last-iterated value; iterate sorted keys instead")
		}
	}
	return diags
}

// isSelfAppend reports the `x = append(x, …)` shape at LHS index i.
func isSelfAppend(p *Package, as *ast.AssignStmt, i int) bool {
	if len(as.Rhs) != len(as.Lhs) || i >= len(as.Rhs) {
		return false
	}
	call, ok := ast.Unparen(as.Rhs[i]).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	if obj, ok := p.Info.Uses[id]; !ok || obj != types.Universe.Lookup("append") {
		return false
	}
	if len(call.Args) == 0 {
		return false
	}
	dst := rootIdent(as.Lhs[i])
	src := rootIdent(call.Args[0])
	return dst != nil && src != nil && p.Info.ObjectOf(dst) == p.Info.ObjectOf(src)
}

// sortedAfter reports whether the statement immediately following the range
// loop applies a total-order sort to the appended slice.
func sortedAfter(p *Package, f *ast.File, rng *ast.RangeStmt, lhs ast.Expr) bool {
	target := rootIdent(lhs)
	if target == nil {
		return false
	}
	var next ast.Stmt
	ast.Inspect(f, func(n ast.Node) bool {
		block, ok := n.(*ast.BlockStmt)
		if !ok {
			return true
		}
		for i, s := range block.List {
			if s == ast.Stmt(rng) {
				if i+1 < len(block.List) {
					next = block.List[i+1]
				}
				return false
			}
		}
		return true
	})
	if next == nil {
		return false
	}
	expr, ok := next.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := expr.X.(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	obj := calleeObj(p, call)
	total := pkgFunc(obj, "sort", "Ints") || pkgFunc(obj, "sort", "Strings") ||
		pkgFunc(obj, "sort", "Float64s") || pkgFunc(obj, "slices", "Sort")
	if !total {
		return false
	}
	arg := rootIdent(call.Args[0])
	return arg != nil && p.Info.ObjectOf(arg) == p.Info.ObjectOf(target)
}
