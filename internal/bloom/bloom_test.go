package bloom

import (
	"testing"
	"testing/quick"

	"twl/internal/rng"
)

func TestFilterNoFalseNegatives(t *testing.T) {
	f, err := NewFilter(1<<14, 4)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 500; k++ {
		f.Add(k * 7919)
	}
	for k := uint64(0); k < 500; k++ {
		if !f.Contains(k * 7919) {
			t.Fatalf("false negative for key %d", k*7919)
		}
	}
}

func TestFilterFalsePositiveRateReasonable(t *testing.T) {
	f, _ := NewFilter(1<<14, 4)
	for k := uint64(0); k < 1000; k++ {
		f.Add(k)
	}
	fp := 0
	const probes = 10000
	for k := uint64(1 << 32); k < 1<<32+probes; k++ {
		if f.Contains(k) {
			fp++
		}
	}
	rate := float64(fp) / probes
	predicted := f.FalsePositiveRate()
	if rate > 3*predicted+0.01 {
		t.Fatalf("observed FP rate %v far above predicted %v", rate, predicted)
	}
}

func TestFilterReset(t *testing.T) {
	f, _ := NewFilter(1024, 3)
	f.Add(42)
	if !f.Contains(42) {
		t.Fatal("add/contains broken")
	}
	f.Reset()
	if f.Contains(42) {
		t.Fatal("Reset did not clear membership")
	}
	if f.Items() != 0 {
		t.Fatal("Reset did not clear item count")
	}
}

func TestFilterValidation(t *testing.T) {
	if _, err := NewFilter(0, 3); err == nil {
		t.Fatal("accepted zero bits")
	}
	if _, err := NewFilter(128, 0); err == nil {
		t.Fatal("accepted zero hashes")
	}
}

// TestFilterNoFalseNegativesProperty: for arbitrary key sets, membership of
// every added key must hold.
func TestFilterNoFalseNegativesProperty(t *testing.T) {
	check := func(keys []uint64) bool {
		f, err := NewFilter(1<<12, 4)
		if err != nil {
			return false
		}
		for _, k := range keys {
			f.Add(k)
		}
		for _, k := range keys {
			if !f.Contains(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCountingEstimateUpperBound(t *testing.T) {
	c, err := NewCounting(1<<12, 4)
	if err != nil {
		t.Fatal(err)
	}
	truth := map[uint64]uint16{}
	src := rng.NewXorshift(1)
	for i := 0; i < 5000; i++ {
		k := uint64(src.Intn(200))
		c.Add(k)
		truth[k]++
	}
	for k, n := range truth {
		if est := c.Estimate(k); est < n {
			t.Fatalf("estimate for %d = %d below true count %d", k, est, n)
		}
	}
}

func TestCountingEstimateAccurateWhenSparse(t *testing.T) {
	c, _ := NewCounting(1<<14, 4)
	for i := 0; i < 10; i++ {
		c.Add(777)
	}
	if est := c.Estimate(777); est != 10 {
		t.Fatalf("sparse estimate = %d, want exactly 10", est)
	}
	if est := c.Estimate(778); est != 0 {
		t.Fatalf("estimate for absent key = %d, want 0", est)
	}
}

func TestCountingHalve(t *testing.T) {
	c, _ := NewCounting(1<<14, 4)
	for i := 0; i < 9; i++ {
		c.Add(5)
	}
	c.Halve()
	if est := c.Estimate(5); est != 4 {
		t.Fatalf("after halve, estimate = %d, want 4", est)
	}
}

func TestCountingReset(t *testing.T) {
	c, _ := NewCounting(256, 2)
	c.Add(1)
	c.Reset()
	if c.Estimate(1) != 0 || c.Adds() != 0 {
		t.Fatal("Reset did not clear state")
	}
}

func TestCountingSaturation(t *testing.T) {
	c, _ := NewCounting(64, 1)
	for i := 0; i < 1<<17; i++ {
		c.Add(3)
	}
	if est := c.Estimate(3); est != 65535 {
		t.Fatalf("saturated estimate = %d, want 65535", est)
	}
}

func TestCountingValidation(t *testing.T) {
	if _, err := NewCounting(0, 2); err == nil {
		t.Fatal("accepted zero slots")
	}
	if _, err := NewCounting(16, 0); err == nil {
		t.Fatal("accepted zero hashes")
	}
}

func TestCountingAddReturnsEstimate(t *testing.T) {
	c, _ := NewCounting(1<<14, 4)
	if got := c.Add(9); got != 1 {
		t.Fatalf("first Add estimate = %d, want 1", got)
	}
	if got := c.Add(9); got != 2 {
		t.Fatalf("second Add estimate = %d, want 2", got)
	}
}

func BenchmarkCountingAdd(b *testing.B) {
	c, _ := NewCounting(1<<16, 4)
	for i := 0; i < b.N; i++ {
		c.Add(uint64(i & 0xFFFF))
	}
}
