package trace

import (
	"io"
	"strings"
	"testing"
)

func TestNVMainReader(t *testing.T) {
	in := `NVMV1
# comment
125 W 0x2000 3f3f3f3f 0
130 R 0x3005 deadbeef 1
200 W 0x1fff cafe 0
`
	r, err := NewNVMainReader(strings.NewReader(in), 4096)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	want := []Record{
		{Write, 2}, // 0x2000/4096 = 2
		{Read, 3},  // 0x3005/4096 = 3
		{Write, 1}, // 0x1fff/4096 = 1
	}
	if len(recs) != len(want) {
		t.Fatalf("got %d records", len(recs))
	}
	for i := range want {
		if recs[i] != want[i] {
			t.Fatalf("record %d = %+v, want %+v", i, recs[i], want[i])
		}
	}
}

func TestNVMainReaderAddressWithoutPrefix(t *testing.T) {
	r, err := NewNVMainReader(strings.NewReader("1 W 2ae5d63000 0 0\n"), 4096)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := r.Read()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Addr != 0x2ae5d63000/4096 {
		t.Fatalf("addr = %d", rec.Addr)
	}
}

func TestNVMainReaderErrors(t *testing.T) {
	cases := []string{
		"1 X 0x1000 0 0\n",
		"1 W zzzz 0 0\n",
		"1 W\n",
	}
	for _, in := range cases {
		r, err := NewNVMainReader(strings.NewReader(in), 4096)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.Read(); err == nil || err == io.EOF {
			t.Errorf("input %q: expected parse error, got %v", in, err)
		}
	}
	if _, err := NewNVMainReader(strings.NewReader(""), 0); err == nil {
		t.Error("zero page size accepted")
	}
}

func TestNVMainReaderEOF(t *testing.T) {
	r, _ := NewNVMainReader(strings.NewReader("NVMV1\n# nothing\n"), 4096)
	if _, err := r.Read(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}
