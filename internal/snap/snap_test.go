package snap

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// TestRoundTrip writes one of every primitive and slice kind and reads them
// back, proving the codec is self-consistent.
func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.U8(0xab)
	w.U16(0xbeef)
	w.U32(0xdeadbeef)
	w.U64(1<<63 + 17)
	w.I64(-42)
	w.Int(-7)
	w.Bool(true)
	w.Bool(false)
	w.F64(math.Pi)
	w.F64(math.Inf(-1))
	w.String("hello")
	w.Tag("sect")
	w.U64s([]uint64{1, 2, 3})
	w.U32s([]uint32{4, 5})
	w.U16s([]uint16{6})
	w.U8s([]uint8{7, 8, 9, 10})
	w.Ints([]int{-1, 0, 1})
	w.F64s([]float64{0.5, -0.25})
	w.Ints([]int{11, 12}) // read back via IntSlice
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}

	r := NewReader(&buf)
	if got := r.U8(); got != 0xab {
		t.Errorf("U8: got %#x", got)
	}
	if got := r.U16(); got != 0xbeef {
		t.Errorf("U16: got %#x", got)
	}
	if got := r.U32(); got != 0xdeadbeef {
		t.Errorf("U32: got %#x", got)
	}
	if got := r.U64(); got != 1<<63+17 {
		t.Errorf("U64: got %d", got)
	}
	if got := r.I64(); got != -42 {
		t.Errorf("I64: got %d", got)
	}
	if got := r.Int(); got != -7 {
		t.Errorf("Int: got %d", got)
	}
	if !r.Bool() || r.Bool() {
		t.Error("Bool round-trip failed")
	}
	if got := r.F64(); got != math.Pi {
		t.Errorf("F64: got %v", got)
	}
	if got := r.F64(); !math.IsInf(got, -1) {
		t.Errorf("F64 -Inf: got %v", got)
	}
	if got := r.String(16); got != "hello" {
		t.Errorf("String: got %q", got)
	}
	r.Expect("sect")
	u64s := make([]uint64, 3)
	r.U64sInto(u64s)
	if u64s[0] != 1 || u64s[2] != 3 {
		t.Errorf("U64sInto: got %v", u64s)
	}
	u32s := make([]uint32, 2)
	r.U32sInto(u32s)
	if u32s[1] != 5 {
		t.Errorf("U32sInto: got %v", u32s)
	}
	u16s := make([]uint16, 1)
	r.U16sInto(u16s)
	if u16s[0] != 6 {
		t.Errorf("U16sInto: got %v", u16s)
	}
	u8s := make([]uint8, 4)
	r.U8sInto(u8s)
	if u8s[3] != 10 {
		t.Errorf("U8sInto: got %v", u8s)
	}
	ints := make([]int, 3)
	r.IntsInto(ints)
	if ints[0] != -1 || ints[2] != 1 {
		t.Errorf("IntsInto: got %v", ints)
	}
	f64s := make([]float64, 2)
	r.F64sInto(f64s)
	if f64s[1] != -0.25 {
		t.Errorf("F64sInto: got %v", f64s)
	}
	got := r.IntSlice(8)
	if len(got) != 2 || got[0] != 11 || got[1] != 12 {
		t.Errorf("IntSlice: got %v", got)
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestReaderLatchesErrors: after the first failure every read is a zero
// no-op and Err keeps reporting the first failure.
func TestReaderLatchesErrors(t *testing.T) {
	r := NewReader(bytes.NewReader([]byte{1, 2})) // too short for a U64
	if got := r.U64(); got != 0 {
		t.Errorf("truncated U64 returned %d, want 0", got)
	}
	first := r.Err()
	if first == nil {
		t.Fatal("truncated read did not latch an error")
	}
	if got := r.U32(); got != 0 {
		t.Errorf("read after latched error returned %d", got)
	}
	if r.Err() != first {
		t.Error("later read replaced the latched error")
	}
}

// TestExpectMismatch: a wrong section tag reports both tags.
func TestExpectMismatch(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Tag("device")
	r := NewReader(&buf)
	r.Expect("scheme")
	err := r.Err()
	if err == nil || !strings.Contains(err.Error(), "device") || !strings.Contains(err.Error(), "scheme") {
		t.Fatalf("tag mismatch error %v does not name both tags", err)
	}
}

// TestFixedSliceLengthMismatch: a stored slice must match its destination
// exactly (a checkpoint from a differently-sized system must fail loudly).
func TestFixedSliceLengthMismatch(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.U64s([]uint64{1, 2, 3})
	r := NewReader(&buf)
	r.U64sInto(make([]uint64, 4))
	if r.Err() == nil {
		t.Fatal("length mismatch went undetected")
	}
}

// TestStringAndSliceLimits: length prefixes beyond the caller's bound are
// rejected without allocating.
func TestStringAndSliceLimits(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.String("too long for the limit")
	r := NewReader(&buf)
	if got := r.String(4); got != "" || r.Err() == nil {
		t.Fatalf("oversized string accepted: %q, err %v", got, r.Err())
	}

	buf.Reset()
	w = NewWriter(&buf)
	w.Ints([]int{1, 2, 3, 4, 5})
	r = NewReader(&buf)
	if got := r.IntSlice(3); got != nil || r.Err() == nil {
		t.Fatalf("oversized int slice accepted: %v, err %v", got, r.Err())
	}
}

// TestFileRoundTrip: WriteFile then ReadFile restores the payload and
// leaves no temp files behind.
func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "test.ckpt")
	n, err := WriteFile(path, func(w *Writer) error {
		w.Tag("data")
		w.U64s([]uint64{9, 8, 7})
		return w.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() != n {
		t.Fatalf("reported size %d, stat %v/%v", n, fi, err)
	}
	var got []uint64
	err = ReadFile(path, func(r *Reader) error {
		r.Expect("data")
		got = make([]uint64, 3)
		r.U64sInto(got)
		return r.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 9 || got[2] != 7 {
		t.Errorf("payload round-trip: got %v", got)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Errorf("temp file %s survived WriteFile", e.Name())
		}
	}
}

// TestFileReplacesAtomically: a second WriteFile replaces the first
// in-place; the reader sees only the new payload.
func TestFileReplacesAtomically(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.ckpt")
	for _, v := range []uint64{1, 2} {
		if _, err := WriteFile(path, func(w *Writer) error {
			w.U64(v)
			return w.Err()
		}); err != nil {
			t.Fatal(err)
		}
	}
	var got uint64
	if err := ReadFile(path, func(r *Reader) error {
		got = r.U64()
		return r.Err()
	}); err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Errorf("got payload %d, want the replacement 2", got)
	}
}

// TestFileCorruptionDetected: every class of file damage is caught before
// the decoder runs.
func TestFileCorruptionDetected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.ckpt")
	if _, err := WriteFile(path, func(w *Writer) error {
		w.U64s([]uint64{1, 2, 3, 4})
		return w.Err()
	}); err != nil {
		t.Fatal(err)
	}
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	decodeNothing := func(r *Reader) error { return nil }
	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		wantSub string
	}{
		{"bad magic", func(b []byte) []byte { b[0] ^= 0xff; return b }, "not a checkpoint"},
		{"bad version", func(b []byte) []byte { b[4] ^= 0xff; return b }, "format version"},
		{"flipped payload byte", func(b []byte) []byte { b[len(b)-1] ^= 0xff; return b }, "checksum"},
		{"truncated payload", func(b []byte) []byte { return b[:len(b)-4] }, "torn write"},
		{"truncated header", func(b []byte) []byte { return b[:10] }, "too short"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := tc.mutate(append([]byte(nil), pristine...))
			if err := os.WriteFile(path, b, 0o644); err != nil {
				t.Fatal(err)
			}
			err := ReadFile(path, decodeNothing)
			if err == nil || !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("corruption %q: got error %v, want substring %q", tc.name, err, tc.wantSub)
			}
		})
	}
}

// TestFileRejectsUnconsumedPayload: a decode that leaves payload bytes
// unread indicates a layout drift and must fail.
func TestFileRejectsUnconsumedPayload(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.ckpt")
	if _, err := WriteFile(path, func(w *Writer) error {
		w.U64(1)
		w.U64(2)
		return w.Err()
	}); err != nil {
		t.Fatal(err)
	}
	err := ReadFile(path, func(r *Reader) error {
		r.U64() // leaves the second value unread
		return r.Err()
	})
	if err == nil || !strings.Contains(err.Error(), "unread") {
		t.Fatalf("partial decode accepted: %v", err)
	}
}

// TestWriteFileMissingDir: checkpointing into a nonexistent directory fails
// cleanly (the sim layer surfaces this as an aborted run).
func TestWriteFileMissingDir(t *testing.T) {
	path := filepath.Join(t.TempDir(), "no", "such", "dir", "test.ckpt")
	if _, err := WriteFile(path, func(w *Writer) error { return nil }); err == nil {
		t.Fatal("WriteFile into a missing directory succeeded")
	}
}

// TestWriteFileStreams: the streamed WriteFile must not buffer the payload
// in memory. Writing a payload much larger than the allocation bound proves
// the bytes go straight to disk through the fixed-size bufio window.
func TestWriteFileStreams(t *testing.T) {
	path := filepath.Join(t.TempDir(), "big.ckpt")
	const chunkSize = 1 << 16
	const chunks = 256 // 16 MiB payload
	chunk := make([]byte, chunkSize)
	for i := range chunk {
		chunk[i] = byte(i)
	}

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	n, err := WriteFile(path, func(w *Writer) error {
		for i := 0; i < chunks; i++ {
			if _, err := w.Write(chunk); err != nil {
				return err
			}
		}
		return w.Err()
	})
	runtime.ReadMemStats(&after)
	if err != nil {
		t.Fatal(err)
	}
	const payload = chunkSize * chunks
	if want := int64(payload) + 20; n != want {
		t.Fatalf("reported size %d, want %d", n, want)
	}
	allocated := after.TotalAlloc - before.TotalAlloc
	if allocated > payload/4 {
		t.Errorf("WriteFile allocated %d bytes for a %d-byte payload; payload is being buffered", allocated, payload)
	}

	// The streamed file must still round-trip through the CRC check.
	total := 0
	if err := ReadFile(path, func(r *Reader) error {
		buf := make([]byte, chunkSize)
		for i := 0; i < chunks; i++ {
			m, err := io.ReadFull(r, buf)
			total += m
			if err != nil {
				return err
			}
			if !bytes.Equal(buf, chunk) {
				return fmt.Errorf("chunk %d corrupted", i)
			}
		}
		return r.Err()
	}); err != nil {
		t.Fatal(err)
	}
	if total != payload {
		t.Errorf("read back %d bytes, want %d", total, payload)
	}
}

// TestSweepOrphans: orphaned .tmp-* files from a crash mid-install are
// removed; real checkpoints and unrelated files survive.
func TestSweepOrphans(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "shard-0001.packed.ckpt")
	if _, err := WriteFile(ckpt, func(w *Writer) error {
		w.U64(7)
		return w.Err()
	}); err != nil {
		t.Fatal(err)
	}
	orphans := []string{
		"shard-0001.packed.ckpt.tmp-123456",
		"cell-ab12.ckpt.tmp-9",
	}
	for _, name := range orphans {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("torn"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	keep := filepath.Join(dir, "notes.txt")
	if err := os.WriteFile(keep, []byte("keep me"), 0o644); err != nil {
		t.Fatal(err)
	}

	removed, err := SweepOrphans(dir)
	if err != nil {
		t.Fatal(err)
	}
	if removed != len(orphans) {
		t.Errorf("swept %d files, want %d", removed, len(orphans))
	}
	for _, name := range orphans {
		if _, err := os.Stat(filepath.Join(dir, name)); !os.IsNotExist(err) {
			t.Errorf("orphan %s survived the sweep", name)
		}
	}
	for _, path := range []string{ckpt, keep} {
		if _, err := os.Stat(path); err != nil {
			t.Errorf("sweep removed non-orphan %s: %v", path, err)
		}
	}
	var got uint64
	if err := ReadFile(ckpt, func(r *Reader) error {
		got = r.U64()
		return r.Err()
	}); err != nil || got != 7 {
		t.Errorf("checkpoint unreadable after sweep: %v (got %d)", err, got)
	}

	// A missing directory is not an error — startup sweeps run before the
	// checkpoint directory may have been created.
	if n, err := SweepOrphans(filepath.Join(dir, "missing")); err != nil || n != 0 {
		t.Errorf("missing dir: got (%d, %v), want (0, nil)", n, err)
	}
}

// TestNestedReadWrite: the Writer/Reader io pass-throughs let layered
// Snapshot/Restore sections share one stream with codec fields around them.
func TestNestedReadWrite(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Tag("outer")
	if _, err := w.Write([]byte("raw-section")); err != nil {
		t.Fatal(err)
	}
	w.U32(99)
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}

	r := NewReader(&buf)
	r.Expect("outer")
	raw := make([]byte, len("raw-section"))
	if _, err := r.Read(raw); err != nil {
		t.Fatal(err)
	}
	if string(raw) != "raw-section" {
		t.Errorf("nested section: got %q", raw)
	}
	if got := r.U32(); got != 99 {
		t.Errorf("field after nested section: got %d", got)
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
}
