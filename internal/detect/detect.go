// Package detect implements online detection of malicious write streams,
// following the direction of the paper's reference [11] (Qureshi et al.,
// HPCA 2011: "Practical and secure PCM systems by online detection of
// malicious write streams") and extending it with a signal specific to this
// paper's inconsistent-write attack.
//
// The detector watches only the logical write stream — the same information
// a memory controller has — and computes two window-based statistics:
//
//   - Concentration: the estimated share of the window's writes taken by
//     its hottest address. Repeat-style attacks push this toward 1; benign
//     workloads sit near their Zipf head share.
//   - Reversal: the sign of the correlation between per-address write
//     counts in consecutive windows. Benign workloads are temporally
//     consistent (positive correlation — the very assumption PV-aware wear
//     leveling rests on); the inconsistent attack *inverts* the
//     distribution, driving the correlation negative.
//
// Wear-leveling schemes can consult the detector to fall back to a
// conservative policy (e.g. pure randomization) while an alarm is active —
// the "online detection" defense the paper contrasts its design against.
package detect

import (
	"errors"
	"math"
	"sort"
)

// Config parameterizes the detector.
type Config struct {
	// WindowWrites is the observation window length.
	WindowWrites int
	// TrackTop is how many candidate hot addresses are tracked per window
	// (a space-saving stand-in for the full count table; hardware would use
	// a small CAM or sketch).
	TrackTop int
	// ConcentrationAlarm is the hottest-address share above which the
	// window is flagged (repeat-style attacks).
	ConcentrationAlarm float64
	// ReversalAlarm is the (negative) correlation below which consecutive
	// windows are flagged (inconsistent-write attacks).
	ReversalAlarm float64
	// AlarmWindows is how many flagged windows (out of the last
	// 2×AlarmWindows) raise the alarm.
	AlarmWindows int
}

// DefaultConfig returns thresholds that separate the Table 2 workloads from
// the Section 5.2 attacks by a wide margin.
func DefaultConfig(pages int) Config {
	w := 8 * pages
	if w < 4096 {
		w = 4096
	}
	return Config{
		WindowWrites:       w,
		TrackTop:           64,
		ConcentrationAlarm: 0.30,
		ReversalAlarm:      -0.20,
		AlarmWindows:       2,
	}
}

// Detector is the online write-stream monitor.
type Detector struct {
	cfg Config // snap: construction input

	cur      map[int]int // per-address counts, current window
	inWindow int

	prev map[int]int // previous window's counts

	flags       []bool // ring of recent window flags
	flagIdx     int
	windows     int
	lastConc    float64
	lastCorr    float64
	lastHottest int
	haveHottest bool
	alarmEvents int
}

// New builds a detector.
func New(cfg Config) (*Detector, error) {
	if cfg.WindowWrites <= 0 {
		return nil, errors.New("detect: WindowWrites must be positive")
	}
	if cfg.TrackTop <= 0 {
		return nil, errors.New("detect: TrackTop must be positive")
	}
	if cfg.ConcentrationAlarm <= 0 || cfg.ConcentrationAlarm > 1 {
		return nil, errors.New("detect: ConcentrationAlarm must be in (0,1]")
	}
	if cfg.ReversalAlarm >= 0 || cfg.ReversalAlarm < -1 {
		return nil, errors.New("detect: ReversalAlarm must be in [-1,0)")
	}
	if cfg.AlarmWindows <= 0 {
		return nil, errors.New("detect: AlarmWindows must be positive")
	}
	return &Detector{
		cfg:   cfg,
		cur:   make(map[int]int),
		flags: make([]bool, 2*cfg.AlarmWindows),
	}, nil
}

// Observe feeds one demand write into the detector.
func (d *Detector) Observe(la int) {
	d.cur[la]++
	d.inWindow++
	if d.inWindow >= d.cfg.WindowWrites {
		d.closeWindow()
	}
}

// ObserveN feeds n demand writes of the same address, closing windows at
// exactly the boundaries n sequential Observe calls would close. Bulk write
// paths keep n below WindowHeadroom (treating the window close as an event
// horizon), making the call O(1); the segment loop handles boundary
// crossings for general callers.
//
//twl:hotpath
func (d *Detector) ObserveN(la int, n int) {
	for n > 0 {
		take := d.cfg.WindowWrites - d.inWindow
		if take > n {
			take = n
		}
		d.cur[la] += take
		d.inWindow += take
		n -= take
		if d.inWindow >= d.cfg.WindowWrites {
			d.closeWindow()
		}
	}
}

// ObserveRange feeds one write each of the consecutive addresses la0,
// la0+1, …, la0+n-1 — the sweep-shaped counterpart of ObserveN. Each
// address still costs one count-table update, so the call is O(n); it
// exists so bulk sweep paths keep the exact per-address window statistics
// of n sequential Observe calls.
//
//twl:hotpath
func (d *Detector) ObserveRange(la0, n int) {
	for i := 0; i < n; i++ {
		d.Observe(la0 + i)
	}
}

// WindowHeadroom returns how many more writes the current observation
// window accepts: the WindowHeadroom-th next write closes the window (and
// may change the alarm), so bulk paths that treat window closes as event
// horizons absorb at most WindowHeadroom-1 writes.
func (d *Detector) WindowHeadroom() int { return d.cfg.WindowWrites - d.inWindow }

// closeWindow computes the window statistics and rotates state.
func (d *Detector) closeWindow() {
	d.windows++
	d.lastConc = d.concentration()
	d.lastCorr = d.correlation()
	flagged := d.lastConc >= d.cfg.ConcentrationAlarm ||
		(d.windows > 1 && d.lastCorr <= d.cfg.ReversalAlarm)
	d.flags[d.flagIdx] = flagged
	d.flagIdx = (d.flagIdx + 1) % len(d.flags)
	if d.Alarm() {
		d.alarmEvents++
	}

	d.prev = d.cur
	d.cur = make(map[int]int, len(d.prev))
	d.inWindow = 0
}

// concentration returns the hottest address's share of the window and
// records which address it was. The argmax walks the addresses in sorted
// order so that count ties resolve to the lowest address — selecting inside
// the map range itself would make the reported hottest address depend on
// Go's randomized iteration order.
func (d *Detector) concentration() float64 {
	keys := make([]int, 0, len(d.cur))
	for la := range d.cur {
		keys = append(keys, la)
	}
	sort.Ints(keys)
	total, max := 0, 0
	for _, la := range keys {
		c := d.cur[la]
		total += c
		if c > max {
			max = c
			d.lastHottest = la
			d.haveHottest = true
		}
	}
	if total == 0 {
		return 0
	}
	return float64(max) / float64(total)
}

// correlation returns the Pearson correlation between the counts of the
// union of the two windows' top-TrackTop addresses. A full per-address
// correlation would need unbounded state; the top set captures where the
// wear actually goes.
func (d *Detector) correlation() float64 {
	if d.prev == nil {
		return 1
	}
	set := topUnion(d.prev, d.cur, d.cfg.TrackTop)
	if len(set) < 2 {
		return 1
	}
	var xs, ys []float64
	for _, la := range set {
		xs = append(xs, float64(d.prev[la]))
		ys = append(ys, float64(d.cur[la]))
	}
	return pearson(xs, ys)
}

// topUnion returns the union of the top-k addresses of both windows. The
// selection is deterministic: keys are sorted ascending before the stable
// by-count sort, so count ties resolve to the lowest address instead of to
// whatever the map handed out first.
func topUnion(a, b map[int]int, k int) []int {
	seen := map[int]bool{}
	for _, m := range []map[int]int{a, b} {
		keys := make([]int, 0, len(m))
		for la := range m {
			keys = append(keys, la)
		}
		sort.Ints(keys)
		sort.SliceStable(keys, func(i, j int) bool { return m[keys[i]] > m[keys[j]] })
		for i := 0; i < len(keys) && i < k; i++ {
			seen[keys[i]] = true
		}
	}
	out := make([]int, 0, len(seen))
	for la := range seen {
		out = append(out, la)
	}
	sort.Ints(out)
	return out
}

// pearson computes the Pearson correlation coefficient; constant series
// return 0.
func pearson(xs, ys []float64) float64 {
	n := float64(len(xs))
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var cov, vx, vy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}

// HottestAddress returns the hottest address of the last closed window.
// ok is false until a window has closed.
func (d *Detector) HottestAddress() (la int, ok bool) {
	return d.lastHottest, d.haveHottest
}

// EverAlarmed reports whether the alarm has fired at any point — the
// latched signal a controller would act on (falling back to conservative
// leveling until an operator intervenes).
func (d *Detector) EverAlarmed() bool { return d.alarmEvents > 0 }

// Alarm reports whether at least AlarmWindows of the last 2×AlarmWindows
// windows were flagged.
func (d *Detector) Alarm() bool {
	n := 0
	for _, f := range d.flags {
		if f {
			n++
		}
	}
	return n >= d.cfg.AlarmWindows
}

// Stats exposes the last window's statistics for logging and tests.
type Stats struct {
	Windows       int
	Concentration float64
	Correlation   float64
	Alarm         bool
	AlarmEvents   int
}

// Stats returns the current detector state.
func (d *Detector) Stats() Stats {
	return Stats{
		Windows:       d.windows,
		Concentration: d.lastConc,
		Correlation:   d.lastCorr,
		Alarm:         d.Alarm(),
		AlarmEvents:   d.alarmEvents,
	}
}
