package sim

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"twl/internal/obs"
	"twl/internal/snap"
	"twl/internal/wl"
	"twl/internal/wl/wltest"
)

// The checkpoint/resume contract: a run that is killed at an arbitrary
// point and resumed from its last checkpoint must be indistinguishable from
// a run that was never interrupted — same LifetimeResult, same per-page
// wear and payload, same device totals, same metrics (minus the excluded
// fast-path/checkpoint diagnostics), and a trace stream whose resumed tail
// matches the baseline's byte for byte. The tests below enforce that for
// every registered scheme against every differential source kind, with
// kills placed mid-fast-forward and one write before the page failure.

// ckptCadence is deliberately prime and unaligned with the trace cadence
// (1000) and check cadence (977), so checkpoints land mid-source-run on the
// fast path — the pending-run state must survive the round trip.
const ckptCadence = 4099

// ckptRunOne is diffRunOne with a demand cap and a checkpoint config.
func ckptRunOne(t *testing.T, build schemeFactory, kind string, disableFF bool, maxWrites uint64, ckpt *CheckpointConfig) diffRun {
	t.Helper()
	s := build(t)
	dev := s.Device()
	if maxWrites == 0 {
		maxWrites = 3 * dev.TotalEndurance()
	}
	reg := obs.NewRegistry()
	var traceBuf bytes.Buffer
	tr := obs.NewTracer(&traceBuf, 1000)
	res, err := RunLifetime(s, diffSource(t, kind, demandPages(s)), LifetimeConfig{
		MaxDemandWrites:    maxWrites,
		CheckEvery:         977,
		Metrics:            reg,
		Trace:              tr,
		DisableFastForward: disableFF,
		Checkpoint:         ckpt,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
	out := diffRun{
		res:         res,
		wear:        make([]uint64, dev.Pages()),
		payload:     make([]uint64, dev.Pages()),
		writes:      dev.TotalWrites(),
		reads:       dev.TotalReads(),
		metricsText: metricsJSON(t, reg),
		traceText:   traceBuf.String(),
	}
	for pp := 0; pp < dev.Pages(); pp++ {
		out.wear[pp] = dev.Wear(pp)
		out.payload[pp] = dev.Peek(pp)
	}
	return out
}

// ckptCompare kills a run at killAt demand writes (leaving its last
// checkpoint on disk), resumes it into a freshly constructed system, and
// requires the resumed run to match the uninterrupted baseline exactly.
func ckptCompare(t *testing.T, build schemeFactory, kind string, disableFF bool, baseline diffRun, killAt, every uint64) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "run.ckpt")
	killed := ckptRunOne(t, build, kind, disableFF, killAt, &CheckpointConfig{Path: path, Every: every})
	if !killed.res.Capped {
		t.Fatalf("killed run was not capped at %d (res %+v)", killAt, killed.res)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("killed run left no checkpoint: %v", err)
	}
	resumed := ckptRunOne(t, build, kind, disableFF, 0, &CheckpointConfig{Path: path, Every: every, Resume: true})

	if resumed.res != baseline.res {
		t.Errorf("LifetimeResult differs:\nresumed:  %+v\nbaseline: %+v", resumed.res, baseline.res)
	}
	for pp := range baseline.wear {
		if resumed.wear[pp] != baseline.wear[pp] {
			t.Fatalf("wear[%d]: resumed %d, baseline %d", pp, resumed.wear[pp], baseline.wear[pp])
		}
		if resumed.payload[pp] != baseline.payload[pp] {
			t.Fatalf("payload[%d]: resumed %d, baseline %d", pp, resumed.payload[pp], baseline.payload[pp])
		}
	}
	if resumed.writes != baseline.writes || resumed.reads != baseline.reads {
		t.Errorf("device totals differ: resumed %d/%d, baseline %d/%d",
			resumed.writes, resumed.reads, baseline.writes, baseline.reads)
	}
	if resumed.metricsText != baseline.metricsText {
		t.Errorf("metrics differ:\nresumed:\n%s\nbaseline:\n%s", resumed.metricsText, baseline.metricsText)
	}
	// The resumed tracer continues the interrupted stream: its events must
	// be the exact tail of the uninterrupted baseline's stream.
	if resumed.traceText == "" {
		t.Fatal("resumed run emitted no trace events (the end event alone is guaranteed)")
	}
	if !strings.HasSuffix(baseline.traceText, resumed.traceText) {
		t.Errorf("resumed trace is not a tail of the baseline trace:\nresumed:\n%s\nbaseline:\n%s",
			resumed.traceText, baseline.traceText)
	}
}

// TestCheckpointResumeDifferential sweeps every registered scheme against
// the four differential source kinds, killing each run both mid-lifetime
// (mid-fast-forward for bulk-writer schemes: the cadence is unaligned, so
// checkpoints capture partially consumed source runs — under the
// inconsistent attack that includes the stream's deferred-feedback debt)
// and one demand write before the page failure.
func TestCheckpointResumeDifferential(t *testing.T) {
	kinds := []string{"repeat", "scan", "trace", "inconsistent"}
	if testing.Short() {
		kinds = kinds[:1]
	}
	for _, name := range wl.Names() {
		for _, kind := range kinds {
			t.Run(name+"/"+kind, func(t *testing.T) {
				build := registryFactory(name)
				baseline := ckptRunOne(t, build, kind, false, 0, nil)
				// An odd cadence scaled to the run keeps roughly a dozen
				// checkpoints per killed run while staying unaligned with
				// the trace (1000) and check (977) cadences.
				every := baseline.res.DemandWrites/16 | 1
				if baseline.res.DemandWrites/2 <= every {
					t.Fatalf("baseline too short (%d writes) to place a meaningful kill", baseline.res.DemandWrites)
				}
				// Mid-run kill: the last checkpoint precedes it by up to a
				// full cadence, so the resume replays a partial interval.
				ckptCompare(t, build, kind, false, baseline, baseline.res.DemandWrites/2, every)
				// Kill one write before the failure: the resume must carry
				// the run over the failure edge.
				if !baseline.res.Capped {
					ckptCompare(t, build, kind, false, baseline, baseline.res.DemandWrites-1, every)
				}
			})
		}
	}
}

// TestCheckpointResumePerRequestPath pins the same contract on the
// per-request loop (fast-forward disabled), which uses a different
// checkpoint call site and no pending-run state.
func TestCheckpointResumePerRequestPath(t *testing.T) {
	for _, name := range []string{"TWL_swp", "StartGap", "WRL"} {
		t.Run(name, func(t *testing.T) {
			build := registryFactory(name)
			baseline := ckptRunOne(t, build, "repeat", true, 0, nil)
			every := baseline.res.DemandWrites/16 | 1
			ckptCompare(t, build, "repeat", true, baseline, baseline.res.DemandWrites/2, every)
		})
	}
}

// TestCheckpointValidation: a checkpointed run must fail fast on an
// unserializable scheme or source, an empty path, or a checkpoint that does
// not match the run it is applied to.
func TestCheckpointValidation(t *testing.T) {
	build := registryFactory("TWL_swp")
	path := filepath.Join(t.TempDir(), "run.ckpt")
	// Produce a valid checkpoint to mismatch against.
	_ = ckptRunOne(t, build, "repeat", false, 3*ckptCadence, &CheckpointConfig{Path: path, Every: ckptCadence})

	s := build(t)
	if _, err := RunLifetime(s, diffSource(t, "repeat", demandPages(s)), LifetimeConfig{
		Checkpoint: &CheckpointConfig{},
	}); err == nil {
		t.Error("empty checkpoint path accepted")
	}

	// Resuming under a different scheme must be rejected by the meta check.
	other, err := wl.Default.New("NOWL", wltest.NewDeviceEndurance(t, diffPages, diffEndurance, diffSeed), diffSeed)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunLifetime(other, diffSource(t, "repeat", demandPages(other)), LifetimeConfig{
		Checkpoint: &CheckpointConfig{Path: path, Resume: true},
	}); err == nil || !strings.Contains(err.Error(), "scheme") {
		t.Errorf("scheme mismatch not rejected: %v", err)
	}

	// Resuming without the metrics sink the checkpoint was taken with.
	s2 := build(t)
	if _, err := RunLifetime(s2, diffSource(t, "repeat", demandPages(s2)), LifetimeConfig{
		Checkpoint: &CheckpointConfig{Path: path, Resume: true},
	}); err == nil || !strings.Contains(err.Error(), "metrics") {
		t.Errorf("metrics-config mismatch not rejected: %v", err)
	}

	// A corrupted checkpoint must be rejected by the CRC.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	bad := filepath.Join(t.TempDir(), "bad.ckpt")
	if err := os.WriteFile(bad, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	s3 := build(t)
	reg := obs.NewRegistry()
	var traceBuf bytes.Buffer
	if _, err := RunLifetime(s3, diffSource(t, "repeat", demandPages(s3)), LifetimeConfig{
		Metrics:    reg,
		Trace:      obs.NewTracer(&traceBuf, 1000),
		Checkpoint: &CheckpointConfig{Path: bad, Resume: true},
	}); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Errorf("corrupted checkpoint not rejected by CRC: %v", err)
	}
}

// TestCheckpointWriteFailureAborts: a run that cannot write its checkpoint
// must stop rather than silently continue without crash safety.
func TestCheckpointWriteFailureAborts(t *testing.T) {
	build := registryFactory("TWL_swp")
	s := build(t)
	path := filepath.Join(t.TempDir(), "no-such-dir", "run.ckpt")
	_, err := RunLifetime(s, diffSource(t, "repeat", demandPages(s)), LifetimeConfig{
		MaxDemandWrites: 3 * ckptCadence,
		Checkpoint:      &CheckpointConfig{Path: path, Every: ckptCadence},
	})
	if err == nil || !strings.Contains(err.Error(), "checkpoint") {
		t.Fatalf("unwritable checkpoint path did not abort the run: %v", err)
	}
}

// FuzzCheckpointResume drives random (scheme, source, kill point, cadence)
// tuples through the kill/resume cycle and requires the resumed result to
// match the uninterrupted baseline.
func FuzzCheckpointResume(f *testing.F) {
	f.Add(uint8(0), uint8(0), uint16(2), uint32(1000), false)
	f.Add(uint8(3), uint8(1), uint16(3), uint32(977), false)
	f.Add(uint8(5), uint8(2), uint16(5), uint32(64), true)
	f.Add(uint8(7), uint8(0), uint16(2), uint32(4099), false)
	f.Add(uint8(9), uint8(3), uint16(2), uint32(512), false)
	f.Fuzz(func(t *testing.T, schemeSel, kindSel uint8, killDiv uint16, cadence uint32, disableFF bool) {
		names := wl.Names()
		name := names[int(schemeSel)%len(names)]
		kind := []string{"repeat", "scan", "trace", "inconsistent"}[int(kindSel)%4]
		every := uint64(cadence%65536 + 1)
		build := func(t *testing.T) wl.Scheme {
			t.Helper()
			dev := wltest.NewDeviceEndurance(t, 64, 500, diffSeed)
			s, err := wl.Default.New(name, dev, diffSeed)
			if err != nil {
				t.Fatal(err)
			}
			return s
		}
		baseline := ckptRunOne(t, build, kind, disableFF, 0, nil)
		if killDiv < 2 {
			killDiv = 2
		}
		killAt := baseline.res.DemandWrites / uint64(killDiv)
		if killAt <= every {
			// No checkpoint would be taken before the kill; nothing to
			// resume from.
			t.Skip("kill point before first checkpoint")
		}
		path := filepath.Join(t.TempDir(), "fuzz.ckpt")
		killed := ckptRunOne(t, build, kind, disableFF, killAt, &CheckpointConfig{Path: path, Every: every})
		if !killed.res.Capped {
			t.Fatalf("killed run not capped: %+v", killed.res)
		}
		resumed := ckptRunOne(t, build, kind, disableFF, 0, &CheckpointConfig{Path: path, Every: every, Resume: true})
		if resumed.res != baseline.res {
			t.Errorf("LifetimeResult differs:\nresumed:  %+v\nbaseline: %+v", resumed.res, baseline.res)
		}
		for pp := range baseline.wear {
			if resumed.wear[pp] != baseline.wear[pp] || resumed.payload[pp] != baseline.payload[pp] {
				t.Fatalf("device state diverges at page %d", pp)
			}
		}
		if resumed.metricsText != baseline.metricsText {
			t.Error("metrics diverge")
		}
		if !strings.HasSuffix(baseline.traceText, resumed.traceText) {
			t.Error("resumed trace is not a tail of the baseline trace")
		}
	})
}

// TestCheckpointFileFormat pins the container invariants the resume path
// relies on: magic, version, and the atomic-replace behavior (a checkpoint
// is either the previous complete file or the new complete file, never a
// torn mix — emulated here by checking the temp file never survives).
func TestCheckpointFileFormat(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	build := registryFactory("TWL_swp")
	_ = ckptRunOne(t, build, "repeat", false, 3*ckptCadence, &CheckpointConfig{Path: path, Every: ckptCadence})

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) < 20 {
		t.Fatalf("checkpoint only %d bytes", len(raw))
	}
	var magic, version uint32
	sr := snap.NewReader(bytes.NewReader(raw))
	magic = sr.U32()
	version = sr.U32()
	if magic != snap.Magic || version != snap.Version {
		t.Fatalf("header magic=%#x version=%d, want %#x/%d", magic, version, snap.Magic, snap.Version)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Errorf("temp checkpoint file %s survived the atomic rename", e.Name())
		}
	}
}

// TestStopPreemption pins the preemption contract: a run whose Stop hook
// fires winds down with ErrRunStopped after writing a final checkpoint, and
// resuming that checkpoint with Stop unset completes bit-identically to a
// run that was never preempted.
func TestStopPreemption(t *testing.T) {
	build := registryFactory("TWL_swp")
	baseline := ckptRunOne(t, build, "repeat", false, 0, nil)

	path := filepath.Join(t.TempDir(), "run.ckpt")
	s := build(t)
	polled := false
	res, err := RunLifetime(s, diffSource(t, "repeat", demandPages(s)), LifetimeConfig{
		Checkpoint: &CheckpointConfig{Path: path, Every: ckptCadence},
		Stop:       func() bool { polled = true; return true },
	})
	if !errors.Is(err, ErrRunStopped) {
		t.Fatalf("preempted run returned %v, want ErrRunStopped", err)
	}
	if !polled {
		t.Fatal("Stop hook was never polled")
	}
	if res.FailedPage >= 0 {
		t.Fatalf("preempted run reports a failed page: %+v", res)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("no checkpoint at the stop point: %v", err)
	}

	s2 := build(t)
	resumed, err := RunLifetime(s2, diffSource(t, "repeat", demandPages(s2)), LifetimeConfig{
		Checkpoint: &CheckpointConfig{Path: path, Every: ckptCadence, Resume: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resumed != baseline.res {
		t.Errorf("resumed result differs from uninterrupted baseline:\n  resumed  %+v\n  baseline %+v", resumed, baseline.res)
	}
	dev := s2.Device()
	for pp := 0; pp < dev.Pages(); pp++ {
		if dev.Wear(pp) != baseline.wear[pp] || dev.Peek(pp) != baseline.payload[pp] {
			t.Fatalf("page %d wear/payload diverged after preempted resume", pp)
		}
	}
}

// TestStopWithoutCheckpoint: with no checkpoint configured the hook is
// polled at DefaultCheckpointEvery; the run still winds down cleanly, it
// just cannot be resumed.
func TestStopWithoutCheckpoint(t *testing.T) {
	dev := wltest.NewDeviceEndurance(t, 64, 1<<20, diffSeed)
	s, err := wl.Default.New("StartGap", dev, diffSeed)
	if err != nil {
		t.Fatal(err)
	}
	src := diffSource(t, "repeat", demandPages(s))
	stops := 0
	res, err := RunLifetime(s, src, LifetimeConfig{
		Stop: func() bool { stops++; return true },
	})
	if !errors.Is(err, ErrRunStopped) {
		t.Fatalf("got %v, want ErrRunStopped", err)
	}
	if stops != 1 {
		t.Errorf("Stop polled %d times, want 1", stops)
	}
	if res.FailedPage >= 0 || res.Capped {
		t.Errorf("preempted run reports completion: %+v", res)
	}
}
