// Package fixreg exercises the registry analyzer. Its synthetic import path
// places it under twl/internal/wl/, so rule 1 (exported schemes must call
// wl.Register) applies alongside rule 2 (bulk writers must be
// invariant-checkable).
package fixreg

import "twl/internal/wl"

// Orphan implements wl.Scheme via embedding, but the package never calls
// wl.Register: rule 1 fires.
type Orphan struct{ wl.Scheme }

// NoCheck implements the RunWriter bulk fast path without wl.Checker:
// rule 2 fires.
type NoCheck struct{}

func (NoCheck) WriteRun(la int, tag uint64, n int) (wl.Cost, int) { return wl.Cost{}, n }

// Audited implements the sweep fast path and wl.Checker: clean.
type Audited struct{}

func (Audited) WriteSweep(la int, tag uint64, n int) (wl.Cost, int) { return wl.Cost{}, n }
func (Audited) CheckInvariants() error                              { return nil }

// hidden implements wl.Scheme but is unexported; rule 1 polices only the
// exported API, so this is clean.
type hidden struct{ wl.Scheme }
