package lint

import (
	"go/ast"
	"go/types"
)

// decoratorAnalyzer enforces the interception-completeness contract
// (DESIGN.md "Decorator composition"): a named struct type that embeds the
// wl.Scheme interface and declares its own Write method is a decorator — it
// interposes on the per-request write path. Such a type must also implement
// every optional capability interface (wl.Checker, wl.Snapshotter,
// wl.RunWriter, wl.SweepWriter). A missing implementation is not a
// capability loss — Wrap simply withholds the interface — but a silent
// bypass hazard: if the composite is built any other way, the embedded
// scheme's interface methods serve that path directly, skipping whatever
// the decorator's Write interposes (a bulk write that dodges failure
// handling, a checkpoint that drops decorator state, paranoid mode that
// never sees the decorator's invariants). One diagnostic per missing
// interface; a decorator that genuinely wants pass-through for one
// capability states so in twlint.allow.
var decoratorAnalyzer = &Analyzer{
	Name: "decorator",
	Doc:  "a type embedding wl.Scheme that overrides Write must implement every optional scheme interface",
}

func init() { decoratorAnalyzer.Run = runDecorator }

// optionalIfaces are the capability interfaces Wrap forwards; a decorator
// must intercept each one.
var optionalIfaces = []string{"Checker", "Snapshotter", "RunWriter", "SweepWriter"}

func runDecorator(p *Package, w *World) []Diagnostic {
	if !internalScope(p.Path) {
		return nil
	}
	wlPkg := w.wlContract(p)
	ifaces := make(map[string]*types.Interface, len(optionalIfaces))
	for _, name := range optionalIfaces {
		iface := lookupInterface(wlPkg, name)
		if iface == nil {
			return nil // wl package shape changed; the build would have caught real breakage
		}
		ifaces[name] = iface
	}

	var diags []Diagnostic
	for _, f := range p.Files {
		if testSupport(f) {
			continue
		}
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				obj, ok := p.Info.Defs[ts.Name].(*types.TypeName)
				if !ok || obj.IsAlias() {
					continue
				}
				named, ok := obj.Type().(*types.Named)
				if !ok {
					continue
				}
				st, ok := named.Underlying().(*types.Struct)
				if !ok || !embedsScheme(st) || !declaresWrite(named) {
					continue
				}
				ptr := types.NewPointer(named)
				for _, name := range optionalIfaces {
					if types.Implements(named, ifaces[name]) || types.Implements(ptr, ifaces[name]) {
						continue
					}
					diags = report(diags, p, w, decoratorAnalyzer, obj.Pos(),
						"decorator %s embeds wl.Scheme and overrides Write but does not implement wl.%s; the embedded scheme's method serves that path without the decorator's interception", named.Obj().Name(), name)
				}
			}
		}
	}
	return diags
}

// embedsScheme reports whether the struct has an embedded field of the
// wl.Scheme interface type itself (not a concrete scheme).
func embedsScheme(st *types.Struct) bool {
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Embedded() && isWLNamed(f.Type(), "Scheme") {
			return true
		}
	}
	return false
}

// declaresWrite reports whether the named type declares its own Write method
// (promoted methods from the embedded scheme do not count — a type that
// merely forwards everything interposes on nothing).
func declaresWrite(named *types.Named) bool {
	for i := 0; i < named.NumMethods(); i++ {
		if named.Method(i).Name() == "Write" {
			return true
		}
	}
	return false
}
