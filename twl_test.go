package twl

import (
	"strings"
	"testing"

	"twl/internal/attack"
)

func TestDefaultSystemDevice(t *testing.T) {
	sys := DefaultSystem(1)
	dev, err := sys.NewDevice()
	if err != nil {
		t.Fatal(err)
	}
	if dev.Pages() != sys.Pages {
		t.Fatalf("pages = %d, want %d", dev.Pages(), sys.Pages)
	}
	// Endurance map must match the configured distribution roughly.
	var sum float64
	for p := 0; p < dev.Pages(); p++ {
		sum += float64(dev.Endurance(p))
	}
	mean := sum / float64(dev.Pages())
	if mean < 0.95*sys.MeanEndurance || mean > 1.05*sys.MeanEndurance {
		t.Fatalf("mean endurance %v, want ~%v", mean, sys.MeanEndurance)
	}
}

func TestSystemConfigValidation(t *testing.T) {
	bad := SystemConfig{Pages: 0, PageSize: 4096, MeanEndurance: 1000, SigmaFraction: 0.1}
	if _, err := bad.NewDevice(); err == nil {
		t.Fatal("zero pages accepted")
	}
}

func TestNewSchemeAllNames(t *testing.T) {
	sys := SmallSystem(2)
	for _, name := range SchemeNames() {
		dev, err := sys.NewDevice()
		if err != nil {
			t.Fatal(err)
		}
		s, err := NewScheme(name, dev, 7)
		if err != nil {
			t.Fatalf("NewScheme(%q): %v", name, err)
		}
		// Smoke: a write lands and reads back.
		s.Write(3, 42)
		if v, _ := s.Read(3); v != 42 {
			t.Fatalf("%s: read-back failed", name)
		}
	}
	// Aliases and case-insensitivity.
	for _, alias := range []string{"twl", "TWL", "sg", "start-gap", "SR2"} {
		dev, _ := sys.NewDevice()
		if _, err := NewScheme(alias, dev, 1); err != nil {
			t.Errorf("alias %q rejected: %v", alias, err)
		}
	}
	dev, _ := sys.NewDevice()
	if _, err := NewScheme("bogus", dev, 1); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}

func TestNewTWLDirectConfig(t *testing.T) {
	sys := SmallSystem(3)
	dev, err := sys.NewDevice()
	if err != nil {
		t.Fatal(err)
	}
	cfg := TWLConfig{Pairing: PairAdjacent, TossUpInterval: 16, InterPairSwapInterval: 64, Seed: 5, UseFeistel: true}
	e, err := NewTWL(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if e.Config().TossUpInterval != 16 {
		t.Fatal("config not honored")
	}
	if !strings.HasPrefix(e.Name(), "TWL_") {
		t.Fatalf("name %q", e.Name())
	}
}

func TestNewAttackAllModes(t *testing.T) {
	for _, mode := range []AttackMode{AttackRepeat, AttackRandom, AttackScan, AttackInconsistent} {
		src, err := NewAttack(mode, 128, 1)
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		for i := 0; i < 100; i++ {
			addr, write := src.Next(attack.Feedback{})
			if !write {
				t.Fatalf("mode %v produced a read", mode)
			}
			if addr < 0 || addr >= 128 {
				t.Fatalf("mode %v address %d out of range", mode, addr)
			}
		}
	}
}

func TestBenchmarksAPI(t *testing.T) {
	if len(Benchmarks()) != 13 {
		t.Fatalf("Benchmarks() = %d entries, want 13", len(Benchmarks()))
	}
	b, err := BenchmarkByName("canneal")
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewWorkload(b, 256, 9)
	if err != nil {
		t.Fatal(err)
	}
	writes := 0
	for i := 0; i < 1000; i++ {
		addr, w := src.Next(attack.Feedback{})
		if addr < 0 || addr >= 256 {
			t.Fatalf("workload address %d out of range", addr)
		}
		if w {
			writes++
		}
	}
	if writes == 0 || writes == 1000 {
		t.Fatalf("workload produced %d/1000 writes; expected a mix", writes)
	}
}

func TestRunLifetimeFacade(t *testing.T) {
	sys := SmallSystem(5)
	dev, err := sys.NewDevice()
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewScheme("NOWL", dev, 1)
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewAttack(AttackRepeat, sys.Pages, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunLifetime(s, src)
	if err != nil {
		t.Fatal(err)
	}
	if res.Capped || res.Normalized <= 0 {
		t.Fatalf("unexpected result %+v", res)
	}
}

func TestIdealYearsFacade(t *testing.T) {
	// Figure 6's constant: 8 GB/s → ~6.6 years.
	y := IdealYears(8e9)
	if y < 6.2 || y > 7.0 {
		t.Fatalf("IdealYears(8GB/s) = %v, want ~6.6", y)
	}
}
