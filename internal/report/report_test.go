package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("Title", "name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRow("beta", "22")
	out := tb.String()
	if !strings.Contains(out, "Title") {
		t.Fatal("title missing")
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "22") {
		t.Fatalf("cells missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Title, header, rule, two rows.
	if len(lines) != 5 {
		t.Fatalf("expected 5 lines, got %d:\n%s", len(lines), out)
	}
	if tb.Rows() != 2 {
		t.Fatalf("Rows = %d", tb.Rows())
	}
}

func TestTableAlignment(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow("xxxxxx", "y")
	out := tb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Header line must be padded to the data width: "a" + padding.
	if len(lines[0]) < 6 {
		t.Fatalf("header not padded: %q", lines[0])
	}
}

func TestTableAddRowf(t *testing.T) {
	tb := NewTable("", "x", "y", "z")
	tb.AddRowf("s", 3, 0.123456)
	out := tb.String()
	if !strings.Contains(out, "0.1235") {
		t.Fatalf("float formatting wrong:\n%s", out)
	}
}

func TestTableRaggedRows(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow("only")            // missing cell
	tb.AddRow("x", "y", "extra") // extra cell dropped
	out := tb.String()
	if strings.Contains(out, "extra") {
		t.Fatal("extra cell not dropped")
	}
}

func TestSeriesRender(t *testing.T) {
	s := NewSeries("Fig", "y")
	s.Add("one", 1)
	s.Add("two", 2)
	out := s.String()
	if !strings.Contains(out, "Fig") || !strings.Contains(out, "one") {
		t.Fatalf("series missing content:\n%s", out)
	}
	// The larger value gets the longer bar.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	bar1 := strings.Count(lines[1], "#")
	bar2 := strings.Count(lines[2], "#")
	if bar2 <= bar1 {
		t.Fatalf("bars not proportional: %d vs %d", bar1, bar2)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestSeriesZeroValues(t *testing.T) {
	s := NewSeries("Z", "")
	s.Add("a", 0)
	s.Add("b", 0)
	out := s.String() // must not divide by zero
	if !strings.Contains(out, "a") {
		t.Fatal("zero series broken")
	}
}
