// Package wrl implements Wear Rate Leveling (Dong et al., DAC 2011), the
// scheme the paper uses to illustrate the prediction–swap–running flow of
// PV-aware wear leveling (Figure 1) and the primary victim of the
// inconsistent-write attack (Figure 3).
//
// The scheme cycles through three phases:
//
//   - Prediction: write counts per logical page accumulate in the WNT for
//     PredictionWrites demand writes.
//   - Swap: logical pages are ranked by predicted (observed) write count and
//     physical pages by endurance; the hottest address is remapped to the
//     strongest page and so on down both rankings. The data movement blocks
//     demand traffic — which is exactly the timing signal the attacker uses
//     to detect the phase boundary.
//   - Running: the new mapping serves RunningMultiplier × PredictionWrites
//     demand writes, then the cycle restarts.
//
// The bedrock assumption — the write distribution observed in prediction
// persists through running — is what the inconsistent attack violates.
package wrl

import (
	"fmt"
	"io"
	"sort"

	"twl/internal/pcm"
	"twl/internal/snap"
	"twl/internal/tables"
	"twl/internal/wl"
)

// Config parameterizes WRL.
type Config struct {
	// PredictionWrites is the length of the prediction phase in demand
	// writes. The default scales with the array so each page can plausibly
	// be sampled.
	PredictionWrites int
	// RunningMultiplier is the running-phase length as a multiple of the
	// prediction phase (the paper cites 10×).
	RunningMultiplier int
	// MaxSwapFraction caps how many pages move in one swap phase, as a
	// fraction of the array (real controllers bound the blocking time).
	// 1.0 allows a full re-sort.
	MaxSwapFraction float64
}

// DefaultConfig returns a configuration matching the Figure 1 description
// for a device with pages pages.
func DefaultConfig(pages int) Config {
	pw := pages
	if pw < 1024 {
		pw = 1024
	}
	return Config{
		PredictionWrites:  pw,
		RunningMultiplier: 10,
		MaxSwapFraction:   1.0,
	}
}

type phase int

const (
	predicting phase = iota
	running
)

// Scheme is a Wear Rate Leveling wear leveler.
type Scheme struct {
	dev   *pcm.Device // snap: device state is checkpointed by the sim layer
	cfg   Config      // snap: construction input
	rt    *tables.Remap
	wnt   *tables.WriteCounts
	stats wl.Stats

	phase      phase
	phaseLeft  int   // demand writes remaining in the current phase
	byStrength []int // snap: derived from the endurance map at New; physical pages sorted by descending endurance

	scratch []int // snap: scratch buffer; physical-address batch for WriteSweep
}

var _ wl.Scheme = (*Scheme)(nil)
var _ wl.Checker = (*Scheme)(nil)
var _ wl.RunWriter = (*Scheme)(nil)
var _ wl.SweepWriter = (*Scheme)(nil)

// New builds a WRL scheme over dev.
func New(dev *pcm.Device, cfg Config) (*Scheme, error) {
	if cfg.PredictionWrites <= 0 {
		return nil, fmt.Errorf("wrl: PredictionWrites must be positive: %w", wl.ErrBadConfig)
	}
	if cfg.RunningMultiplier <= 0 {
		return nil, fmt.Errorf("wrl: RunningMultiplier must be positive: %w", wl.ErrBadConfig)
	}
	if cfg.MaxSwapFraction <= 0 || cfg.MaxSwapFraction > 1 {
		return nil, fmt.Errorf("wrl: MaxSwapFraction must be in (0,1]: %w", wl.ErrBadConfig)
	}
	asc := wl.SortByEndurance(dev.EnduranceMap())
	desc := make([]int, len(asc))
	for i, p := range asc {
		desc[len(asc)-1-i] = p
	}
	return &Scheme{
		dev:        dev,
		cfg:        cfg,
		rt:         tables.NewRemap(dev.Pages()),
		wnt:        tables.NewWriteCounts(dev.Pages()),
		phase:      predicting,
		phaseLeft:  cfg.PredictionWrites,
		byStrength: desc,
	}, nil
}

// Name implements wl.Scheme.
func (s *Scheme) Name() string { return "WRL" }

// Write implements wl.Scheme.
func (s *Scheme) Write(la int, tag uint64) wl.Cost {
	cost := wl.Cost{ExtraCycles: wl.ControlCycles + wl.TableCycles}
	pa := s.rt.Phys(la)
	s.dev.Write(pa, tag)
	cost.DeviceWrites = 1
	s.stats.DemandWrites++

	if s.phase == predicting {
		s.wnt.Record(la)
		cost.ExtraCycles += wl.TableCycles // WNT update
	}
	s.phaseLeft--
	if s.phaseLeft <= 0 {
		switch s.phase {
		case predicting:
			cost.Add(s.swapPhase())
			s.phase = running
			s.phaseLeft = s.cfg.RunningMultiplier * s.cfg.PredictionWrites
		case running:
			s.wnt.Reset()
			s.phase = predicting
			s.phaseLeft = s.cfg.PredictionWrites
		}
	}
	return cost
}

// horizon returns how many of the next n writes are guaranteed event-free:
// the only WRL event is the phase transition, fired by the write that takes
// phaseLeft to zero, so phaseLeft − 1 writes can pass without one. The
// remap table is frozen between swap phases, which is what lets the fast
// paths resolve addresses once per batch.
func (s *Scheme) horizon(n int) int {
	if k := s.phaseLeft - 1; k < n {
		return k
	}
	return n
}

// eventFreeCost is the uniform per-write cost inside the current phase:
// prediction-phase writes additionally update the WNT.
func (s *Scheme) eventFreeCost() wl.Cost {
	cost := wl.Cost{DeviceWrites: 1, ExtraCycles: wl.ControlCycles + wl.TableCycles}
	if s.phase == predicting {
		cost.ExtraCycles += wl.TableCycles // WNT update
	}
	return cost
}

// WriteRun implements wl.RunWriter via an event-horizon fast-forward: a
// same-address run maps to one physical page until the next phase
// transition, so the event-free prefix collapses into one bulk device write
// plus O(1) counter advances. absorbed == 0 means the next write fires the
// transition (possibly a blocking swap phase); the caller serves it through
// Write, which runs the transition exactly as the per-write path would.
//
//twl:hotpath
func (s *Scheme) WriteRun(la int, tag uint64, n int) (wl.Cost, int) {
	k := s.horizon(n)
	if k <= 0 {
		return wl.Cost{}, 0
	}
	// WriteN clamps at a mid-run wear-out, counting the failing write.
	applied := s.dev.WriteN(s.rt.Phys(la), tag, k)
	s.stats.DemandWrites += uint64(applied)
	s.phaseLeft -= applied
	if s.phase == predicting {
		s.wnt.Add(la, uint64(applied))
	}
	return s.eventFreeCost(), applied
}

// WriteSweep implements wl.SweepWriter: the event-free prefix of a
// consecutive-address sweep resolves through the frozen remap table into a
// physical-address batch served by one gather-write. WriteSeq clamps the
// batch at the first write that wears a page out; only the applied prefix
// is accounted (within one sweep the RT bijection keeps physical addresses
// distinct, so the clamp point is exact).
//
//twl:hotpath
func (s *Scheme) WriteSweep(la int, tag uint64, n int) (wl.Cost, int) {
	k := s.horizon(n)
	if k <= 0 {
		return wl.Cost{}, 0
	}
	buf := wl.Scratch(&s.scratch, k)
	phys := s.rt.PhysTable()
	for i := range buf {
		buf[i] = phys[la+i]
	}
	applied := s.dev.WriteSeq(buf, tag)
	s.stats.DemandWrites += uint64(applied)
	s.phaseLeft -= applied
	if s.phase == predicting {
		for i := 0; i < applied; i++ {
			s.wnt.Record(la + i)
		}
	}
	return s.eventFreeCost(), applied
}

// swapPhase realizes the predicted-hot → strong mapping: logical pages are
// ranked by WNT count and assigned to physical pages in endurance order,
// then the data is permuted into place cycle by cycle.
func (s *Scheme) swapPhase() wl.Cost {
	n := s.dev.Pages()
	// Rank by heat: stable descending order over all pages is (count desc,
	// la asc) — zero-count pages all tie, keeping ascending address order
	// behind the written ones. Sorting only the touched set by that total
	// order and appending the untouched pages in address order reproduces
	// the full ranking at O(k log k + n) for k written pages — under a
	// repeat attack the prediction phase touches one page, not all of them.
	hot := s.wnt.Touched()
	sort.Slice(hot, func(a, b int) bool {
		ca, cb := s.wnt.Count(hot[a]), s.wnt.Count(hot[b])
		if ca != cb {
			return ca > cb
		}
		return hot[a] < hot[b]
	})
	byHeat := make([]int, 0, n)
	byHeat = append(byHeat, hot...)
	for la := 0; la < n; la++ {
		if s.wnt.Count(la) == 0 {
			byHeat = append(byHeat, la)
		}
	}

	limit := int(s.cfg.MaxSwapFraction * float64(n))
	target := make([]int, n) // la → desired pa
	for la := 0; la < n; la++ {
		target[la] = s.rt.Phys(la) // default: stay put
	}
	for rank := 0; rank < n && rank < limit; rank++ {
		target[byHeat[rank]] = s.byStrength[rank]
	}
	// target may not be a permutation if limit < n (two LAs could want the
	// same PA); resolve by only honoring assignments whose PA is released.
	// With MaxSwapFraction == 1 the ranking covers all pages and target is a
	// permutation by construction.
	if limit < n {
		taken := make([]bool, n)
		for rank := 0; rank < limit; rank++ {
			taken[s.byStrength[rank]] = true
		}
		ranked := make([]bool, n)
		for rank := 0; rank < limit; rank++ {
			ranked[byHeat[rank]] = true
		}
		for la := 0; la < n; la++ {
			if !ranked[la] && taken[target[la]] {
				target[la] = -1 // displaced; assigned below
			}
		}
		free := make([]int, 0, n)
		used := make([]bool, n)
		for la := 0; la < n; la++ {
			if target[la] >= 0 {
				used[target[la]] = true
			}
		}
		for pa := 0; pa < n; pa++ {
			if !used[pa] {
				free = append(free, pa)
			}
		}
		fi := 0
		for la := 0; la < n; la++ {
			if target[la] < 0 {
				target[la] = free[fi]
				fi++
			}
		}
	}
	return s.permuteTo(target)
}

// permuteTo moves every logical page's data to target[la], decomposing the
// required permutation into cycles; a cycle of length L costs L page writes
// (rotating through a controller buffer) plus L reads.
func (s *Scheme) permuteTo(target []int) wl.Cost {
	var cost wl.Cost
	n := s.dev.Pages()
	done := make([]bool, n)
	for la0 := 0; la0 < n; la0++ {
		if done[la0] || s.rt.Phys(la0) == target[la0] {
			done[la0] = true
			continue
		}
		// Walk the cycle starting at la0: repeatedly place la's data into
		// its target slot after buffering the occupant.
		la := la0
		buf := s.dev.Peek(s.rt.Phys(la))
		bufLA := la
		for {
			dst := target[bufLA]
			occupant := s.rt.Log(dst)
			next := s.dev.Peek(dst)
			s.dev.Write(dst, buf)
			cost.DeviceWrites++
			cost.DeviceReads++
			s.stats.SwapWrites++
			s.rt.SwapLogical(bufLA, occupant)
			done[bufLA] = true
			if occupant == bufLA || done[occupant] {
				break
			}
			buf = next
			bufLA = occupant
		}
		s.stats.Swaps++
	}
	if cost.DeviceWrites > 0 {
		cost.Blocked = true
		// Sorting and table rewrites stall the controller well beyond the
		// data movement itself.
		cost.ExtraCycles += wl.TableCycles * cost.DeviceWrites
	}
	return cost
}

// Read implements wl.Scheme.
func (s *Scheme) Read(la int) (uint64, wl.Cost) {
	s.stats.DemandReads++
	return s.dev.Read(s.rt.Phys(la)), wl.Cost{DeviceReads: 1, ExtraCycles: wl.TableCycles}
}

// Stats implements wl.Scheme.
func (s *Scheme) Stats() wl.Stats { return s.stats }

// Device implements wl.Scheme.
func (s *Scheme) Device() *pcm.Device { return s.dev }

// CheckInvariants implements wl.Checker.
func (s *Scheme) CheckInvariants() error {
	if err := s.rt.CheckBijection(); err != nil {
		return err
	}
	// The transition write resets phaseLeft inside Write, so between requests
	// it sits strictly inside (0, phase length] — reaching 0 means a phase
	// transition was skipped (the event the fast path must never absorb).
	max := s.cfg.PredictionWrites
	if s.phase == running {
		max = s.cfg.RunningMultiplier * s.cfg.PredictionWrites
	}
	if s.phaseLeft < 1 || s.phaseLeft > max {
		return fmt.Errorf("wrl: phaseLeft %d outside (0,%d] in phase %d", s.phaseLeft, max, s.phase)
	}
	want := s.stats.DemandWrites + s.stats.SwapWrites
	if got := s.dev.TotalWrites(); got != want {
		return fmt.Errorf("wrl: device writes %d != demand %d + swap %d",
			got, s.stats.DemandWrites, s.stats.SwapWrites)
	}
	return nil
}

// Snapshot implements wl.Snapshotter: the remap table, the WNT (including
// its first-touch order, which feeds the swap-phase ranking), the phase
// machine and the stats.
func (s *Scheme) Snapshot(w io.Writer) error {
	if err := s.rt.Snapshot(w); err != nil {
		return err
	}
	if err := s.wnt.Snapshot(w); err != nil {
		return err
	}
	sw := snap.NewWriter(w)
	sw.Int(int(s.phase))
	sw.Int(s.phaseLeft)
	if err := sw.Err(); err != nil {
		return err
	}
	return s.stats.Snapshot(w)
}

// Restore implements wl.Snapshotter.
func (s *Scheme) Restore(r io.Reader) error {
	if err := s.rt.Restore(r); err != nil {
		return err
	}
	if err := s.wnt.Restore(r); err != nil {
		return err
	}
	sr := snap.NewReader(r)
	ph := sr.Int()
	s.phaseLeft = sr.Int()
	if err := sr.Err(); err != nil {
		return err
	}
	if ph != int(predicting) && ph != int(running) {
		return fmt.Errorf("wrl: restored phase %d invalid", ph)
	}
	s.phase = phase(ph)
	return s.stats.Restore(r)
}

func init() {
	wl.Register(wl.Registration{
		Name:  "WRL",
		Order: 70,
		Doc:   "Wear Rate Leveling (DAC'11)",
		New: func(dev *pcm.Device, _ uint64) (wl.Scheme, error) {
			return New(dev, DefaultConfig(dev.Pages()))
		},
	})
}
