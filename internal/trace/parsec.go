package trace

import (
	"fmt"
	"math"
	"sort"

	"twl/internal/rng"
)

// Benchmark describes one PARSEC workload as Table 2 characterizes it.
type Benchmark struct {
	Name string
	// WriteBandwidthMBps is the PCM write bandwidth in MB/s (Table 2).
	WriteBandwidthMBps float64
	// IdealLifetimeYears is the lifetime under perfect leveling (Table 2).
	IdealLifetimeYears float64
	// NoWLLifetimeYears is the lifetime with no wear leveling (Table 2).
	NoWLLifetimeYears float64
	// WriteFraction is the fraction of memory requests that are writes;
	// Table 2 does not report it, so a typical PCM-main-memory mix is
	// assumed (reads dominate because the CPU caches absorb most writes,
	// and dirty evictions are about a third of traffic).
	WriteFraction float64
	// FootprintFraction is the fraction of the page space the benchmark
	// ever writes. Real applications touch a working set far smaller than
	// a 32 GB main memory, which matters for pair-based schemes: an active
	// page is usually bonded to an idle one, so the pair's write stream is
	// single-sided (the consistent-traffic regime of the paper's Section
	// 4.2 model). 0 selects the default (0.25).
	FootprintFraction float64
	// GapFactor controls temporal clustering: writes to a page arrive in
	// runs whose length is proportional to the page's write rate, so every
	// page is revisited about every GapFactor × pages writes. Real traces
	// are temporally clustered — a hot 4 KB page absorbs many dirty
	// evictions in a row while its working-set phase lasts, while its
	// inter-visit gap stays bounded — and this clustering is what per-pair
	// mechanisms (TWL's sticky toss-up placement, BWL's hot promotion)
	// exploit. 0 selects the default (8).
	GapFactor int
}

// DefaultGapFactor is the inter-visit gap multiplier when a Benchmark does
// not specify one: every active page is revisited roughly every
// 8 × footprint writes.
const DefaultGapFactor = 8

// DefaultFootprintFraction is the written working-set size as a fraction of
// the page space when a Benchmark does not specify one.
const DefaultFootprintFraction = 0.25

// ConcentrationRatio returns NoWL/Ideal lifetime — the fraction of the
// array's total endurance a no-wear-leveling run extracts before the
// hottest page dies. It is the calibration target for the generator.
func (b Benchmark) ConcentrationRatio() float64 {
	return b.NoWLLifetimeYears / b.IdealLifetimeYears
}

// PARSEC returns the thirteen benchmarks of Table 2.
func PARSEC() []Benchmark {
	return []Benchmark{
		{Name: "blackscholes", WriteBandwidthMBps: 121, IdealLifetimeYears: 446, NoWLLifetimeYears: 14.5, WriteFraction: 1.0 / 3},
		{Name: "bodytrack", WriteBandwidthMBps: 271, IdealLifetimeYears: 199, NoWLLifetimeYears: 8.0, WriteFraction: 1.0 / 3},
		{Name: "canneal", WriteBandwidthMBps: 319, IdealLifetimeYears: 169, NoWLLifetimeYears: 2.9, WriteFraction: 1.0 / 3},
		{Name: "dedup", WriteBandwidthMBps: 1529, IdealLifetimeYears: 35, NoWLLifetimeYears: 2.5, WriteFraction: 1.0 / 3},
		{Name: "facesim", WriteBandwidthMBps: 1101, IdealLifetimeYears: 49, NoWLLifetimeYears: 3.0, WriteFraction: 1.0 / 3},
		{Name: "ferret", WriteBandwidthMBps: 1025, IdealLifetimeYears: 52, NoWLLifetimeYears: 1.2, WriteFraction: 1.0 / 3},
		{Name: "fluidanimate", WriteBandwidthMBps: 1092, IdealLifetimeYears: 49, NoWLLifetimeYears: 2.0, WriteFraction: 1.0 / 3},
		{Name: "freqmine", WriteBandwidthMBps: 491, IdealLifetimeYears: 110, NoWLLifetimeYears: 6.4, WriteFraction: 1.0 / 3},
		{Name: "rtview", WriteBandwidthMBps: 351, IdealLifetimeYears: 154, NoWLLifetimeYears: 5.4, WriteFraction: 1.0 / 3},
		{Name: "streamcluster", WriteBandwidthMBps: 12, IdealLifetimeYears: 4229, NoWLLifetimeYears: 132.2, WriteFraction: 1.0 / 3},
		{Name: "swaptions", WriteBandwidthMBps: 120, IdealLifetimeYears: 449, NoWLLifetimeYears: 12.8, WriteFraction: 1.0 / 3},
		{Name: "vips", WriteBandwidthMBps: 3309, IdealLifetimeYears: 16, NoWLLifetimeYears: 0.9, WriteFraction: 1.0 / 3},
		{Name: "x264", WriteBandwidthMBps: 538, IdealLifetimeYears: 100, NoWLLifetimeYears: 2.0, WriteFraction: 1.0 / 3},
	}
}

// BenchmarkByName returns the Table 2 entry with the given name.
func BenchmarkByName(name string) (Benchmark, error) {
	for _, b := range PARSEC() {
		if b.Name == name {
			return b, nil
		}
	}
	return Benchmark{}, fmt.Errorf("trace: unknown benchmark %q", name)
}

// Synthetic generates a benchmark's memory-request stream over a given page
// count: writes follow a Zipf distribution whose exponent is solved so the
// hottest page receives a 1/(r·N) share of writes, where r is the
// benchmark's Table 2 concentration ratio — this makes a no-wear-leveling
// run die at the same normalized lifetime the paper reports. Reads follow
// the same locality.
type Synthetic struct {
	bench     Benchmark // snap: construction input
	pages     int       // snap: construction input
	footprint int       // snap: derived at NewSynthetic; active (written) pages
	s         float64   // snap: derived at NewSynthetic; solved Zipf exponent

	cdf  []float64 // snap: derived by buildCDF; cumulative write probability by rank
	perm []int     // snap: derived by buildPerm; rank → logical page (seeded shuffle)
	src  *rng.Xorshift

	// Write-burst state: pages are visited in a fixed round-robin sweep
	// while burst *lengths* are proportional to the page's Zipf weight, so
	// the long-run per-page write share follows the Zipf weights exactly
	// and the Table 2 calibration is unaffected, while every page's
	// inter-visit gap is exactly GapFactor × pages writes — matching the
	// bounded recurrence of real working sets (a hot page is written a lot
	// and often; it does not vanish for arbitrarily long stretches).
	pdf       []float64 // snap: derived by buildCDF; write probability by rank
	visit     int       // next rank in the sweep
	burstPage int
	burstLeft int
	gapWrites float64 // snap: derived at NewSynthetic; GapFactor × pages
}

// NewSynthetic builds a generator for bench over pages logical pages.
func NewSynthetic(bench Benchmark, pages int, seed uint64) (*Synthetic, error) {
	if pages < 2 {
		return nil, fmt.Errorf("trace: need at least 2 pages, got %d", pages)
	}
	if bench.IdealLifetimeYears <= 0 || bench.NoWLLifetimeYears <= 0 {
		return nil, fmt.Errorf("trace: benchmark %q has non-positive lifetimes", bench.Name)
	}
	if bench.WriteFraction <= 0 || bench.WriteFraction > 1 {
		return nil, fmt.Errorf("trace: benchmark %q WriteFraction %v outside (0,1]",
			bench.Name, bench.WriteFraction)
	}
	r := bench.ConcentrationRatio()
	if r >= 1 {
		return nil, fmt.Errorf("trace: benchmark %q concentration ratio %v >= 1", bench.Name, r)
	}
	g := &Synthetic{bench: bench, pages: pages, src: rng.NewXorshift(seed)}
	frac := bench.FootprintFraction
	if frac <= 0 {
		frac = DefaultFootprintFraction
	}
	if frac > 1 {
		return nil, fmt.Errorf("trace: FootprintFraction %v > 1", frac)
	}
	g.footprint = int(frac * float64(pages))
	// The hottest-page share target 1/(r·N) needs the footprint to hold at
	// least r·N pages (a uniform spread over fewer pages would already be
	// more concentrated than the benchmark).
	if min := int(r*float64(pages)) + 2; g.footprint < min {
		g.footprint = min
	}
	if g.footprint > pages {
		g.footprint = pages
	}
	gf := bench.GapFactor
	if gf <= 0 {
		gf = DefaultGapFactor
	}
	g.gapWrites = float64(gf) * float64(g.footprint)
	g.s = solveZipfExponent(g.footprint, r*float64(pages))
	g.buildCDF()
	g.buildPerm(seed)
	return g, nil
}

// Footprint returns the number of distinct pages the generator writes.
func (g *Synthetic) Footprint() int { return g.footprint }

// Exponent returns the solved Zipf exponent (exposed for tests and logs).
func (g *Synthetic) Exponent() float64 { return g.s }

// Benchmark returns the benchmark this generator models.
func (g *Synthetic) Benchmark() Benchmark { return g.bench }

// solveZipfExponent finds s such that the hottest page's write share
// 1/H(f,s) equals 1/target, i.e. H(f, s) = target, over a footprint of f
// pages. H decreases monotonically in s from H(f,0) = f, so a binary search
// suffices; target must be ≤ f (the caller pads the footprint to ensure it).
func solveZipfExponent(f int, target float64) float64 {
	lo, hi := 0.0, 8.0
	for iter := 0; iter < 80; iter++ {
		mid := (lo + hi) / 2
		if harmonic(f, mid) > target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// harmonic computes the generalized harmonic number H(n, s) = Σ 1/i^s.
func harmonic(n int, s float64) float64 {
	sum := 0.0
	for i := 1; i <= n; i++ {
		sum += math.Pow(float64(i), -s)
	}
	return sum
}

// buildCDF precomputes the Zipf pdf and cdf over footprint ranks.
func (g *Synthetic) buildCDF() {
	g.pdf = make([]float64, g.footprint)
	g.cdf = make([]float64, g.footprint)
	sum := 0.0
	for i := 0; i < g.footprint; i++ {
		g.pdf[i] = math.Pow(float64(i+1), -g.s)
		sum += g.pdf[i]
		g.cdf[i] = sum
	}
	for i := range g.cdf {
		g.pdf[i] /= sum
		g.cdf[i] /= sum
	}
}

// buildPerm shuffles the rank → page assignment so hot pages are scattered
// across the address space (as real heaps are), not clustered at address 0.
func (g *Synthetic) buildPerm(seed uint64) {
	g.perm = make([]int, g.pages)
	for i := range g.perm {
		g.perm[i] = i
	}
	src := rng.NewXorshift(seed ^ 0x5DEECE66D)
	for i := g.pages - 1; i > 0; i-- {
		j := src.Intn(i + 1)
		g.perm[i], g.perm[j] = g.perm[j], g.perm[i]
	}
}

// samplePage draws a page according to the Zipf locality.
func (g *Synthetic) samplePage() int {
	u := g.src.Float64()
	rank := sort.SearchFloat64s(g.cdf, u)
	if rank >= g.footprint {
		rank = g.footprint - 1
	}
	return g.perm[rank]
}

// Next returns the next request: a logical page and whether it is a write.
// Writes follow the bursty Zipf process; reads sample the same locality
// independently (read placement does not affect wear).
func (g *Synthetic) Next() (addr int, write bool) {
	if g.src.Float64() >= g.bench.WriteFraction {
		return g.samplePage(), false
	}
	for g.burstLeft <= 0 {
		// Round-robin arrival, rate-proportional length (probabilistically
		// rounded so even tail pages keep their exact long-run share).
		rank := g.visit
		g.visit++
		if g.visit >= g.footprint {
			g.visit = 0
		}
		length := g.pdf[rank] * g.gapWrites
		g.burstLeft = int(length)
		if g.src.Float64() < length-float64(int(length)) {
			g.burstLeft++
		}
		g.burstPage = g.perm[rank]
	}
	g.burstLeft--
	return g.burstPage, true
}

// HottestShare returns the designed write share of the hottest page.
func (g *Synthetic) HottestShare() float64 {
	return 1 / harmonic(g.footprint, g.s)
}

// Generate writes n records to w.
func (g *Synthetic) Generate(n int, emit func(Record) error) error {
	for i := 0; i < n; i++ {
		addr, write := g.Next()
		op := Read
		if write {
			op = Write
		}
		if err := emit(Record{Op: op, Addr: uint64(addr)}); err != nil {
			return err
		}
	}
	return nil
}
