package wl

// Scratch returns a batch buffer of length k backed by *store, growing the
// backing array when it is too small. Sweep writers resolve their
// physical-address batches into such a buffer before handing it to
// Device.WriteSeq; keeping the growth here — the cold path, hit O(log n)
// times per lifetime — leaves the //twl:hotpath budget of the callers at
// zero heap allocations, and the allocation-budget analyzer attributes the
// make to this function, not to them. Kept out of line so inlining does not
// re-attribute the allocation to the hot caller: the call costs a few cycles
// once per sweep batch, against the thousands of writes the batch carries.
//
//go:noinline
func Scratch(store *[]int, k int) []int {
	if cap(*store) < k {
		*store = make([]int, k)
	}
	return (*store)[:k]
}
