package rng

// Feistel is an 8-bit-wide Feistel-network random number generator, modeling
// the hardware RNG the paper adopts: "an 8-bit width Feistel Network is
// adopted to generate random numbers, which costs less than 128 gates"
// (Section 5.4, following Start-Gap's RNG design).
//
// The generator runs a 4-round Feistel permutation over a 16-bit block
// (two 8-bit halves) in counter mode: block i of the output stream is
// Permute(counter+i). Counter mode guarantees the full 16-bit period per key
// and makes the stream trivially seekable, matching how such RNGs are built
// in memory-controller hardware.
type Feistel struct {
	keys    [feistelRounds]uint8
	counter uint16
	// buf accumulates 16-bit blocks into 64-bit outputs.
	buf    uint64
	bufLen uint
}

const feistelRounds = 4

// NewFeistel returns a Feistel generator seeded with seed.
func NewFeistel(seed uint64) *Feistel {
	f := &Feistel{}
	f.Seed(seed)
	return f
}

// Seed derives the round keys and counter start from seed.
func (f *Feistel) Seed(seed uint64) {
	s := splitmix64(seed)
	for i := range f.keys {
		f.keys[i] = uint8(s >> (8 * uint(i)))
	}
	f.counter = uint16(s >> 40)
	f.buf = 0
	f.bufLen = 0
}

// round is the Feistel round function: an 8-bit S-box-like mix of the half
// block and the round key. It only needs to be non-linear, not
// cryptographically strong; hardware implementations use a handful of XOR
// and AND gates.
func round(half, key uint8) uint8 {
	x := half ^ key
	x = x ^ (x << 3) ^ (x >> 2)
	x = x + (key << 1)
	return x ^ (x >> 4)
}

// permute16 applies the 4-round Feistel network to a 16-bit block.
func (f *Feistel) permute16(v uint16) uint16 {
	l := uint8(v >> 8)
	r := uint8(v)
	for i := 0; i < feistelRounds; i++ {
		l, r = r, l^round(r, f.keys[i])
	}
	return uint16(l)<<8 | uint16(r)
}

// next16 returns the next 16-bit block of the stream.
func (f *Feistel) next16() uint16 {
	v := f.permute16(f.counter)
	f.counter++
	return v
}

// Uint64 assembles four 16-bit blocks into a 64-bit output.
func (f *Feistel) Uint64() uint64 {
	var v uint64
	for i := 0; i < 4; i++ {
		v = v<<16 | uint64(f.next16())
	}
	return v
}

// Float64 returns a uniform value in [0, 1).
func (f *Feistel) Float64() float64 {
	return float64(f.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n).
func (f *Feistel) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	return int(f.Uint64() % uint64(n))
}

// Alpha returns the paper's α ∈ [0,1): the value the TWL engine compares
// against E_A/(E_A+E_B) during a toss-up (Figure 4b). Hardware produces an
// 8-bit α; we expose the same granularity so the reproduction inherits the
// same quantization (1/256) the real circuit would have.
func (f *Feistel) Alpha() float64 {
	return float64(f.next16()&0xFF) / 256.0
}

// Permutation16 exposes the raw 16-bit permutation for tests that verify
// the network is a bijection (the property that gives the full period).
func (f *Feistel) Permutation16(v uint16) uint16 { return f.permute16(v) }
