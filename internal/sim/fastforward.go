package sim

import (
	"fmt"

	"twl/internal/attack"
	"twl/internal/obs"
	"twl/internal/pcm"
	"twl/internal/wl"
)

// lifetimeState carries the request-loop state of one RunLifetime call, so
// the per-request and fast-forward loops share accounting code (and the
// loops themselves stay small enough to read).
type lifetimeState struct {
	s          wl.Scheme
	dev        *pcm.Device
	timing     pcm.Timing
	checker    wl.Checker
	capRep     wl.CapacityReporter
	checkEvery uint64
	metrics    *lifetimeMetrics
	tracer     *obs.Tracer
	traceEvery uint64
	limit      uint64

	fb      attack.Feedback
	demand  uint64
	blocked uint64
	cycles  int64
	res     LifetimeResult

	// Pending bulk-run state. bulkLoop's source has already committed to a
	// whole run when next() returns, so the unserved remainder is loop
	// state, not source state — it lives here (rather than in locals) so a
	// mid-run checkpoint can persist it and a resume can finish the run
	// without consulting the source again.
	runActive bool // a write run is partially served
	runAddr   int  // first address of the run
	runN      int  // requests of the run not yet served
	runOff    int  // requests of the run already served (sweep offset)

	// observer relays served-request feedback to a feedback-driven source
	// (see FeedbackObserver); nil for feedback-independent sources. Derived
	// from src at bulkLoop entry, so it needs no checkpoint state of its own.
	observer FeedbackObserver

	// Fast-path chunking diagnostics, registered by bulkLoop only when the
	// scheme actually has a bulk writer and a metrics registry is attached.
	// They describe the simulator's own fast path — the per-write path never
	// creates them — so the differential bit-identity comparison excludes
	// the twl_ff_* series (see TestFastForwardDifferential).
	reg      *obs.Registry
	ffRunLen *obs.Histogram
	ffEvents *obs.Counter

	// Checkpointing (see checkpoint.go). src is retained so writeCheckpoint
	// can serialize the source's stream position.
	src       Source
	ckptPath  string
	ckptEvery uint64
	ckptTotal *obs.Counter
	ckptBytes *obs.Gauge
	ckptSecs  *obs.Histogram

	// Preemption (see LifetimeConfig.Stop). nextStop is the demand count at
	// which stop is next polled; it advances by stopEvery whether or not the
	// poll fires, so bulk chunks that overshoot a poll point don't pile up
	// extra polls.
	stop      func() bool
	stopEvery uint64
	nextStop  uint64
}

// perRequestLoop is the baseline path: one Source.Next, one Write/Read per
// iteration. The nil-metrics/nil-trace/nil-checker case runs a bare loop
// with those branches hoisted out entirely.
func (l *lifetimeState) perRequestLoop(src Source) error {
	if l.metrics == nil && l.traceEvery == 0 && l.checkEvery == 0 && l.ckptEvery == 0 && l.stop == nil {
		return l.perRequestBare(src)
	}
	for l.demand < l.limit {
		addr, write := src.Next(l.fb)
		if !write {
			l.readOne(addr)
			continue
		}
		if err := l.writeOne(addr); err != nil {
			return err
		}
		// Reads cannot wear a page out, so failure is only checked after
		// writes.
		if l.failed() {
			return nil
		}
		if err := l.ckptAt(); err != nil {
			return err
		}
	}
	return nil
}

// perRequestBare is perRequestLoop with no instrumentation in the loop.
func (l *lifetimeState) perRequestBare(src Source) error {
	s, timing := l.s, l.timing
	for l.demand < l.limit {
		addr, write := src.Next(l.fb)
		var cost wl.Cost
		if write {
			cost = s.Write(addr, l.demand)
			l.demand++
		} else {
			_, cost = s.Read(addr)
		}
		c := cost.Cycles(timing)
		l.cycles += c
		if cost.Blocked {
			l.blocked++
		}
		l.fb = attack.Feedback{Blocked: cost.Blocked, Cycles: c}
		if write && l.failed() {
			return nil
		}
	}
	return nil
}

// bulkLoop is the fast-forward path: the source emits runs (same address) or
// sweeps (consecutive addresses), and the scheme — when it implements the
// matching writer interface — absorbs the event-free prefix of each run in
// bulk. Event writes (absorbed == 0) and schemes without the interface are
// served through the identical per-request accounting as perRequestLoop, so
// results are bit-identical either way.
//
//twl:hotpath
func (l *lifetimeState) bulkLoop(next func(attack.Feedback) (int, bool, int), sweep bool) error {
	var runWriter wl.RunWriter
	var sweepWriter wl.SweepWriter
	if sweep {
		sweepWriter, _ = l.s.(wl.SweepWriter)
	} else {
		runWriter, _ = l.s.(wl.RunWriter)
	}
	hasWriter := runWriter != nil || sweepWriter != nil
	if hasWriter && l.reg != nil {
		l.initFFMetrics()
	}
	l.observer, _ = l.src.(FeedbackObserver)

	for l.demand < l.limit {
		if !l.runActive {
			addr, write, n := next(l.fb)
			if n <= 0 {
				continue
			}
			if !write {
				// Read runs never intersect a checkpoint (checkpoints fire
				// on demand-write boundaries only), so they are served
				// whole and never persisted as pending state.
				for i := 0; i < n; i++ {
					a := addr
					if sweep {
						a = addr + i
					}
					l.readOne(a)
					if l.observer != nil {
						l.observer.Observe(l.fb, 1)
					}
				}
				continue
			}
			l.runActive, l.runAddr, l.runN, l.runOff = true, addr, n, 0
		}
		for l.runN > 0 && l.demand < l.limit {
			if hasWriter {
				chunk := l.boundedChunk(l.runN)
				var cost wl.Cost
				var absorbed int
				if sweep {
					cost, absorbed = sweepWriter.WriteSweep(l.runAddr+l.runOff, l.demand, chunk)
				} else {
					cost, absorbed = runWriter.WriteRun(l.runAddr, l.demand, chunk)
				}
				if absorbed > 0 {
					l.accountBulk(cost, absorbed)
					if l.observer != nil {
						// The absorbed writes share one feedback; relay it
						// before the checkpoint cadence can snapshot the
						// source (see FeedbackObserver).
						l.observer.Observe(l.fb, absorbed)
					}
					l.runN -= absorbed
					l.runOff += absorbed
					// Same order as the per-request path: the invariant
					// check (only ever at a batch end, by boundedChunk)
					// runs before the failure check, then the checkpoint
					// cadence.
					if err := l.checkAt(); err != nil {
						return err
					}
					if l.failed() {
						return nil
					}
					if err := l.ckptAt(); err != nil {
						return err
					}
					continue
				}
			}
			// Event write, or the scheme has no fast path: serve one
			// request exactly as the per-request loop would.
			if l.ffEvents != nil {
				l.ffEvents.Inc()
			}
			a := l.runAddr
			if sweep {
				a = l.runAddr + l.runOff
			}
			if err := l.writeOne(a); err != nil {
				return err
			}
			if l.observer != nil {
				l.observer.Observe(l.fb, 1)
			}
			l.runN--
			l.runOff++
			if l.failed() {
				return nil
			}
			if err := l.ckptAt(); err != nil {
				return err
			}
		}
		if l.runN == 0 {
			l.runActive = false
		}
	}
	return nil
}

// initFFMetrics registers the fast-path diagnostic series. Called from
// bulkLoop when the scheme has a bulk writer, and from checkpoint restore
// when the interrupted run had them live — registry lookups are idempotent,
// so both call sites resolve to the same handles in the same registration
// order as an uninterrupted run.
func (l *lifetimeState) initFFMetrics() {
	l.reg.Help("twl_ff_run_length", "demand writes absorbed per fast-path bulk chunk, by scheme")
	l.reg.Help("twl_ff_events_total", "event writes served per-request inside the fast-forward loop, by scheme")
	label := obs.L("scheme", l.s.Name())
	l.ffRunLen = l.reg.Histogram("twl_ff_run_length", obs.ExponentialBuckets(1, 4, 11), label)
	l.ffEvents = l.reg.Counter("twl_ff_events_total", label)
}

// boundedChunk clamps a bulk request so it cannot cross the demand cap, a
// trace progress boundary, an invariant-check boundary, or a checkpoint
// boundary — the fast path then observes those cadences at exactly the same
// demand counts as the per-request path.
func (l *lifetimeState) boundedChunk(n int) int {
	chunk := uint64(n)
	if rem := l.limit - l.demand; rem < chunk {
		chunk = rem
	}
	if l.traceEvery > 0 {
		if rem := l.traceEvery - l.demand%l.traceEvery; rem < chunk {
			chunk = rem
		}
	}
	if l.checkEvery > 0 {
		if rem := l.checkEvery - l.demand%l.checkEvery; rem < chunk {
			chunk = rem
		}
	}
	if l.ckptEvery > 0 {
		if rem := l.ckptEvery - l.demand%l.ckptEvery; rem < chunk {
			chunk = rem
		}
	}
	return int(chunk)
}

// accountBulk applies the accounting for `absorbed` uniform-cost unblocked
// writes in O(1): cycle totals, batched metrics (Counter.Add and
// Histogram.ObserveN land exactly where `absorbed` repeated updates would),
// feedback, and the trace progress cadence (boundedChunk guarantees a
// boundary can only fall at the end of the batch).
func (l *lifetimeState) accountBulk(cost wl.Cost, absorbed int) {
	c := cost.Cycles(l.timing)
	l.cycles += c * int64(absorbed)
	l.demand += uint64(absorbed)
	l.fb = attack.Feedback{Blocked: false, Cycles: c}
	if l.metrics != nil {
		l.metrics.writes.Add(uint64(absorbed))
		l.metrics.latency.ObserveN(float64(c), uint64(absorbed))
	}
	if l.ffRunLen != nil {
		l.ffRunLen.Observe(float64(absorbed))
	}
	if l.traceEvery > 0 && l.demand%l.traceEvery == 0 {
		l.emitProgress()
	}
}

// writeOne serves one demand write with full per-request accounting.
func (l *lifetimeState) writeOne(addr int) error {
	cost := l.s.Write(addr, l.demand)
	l.demand++
	c := cost.Cycles(l.timing)
	l.cycles += c
	if cost.Blocked {
		l.blocked++
	}
	l.fb = attack.Feedback{Blocked: cost.Blocked, Cycles: c}
	if l.metrics != nil {
		l.metrics.writes.Inc()
		if cost.Blocked {
			l.metrics.blocked.Inc()
		}
		l.metrics.latency.Observe(float64(c))
	}
	if l.traceEvery > 0 && l.demand%l.traceEvery == 0 {
		l.emitProgress()
	}
	return l.checkAt()
}

// readOne serves one demand read with full per-request accounting. Reads
// don't advance demand, can't fail the device, and don't hit the check or
// trace cadences.
func (l *lifetimeState) readOne(addr int) {
	_, cost := l.s.Read(addr)
	c := cost.Cycles(l.timing)
	l.cycles += c
	if cost.Blocked {
		l.blocked++
	}
	l.fb = attack.Feedback{Blocked: cost.Blocked, Cycles: c}
	if l.metrics != nil {
		l.metrics.reads.Inc()
		if cost.Blocked {
			l.metrics.blocked.Inc()
		}
		l.metrics.latency.Observe(float64(c))
	}
}

// checkAt runs the scheme's invariant checker when demand sits on the
// configured cadence.
func (l *lifetimeState) checkAt() error {
	if l.checkEvery > 0 && l.demand%l.checkEvery == 0 {
		if err := l.checker.CheckInvariants(); err != nil {
			return fmt.Errorf("sim: invariant violation after %d writes: %w", l.demand, err)
		}
	}
	return nil
}

// failed records the first failed page, stopping the run.
func (l *lifetimeState) failed() bool {
	if page, isFailed := l.dev.Failed(); isFailed {
		l.res.FailedPage = page
		return true
	}
	return false
}
