package pcm

import "fmt"

// Packed storage mode: the paper's full geometry is 8Mi pages, and the wide
// device layout (endurance + invEndurance + wear + payload = 32 B/page)
// costs ~270 MB before any scheme tables. Real endurance values fit
// comfortably in 32 bits (the paper's mean is 10^8 ≈ 2^26.6), so the packed
// mode stores endurance and wear as uint32 and drops the invEndurance cache
// (Summary/WearHistogram recompute 1/float64(e) on the fly — the identical
// IEEE operation NewDevice memoizes, so wear fractions stay bit-identical).
// That halves the device to 16 B/page and, more importantly, doubles how
// many wear counters fit per cache line on the bulk write paths.
//
// Width safety: endurance is capped at MaxPackedEndurance = 2^31, leaving a
// full 2^31 of wear headroom past the endurance boundary. Wear exceeds
// endurance only by writes applied after a failure — the simulator stops on
// the first unhandled failure and the retirement layer redirects traffic
// off dead cells, so the overshoot is bounded by one bulk chunk and can
// never approach the uint32 ceiling.

// MaxPackedEndurance is the largest per-page endurance a packed device
// accepts (2^31 — see the width-safety note above).
const MaxPackedEndurance = 1 << 31

// NewPackedDevice builds a device in packed storage mode. It behaves
// bit-identically to NewDevice — same write/failure semantics, same
// snapshot wire format — but requires every endurance value to be at most
// MaxPackedEndurance.
func NewPackedDevice(geom Geometry, timing Timing, endurance []uint64) (*Device, error) {
	if err := geom.Validate(); err != nil {
		return nil, err
	}
	if len(endurance) != geom.TotalPages() {
		return nil, fmt.Errorf("pcm: endurance map has %d entries, geometry has %d pages (%d visible + %d spare)",
			len(endurance), geom.TotalPages(), geom.Pages, geom.SparePages)
	}
	end := make([]uint32, len(endurance))
	for i, e := range endurance {
		if e == 0 {
			return nil, fmt.Errorf("pcm: page %d has zero endurance", i)
		}
		if e > MaxPackedEndurance {
			return nil, fmt.Errorf("pcm: page %d endurance %d exceeds packed limit %d (use NewDevice)",
				i, e, uint64(MaxPackedEndurance))
		}
		end[i] = uint32(e)
	}
	return &Device{
		geom:    geom,
		timing:  timing,
		end32:   end,
		wear32:  make([]uint32, geom.TotalPages()),
		payload: make([]uint64, geom.TotalPages()),
	}, nil
}

// Packed reports whether the device uses the packed (uint32) storage mode.
func (d *Device) Packed() bool { return d.wear32 != nil }

// write32 is Write in packed mode.
func (d *Device) write32(pp int, tag uint64) bool {
	pp = d.resolve(pp)
	d.wear32[pp]++
	d.payload[pp] = tag
	d.writes++
	if d.wear32[pp] == d.end32[pp] {
		d.failedLog = append(d.failedLog, pp)
		return true
	}
	return d.wear32[pp] > d.end32[pp]
}

// writeN32 is WriteN in packed mode (n > 0 guaranteed by the caller).
//
//twl:hotpath
func (d *Device) writeN32(pp int, tag uint64, n int) int {
	pp = d.resolve(pp)
	applied := uint64(n)
	w, e := d.wear32[pp], d.end32[pp]
	if w < e && applied >= uint64(e-w) {
		applied = uint64(e - w)
		d.failedLog = append(d.failedLog, pp)
	}
	d.wear32[pp] = w + uint32(applied)
	d.payload[pp] = tag + applied - 1
	d.writes += applied
	return int(applied)
}

// rewriteN32 is RewriteN in packed mode (n > 0 guaranteed by the caller).
//
//twl:hotpath
func (d *Device) rewriteN32(pp int, n int) int {
	pp = d.resolve(pp)
	applied := uint64(n)
	w, e := d.wear32[pp], d.end32[pp]
	if w < e && applied >= uint64(e-w) {
		applied = uint64(e - w)
		d.failedLog = append(d.failedLog, pp)
	}
	d.wear32[pp] = w + uint32(applied)
	d.writes += applied
	return int(applied)
}

// writeRange32 is WriteRange in packed mode (n > 0 guaranteed by the caller).
//
//twl:hotpath
func (d *Device) writeRange32(pp0 int, tag uint64, n int) int {
	if d.redirect != nil {
		return d.writeRangeSlow32(pp0, tag, n)
	}
	wear := d.wear32[pp0 : pp0+n]
	end := d.end32[pp0 : pp0+n][:n]
	pay := d.payload[pp0 : pp0+n][:n]
	for i := range wear {
		w := wear[i] + 1
		wear[i] = w
		pay[i] = tag + uint64(i)
		if w >= end[i] {
			if w == end[i] {
				d.failedLog = append(d.failedLog, pp0+i)
			}
			d.writes += uint64(i + 1)
			return i + 1
		}
	}
	d.writes += uint64(n)
	return n
}

// writeRangeSlow32 is writeRange32 with per-page redirect resolution, used
// once any page has been retired.
func (d *Device) writeRangeSlow32(pp0 int, tag uint64, n int) int {
	for i := 0; i < n; i++ {
		pp := d.resolve(pp0 + i)
		w := d.wear32[pp] + 1
		d.wear32[pp] = w
		d.payload[pp] = tag + uint64(i)
		if w >= d.end32[pp] {
			if w == d.end32[pp] {
				d.failedLog = append(d.failedLog, pp)
			}
			d.writes += uint64(i + 1)
			return i + 1
		}
	}
	d.writes += uint64(n)
	return n
}

// writeSeq32 is WriteSeq in packed mode.
//
//twl:hotpath
func (d *Device) writeSeq32(pps []int, tag uint64) int {
	wear := d.wear32
	end := d.end32[:len(wear)]
	pay := d.payload[:len(wear)]
	redirected := d.redirect != nil
	for i, pp := range pps {
		if redirected {
			pp = d.resolve(pp)
		}
		w := wear[pp] + 1
		wear[pp] = w
		pay[pp] = tag + uint64(i)
		if w >= end[pp] {
			if w == end[pp] {
				d.failedLog = append(d.failedLog, pp)
			}
			d.writes += uint64(i + 1)
			return i + 1
		}
	}
	d.writes += uint64(len(pps))
	return len(pps)
}

// minRemainingAtLeast32 is MinRemainingAtLeast's exact rescan in packed
// mode; the watermark fast paths are width-independent and stay in the
// caller.
func (d *Device) minRemainingAtLeast32(n uint64) bool {
	min := ^uint64(0)
	visible := d.geom.Pages
	for pp, w := range d.wear32 {
		if d.redirect != nil {
			if pp < visible {
				if d.redirect[pp] >= 0 {
					continue
				}
			} else if !d.isTarget[pp] {
				continue
			}
		} else if pp >= visible {
			break
		}
		var r uint64
		if w < d.end32[pp] {
			r = uint64(d.end32[pp] - w)
		}
		if r < min {
			min = r
		}
	}
	d.slack = min
	d.slackAt = d.writes
	d.slackValid = true
	return min >= n
}

// summary32 is Summary in packed mode. The wear fraction is computed as
// w * (1/e) — the same reciprocal-then-multiply NewDevice caches in
// invEndurance — so packed and wide summaries are bit-identical.
func (d *Device) summary32() WearSummary {
	var s WearSummary
	s.MaxWearPage = -1
	s.MaxFractionPage = -1
	var fracSum float64
	for pp, w32 := range d.wear32 {
		w := uint64(w32)
		s.TotalWear += w
		if w > s.MaxWear {
			s.MaxWear = w
			s.MaxWearPage = pp
		}
		f := float64(w) * (1 / float64(d.end32[pp]))
		fracSum += f
		if f > s.MaxFraction {
			s.MaxFraction = f
			s.MaxFractionPage = pp
		}
	}
	if len(d.wear32) > 0 {
		s.MeanFraction = fracSum / float64(len(d.wear32))
	}
	return s
}

// wearHistogram32 is WearHistogram in packed mode (buckets > 0 guaranteed
// by the caller).
func (d *Device) wearHistogram32(buckets int) []int {
	h := make([]int, buckets)
	for pp, w := range d.wear32 {
		f := float64(w) * (1 / float64(d.end32[pp]))
		b := int(f * float64(buckets))
		if b >= buckets {
			b = buckets - 1
		}
		h[b]++
	}
	return h
}

// Footprint itemizes the device's per-page state arrays in bytes — the
// layout audit behind the bytes-per-page accounting in BENCH reports. Only
// allocated arrays count: a wide device reports Wear/Endurance/InvEndurance
// at 8 bytes per page, a packed one at 4/4/0, and Redirect is zero until
// the first retirement materializes the table.
type Footprint struct {
	Wear         int64 `json:"wear"`
	Endurance    int64 `json:"endurance"`
	InvEndurance int64 `json:"inv_endurance"`
	Payload      int64 `json:"payload"`
	Redirect     int64 `json:"redirect"`
}

// Total sums the itemized bytes.
func (f Footprint) Total() int64 {
	return f.Wear + f.Endurance + f.InvEndurance + f.Payload + f.Redirect
}

// PerPage returns Total divided by the page count.
func (f Footprint) PerPage(pages int) float64 {
	if pages <= 0 {
		return 0
	}
	return float64(f.Total()) / float64(pages)
}

// Footprint reports the device's current per-page memory layout.
func (d *Device) Footprint() Footprint {
	var f Footprint
	f.Wear = int64(len(d.wear))*8 + int64(len(d.wear32))*4
	f.Endurance = int64(len(d.endurance))*8 + int64(len(d.end32))*4
	f.InvEndurance = int64(len(d.invEndurance)) * 8
	f.Payload = int64(len(d.payload)) * 8
	if d.redirect != nil {
		f.Redirect = int64(len(d.redirect))*8 + int64(len(d.isTarget))
	}
	return f
}
