// Package retire implements a WoLFRaM-style fault-tolerance decorator
// (PAPERS.md: "WoLFRaM: Enhancing Wear-Leveling and Fault Tolerance in
// Resistive Memories using Programmable Address Decoders"): when a page
// under any wear-leveling scheme reaches its endurance, the decorator
// remaps it to a page from the device's spare pool and acknowledges the
// failure, so the lifetime run continues instead of ending at the first
// dead page. The run ends under a new lifetime definition — when the spare
// pool is exhausted, or when a configured fraction of the visible capacity
// has been retired (the device is declared dead at N% capacity loss).
//
// The decorator is scheme-agnostic: it composes with any registered scheme
// through wl.Wrap, which preserves the scheme's optional interfaces — the
// bulk fast paths keep running (failures surface through the same
// clamp-at-failing-write contract), checkpoints include the retirement
// state, and paranoid mode checks both the decorator's bookkeeping and the
// scheme's own invariants. Retirement happens below the scheme's address
// map: the scheme keeps writing the physical page it chose, and the device
// resolves retired pages to their spares, exactly like a programmable
// address decoder under a wear-leveler.
package retire

import (
	"fmt"
	"io"

	"twl/internal/pcm"
	"twl/internal/snap"
	"twl/internal/wl"
)

func init() {
	wl.RegisterRetirementFactory(New)
}

// New wraps inner with the retirement decorator. The scheme's device must
// have been built with a spare region (pcm.Geometry.SparePages > 0).
func New(inner wl.Scheme, cfg wl.RetireConfig) (wl.Scheme, error) {
	dev := inner.Device()
	if dev.SparePages() == 0 {
		return nil, fmt.Errorf("retire: device has no spare pages (set Geometry.SparePages): %w", wl.ErrBadConfig)
	}
	if cfg.CapacityThreshold < 0 || cfg.CapacityThreshold >= 1 {
		return nil, fmt.Errorf("retire: CapacityThreshold %v outside [0,1): %w", cfg.CapacityThreshold, wl.ErrBadConfig)
	}
	limit := dev.Pages()
	if cfg.CapacityThreshold > 0 {
		limit = int(cfg.CapacityThreshold * float64(dev.Pages()))
	}
	d := &decorator{
		Scheme: inner,
		dev:    dev,
		limit:  limit,
		origin: make([]int, dev.SparePages()),
	}
	for i := range d.origin {
		d.origin[i] = -1
	}
	return wl.Wrap(d, inner), nil
}

// decorator intercepts the write paths, drains the device's failure log
// after each one, and retires failed pages into the spare pool. It stays
// unexported: it is not a registerable scheme, only a layer Build/Compose
// put over one.
type decorator struct {
	wl.Scheme              // snap: wrapped scheme; checkpointed by its own Snapshot call below
	dev        *pcm.Device // snap: construction input (the scheme's device)
	limit      int         // snap: derived from RetireConfig at New
	handled    int         // failures drained from the device log
	retired    int         // distinct visible pages retired
	sparesUsed int
	exhausted  bool
	// origin[k] is the visible page spare k was allocated to serve (-1 =
	// unallocated). A page whose spare wore out appears under every spare
	// it ever consumed; its current one is whatever the device redirect
	// says.
	origin []int
	curve  []wl.CapacityPoint
}

func (d *decorator) Write(la int, tag uint64) wl.Cost {
	cost := d.Scheme.Write(la, tag)
	if d.dev.FailedPages() > d.handled {
		d.onFailures()
	}
	return cost
}

// WriteRun forwards the same-address fast path. A mid-run failure clamps
// the run at the failing write (RunWriter contract), so draining the log
// after the call retires the page at exactly the same demand-write count
// as the per-request path — the capacity curve is bit-identical.
//
//twl:hotpath
func (d *decorator) WriteRun(la int, tag uint64, n int) (wl.Cost, int) {
	cost, absorbed := d.Scheme.(wl.RunWriter).WriteRun(la, tag, n)
	if d.dev.FailedPages() > d.handled {
		d.onFailures()
	}
	return cost, absorbed
}

// WriteSweep forwards the consecutive-address fast path; failure handling
// matches WriteRun.
//
//twl:hotpath
func (d *decorator) WriteSweep(la int, tag uint64, n int) (wl.Cost, int) {
	cost, absorbed := d.Scheme.(wl.SweepWriter).WriteSweep(la, tag, n)
	if d.dev.FailedPages() > d.handled {
		d.onFailures()
	}
	return cost, absorbed
}

// onFailures drains unhandled failures from the device log. Each failure is
// either a visible page (retire it onto the next spare) or a worn-out spare
// (re-point its origin page to a fresh spare). A failure the pool or the
// capacity threshold cannot cover is left unacknowledged: the device keeps
// reporting it and the simulator ends the run, with Exhausted recording the
// cause.
//
// The retirement migration is a device metadata operation (pcm.Remap): it
// charges no latency to the triggering request and no wear to the spare.
// Charging it would break the fast-forward cost-uniformity contract — the
// failing write can be absorbed mid-bulk where no per-request cost exists
// to attach the migration to — and one migration write per retirement is
// noise against the millions of writes each spare then absorbs.
func (d *decorator) onFailures() {
	visible := d.dev.Pages()
	for !d.exhausted && d.handled < d.dev.FailedPages() {
		f := d.dev.FailureAt(d.handled)
		v := f
		fresh := true
		if f >= visible {
			// A spare died in service; move its origin to a fresh spare.
			v = d.origin[f-visible]
			fresh = false
		}
		newRetired := d.retired
		if fresh {
			newRetired++
		}
		if d.sparesUsed == d.dev.SparePages() || newRetired > d.limit {
			d.exhausted = true
			return
		}
		sp := visible + d.sparesUsed
		if err := d.dev.Remap(v, sp); err != nil {
			// The sequential allocation above guarantees a valid remap;
			// reaching here means decorator state diverged from the device.
			panic(fmt.Sprintf("retire: remap %d -> %d: %v", v, sp, err))
		}
		d.origin[d.sparesUsed] = v
		d.sparesUsed++
		d.retired = newRetired
		d.handled++
		d.dev.AckFailures(d.handled)
		d.curve = append(d.curve, wl.CapacityPoint{
			DemandWrites: d.Scheme.Stats().DemandWrites,
			Retired:      d.retired,
			SparesUsed:   d.sparesUsed,
		})
	}
}

// CapacityStats implements wl.CapacityReporter.
func (d *decorator) CapacityStats() wl.CapacityStats {
	curve := make([]wl.CapacityPoint, len(d.curve))
	copy(curve, d.curve)
	return wl.CapacityStats{
		SparePages:  d.dev.SparePages(),
		SparesUsed:  d.sparesUsed,
		Retired:     d.retired,
		RetireLimit: d.limit,
		Exhausted:   d.exhausted,
		Curve:       curve,
	}
}

// CheckInvariants verifies the decorator's bookkeeping against the device
// redirect state, then the wrapped scheme's own invariants.
func (d *decorator) CheckInvariants() error {
	visible := d.dev.Pages()
	if d.sparesUsed > d.dev.SparePages() {
		return fmt.Errorf("retire: %d spares used of %d", d.sparesUsed, d.dev.SparePages())
	}
	if d.retired > d.limit {
		return fmt.Errorf("retire: %d pages retired over limit %d", d.retired, d.limit)
	}
	if !d.exhausted && d.handled != d.dev.FailedPages() {
		return fmt.Errorf("retire: %d failures handled, device logged %d", d.handled, d.dev.FailedPages())
	}
	serving := 0
	for k := 0; k < d.sparesUsed; k++ {
		v := d.origin[k]
		if v < 0 || v >= visible {
			return fmt.Errorf("retire: spare %d has origin %d outside visible range", k, v)
		}
		sp, ok := d.dev.Redirect(v)
		if !ok {
			return fmt.Errorf("retire: origin %d of spare %d is not redirected", v, k)
		}
		if sp == visible+k {
			serving++
		}
	}
	for k := d.sparesUsed; k < len(d.origin); k++ {
		if d.origin[k] != -1 {
			return fmt.Errorf("retire: unallocated spare %d has origin %d", k, d.origin[k])
		}
	}
	if serving != d.retired {
		return fmt.Errorf("retire: %d spares in service, %d pages retired", serving, d.retired)
	}
	if c, ok := d.Scheme.(wl.Checker); ok {
		return c.CheckInvariants()
	}
	return nil
}

// Snapshot persists the retirement state ahead of the wrapped scheme's.
func (d *decorator) Snapshot(w io.Writer) error {
	sw := snap.NewWriter(w)
	sw.Tag("retire")
	sw.Int(d.handled)
	sw.Int(d.retired)
	sw.Int(d.sparesUsed)
	sw.Bool(d.exhausted)
	sw.Ints(d.origin)
	sw.Int(len(d.curve))
	for _, p := range d.curve {
		sw.U64(p.DemandWrites)
		sw.Int(p.Retired)
		sw.Int(p.SparesUsed)
	}
	if err := sw.Err(); err != nil {
		return err
	}
	return d.Scheme.(wl.Snapshotter).Snapshot(w)
}

// Restore loads state written by Snapshot, then restores the wrapped
// scheme.
func (d *decorator) Restore(r io.Reader) error {
	sr := snap.NewReader(r)
	sr.Expect("retire")
	d.handled = sr.Int()
	d.retired = sr.Int()
	d.sparesUsed = sr.Int()
	d.exhausted = sr.Bool()
	sr.IntsInto(d.origin)
	n := sr.Int()
	if err := sr.Err(); err != nil {
		return err
	}
	if n < 0 || n > d.sparesUsed {
		return fmt.Errorf("retire: checkpoint has %d curve points for %d spares used", n, d.sparesUsed)
	}
	d.curve = make([]wl.CapacityPoint, n)
	for i := range d.curve {
		d.curve[i] = wl.CapacityPoint{
			DemandWrites: sr.U64(),
			Retired:      sr.Int(),
			SparesUsed:   sr.Int(),
		}
	}
	if err := sr.Err(); err != nil {
		return err
	}
	return d.Scheme.(wl.Snapshotter).Restore(r)
}
