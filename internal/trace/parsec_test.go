package trace

import (
	"math"
	"testing"
)

func TestPARSECMatchesTable2(t *testing.T) {
	bs := PARSEC()
	if len(bs) != 13 {
		t.Fatalf("PARSEC has %d benchmarks, Table 2 lists 13", len(bs))
	}
	// Spot-check the extreme rows of Table 2.
	v, err := BenchmarkByName("vips")
	if err != nil {
		t.Fatal(err)
	}
	if v.WriteBandwidthMBps != 3309 || v.IdealLifetimeYears != 16 || v.NoWLLifetimeYears != 0.9 {
		t.Fatalf("vips row mismatch: %+v", v)
	}
	sc, err := BenchmarkByName("streamcluster")
	if err != nil {
		t.Fatal(err)
	}
	if sc.WriteBandwidthMBps != 12 || sc.IdealLifetimeYears != 4229 {
		t.Fatalf("streamcluster row mismatch: %+v", sc)
	}
	if _, err := BenchmarkByName("doom"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestConcentrationRatios(t *testing.T) {
	for _, b := range PARSEC() {
		r := b.ConcentrationRatio()
		if r <= 0 || r >= 1 {
			t.Errorf("%s: concentration ratio %v outside (0,1)", b.Name, r)
		}
	}
}

func TestSolveZipfExponentMonotonic(t *testing.T) {
	// Lower target (more concentrated) needs a larger exponent.
	n := 4096
	s1 := solveZipfExponent(n, 0.20*float64(n))
	s2 := solveZipfExponent(n, 0.05*float64(n))
	s3 := solveZipfExponent(n, 0.01*float64(n))
	if !(s1 < s2 && s2 < s3) {
		t.Fatalf("exponents not monotonic: %v %v %v", s1, s2, s3)
	}
}

func TestSolveZipfExponentHitsTarget(t *testing.T) {
	n := 2048
	for _, target := range []float64{40.96, 102.4, 614.4} {
		s := solveZipfExponent(n, target)
		if got := harmonic(n, s); math.Abs(got-target)/target > 0.01 {
			t.Fatalf("target=%v: H(n,s)=%v", target, got)
		}
	}
}

func TestSyntheticValidation(t *testing.T) {
	b, _ := BenchmarkByName("vips")
	if _, err := NewSynthetic(b, 1, 1); err == nil {
		t.Error("1-page generator accepted")
	}
	bad := b
	bad.WriteFraction = 0
	if _, err := NewSynthetic(bad, 64, 1); err == nil {
		t.Error("zero write fraction accepted")
	}
	bad = b
	bad.NoWLLifetimeYears = bad.IdealLifetimeYears + 1
	if _, err := NewSynthetic(bad, 64, 1); err == nil {
		t.Error("ratio >= 1 accepted")
	}
}

// TestSyntheticHottestShare: the empirical share of the hottest page matches
// the calibration target 1/(r·N) — the property that makes NOWL die at the
// Table 2 normalized lifetime.
func TestSyntheticHottestShare(t *testing.T) {
	const pages = 1024
	b, _ := BenchmarkByName("canneal") // r = 2.9/169 ≈ 0.0172
	g, err := NewSynthetic(b, pages, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 / (b.ConcentrationRatio() * pages)
	if math.Abs(g.HottestShare()-want)/want > 0.02 {
		t.Fatalf("designed hottest share %v, want %v", g.HottestShare(), want)
	}
	// Empirical check.
	counts := make([]int, pages)
	writes := 0
	const n = 2_000_000
	for i := 0; i < n; i++ {
		addr, w := g.Next()
		if w {
			counts[addr]++
			writes++
		}
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	got := float64(max) / float64(writes)
	if math.Abs(got-want)/want > 0.10 {
		t.Fatalf("empirical hottest share %v, want %v ± 10%%", got, want)
	}
}

func TestSyntheticWriteFraction(t *testing.T) {
	b, _ := BenchmarkByName("ferret")
	g, err := NewSynthetic(b, 256, 5)
	if err != nil {
		t.Fatal(err)
	}
	writes := 0
	const n = 300000
	for i := 0; i < n; i++ {
		if _, w := g.Next(); w {
			writes++
		}
	}
	frac := float64(writes) / n
	if math.Abs(frac-b.WriteFraction) > 0.01 {
		t.Fatalf("write fraction %v, want %v", frac, b.WriteFraction)
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	b, _ := BenchmarkByName("dedup")
	g1, _ := NewSynthetic(b, 128, 9)
	g2, _ := NewSynthetic(b, 128, 9)
	for i := 0; i < 10000; i++ {
		a1, w1 := g1.Next()
		a2, w2 := g2.Next()
		if a1 != a2 || w1 != w2 {
			t.Fatalf("streams diverged at %d", i)
		}
	}
}

func TestSyntheticHotPagesScattered(t *testing.T) {
	b, _ := BenchmarkByName("vips")
	g, err := NewSynthetic(b, 4096, 11)
	if err != nil {
		t.Fatal(err)
	}
	// The top-ranked (hottest) pages must not all sit at low addresses.
	low := 0
	for rank := 0; rank < 32; rank++ {
		if g.perm[rank] < 2048 {
			low++
		}
	}
	if low == 32 || low == 0 {
		t.Fatalf("hot ranks not scattered: %d/32 in lower half", low)
	}
}

func TestGenerateEmitsN(t *testing.T) {
	b, _ := BenchmarkByName("x264")
	g, err := NewSynthetic(b, 64, 13)
	if err != nil {
		t.Fatal(err)
	}
	var recs []Record
	if err := g.Generate(500, func(r Record) error {
		recs = append(recs, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 500 {
		t.Fatalf("Generate emitted %d records, want 500", len(recs))
	}
	for _, r := range recs {
		if r.Addr >= 64 {
			t.Fatalf("record address %d out of range", r.Addr)
		}
	}
}

func BenchmarkSyntheticNext(b *testing.B) {
	bench, _ := BenchmarkByName("canneal")
	g, err := NewSynthetic(bench, 1<<14, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Next()
	}
}
