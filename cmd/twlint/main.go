// Command twlint is the thin CLI over the project's static-analysis
// framework, internal/lint. The analyzers, the driver, and the golden
// fixtures all live there — see the package documentation of
// twl/internal/lint for the full list of contracts and DESIGN.md "Static
// contracts" for their rationale. Usage:
//
//	go run ./cmd/twlint [-json] [-allow twlint.allow] [-allow-lax]
//	    [-budget twlint.budget] [-update-budget] ./...
//
// Exit status 1 when findings remain after allowlist filtering, 2 on driver
// errors. By default a run is strict about its allowlist: entries that
// matched nothing in a loaded package are themselves reported (analyzer
// "allowlist"); -allow-lax disables that for partial runs. -budget enables
// the hotpath allocation-budget phase (escape-analysis diff against the
// committed budget file); -update-budget regenerates the file instead of
// diffing.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"twl/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array (CI mode)")
	allowPath := flag.String("allow", "twlint.allow", "allowlist file; empty disables")
	allowLax := flag.Bool("allow-lax", false, "do not report stale allowlist entries (for partial runs)")
	budgetPath := flag.String("budget", "", "hotpath allocation-budget file; empty skips the budget phase")
	updateBudget := flag.Bool("update-budget", false, "rewrite the -budget file from the observed escape analysis")
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	if *updateBudget && *budgetPath == "" {
		*budgetPath = "twlint.budget"
	}

	var allow *lint.Allowlist
	if *allowPath != "" {
		var err error
		allow, err = lint.ParseAllowlist(*allowPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "twlint: %v\n", err)
			os.Exit(2)
		}
	}

	diags, err := lint.Run(patterns, lint.Options{
		Allow:        allow,
		AllowLax:     *allowLax,
		BudgetPath:   *budgetPath,
		UpdateBudget: *updateBudget,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "twlint: %v\n", err)
		os.Exit(2)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(os.Stderr, "twlint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}
