package wl

import (
	"twl/internal/obs"
	"twl/internal/pcm"
)

// Instrument wraps a scheme so that every request it serves is recorded in
// reg: per-operation counters, a blocked-request counter, and a latency
// histogram, all labeled with the scheme name. Every baseline gets metrics
// for free — no scheme needs its own instrumentation code.
//
// The wrapper preserves the Checker interface: paranoid-mode invariant
// checks see the underlying scheme exactly as before.
func Instrument(s Scheme, reg *obs.Registry) Scheme {
	label := obs.L("scheme", s.Name())
	reg.Help("twl_scheme_requests_total", "logical requests served by the scheme, by op")
	reg.Help("twl_scheme_blocked_total", "requests delayed behind an internal swap phase")
	reg.Help("twl_scheme_request_cycles", "per-request latency in CPU cycles")
	w := &instrumented{
		Scheme:  s,
		timing:  s.Device().Timing(),
		writes:  reg.Counter("twl_scheme_requests_total", label, obs.L("op", "write")),
		reads:   reg.Counter("twl_scheme_requests_total", label, obs.L("op", "read")),
		blocked: reg.Counter("twl_scheme_blocked_total", label),
		latency: reg.Histogram("twl_scheme_request_cycles", obs.DefaultLatencyBuckets(), label),
	}
	if c, ok := s.(Checker); ok {
		return &instrumentedChecker{instrumented: w, checker: c}
	}
	return w
}

// instrumented decorates a Scheme with metric recording.
type instrumented struct {
	Scheme
	timing  pcm.Timing
	writes  *obs.Counter
	reads   *obs.Counter
	blocked *obs.Counter
	latency *obs.Histogram
}

func (w *instrumented) Write(la int, tag uint64) Cost {
	cost := w.Scheme.Write(la, tag)
	w.writes.Inc()
	w.record(cost)
	return cost
}

func (w *instrumented) Read(la int) (uint64, Cost) {
	v, cost := w.Scheme.Read(la)
	w.reads.Inc()
	w.record(cost)
	return v, cost
}

func (w *instrumented) record(cost Cost) {
	if cost.Blocked {
		w.blocked.Inc()
	}
	w.latency.Observe(float64(cost.Cycles(w.timing)))
}

// instrumentedChecker additionally forwards CheckInvariants, so wrapping a
// Checker scheme still yields a Checker (a plain embedded Scheme interface
// would hide it from type assertions).
type instrumentedChecker struct {
	*instrumented
	checker Checker
}

func (w *instrumentedChecker) CheckInvariants() error { return w.checker.CheckInvariants() }
