// Package fixconc is the concurrency analyzer's fixture: unjoined
// goroutines, loop-variable capture in go closures, and accesses to
// //twl:guardedby state outside its critical section, next to the correct
// forms of each, which must stay finding-free.
package fixconc

import (
	"sync"
	"sync/atomic"
)

func sink(int) {}

// counter carries a mutex-guarded field.
type counter struct {
	mu sync.Mutex
	n  int //twl:guardedby mu
}

// badInc touches the guarded field without the lock (finding).
func (c *counter) badInc() { c.n++ }

// goodInc holds the lock across the access (no finding).
func (c *counter) goodInc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// lockedRead is called with c.mu already held (no finding).
//
//twl:locked mu
func (c *counter) lockedRead() int { return c.n }

var (
	tableMu sync.Mutex
	table   = map[string]int{} //twl:guardedby tableMu
)

// badTable writes the package-level guarded map without its lock (finding).
func badTable(k string) { table[k]++ }

// goodTable locks first (no finding).
func goodTable(k string) {
	tableMu.Lock()
	defer tableMu.Unlock()
	table[k]++
}

// hits is confined to its atomic methods.
//
//twl:guardedby atomic
var hits atomic.Int64

// goodHit goes through an atomic method (no finding).
func goodHit() { hits.Add(1) }

// badHit takes the address of the atomic-guarded var, escaping the
// discipline (finding).
func badHit() *atomic.Int64 { return &hits }

// leak spawns a goroutine with no join at all (finding).
func leak() {
	go func() { sink(1) }()
}

// capture spawns joined goroutines that capture the loop variable instead
// of receiving it as an argument (finding, rule 2 only).
func capture(work []int) {
	var wg sync.WaitGroup
	for _, v := range work {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sink(v)
		}()
	}
	wg.Wait()
}

// joined passes the work item explicitly and joins through the WaitGroup
// (no finding).
func joined(work []int) []int {
	results := make([]int, len(work))
	var wg sync.WaitGroup
	for i, v := range work {
		wg.Add(1)
		go func(i, v int) {
			defer wg.Done()
			results[i] = v * v
		}(i, v)
	}
	wg.Wait()
	return results
}

// doneChan joins its producer through a channel receive (no finding).
func doneChan() int {
	ch := make(chan int)
	go func() { ch <- 42 }()
	return <-ch
}

func helper() {}

// leakNamed spawns a named function with no join handshake in its arguments
// (finding).
func leakNamed() { go helper() }

func worker(wg *sync.WaitGroup) { defer wg.Done() }

// namedJoined hands the named function a WaitGroup to Done (no finding).
func namedJoined() {
	var wg sync.WaitGroup
	wg.Add(1)
	go worker(&wg)
	wg.Wait()
}
