// Package hwcost models the design overhead of TWL as evaluated in
// Section 5.4: the per-page metadata storage (write counter, endurance,
// remapping and strong-weak pair table entries) and the controller logic
// gates (Feistel RNG, divider, comparators).
//
// The paper's synthesis numbers are used as the structural ground truth for
// the logic model (DESIGN.md, substitution 4); the storage model is derived
// from first principles and reproduces the paper's 80 bits/4KB = 2.5e-3
// figure exactly.
package hwcost

import (
	"errors"
	"math"
)

// StorageConfig describes the system the tables must cover.
type StorageConfig struct {
	Pages    int // pages under wear leveling
	PageSize int // bytes per page
	// EnduranceBits is the ET entry width. The paper reserves 27 bits,
	// enough to count 10^8 ≈ 2^26.6 writes.
	EnduranceBits int
	// CounterBits is the WCT entry width (paper: 7, intervals up to 128).
	CounterBits int
}

// DefaultStorageConfig returns the paper's 32 GB / 4 KB configuration.
func DefaultStorageConfig() StorageConfig {
	return StorageConfig{
		Pages:         32 << 30 / 4096,
		PageSize:      4096,
		EnduranceBits: 27,
		CounterBits:   7,
	}
}

// StorageCost is the per-page table budget.
type StorageCost struct {
	WCTBits  int // write counter table
	ETBits   int // endurance table
	RTBits   int // remapping table
	SWPTBits int // strong-weak pair table
}

// AddressBits returns the bits needed to name one of n pages.
func AddressBits(n int) int {
	if n <= 1 {
		return 1
	}
	return int(math.Ceil(math.Log2(float64(n))))
}

// Storage computes the per-page metadata cost for cfg.
func Storage(cfg StorageConfig) (StorageCost, error) {
	if cfg.Pages <= 0 || cfg.PageSize <= 0 {
		return StorageCost{}, errors.New("hwcost: Pages and PageSize must be positive")
	}
	if cfg.EnduranceBits <= 0 || cfg.CounterBits <= 0 {
		return StorageCost{}, errors.New("hwcost: bit widths must be positive")
	}
	addr := AddressBits(cfg.Pages)
	return StorageCost{
		WCTBits:  cfg.CounterBits,
		ETBits:   cfg.EnduranceBits,
		RTBits:   addr,
		SWPTBits: addr,
	}, nil
}

// TotalBits returns the per-page total.
func (s StorageCost) TotalBits() int {
	return s.WCTBits + s.ETBits + s.RTBits + s.SWPTBits
}

// Ratio returns the storage overhead as table bits per page-data bits.
func (s StorageCost) Ratio(pageSize int) float64 {
	return float64(s.TotalBits()) / float64(pageSize*8)
}

// Logic gate counts (Section 5.4): the paper synthesizes TWL's control at
// 32 nm with Synopsys and reports <128 gates for the 8-bit Feistel RNG
// (following Start-Gap's estimate) and 718 gates for the divider and
// comparators, 840 total (numbers include control glue, hence 840 rather
// than a strict sum).
const (
	// FeistelRNGGates is the 8-bit Feistel network generator budget.
	FeistelRNGGates = 128
	// ArithmeticGates covers the endurance-ratio divider and comparators.
	ArithmeticGates = 718
	// TotalGates is the paper's reported total for the TWL engine (it
	// rounds the RNG budget down to the synthesized size).
	TotalGates = 840
)

// LogicCost summarizes the gate budget.
type LogicCost struct {
	RNGGates        int
	ArithmeticGates int
	TotalGates      int
}

// Logic returns the Section 5.4 gate model.
func Logic() LogicCost {
	return LogicCost{
		RNGGates:        FeistelRNGGates,
		ArithmeticGates: ArithmeticGates,
		TotalGates:      TotalGates,
	}
}
