package lint

import (
	"bufio"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
)

// Allowlist holds the sanctioned exceptions read from the allowlist file.
// Each entry scopes one analyzer to one package (every finding suppressed)
// or to one named declaration inside it.
//
// The allowlist is a two-way contract: entries grant exceptions, and the
// driver tracks which entries actually matched a finding. An entry that
// matches nothing is itself reported as a "allowlist" diagnostic (strict
// mode, the default) — dead exceptions are holes in a static guarantee that
// nobody is using, and they accumulate silently otherwise. The -allow-lax
// flag disables staleness reporting for partial runs.
type Allowlist struct {
	path    string
	entries map[string]int // entry key -> 1-based line in the file

	mu   sync.Mutex // guards used; Allows is called from concurrent package analyses
	used map[string]bool
}

// ParseAllowlist reads an allowlist file: one entry per line, formatted
//
//	<analyzer> <package-path> [<decl-name>]
//
// with '#' comments and blank lines ignored. A missing file is an error —
// the allowlist is an explicit contract, not an optional hint.
func ParseAllowlist(path string) (*Allowlist, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer func() { _ = f.Close() }() // read side: Close cannot lose data
	a := &Allowlist{path: path, entries: map[string]int{}, used: map[string]bool{}}
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(text, '#'); i >= 0 {
			text = strings.TrimSpace(text[:i])
		}
		if text == "" {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 || len(fields) > 3 {
			return nil, fmt.Errorf("%s:%d: want \"analyzer pkgpath [decl]\", got %q", path, line, text)
		}
		a.entries[strings.Join(fields, " ")] = line
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return a, nil
}

// Allows reports whether the analyzer is sanctioned for the whole package or
// for the specific declaration (function or type name) the finding sits in,
// and records the matched entry as used.
func (a *Allowlist) Allows(analyzer, pkgPath, decl string) bool {
	if a == nil {
		return false
	}
	pkgKey := analyzer + " " + pkgPath
	declKey := ""
	if decl != "" {
		declKey = pkgKey + " " + decl
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, ok := a.entries[pkgKey]; ok {
		a.used[pkgKey] = true
		return true
	}
	if declKey != "" {
		if _, ok := a.entries[declKey]; ok {
			a.used[declKey] = true
			return true
		}
	}
	return false
}

// Unused returns one diagnostic per allowlist entry that never matched a
// finding during the run, restricted to entries whose package was actually
// loaded — a partial run (explicit patterns, fixture tests) cannot judge
// entries for packages it never analyzed.
func (a *Allowlist) Unused(loaded map[string]bool) []Diagnostic {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	keys := make([]string, 0, len(a.entries))
	for k := range a.entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var diags []Diagnostic
	for _, k := range keys {
		if a.used[k] {
			continue
		}
		fields := strings.Fields(k)
		if len(fields) < 2 || !loaded[fields[1]] {
			continue
		}
		diags = append(diags, Diagnostic{
			Analyzer: "allowlist",
			Package:  fields[1],
			Pos:      fmt.Sprintf("%s:%d:1", relPath(a.path), a.entries[k]),
			Message:  fmt.Sprintf("stale allowlist entry %q matches no finding; delete it or rerun with -allow-lax for partial runs", k),
		})
	}
	return diags
}
