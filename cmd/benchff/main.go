// Command benchff measures the run-length fast-forward engine: full
// lifetime runs (to first page failure) at SmallSystem scale, per scheme ×
// attack, once through the fast-forward path and once pinned to the
// per-write path. Runs are interleaved and each configuration reports its
// best-of-N wall clock, which suppresses scheduler noise; the two paths are
// verified to produce identical results before a ratio is reported.
//
// The grid enumerates every registered scheme (twl.SchemeNames), so a new
// scheme lands in the benchmark without touching this tool, and the tool
// fails if a scheme implementing the fast-path interfaces is excluded from
// the grid — the benchmark trajectory must not silently lose coverage.
//
// The grid covers the repeat and scan attacks plus the paper's inconsistent
// attack, whose feedback-driven stream is bulk-capable between detected-swap
// events (the random attack has no run structure to absorb, so it stays off
// the grid; fast_path_coverage still reports it).
//
// The report also audits memory: for every scheme, the simulated
// controller's bytes per page (scheme metadata tables plus device state
// arrays) on wide and on packed storage — the packed-table layouts must
// prove their win in the committed trajectory, and benchcmp gates against
// the footprint regressing.
//
// The output JSON (BENCH_PR9.json in the repo root) extends the repo's
// benchmark trajectory (BENCH_PR2.json holds the deterministic-scheme
// baseline, BENCH_PR4.json the first event-horizon generation,
// BENCH_PR7.json the closed fast-path gap):
//
//	go run ./cmd/benchff -out BENCH_PR9.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"strings"
	"time"

	"twl"
	"twl/internal/clock"
)

// runWriter / sweepWriter mirror the internal fast-forward interfaces
// structurally (twl.Cost aliases the internal cost type), so the tool can
// report which schemes actually take the fast path.
type runWriter interface {
	WriteRun(la int, tag uint64, n int) (twl.Cost, int)
}

type sweepWriter interface {
	WriteSweep(la int, tag uint64, n int) (twl.Cost, int)
}

type result struct {
	Scheme       string  `json:"scheme"`
	Attack       string  `json:"attack"`
	FastPath     bool    `json:"fast_path"`
	DemandWrites uint64  `json:"demand_writes"`
	PerWriteNs   float64 `json:"perwrite_ns_per_write"`
	FastNs       float64 `json:"fast_ns_per_write"`
	Speedup      float64 `json:"speedup"`
}

// coverage reports which fast-path interfaces a scheme implements and which
// of the four attacks its lifetime runs can absorb through the bulk loop:
// repeat and inconsistent ride the RunWriter interface (the inconsistent
// stream emits deterministic stretches between feedback events), scan rides
// SweepWriter, and random has no run structure to absorb.
type coverage struct {
	Run     bool            `json:"run"`
	Sweep   bool            `json:"sweep"`
	Attacks map[string]bool `json:"attacks"`
}

// footprint is the per-scheme memory audit: total simulated-controller
// bytes per page (scheme metadata tables where the scheme itemizes them,
// plus the device's per-page state arrays), on wide storage and on packed
// storage. WideOverPacked is the headline packed-table win; schemes that do
// not itemize their tables (SchemeTables false) still show the device-side
// saving.
type footprint struct {
	SchemeTables       bool    `json:"scheme_tables_reported"`
	WideBytesPerPage   float64 `json:"wide_bytes_per_page"`
	PackedBytesPerPage float64 `json:"packed_bytes_per_page"`
	WideOverPacked     float64 `json:"wide_over_packed"`
}

type report struct {
	Bench   string `json:"bench"`
	Command string `json:"command"`
	System  struct {
		Pages         int     `json:"pages"`
		MeanEndurance float64 `json:"mean_endurance"`
		SigmaFraction float64 `json:"sigma_fraction"`
		Seed          uint64  `json:"seed"`
	} `json:"system"`
	Reps      int                  `json:"reps"`
	Coverage  map[string]coverage  `json:"fast_path_coverage"`
	Footprint map[string]footprint `json:"footprint_bytes_per_page"`
	Results   []result             `json:"results"`
	Geomean   map[string]float64   `json:"geomean_speedup_fast_path_schemes"`
}

func main() {
	out := flag.String("out", "BENCH_PR9.json", "output JSON path (empty: stdout only)")
	reps := flag.Int("reps", 10, "timed repetitions per configuration (best-of)")
	seed := flag.Uint64("seed", 1, "system and scheme seed")
	schemes := flag.String("schemes", "", "comma-separated scheme names (default: every registered scheme)")
	flag.Parse()

	names := twl.SchemeNames()
	if *schemes != "" {
		names = nil
		for _, name := range strings.Split(*schemes, ",") {
			names = append(names, strings.TrimSpace(name))
		}
	}

	sys := twl.SmallSystem(*seed)
	var rep report
	rep.Bench = "run-length fast-forward vs per-write lifetime simulation"
	rep.Command = "go run ./cmd/benchff"
	rep.System.Pages = sys.Pages
	rep.System.MeanEndurance = sys.MeanEndurance
	rep.System.SigmaFraction = sys.SigmaFraction
	rep.System.Seed = sys.Seed
	rep.Reps = *reps
	rep.Coverage = map[string]coverage{}
	rep.Footprint = map[string]footprint{}
	rep.Geomean = map[string]float64{}

	benched := map[string]bool{}
	for _, name := range names {
		cov, err := probeCoverage(sys, name, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchff: %s: %v\n", name, err)
			os.Exit(1)
		}
		rep.Coverage[name] = cov
		fp, err := probeFootprint(sys, name, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchff: %s: %v\n", name, err)
			os.Exit(1)
		}
		rep.Footprint[name] = fp
		fmt.Printf("%-10s footprint %7.1f B/page wide, %7.1f B/page packed (%.2fx)\n",
			name, fp.WideBytesPerPage, fp.PackedBytesPerPage, fp.WideOverPacked)
		benched[name] = true
	}

	modes := []struct {
		name string
		mode twl.AttackMode
	}{
		{"repeat", twl.AttackRepeat},
		{"scan", twl.AttackScan},
		{"inconsistent", twl.AttackInconsistent},
	}

	for _, m := range modes {
		logSum, logN := 0.0, 0
		for _, name := range names {
			r, err := measure(sys, name, m.name, m.mode, *reps, *seed)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchff: %s/%s: %v\n", m.name, name, err)
				os.Exit(1)
			}
			rep.Results = append(rep.Results, r)
			fmt.Printf("%-8s %-10s fast %8.2f ns/write   perwrite %8.2f ns/write   speedup %5.2fx%s\n",
				m.name, name, r.FastNs, r.PerWriteNs, r.Speedup,
				map[bool]string{true: "", false: "   (per-write fallback)"}[r.FastPath])
			if r.FastPath {
				logSum += math.Log(r.Speedup)
				logN++
			}
		}
		if logN > 0 {
			g := math.Exp(logSum / float64(logN))
			rep.Geomean[m.name] = math.Round(g*100) / 100
			fmt.Printf("%-8s geomean over fast-path schemes: %.2fx\n", m.name, g)
		}
	}

	// The benchmark grid must cover every scheme with a fast path: a
	// RunWriter scheme missing from the grid means the trajectory silently
	// stops tracking a path this repo optimized.
	missing := false
	for _, name := range twl.SchemeNames() {
		if benched[name] {
			continue
		}
		cov, err := probeCoverage(sys, name, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchff: %s: %v\n", name, err)
			os.Exit(1)
		}
		if cov.Run || cov.Sweep {
			fmt.Fprintf(os.Stderr, "benchff: scheme %s implements the fast path but is not in the benchmark grid\n", name)
			missing = true
		}
	}
	if missing {
		os.Exit(1)
	}

	if *out != "" {
		buf, err := json.MarshalIndent(&rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchff: %v\n", err)
			os.Exit(1)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*out, buf, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchff: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *out)
	}
}

// probeCoverage instantiates a scheme once to see which fast-path
// interfaces it implements.
func probeCoverage(sys twl.SystemConfig, scheme string, seed uint64) (coverage, error) {
	dev, err := sys.NewDevice()
	if err != nil {
		return coverage{}, err
	}
	s, err := twl.NewScheme(scheme, dev, seed)
	if err != nil {
		return coverage{}, err
	}
	var cov coverage
	_, cov.Run = s.(runWriter)
	_, cov.Sweep = s.(sweepWriter)
	cov.Attacks = map[string]bool{
		"repeat":       cov.Run,
		"random":       false,
		"scan":         cov.Sweep,
		"inconsistent": cov.Run,
	}
	return cov, nil
}

// stackBytes builds the scheme over a fresh device and sums its reported
// table bytes (0 for schemes that do not itemize) with the device's per-page
// state arrays.
func stackBytes(sys twl.SystemConfig, scheme string, seed uint64) (int64, bool, error) {
	dev, err := sys.NewDevice()
	if err != nil {
		return 0, false, err
	}
	s, err := twl.NewScheme(scheme, dev, seed)
	if err != nil {
		return 0, false, err
	}
	tables, reported := twl.TableBytesOf(s)
	return tables + dev.Footprint().Total(), reported, nil
}

// probeFootprint audits one scheme's bytes-per-page on wide and packed
// storage.
func probeFootprint(sys twl.SystemConfig, scheme string, seed uint64) (footprint, error) {
	var fp footprint
	wide, reported, err := stackBytes(sys, scheme, seed)
	if err != nil {
		return fp, err
	}
	psys := sys
	psys.Packed = true
	packed, _, err := stackBytes(psys, scheme, seed)
	if err != nil {
		return fp, err
	}
	pages := float64(sys.Pages)
	fp.SchemeTables = reported
	fp.WideBytesPerPage = math.Round(float64(wide)/pages*100) / 100
	fp.PackedBytesPerPage = math.Round(float64(packed)/pages*100) / 100
	fp.WideOverPacked = math.Round(float64(wide)/float64(packed)*100) / 100
	return fp, nil
}

// measure times full lifetime runs for one scheme × attack, interleaving the
// fast and per-write paths and keeping the best wall clock of each.
func measure(sys twl.SystemConfig, scheme, modeName string, mode twl.AttackMode, reps int, seed uint64) (result, error) {
	var r result
	r.Scheme = scheme
	r.Attack = modeName

	bestFast := time.Duration(math.MaxInt64)
	bestSlow := time.Duration(math.MaxInt64)
	var fastRes, slowRes twl.LifetimeResult
	for i := 0; i < reps; i++ {
		for _, disable := range []bool{false, true} {
			res, elapsed, fastPath, err := runOnce(sys, scheme, mode, seed, disable)
			if err != nil {
				return r, err
			}
			if disable {
				slowRes = res
				if elapsed < bestSlow {
					bestSlow = elapsed
				}
			} else {
				fastRes = res
				r.FastPath = fastPath
				if elapsed < bestFast {
					bestFast = elapsed
				}
			}
		}
	}
	if fastRes != slowRes {
		return r, fmt.Errorf("paths diverge: fast %+v, per-write %+v", fastRes, slowRes)
	}
	if fastRes.DemandWrites == 0 {
		return r, fmt.Errorf("run served no writes")
	}
	r.DemandWrites = fastRes.DemandWrites
	w := float64(fastRes.DemandWrites)
	r.FastNs = math.Round(float64(bestFast.Nanoseconds())/w*100) / 100
	r.PerWriteNs = math.Round(float64(bestSlow.Nanoseconds())/w*100) / 100
	r.Speedup = math.Round(r.PerWriteNs/r.FastNs*100) / 100
	return r, nil
}

// runOnce builds a fresh system and times one lifetime run.
func runOnce(sys twl.SystemConfig, scheme string, mode twl.AttackMode, seed uint64, disableFF bool) (twl.LifetimeResult, time.Duration, bool, error) {
	dev, err := sys.NewDevice()
	if err != nil {
		return twl.LifetimeResult{}, 0, false, err
	}
	s, err := twl.NewScheme(scheme, dev, seed)
	if err != nil {
		return twl.LifetimeResult{}, 0, false, err
	}
	pages := dev.Pages()
	if lp, ok := s.(interface{ LogicalPages() int }); ok {
		pages = lp.LogicalPages()
	}
	src, err := twl.NewAttack(mode, pages, seed)
	if err != nil {
		return twl.LifetimeResult{}, 0, false, err
	}
	fastPath := false
	if mode == twl.AttackScan {
		_, fastPath = s.(sweepWriter)
	} else {
		_, fastPath = s.(runWriter)
	}
	start := clock.Now()
	res, err := twl.RunLifetimeWith(s, src, twl.LifetimeConfig{DisableFastForward: disableFF})
	elapsed := clock.Since(start)
	return res, elapsed, fastPath, err
}
