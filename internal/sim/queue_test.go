package sim

import (
	"math"
	"testing"
)

func TestQueueNoContention(t *testing.T) {
	var q Queue
	// Arrivals far apart: no waiting.
	for i := int64(0); i < 10; i++ {
		start, done, err := q.Serve(i*1000, 100)
		if err != nil {
			t.Fatal(err)
		}
		if start != i*1000 || done != i*1000+100 {
			t.Fatalf("request %d: start %d done %d", i, start, done)
		}
	}
	s := q.Stats()
	if s.WaitedCycles != 0 {
		t.Fatalf("waited %d cycles without contention", s.WaitedCycles)
	}
	// busy = 10×100 = 1000 over a span of 9100 cycles.
	if math.Abs(s.Utilization-1000.0/9100.0) > 1e-9 {
		t.Fatalf("utilization %v", s.Utilization)
	}
}

func TestQueueBackToBack(t *testing.T) {
	var q Queue
	// All arrive at cycle 0: each waits for its predecessors.
	var totalWait int64
	for i := 0; i < 5; i++ {
		start, _, err := q.Serve(0, 10)
		if err != nil {
			t.Fatal(err)
		}
		if start != int64(i*10) {
			t.Fatalf("request %d started at %d", i, start)
		}
		totalWait += start
	}
	s := q.Stats()
	if s.WaitedCycles != totalWait || s.WaitedCycles != 0+10+20+30+40 {
		t.Fatalf("waited %d", s.WaitedCycles)
	}
	if s.Utilization != 1.0 {
		t.Fatalf("saturated queue utilization %v", s.Utilization)
	}
}

func TestQueueValidation(t *testing.T) {
	var q Queue
	if _, _, err := q.Serve(-1, 10); err == nil {
		t.Fatal("negative arrival accepted")
	}
	if _, _, err := q.Serve(0, -10); err == nil {
		t.Fatal("negative service accepted")
	}
}

func TestQueuedPerf(t *testing.T) {
	// Service 100 every 200 cycles: utilization 0.5, no waiting.
	services := make([]int64, 100)
	for i := range services {
		services[i] = 100
	}
	s, err := QueuedPerf(services, 200)
	if err != nil {
		t.Fatal(err)
	}
	if s.MeanWait != 0 {
		t.Fatalf("mean wait %v at 50%% load with deterministic arrivals", s.MeanWait)
	}
	if s.Utilization < 0.45 || s.Utilization > 0.55 {
		t.Fatalf("utilization %v, want ~0.5", s.Utilization)
	}
	// Service 300 every 200: overloaded, waits grow linearly.
	for i := range services {
		services[i] = 300
	}
	s, err = QueuedPerf(services, 200)
	if err != nil {
		t.Fatal(err)
	}
	if s.MeanWait < 4000 {
		t.Fatalf("overloaded queue mean wait %v; should grow ~n/2 × backlog", s.MeanWait)
	}
	if s.Utilization < 0.99 {
		t.Fatalf("overloaded utilization %v", s.Utilization)
	}
	if _, err := QueuedPerf(services, 0); err == nil {
		t.Fatal("zero interarrival accepted")
	}
}
