package pcm

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

// testPair builds a wide and a packed device over the same geometry and
// endurance map, for twin-operation parity tests.
func testPair(t *testing.T, pages, spares int, endurance func(i int) uint64) (*Device, *Device) {
	t.Helper()
	geom := Geometry{Pages: pages, PageSize: 4096, LineSize: 128, Ranks: 1, Banks: 1, SparePages: spares}
	end := make([]uint64, geom.TotalPages())
	for i := range end {
		end[i] = endurance(i)
	}
	wide, err := NewDevice(geom, DefaultTiming(), end)
	if err != nil {
		t.Fatal(err)
	}
	packed, err := NewPackedDevice(geom, DefaultTiming(), end)
	if err != nil {
		t.Fatal(err)
	}
	if !packed.Packed() || wide.Packed() {
		t.Fatalf("Packed() = %v/%v, want false/true", wide.Packed(), packed.Packed())
	}
	return wide, packed
}

// compareDevices checks every observable surface of the two devices: wear,
// payloads, counters, failure log, summaries, histograms and snapshot bytes.
func compareDevices(t *testing.T, wide, packed *Device) {
	t.Helper()
	if wide.TotalWrites() != packed.TotalWrites() || wide.TotalReads() != packed.TotalReads() {
		t.Fatalf("writes/reads diverge: wide %d/%d, packed %d/%d",
			wide.TotalWrites(), wide.TotalReads(), packed.TotalWrites(), packed.TotalReads())
	}
	if wide.FailedPages() != packed.FailedPages() {
		t.Fatalf("failed pages diverge: wide %d, packed %d", wide.FailedPages(), packed.FailedPages())
	}
	for i := 0; i < wide.FailedPages(); i++ {
		if wide.FailureAt(i) != packed.FailureAt(i) {
			t.Fatalf("failure %d diverges: wide page %d, packed page %d", i, wide.FailureAt(i), packed.FailureAt(i))
		}
	}
	for pp := 0; pp < wide.TotalPages(); pp++ {
		if wide.Wear(pp) != packed.Wear(pp) {
			t.Fatalf("wear[%d] diverges: wide %d, packed %d", pp, wide.Wear(pp), packed.Wear(pp))
		}
		if wide.Peek(pp) != packed.Peek(pp) {
			t.Fatalf("payload[%d] diverges: wide %d, packed %d", pp, wide.Peek(pp), packed.Peek(pp))
		}
		if wide.Remaining(pp) != packed.Remaining(pp) {
			t.Fatalf("remaining[%d] diverges: wide %d, packed %d", pp, wide.Remaining(pp), packed.Remaining(pp))
		}
	}
	ws, ps := wide.Summary(), packed.Summary()
	if ws != ps {
		t.Fatalf("summaries diverge:\nwide   %+v\npacked %+v", ws, ps)
	}
	wh, ph := wide.WearHistogram(16), packed.WearHistogram(16)
	for b := range wh {
		if wh[b] != ph[b] {
			t.Fatalf("histogram bucket %d diverges: wide %d, packed %d", b, wh[b], ph[b])
		}
	}
	var wb, pb bytes.Buffer
	if err := wide.Snapshot(&wb); err != nil {
		t.Fatal(err)
	}
	if err := packed.Snapshot(&pb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wb.Bytes(), pb.Bytes()) {
		t.Fatalf("snapshot bytes diverge: wide %d bytes, packed %d bytes", wb.Len(), pb.Len())
	}
}

// TestPackedParityRandomOps drives the same randomized operation sequence
// through a wide and a packed device and requires every observable to stay
// identical, including mid-run failures, retirement remaps and the
// min-remaining watermark.
func TestPackedParityRandomOps(t *testing.T) {
	const pages, spares = 64, 4
	rng := rand.New(rand.NewSource(11))
	wide, packed := testPair(t, pages, spares, func(i int) uint64 { return 40 + uint64((i*13)%50) })

	spareNext := pages
	tag := uint64(1)
	for step := 0; step < 4000; step++ {
		op := rng.Intn(10)
		pp := rng.Intn(pages)
		switch {
		case op < 4:
			w := wide.Write(pp, tag)
			p := packed.Write(pp, tag)
			if w != p {
				t.Fatalf("step %d: Write(%d) failure flag diverges: wide %v, packed %v", step, pp, w, p)
			}
			tag++
		case op < 6:
			n := 1 + rng.Intn(30)
			w := wide.WriteN(pp, tag, n)
			p := packed.WriteN(pp, tag, n)
			if w != p {
				t.Fatalf("step %d: WriteN(%d,%d) diverges: wide %d, packed %d", step, pp, n, w, p)
			}
			tag += uint64(n)
		case op < 7:
			n := 1 + rng.Intn(10)
			if w, p := wide.RewriteN(pp, n), packed.RewriteN(pp, n); w != p {
				t.Fatalf("step %d: RewriteN diverges: wide %d, packed %d", step, w, p)
			}
		case op < 8:
			n := 1 + rng.Intn(pages-pp)
			w := wide.WriteRange(pp, tag, n)
			p := packed.WriteRange(pp, tag, n)
			if w != p {
				t.Fatalf("step %d: WriteRange diverges: wide %d, packed %d", step, w, p)
			}
			tag += uint64(n)
		case op < 9:
			pps := make([]int, 1+rng.Intn(8))
			seen := map[int]bool{}
			for i := range pps {
				q := rng.Intn(pages)
				for seen[q] {
					q = (q + 1) % pages
				}
				seen[q] = true
				pps[i] = q
			}
			w := wide.WriteSeq(pps, tag)
			p := packed.WriteSeq(append([]int(nil), pps...), tag)
			if w != p {
				t.Fatalf("step %d: WriteSeq diverges: wide %d, packed %d", step, w, p)
			}
			tag += uint64(len(pps))
		default:
			n := uint64(rng.Intn(20))
			if w, p := wide.MinRemainingAtLeast(n), packed.MinRemainingAtLeast(n); w != p {
				t.Fatalf("step %d: MinRemainingAtLeast(%d) diverges: wide %v, packed %v", step, n, w, p)
			}
			if w, p := wide.Read(pp), packed.Read(pp); w != p {
				t.Fatalf("step %d: Read diverges: wide %d, packed %d", step, w, p)
			}
		}
		// Retire failed visible pages onto spares in both devices, so the
		// run exercises the redirect-following twins too.
		wp, wf := wide.Failed()
		pp2, pf := packed.Failed()
		if wf != pf || wp != pp2 {
			t.Fatalf("step %d: Failed diverges: wide %d/%v, packed %d/%v", step, wp, wf, pp2, pf)
		}
		if wf && wp < pages && spareNext < wide.TotalPages() {
			if err := wide.Remap(wp, spareNext); err != nil {
				t.Fatal(err)
			}
			if err := packed.Remap(pp2, spareNext); err != nil {
				t.Fatal(err)
			}
			spareNext++
			wide.AckFailures(wide.FailedPages())
			packed.AckFailures(packed.FailedPages())
		} else if wf {
			break
		}
	}
	compareDevices(t, wide, packed)
}

// TestPackedSnapshotInterop proves checkpoints cross storage modes: a
// snapshot taken on a packed device restores into a wide one (and back)
// with identical state.
func TestPackedSnapshotInterop(t *testing.T) {
	wide, packed := testPair(t, 32, 0, func(i int) uint64 { return 20 + uint64(i) })
	for i := 0; i < 300; i++ {
		wide.Write(i%32, uint64(i))
		packed.Write(i%32, uint64(i))
	}
	var buf bytes.Buffer
	if err := packed.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	wide2, packed2 := testPair(t, 32, 0, func(i int) uint64 { return 20 + uint64(i) })
	if err := wide2.Restore(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("wide restore of packed snapshot: %v", err)
	}
	if err := packed2.Restore(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("packed restore of packed snapshot: %v", err)
	}
	compareDevices(t, wide2, packed2)
	compareDevices(t, wide, packed2)
}

// TestPackedEnduranceLimit pins the constructor's width gate.
func TestPackedEnduranceLimit(t *testing.T) {
	geom := Geometry{Pages: 2, PageSize: 4096, LineSize: 128, Ranks: 1, Banks: 1}
	if _, err := NewPackedDevice(geom, DefaultTiming(), []uint64{1, MaxPackedEndurance + 1}); err == nil {
		t.Fatal("NewPackedDevice accepted endurance above the packed limit")
	}
	if _, err := NewPackedDevice(geom, DefaultTiming(), []uint64{1, MaxPackedEndurance}); err != nil {
		t.Fatalf("NewPackedDevice rejected endurance at the packed limit: %v", err)
	}
	if _, err := NewPackedDevice(geom, DefaultTiming(), []uint64{0, 1}); err == nil {
		t.Fatal("NewPackedDevice accepted zero endurance")
	}
}

// TestEnduranceMapCopies is the mutation-safety regression test: the map a
// caller receives must be a copy, so sorting or zeroing it cannot corrupt
// the device's ground truth (this was an aliasing bug — schemes sort their
// "copy" of the endurance map during construction).
func TestEnduranceMapCopies(t *testing.T) {
	wide, packed := testPair(t, 8, 2, func(i int) uint64 { return 100 + uint64(i) })
	for _, d := range []*Device{wide, packed} {
		m := d.EnduranceMap()
		if len(m) != 8 {
			t.Fatalf("EnduranceMap covers %d pages, want visible 8", len(m))
		}
		for i := range m {
			m[i] = 1
		}
		if d.Endurance(3) != 103 {
			t.Fatalf("mutating the returned map changed device endurance to %d", d.Endurance(3))
		}
		if got := d.EnduranceMap()[3]; got != 103 {
			t.Fatalf("second EnduranceMap call sees %d, want 103", got)
		}
	}
}

// TestFootprintAccounting pins the bytes-per-page layout audit for both
// storage modes, including the ≥2× packed-vs-wide device-state ratio and
// redirect materialization.
func TestFootprintAccounting(t *testing.T) {
	wide, packed := testPair(t, 100, 4, func(i int) uint64 { return 1000 }) // 104 physical pages
	wf, pf := wide.Footprint(), packed.Footprint()
	if wf.Total() != 104*32 {
		t.Fatalf("wide footprint %d bytes, want %d (32 B/page)", wf.Total(), 104*32)
	}
	if pf.Total() != 104*16 {
		t.Fatalf("packed footprint %d bytes, want %d (16 B/page)", pf.Total(), 104*16)
	}
	if ratio := wf.PerPage(104) / pf.PerPage(104); ratio < 2 {
		t.Fatalf("packed device saves only %.2fx, want >= 2x", ratio)
	}
	if pf.InvEndurance != 0 {
		t.Fatalf("packed device reports %d invEndurance bytes, want 0", pf.InvEndurance)
	}
	// Retirement materializes the redirect table in both modes.
	for i := 0; i < 1000; i++ {
		wide.Write(7, 1)
	}
	if err := wide.Remap(7, 100); err != nil {
		t.Fatal(err)
	}
	if got := wide.Footprint().Redirect; got != 104*8+104 {
		t.Fatalf("redirect footprint %d bytes, want %d", got, 104*8+104)
	}
}

// TestWriteNOverflowClamp pins the overflow-safe failure clamp at full-scale
// wear values: with wear beyond 2^63, the old w+applied comparison wrapped
// and silently skipped the endurance boundary.
func TestWriteNOverflowClamp(t *testing.T) {
	geom := Geometry{Pages: 2, PageSize: 4096, LineSize: 128, Ranks: 1, Banks: 1}
	end := []uint64{math.MaxUint64, math.MaxUint64}
	d, err := NewDevice(geom, DefaultTiming(), end)
	if err != nil {
		t.Fatal(err)
	}
	// Drive wear to MaxUint64 - 3 directly through the bulk path: each call
	// applies at most 2^62, so four calls land just short of the boundary.
	step := int(uint64(1) << 62)
	for i := 0; i < 3; i++ {
		if got := d.WriteN(0, 1, step); got != step {
			t.Fatalf("WriteN ramp applied %d, want %d", got, step)
		}
	}
	rem := math.MaxUint64 - 3 - 3*(uint64(1)<<62)
	if got := d.WriteN(0, 1, int(rem)); uint64(got) != rem {
		t.Fatalf("WriteN ramp applied %d, want %d", got, rem)
	}
	if w := d.Wear(0); w != math.MaxUint64-3 {
		t.Fatalf("wear = %d, want MaxUint64-3", w)
	}
	// w + n wraps uint64 here; the clamp must still fire at exactly the
	// remaining 3 writes and log the failure.
	if got := d.WriteN(0, 42, 1<<20); got != 3 {
		t.Fatalf("WriteN at the boundary applied %d, want 3", got)
	}
	if w := d.Wear(0); w != math.MaxUint64 {
		t.Fatalf("wear = %d, want MaxUint64", w)
	}
	if page, failed := d.Failed(); !failed || page != 0 {
		t.Fatalf("Failed = %d/%v, want 0/true", page, failed)
	}
	// RewriteN has the same clamp; ramp page 1 the same way.
	for i := 0; i < 3; i++ {
		d.RewriteN(1, step)
	}
	d.RewriteN(1, int(rem))
	if got := d.RewriteN(1, 1<<20); got != 3 {
		t.Fatalf("RewriteN at the boundary applied %d, want 3", got)
	}
	if d.FailedPages() != 2 {
		t.Fatalf("failed pages = %d, want 2", d.FailedPages())
	}
}

// TestWatermarkNearLimits exercises MinRemainingAtLeast with full-scale and
// near-MaxUint64 endurance values: the watermark arithmetic must not wrap.
func TestWatermarkNearLimits(t *testing.T) {
	geom := Geometry{Pages: 4, PageSize: 4096, LineSize: 128, Ranks: 1, Banks: 1}
	end := []uint64{math.MaxUint64, math.MaxUint64 - 1, math.MaxUint64, math.MaxUint64}
	d, err := NewDevice(geom, DefaultTiming(), end)
	if err != nil {
		t.Fatal(err)
	}
	if !d.MinRemainingAtLeast(math.MaxUint64 - 1) {
		t.Fatal("fresh device must have MaxUint64-1 remaining everywhere")
	}
	if d.MinRemainingAtLeast(math.MaxUint64) {
		t.Fatal("page 1 cannot absorb MaxUint64 writes")
	}
	d.Write(1, 7)
	if d.MinRemainingAtLeast(math.MaxUint64 - 1) {
		t.Fatal("after one write page 1 has MaxUint64-2 remaining")
	}
	if !d.MinRemainingAtLeast(math.MaxUint64 - 2) {
		t.Fatal("watermark lost the exact minimum")
	}
}

// TestTotalEnduranceSaturates pins the saturating sum: a device whose
// endurance map overflows uint64 reports MaxUint64, not a wrapped value.
func TestTotalEnduranceSaturates(t *testing.T) {
	geom := Geometry{Pages: 3, PageSize: 4096, LineSize: 128, Ranks: 1, Banks: 1}
	end := []uint64{math.MaxUint64 / 2, math.MaxUint64 / 2, math.MaxUint64 / 2}
	d, err := NewDevice(geom, DefaultTiming(), end)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.TotalEndurance(); got != math.MaxUint64 {
		t.Fatalf("TotalEndurance = %d, want saturated MaxUint64", got)
	}
}

// TestGeometryValidateFullScale accepts the paper's real geometry and
// rejects degenerate full-scale variants.
func TestGeometryValidateFullScale(t *testing.T) {
	g := DefaultGeometry()
	if g.Pages != 8<<20 {
		t.Fatalf("full geometry has %d pages, want 8Mi", g.Pages)
	}
	g.SparePages = g.Pages / 50
	if err := g.Validate(); err != nil {
		t.Fatalf("full geometry with spares invalid: %v", err)
	}
	if g.TotalPages() != 8<<20+(8<<20)/50 {
		t.Fatalf("TotalPages = %d", g.TotalPages())
	}
	g.SparePages = -1
	if err := g.Validate(); err == nil {
		t.Fatal("negative spare pool unexpectedly valid")
	}
}
