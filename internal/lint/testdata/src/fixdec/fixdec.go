// Package fixdec exercises the decorator analyzer: named struct types that
// embed the wl.Scheme interface and declare their own Write must implement
// every optional capability interface, or the embedded scheme's methods
// serve those paths without the decorator's interception.
package fixdec

import (
	"io"

	"twl/internal/wl"
)

// Leaky embeds wl.Scheme and overrides Write but implements none of the
// optional interfaces: four findings, one per missing interface.
type Leaky struct{ wl.Scheme }

func (d *Leaky) Write(la int, tag uint64) wl.Cost { return d.Scheme.Write(la, tag) }

// Partial intercepts the bulk paths but not Checker or Snapshotter: two
// findings.
type Partial struct{ wl.Scheme }

func (d *Partial) Write(la int, tag uint64) wl.Cost { return d.Scheme.Write(la, tag) }
func (d *Partial) WriteRun(la int, tag uint64, n int) (wl.Cost, int) {
	return d.Scheme.(wl.RunWriter).WriteRun(la, tag, n)
}
func (d *Partial) WriteSweep(la int, tag uint64, n int) (wl.Cost, int) {
	return d.Scheme.(wl.SweepWriter).WriteSweep(la, tag, n)
}

// Complete intercepts every path: clean.
type Complete struct{ wl.Scheme }

func (d *Complete) Write(la int, tag uint64) wl.Cost { return d.Scheme.Write(la, tag) }
func (d *Complete) WriteRun(la int, tag uint64, n int) (wl.Cost, int) {
	return d.Scheme.(wl.RunWriter).WriteRun(la, tag, n)
}
func (d *Complete) WriteSweep(la int, tag uint64, n int) (wl.Cost, int) {
	return d.Scheme.(wl.SweepWriter).WriteSweep(la, tag, n)
}
func (d *Complete) CheckInvariants() error       { return d.Scheme.(wl.Checker).CheckInvariants() }
func (d *Complete) Snapshot(out io.Writer) error { return d.Scheme.(wl.Snapshotter).Snapshot(out) }
func (d *Complete) Restore(in io.Reader) error   { return d.Scheme.(wl.Snapshotter).Restore(in) }

// Forwarder embeds wl.Scheme but declares no Write of its own — it
// interposes on nothing, so the rule does not apply: clean.
type Forwarder struct {
	wl.Scheme
	label string
}

// Holder has a plain (non-embedded) scheme field and its own Write; not a
// promotion hazard, so the rule does not apply: clean.
type Holder struct {
	inner wl.Scheme
}

func (h *Holder) Write(la int, tag uint64) wl.Cost { return h.inner.Write(la, tag) }
