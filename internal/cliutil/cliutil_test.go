package cliutil

import (
	"errors"
	"math"
	"strings"
	"testing"
)

// TestFraction covers the audit's motivating regression: a negative
// -spare-frac used to slip through a `!= 0` guard.
func TestFraction(t *testing.T) {
	cases := []struct {
		v      float64
		zeroOK bool
		ok     bool
	}{
		{-0.01, true, false}, // the regression: negative fraction
		{-0.01, false, false},
		{0, true, true}, // feature off
		{0, false, false},
		{0.05, true, true},
		{0.999, true, true},
		{1, true, false}, // a full-device spare pool is not a fraction
		{1.5, true, false},
		{math.Inf(1), true, false},
	}
	for _, tc := range cases {
		err := Fraction("-spare-frac", tc.v, tc.zeroOK)
		if (err == nil) != tc.ok {
			t.Errorf("Fraction(%g, zeroOK=%v) = %v, want ok=%v", tc.v, tc.zeroOK, err, tc.ok)
		}
	}
}

// TestRequires covers the other motivating regression: bigbench accepted
// -resume with no checkpoint directory to resume from.
func TestRequires(t *testing.T) {
	if err := Requires("-resume", true, "-ckpt", false); err == nil {
		t.Error("resume without checkpoint accepted")
	} else if !strings.Contains(err.Error(), "-resume requires -ckpt") {
		t.Errorf("unhelpful error: %v", err)
	}
	if err := Requires("-resume", true, "-ckpt", true); err != nil {
		t.Errorf("resume with checkpoint rejected: %v", err)
	}
	if err := Requires("-resume", false, "-ckpt", false); err != nil {
		t.Errorf("unset flag triggered dependency: %v", err)
	}
}

func TestNumericValidators(t *testing.T) {
	if err := NonNegativeInt("-pages", -1); err == nil {
		t.Error("negative int accepted")
	}
	if err := NonNegativeInt("-pages", 0); err != nil {
		t.Errorf("zero rejected: %v", err)
	}
	if err := PositiveInt("-n", 0); err == nil {
		t.Error("zero accepted as positive")
	}
	if err := PositiveInt("-n", 1); err != nil {
		t.Errorf("one rejected: %v", err)
	}
	if err := PositiveFloat("-endurance", 0); err == nil {
		t.Error("zero accepted as positive float")
	}
	if err := NonNegativeFloat("-endurance", -0.5); err == nil {
		t.Error("negative float accepted")
	}
}

func TestArgsAndStrings(t *testing.T) {
	if err := NoArgs(nil); err != nil {
		t.Errorf("empty args rejected: %v", err)
	}
	err := NoArgs([]string{"out.json"})
	if err == nil || !strings.Contains(err.Error(), "out.json") {
		t.Errorf("stray argument not named: %v", err)
	}
	if err := Required("-data", ""); err == nil {
		t.Error("empty required flag accepted")
	}
	if err := Required("-data", "/tmp/x"); err != nil {
		t.Errorf("set required flag rejected: %v", err)
	}
	if err := Exclusive("-attack", true, "-bench", true); err == nil {
		t.Error("both exclusive flags accepted")
	}
	if err := Exclusive("-attack", true, "-bench", false); err != nil {
		t.Errorf("single exclusive flag rejected: %v", err)
	}
}

func TestFirstError(t *testing.T) {
	e1, e2 := errors.New("first"), errors.New("second")
	if got := FirstError(nil, e1, e2); got != e1 {
		t.Errorf("FirstError = %v, want first", got)
	}
	if got := FirstError(nil, nil); got != nil {
		t.Errorf("FirstError of nils = %v", got)
	}
}

// TestCheck uses the exit seam to verify Check routes errors to the exit
// path exactly once, tagged with the tool name, and ignores nil.
func TestCheck(t *testing.T) {
	old := exit
	defer func() { exit = old }()
	var calls []string
	exit = func(tool string, err error) { calls = append(calls, tool+": "+err.Error()) }

	Check("twlsim", nil)
	if len(calls) != 0 {
		t.Fatalf("Check(nil) exited: %v", calls)
	}
	Check("twlsim", errors.New("-pages must be non-negative, got -1"))
	if len(calls) != 1 || calls[0] != "twlsim: -pages must be non-negative, got -1" {
		t.Fatalf("Check routed %v", calls)
	}
}
