package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Field is one key/value pair of a trace event. Fields are emitted in the
// order given, so event lines are deterministic.
type Field struct {
	Key   string
	Value any
}

// F is shorthand for constructing a Field.
func F(key string, value any) Field { return Field{Key: key, Value: value} }

// Tracer emits structured progress events as JSON lines: one object per
// event with a monotonic sequence number, the event name, and the caller's
// fields in order. Long-running loops (sim.RunLifetime, experiment grids)
// consult Every() for the emission cadence.
//
// Emit is safe for concurrent use; lines are written atomically under a
// lock. A write error is latched: subsequent Emits become no-ops and Err
// reports the first failure, so hot loops need not check every call.
type Tracer struct {
	mu    sync.Mutex
	w     io.Writer // set once at construction; writes happen under mu
	every uint64    // immutable after construction
	seq   uint64    //twl:guardedby mu
	err   error     //twl:guardedby mu
}

// DefaultTraceEvery is the progress cadence used when the caller passes
// every == 0: one event per 65536 requests keeps even multi-hour runs to a
// few thousand lines.
const DefaultTraceEvery = 1 << 16

// NewTracer returns a tracer writing JSONL events to w, with progress
// events requested every `every` units of work (0 selects
// DefaultTraceEvery).
func NewTracer(w io.Writer, every uint64) *Tracer {
	if every == 0 {
		every = DefaultTraceEvery
	}
	return &Tracer{w: w, every: every}
}

// Every returns the progress-event cadence the tracer was built with.
func (t *Tracer) Every() uint64 { return t.every }

// Seq returns the sequence number of the most recently emitted event (0 if
// none). Checkpointing persists it so a resumed run's trace continues the
// numbering of the interrupted one.
func (t *Tracer) Seq() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.seq
}

// SetSeq overwrites the event sequence counter. Used when resuming from a
// checkpoint: the next Emit produces seq+1, so a resumed trace appended to
// the truncated original forms one gapless stream.
func (t *Tracer) SetSeq(seq uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq = seq
}

// Err returns the first write or encoding error, if any.
func (t *Tracer) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Emit writes one event line. The sequence number and event name come
// first, then the fields in order. Failures are latched rather than
// returned — Err reports the first one — so emission sites in hot loops
// stay single statements and cannot silently drop an error.
func (t *Tracer) Emit(event string, fields ...Field) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	t.seq++
	var buf bytes.Buffer
	fmt.Fprintf(&buf, `{"seq":%d,"event":`, t.seq)
	if err := t.appendJSON(&buf, event); err != nil {
		return
	}
	for _, f := range fields {
		buf.WriteByte(',')
		if err := t.appendJSON(&buf, f.Key); err != nil {
			return
		}
		buf.WriteByte(':')
		if err := t.appendJSON(&buf, f.Value); err != nil {
			return
		}
	}
	buf.WriteString("}\n")
	if _, err := t.w.Write(buf.Bytes()); err != nil {
		t.err = err
	}
}

// appendJSON marshals v onto buf, latching encoding errors. Called from
// Emit with the tracer lock held.
//
//twl:locked mu
func (t *Tracer) appendJSON(buf *bytes.Buffer, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		t.err = fmt.Errorf("obs: unencodable trace field: %w", err)
		return t.err
	}
	buf.Write(b)
	return nil
}
