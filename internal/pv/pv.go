// Package pv models process variation in PCM endurance.
//
// The paper assumes endurance is tested by the manufacturer at page
// granularity and follows a Gaussian distribution with mean 1e8 writes and a
// standard deviation of 11% of the mean (Section 5.1, following Dong et al.
// DAC'11). This package generates per-page endurance maps under that model
// and two alternative models used by the ablation benches.
package pv

import (
	"errors"
	"fmt"
	"math"

	"twl/internal/rng"
)

// Model selects how per-page endurance is drawn.
type Model int

const (
	// Gaussian draws endurance i.i.d. from N(mean, sigma), the paper's model.
	Gaussian Model = iota
	// Correlated draws endurance from a Gaussian random walk across the
	// address space, modeling spatially-correlated systematic variation
	// (wafer-level gradients). Used by ablations: adjacent pairing performs
	// relatively better here because neighbors have similar endurance.
	Correlated
	// Bimodal models a die with a fraction of distinctly weak pages
	// (e.g. outlier cells dominating a page), a harder case for
	// prediction-based schemes.
	Bimodal
)

// String implements fmt.Stringer.
func (m Model) String() string {
	switch m {
	case Gaussian:
		return "gaussian"
	case Correlated:
		return "correlated"
	case Bimodal:
		return "bimodal"
	default:
		return fmt.Sprintf("pv.Model(%d)", int(m))
	}
}

// Config describes an endurance map to generate.
type Config struct {
	Pages int     // number of pages
	Mean  float64 // mean endurance in writes (paper: 1e8)
	Sigma float64 // standard deviation in writes (paper: 0.11 * Mean)
	Model Model
	Seed  uint64

	// WeakFraction and WeakScale configure the Bimodal model: WeakFraction
	// of pages have mean endurance WeakScale*Mean. Ignored otherwise.
	WeakFraction float64
	WeakScale    float64

	// CorrelationLength is the random-walk smoothing window for the
	// Correlated model, in pages. Ignored otherwise.
	CorrelationLength int
}

// DefaultConfig returns the paper's endurance model for a given page count:
// Gaussian, mean 1e8, sigma 11% of mean.
func DefaultConfig(pages int, seed uint64) Config {
	return Config{
		Pages: pages,
		Mean:  1e8,
		Sigma: 0.11e8,
		Model: Gaussian,
		Seed:  seed,
	}
}

// MinEndurance is the floor applied to every generated endurance value.
// A Gaussian tail can produce non-positive values; real parts are binned and
// discarded below a floor, so we clamp at a small positive count.
const MinEndurance = 1

// Generate produces a per-page endurance map under cfg.
func Generate(cfg Config) ([]uint64, error) {
	if cfg.Pages <= 0 {
		return nil, errors.New("pv: Pages must be positive")
	}
	if cfg.Mean <= 0 {
		return nil, errors.New("pv: Mean must be positive")
	}
	if cfg.Sigma < 0 {
		return nil, errors.New("pv: Sigma must be non-negative")
	}
	g := rng.NewGaussian(rng.NewXorshift(cfg.Seed))
	out := make([]uint64, cfg.Pages)
	switch cfg.Model {
	case Gaussian:
		for i := range out {
			out[i] = clamp(g.Sample(cfg.Mean, cfg.Sigma))
		}
	case Correlated:
		n := cfg.CorrelationLength
		if n <= 0 {
			n = 64
		}
		// Systematic component: a smoothed random walk with the configured
		// correlation length; random component: half the total variance.
		sysSigma := cfg.Sigma / math.Sqrt2
		rndSigma := cfg.Sigma / math.Sqrt2
		level := g.Sample(0, sysSigma)
		for i := range out {
			if i%n == 0 && i > 0 {
				// Move the systematic level with partial memory so nearby
				// blocks stay similar.
				level = 0.7*level + 0.3*g.Sample(0, sysSigma)
			}
			out[i] = clamp(cfg.Mean + level + g.Sample(0, rndSigma))
		}
	case Bimodal:
		weakFrac := cfg.WeakFraction
		if weakFrac <= 0 {
			weakFrac = 0.05
		}
		weakScale := cfg.WeakScale
		if weakScale <= 0 {
			weakScale = 0.5
		}
		u := rng.NewXorshift(cfg.Seed + 1)
		for i := range out {
			mean := cfg.Mean
			if u.Float64() < weakFrac {
				mean *= weakScale
			}
			out[i] = clamp(g.Sample(mean, cfg.Sigma))
		}
	default:
		return nil, fmt.Errorf("pv: unknown model %v", cfg.Model)
	}
	return out, nil
}

func clamp(v float64) uint64 {
	if v < MinEndurance {
		return MinEndurance
	}
	return uint64(v)
}

// Scale returns a copy of the endurance map scaled by factor, clamped at
// MinEndurance. The simulator uses this to run scaled-endurance experiments
// (see DESIGN.md, substitution 3) while preserving the relative variation.
func Scale(endurance []uint64, factor float64) []uint64 {
	out := make([]uint64, len(endurance))
	for i, e := range endurance {
		v := float64(e) * factor
		if v < MinEndurance {
			v = MinEndurance
		}
		out[i] = uint64(v)
	}
	return out
}

// Summary reports aggregate statistics of an endurance map.
type Summary struct {
	Pages    int
	Min, Max uint64
	Mean     float64
	Sigma    float64
}

// Summarize computes a Summary of the map.
func Summarize(endurance []uint64) Summary {
	s := Summary{Pages: len(endurance)}
	if len(endurance) == 0 {
		return s
	}
	s.Min = endurance[0]
	s.Max = endurance[0]
	sum := 0.0
	for _, e := range endurance {
		if e < s.Min {
			s.Min = e
		}
		if e > s.Max {
			s.Max = e
		}
		sum += float64(e)
	}
	s.Mean = sum / float64(len(endurance))
	varsum := 0.0
	for _, e := range endurance {
		d := float64(e) - s.Mean
		varsum += d * d
	}
	s.Sigma = math.Sqrt(varsum / float64(len(endurance)))
	return s
}
