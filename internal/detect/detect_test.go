package detect

import (
	"bytes"
	"testing"

	"twl/internal/attack"
	"twl/internal/trace"
)

const pages = 512

func newDet(t *testing.T) *Detector {
	t.Helper()
	d, err := New(DefaultConfig(pages))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestValidation(t *testing.T) {
	bad := []Config{
		{WindowWrites: 0, TrackTop: 8, ConcentrationAlarm: 0.3, ReversalAlarm: -0.2, AlarmWindows: 2},
		{WindowWrites: 10, TrackTop: 0, ConcentrationAlarm: 0.3, ReversalAlarm: -0.2, AlarmWindows: 2},
		{WindowWrites: 10, TrackTop: 8, ConcentrationAlarm: 0, ReversalAlarm: -0.2, AlarmWindows: 2},
		{WindowWrites: 10, TrackTop: 8, ConcentrationAlarm: 1.5, ReversalAlarm: -0.2, AlarmWindows: 2},
		{WindowWrites: 10, TrackTop: 8, ConcentrationAlarm: 0.3, ReversalAlarm: 0.2, AlarmWindows: 2},
		{WindowWrites: 10, TrackTop: 8, ConcentrationAlarm: 0.3, ReversalAlarm: -0.2, AlarmWindows: 0},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

// feedAttack drives n writes of the given attack mode into the detector.
func feedAttack(t *testing.T, d *Detector, mode attack.Mode, n int) {
	t.Helper()
	st, err := attack.New(attack.DefaultConfig(mode, pages, 7))
	if err != nil {
		t.Fatal(err)
	}
	fb := attack.Feedback{}
	for i := 0; i < n; i++ {
		d.Observe(st.Next(fb))
		// Mimic the blocked-response signal occasionally so the
		// inconsistent attacker actually reverses.
		fb = attack.Feedback{Blocked: i%5000 == 4999}
	}
}

func TestDetectsRepeatAttack(t *testing.T) {
	d := newDet(t)
	feedAttack(t, d, attack.Repeat, 10*d.cfg.WindowWrites)
	if !d.Alarm() {
		t.Fatalf("repeat attack not detected: %+v", d.Stats())
	}
	if d.Stats().Concentration < 0.9 {
		t.Fatalf("repeat concentration %v, want ~1", d.Stats().Concentration)
	}
}

func TestDetectsInconsistentAttack(t *testing.T) {
	d := newDet(t)
	feedAttack(t, d, attack.Inconsistent, 60*d.cfg.WindowWrites)
	// The reversal signature appears at each distribution flip; between
	// flips the stream is self-consistent, so the *latched* alarm is the
	// actionable signal.
	if !d.EverAlarmed() {
		t.Fatalf("inconsistent attack never detected: %+v", d.Stats())
	}
	if d.Stats().AlarmEvents < 3 {
		t.Fatalf("only %d alarm events over 60 windows", d.Stats().AlarmEvents)
	}
}

func TestBenignWorkloadsStayQuiet(t *testing.T) {
	for _, bn := range []string{"canneal", "vips", "streamcluster"} {
		b, err := trace.BenchmarkByName(bn)
		if err != nil {
			t.Fatal(err)
		}
		g, err := trace.NewSynthetic(b, pages, 3)
		if err != nil {
			t.Fatal(err)
		}
		d := newDet(t)
		writes := 0
		for writes < 30*d.cfg.WindowWrites {
			addr, w := g.Next()
			if !w {
				continue
			}
			d.Observe(addr)
			writes++
		}
		if d.EverAlarmed() {
			t.Fatalf("%s: false alarm: %+v", bn, d.Stats())
		}
		if st := d.Stats(); st.Correlation < 0.3 {
			t.Errorf("%s: benign correlation %v, want clearly positive", bn, st.Correlation)
		}
	}
}

func TestScanAttackLooksUniform(t *testing.T) {
	// Scan is indistinguishable from a uniform benign stream by these
	// statistics — the detector must NOT alarm (this is exactly why
	// detection alone is not a sufficient defense, motivating TWL).
	d := newDet(t)
	feedAttack(t, d, attack.Scan, 20*d.cfg.WindowWrites)
	if d.EverAlarmed() {
		t.Fatalf("scan attack raised an alarm; it should look uniform: %+v", d.Stats())
	}
}

// snapBytes serializes a detector's full mutable state for equivalence
// checks between the bulk and per-write observation paths.
func snapBytes(t *testing.T, d *Detector) string {
	t.Helper()
	var buf bytes.Buffer
	if err := d.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestObserveNMatchesSerial: a same-address bulk observation — including
// ones that straddle several window closes — must leave the detector in
// exactly the state n sequential Observe calls would.
func TestObserveNMatchesSerial(t *testing.T) {
	bulk, serial := newDet(t), newDet(t)
	ww := bulk.cfg.WindowWrites
	chunks := []struct{ la, n int }{
		{3, 10}, {7, 1}, {3, ww - 5}, {3, 3 * ww}, {11, 2}, {3, 1}, {3, ww},
	}
	for _, c := range chunks {
		bulk.ObserveN(c.la, c.n)
		for i := 0; i < c.n; i++ {
			serial.Observe(c.la)
		}
		if got, want := snapBytes(t, bulk), snapBytes(t, serial); got != want {
			t.Fatalf("ObserveN(%d, %d) diverges from sequential Observe", c.la, c.n)
		}
	}
}

// TestObserveRangeMatchesSerial: the consecutive-address bulk observation
// must match the equivalent ascending Observe loop across window closes.
func TestObserveRangeMatchesSerial(t *testing.T) {
	bulk, serial := newDet(t), newDet(t)
	ww := bulk.cfg.WindowWrites
	chunks := []struct{ la0, n int }{
		{0, 7}, {100, ww - 3}, {pages - 5, 5}, {40, 2*ww + 11},
	}
	for _, c := range chunks {
		bulk.ObserveRange(c.la0, c.n)
		for i := 0; i < c.n; i++ {
			serial.Observe(c.la0 + i)
		}
		if got, want := snapBytes(t, bulk), snapBytes(t, serial); got != want {
			t.Fatalf("ObserveRange(%d, %d) diverges from sequential Observe", c.la0, c.n)
		}
	}
}

// TestWindowHeadroom pins the event-horizon contract: headroom counts the
// observations left before the next window close, and a close resets it.
func TestWindowHeadroom(t *testing.T) {
	d := newDet(t)
	ww := d.cfg.WindowWrites
	if d.WindowHeadroom() != ww {
		t.Fatalf("fresh headroom = %d, want %d", d.WindowHeadroom(), ww)
	}
	d.Observe(0)
	if d.WindowHeadroom() != ww-1 {
		t.Fatalf("headroom after one write = %d, want %d", d.WindowHeadroom(), ww-1)
	}
	d.ObserveN(0, d.WindowHeadroom())
	if d.WindowHeadroom() != ww {
		t.Fatalf("headroom after window close = %d, want %d", d.WindowHeadroom(), ww)
	}
	if d.Stats().Windows != 1 {
		t.Fatalf("windows = %d after exactly one full window", d.Stats().Windows)
	}
}

func TestPearson(t *testing.T) {
	if got := pearson([]float64{1, 2, 3}, []float64{2, 4, 6}); got < 0.999 {
		t.Fatalf("perfect correlation = %v", got)
	}
	if got := pearson([]float64{1, 2, 3}, []float64{6, 4, 2}); got > -0.999 {
		t.Fatalf("perfect anti-correlation = %v", got)
	}
	if got := pearson([]float64{1, 1, 1}, []float64{1, 2, 3}); got != 0 {
		t.Fatalf("constant series correlation = %v, want 0", got)
	}
}

func TestStatsProgress(t *testing.T) {
	d := newDet(t)
	if d.Stats().Windows != 0 {
		t.Fatal("fresh detector has windows")
	}
	for i := 0; i < d.cfg.WindowWrites; i++ {
		d.Observe(i % pages)
	}
	if d.Stats().Windows != 1 {
		t.Fatalf("windows = %d after one full window", d.Stats().Windows)
	}
}
