package bwl

import (
	"testing"

	"twl/internal/wl"
	"twl/internal/wl/wltest"
)

func build(tb testing.TB, seed uint64) wl.Scheme {
	dev := wltest.NewDevice(tb, 256, seed)
	// The conformance device has effectively infinite endurance, so pin the
	// rotation quantum and trust window to finite values that exercise the
	// swap machinery.
	cfg := DefaultConfig(256, seed)
	cfg.MoveThreshold = 500
	cfg.ColdTrustWrites = 1000
	s, err := New(dev, cfg)
	if err != nil {
		tb.Fatal(err)
	}
	return s
}

func TestConformance(t *testing.T) {
	wltest.Run(t, build)
}

func TestValidation(t *testing.T) {
	dev := wltest.NewDevice(t, 64, 1)
	bad := []Config{
		{EpochWrites: 0, FilterSlots: 64, FilterHashes: 2, CandidateProbes: 4},
		{EpochWrites: 10, FilterSlots: 64, FilterHashes: 2, MoveThreshold: -1, CandidateProbes: 4},
		{EpochWrites: 10, FilterSlots: 64, FilterHashes: 2, CandidateProbes: 0},
		{EpochWrites: 10, FilterSlots: 0, FilterHashes: 2, CandidateProbes: 4},
		{EpochWrites: 10, FilterSlots: 64, FilterHashes: 2, CandidateProbes: 4, ColdTrustWrites: -1},
	}
	for i, cfg := range bad {
		if _, err := New(dev, cfg); err == nil {
			t.Errorf("case %d: %+v accepted", i, cfg)
		}
	}
}

// TestHotAddressPromoted: a hammered address must rotate off the weakest
// page onto one with more remaining life after a rotation quantum.
func TestHotAddressPromoted(t *testing.T) {
	dev := wltest.NewDevice(t, 256, 2)
	cfg := DefaultConfig(256, 3)
	cfg.MoveThreshold = 1000
	s, err := New(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Find an address currently sitting on a below-median page: with the
	// identity initial mapping, pick the weakest page's logical address.
	weakest := wl.SortByEndurance(dev.EnduranceMap())[0]
	la := weakest // identity mapping

	// Background traffic plus a hammered address.
	for i := 0; i < 20000; i++ {
		s.Write(la, 1)
		s.Write(i%256, 2)
	}
	paNow := s.rt.Phys(la)
	if dev.Remaining(paNow) <= dev.Remaining(weakest) {
		t.Fatalf("hot address still on the ground-down page (remaining %d vs %d); not rotated",
			dev.Remaining(paNow), dev.Remaining(weakest))
	}
}

// TestColdDemotion: an address silent for over an epoch gets demoted off a
// strong page on its next write.
func TestColdDemotion(t *testing.T) {
	dev := wltest.NewDevice(t, 256, 4)
	s, err := New(dev, DefaultConfig(256, 5))
	if err != nil {
		t.Fatal(err)
	}
	strongest := wl.SortByEndurance(dev.EnduranceMap())[255]
	coldLA := strongest // identity mapping: the cold address owns the best page

	// Several epochs of traffic that never touches coldLA.
	for i := 0; i < 4*s.cfg.EpochWrites; i++ {
		s.Write((coldLA+1+i%16)%256, 1)
	}
	// coldLA has been silent for > 2 epochs: its next write must demote it.
	s.Write(coldLA, 2)
	paNow := s.rt.Phys(coldLA)
	if paNow == strongest {
		t.Fatal("cold address still occupies the strongest page; demotion never fired")
	}
	if dev.Endurance(paNow) >= dev.Endurance(strongest) {
		t.Fatalf("cold address moved to an even stronger page (%d >= %d)",
			dev.Endurance(paNow), dev.Endurance(strongest))
	}
	if s.coldLock[coldLA] == 0 {
		t.Fatal("demotion did not arm the cold-trust lock")
	}
}

// TestPerWriteOverheadCharged: Figure 9's premise — BWL pays Bloom-probe
// cycles on every single write.
func TestPerWriteOverheadCharged(t *testing.T) {
	dev := wltest.NewDevice(t, 256, 6)
	cfg := DefaultConfig(256, 7)
	s, err := New(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cost := s.Write(0, 1)
	minCycles := 2 * cfg.FilterHashes * wl.TableCycles
	if cost.ExtraCycles < minCycles {
		t.Fatalf("write charged %d extra cycles, want >= %d (Bloom probes)",
			cost.ExtraCycles, minCycles)
	}
}

// TestSwapsCostTwoWrites: promotions/demotions are pairwise swaps.
func TestSwapsCostTwoWrites(t *testing.T) {
	dev := wltest.NewDevice(t, 256, 8)
	cfg := DefaultConfig(256, 9)
	cfg.MoveThreshold = 500
	s, err := New(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sawSwap := false
	for i := 0; i < 50000; i++ {
		var cost wl.Cost
		if i%2 == 0 {
			cost = s.Write(3, 1) // hammer to provoke promotion
		} else {
			cost = s.Write(i%256, 2)
		}
		switch cost.DeviceWrites {
		case 1:
		case 3:
			sawSwap = true
			if !cost.Blocked {
				t.Fatal("swap not reported blocked")
			}
		default:
			t.Fatalf("write cost %d device writes", cost.DeviceWrites)
		}
	}
	if !sawSwap {
		t.Fatal("no promotion swap observed")
	}
}

func TestEpochAging(t *testing.T) {
	dev := wltest.NewDevice(t, 64, 10)
	cfg := DefaultConfig(64, 11)
	cfg.EpochWrites = 100
	s, err := New(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		s.Write(5, 1)
	}
	// After the epoch boundary the estimate was halved.
	if est := s.cbf.Estimate(5); est > 60 {
		t.Fatalf("estimate %d after epoch, want halved (~50)", est)
	}
}

func TestName(t *testing.T) {
	if build(t, 1).Name() != "BWL" {
		t.Fatal("name mismatch")
	}
}
