package lint

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files from current analyzer output")

// fixtures maps each analyzer to its fixture package. The synthetic import
// paths matter: determinism only covers twl/internal/..., and registry's
// rule 1 only engages for packages directly under twl/internal/wl/.
var fixtures = []struct {
	analyzer *Analyzer
	dir      string
	path     string
}{
	{determinismAnalyzer, "fixdet", "twl/internal/fixdet"},
	{registryAnalyzer, "fixreg", "twl/internal/wl/fixreg"},
	{costAnalyzer, "fixcost", "twl/internal/fixcost"},
	{locksAnalyzer, "fixlocks", "twl/internal/fixlocks"},
	{snapshotAnalyzer, "fixsnap", "twl/internal/fixsnap"},
	{decoratorAnalyzer, "fixdec", "twl/internal/fixdec"},
	{concurrencyAnalyzer, "fixconc", "twl/internal/fixconc"},
}

// loadFixture type-checks one fixture package and builds the analysis world
// around it.
func loadFixture(t *testing.T, l *Loader, dir, path string, allow *Allowlist) (*Package, *World) {
	t.Helper()
	p, err := l.LoadDir(filepath.Join("testdata", "src", dir), path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorld(l, []*Package{p}, allow)
	if err != nil {
		t.Fatal(err)
	}
	return p, w
}

func render(diags []Diagnostic) string {
	sortDiags(diags)
	var b strings.Builder
	for _, d := range diags {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// checkGolden compares got against the golden file, rewriting it first under
// -update.
func checkGolden(t *testing.T, golden, got string) {
	t.Helper()
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("diagnostics diverge from %s:\ngot:\n%swant:\n%s", golden, got, want)
	}
	if got == "" {
		t.Error("fixture produced no findings; the check cannot be proven to fire")
	}
}

// TestAnalyzersMatchGolden proves every analyzer fires on its fixture and
// that the exact set of findings — positions and messages — is pinned by a
// golden file. Run with -update to regenerate after intentional changes.
func TestAnalyzersMatchGolden(t *testing.T) {
	l := NewLoader()
	for _, fx := range fixtures {
		t.Run(fx.analyzer.Name, func(t *testing.T) {
			p, w := loadFixture(t, l, fx.dir, fx.path, nil)
			checkGolden(t, filepath.Join("testdata", fx.dir+".golden"), render(fx.analyzer.Run(p, w)))
		})
	}
}

// TestBudgetFixture proves the allocation-budget phase fires: fixhot's
// committed budget predates the HotAlloc allocation and carries a stale
// entry, so the diff must report both — and a freshly regenerated budget
// must diff clean.
func TestBudgetFixture(t *testing.T) {
	l := NewLoader()
	p, _ := loadFixture(t, l, "fixhot", "twl/internal/fixhot", nil)
	pkgs := []*Package{p}

	diags, err := CheckBudget(pkgs, filepath.Join("testdata", "fixhot.budget"), false)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, filepath.Join("testdata", "fixhot.golden"), render(diags))

	// -update-budget then re-check: the regenerated file must diff clean.
	tmp := filepath.Join(t.TempDir(), "budget")
	if _, err := CheckBudget(pkgs, tmp, true); err != nil {
		t.Fatal(err)
	}
	clean, err := CheckBudget(pkgs, tmp, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(clean) != 0 {
		t.Errorf("regenerated budget still diffs: %v", clean)
	}
}

func writeAllow(t *testing.T, content string) *Allowlist {
	t.Helper()
	path := filepath.Join(t.TempDir(), "allow")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	a, err := ParseAllowlist(path)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// TestAllowlistScoping: a package-wide entry silences every finding; a
// declaration-scoped entry silences only the findings inside it.
func TestAllowlistScoping(t *testing.T) {
	l := NewLoader()
	p, w := loadFixture(t, l, "fixdet", "twl/internal/fixdet", nil)
	all := determinismAnalyzer.Run(p, w)
	if len(all) == 0 {
		t.Fatal("fixture produced no findings to filter")
	}

	w.Allow = writeAllow(t, "# everything sanctioned\ndeterminism twl/internal/fixdet\n")
	if got := determinismAnalyzer.Run(p, w); len(got) != 0 {
		t.Fatalf("package-wide allow left %d findings: %v", len(got), got)
	}

	w.Allow = writeAllow(t, "determinism twl/internal/fixdet Clocks\n")
	got := determinismAnalyzer.Run(p, w)
	if len(got) != len(all)-2 {
		t.Fatalf("decl-scoped allow: got %d findings, want %d (the two Clocks findings removed)", len(got), len(all)-2)
	}
	for _, d := range got {
		if strings.Contains(d.Message, "wall-clock") {
			t.Fatalf("Clocks finding survived the decl-scoped allow: %v", d)
		}
	}
}

// TestStaleAllowlist: an entry that never matched a finding is reported —
// but only when its package was actually loaded, so partial runs cannot
// false-fire.
func TestStaleAllowlist(t *testing.T) {
	l := NewLoader()
	p, w := loadFixture(t, l, "fixdet", "twl/internal/fixdet", nil)
	w.Allow = writeAllow(t,
		"determinism twl/internal/fixdet Clocks\n"+ // will match
			"cost twl/internal/fixdet\n"+ // loaded package, no cost finding: stale
			"determinism twl/internal/unloaded\n") // package not loaded: unjudgeable
	_ = determinismAnalyzer.Run(p, w)

	stale := w.Allow.Unused(map[string]bool{p.Path: true})
	if len(stale) != 1 {
		t.Fatalf("want exactly the loaded-package stale entry, got %v", stale)
	}
	if !strings.Contains(stale[0].Message, `"cost twl/internal/fixdet"`) {
		t.Errorf("stale diagnostic names the wrong entry: %v", stale[0])
	}
	if stale[0].Analyzer != "allowlist" {
		t.Errorf("stale diagnostic analyzer = %q, want allowlist", stale[0].Analyzer)
	}
}

func TestParseAllowlistRejectsMalformed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "allow")
	if err := os.WriteFile(path, []byte("toomany fields in this line here\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseAllowlist(path); err == nil {
		t.Fatal("malformed allowlist accepted")
	}
	if _, err := ParseAllowlist(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("missing allowlist file accepted")
	}
}

// TestSortDiagsNumeric pins the (package, position) output order `twlint
// -json` relies on: positions compare by numeric line/column, not string
// order, and package groups stay contiguous however the parallel analysis
// interleaved them.
func TestSortDiagsNumeric(t *testing.T) {
	ds := []Diagnostic{
		{Analyzer: "a", Package: "pkg/b", Pos: "x.go:9:2", Message: "m"},
		{Analyzer: "a", Package: "pkg/a", Pos: "x.go:10:1", Message: "m"},
		{Analyzer: "a", Package: "pkg/a", Pos: "x.go:9:30", Message: "m"},
		{Analyzer: "a", Package: "pkg/a", Pos: "x.go:9:4", Message: "m"},
		{Analyzer: "b", Package: "pkg/a", Pos: "x.go:9:4", Message: "m"},
	}
	sortDiags(ds)
	var got []string
	for _, d := range ds {
		got = append(got, d.Package+" "+d.Pos+" "+d.Analyzer)
	}
	want := []string{
		"pkg/a x.go:9:4 a",
		"pkg/a x.go:9:4 b",
		"pkg/a x.go:9:30 a",
		"pkg/a x.go:10:1 a",
		"pkg/b x.go:9:2 a",
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order[%d] = %q, want %q (full: %v)", i, got[i], want[i], got)
		}
	}
}

// TestCleanTree is the self-test the Makefile's lint target relies on: the
// repository's own packages produce zero findings under the checked-in
// allowlist and allocation budget, in strict (stale-entry-reporting) mode.
func TestCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("loads, type-checks and escape-analyzes the whole module")
	}
	allow, err := ParseAllowlist(filepath.Join("..", "..", "twlint.allow"))
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run([]string{"twl/..."}, Options{
		Allow:      allow,
		BudgetPath: filepath.Join("..", "..", "twlint.budget"),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("unexpected finding on clean tree: %v", d)
	}
}
