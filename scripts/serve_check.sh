#!/usr/bin/env bash
# serve_check.sh — end-to-end crash-safety and dedupe check for twlsimd.
#
# Boots the simulation daemon, submits a small grid over HTTP, SIGKILLs the
# daemon mid-cell (after the first checkpoint lands), restarts it on the
# same state directory and requires (a) the job to complete from the
# surviving checkpoints and (b) an identical resubmitted grid to be served
# entirely from the content-addressed result cache. This is the shell-level
# counterpart of internal/serve's drain/restart tests: a real binary, a
# real kill -9, real files.
set -euo pipefail

cd "$(dirname "$0")/.."
work="$(mktemp -d)"
port="${TWLSIMD_PORT:-18632}"
base="http://localhost:$port"
pid=""
trap '[ -n "$pid" ] && kill -KILL "$pid" 2>/dev/null; rm -rf "$work"' EXIT

# The cell must run long enough (a couple of seconds) that the kill lands
# mid-simulation: the inconsistent attack defeats the run-length fast
# paths, so this cell runs at per-write speed.
spec='{"schemes":["TWL_swp"],"attacks":["inconsistent"],"pages":1024,"mean_endurance":200000,"seeds":[3]}'

echo "serve_check: building twlsimd"
go build -o "$work/twlsimd" ./cmd/twlsimd

start_daemon() {
    "$work/twlsimd" -addr "localhost:$port" -data "$work/data" -workers 2 \
        -checkpoint-every 1048576 >> "$work/daemon.log" 2>&1 &
    pid=$!
    for _ in $(seq 1 200); do
        curl -fsS "$base/healthz" >/dev/null 2>&1 && return 0
        kill -0 "$pid" 2>/dev/null || break
        sleep 0.05
    done
    echo "serve_check: FAIL — daemon did not come up" >&2
    cat "$work/daemon.log" >&2
    exit 1
}

job_status() {
    curl -fsS "$base/jobs/$1" | grep -o '"status": "[a-z]*"' | head -1 | cut -d'"' -f4
}

start_daemon
id=$(curl -fsS -d "$spec" "$base/jobs" | grep -o '"id": "[^"]*"' | cut -d'"' -f4)
if [ -z "$id" ]; then
    echo "serve_check: FAIL — submission returned no job id" >&2
    exit 1
fi
echo "serve_check: submitted $id"

# Wait for the first cell checkpoint to be installed, then pull the plug.
for _ in $(seq 1 200); do
    found=$(find "$work/data/ckpt" -name '*.ckpt' -size +0c 2>/dev/null | head -1)
    [ -n "$found" ] && break
    kill -0 "$pid" 2>/dev/null || break
    sleep 0.05
done
if [ -z "${found:-}" ]; then
    if [ "$(job_status "$id")" = "done" ]; then
        # The cell outran the checkpoint cadence; the restart below still
        # verifies state reload, but flag the timing regression.
        echo "serve_check: WARNING — job finished before SIGKILL; restart still checked"
    else
        echo "serve_check: FAIL — no checkpoint appeared" >&2
        cat "$work/daemon.log" >&2
        exit 1
    fi
fi
kill -KILL "$pid" 2>/dev/null && echo "serve_check: killed daemon pid $pid mid-cell"
wait "$pid" 2>/dev/null || true
pid=""

echo "serve_check: restarting daemon on the same state directory"
start_daemon
for _ in $(seq 1 600); do
    status=$(job_status "$id")
    [ "$status" = "done" ] && break
    if [ "$status" != "running" ]; then
        echo "serve_check: FAIL — job settled as '$status'" >&2
        curl -fsS "$base/jobs/$id" >&2 || true
        exit 1
    fi
    sleep 0.1
done
if [ "${status:-}" != "done" ]; then
    echo "serve_check: FAIL — job did not complete after restart" >&2
    exit 1
fi
echo "serve_check: job completed after kill + restart"

# Resubmit the identical grid: every cell must be a cache hit.
id2=$(curl -fsS -d "$spec" "$base/jobs" | grep -o '"id": "[^"]*"' | cut -d'"' -f4)
for _ in $(seq 1 100); do
    [ "$(job_status "$id2")" = "done" ] && break
    sleep 0.1
done
cached=$(curl -fsS "$base/jobs/$id2" | grep -c '"cached": true' || true)
if [ "$cached" -ne 1 ]; then
    echo "serve_check: FAIL — resubmitted grid not served from cache" >&2
    curl -fsS "$base/jobs/$id2" >&2 || true
    exit 1
fi
if ! curl -fsS "$base/metrics" | grep -q '^twl_serve_cache_hits_total [1-9]'; then
    echo "serve_check: FAIL — cache hits not visible in /metrics" >&2
    curl -fsS "$base/metrics" >&2 || true
    exit 1
fi
echo "serve_check: resubmitted grid was a cache hit (dedupe verified)"

kill -TERM "$pid" 2>/dev/null || true
wait "$pid" 2>/dev/null || true
pid=""
echo "serve_check: OK — kill/restart completion and cache dedupe verified"
