package pcm

import (
	"testing"
	"testing/quick"

	"twl/internal/rng"
)

func lineGeom(pages int) Geometry {
	return Geometry{Pages: pages, PageSize: 4096, LineSize: 128, Ranks: 1, Banks: 1}
}

func TestDiffLines(t *testing.T) {
	old := make([]byte, 512)
	new_ := make([]byte, 512)
	copy(new_, old)
	new_[0] = 1   // line 0
	new_[300] = 7 // line 2 (128-byte lines)
	dirty, err := DiffLines(old, new_, 128)
	if err != nil {
		t.Fatal(err)
	}
	want := []bool{true, false, true, false}
	for i := range want {
		if dirty[i] != want[i] {
			t.Fatalf("dirty = %v, want %v", dirty, want)
		}
	}
}

func TestDiffLinesErrors(t *testing.T) {
	if _, err := DiffLines(make([]byte, 10), make([]byte, 12), 2); err == nil {
		t.Fatal("size mismatch accepted")
	}
	if _, err := DiffLines(make([]byte, 10), make([]byte, 10), 3); err == nil {
		t.Fatal("non-dividing line size accepted")
	}
	if _, err := DiffLines(make([]byte, 10), make([]byte, 10), 0); err == nil {
		t.Fatal("zero line size accepted")
	}
}

func TestDiffLinesIdentical(t *testing.T) {
	buf := []byte{1, 2, 3, 4}
	dirty, err := DiffLines(buf, buf, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range dirty {
		if d {
			t.Fatal("identical pages reported dirty lines")
		}
	}
}

func TestLineArrayValidation(t *testing.T) {
	if _, err := NewLineArray(lineGeom(2), []uint64{5}); err == nil {
		t.Fatal("short endurance map accepted")
	}
	if _, err := NewLineArray(lineGeom(2), []uint64{5, 0}); err == nil {
		t.Fatal("zero endurance accepted")
	}
}

func TestLineArrayWearAndFailure(t *testing.T) {
	a, err := NewLineArray(lineGeom(2), []uint64{3, 100})
	if err != nil {
		t.Fatal(err)
	}
	dirty := make([]bool, 32)
	dirty[5] = true
	for i := 0; i < 2; i++ {
		n, failed, err := a.WriteDirty(0, dirty)
		if err != nil || n != 1 || failed {
			t.Fatalf("write %d: n=%d failed=%v err=%v", i, n, failed, err)
		}
	}
	_, failed, err := a.WriteDirty(0, dirty)
	if err != nil || !failed {
		t.Fatalf("third write to line: failed=%v err=%v", failed, err)
	}
	if page, ok := a.Failed(); !ok || page != 0 {
		t.Fatalf("Failed() = %d,%v", page, ok)
	}
	if a.MaxLineWear(0) != 3 || a.MaxLineWear(1) != 0 {
		t.Fatalf("max wear %d/%d", a.MaxLineWear(0), a.MaxLineWear(1))
	}
}

func TestLineArrayBoundsChecks(t *testing.T) {
	a, _ := NewLineArray(lineGeom(2), []uint64{5, 5})
	if _, _, err := a.WriteDirty(2, make([]bool, 32)); err == nil {
		t.Fatal("out-of-range page accepted")
	}
	if _, _, err := a.WriteDirty(0, make([]bool, 3)); err == nil {
		t.Fatal("short mask accepted")
	}
}

func TestWriteFullProgramsAllLines(t *testing.T) {
	a, _ := NewLineArray(lineGeom(1), []uint64{10})
	if _, err := a.WriteFull(0); err != nil {
		t.Fatal(err)
	}
	if a.LineWrites() != 32 {
		t.Fatalf("LineWrites = %d, want 32", a.LineWrites())
	}
}

func TestDCWSavings(t *testing.T) {
	a, _ := NewLineArray(lineGeom(1), []uint64{1000})
	dirty := make([]bool, 32)
	dirty[0] = true // 1 of 32 lines dirty
	for i := 0; i < 10; i++ {
		a.WriteDirty(0, dirty)
	}
	if got := a.DCWSavings(); got != 31.0/32 {
		t.Fatalf("savings = %v, want 31/32", got)
	}
}

// TestPageModelIsConservative: for any write sequence, the page-granularity
// wear (count of page writes) upper-bounds the worst line wear under DCW —
// the property that justifies simulating wear leveling at page granularity.
func TestPageModelIsConservative(t *testing.T) {
	check := func(seed uint64, nOps uint16) bool {
		src := rng.NewXorshift(seed)
		const pages = 8
		a, err := NewLineArray(lineGeom(pages), []uint64{1 << 40, 1 << 40, 1 << 40, 1 << 40, 1 << 40, 1 << 40, 1 << 40, 1 << 40})
		if err != nil {
			return false
		}
		pageWear := make([]uint32, pages)
		for i := 0; i < int(nOps%2048); i++ {
			p := src.Intn(pages)
			dirty := make([]bool, 32)
			for l := range dirty {
				dirty[l] = src.Intn(3) == 0 // ~1/3 of lines dirty
			}
			if _, _, err := a.WriteDirty(p, dirty); err != nil {
				return false
			}
			pageWear[p]++
		}
		for p := 0; p < pages; p++ {
			if a.MaxLineWear(p) > pageWear[p] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteEnergy(t *testing.T) {
	w := DefaultWriteEnergy()
	if w.PageWritePJ(0) != 0 {
		t.Fatal("zero lines should cost zero energy")
	}
	if w.PageWritePJ(32) <= w.PageWritePJ(1) {
		t.Fatal("energy not increasing in lines programmed")
	}
	// DCW saving 31/32 of lines must save the same fraction of energy.
	full := w.PageWritePJ(32)
	one := w.PageWritePJ(1)
	if one/full != 1.0/32 {
		t.Fatalf("energy not linear: %v vs %v", one, full)
	}
}
