// Package rbsg implements region-based Start-Gap with a detector-driven,
// adjustable security level — the defense direction of the paper's
// references [11] (Qureshi et al., HPCA 2011, which couples online
// detection of malicious write streams with faster randomization) and [7]
// (Huang et al., IPDPS 2016, "security-level adjustable dynamic mapping").
//
// Each region runs its own Start-Gap rotation (one spare page per region,
// so a gap movement only blocks that region). The gap interval — the
// security level — adapts online: while the attack detector's alarm is
// raised, rotation accelerates by BoostFactor; when the stream looks
// benign, it relaxes back to the cheap baseline interval. The scheme
// therefore pays Start-Gap's ~1% overhead on benign workloads but
// approaches fast-randomization protection under attack.
//
// The paper's TWL argues this line of defense is reactive — the detector
// must see the attack before the leveler responds. The rbsg tests and the
// Figure-6-style comparisons quantify exactly that gap.
package rbsg

import (
	"fmt"

	"twl/internal/detect"
	"twl/internal/pcm"
	"twl/internal/rng"
	"twl/internal/tables"
	"twl/internal/wl"
)

// Config parameterizes the scheme.
type Config struct {
	// Regions is the number of independent Start-Gap regions; the device
	// page count must be divisible by Regions, and each region donates one
	// page as its gap.
	Regions int
	// BaseGapInterval is the benign-mode gap interval (writes to a region
	// between gap movements). Start-Gap's classic value is 100.
	BaseGapInterval int
	// BoostFactor divides the gap interval while the alarm is active.
	BoostFactor int
	// AlarmShuffleInterval performs one cross-region randomizing swap (two
	// random logical pages exchange physical homes) every this many demand
	// writes while the alarm is active — the "adjustable security level":
	// the randomization domain widens from a region to the whole array
	// under threat. 0 selects 64.
	AlarmShuffleInterval int
	// Detector configuration; zero value selects detect.DefaultConfig over
	// the logical page count.
	Detector detect.Config
	// Seed drives the per-region address randomization.
	Seed uint64
}

// DefaultConfig returns a balanced configuration for a device with pages
// pages.
func DefaultConfig(pages int, seed uint64) Config {
	regions := 8
	if pages/regions < 16 {
		regions = 1
	}
	return Config{
		Regions:              regions,
		BaseGapInterval:      100,
		BoostFactor:          16,
		AlarmShuffleInterval: 64,
		Seed:                 seed,
	}
}

// region is one Start-Gap rotation domain.
type region struct {
	base      int // first physical page
	size      int // physical pages including the gap
	gapLA     int // local logical index owning the gap (== size-1)
	sinceMove int
	ra, rb    int // affine randomization over size-1 logical slots
}

// Scheme is the adaptive region-based Start-Gap wear leveler.
type Scheme struct {
	dev     *pcm.Device // snap: device state is checkpointed by the sim layer
	cfg     Config      // snap: construction input
	rt      *tables.Remap
	regions []region
	det     *detect.Detector
	stats   wl.Stats

	logicalPerRegion int    // snap: derived from geometry at New
	boosted          uint64 // gap moves taken at the boosted rate
	shuffles         uint64 // cross-region randomizing swaps under alarm
	sinceShuffle     int
	src              *rng.Xorshift

	scratch []int // snap: scratch buffer; physical-address batch for WriteSweep
}

var _ wl.Scheme = (*Scheme)(nil)
var _ wl.Checker = (*Scheme)(nil)
var _ wl.RunWriter = (*Scheme)(nil)
var _ wl.SweepWriter = (*Scheme)(nil)

// New builds the scheme over dev.
func New(dev *pcm.Device, cfg Config) (*Scheme, error) {
	if cfg.Regions <= 0 {
		return nil, fmt.Errorf("rbsg: Regions must be positive: %w", wl.ErrBadConfig)
	}
	if dev.Pages()%cfg.Regions != 0 {
		return nil, fmt.Errorf("rbsg: %d regions do not divide %d pages: %w", cfg.Regions, dev.Pages(), wl.ErrBadConfig)
	}
	size := dev.Pages() / cfg.Regions
	if size < 2 {
		return nil, fmt.Errorf("rbsg: regions need at least 2 pages (one is the gap): %w", wl.ErrBadConfig)
	}
	if cfg.BaseGapInterval <= 0 {
		return nil, fmt.Errorf("rbsg: BaseGapInterval must be positive: %w", wl.ErrBadConfig)
	}
	if cfg.BoostFactor < 1 {
		return nil, fmt.Errorf("rbsg: BoostFactor must be >= 1: %w", wl.ErrBadConfig)
	}
	if cfg.AlarmShuffleInterval == 0 {
		cfg.AlarmShuffleInterval = 64
	}
	if cfg.AlarmShuffleInterval < 0 {
		return nil, fmt.Errorf("rbsg: AlarmShuffleInterval must be >= 0: %w", wl.ErrBadConfig)
	}
	dcfg := cfg.Detector
	if dcfg.WindowWrites == 0 {
		dcfg = detect.DefaultConfig(dev.Pages())
		// The detection window is the scheme's reaction latency: it must be
		// far below a page's endurance or the attack wins before the first
		// window closes. Scale it down on low-endurance (scaled) devices.
		meanE := int(dev.TotalEndurance() / uint64(dev.Pages()))
		if limit := meanE / 4; dcfg.WindowWrites > limit {
			dcfg.WindowWrites = limit
			if dcfg.WindowWrites < 256 {
				dcfg.WindowWrites = 256
			}
		}
	}
	det, err := detect.New(dcfg)
	if err != nil {
		return nil, err
	}
	s := &Scheme{
		dev:              dev,
		cfg:              cfg,
		rt:               tables.NewRemap(dev.Pages()),
		det:              det,
		logicalPerRegion: size - 1,
		src:              rng.NewXorshift(cfg.Seed ^ 0x5B5B5B5B),
	}
	src := rng.NewXorshift(cfg.Seed)
	s.regions = make([]region, cfg.Regions)
	for i := range s.regions {
		r := &s.regions[i]
		r.base = i * size
		r.size = size
		r.gapLA = size - 1
		r.ra = pickCoprime(src, size-1)
		r.rb = src.Intn(size - 1)
	}
	return s, nil
}

func pickCoprime(src *rng.Xorshift, n int) int {
	if n <= 2 {
		return 1
	}
	for {
		a := 1 + src.Intn(n-1)
		if gcd(a, n) == 1 {
			return a
		}
	}
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// LogicalPages reports the demand-addressable page count (one page per
// region is the gap).
func (s *Scheme) LogicalPages() int { return s.cfg.Regions * s.logicalPerRegion }

// Name implements wl.Scheme.
func (s *Scheme) Name() string { return "RBSG" }

// locate splits a logical address into region and local randomized slot.
func (s *Scheme) locate(la int) (*region, int) {
	ri := la / s.logicalPerRegion
	local := la % s.logicalPerRegion
	r := &s.regions[ri]
	return r, (r.ra*local + r.rb) % s.logicalPerRegion
}

// interval returns the current gap interval, boosted while the alarm is up.
func (s *Scheme) interval() int {
	if s.det.Alarm() {
		iv := s.cfg.BaseGapInterval / s.cfg.BoostFactor
		if iv < 1 {
			iv = 1
		}
		return iv
	}
	return s.cfg.BaseGapInterval
}

// Write implements wl.Scheme.
func (s *Scheme) Write(la int, tag uint64) wl.Cost {
	cost := wl.Cost{ExtraCycles: wl.ControlCycles + wl.TableCycles}
	s.det.Observe(la)
	r, slot := s.locate(la)
	localLA := r.base + slot // region-local logical index into rt
	pa := s.rt.Phys(localLA)
	s.dev.Write(pa, tag)
	cost.DeviceWrites++
	s.stats.DemandWrites++

	r.sinceMove++
	if r.sinceMove >= s.interval() {
		r.sinceMove = 0
		cost.Add(s.moveGap(r))
		if s.det.Alarm() {
			s.boosted++
		}
	}
	// Widened randomization domain under alarm: relocate the detected-hot
	// address across the whole array, so an attack confined to one region's
	// address range cannot confine its wear to that region's pages.
	if s.det.Alarm() {
		s.sinceShuffle++
		if s.sinceShuffle >= s.cfg.AlarmShuffleInterval {
			s.sinceShuffle = 0
			cost.Add(s.shuffle())
		}
	}
	return cost
}

// eventFreeCost is the uniform per-write cost between events: one device
// write under the table and control path, no gap move, no shuffle.
func eventFreeCost() wl.Cost {
	return wl.Cost{DeviceWrites: 1, ExtraCycles: wl.ControlCycles + wl.TableCycles}
}

// globalHorizon clamps an event-free prefix at the events shared across
// regions: the detector's window close — the only place the alarm, and
// with it the gap interval and shuffle cadence, can change — and, under
// alarm, the next cross-region shuffle (which draws RNG and blocks). The
// window-closing write itself is served through Write: its cost is the
// uniform event-free cost, so bit-identity holds, and the close then runs
// in the per-write path exactly as the serial loop would run it.
func (s *Scheme) globalHorizon(n int) int {
	if h := s.det.WindowHeadroom() - 1; h < n {
		n = h
	}
	if s.det.Alarm() {
		if h := s.cfg.AlarmShuffleInterval - s.sinceShuffle - 1; h < n {
			n = h
		}
	}
	return n
}

// WriteRun implements wl.RunWriter: a same-address run stays on one
// physical page in one region until the next event — the region's gap move,
// the detector's window close, or (under alarm) the cross-region shuffle —
// so the event-free prefix collapses into one bulk device write (WriteN,
// clamping at a mid-run endurance crossing) plus O(1) advances of the
// detector window, the region's gap counter and the shuffle counter. The
// alarm is constant between window closes, which is what makes interval()
// and the shuffle-counter branch loop-invariant.
//
//twl:hotpath
func (s *Scheme) WriteRun(la int, tag uint64, n int) (wl.Cost, int) {
	k := s.globalHorizon(n)
	r, slot := s.locate(la)
	if h := s.interval() - r.sinceMove - 1; h < k {
		k = h
	}
	if k <= 0 {
		return wl.Cost{}, 0
	}
	applied := s.dev.WriteN(s.rt.Phys(r.base+slot), tag, k)
	s.det.ObserveN(la, applied)
	s.stats.DemandWrites += uint64(applied)
	r.sinceMove += applied
	if s.det.Alarm() {
		s.sinceShuffle += applied
	}
	return eventFreeCost(), applied
}

// WriteSweep implements wl.SweepWriter: consecutive logical addresses fan
// out across regions through the per-region affine maps, so the event-free
// prefix resolves into a physical-address batch served by one gather write
// (WriteSeq, clamping at the first endurance crossing; within one sweep the
// mapping bijection keeps the batch's pages distinct, so the clamp point is
// exact). Each touched region contributes its own gap-move horizon: the
// sweep visits a region's addresses consecutively, so the region's write
// count is its overlap with the absorbed prefix.
//
//twl:hotpath
func (s *Scheme) WriteSweep(la int, tag uint64, n int) (wl.Cost, int) {
	k := s.globalHorizon(n)
	iv := s.interval()
	lpr := s.logicalPerRegion
	// Region q first sees the sweep at offset q*lpr-la (clamped to 0) and
	// would fire its gap move iv - sinceMove writes later; the prefix stops
	// strictly before the earliest one. An alarm boost can shrink iv below a
	// region's accumulated sinceMove, but its move still cannot fire before
	// the sweep reaches the region, so the horizon never drops below start.
	for q := la / lpr; q*lpr < la+k; q++ {
		start := q*lpr - la
		if start < 0 {
			start = 0
		}
		h := start + iv - s.regions[q].sinceMove - 1
		if h < start {
			h = start
		}
		if h < k {
			k = h
		}
	}
	if k <= 0 {
		return wl.Cost{}, 0
	}
	buf := wl.Scratch(&s.scratch, k)
	for i := range buf {
		r, slot := s.locate(la + i)
		buf[i] = s.rt.Phys(r.base + slot)
	}
	applied := s.dev.WriteSeq(buf, tag)
	s.det.ObserveRange(la, applied)
	s.stats.DemandWrites += uint64(applied)
	for q := la / lpr; q*lpr < la+applied; q++ {
		start := q*lpr - la
		if start < 0 {
			start = 0
		}
		end := (q+1)*lpr - la
		if end > applied {
			end = applied
		}
		s.regions[q].sinceMove += end - start
	}
	if s.det.Alarm() {
		s.sinceShuffle += applied
	}
	return eventFreeCost(), applied
}

// shuffle relocates the detector's hottest address: its physical home is
// exchanged with that of a random demand page, possibly across regions, so
// a concentrated malicious stream cannot dwell on any page for long.
func (s *Scheme) shuffle() wl.Cost {
	hot, ok := s.det.HottestAddress()
	if !ok || hot < 0 || hot >= s.LogicalPages() {
		return wl.Cost{}
	}
	r, slot := s.locate(hot)
	x := r.base + slot
	y := s.randomDemandIndex()
	if x == y {
		return wl.Cost{}
	}
	px, py := s.rt.Phys(x), s.rt.Phys(y)
	dx, dy := s.dev.Peek(px), s.dev.Peek(py)
	s.dev.Write(px, dy)
	s.dev.Write(py, dx)
	s.rt.SwapLogical(x, y)
	s.stats.Swaps++
	s.stats.SwapWrites += 2
	s.shuffles++
	return wl.Cost{DeviceWrites: 2, DeviceReads: 2, ExtraCycles: wl.TableCycles, Blocked: true}
}

// randomDemandIndex picks a uniformly random internal logical index that is
// not a region's gap owner.
func (s *Scheme) randomDemandIndex() int {
	ri := s.src.Intn(s.cfg.Regions)
	r := &s.regions[ri]
	return r.base + s.src.Intn(r.size-1)
}

// moveGap advances a region's gap by one slot.
func (s *Scheme) moveGap(r *region) wl.Cost {
	gapIdx := r.base + r.gapLA
	gapPA := s.rt.Phys(gapIdx)
	prevPA := gapPA - 1
	if prevPA < r.base {
		prevPA = r.base + r.size - 1
	}
	victim := s.rt.Log(prevPA)
	s.dev.Write(gapPA, s.dev.Peek(prevPA))
	s.rt.SwapLogical(gapIdx, victim)
	s.stats.Swaps++
	s.stats.SwapWrites++
	return wl.Cost{DeviceWrites: 1, DeviceReads: 1, ExtraCycles: wl.TableCycles, Blocked: true}
}

// Read implements wl.Scheme.
func (s *Scheme) Read(la int) (uint64, wl.Cost) {
	s.stats.DemandReads++
	r, slot := s.locate(la)
	pa := s.rt.Phys(r.base + slot)
	return s.dev.Read(pa), wl.Cost{DeviceReads: 1, ExtraCycles: wl.TableCycles}
}

// Stats implements wl.Scheme.
func (s *Scheme) Stats() wl.Stats { return s.stats }

// Device implements wl.Scheme.
func (s *Scheme) Device() *pcm.Device { return s.dev }

// Alarmed reports whether the embedded detector has ever raised the alarm.
func (s *Scheme) Alarmed() bool { return s.det.EverAlarmed() }

// BoostedMoves reports how many gap movements ran at the boosted rate.
func (s *Scheme) BoostedMoves() uint64 { return s.boosted }

// Shuffles reports how many cross-region randomizing swaps have run.
func (s *Scheme) Shuffles() uint64 { return s.shuffles }

// CheckInvariants implements wl.Checker: the remap stays a bijection, each
// region's gap stays physically within its region (the rotation-ring
// precondition; demand pages may shuffle across regions under alarm), and
// wear is conserved.
func (s *Scheme) CheckInvariants() error {
	if err := s.rt.CheckBijection(); err != nil {
		return err
	}
	for i := range s.regions {
		r := &s.regions[i]
		gp := s.rt.Phys(r.base + r.gapLA)
		if gp < r.base || gp >= r.base+r.size {
			return fmt.Errorf("rbsg: region %d gap drifted outside region: %d", i, gp)
		}
	}
	want := s.stats.DemandWrites + s.stats.SwapWrites
	if got := s.dev.TotalWrites(); got != want {
		return fmt.Errorf("rbsg: device writes %d != demand %d + swap %d",
			got, s.stats.DemandWrites, s.stats.SwapWrites)
	}
	return nil
}

func init() {
	wl.Register(wl.Registration{
		Name:  "RBSG",
		Order: 100,
		Doc:   "detector-adaptive region-based Start-Gap (references [7]/[11])",
		New: func(dev *pcm.Device, seed uint64) (wl.Scheme, error) {
			return New(dev, DefaultConfig(dev.Pages(), seed))
		},
	})
}
