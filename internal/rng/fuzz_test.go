package rng

import "testing"

// FuzzFeistelBijection: for any seed, the 16-bit Feistel network must be a
// bijection — the hardware RNG's uniformity argument (Section 4.3) rests on
// the permutation property, not on any particular key schedule. The check
// walks all 65536 inputs and demands 65536 distinct outputs.
func FuzzFeistelBijection(f *testing.F) {
	f.Add(uint64(0))
	f.Add(uint64(1))
	f.Add(uint64(0xDEADBEEFCAFEF00D))
	f.Add(^uint64(0))
	f.Fuzz(func(t *testing.T, seed uint64) {
		fe := NewFeistel(seed)
		var seen [1 << 16]bool
		for v := 0; v < 1<<16; v++ {
			out := fe.Permutation16(uint16(v))
			if seen[out] {
				t.Fatalf("seed %#x: output %#x produced twice (second preimage %#x)", seed, out, v)
			}
			seen[out] = true
		}
	})
}
