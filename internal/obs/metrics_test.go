package obs

import (
	"math"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total")
	const goroutines, per = 16, 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*per {
		t.Fatalf("counter = %d, want %d", got, goroutines*per)
	}
}

func TestGaugeSetAdd(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("test_gauge")
	g.Set(1.5)
	g.Add(2.25)
	if got := g.Value(); got != 3.75 {
		t.Fatalf("gauge = %v, want 3.75", got)
	}
	g.Add(-10)
	if got := g.Value(); got != -6.25 {
		t.Fatalf("gauge = %v, want -6.25", got)
	}
}

func TestGaugeConcurrentAdd(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("test_gauge")
	const goroutines, per = 8, 1000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				g.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := g.Value(); got != goroutines*per {
		t.Fatalf("gauge = %v, want %d", got, goroutines*per)
	}
}

// TestHistogramBucketBoundaries pins the le semantics: a value equal to a
// bound lands in that bound's bucket, a value above every bound lands in
// +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_hist", []float64{10, 20, 40})
	for _, v := range []float64{0, 10, 10.0001, 20, 39.9, 40, 40.5, 1e9} {
		h.Observe(v)
	}
	s := h.Snapshot()
	want := []uint64{2, 2, 2, 2} // {0,10}, {10.0001,20}, {39.9,40}, {40.5,1e9}
	if len(s.Counts) != len(want) {
		t.Fatalf("bucket count %d, want %d", len(s.Counts), len(want))
	}
	for i, c := range s.Counts {
		if c != want[i] {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, c, want[i], s.Counts)
		}
	}
	if s.Count != 8 {
		t.Fatalf("count = %d, want 8", s.Count)
	}
	wantSum := 0 + 10 + 10.0001 + 20 + 39.9 + 40 + 40.5 + 1e9
	if math.Abs(s.Sum-wantSum) > 1e-6 {
		t.Fatalf("sum = %v, want %v", s.Sum, wantSum)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_hist", ExponentialBuckets(1, 2, 8))
	const goroutines, per = 8, 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(g*per+i) / 100)
			}
		}()
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != goroutines*per {
		t.Fatalf("count = %d, want %d", s.Count, goroutines*per)
	}
	var total uint64
	for _, c := range s.Counts {
		total += c
	}
	if total != s.Count {
		t.Fatalf("bucket total %d != count %d", total, s.Count)
	}
}

func TestRegistryGetOrCreateIdentity(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("same", L("x", "1"))
	b := r.Counter("same", L("x", "1"))
	if a != b {
		t.Fatal("same name+labels returned distinct counters")
	}
	c := r.Counter("same", L("x", "2"))
	if a == c {
		t.Fatal("different labels returned the same counter")
	}
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dual")
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	r.Gauge("dual")
}

func TestRegistryInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("invalid name did not panic")
		}
	}()
	r.Counter("bad name with spaces")
}

func TestBucketHelpers(t *testing.T) {
	lin := LinearBuckets(10, 5, 3)
	if lin[0] != 10 || lin[1] != 15 || lin[2] != 20 {
		t.Fatalf("LinearBuckets = %v", lin)
	}
	exp := ExponentialBuckets(250, 2, 4)
	if exp[0] != 250 || exp[3] != 2000 {
		t.Fatalf("ExponentialBuckets = %v", exp)
	}
	def := DefaultLatencyBuckets()
	for i := 1; i < len(def); i++ {
		if def[i] <= def[i-1] {
			t.Fatalf("DefaultLatencyBuckets not increasing: %v", def)
		}
	}
}
