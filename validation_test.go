package twl

import (
	"testing"

	"twl/internal/analytic"
	"twl/internal/sim"
	"twl/internal/trace"
)

// Validation tests cross-check the simulator against the closed-form
// bounds in internal/analytic: where a scheme's behavior has a known limit,
// the simulation must land near it and on the correct side.

// TestValidationNOWLMatchesClosedForm: the simulated NOWL lifetime must
// match the analytic hottest-page bound within a few percent — the same
// machinery that reproduces Table 2's w/o-WL column.
func TestValidationNOWLMatchesClosedForm(t *testing.T) {
	sys := SmallSystem(31)
	dev, err := sys.NewDevice()
	if err != nil {
		t.Fatal(err)
	}
	b, err := BenchmarkByName("canneal")
	if err != nil {
		t.Fatal(err)
	}
	g, err := trace.NewSynthetic(b, sys.Pages, 7)
	if err != nil {
		t.Fatal(err)
	}

	s, err := NewScheme("NOWL", dev, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.RunLifetime(s, sim.FromWorkload(g), sim.LifetimeConfig{})
	if err != nil {
		t.Fatal(err)
	}

	// The analytic bound needs the endurance of the page the hottest
	// address actually lives on — which is the failed page.
	predicted, err := analytic.NoWearLeveling(
		g.HottestShare(),
		float64(dev.Endurance(res.FailedPage)),
		float64(dev.TotalEndurance()),
	)
	if err != nil {
		t.Fatal(err)
	}
	rel := res.Normalized / predicted
	if rel < 0.8 || rel > 1.2 {
		t.Fatalf("simulated %v vs analytic %v (ratio %v)", res.Normalized, predicted, rel)
	}
}

// TestValidationSRBelowUniformBound: Security Refresh can never beat the
// uniform-leveling bound (weakest page), and a healthy configuration lands
// within a factor of two of it.
func TestValidationSRBelowUniformBound(t *testing.T) {
	sys := SmallSystem(32)
	dev, err := sys.NewDevice()
	if err != nil {
		t.Fatal(err)
	}
	s, err := lifetimeScheme("SR", dev, sys.Seed+13, sys)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BenchmarkByName("vips")
	if err != nil {
		t.Fatal(err)
	}
	g, err := trace.NewSynthetic(b, sys.Pages, 9)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.RunLifetime(s, sim.FromWorkload(g), sim.LifetimeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	overhead := float64(res.SwapWrites) / float64(res.DemandWrites)
	bound, err := analytic.UniformLeveling(dev.EnduranceMap(), overhead)
	if err != nil {
		t.Fatal(err)
	}
	if res.Normalized > bound*1.05 {
		t.Fatalf("SR %v beat the uniform bound %v; impossible", res.Normalized, bound)
	}
	if res.Normalized < bound/2.5 {
		t.Fatalf("SR %v far below its bound %v; leveling broken", res.Normalized, bound)
	}
}

// TestValidationTWLBelowPairBound: TWL cannot exceed the pair-capacity
// bound of its own pairing.
func TestValidationTWLBelowPairBound(t *testing.T) {
	sys := SmallSystem(33)
	for _, tc := range []struct {
		scheme string
		pair   func([]uint64) ([]analytic.TossUpPair, error)
	}{
		{"TWL_swp", analytic.PairStrongWeak},
		{"TWL_ap", analytic.PairAdjacent},
	} {
		dev, err := sys.NewDevice()
		if err != nil {
			t.Fatal(err)
		}
		s, err := NewScheme(tc.scheme, dev, 5)
		if err != nil {
			t.Fatal(err)
		}
		b, err := BenchmarkByName("streamcluster")
		if err != nil {
			t.Fatal(err)
		}
		g, err := trace.NewSynthetic(b, sys.Pages, 11)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.RunLifetime(s, sim.FromWorkload(g), sim.LifetimeConfig{})
		if err != nil {
			t.Fatal(err)
		}
		pairs, err := tc.pair(dev.EnduranceMap())
		if err != nil {
			t.Fatal(err)
		}
		bound, err := analytic.TWLPairBound(pairs, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Normalized > bound*1.05 {
			t.Fatalf("%s: %v beat its pair bound %v", tc.scheme, res.Normalized, bound)
		}
		// And the SWP bound itself must dominate the adjacent bound.
		if tc.scheme == "TWL_swp" && bound < 0.9 {
			t.Fatalf("SWP pair bound %v unexpectedly low", bound)
		}
	}
}

// TestValidationSwapRatioMatchesEquation2: the engine's measured swap rate
// under forced consistent traffic must track the paper's Equation 2.
func TestValidationSwapRatioMatchesEquation2(t *testing.T) {
	// Two pages, ratio r = 3 (E_A = 3E_B), consistent traffic (p → 1 after
	// the data settles on the strong page).
	sys := SystemConfig{Pages: 2, PageSize: 4096, MeanEndurance: 1e9, SigmaFraction: 0, Seed: 3}
	dev, err := sys.NewDevice()
	if err != nil {
		t.Fatal(err)
	}
	// Overwrite the endurance spread via a custom device is not possible
	// through SystemConfig (sigma 0 gives equal endurance, r = 1):
	// Equation 2 with r = 1 predicts 1/2 for any p.
	e, err := NewTWL(dev, TWLConfig{Pairing: PairAdjacent, TossUpInterval: 1, Seed: 7, UseFeistel: true})
	if err != nil {
		t.Fatal(err)
	}
	const n = 100000
	for i := 0; i < n; i++ {
		e.Write(0, uint64(i))
	}
	predicted, err := analytic.SwapProbability(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	got := e.Stats().SwapWriteRatio()
	if got < predicted-0.02 || got > predicted+0.02 {
		t.Fatalf("swap ratio %v vs Equation 2 prediction %v", got, predicted)
	}
}
