package wl

// This file is the decorator composition layer. A decorator (metrics
// instrumentation, fault-tolerant page retirement, …) overrides a few Scheme
// methods and forwards the rest — but a naive wrapper struct with an embedded
// Scheme silently sheds every *optional* interface the wrapped scheme
// implements: the composed scheme loses the bulk fast path (RunWriter /
// SweepWriter), checkpointability (Snapshotter) and paranoid-mode invariant
// checks (Checker) without any compile-time or runtime signal. Wrap is the
// one place that knows how to build a wrapper whose method set tracks the
// wrapped scheme's capabilities exactly; Instrument and retire.New both
// build on it instead of hand-rolling type switches.

// base supplies the capabilities every composite carries regardless of what
// the wrapped scheme implements: the logical page count (decorators never
// change the address space, so it forwards to the wrapped scheme with the
// usual whole-device fallback) and the Unwrap link that lets helpers like
// AsCapacityReporter find decorator-specific extension interfaces that the
// composite's fixed method set cannot expose.
type base struct {
	body  Scheme // the decorator implementation Wrap was given
	inner Scheme // the scheme it decorates
}

// LogicalPages reports the demand-addressable page count of the wrapped
// scheme. Schemes that reserve physical pages for themselves (StartGap's
// gap page, SecRef's spare region) expose a smaller logical space; a
// decorator must not widen it back to the device size, or traffic generators
// would address pages the scheme never maps.
func (b base) LogicalPages() int {
	if z, ok := b.inner.(interface{ LogicalPages() int }); ok {
		return z.LogicalPages()
	}
	return b.inner.Device().Pages()
}

// Unwrap returns the scheme this layer decorates — the next layer down the
// stack.
func (b base) Unwrap() Scheme { return b.inner }

// Body returns the decorator implementation behind this composite.
// Composites hide every method outside the Scheme contract and the
// preserved optional interfaces, so extension interfaces a decorator
// defines for itself (for example the retire decorator's CapacityReporter)
// are found by probing Body while walking Unwrap.
func (b base) Body() Scheme { return b.body }

// Wrap composes a decorator body over the scheme it decorates. The result
// forwards the core Scheme interface to body and implements each optional
// interface — Checker, Snapshotter, RunWriter, SweepWriter — exactly when
// inner implements it, using body's implementation when body provides one
// and forwarding to inner otherwise.
//
// The exposure rule is capability-preserving in both directions:
//
//   - nothing is lost: a checkpointable scheme stays checkpointable and a
//     bulk-writing scheme keeps its fast path through any decorator stack;
//   - nothing is invented: a decorator that happens to implement Snapshot
//     does not make a non-checkpointable scheme look checkpointable — the
//     composite suppresses body methods whose capability inner lacks, so
//     sim.RunLifetime's interface probes see the stack's true abilities.
//
// Decorator bodies normally embed inner (as a Scheme field) for default
// forwarding and override the methods they care about; bodies that override
// a bulk method (WriteRun/WriteSweep) must uphold the same bit-identity
// contract as the scheme they wrap, since Wrap exposes the override whenever
// inner has the capability.
func Wrap(body, inner Scheme) Scheme {
	const (
		hasChecker = 1 << iota
		hasSnapshotter
		hasRunWriter
		hasSweepWriter
	)
	b := base{body: body, inner: inner}
	var (
		ck Checker
		sn Snapshotter
		rw RunWriter
		sw SweepWriter
	)
	mask := 0
	if v, ok := inner.(Checker); ok {
		mask |= hasChecker
		ck = v
		if o, ok := body.(Checker); ok {
			ck = o
		}
	}
	if v, ok := inner.(Snapshotter); ok {
		mask |= hasSnapshotter
		sn = v
		if o, ok := body.(Snapshotter); ok {
			sn = o
		}
	}
	if v, ok := inner.(RunWriter); ok {
		mask |= hasRunWriter
		rw = v
		if o, ok := body.(RunWriter); ok {
			rw = o
		}
	}
	if v, ok := inner.(SweepWriter); ok {
		mask |= hasSweepWriter
		sw = v
		if o, ok := body.(SweepWriter); ok {
			sw = o
		}
	}
	// One anonymous composite type per capability combination: the embedded
	// Scheme carries the core contract (served by body), and each embedded
	// optional interface adds exactly the methods the combination grants.
	// Anonymous types keep these composites out of the package's declared
	// type set — they are shapes, not schemes.
	switch mask {
	case 0:
		return struct {
			Scheme
			base
		}{body, b}
	case hasChecker:
		return struct {
			Scheme
			base
			Checker
		}{body, b, ck}
	case hasSnapshotter:
		return struct {
			Scheme
			base
			Snapshotter
		}{body, b, sn}
	case hasChecker | hasSnapshotter:
		return struct {
			Scheme
			base
			Checker
			Snapshotter
		}{body, b, ck, sn}
	case hasRunWriter:
		return struct {
			Scheme
			base
			RunWriter
		}{body, b, rw}
	case hasChecker | hasRunWriter:
		return struct {
			Scheme
			base
			Checker
			RunWriter
		}{body, b, ck, rw}
	case hasSnapshotter | hasRunWriter:
		return struct {
			Scheme
			base
			Snapshotter
			RunWriter
		}{body, b, sn, rw}
	case hasChecker | hasSnapshotter | hasRunWriter:
		return struct {
			Scheme
			base
			Checker
			Snapshotter
			RunWriter
		}{body, b, ck, sn, rw}
	case hasSweepWriter:
		return struct {
			Scheme
			base
			SweepWriter
		}{body, b, sw}
	case hasChecker | hasSweepWriter:
		return struct {
			Scheme
			base
			Checker
			SweepWriter
		}{body, b, ck, sw}
	case hasSnapshotter | hasSweepWriter:
		return struct {
			Scheme
			base
			Snapshotter
			SweepWriter
		}{body, b, sn, sw}
	case hasChecker | hasSnapshotter | hasSweepWriter:
		return struct {
			Scheme
			base
			Checker
			Snapshotter
			SweepWriter
		}{body, b, ck, sn, sw}
	case hasRunWriter | hasSweepWriter:
		return struct {
			Scheme
			base
			RunWriter
			SweepWriter
		}{body, b, rw, sw}
	case hasChecker | hasRunWriter | hasSweepWriter:
		return struct {
			Scheme
			base
			Checker
			RunWriter
			SweepWriter
		}{body, b, ck, rw, sw}
	case hasSnapshotter | hasRunWriter | hasSweepWriter:
		return struct {
			Scheme
			base
			Snapshotter
			RunWriter
			SweepWriter
		}{body, b, sn, rw, sw}
	default: // all four
		return struct {
			Scheme
			base
			Checker
			Snapshotter
			RunWriter
			SweepWriter
		}{body, b, ck, sn, rw, sw}
	}
}

// Unwrapper is the stack-walking link every Wrap composite exposes: Unwrap
// descends to the wrapped scheme, Body exposes the decorator implementation
// whose extension interfaces the composite's fixed method set hides.
type Unwrapper interface {
	Unwrap() Scheme
	Body() Scheme
}
