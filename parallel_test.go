package twl

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
)

// TestDispatchCellsMidGridFailure: when a cell fails, the remaining queued
// cells are dropped — the returned mask must say exactly which cells ran to
// success, so callers never read a zero-valued result slot as a result.
func TestDispatchCellsMidGridFailure(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		const n = 32
		var ran [n]atomic.Bool
		tasks := make([]cellTask, n)
		for i := range tasks {
			i := i
			tasks[i] = cellTask{name: "cell", run: func() error {
				if i == n/2 {
					return boom
				}
				ran[i].Store(true)
				return nil
			}}
		}
		completed, err := dispatchCells(workers, nil, nil, tasks)
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: error %v, want boom", workers, err)
		}
		if len(completed) != n {
			t.Fatalf("workers=%d: mask has %d entries, want %d", workers, len(completed), n)
		}
		// The mask must agree exactly with what actually ran: no false
		// positives (a slot the caller would wrongly trust) and no false
		// negatives (completed work reported as dropped).
		for i := range tasks {
			if completed[i] != ran[i].Load() {
				t.Fatalf("workers=%d: cell %d completed=%v but ran=%v", workers, i, completed[i], ran[i].Load())
			}
		}
		if completed[n/2] {
			t.Fatalf("workers=%d: failed cell marked completed", workers)
		}
		if got := countCompleted(completed); got == n {
			t.Fatalf("workers=%d: all %d cells marked completed despite failure", workers, n)
		}
		// Sequential dispatch additionally guarantees nothing after the
		// failing cell started.
		if workers == 1 {
			for i := n/2 + 1; i < n; i++ {
				if completed[i] {
					t.Fatalf("sequential: cell %d after the failure completed", i)
				}
			}
		}
	}
}

// TestDispatchCellsAllComplete: the success path reports a full mask.
func TestDispatchCellsAllComplete(t *testing.T) {
	tasks := make([]cellTask, 9)
	for i := range tasks {
		tasks[i] = cellTask{name: "ok", run: func() error { return nil }}
	}
	completed, err := dispatchCells(3, nil, nil, tasks)
	if err != nil {
		t.Fatal(err)
	}
	if countCompleted(completed) != len(tasks) {
		t.Fatalf("completed %d/%d on clean grid", countCompleted(completed), len(tasks))
	}
}

// TestGridErrorReportsPartialCount: the experiment entry points surface how
// much of the grid ran before the abort.
func TestGridErrorReportsPartialCount(t *testing.T) {
	sys := SmallSystem(42)
	_, err := RunFig6(sys, Fig6Config{
		Schemes:              []string{"TWL_swp", "no-such-scheme"},
		Modes:                []AttackMode{AttackRepeat},
		BandwidthBytesPerSec: Fig6AttackBandwidth,
	})
	if err == nil {
		t.Fatal("unknown scheme accepted")
	}
	if !strings.Contains(err.Error(), "cells done") {
		t.Fatalf("grid error lacks partial-completion count: %v", err)
	}
}

// TestDispatchCellsStop: once the preemption hook fires, no further tasks
// are handed out, and the partial mask tells the caller exactly what ran.
func TestDispatchCellsStop(t *testing.T) {
	for _, workers := range []int{1, 4} {
		const n = 32
		var served atomic.Int32
		var stopped atomic.Bool
		tasks := make([]cellTask, n)
		for i := range tasks {
			tasks[i] = cellTask{name: "cell", run: func() error {
				if served.Add(1) >= n/4 {
					stopped.Store(true)
				}
				return nil
			}}
		}
		completed, err := dispatchCells(workers, nil, stopped.Load, tasks)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got := countCompleted(completed)
		if got == n {
			t.Fatalf("workers=%d: grid ran to completion despite the stop", workers)
		}
		if int32(got) != served.Load() {
			t.Fatalf("workers=%d: mask says %d completed, runners served %d", workers, got, served.Load())
		}
	}
}
