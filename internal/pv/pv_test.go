package pv

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGenerateGaussianMoments(t *testing.T) {
	cfg := DefaultConfig(100000, 1)
	m, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := Summarize(m)
	if math.Abs(s.Mean-cfg.Mean)/cfg.Mean > 0.01 {
		t.Fatalf("mean %v, want ~%v", s.Mean, cfg.Mean)
	}
	if math.Abs(s.Sigma-cfg.Sigma)/cfg.Sigma > 0.03 {
		t.Fatalf("sigma %v, want ~%v", s.Sigma, cfg.Sigma)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(DefaultConfig(1024, 7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(DefaultConfig(1024, 7))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("maps differ at page %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestGenerateSeedChangesMap(t *testing.T) {
	a, _ := Generate(DefaultConfig(1024, 1))
	b, _ := Generate(DefaultConfig(1024, 2))
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same > len(a)/10 {
		t.Fatalf("different seeds produced %d/%d identical endurance values", same, len(a))
	}
}

func TestGenerateRejectsBadConfig(t *testing.T) {
	cases := []Config{
		{Pages: 0, Mean: 1e8, Sigma: 1e7},
		{Pages: -5, Mean: 1e8, Sigma: 1e7},
		{Pages: 10, Mean: 0, Sigma: 1e7},
		{Pages: 10, Mean: 1e8, Sigma: -1},
		{Pages: 10, Mean: 1e8, Sigma: 1, Model: Model(99)},
	}
	for i, c := range cases {
		if _, err := Generate(c); err == nil {
			t.Errorf("case %d: expected error for %+v", i, c)
		}
	}
}

func TestGenerateAllPositive(t *testing.T) {
	// Even with a huge sigma the generator must clamp at MinEndurance.
	cfg := Config{Pages: 50000, Mean: 100, Sigma: 500, Model: Gaussian, Seed: 3}
	m, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range m {
		if e < MinEndurance {
			t.Fatalf("page %d endurance %d < MinEndurance", i, e)
		}
	}
}

func TestBimodalHasWeakPopulation(t *testing.T) {
	cfg := Config{
		Pages: 50000, Mean: 1e8, Sigma: 0.05e8, Model: Bimodal, Seed: 9,
		WeakFraction: 0.1, WeakScale: 0.5,
	}
	m, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	weak := 0
	for _, e := range m {
		if float64(e) < 0.75*cfg.Mean {
			weak++
		}
	}
	frac := float64(weak) / float64(len(m))
	if frac < 0.05 || frac > 0.15 {
		t.Fatalf("weak page fraction %v, want ~0.10", frac)
	}
}

func TestCorrelatedNeighborsSimilar(t *testing.T) {
	cfg := Config{
		Pages: 65536, Mean: 1e8, Sigma: 0.11e8, Model: Correlated, Seed: 4,
		CorrelationLength: 256,
	}
	m, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Mean absolute difference between adjacent pages should be smaller than
	// between random pairs for a spatially-correlated map.
	adj := 0.0
	for i := 1; i < len(m); i++ {
		adj += math.Abs(float64(m[i]) - float64(m[i-1]))
	}
	adj /= float64(len(m) - 1)
	far := 0.0
	half := len(m) / 2
	for i := 0; i < half; i++ {
		far += math.Abs(float64(m[i]) - float64(m[i+half]))
	}
	far /= float64(half)
	if adj >= far {
		t.Fatalf("adjacent diff %v not smaller than far diff %v; map not correlated", adj, far)
	}
}

func TestScale(t *testing.T) {
	m := []uint64{100, 200, 0x7FFFFFFF}
	s := Scale(m, 0.5)
	want := []uint64{50, 100, 0x3FFFFFFF}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("Scale[%d] = %d, want %d", i, s[i], want[i])
		}
	}
	// Scaling to ~zero clamps at MinEndurance.
	z := Scale([]uint64{10}, 0.0001)
	if z[0] != MinEndurance {
		t.Fatalf("Scale clamp = %d, want %d", z[0], MinEndurance)
	}
}

func TestScalePreservesOrderProperty(t *testing.T) {
	// Property: scaling preserves the relative order of endurance values
	// (up to equal values), which is what strong-weak pairing depends on.
	check := func(seed uint64) bool {
		m, err := Generate(DefaultConfig(256, seed))
		if err != nil {
			return false
		}
		s := Scale(m, 1e-4)
		for i := 0; i < len(m); i++ {
			for j := i + 1; j < len(m); j++ {
				if m[i] < m[j] && s[i] > s[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Pages != 0 || s.Mean != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestSummarizeKnownValues(t *testing.T) {
	s := Summarize([]uint64{2, 4, 6})
	if s.Min != 2 || s.Max != 6 {
		t.Fatalf("min/max = %d/%d, want 2/6", s.Min, s.Max)
	}
	if s.Mean != 4 {
		t.Fatalf("mean = %v, want 4", s.Mean)
	}
	want := math.Sqrt(8.0 / 3.0)
	if math.Abs(s.Sigma-want) > 1e-12 {
		t.Fatalf("sigma = %v, want %v", s.Sigma, want)
	}
}

func TestModelString(t *testing.T) {
	if Gaussian.String() != "gaussian" || Correlated.String() != "correlated" || Bimodal.String() != "bimodal" {
		t.Fatal("Model.String mismatch")
	}
	if Model(42).String() == "" {
		t.Fatal("unknown model string empty")
	}
}
