package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// NVMainReader parses traces in the format of the NVMain simulator the
// paper connects gem5 to ("cycle op address data [threadID]", with the op
// R or W and the address a hex byte address). Only the op and the address
// matter for wear simulation; byte addresses fold to page numbers.
//
// Example line:
//
//	125 W 0x2ae5d63000 3f3f3f3f3f3f3f3f 0
type NVMainReader struct {
	s        *bufio.Scanner
	pageSize uint64
	line     int
}

// NewNVMainReader reads NVMain-format traces from r, folding byte
// addresses into pages of pageSize bytes.
func NewNVMainReader(r io.Reader, pageSize int) (*NVMainReader, error) {
	if pageSize <= 0 {
		return nil, fmt.Errorf("trace: pageSize must be positive, got %d", pageSize)
	}
	return &NVMainReader{s: bufio.NewScanner(r), pageSize: uint64(pageSize)}, nil
}

// Read returns the next record (addresses are page numbers), or io.EOF.
func (n *NVMainReader) Read() (Record, error) {
	for n.s.Scan() {
		n.line++
		line := strings.TrimSpace(n.s.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "NVMV") {
			// NVMain traces may start with a version header ("NVMV1").
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			return Record{}, fmt.Errorf("trace: nvmain line %d: want >= 3 fields, got %q", n.line, line)
		}
		var op Op
		switch fields[1] {
		case "R", "r":
			op = Read
		case "W", "w":
			op = Write
		default:
			return Record{}, fmt.Errorf("trace: nvmain line %d: unknown op %q", n.line, fields[1])
		}
		addrField := strings.TrimPrefix(strings.ToLower(fields[2]), "0x")
		addr, err := strconv.ParseUint(addrField, 16, 64)
		if err != nil {
			return Record{}, fmt.Errorf("trace: nvmain line %d: bad address: %v", n.line, err)
		}
		return Record{Op: op, Addr: addr / n.pageSize}, nil
	}
	if err := n.s.Err(); err != nil {
		return Record{}, err
	}
	return Record{}, io.EOF
}

// ReadAll drains the reader into a slice (convenience for sim.FromTrace).
func (n *NVMainReader) ReadAll() ([]Record, error) {
	var recs []Record
	for {
		r, err := n.Read()
		if err == io.EOF {
			return recs, nil
		}
		if err != nil {
			return nil, err
		}
		recs = append(recs, r)
	}
}
