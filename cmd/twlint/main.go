// Command twlint is the project's static-analysis suite. It machine-checks
// the contracts the simulator's correctness claims rest on but the compiler
// cannot see (DESIGN.md "Static contracts"):
//
//   - determinism: simulation packages must not read wall clocks
//     (time.Now/time.Since outside internal/clock), draw from the global
//     math/rand source, or leak map iteration order into results.
//   - registry: every internal/wl/<name> package exporting a scheme must
//     register it with wl.Register, and every bulk writer
//     (wl.RunWriter/wl.SweepWriter) must expose wl.Checker — bulk shortcuts
//     are only trusted when they can be invariant-checked.
//   - cost: call sites must not silently discard a returned wl.Cost or
//     error in non-test code; dropped costs corrupt Figure 9, dropped
//     errors hide failures.
//   - locks: structs carrying sync or sync/atomic state must not be copied
//     by value, and a field accessed through sync/atomic must not also be
//     accessed as a plain variable.
//   - snapshot: every field of a type declaring a Snapshot(io.Writer) error
//     method must be written by Snapshot (checkpointed) or carry a snap:
//     comment explaining its exemption — unpersisted mutable state breaks
//     the bit-identical-resume guarantee.
//   - decorator: a named struct type embedding the wl.Scheme interface that
//     declares its own Write must implement every optional capability
//     interface (wl.Checker/wl.Snapshotter/wl.RunWriter/wl.SweepWriter) —
//     otherwise the embedded scheme's promoted methods serve those paths
//     without the decorator's interception.
//
// Built entirely on the stdlib go/ast, go/parser, go/token and go/types
// packages (module policy: no external dependencies). Usage:
//
//	go run ./cmd/twlint [-json] [-allow twlint.allow] ./...
//
// Exit status 1 when findings remain after allowlist filtering; the
// allowlist file grants the few sanctioned exceptions (see ParseAllowlist
// for the format).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array (CI mode)")
	allowPath := flag.String("allow", "twlint.allow", "allowlist file; empty disables")
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	var allow *Allowlist
	if *allowPath != "" {
		var err error
		allow, err = ParseAllowlist(*allowPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "twlint: %v\n", err)
			os.Exit(2)
		}
	}

	diags, err := Run(patterns, allow)
	if err != nil {
		fmt.Fprintf(os.Stderr, "twlint: %v\n", err)
		os.Exit(2)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(os.Stderr, "twlint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// Run loads the packages matching patterns and applies every analyzer,
// returning the allowlist-filtered findings in stable order.
func Run(patterns []string, allow *Allowlist) ([]Diagnostic, error) {
	l := newLoader()
	pkgs, err := l.Load(patterns)
	if err != nil {
		return nil, err
	}
	return runAnalyzers(l, pkgs, allow)
}

// runAnalyzers applies the suite to already-loaded packages.
func runAnalyzers(l *loader, pkgs []*Package, allow *Allowlist) ([]Diagnostic, error) {
	w, err := newWorld(l, pkgs, allow)
	if err != nil {
		return nil, err
	}
	var diags []Diagnostic
	for _, a := range analyzers {
		for _, p := range pkgs {
			diags = append(diags, a.run(p, w)...)
		}
	}
	sortDiags(diags)
	return diags, nil
}

// newWorld resolves the cross-package context: the imported view of the wl
// contract package. Fixture runs that never touch wl-dependent analyzers
// still resolve it — the module always contains it.
func newWorld(l *loader, pkgs []*Package, allow *Allowlist) (*world, error) {
	wlPkg, err := l.imp.Import(wlPath)
	if err != nil {
		return nil, fmt.Errorf("importing %s: %v", wlPath, err)
	}
	return &world{pkgs: pkgs, allow: allow, wl: wlPkg}, nil
}
