# Tier-1 verification (referenced from ROADMAP.md): formatting, static
# analysis (go vet plus the project's own twlint suite), build, the full
# race-enabled test suite and a single-iteration benchmark smoke (catches
# bit-rot in the hot-loop benchmarks without spending benchmark time).
.PHONY: check fmt vet lint budget build test bench benchsmoke bigbench bigbenchsmoke fuzzsmoke servesmoke

check: fmt vet lint build test benchsmoke

fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	go vet ./...

# Project-specific static contracts (determinism, registry, cost accounting,
# locks/atomics, concurrency discipline, hotpath allocation budget) — see
# DESIGN.md "Static contracts". Exceptions live in twlint.allow (strict: a
# stale entry is itself a finding); the hotpath escape-analysis budget lives
# in twlint.budget.
lint:
	go run ./cmd/twlint -budget twlint.budget ./...

# Regenerate the hotpath allocation budget and fail when it drifts from the
# committed file — run after intentionally changing a //twl:hotpath function
# and commit the result.
budget:
	go run ./cmd/twlint -update-budget -budget twlint.budget ./...
	git diff --exit-code -- twlint.budget

build:
	go build ./...

test:
	go test -race ./...

benchsmoke:
	go test ./internal/sim -run '^$$' -bench FastForward -benchtime=1x

# Hot-loop benchmark: full lifetime runs through the fast-forward path vs
# the per-write path over every registered scheme × attack (repeat, scan and
# the paper's inconsistent attack), plus the per-scheme bytes-per-page
# footprint audit on both storage widths, written to BENCH_PR9.json. The
# benchcmp step then diffs both paths and the footprints against the
# committed PR 7 baseline; it reports regressions but is non-fatal here
# (wall-clock noise across machines is not a failure — the committed
# trajectory is what reviews judge; footprint diffs are deterministic).
bench:
	go run ./cmd/benchff -out BENCH_PR9.json
	-go run ./cmd/benchcmp BENCH_PR7.json BENCH_PR9.json

# Full-geometry validation: the paper's 32 GB device (8Mi pages, 4 ranks x
# 32 banks) against the inconsistent attack, sharded one-per-bank with an
# exact deterministic merge, at scaled endurance. Completes in minutes;
# BIGBENCH.json is the committed artifact of record. The smoke variant runs
# a 65536-page geometry through the identical code path in seconds (CI).
bigbench:
	go run ./cmd/bigbench -out BIGBENCH.json

bigbenchsmoke:
	go run ./cmd/bigbench -pages 65536 -endurance 3000 -out BIGBENCH_CI.json

# Service crash-safety end-to-end: boot twlsimd, submit a grid over HTTP,
# SIGKILL the daemon mid-cell, restart it on the same state directory and
# verify the job completes from the surviving checkpoints and that an
# identical resubmission is a pure cache hit. Mirrors resume_check.sh at
# the service layer.
servesmoke:
	./scripts/serve_check.sh

# Short fuzz pass over every fuzz target (CI runs this; locally useful
# before touching the trace readers, the Feistel network or the remap table).
fuzzsmoke:
	go test ./internal/trace -run '^$$' -fuzz FuzzTextReader -fuzztime 10s
	go test ./internal/trace -run '^$$' -fuzz FuzzBinaryReader -fuzztime 10s
	go test ./internal/trace -run '^$$' -fuzz FuzzNVMainReader -fuzztime 10s
	go test ./internal/trace -run '^$$' -fuzz FuzzBinaryRoundTrip -fuzztime 10s
	go test ./internal/rng -run '^$$' -fuzz FuzzFeistelBijection -fuzztime 10s
	go test ./internal/tables -run '^$$' -fuzz FuzzRemapBijection -fuzztime 10s
	go test ./internal/core -run '^$$' -fuzz FuzzEventHorizon -fuzztime 10s
	go test ./internal/wl/od3p -run '^$$' -fuzz FuzzEventHorizonOD3P -fuzztime 10s
	go test ./internal/wl/rbsg -run '^$$' -fuzz FuzzEventHorizonRBSG -fuzztime 10s
	go test ./internal/sim -run '^$$' -fuzz FuzzCheckpointResume -fuzztime 10s
