package od3p

import (
	"testing"

	"twl/internal/pcm"
	"twl/internal/rng"
	"twl/internal/wl"
	"twl/internal/wl/wltest"
)

func build(tb testing.TB, seed uint64) wl.Scheme {
	s, err := New(wltest.NewDevice(tb, 256, seed), DefaultConfig())
	if err != nil {
		tb.Fatal(err)
	}
	return s
}

func TestConformance(t *testing.T) {
	wltest.Run(t, build)
}

func TestValidation(t *testing.T) {
	dev := wltest.NewDevice(t, 8, 1)
	if _, err := New(dev, Config{MaxHosted: 0}); err == nil {
		t.Fatal("zero MaxHosted accepted")
	}
}

func fixedDevice(t *testing.T, endurance []uint64) *pcm.Device {
	t.Helper()
	geom := pcm.Geometry{Pages: len(endurance), PageSize: 4096, LineSize: 128, Ranks: 1, Banks: 1}
	dev, err := pcm.NewDevice(geom, pcm.DefaultTiming(), endurance)
	if err != nil {
		t.Fatal(err)
	}
	return dev
}

// TestSurvivesFirstFailure: after the weak page fails, its owner keeps
// working (reads return the latest data) and the write stress moves to the
// strongest healthy page.
func TestSurvivesFirstFailure(t *testing.T) {
	dev := fixedDevice(t, []uint64{3, 1000, 2000, 4000})
	s, err := New(dev, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Exhaust page 0 (endurance 3).
	for i := 0; i < 3; i++ {
		s.Write(0, uint64(100+i))
	}
	if _, failed := dev.Failed(); !failed {
		t.Fatal("setup: page 0 should have failed")
	}
	// Further writes to la 0 must succeed and read back correctly.
	s.Write(0, 999)
	if v, _ := s.Read(0); v != 999 {
		t.Fatalf("post-failure Read(0) = %d, want 999", v)
	}
	if s.Pairings() != 1 {
		t.Fatalf("pairings = %d, want 1", s.Pairings())
	}
	// The partner must be the strongest page (endurance 4000 = page 3) and
	// its own owner's data must be intact.
	s.Write(3, 777)
	if v, _ := s.Read(3); v != 777 {
		t.Fatalf("partner's own data clobbered: %d", v)
	}
	if v, _ := s.Read(0); v != 999 {
		t.Fatalf("relocated data lost after partner write: %d", v)
	}
	// Wear for la 0's writes lands on page 3.
	if dev.Wear(3) < 2 {
		t.Fatalf("partner wear %d; stress not redirected", dev.Wear(3))
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestRepairsAfterPartnerFailure: when a partner dies, a fresh one takes
// over and data survives the chain.
func TestRepairsAfterPartnerFailure(t *testing.T) {
	// Endurances chosen so the first partner (the strongest page) also
	// wears out, forcing a re-pairing.
	dev := fixedDevice(t, []uint64{2, 5, 6, 7})
	s, err := New(dev, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		s.Write(0, uint64(i))
		if s.Exhausted() {
			break
		}
	}
	if s.Pairings() < 2 {
		t.Fatalf("pairings = %d, want a re-pairing after partner death", s.Pairings())
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestHostingLimit: with MaxHosted 1, two failed pages get distinct
// partners.
func TestHostingLimit(t *testing.T) {
	dev := fixedDevice(t, []uint64{2, 2, 1000, 900})
	s, err := New(dev, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		s.Write(0, 1)
		s.Write(1, 2)
	}
	if s.buddy[0] == s.buddy[1] {
		t.Fatalf("both failed pages share partner %d despite MaxHosted 1", s.buddy[0])
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestExhaustion: when every page is dead or hosting, the scheme reports
// exhaustion instead of hiding it.
func TestExhaustion(t *testing.T) {
	dev := fixedDevice(t, []uint64{2, 2, 4, 4})
	s, err := New(dev, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	src := rng.NewXorshift(1)
	for i := 0; i < 200 && !s.Exhausted(); i++ {
		s.Write(src.Intn(4), uint64(i))
	}
	if !s.Exhausted() {
		t.Fatal("exhaustion never reported on a 4-page array with tiny endurance")
	}
	if s.CapacityLost() == 0 {
		t.Fatal("capacity loss not reported")
	}
}

// TestGracefulDegradationBeatsFirstFailureMetric: OD3P keeps serving far
// more demand writes after the first failure than before it — the whole
// point of the scheme.
func TestGracefulDegradationBeatsFirstFailureMetric(t *testing.T) {
	end, err := pcmEndurance(256, 2000, 7)
	if err != nil {
		t.Fatal(err)
	}
	dev := fixedDevice(t, end)
	s, err := New(dev, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Concentrated traffic: 16 hot pages wear out early while the rest of
	// the array stays healthy — the regime OD3P is built for.
	src := rng.NewXorshift(9)
	firstFailure := uint64(0)
	var total uint64
	for total = 0; total < 5_000_000; total++ {
		s.Write(src.Intn(16), total)
		if _, failed := dev.Failed(); failed && firstFailure == 0 {
			firstFailure = total
		}
		if s.CapacityLost() > 0.25 {
			break
		}
	}
	if firstFailure == 0 {
		t.Fatal("no failure occurred")
	}
	if total < 2*firstFailure {
		t.Fatalf("served only %d writes vs first failure at %d; no graceful degradation",
			total, firstFailure)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// pcmEndurance builds a Gaussian endurance map without importing pv in
// every test (thin wrapper for readability).
func pcmEndurance(pages int, mean float64, seed uint64) ([]uint64, error) {
	g := rng.NewGaussian(rng.NewXorshift(seed))
	out := make([]uint64, pages)
	for i := range out {
		v := g.Sample(mean, 0.11*mean)
		if v < 1 {
			v = 1
		}
		out[i] = uint64(v)
	}
	return out, nil
}
