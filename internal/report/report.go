// Package report renders the experiment outputs as fixed-width text tables
// and ASCII series, matching the rows/columns of the paper's tables and the
// data series of its figures.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row; cells beyond the header count are dropped, missing
// cells render empty.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.headers))
	for i := 0; i < len(t.headers) && i < len(cells); i++ {
		row[i] = cells[i]
	}
	t.rows = append(t.rows, row)
}

// AddRowf appends a row of formatted values: each value is rendered with
// %v for strings/ints and %.4g for floats.
func (t *Table) AddRowf(values ...interface{}) {
	cells := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			cells[i] = fmt.Sprintf("%.4g", x)
		case float32:
			cells[i] = fmt.Sprintf("%.4g", x)
		default:
			cells[i] = fmt.Sprintf("%v", v)
		}
	}
	t.AddRow(cells...)
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// Render writes the table to w.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		b.WriteString(t.title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	total := 0
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total+2*(len(widths)-1)))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Render(&b) // strings.Builder never errors
	return b.String()
}

// Series renders a labeled data series as an ASCII bar chart — the textual
// analogue of the paper's figure panels.
type Series struct {
	title  string
	labels []string
	values []float64
	unit   string
}

// NewSeries creates a series with a title and a value unit suffix.
func NewSeries(title, unit string) *Series {
	return &Series{title: title, unit: unit}
}

// Add appends one labeled value.
func (s *Series) Add(label string, value float64) {
	s.labels = append(s.labels, label)
	s.values = append(s.values, value)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.values) }

// Render writes the chart to w; bars scale to maxWidth characters.
func (s *Series) Render(w io.Writer, maxWidth int) error {
	if maxWidth <= 0 {
		maxWidth = 40
	}
	maxVal := 0.0
	maxLabel := 0
	for i, v := range s.values {
		if v > maxVal {
			maxVal = v
		}
		if len(s.labels[i]) > maxLabel {
			maxLabel = len(s.labels[i])
		}
	}
	var b strings.Builder
	if s.title != "" {
		b.WriteString(s.title)
		b.WriteByte('\n')
	}
	for i, v := range s.values {
		bar := 0
		if maxVal > 0 {
			bar = int(v / maxVal * float64(maxWidth))
		}
		fmt.Fprintf(&b, "%-*s | %s %.4g%s\n",
			maxLabel, s.labels[i], strings.Repeat("#", bar), v, s.unit)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the chart to a string with a 40-character bar width.
func (s *Series) String() string {
	var b strings.Builder
	_ = s.Render(&b, 40) // strings.Builder never errors
	return b.String()
}
