package rbsg

import (
	"io"

	"twl/internal/snap"
)

// Snapshot implements wl.Snapshotter: the remap table, each region's
// rotation progress (the affine randomization keys are construction
// inputs), the embedded attack detector, the shuffle RNG position, the
// adaptive-security counters and the stats.
func (s *Scheme) Snapshot(w io.Writer) error {
	if err := s.rt.Snapshot(w); err != nil {
		return err
	}
	sw := snap.NewWriter(w)
	for i := range s.regions {
		sw.Int(s.regions[i].sinceMove)
	}
	sw.U64(s.boosted)
	sw.U64(s.shuffles)
	sw.Int(s.sinceShuffle)
	if err := sw.Err(); err != nil {
		return err
	}
	if err := s.det.Snapshot(w); err != nil {
		return err
	}
	if err := s.src.Snapshot(w); err != nil {
		return err
	}
	return s.stats.Snapshot(w)
}

// Restore implements wl.Snapshotter.
func (s *Scheme) Restore(r io.Reader) error {
	if err := s.rt.Restore(r); err != nil {
		return err
	}
	sr := snap.NewReader(r)
	for i := range s.regions {
		s.regions[i].sinceMove = sr.Int()
	}
	s.boosted = sr.U64()
	s.shuffles = sr.U64()
	s.sinceShuffle = sr.Int()
	if err := sr.Err(); err != nil {
		return err
	}
	if err := s.det.Restore(r); err != nil {
		return err
	}
	if err := s.src.Restore(r); err != nil {
		return err
	}
	return s.stats.Restore(r)
}
