package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// formatFloat renders a float the way Prometheus clients do: shortest exact
// representation, +Inf for the overflow bucket bound.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteText renders a human-readable metrics report, one series per line in
// registration order; histograms expand into per-bucket lines.
func (r *Registry) WriteText(w io.Writer) error {
	ms, help := r.snapshot()
	if _, err := fmt.Fprintf(w, "metrics report (%d series)\n", len(ms)); err != nil {
		return err
	}
	width := 0
	for _, m := range ms {
		if n := len(seriesKey(m.name, m.labels)); n > width {
			width = n
		}
	}
	lastHelped := ""
	for _, m := range ms {
		key := seriesKey(m.name, m.labels)
		if h := help[m.name]; h != "" && m.name != lastHelped {
			if _, err := fmt.Fprintf(w, "# %s\n", h); err != nil {
				return err
			}
			lastHelped = m.name
		}
		var err error
		switch m.kind {
		case kindCounter:
			_, err = fmt.Fprintf(w, "%-*s  %d\n", width, key, m.counter.Value())
		case kindGauge:
			_, err = fmt.Fprintf(w, "%-*s  %s\n", width, key, formatFloat(m.gauge.Value()))
		case kindHistogram:
			s := m.histogram.Snapshot()
			mean := 0.0
			if s.Count > 0 {
				mean = s.Sum / float64(s.Count)
			}
			if _, err = fmt.Fprintf(w, "%-*s  count=%d sum=%s mean=%.1f\n",
				width, key, s.Count, formatFloat(s.Sum), mean); err != nil {
				return err
			}
			err = writeTextBuckets(w, s)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// writeTextBuckets renders a histogram's buckets with proportional bars.
func writeTextBuckets(w io.Writer, s HistogramSnapshot) error {
	var max uint64
	for _, c := range s.Counts {
		if c > max {
			max = c
		}
	}
	for i, c := range s.Counts {
		bound := "+Inf"
		if i < len(s.Bounds) {
			bound = formatFloat(s.Bounds[i])
		}
		bar := ""
		if max > 0 {
			bar = strings.Repeat("#", int(c*40/max))
		}
		if _, err := fmt.Fprintf(w, "    le %-10s %10d  %s\n", bound, c, bar); err != nil {
			return err
		}
	}
	return nil
}

// jsonMetric is the JSON export shape of one series.
type jsonMetric struct {
	Name   string            `json:"name"`
	Kind   string            `json:"kind"`
	Labels map[string]string `json:"labels,omitempty"`
	Help   string            `json:"help,omitempty"`

	// Counter/gauge value.
	Value *float64 `json:"value,omitempty"`

	// Histogram fields.
	Count   *uint64      `json:"count,omitempty"`
	Sum     *float64     `json:"sum,omitempty"`
	Buckets []jsonBucket `json:"buckets,omitempty"`
}

// jsonBucket is one histogram bucket; the +Inf bucket sets Inf instead of
// LE because JSON has no infinity literal.
type jsonBucket struct {
	LE    float64 `json:"le,omitempty"`
	Inf   bool    `json:"inf,omitempty"`
	Count uint64  `json:"count"`
}

// WriteJSON renders the registry as a JSON array of series in registration
// order.
func (r *Registry) WriteJSON(w io.Writer) error {
	ms, help := r.snapshot()
	out := make([]jsonMetric, 0, len(ms))
	for _, m := range ms {
		jm := jsonMetric{Name: m.name, Kind: m.kind.String(), Help: help[m.name]}
		if len(m.labels) > 0 {
			jm.Labels = map[string]string{}
			for _, l := range m.labels {
				jm.Labels[l.Key] = l.Value
			}
		}
		switch m.kind {
		case kindCounter:
			v := float64(m.counter.Value())
			jm.Value = &v
		case kindGauge:
			v := m.gauge.Value()
			jm.Value = &v
		case kindHistogram:
			s := m.histogram.Snapshot()
			jm.Count = &s.Count
			jm.Sum = &s.Sum
			for i, c := range s.Counts {
				b := jsonBucket{Count: c}
				if i < len(s.Bounds) {
					b.LE = s.Bounds[i]
				} else {
					b.Inf = true
				}
				jm.Buckets = append(jm.Buckets, b)
			}
		}
		out = append(out, jm)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// promEscape escapes a label value for the exposition format.
func promEscape(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// promLabels renders a label set (plus an optional extra label) in
// exposition syntax; empty set renders as "".
func promLabels(labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	parts := make([]string, len(all))
	for i, l := range all {
		parts[i] = fmt.Sprintf("%s=%q", l.Key, promEscape(l.Value))
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): HELP/TYPE headers followed by one sample per line,
// histograms expanded into cumulative _bucket/_sum/_count series. Series are
// sorted by name so all samples of a metric family are contiguous.
func (r *Registry) WritePrometheus(w io.Writer) error {
	ms, help := r.snapshot()
	sorted := append([]*metric(nil), ms...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].name < sorted[j].name })
	lastName := ""
	for _, m := range sorted {
		if m.name != lastName {
			if h := help[m.name]; h != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.name, h); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.name, m.kind); err != nil {
				return err
			}
			lastName = m.name
		}
		var err error
		switch m.kind {
		case kindCounter:
			_, err = fmt.Fprintf(w, "%s%s %d\n", m.name, promLabels(m.labels), m.counter.Value())
		case kindGauge:
			_, err = fmt.Fprintf(w, "%s%s %s\n", m.name, promLabels(m.labels), formatFloat(m.gauge.Value()))
		case kindHistogram:
			err = writePromHistogram(w, m)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func writePromHistogram(w io.Writer, m *metric) error {
	s := m.histogram.Snapshot()
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		le := "+Inf"
		if i < len(s.Bounds) {
			le = formatFloat(s.Bounds[i])
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			m.name, promLabels(m.labels, L("le", le)), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n",
		m.name, promLabels(m.labels), formatFloat(s.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", m.name, promLabels(m.labels), s.Count)
	return err
}
