// Package fixsnap exercises the snapshot analyzer: persisted types (those
// declaring a Snapshot(io.Writer) error method) whose fields are variously
// written by Snapshot, exempted with snap: comments, reached through helper
// methods — or silently dropped (the findings).
package fixsnap

import (
	"encoding/binary"
	"io"
)

// Ring is a persisted type with full coverage: every field is either
// written by Snapshot or carries a snap: exemption. Clean.
type Ring struct {
	buf  []uint64
	head int
	size int // snap: derived from len(buf) at construction
}

// Snapshot writes the ring's mutable state.
func (r *Ring) Snapshot(w io.Writer) error {
	if err := binary.Write(w, binary.LittleEndian, r.buf); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, int64(r.head))
}

// Leaky drops a field: wear is persisted, hot is not and has no snap:
// comment. Finding on hot.
type Leaky struct {
	wear []uint64
	hot  int
}

// Snapshot forgets the hot field.
func (l *Leaky) Snapshot(w io.Writer) error {
	return binary.Write(w, binary.LittleEndian, l.wear)
}

// Split covers its fields through a helper method on the same type: the
// analyzer follows the call. Clean.
type Split struct {
	a uint64
	b uint64
}

// Snapshot delegates the actual encoding.
func (s *Split) Snapshot(w io.Writer) error { return s.encode(w) }

func (s *Split) encode(w io.Writer) error {
	if err := binary.Write(w, binary.LittleEndian, s.a); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, s.b)
}

// NotPersisted has no Snapshot method at all: out of scope, no findings
// even though nothing covers its field.
type NotPersisted struct {
	scratch []byte
}

// Sink has a Snapshot method with the wrong shape (no error result), so it
// is not a persisted type. No findings.
type Sink struct {
	n int
}

// Snapshot here is an unrelated method that happens to share the name.
func (s *Sink) Snapshot(w io.Writer) int {
	_, _ = w.Write([]byte{byte(s.n)})
	return s.n
}

// Doc-comment exemptions count too; stale is dropped without one. Finding
// on stale only.
type Mixed struct {
	// snap: rebuilt from cur on Restore
	cache map[int]int
	cur   []int
	stale bool
}

// Snapshot persists only cur.
func (m *Mixed) Snapshot(w io.Writer) error {
	for _, v := range m.cur {
		if err := binary.Write(w, binary.LittleEndian, int64(v)); err != nil {
			return err
		}
	}
	return nil
}
