package sim

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"twl/internal/attack"
	"twl/internal/core"
	"twl/internal/obs"
	"twl/internal/trace"
	"twl/internal/wl"
	"twl/internal/wl/wltest"
	"twl/internal/wl/wrl"

	// Populate the default registry with every scheme so the differential
	// test sweeps all of them (core and wrl register via the named imports).
	_ "twl/internal/wl/bwl"
	_ "twl/internal/wl/od3p"
	_ "twl/internal/wl/rbsg"
	_ "twl/internal/wl/secref"
	_ "twl/internal/wl/startgap"
)

// runWriters lists the schemes that must implement the fast-forward writer
// interfaces; every other registered scheme must not, and takes the
// per-request fallback. The deterministic schemes compute their event
// horizon directly; TWL (all pairings), WRL, OD3P and RBSG are event-sparse
// — RNG draws, pairings, gap moves, shuffles and phase transitions only
// fire at countable boundaries — so they absorb the stretches between
// events and fall back for the events themselves. With OD3P and RBSG on
// board the registry has no per-write-only scheme left.
var runWriters = map[string]bool{
	"NOWL":     true,
	"StartGap": true,
	"BWL":      true,
	"SR":       true,
	"SR2":      true,
	"TWL_swp":  true,
	"TWL_ap":   true,
	"TWL_rand": true,
	"WRL":      true,
	"OD3P":     true,
	"RBSG":     true,
}

const (
	diffPages     = 256
	diffEndurance = 3000
	diffSeed      = 7
)

// diffTrace builds a replay trace with same-address write bursts of varying
// lengths, interleaved reads (including read runs), and raw addresses beyond
// the page range (exercising the FromTrace folding).
func diffTrace() []trace.Record {
	var recs []trace.Record
	for i := 0; i < 48; i++ {
		addr := uint64(i*37 + i%3*1000)
		for j := 0; j < i%7+1; j++ {
			recs = append(recs, trace.Record{Op: trace.Write, Addr: addr})
		}
		if i%3 == 0 {
			for j := 0; j < i%4+1; j++ {
				recs = append(recs, trace.Record{Op: trace.Read, Addr: addr + 5})
			}
		}
	}
	return recs
}

// diffSource builds the request source for one differential run, sized to
// the scheme's demand-addressable space (schemes with spare gap pages serve
// fewer logical pages than the device holds).
func diffSource(t *testing.T, kind string, pages int) Source {
	t.Helper()
	switch kind {
	case "repeat", "scan", "inconsistent":
		mode := attack.Repeat
		switch kind {
		case "scan":
			mode = attack.Scan
		case "inconsistent":
			mode = attack.Inconsistent
		}
		st, err := attack.New(attack.DefaultConfig(mode, pages, diffSeed))
		if err != nil {
			t.Fatal(err)
		}
		return FromAttack(st)
	case "trace":
		src, err := FromTrace(diffTrace(), pages)
		if err != nil {
			t.Fatal(err)
		}
		return src
	}
	t.Fatalf("unknown source kind %q", kind)
	return nil
}

// demandPages returns the scheme's logical page count (LogicalPages when
// the scheme reserves spare pages, the device size otherwise).
func demandPages(s wl.Scheme) int {
	if z, ok := s.(interface{ LogicalPages() int }); ok {
		return z.LogicalPages()
	}
	return s.Device().Pages()
}

// metricsJSON renders the registry as JSON with the twl_ff_* and twl_ckpt_*
// series removed: twl_ff_* describes the simulator's own fast-path chunking
// (the per-write path never creates it, and checkpoint-cadence clamping
// legitimately reshapes it), and twl_ckpt_* describes the checkpoint
// machinery itself. Neither is part of the bit-identity contract.
// Everything else — request counters, latency histograms, run aggregates —
// must match exactly.
func metricsJSON(t *testing.T, reg *obs.Registry) string {
	t.Helper()
	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var series []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &series); err != nil {
		t.Fatal(err)
	}
	kept := series[:0]
	for _, s := range series {
		name, _ := s["name"].(string)
		if !strings.HasPrefix(name, "twl_ff_") && !strings.HasPrefix(name, "twl_ckpt_") {
			kept = append(kept, s)
		}
	}
	out, err := json.Marshal(kept)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// diffRun executes one lifetime run and captures everything comparable:
// the result, the full wear and payload maps, device totals, the metrics
// registry rendering, and the trace event log.
type diffRun struct {
	res         LifetimeResult
	wear        []uint64
	payload     []uint64
	writes      uint64
	reads       uint64
	metricsText string
	traceText   string
}

// schemeFactory builds a fresh scheme over a fresh device; the registry
// rows and the hand-built TWL/WRL variants share the differential harness
// through it.
type schemeFactory func(t *testing.T) wl.Scheme

// registryFactory adapts a registered scheme name to a schemeFactory.
func registryFactory(name string) schemeFactory {
	return func(t *testing.T) wl.Scheme {
		t.Helper()
		dev := wltest.NewDeviceEndurance(t, diffPages, diffEndurance, diffSeed)
		s, err := wl.Default.New(name, dev, diffSeed)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
}

func diffRunOne(t *testing.T, build schemeFactory, kind string, disableFF bool) diffRun {
	t.Helper()
	s := build(t)
	dev := s.Device()
	reg := obs.NewRegistry()
	var traceBuf bytes.Buffer
	tr := obs.NewTracer(&traceBuf, 1000)
	res, err := RunLifetime(s, diffSource(t, kind, demandPages(s)), LifetimeConfig{
		MaxDemandWrites:    3 * dev.TotalEndurance(),
		CheckEvery:         977,
		Metrics:            reg,
		Trace:              tr,
		DisableFastForward: disableFF,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
	out := diffRun{
		res:         res,
		wear:        make([]uint64, dev.Pages()),
		payload:     make([]uint64, dev.Pages()),
		writes:      dev.TotalWrites(),
		reads:       dev.TotalReads(),
		metricsText: metricsJSON(t, reg),
		traceText:   traceBuf.String(),
	}
	for pp := 0; pp < dev.Pages(); pp++ {
		out.wear[pp] = dev.Wear(pp)
		out.payload[pp] = dev.Peek(pp)
	}
	return out
}

// diffCompare runs one configuration through both paths and requires
// bit-identical observables: the LifetimeResult struct, the per-page wear
// map, the per-page payload tags, device totals, the rendered metrics
// registry (minus the fast-path-only twl_ff_* diagnostics), and the emitted
// trace events.
func diffCompare(t *testing.T, build schemeFactory, kind string) {
	t.Helper()
	slow := diffRunOne(t, build, kind, true)
	fast := diffRunOne(t, build, kind, false)

	if fast.res != slow.res {
		t.Errorf("LifetimeResult differs:\nfast: %+v\nslow: %+v", fast.res, slow.res)
	}
	if slow.res.Capped && slow.res.DemandWrites == 0 {
		t.Fatal("slow run served no writes; differential test is vacuous")
	}
	for pp := range slow.wear {
		if fast.wear[pp] != slow.wear[pp] {
			t.Fatalf("wear[%d]: fast %d, slow %d", pp, fast.wear[pp], slow.wear[pp])
		}
		if fast.payload[pp] != slow.payload[pp] {
			t.Fatalf("payload[%d]: fast %d, slow %d", pp, fast.payload[pp], slow.payload[pp])
		}
	}
	if fast.writes != slow.writes || fast.reads != slow.reads {
		t.Errorf("device totals differ: fast %d/%d, slow %d/%d",
			fast.writes, fast.reads, slow.writes, slow.reads)
	}
	if fast.metricsText != slow.metricsText {
		t.Errorf("metrics registry differs:\nfast:\n%s\nslow:\n%s", fast.metricsText, slow.metricsText)
	}
	if fast.traceText != slow.traceText {
		t.Errorf("trace events differ:\nfast:\n%s\nslow:\n%s", fast.traceText, slow.traceText)
	}
}

// TestFastForwardImplementers pins which schemes opt into the fast path, so
// an accidental interface change (or a per-write-probabilistic scheme
// gaining a bogus WriteRun) fails loudly.
func TestFastForwardImplementers(t *testing.T) {
	for _, name := range wl.Names() {
		dev := wltest.NewDeviceEndurance(t, diffPages, diffEndurance, diffSeed)
		s, err := wl.Default.New(name, dev, diffSeed)
		if err != nil {
			t.Fatal(err)
		}
		_, isRun := s.(wl.RunWriter)
		if isRun != runWriters[name] {
			t.Errorf("%s: RunWriter = %v, want %v", name, isRun, runWriters[name])
		}
		if _, isSweep := s.(wl.SweepWriter); isSweep && !runWriters[name] {
			t.Errorf("%s: implements SweepWriter but is not a fast-forward scheme", name)
		}
	}
}

// TestFastForwardDifferential runs every registered scheme against the
// repeat attack, the scan attack, a bursty RLE trace replay, and the
// feedback-driven inconsistent attack through both the fast-forward and the
// per-request paths, and requires bit-identical observables (see
// diffCompare). With OD3P and RBSG implementing the writers the matrix has
// no per-write-only cell left; the inconsistent column additionally proves
// that deferred feedback delivery (sim.FeedbackObserver) keeps the
// attacker's swap-phase detection — and hence every reversal — bit-aligned
// with the serial stream.
func TestFastForwardDifferential(t *testing.T) {
	for _, name := range wl.Names() {
		for _, kind := range []string{"repeat", "scan", "trace", "inconsistent"} {
			t.Run(name+"/"+kind, func(t *testing.T) {
				diffCompare(t, registryFactory(name), kind)
			})
		}
	}
}

// twlFactory builds a hand-configured TWL engine variant.
func twlFactory(cfg func(seed uint64) core.Config) schemeFactory {
	return func(t *testing.T) wl.Scheme {
		t.Helper()
		dev := wltest.NewDeviceEndurance(t, diffPages, diffEndurance, diffSeed)
		e, err := core.New(dev, cfg(diffSeed))
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
}

// TestFastForwardDifferentialTWLVariants extends the matrix across the
// dimensions the registry rows don't reach: every pairing under the
// xorshift alpha source (the registry uses Feistel), the toss-up interval
// at the 7-bit WCT wrap (tables.MaxInterval, where the firing condition is
// the wrap to zero rather than the >= interval compare), interval 1 (every
// write is a toss-up — the fast path must absorb nothing), and the
// inter-pair swap disabled and at its most aggressive setting.
func TestFastForwardDifferentialTWLVariants(t *testing.T) {
	variants := []struct {
		name string
		cfg  func(seed uint64) core.Config
	}{
		{"swp_xorshift", func(seed uint64) core.Config {
			c := core.DefaultConfig(seed)
			c.UseFeistel = false
			return c
		}},
		{"ap_xorshift", func(seed uint64) core.Config {
			c := core.DefaultConfig(seed)
			c.Pairing = core.Adjacent
			c.UseFeistel = false
			return c
		}},
		{"rand_xorshift", func(seed uint64) core.Config {
			c := core.DefaultConfig(seed)
			c.Pairing = core.Random
			c.UseFeistel = false
			return c
		}},
		{"interval_wrap128", func(seed uint64) core.Config {
			c := core.DefaultConfig(seed)
			c.TossUpInterval = 128 // == tables.MaxInterval: fires on the WCT wrap to zero
			return c
		}},
		{"interval_1", func(seed uint64) core.Config {
			c := core.DefaultConfig(seed)
			c.TossUpInterval = 1 // every write tosses: absorbed must stay 0
			return c
		}},
		{"ips_disabled", func(seed uint64) core.Config {
			c := core.DefaultConfig(seed)
			c.InterPairSwapInterval = 0
			return c
		}},
		{"ips_1_xorshift", func(seed uint64) core.Config {
			c := core.DefaultConfig(seed)
			c.InterPairSwapInterval = 1 // every write inter-pair swaps
			c.UseFeistel = false
			return c
		}},
	}
	for _, v := range variants {
		for _, kind := range []string{"repeat", "scan", "trace", "inconsistent"} {
			t.Run(v.name+"/"+kind, func(t *testing.T) {
				diffCompare(t, twlFactory(v.cfg), kind)
			})
		}
	}
}

// TestFastForwardDifferentialWRLVariants covers WRL configurations beyond
// the registered default: a short prediction window (events every few dozen
// writes, so event handling dominates), a long running phase, and a partial
// swap cap (the displaced-assignment path in swapPhase).
func TestFastForwardDifferentialWRLVariants(t *testing.T) {
	wrlFactory := func(cfg wrl.Config) schemeFactory {
		return func(t *testing.T) wl.Scheme {
			t.Helper()
			dev := wltest.NewDeviceEndurance(t, diffPages, diffEndurance, diffSeed)
			s, err := wrl.New(dev, cfg)
			if err != nil {
				t.Fatal(err)
			}
			return s
		}
	}
	variants := []struct {
		name string
		cfg  wrl.Config
	}{
		{"short_prediction", wrl.Config{PredictionWrites: 37, RunningMultiplier: 3, MaxSwapFraction: 1.0}},
		{"long_running", wrl.Config{PredictionWrites: 256, RunningMultiplier: 40, MaxSwapFraction: 1.0}},
		{"partial_swap", wrl.Config{PredictionWrites: 128, RunningMultiplier: 5, MaxSwapFraction: 0.25}},
	}
	for _, v := range variants {
		for _, kind := range []string{"repeat", "scan", "trace", "inconsistent"} {
			t.Run(v.name+"/"+kind, func(t *testing.T) {
				diffCompare(t, wrlFactory(v.cfg), kind)
			})
		}
	}
}

// TestFastForwardMetrics pins the fast-path diagnostics themselves: a
// fast-forward run of a bulk-writer scheme must report its chunking (every
// absorbed chunk observed in twl_ff_run_length, every event write counted
// in twl_ff_events_total), and the two views must tile the run exactly —
// histogram count × observations + events == demand writes.
func TestFastForwardMetrics(t *testing.T) {
	s := registryFactory("TWL_swp")(t)
	reg := obs.NewRegistry()
	res, err := RunLifetime(s, diffSource(t, "repeat", demandPages(s)), LifetimeConfig{
		MaxDemandWrites: 3 * s.Device().TotalEndurance(),
		Metrics:         reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	label := obs.L("scheme", s.Name())
	hist := reg.Histogram("twl_ff_run_length", obs.ExponentialBuckets(1, 4, 11), label).Snapshot()
	events := reg.Counter("twl_ff_events_total", label).Value()
	if hist.Count == 0 {
		t.Fatal("no fast-path chunks observed for TWL_swp under repeat")
	}
	if events == 0 {
		t.Fatal("no event writes counted; the toss-up interval guarantees some")
	}
	if got := uint64(hist.Sum) + events; got != res.DemandWrites {
		t.Errorf("chunked %v + events %d = %d, want demand writes %d",
			hist.Sum, events, got, res.DemandWrites)
	}
}
