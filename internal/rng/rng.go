// Package rng provides the deterministic random-number sources used by the
// wear-leveling schemes and the simulator.
//
// Two families are provided:
//
//   - Xorshift: a fast 64-bit xorshift* generator used by the simulator,
//     trace generators and attacks.
//   - Feistel: an 8-bit Feistel-network generator, the hardware RNG the
//     paper budgets at fewer than 128 logic gates (Section 5.4). The TWL
//     engine uses it by default so the reproduction exercises the same
//     component the paper synthesizes.
//
// All sources are seedable and fully deterministic so every experiment in
// this repository is reproducible bit-for-bit.
package rng

// Source is the minimal interface the wear-leveling engines need: a stream
// of uniform 64-bit values plus convenience derivations. All methods must be
// deterministic given the seed.
type Source interface {
	// Uint64 returns the next value in the stream.
	Uint64() uint64
	// Float64 returns a uniform value in [0, 1).
	Float64() float64
	// Intn returns a uniform value in [0, n). It panics if n <= 0.
	Intn(n int) int
	// Seed resets the stream to a state derived from seed.
	Seed(seed uint64)
}

// Xorshift is a xorshift64* generator (Marsaglia / Vigna). It passes the
// basic equidistribution checks in this package's tests and is the default
// software source for simulation infrastructure.
type Xorshift struct {
	state uint64
}

// NewXorshift returns a generator seeded with seed.
func NewXorshift(seed uint64) *Xorshift {
	x := &Xorshift{}
	x.Seed(seed)
	return x
}

// Seed resets the generator. A zero seed is remapped to a fixed non-zero
// constant because the all-zero state is a fixed point of xorshift.
func (x *Xorshift) Seed(seed uint64) {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	// Scramble the seed with splitmix64 so consecutive seeds yield
	// uncorrelated streams.
	x.state = splitmix64(seed)
	if x.state == 0 {
		x.state = 1
	}
}

// Uint64 returns the next 64-bit value.
func (x *Xorshift) Uint64() uint64 {
	s := x.state
	s ^= s >> 12
	s ^= s << 25
	s ^= s >> 27
	x.state = s
	return s * 0x2545F4914F6CDD1D
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (x *Xorshift) Float64() float64 {
	return float64(x.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n).
func (x *Xorshift) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	// Lemire-style rejection-free multiply-shift is fine here: the bias for
	// n << 2^64 is far below anything the simulations can detect.
	return int(x.Uint64() % uint64(n))
}

// splitmix64 is the finalizer of the SplitMix64 generator, used as a seed
// scrambler.
func splitmix64(z uint64) uint64 {
	z += 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Split returns a new independent source derived from the current state.
// The parent stream advances by one value.
func (x *Xorshift) Split() *Xorshift {
	return NewXorshift(x.Uint64())
}
