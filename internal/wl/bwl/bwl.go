// Package bwl implements Bloom-filter based dynamic wear leveling
// (Yun et al., DATE 2012) — "BWL" in the paper's figures, its
// state-of-the-art PV-aware baseline.
//
// Instead of a full write-number table, BWL approximates write intensity
// with Bloom filters and classifies addresses against dynamic thresholds:
//
//   - Hot rotation: a counting Bloom filter estimates per-address write
//     counts; every MoveThreshold writes to an address, the address is
//     re-placed onto the candidate page with the most remaining life. This
//     is the wear-*rate* leveling core of the scheme: sustained traffic
//     rotates across pages in proportion to what they can still absorb
//     instead of pinning to one page.
//   - Cold detection: a small ring of membership Bloom filters covers the
//     last few epochs; an address absent from all of them — silent for
//     several full epochs — is classified cold and demoted onto a weak
//     page, reserving strong pages for hot data.
//
// Demotion is where the prediction-trusting nature of the scheme lives:
// once an address is classified cold, the classification is trusted for a
// long stretch of that address's own writes (ColdTrustWrites) before the
// scheme reconsiders — re-sorting on every write is exactly what the Bloom
// filters exist to avoid, and at full scale the reaction latency of the
// epoch machinery is comparable to a page's endurance. This trust is the
// vulnerability the paper's inconsistent-write attack exploits (Section
// 3.2): present a distribution that parks a target address on the weakest
// page, then hammer it — the writes land before the scheme reconsiders
// (Figure 6 shows BWL's PCM dying in ~98 s).
package bwl

import (
	"fmt"
	"io"

	"twl/internal/bloom"
	"twl/internal/pcm"
	"twl/internal/rng"
	"twl/internal/snap"
	"twl/internal/tables"
	"twl/internal/wl"
)

// Config parameterizes BWL.
type Config struct {
	// EpochWrites is the aging period: every EpochWrites demand writes the
	// count estimates are halved and the epoch membership filters rotate.
	EpochWrites int
	// FilterSlots is the counting-Bloom size (slots); FilterHashes the hash
	// count for all filters.
	FilterSlots  int
	FilterHashes int
	// MoveThreshold is how many writes an address accumulates before it is
	// re-placed onto a fresher page. 0 derives it from the device endurance
	// (1/16 of the mean), keeping the per-page deposit quantum small
	// relative to endurance at any simulation scale.
	MoveThreshold int
	// CandidateProbes bounds how many placement candidates are examined per
	// swap decision (hardware examines a short list, not the whole array).
	CandidateProbes int
	// ColdTrustWrites is how many of its own writes a demoted address must
	// absorb before the scheme reconsiders the cold classification. 0
	// derives it from the device endurance (half the mean) — the
	// reaction-latency scaling discussed in the package comment.
	ColdTrustWrites int
	// Seed drives tie-breaking and candidate sampling.
	Seed uint64
}

// DefaultConfig returns parameters scaled to the device size.
func DefaultConfig(pages int, seed uint64) Config {
	// ~16 bits/slots per page keep the false-positive rates of the
	// membership filters and the count-min collisions negligible at one
	// active address per page.
	slots := 16 * pages
	if slots < 16384 {
		slots = 16384
	}
	return Config{
		EpochWrites:     4 * pages,
		FilterSlots:     slots,
		FilterHashes:    4,
		CandidateProbes: 8,
		Seed:            seed,
	}
}

// Scheme is a Bloom-filter based wear leveler.
type Scheme struct {
	dev *pcm.Device // snap: device state is checkpointed by the sim layer
	cfg Config      // snap: construction input
	rt  *tables.Remap
	cbf *bloom.Counting // write-count estimates (hot-rotation approximation)
	// seen is a ring of membership filters, one per recent epoch; an
	// address in none of them has been silent for silenceEpochs epochs.
	seen    [silenceEpochs]*bloom.Filter
	seenIdx int
	src     *rng.Xorshift
	stats   wl.Stats

	epochLeft  int
	promotions int

	// sinceMove[la] counts la's writes since its last re-placement; at
	// moveThresh the address rotates to a fresher page. (Hardware
	// approximates this counter with the counting Bloom filter and its
	// dynamic threshold; the exact counter keeps the reproduction
	// deterministic without changing the behavior being modeled.)
	sinceMove  []uint32
	moveThresh uint32 // snap: derived from config/endurance at New

	// coldLock[la] counts how many more of la's own writes the cold
	// classification is trusted for; re-placement is suppressed while > 0.
	coldLock []uint32
	trust    uint32 // snap: derived from config/endurance at New
	// epochs counts completed epochs; cold classification needs a full
	// silence window of history, since before that every address looks
	// "silent".
	epochs       int
	byStrength   []int // snap: derived from the endurance map at New; physical pages sorted by descending endurance
	strongCursor int
	weakCursor   int
	medianEnd    uint64 // snap: derived from the endurance map at New
	totalEnd     uint64 // snap: derived from the endurance map at New
}

// silenceEpochs is how many consecutive epochs an address must go unwritten
// to be classified cold. It must exceed the longest benign inter-burst gap
// of warm data, or warm addresses get demoted (and their weak pages ground
// down); four epochs is comfortably beyond the burst cadence of the
// calibrated workloads while still catching the attack's frozen targets.
const silenceEpochs = 4

// New builds a BWL scheme over dev.
func New(dev *pcm.Device, cfg Config) (*Scheme, error) {
	if cfg.EpochWrites <= 0 {
		return nil, fmt.Errorf("bwl: EpochWrites must be positive: %w", wl.ErrBadConfig)
	}
	if cfg.MoveThreshold < 0 {
		return nil, fmt.Errorf("bwl: MoveThreshold must be >= 0: %w", wl.ErrBadConfig)
	}
	if cfg.CandidateProbes <= 0 {
		return nil, fmt.Errorf("bwl: CandidateProbes must be positive: %w", wl.ErrBadConfig)
	}
	if cfg.ColdTrustWrites < 0 {
		return nil, fmt.Errorf("bwl: ColdTrustWrites must be >= 0: %w", wl.ErrBadConfig)
	}
	cbf, err := bloom.NewCounting(cfg.FilterSlots, cfg.FilterHashes)
	if err != nil {
		return nil, err
	}
	newFilter := func() (*bloom.Filter, error) { return bloom.NewFilter(cfg.FilterSlots, cfg.FilterHashes) }
	var seen [silenceEpochs]*bloom.Filter
	for i := range seen {
		if seen[i], err = newFilter(); err != nil {
			return nil, err
		}
	}
	asc := wl.SortByEndurance(dev.EnduranceMap())
	desc := make([]int, len(asc))
	for i, p := range asc {
		desc[len(asc)-1-i] = p
	}
	meanEnd := dev.TotalEndurance() / uint64(dev.Pages())
	trust := uint32(cfg.ColdTrustWrites)
	if trust == 0 {
		t := meanEnd / 2
		if t > 1<<31 {
			t = 1 << 31
		}
		trust = uint32(t)
		if trust < 1 {
			trust = 1
		}
	}
	moveThresh := uint32(cfg.MoveThreshold)
	if moveThresh == 0 {
		m := meanEnd / 5
		if m > 1<<31 {
			m = 1 << 31
		}
		moveThresh = uint32(m)
		if moveThresh < 1 {
			moveThresh = 1
		}
	}
	return &Scheme{
		dev:        dev,
		cfg:        cfg,
		rt:         tables.NewRemap(dev.Pages()),
		cbf:        cbf,
		seen:       seen,
		src:        rng.NewXorshift(cfg.Seed),
		epochLeft:  cfg.EpochWrites,
		sinceMove:  make([]uint32, dev.Pages()),
		moveThresh: moveThresh,
		coldLock:   make([]uint32, dev.Pages()),
		trust:      trust,
		byStrength: desc,
		medianEnd:  dev.Endurance(asc[len(asc)/2]),
		totalEnd:   dev.TotalEndurance(),
	}, nil
}

// Name implements wl.Scheme.
func (s *Scheme) Name() string { return "BWL" }

// Write implements wl.Scheme.
func (s *Scheme) Write(la int, tag uint64) wl.Cost {
	// Every write probes the filters and walks the hot/cold candidate
	// list — "two bloom filters and a cold-hot list are accessed during
	// every write" is exactly the per-write overhead Figure 9 charges BWL.
	cost := wl.Cost{
		ExtraCycles: wl.ControlCycles +
			2*s.cfg.FilterHashes*wl.TableCycles + // counting CBF + epoch filters
			s.cfg.CandidateProbes*wl.TableCycles, // cold-hot list maintenance
	}
	key := uint64(la)
	wasSilent := s.epochs >= silenceEpochs
	if wasSilent {
		for _, f := range s.seen {
			if f.Contains(key) {
				wasSilent = false
				break
			}
		}
	}
	s.cbf.Add(key)
	s.seen[s.seenIdx].Add(key)
	if s.coldLock[la] > 0 {
		s.coldLock[la]--
	}
	s.sinceMove[la]++

	pa := s.rt.Phys(la)
	switch {
	case s.sinceMove[la] >= s.moveThresh && s.coldLock[la] == 0:
		// The address has accumulated a full deposit quantum: rotate it
		// onto the candidate page with the most remaining life. A
		// cold-classified address is not reconsidered until its trust
		// window expires — the scheme believes it will not be written.
		if target, ok := s.pickStrong(pa); ok {
			cost.Add(s.swap(la, s.rt.Log(target)))
			pa = s.rt.Phys(la)
			s.promotions++
		}
		s.sinceMove[la] = 0
	case wasSilent && s.dev.Endurance(pa) > s.medianEnd:
		// Cold address (silent for the whole silence window) on a strong
		// page: demote onto a weak page, freeing the strong one, and trust
		// the classification for the next trust-window of its writes.
		if target, ok := s.pickWeak(pa); ok {
			cost.Add(s.swap(la, s.rt.Log(target)))
			pa = s.rt.Phys(la)
			s.coldLock[la] = s.trust
			s.sinceMove[la] = 0
		}
	}

	s.dev.Write(pa, tag)
	cost.DeviceWrites++
	s.stats.DemandWrites++

	s.epochLeft--
	if s.epochLeft <= 0 {
		s.epochLeft = s.cfg.EpochWrites
		s.epochs++
		s.cbf.Halve()
		s.seenIdx = (s.seenIdx + 1) % silenceEpochs
		s.seen[s.seenIdx].Reset()
	}
	return cost
}

// WriteRun implements wl.RunWriter. BWL's per-write state machine is
// deterministic between events, so the distance to the next event is exact:
// the move trigger fires at the write that both lifts sinceMove[la] to
// MoveThreshold and exhausts coldLock[la], and the epoch rotates at the
// write that drains epochLeft. A cold-silent first write may probe the
// demotion path (which mutates the weak-candidate cursor even on failure),
// so it is never absorbed — the caller serves it with a normal Write.
//
// The bulk update replays exactly what the absorbed writes would have done:
// count-min and membership filter inserts (AddN keeps even the internal add
// counters aligned), the coldLock decrements, the sinceMove and epochLeft
// advances, and the device writes (WriteN clamps at a mid-run failure, in
// which case every side effect uses the clamped count, matching a per-write
// path that stops at the failing write).
//
//twl:hotpath
func (s *Scheme) WriteRun(la int, tag uint64, n int) (wl.Cost, int) {
	key := uint64(la)
	if s.epochs >= silenceEpochs {
		silent := true
		for _, f := range s.seen {
			if f.Contains(key) {
				silent = false
				break
			}
		}
		if silent && s.dev.Endurance(s.rt.Phys(la)) > s.medianEnd {
			return wl.Cost{}, 0
		}
	}
	// First write that triggers a re-placement: sinceMove must reach the
	// threshold and the cold trust window must be exhausted.
	jMove := int64(s.moveThresh) - int64(s.sinceMove[la])
	if cl := int64(s.coldLock[la]); cl > jMove {
		jMove = cl
	}
	if jMove < 1 {
		jMove = 1
	}
	k := int(jMove) - 1
	if e := s.epochLeft - 1; e < k {
		k = e
	}
	if k > n {
		k = n
	}
	if k <= 0 {
		return wl.Cost{}, 0
	}
	applied := s.dev.WriteN(s.rt.Phys(la), tag, k)
	s.cbf.AddN(key, applied)
	s.seen[s.seenIdx].AddN(key, applied)
	if cl := s.coldLock[la]; cl > 0 {
		dec := uint32(applied)
		if dec > cl {
			dec = cl
		}
		s.coldLock[la] = cl - dec
	}
	s.sinceMove[la] += uint32(applied)
	s.stats.DemandWrites += uint64(applied)
	s.epochLeft -= applied
	return wl.Cost{
		DeviceWrites: 1,
		ExtraCycles: wl.ControlCycles +
			2*s.cfg.FilterHashes*wl.TableCycles +
			s.cfg.CandidateProbes*wl.TableCycles,
	}, applied
}

// pickStrong returns a physical page to promote onto: the first of up to
// CandidateProbes candidates from the endurance ranking with meaningfully
// more remaining life than the current page, whose occupant is neither hot
// nor a trusted-cold resident. Early in life the static strong pages
// qualify; as they deplete, the remaining-endurance test steers hot data
// onto whichever pages still have headroom.
func (s *Scheme) pickStrong(current int) (int, bool) {
	n := len(s.byStrength)
	best := -1
	var bestRemaining uint64
	for probe := 0; probe < s.cfg.CandidateProbes; probe++ {
		cand := s.byStrength[s.strongCursor%n]
		s.strongCursor++
		if s.strongCursor >= n {
			s.strongCursor = 0
		}
		if cand == current {
			continue
		}
		occupant := s.rt.Log(cand)
		if s.coldLock[occupant] > 0 {
			continue
		}
		if r := s.dev.Remaining(cand); r > bestRemaining {
			best, bestRemaining = cand, r
		}
	}
	// Half-quantum hysteresis prevents rotation ping-pong between two
	// nearly identical pages while still letting the hottest address move
	// on after every deposit quantum.
	if best >= 0 && bestRemaining > s.dev.Remaining(current)+uint64(s.moveThresh)/2 {
		return best, true
	}
	return 0, false
}

// pickWeak returns a weak physical page to demote onto: a page from the
// bottom quarter of the (static, manufacturer-tested) endurance ranking
// whose occupant is not itself a trusted-cold resident — successive
// demotions therefore rotate across the weak tier rather than piling onto
// one page. Placement is purely prediction-driven: the scheme believes the
// incoming data is cold, so the target's wear state is not consulted.
func (s *Scheme) pickWeak(current int) (int, bool) {
	total := len(s.byStrength)
	n := total / 4
	if n < 2 {
		n = total
	}
	for probe := 0; probe < s.cfg.CandidateProbes; probe++ {
		cand := s.byStrength[total-1-(s.weakCursor%n)]
		s.weakCursor++
		if s.weakCursor >= n {
			s.weakCursor = 0
		}
		if cand == current {
			continue
		}
		occupant := s.rt.Log(cand)
		if s.coldLock[occupant] > 0 {
			continue
		}
		if s.dev.Endurance(cand) < s.dev.Endurance(current) {
			return cand, true
		}
	}
	return 0, false
}

// swap exchanges the physical pages of two logical addresses: two page
// writes (plus migration reads), blocking demand traffic.
func (s *Scheme) swap(la1, la2 int) wl.Cost {
	pa1, pa2 := s.rt.Phys(la1), s.rt.Phys(la2)
	d1, d2 := s.dev.Peek(pa1), s.dev.Peek(pa2)
	s.dev.Write(pa1, d2)
	s.dev.Write(pa2, d1)
	s.rt.SwapLogical(la1, la2)
	s.stats.Swaps++
	s.stats.SwapWrites += 2
	return wl.Cost{
		DeviceWrites: 2,
		DeviceReads:  2,
		ExtraCycles:  2 * wl.TableCycles,
		Blocked:      true,
	}
}

// Read implements wl.Scheme.
func (s *Scheme) Read(la int) (uint64, wl.Cost) {
	s.stats.DemandReads++
	return s.dev.Read(s.rt.Phys(la)), wl.Cost{DeviceReads: 1, ExtraCycles: wl.TableCycles}
}

// Stats implements wl.Scheme.
func (s *Scheme) Stats() wl.Stats { return s.stats }

// Device implements wl.Scheme.
func (s *Scheme) Device() *pcm.Device { return s.dev }

// CheckInvariants implements wl.Checker.
func (s *Scheme) CheckInvariants() error {
	if err := s.rt.CheckBijection(); err != nil {
		return err
	}
	want := s.stats.DemandWrites + s.stats.SwapWrites
	if got := s.dev.TotalWrites(); got != want {
		return fmt.Errorf("bwl: device writes %d != demand %d + swap %d",
			got, s.stats.DemandWrites, s.stats.SwapWrites)
	}
	return nil
}

// Snapshot implements wl.Snapshotter: the remap table, both Bloom
// structures, the epoch machinery, the per-address counters, the
// tie-breaking RNG position, the placement cursors and the stats.
func (s *Scheme) Snapshot(w io.Writer) error {
	if err := s.rt.Snapshot(w); err != nil {
		return err
	}
	if err := s.cbf.Snapshot(w); err != nil {
		return err
	}
	for _, f := range s.seen {
		if err := f.Snapshot(w); err != nil {
			return err
		}
	}
	sw := snap.NewWriter(w)
	sw.Int(s.seenIdx)
	sw.Int(s.epochLeft)
	sw.Int(s.promotions)
	sw.U32s(s.sinceMove)
	sw.U32s(s.coldLock)
	sw.Int(s.epochs)
	sw.Int(s.strongCursor)
	sw.Int(s.weakCursor)
	if err := sw.Err(); err != nil {
		return err
	}
	if err := s.src.Snapshot(w); err != nil {
		return err
	}
	return s.stats.Snapshot(w)
}

// Restore implements wl.Snapshotter.
func (s *Scheme) Restore(r io.Reader) error {
	if err := s.rt.Restore(r); err != nil {
		return err
	}
	if err := s.cbf.Restore(r); err != nil {
		return err
	}
	for _, f := range s.seen {
		if err := f.Restore(r); err != nil {
			return err
		}
	}
	sr := snap.NewReader(r)
	s.seenIdx = sr.Int()
	s.epochLeft = sr.Int()
	s.promotions = sr.Int()
	sr.U32sInto(s.sinceMove)
	sr.U32sInto(s.coldLock)
	s.epochs = sr.Int()
	s.strongCursor = sr.Int()
	s.weakCursor = sr.Int()
	if err := sr.Err(); err != nil {
		return err
	}
	if s.seenIdx < 0 || s.seenIdx >= silenceEpochs {
		return fmt.Errorf("bwl: restored seenIdx %d outside [0,%d)", s.seenIdx, silenceEpochs)
	}
	if err := s.src.Restore(r); err != nil {
		return err
	}
	return s.stats.Restore(r)
}

func init() {
	wl.Register(wl.Registration{
		Name:  "BWL",
		Order: 10,
		Doc:   "Bloom-filter dynamic wear leveling (DATE'12)",
		New: func(dev *pcm.Device, seed uint64) (wl.Scheme, error) {
			return New(dev, DefaultConfig(dev.Pages(), seed))
		},
	})
}
