package twl

import (
	"fmt"
	"math"

	"twl/internal/attack"
	"twl/internal/core"
	"twl/internal/hwcost"
	"twl/internal/pcm"
	"twl/internal/sim"
	"twl/internal/stats"
	"twl/internal/trace"
	"twl/internal/wl"
	"twl/internal/wl/nowl"
	"twl/internal/wl/secref"
)

// Fig6AttackBandwidth is the attack write bandwidth of Section 5.2:
// "a nonstop write stream with an approximate 8 GB/s write bandwidth,
// which indicates an ideal lifetime of 6.6 years".
const Fig6AttackBandwidth = 8e9

// lifetimeScheme builds a scheme for a lifetime (run-to-failure) experiment.
// It matches NewScheme except for Security Refresh, whose refresh interval
// is rescaled with the endurance: SR's leveling progress per page lifetime
// is (endurance)/(pages × interval), a dimensionless rate that must be
// preserved when the simulation scales endurance down — otherwise SR would
// be artificially crippled (interval 128 at full scale corresponds to a far
// finer interval on a 20000-write array). See EXPERIMENTS.md, "Scaling".
func lifetimeScheme(name string, dev *Device, seed uint64, sys SystemConfig) (Scheme, error) {
	if name == "SR" {
		cfg := secref.DefaultTwoLevelConfig(sys.Pages, sys.MeanEndurance, seed)
		return secref.NewTwoLevel(dev, cfg)
	}
	return NewScheme(name, dev, seed)
}

// ------------------------------------------------------------------------
// Grid cells: the single-cell runners every scheduler shares.
// ------------------------------------------------------------------------

// RunAttackCell runs one scheme × attack lifetime cell with exactly the
// construction RunFig6 uses for each bar — the same device, the same
// derived seeds (scheme at Seed+7, attack at Seed+11) and the same SR
// interval rescaling — so any scheduler that executes cells independently
// (the parallel grid runner, the twlsimd service) reproduces a Figure 6
// cell byte-for-byte, including its metrics and trace payloads when lc
// carries sinks.
func RunAttackCell(sys SystemConfig, scheme string, mode AttackMode, lc LifetimeConfig) (LifetimeResult, error) {
	dev, err := sys.NewDevice()
	if err != nil {
		return LifetimeResult{}, err
	}
	s, err := lifetimeScheme(scheme, dev, sys.Seed+7, sys)
	if err != nil {
		return LifetimeResult{}, err
	}
	st, err := attack.New(attack.DefaultConfig(mode, sys.Pages, sys.Seed+11))
	if err != nil {
		return LifetimeResult{}, err
	}
	return sim.RunLifetime(s, sim.FromAttack(st), lc)
}

// RunBenchCell is RunAttackCell's benchmark counterpart: one scheme ×
// PARSEC-workload lifetime cell, constructed exactly as RunFig8 builds each
// bar (scheme at Seed+13, synthetic workload at Seed+17).
func RunBenchCell(sys SystemConfig, scheme, bench string, lc LifetimeConfig) (LifetimeResult, error) {
	b, err := trace.BenchmarkByName(bench)
	if err != nil {
		return LifetimeResult{}, err
	}
	dev, err := sys.NewDevice()
	if err != nil {
		return LifetimeResult{}, err
	}
	s, err := lifetimeScheme(scheme, dev, sys.Seed+13, sys)
	if err != nil {
		return LifetimeResult{}, err
	}
	g, err := trace.NewSynthetic(b, sys.Pages, sys.Seed+17)
	if err != nil {
		return LifetimeResult{}, err
	}
	return sim.RunLifetime(s, sim.FromWorkload(g), lc)
}

// ------------------------------------------------------------------------
// Table 2: PARSEC write bandwidths, ideal lifetimes, lifetimes w/o WL.
// ------------------------------------------------------------------------

// Table2Row is one benchmark row of Table 2: the paper's reported values
// alongside this reproduction's computed/simulated ones.
type Table2Row struct {
	Benchmark          string
	WriteBandwidthMBps float64
	IdealYears         float64 // computed from bandwidth and capacity
	PaperIdealYears    float64
	NoWLYears          float64 // simulated: NOWL lifetime, scaled to years
	PaperNoWLYears     float64
}

// RunTable2 regenerates Table 2: the ideal lifetime from the bandwidth
// model and the no-wear-leveling lifetime by replaying each benchmark's
// synthetic trace on a NOWL system until first failure.
func RunTable2(sys SystemConfig) ([]Table2Row, error) {
	var rows []Table2Row
	for _, b := range trace.PARSEC() {
		ideal := IdealYears(b.WriteBandwidthMBps * 1e6)
		dev, err := sys.NewDevice()
		if err != nil {
			return nil, err
		}
		g, err := trace.NewSynthetic(b, sys.Pages, sys.Seed+1)
		if err != nil {
			return nil, err
		}
		res, err := sim.RunLifetime(nowl.New(dev), sim.FromWorkload(g), sim.LifetimeConfig{})
		if err != nil {
			return nil, fmt.Errorf("table2 %s: %w", b.Name, err)
		}
		rows = append(rows, Table2Row{
			Benchmark:          b.Name,
			WriteBandwidthMBps: b.WriteBandwidthMBps,
			IdealYears:         ideal,
			PaperIdealYears:    b.IdealLifetimeYears,
			NoWLYears:          res.Years(ideal),
			PaperNoWLYears:     b.NoWLLifetimeYears,
		})
	}
	return rows, nil
}

// ------------------------------------------------------------------------
// Figure 6: lifetime under attacks.
// ------------------------------------------------------------------------

// Fig6Config controls the attack-lifetime grid.
type Fig6Config struct {
	// Schemes to evaluate; defaults to the paper's five bars.
	Schemes []string
	// Modes to evaluate; defaults to all four attacks.
	Modes []AttackMode
	// BandwidthBytesPerSec converts normalized lifetime to years.
	BandwidthBytesPerSec float64
	// Metrics, when non-nil, receives per-cell timing and worker
	// utilization for the grid run.
	Metrics *MetricsRegistry
	// Trace, when non-nil, receives one event per completed cell.
	Trace *Tracer
}

// DefaultFig6Config returns the paper's Figure 6 setup.
func DefaultFig6Config() Fig6Config {
	return Fig6Config{
		Schemes:              []string{"BWL", "SR", "TWL_ap", "TWL_swp", "NOWL"},
		Modes:                attack.Modes(),
		BandwidthBytesPerSec: Fig6AttackBandwidth,
	}
}

// Fig6Cell is one bar of Figure 6.
type Fig6Cell struct {
	Scheme     string
	Mode       AttackMode
	Normalized float64
	Years      float64
	// Seconds is the lifetime in seconds (the paper quotes BWL's collapse
	// under the inconsistent attack as "98 seconds").
	Seconds float64
}

// Fig6Result is the full Figure 6 grid.
type Fig6Result struct {
	IdealYears float64
	Schemes    []string
	Modes      []AttackMode
	// Cells[scheme][mode.String()] is one bar.
	Cells map[string]map[string]Fig6Cell
	// Gmean[scheme] is the geometric mean over the four attacks (the
	// figure's Gmean group).
	Gmean map[string]float64
}

// RunFig6 regenerates Figure 6: lifetime under the four attacks for each
// scheme, at the Section 5.2 attack bandwidth.
func RunFig6(sys SystemConfig, cfg Fig6Config) (*Fig6Result, error) {
	if len(cfg.Schemes) == 0 || len(cfg.Modes) == 0 {
		return nil, fmt.Errorf("twl: Fig6Config needs schemes and modes")
	}
	if cfg.BandwidthBytesPerSec <= 0 {
		return nil, fmt.Errorf("twl: Fig6Config needs a positive bandwidth")
	}
	ideal := IdealYears(cfg.BandwidthBytesPerSec)
	out := &Fig6Result{
		IdealYears: ideal,
		Schemes:    cfg.Schemes,
		Modes:      cfg.Modes,
		Cells:      map[string]map[string]Fig6Cell{},
		Gmean:      map[string]float64{},
	}
	// All cells are independent simulations; run them in parallel and
	// assemble deterministically afterwards.
	grid := make([][]Fig6Cell, len(cfg.Schemes))
	var tasks []cellTask
	for i, name := range cfg.Schemes {
		grid[i] = make([]Fig6Cell, len(cfg.Modes))
		for j, mode := range cfg.Modes {
			i, j, name, mode := i, j, name, mode
			tasks = append(tasks, cellTask{name: fmt.Sprintf("fig6/%s/%v", name, mode), run: func() error {
				res, err := RunAttackCell(sys, name, mode, LifetimeConfig{})
				if err != nil {
					return fmt.Errorf("fig6 %s/%v: %w", name, mode, err)
				}
				grid[i][j] = Fig6Cell{
					Scheme:     name,
					Mode:       mode,
					Normalized: res.Normalized,
					Years:      res.Years(ideal),
					Seconds:    res.Years(ideal) * sim.SecondsPerYear,
				}
				return nil
			}})
		}
	}
	if completed, err := runCells(cfg.Metrics, cfg.Trace, tasks); err != nil {
		return nil, fmt.Errorf("twl: fig6 grid aborted with %d/%d cells done: %w",
			countCompleted(completed), len(tasks), err)
	}
	for i, name := range cfg.Schemes {
		out.Cells[name] = map[string]Fig6Cell{}
		var years []float64
		for j, mode := range cfg.Modes {
			out.Cells[name][mode.String()] = grid[i][j]
			years = append(years, math.Max(grid[i][j].Years, 1e-9))
		}
		g, err := stats.GeoMean(years)
		if err != nil {
			return nil, err
		}
		out.Gmean[name] = g
	}
	return out, nil
}

// ------------------------------------------------------------------------
// Figure 7: choosing the toss-up interval.
// ------------------------------------------------------------------------

// Fig7Config controls the toss-up interval sweep.
type Fig7Config struct {
	// Intervals to sweep (paper: 1..128 in powers of two).
	Intervals []int
	// RequestsPerBenchmark bounds the Figure 7a swap-ratio measurement.
	RequestsPerBenchmark int
	// Benchmarks to average over (default: all of PARSEC).
	Benchmarks []string
	// BandwidthBytesPerSec converts the Figure 7b scan lifetime to years.
	BandwidthBytesPerSec float64
}

// DefaultFig7Config returns the paper's sweep.
func DefaultFig7Config() Fig7Config {
	return Fig7Config{
		Intervals:            []int{1, 2, 4, 8, 16, 32, 64, 128},
		RequestsPerBenchmark: 300000,
		BandwidthBytesPerSec: Fig6AttackBandwidth,
	}
}

// Fig7Point is one x-position of Figure 7: the swap/write ratio (panel a,
// Gmean over PARSEC) and the scan-attack lifetime (panel b).
type Fig7Point struct {
	Interval          int
	SwapWriteRatio    float64
	ScanLifetimeYears float64
}

// MinimumLifetimeYears is the server-replacement-cycle floor the paper uses
// to pick the interval ("three to four years"): the chosen interval must
// keep the worst-case (scan) lifetime above it.
const MinimumLifetimeYears = 3.0

// RunFig7 regenerates Figure 7's two panels for each toss-up interval.
func RunFig7(sys SystemConfig, cfg Fig7Config) ([]Fig7Point, error) {
	if len(cfg.Intervals) == 0 {
		return nil, fmt.Errorf("twl: Fig7Config needs intervals")
	}
	if cfg.RequestsPerBenchmark <= 0 {
		return nil, fmt.Errorf("twl: Fig7Config needs RequestsPerBenchmark > 0")
	}
	benchNames := cfg.Benchmarks
	if len(benchNames) == 0 {
		for _, b := range trace.PARSEC() {
			benchNames = append(benchNames, b.Name)
		}
	}
	ideal := IdealYears(cfg.BandwidthBytesPerSec)
	var points []Fig7Point
	for _, interval := range cfg.Intervals {
		twlCfg := core.DefaultConfig(sys.Seed + 3)
		twlCfg.TossUpInterval = interval

		// Panel (a): swap/write ratio, geometric mean over PARSEC.
		var ratios []float64
		for _, bn := range benchNames {
			b, err := trace.BenchmarkByName(bn)
			if err != nil {
				return nil, err
			}
			dev, err := sys.NewDevice()
			if err != nil {
				return nil, err
			}
			e, err := core.New(dev, twlCfg)
			if err != nil {
				return nil, err
			}
			g, err := trace.NewSynthetic(b, sys.Pages, sys.Seed+5)
			if err != nil {
				return nil, err
			}
			for i := 0; i < cfg.RequestsPerBenchmark; i++ {
				addr, write := g.Next()
				if write {
					_ = e.Write(addr, uint64(i)) // ratio experiment: only Stats matter
				}
			}
			ratios = append(ratios, math.Max(e.Stats().SwapWriteRatio(), 1e-9))
		}
		ratio, err := stats.GeoMean(ratios)
		if err != nil {
			return nil, err
		}

		// Panel (b): lifetime under the scan attack.
		dev, err := sys.NewDevice()
		if err != nil {
			return nil, err
		}
		e, err := core.New(dev, twlCfg)
		if err != nil {
			return nil, err
		}
		st, err := attack.New(attack.DefaultConfig(attack.Scan, sys.Pages, sys.Seed+9))
		if err != nil {
			return nil, err
		}
		res, err := sim.RunLifetime(e, sim.FromAttack(st), sim.LifetimeConfig{})
		if err != nil {
			return nil, fmt.Errorf("fig7 interval %d: %w", interval, err)
		}
		points = append(points, Fig7Point{
			Interval:          interval,
			SwapWriteRatio:    ratio,
			ScanLifetimeYears: res.Years(ideal),
		})
	}
	return points, nil
}

// ------------------------------------------------------------------------
// Figure 8: normalized lifetime on PARSEC.
// ------------------------------------------------------------------------

// Fig8Config controls the benchmark-lifetime experiment.
type Fig8Config struct {
	// Schemes to evaluate; defaults to the paper's four bars.
	Schemes []string
	// Benchmarks (default: all of PARSEC).
	Benchmarks []string
	// Metrics, when non-nil, receives per-cell timing and worker
	// utilization for the grid run.
	Metrics *MetricsRegistry
	// Trace, when non-nil, receives one event per completed cell.
	Trace *Tracer
}

// DefaultFig8Config returns the paper's Figure 8 setup.
func DefaultFig8Config() Fig8Config {
	return Fig8Config{Schemes: []string{"BWL", "SR", "TWL_swp", "NOWL"}}
}

// Fig8Row is one benchmark group of Figure 8: normalized lifetime (fraction
// of ideal) per scheme.
type Fig8Row struct {
	Benchmark  string
	Normalized map[string]float64
}

// Fig8Result carries the rows plus the cross-benchmark averages the paper
// quotes ("SR ≈ 44%, BWL 75.6%, TWL 79.6%").
type Fig8Result struct {
	Rows []Fig8Row
	// Mean[scheme] is the arithmetic mean of normalized lifetime over the
	// benchmarks.
	Mean map[string]float64
}

// RunFig8 regenerates Figure 8 by replaying each benchmark on each scheme
// until first failure.
func RunFig8(sys SystemConfig, cfg Fig8Config) (*Fig8Result, error) {
	if len(cfg.Schemes) == 0 {
		return nil, fmt.Errorf("twl: Fig8Config needs schemes")
	}
	benchNames := cfg.Benchmarks
	if len(benchNames) == 0 {
		for _, b := range trace.PARSEC() {
			benchNames = append(benchNames, b.Name)
		}
	}
	// All cells are independent simulations; run them in parallel and
	// assemble deterministically afterwards.
	grid := make([][]float64, len(benchNames))
	var tasks []cellTask
	for i, bn := range benchNames {
		// Validate the name before queueing cells, so a typo fails the grid
		// up front rather than mid-run.
		if _, err := trace.BenchmarkByName(bn); err != nil {
			return nil, err
		}
		grid[i] = make([]float64, len(cfg.Schemes))
		for j, name := range cfg.Schemes {
			i, j, bn, name := i, j, bn, name
			tasks = append(tasks, cellTask{name: fmt.Sprintf("fig8/%s/%s", bn, name), run: func() error {
				res, err := RunBenchCell(sys, name, bn, LifetimeConfig{})
				if err != nil {
					return fmt.Errorf("fig8 %s/%s: %w", bn, name, err)
				}
				grid[i][j] = res.Normalized
				return nil
			}})
		}
	}
	if completed, err := runCells(cfg.Metrics, cfg.Trace, tasks); err != nil {
		return nil, fmt.Errorf("twl: fig8 grid aborted with %d/%d cells done: %w",
			countCompleted(completed), len(tasks), err)
	}
	out := &Fig8Result{Mean: map[string]float64{}}
	sums := map[string]float64{}
	for i, bn := range benchNames {
		row := Fig8Row{Benchmark: bn, Normalized: map[string]float64{}}
		for j, name := range cfg.Schemes {
			row.Normalized[name] = grid[i][j]
			sums[name] += grid[i][j]
		}
		out.Rows = append(out.Rows, row)
	}
	for _, name := range cfg.Schemes {
		out.Mean[name] = sums[name] / float64(len(benchNames))
	}
	return out, nil
}

// ------------------------------------------------------------------------
// Figure 9: normalized execution time on PARSEC.
// ------------------------------------------------------------------------

// Fig9Config controls the performance experiment.
type Fig9Config struct {
	// Schemes to evaluate; defaults to the paper's three lines.
	Schemes []string
	// Benchmarks (default: all of PARSEC).
	Benchmarks []string
	// Requests per benchmark per scheme.
	Requests int
	// Metrics, when non-nil, receives scheme-labeled per-request latency
	// histograms and blocked-request counters from every measurement run.
	Metrics *MetricsRegistry
}

// DefaultFig9Config returns the paper's Figure 9 setup.
func DefaultFig9Config() Fig9Config {
	return Fig9Config{
		Schemes:  []string{"BWL", "SR", "TWL_swp"},
		Requests: 1_000_000,
	}
}

// Fig9Row is one benchmark group of Figure 9: execution time normalized to
// NOWL per scheme.
type Fig9Row struct {
	Benchmark  string
	Normalized map[string]float64
}

// Fig9Result carries rows plus per-scheme arithmetic means (paper: TWL
// 1.90%, BWL 6.48%, SR 1.97% average overhead).
type Fig9Result struct {
	Rows []Fig9Row
	Mean map[string]float64
}

// RunFig9 regenerates Figure 9 using the latency model of sim.RunPerf. The
// schemes run with the paper's production parameters (SR interval 128) —
// unlike the lifetime figures there is no endurance scaling to compensate
// for, since no page needs to die.
func RunFig9(sys SystemConfig, cfg Fig9Config) (*Fig9Result, error) {
	if len(cfg.Schemes) == 0 {
		return nil, fmt.Errorf("twl: Fig9Config needs schemes")
	}
	if cfg.Requests <= 0 {
		return nil, fmt.Errorf("twl: Fig9Config needs Requests > 0")
	}
	benchNames := cfg.Benchmarks
	if len(benchNames) == 0 {
		for _, b := range trace.PARSEC() {
			benchNames = append(benchNames, b.Name)
		}
	}
	// Make sure no page wears out mid-measurement regardless of Requests.
	perfSys := sys
	perfSys.MeanEndurance = math.Max(sys.MeanEndurance, 100*float64(cfg.Requests)/float64(sys.Pages))

	perfCfg := sim.PerfConfig{Requests: cfg.Requests, MaxBandwidthMBps: 3309, Metrics: cfg.Metrics}
	out := &Fig9Result{Mean: map[string]float64{}}
	sums := map[string]float64{}
	for _, bn := range benchNames {
		b, err := trace.BenchmarkByName(bn)
		if err != nil {
			return nil, err
		}
		row := Fig9Row{Benchmark: bn, Normalized: map[string]float64{}}
		for _, name := range cfg.Schemes {
			name := name
			build := func() (wl.Scheme, error) {
				dev, err := perfSys.NewDevice()
				if err != nil {
					return nil, err
				}
				return NewScheme(name, dev, perfSys.Seed+19)
			}
			baseline := func() (wl.Scheme, error) {
				dev, err := perfSys.NewDevice()
				if err != nil {
					return nil, err
				}
				return nowl.New(dev), nil
			}
			res, err := sim.RunPerf(b, perfSys.Pages, perfSys.Seed+23, perfCfg, build, baseline)
			if err != nil {
				return nil, fmt.Errorf("fig9 %s/%s: %w", bn, name, err)
			}
			row.Normalized[name] = res.Normalized
			sums[name] += res.Normalized
		}
		out.Rows = append(out.Rows, row)
	}
	for _, name := range cfg.Schemes {
		out.Mean[name] = sums[name] / float64(len(benchNames))
	}
	return out, nil
}

// ------------------------------------------------------------------------
// Section 5.4: design overhead.
// ------------------------------------------------------------------------

// HardwareCostReport is the Section 5.4 design-overhead summary.
type HardwareCostReport struct {
	Storage      hwcost.StorageCost
	TotalBits    int
	StorageRatio float64
	Logic        hwcost.LogicCost
}

// ------------------------------------------------------------------------
// Lifetime beyond first failure: spare-pool retirement under attack.
// ------------------------------------------------------------------------

// DefaultSpareFraction is the spare-pool provisioning used when a
// retirement experiment is given a system without one (3% of the visible
// pages, inside the typical 2–5% band).
const DefaultSpareFraction = 0.03

// RetirementConfig controls a lifetime-beyond-first-failure run.
type RetirementConfig struct {
	// Scheme under test; defaults to TWL_swp.
	Scheme string
	// Mode is the attack; defaults to AttackInconsistent — the paper's
	// hardest pattern, and the one whose post-failure behavior the spare
	// pool changes most (the attacker's traffic follows the remap onto the
	// spares).
	Mode AttackMode
	// SpareFraction provisions the spare pool when the system config has
	// SparePages == 0 (default DefaultSpareFraction).
	SpareFraction float64
	// CapacityThreshold ends the run once this fraction of visible pages is
	// retired (0 = run until the spare pool itself is exhausted).
	CapacityThreshold float64
	// BandwidthBytesPerSec converts write counts to years (default
	// Fig6AttackBandwidth).
	BandwidthBytesPerSec float64
	// Metrics, when non-nil, receives the run's counters plus the
	// twl_retire_* series.
	Metrics *MetricsRegistry
	// Trace, when non-nil, receives the run's progress events (with retired
	// and spares_used fields) and the end event.
	Trace *Tracer
}

// DefaultRetirementConfig returns the TWL-vs-inconsistent-attack setup.
func DefaultRetirementConfig() RetirementConfig {
	return RetirementConfig{
		Scheme:               "TWL_swp",
		Mode:                 AttackInconsistent,
		SpareFraction:        DefaultSpareFraction,
		BandwidthBytesPerSec: Fig6AttackBandwidth,
	}
}

// RetirementResult summarizes a run past its first failure.
type RetirementResult struct {
	Scheme string
	Mode   AttackMode
	// Result is the underlying lifetime summary (FailCause, RetiredPages,
	// SparesUsed, SparePages are filled by the simulator).
	Result LifetimeResult
	// Curve is the capacity-vs-writes curve: one point per retirement
	// event, at the demand-write count where it fired.
	Curve []CapacityPoint
	// FirstFailureWrites is the demand-write count of the first page
	// failure — the run's lifetime under the old (first-failure)
	// definition.
	FirstFailureWrites uint64
	// ExtensionRatio is final demand writes / FirstFailureWrites: how much
	// lifetime the spare pool bought under the new definition.
	ExtensionRatio float64
	// FirstFailureYears and FinalYears convert both lifetime definitions at
	// the configured bandwidth.
	FirstFailureYears float64
	FinalYears        float64
	// MeanGapWrites is the mean demand-write gap between successive
	// retirement events.
	MeanGapWrites float64
	// Accel compares the mean retirement gap in the first half of the
	// events against the second half (first/second). Above 1, failures
	// arrive faster as the run ages — the attack accelerates once its
	// traffic concentrates on the spare pool. Zero when the run had fewer
	// than three gaps to compare.
	Accel float64
}

// RunRetirement runs one scheme under one attack with the retirement
// decorator attached, past the first page failure and on to capacity
// exhaustion (or the demand cap), and reports how the lifetime extends and
// how quickly the remaining capacity erodes.
func RunRetirement(sys SystemConfig, cfg RetirementConfig) (*RetirementResult, error) {
	if cfg.Scheme == "" {
		cfg.Scheme = "TWL_swp"
	}
	if cfg.BandwidthBytesPerSec <= 0 {
		cfg.BandwidthBytesPerSec = Fig6AttackBandwidth
	}
	if sys.SparePages == 0 {
		frac := cfg.SpareFraction
		if frac == 0 {
			frac = DefaultSpareFraction
		}
		sys = sys.WithSpareFraction(frac)
	}
	dev, err := sys.NewDevice()
	if err != nil {
		return nil, err
	}
	inner, err := lifetimeScheme(cfg.Scheme, dev, sys.Seed+7, sys)
	if err != nil {
		return nil, err
	}
	s, err := wl.Compose(inner, wl.WithRetirement(wl.RetireConfig{CapacityThreshold: cfg.CapacityThreshold}))
	if err != nil {
		return nil, err
	}
	pages := sys.Pages
	if z, ok := s.(interface{ LogicalPages() int }); ok {
		pages = z.LogicalPages()
	}
	src, err := NewAttack(cfg.Mode, pages, sys.Seed+11)
	if err != nil {
		return nil, err
	}
	res, err := sim.RunLifetime(s, src, sim.LifetimeConfig{Metrics: cfg.Metrics, Trace: cfg.Trace})
	if err != nil {
		return nil, fmt.Errorf("retirement %s/%v: %w", cfg.Scheme, cfg.Mode, err)
	}
	cs, _ := CapacityOf(s)

	ideal := IdealYears(cfg.BandwidthBytesPerSec)
	out := &RetirementResult{
		Scheme: cfg.Scheme,
		Mode:   cfg.Mode,
		Result: res,
		Curve:  cs.Curve,
	}
	totalEnd := float64(dev.TotalEndurance())
	if len(cs.Curve) > 0 {
		out.FirstFailureWrites = cs.Curve[0].DemandWrites
		out.FirstFailureYears = float64(out.FirstFailureWrites) / totalEnd * ideal
		out.FinalYears = res.Years(ideal)
		if out.FirstFailureWrites > 0 {
			out.ExtensionRatio = float64(res.DemandWrites) / float64(out.FirstFailureWrites)
		}
	}
	if gaps := retirementGaps(cs.Curve); len(gaps) > 0 {
		var sum float64
		for _, g := range gaps {
			sum += g
		}
		out.MeanGapWrites = sum / float64(len(gaps))
		if len(gaps) >= 3 {
			first, second := gaps[:len(gaps)/2], gaps[len(gaps)/2:]
			out.Accel = mean(first) / mean(second)
		}
	}
	return out, nil
}

// retirementGaps returns the demand-write distances between successive
// retirement events.
func retirementGaps(curve []CapacityPoint) []float64 {
	if len(curve) < 2 {
		return nil
	}
	gaps := make([]float64, len(curve)-1)
	for i := 1; i < len(curve); i++ {
		gaps[i-1] = float64(curve[i].DemandWrites - curve[i-1].DemandWrites)
	}
	return gaps
}

func mean(xs []float64) float64 {
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// HardwareCost regenerates the Section 5.4 numbers for the full-size 32 GB
// system: 80 bits per 4 KB page (2.5e-3 storage ratio) and 840 logic gates.
func HardwareCost() HardwareCostReport {
	s, err := hwcost.Storage(hwcost.DefaultStorageConfig())
	if err != nil {
		// The default configuration is statically valid; this cannot
		// happen short of a programming error.
		panic(err)
	}
	return HardwareCostReport{
		Storage:      s,
		TotalBits:    s.TotalBits(),
		StorageRatio: s.Ratio(pcm.DefaultGeometry().PageSize),
		Logic:        hwcost.Logic(),
	}
}
