// Package startgap implements Start-Gap wear leveling (Qureshi et al.,
// MICRO 2009), the classic PV-oblivious baseline TWL's lineage builds on and
// an extra comparison point for the attack experiments.
//
// Start-Gap keeps one spare physical page (the "gap"). Every GapInterval
// demand writes the gap moves by one slot: the page preceding the gap is
// copied into the gap and becomes the new gap. Over time every logical page
// rotates through every physical slot, spreading writes uniformly. A static
// address randomization (an affine bijection standing in for the paper's
// Feistel-based randomizer) decorrelates logically-contiguous addresses from
// physically-contiguous slots.
//
// Hardware realizes the mapping with two registers (Start and Gap); this
// implementation keeps an explicit remapping table instead so the test suite
// can verify the mapping bijection and data integrity directly. The wear
// behavior — one extra page write every GapInterval demand writes, uniform
// rotation — is identical.
package startgap

import (
	"fmt"
	"io"

	"twl/internal/pcm"
	"twl/internal/rng"
	"twl/internal/snap"
	"twl/internal/tables"
	"twl/internal/wl"
)

// Config parameterizes Start-Gap.
type Config struct {
	// GapInterval is ψ: demand writes between gap movements. The original
	// paper uses 100, trading 1% extra writes for leveling rate.
	GapInterval int
	// Randomize enables the static address-space randomization layer.
	Randomize bool
	// Seed drives the randomization constants.
	Seed uint64
}

// DefaultConfig returns the original paper's configuration.
func DefaultConfig(seed uint64) Config {
	return Config{GapInterval: 100, Randomize: true, Seed: seed}
}

// Scheme is a Start-Gap wear leveler. It serves Pages()-1 logical pages over
// a device with Pages() physical pages; the extra page is the rotating gap.
type Scheme struct {
	dev   *pcm.Device   // snap: device state is checkpointed by the sim layer
	cfg   Config        // snap: construction input
	rt    *tables.Remap // logical (incl. gap page) → physical
	stats wl.Stats

	logical   int // snap: derived from device geometry at New
	gapLA     int // snap: derived from device geometry at New
	sinceMove int
	// Affine randomization: ra*la + rb mod logical, with gcd(ra, logical)=1.
	ra, rb int // snap: derived from seed at New

	scratch []int // snap: scratch buffer; physical-address batch for WriteSweep
}

// New builds a Start-Gap scheme over dev.
func New(dev *pcm.Device, cfg Config) (*Scheme, error) {
	if dev.Pages() < 2 {
		return nil, fmt.Errorf("startgap: need at least 2 physical pages: %w", wl.ErrBadConfig)
	}
	if cfg.GapInterval <= 0 {
		return nil, fmt.Errorf("startgap: GapInterval must be positive, got %d: %w", cfg.GapInterval, wl.ErrBadConfig)
	}
	s := &Scheme{
		dev:     dev,
		cfg:     cfg,
		rt:      tables.NewRemap(dev.Pages()),
		logical: dev.Pages() - 1,
		gapLA:   dev.Pages() - 1,
		ra:      1,
		rb:      0,
	}
	if cfg.Randomize {
		src := rng.NewXorshift(cfg.Seed)
		s.ra = pickCoprime(src, s.logical)
		s.rb = src.Intn(s.logical)
	}
	return s, nil
}

// pickCoprime returns a random multiplier coprime with n.
func pickCoprime(src *rng.Xorshift, n int) int {
	if n <= 2 {
		return 1
	}
	for {
		a := 1 + src.Intn(n-1)
		if gcd(a, n) == 1 {
			return a
		}
	}
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// randomized maps an external logical address through the static
// randomization layer.
func (s *Scheme) randomized(la int) int {
	return (s.ra*la + s.rb) % s.logical
}

// LogicalPages reports the demand-addressable page count (one less than the
// physical page count, because of the gap).
func (s *Scheme) LogicalPages() int { return s.logical }

// Name implements wl.Scheme.
func (s *Scheme) Name() string { return "StartGap" }

// Write implements wl.Scheme.
func (s *Scheme) Write(la int, tag uint64) wl.Cost {
	cost := wl.Cost{ExtraCycles: wl.ControlCycles}
	ila := s.randomized(la)
	pa := s.rt.Phys(ila)
	s.dev.Write(pa, tag)
	cost.DeviceWrites = 1
	s.stats.DemandWrites++

	s.sinceMove++
	if s.sinceMove >= s.cfg.GapInterval {
		s.sinceMove = 0
		cost.Add(s.moveGap())
	}
	return cost
}

// pureWrites returns how many more demand writes are guaranteed event-free:
// the gap moves on the write that takes sinceMove to GapInterval, so
// GapInterval − sinceMove − 1 writes can pass without a move.
func (s *Scheme) pureWrites() int {
	return s.cfg.GapInterval - s.sinceMove - 1
}

// WriteRun implements wl.RunWriter: the event-free prefix of a same-address
// run maps to one physical page (the remap table is frozen between gap
// moves), so it collapses into a single bulk device write.
//
//twl:hotpath
func (s *Scheme) WriteRun(la int, tag uint64, n int) (wl.Cost, int) {
	k := s.pureWrites()
	if k <= 0 {
		return wl.Cost{}, 0
	}
	if n < k {
		k = n
	}
	pa := s.rt.Phys(s.randomized(la))
	applied := s.dev.WriteN(pa, tag, k)
	s.stats.DemandWrites += uint64(applied)
	s.sinceMove += applied
	return wl.Cost{DeviceWrites: 1, ExtraCycles: wl.ControlCycles}, applied
}

// WriteSweep implements wl.SweepWriter. The affine randomization steps
// incrementally under la+1 — randomized(la+1) = randomized(la) + ra mod
// logical — so the sweep walks the remap table without re-deriving the
// randomization per write. Addresses are resolved into a scratch batch and
// applied with one gather-write, keeping the device's hot fields in
// registers across the batch.
//
//twl:hotpath
func (s *Scheme) WriteSweep(la int, tag uint64, n int) (wl.Cost, int) {
	k := s.pureWrites()
	if k <= 0 {
		return wl.Cost{}, 0
	}
	if n < k {
		k = n
	}
	buf := wl.Scratch(&s.scratch, k)
	phys := s.rt.PhysTable()
	ila := s.randomized(la)
	ra, logical := s.ra, s.logical
	for i := range buf {
		buf[i] = phys[ila]
		// Branch-free wrap (compiles to a conditional move; the wrap branch
		// itself is data-dependent and mispredicts).
		ila += ra
		if t := ila - logical; t >= 0 {
			ila = t
		}
	}
	applied := s.dev.WriteSeq(buf, tag)
	s.stats.DemandWrites += uint64(applied)
	s.sinceMove += applied
	return wl.Cost{DeviceWrites: 1, ExtraCycles: wl.ControlCycles}, applied
}

// moveGap shifts the gap one slot backwards: the physical page preceding the
// gap is copied into the gap slot and becomes the new gap.
func (s *Scheme) moveGap() wl.Cost {
	gapPA := s.rt.Phys(s.gapLA)
	prevPA := gapPA - 1
	if prevPA < 0 {
		prevPA = s.dev.Pages() - 1
	}
	victimLA := s.rt.Log(prevPA)
	// Copy victim's data into the gap slot, then the old slot becomes the gap.
	s.dev.Write(gapPA, s.dev.Peek(prevPA))
	s.rt.SwapLogical(s.gapLA, victimLA)
	s.stats.Swaps++
	s.stats.SwapWrites++
	return wl.Cost{DeviceWrites: 1, DeviceReads: 1, ExtraCycles: wl.TableCycles, Blocked: true}
}

// Read implements wl.Scheme.
func (s *Scheme) Read(la int) (uint64, wl.Cost) {
	s.stats.DemandReads++
	pa := s.rt.Phys(s.randomized(la))
	return s.dev.Read(pa), wl.Cost{DeviceReads: 1, ExtraCycles: wl.ControlCycles}
}

// Stats implements wl.Scheme.
func (s *Scheme) Stats() wl.Stats { return s.stats }

// Device implements wl.Scheme.
func (s *Scheme) Device() *pcm.Device { return s.dev }

// CheckInvariants implements wl.Checker: remap bijection, gap-pointer
// consistency, randomization-layer bijectivity, and wear conservation.
func (s *Scheme) CheckInvariants() error {
	if err := s.rt.CheckBijection(); err != nil {
		return err
	}
	if s.rt.Len() != s.dev.Pages() {
		return fmt.Errorf("startgap: remap table covers %d pages, device has %d",
			s.rt.Len(), s.dev.Pages())
	}
	// Geometry: exactly one spare slot, owned by the dummy logical index.
	if s.logical != s.dev.Pages()-1 || s.gapLA != s.logical {
		return fmt.Errorf("startgap: gap geometry broken: logical=%d gapLA=%d pages=%d",
			s.logical, s.gapLA, s.dev.Pages())
	}
	// Gap pointer: the per-interval counter must sit strictly inside the
	// interval — moveGap resets it, so reaching GapInterval means a move was
	// skipped.
	if s.sinceMove < 0 || s.sinceMove >= s.cfg.GapInterval {
		return fmt.Errorf("startgap: sinceMove %d outside [0,%d)", s.sinceMove, s.cfg.GapInterval)
	}
	// Randomization layer: ra*la+rb mod logical is bijective iff
	// gcd(ra, logical) == 1; rb is only reduced once, so it must be in range.
	if s.ra < 1 || gcd(s.ra, s.logical) != 1 {
		return fmt.Errorf("startgap: multiplier %d not coprime with %d; randomization is not a bijection",
			s.ra, s.logical)
	}
	if s.rb < 0 || (s.rb >= s.logical && s.logical > 1) {
		return fmt.Errorf("startgap: offset %d outside [0,%d)", s.rb, s.logical)
	}
	want := s.stats.DemandWrites + s.stats.SwapWrites
	if got := s.dev.TotalWrites(); got != want {
		return fmt.Errorf("startgap: device writes %d != demand %d + swap %d",
			got, s.stats.DemandWrites, s.stats.SwapWrites)
	}
	return nil
}

// Snapshot implements wl.Snapshotter: the remap table, the gap-interval
// counter and the stats are the only workload-evolved state; the affine
// randomization constants are re-derived from the seed at New.
func (s *Scheme) Snapshot(w io.Writer) error {
	if err := s.rt.Snapshot(w); err != nil {
		return err
	}
	sw := snap.NewWriter(w)
	sw.Int(s.sinceMove)
	if err := sw.Err(); err != nil {
		return err
	}
	return s.stats.Snapshot(w)
}

// Restore implements wl.Snapshotter.
func (s *Scheme) Restore(r io.Reader) error {
	if err := s.rt.Restore(r); err != nil {
		return err
	}
	sr := snap.NewReader(r)
	s.sinceMove = sr.Int()
	if err := sr.Err(); err != nil {
		return err
	}
	return s.stats.Restore(r)
}

func init() {
	wl.Register(wl.Registration{
		Name:    "StartGap",
		Aliases: []string{"start-gap", "sg"},
		Order:   80,
		Doc:     "Start-Gap with affine address randomization (MICRO'09)",
		New: func(dev *pcm.Device, seed uint64) (wl.Scheme, error) {
			return New(dev, DefaultConfig(seed))
		},
	})
}
