// Command benchcmp compares two benchff reports, joined on scheme × attack,
// and flags regressions on both simulation paths: configurations whose
// perwrite_ns_per_write grew by more than the threshold between the old and
// new report, and configurations that took the fast path in both reports
// whose fast_ns_per_write grew the same way. The per-write path is the
// simulator's correctness baseline — every scheme runs it, and the
// differential tests diff against it — so a slowdown there taxes every
// benchmark and every long differential run; the fast path is the product
// being grown, so a slowdown there silently erodes the speedups the
// trajectory records.
//
// When both reports carry benchff's footprint audit, the same threshold
// additionally gates bytes-per-page per scheme on both storage widths —
// the layout is deterministic, so any growth is a real regression, not
// noise.
//
//	go run ./cmd/benchcmp BENCH_PR7.json BENCH_PR9.json
//
// Exits 1 when any joined configuration regressed beyond -threshold, 2 on
// usage or read errors. Configurations present in only one report are
// listed but never fatal (the grid legitimately grows as schemes gain fast
// paths).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

type result struct {
	Scheme     string  `json:"scheme"`
	Attack     string  `json:"attack"`
	FastPath   bool    `json:"fast_path"`
	PerWriteNs float64 `json:"perwrite_ns_per_write"`
	FastNs     float64 `json:"fast_ns_per_write"`
}

// footprint mirrors benchff's per-scheme memory audit. Reports predating
// the audit have a nil map; the footprint gate only engages when both
// reports carry it.
type footprint struct {
	WideBytesPerPage   float64 `json:"wide_bytes_per_page"`
	PackedBytesPerPage float64 `json:"packed_bytes_per_page"`
}

type report struct {
	Results   []result             `json:"results"`
	Footprint map[string]footprint `json:"footprint_bytes_per_page"`
}

func load(path string) (map[string]result, map[string]footprint, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	var rep report
	if err := json.Unmarshal(buf, &rep); err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(rep.Results) == 0 {
		return nil, nil, fmt.Errorf("%s: no results", path)
	}
	out := make(map[string]result, len(rep.Results))
	for _, r := range rep.Results {
		out[r.Scheme+"/"+r.Attack] = r
	}
	return out, rep.Footprint, nil
}

func main() {
	threshold := flag.Float64("threshold", 0.20, "fatal per-write-path slowdown as a fraction (0.20 = +20%)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchcmp [-threshold 0.20] OLD.json NEW.json")
		os.Exit(2)
	}
	oldPath, newPath := flag.Arg(0), flag.Arg(1)
	oldRes, oldFP, err := load(oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcmp: %v\n", err)
		os.Exit(2)
	}
	newRes, newFP, err := load(newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcmp: %v\n", err)
		os.Exit(2)
	}

	keys := make([]string, 0, len(oldRes))
	for k := range oldRes {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	regressed := false
	joined := 0
	for _, k := range keys {
		o := oldRes[k]
		n, ok := newRes[k]
		if !ok {
			fmt.Printf("%-20s only in %s\n", k, oldPath)
			continue
		}
		joined++
		delta := n.PerWriteNs/o.PerWriteNs - 1
		mark := ""
		if delta > *threshold {
			mark = "  REGRESSED"
			regressed = true
		}
		fmt.Printf("%-20s perwrite %8.2f -> %8.2f ns/write  (%+6.1f%%)%s\n",
			k, o.PerWriteNs, n.PerWriteNs, delta*100, mark)
		// The fast path is only comparable when both reports actually took
		// it; a per-write-fallback cell gaining a fast path is growth, not a
		// regression.
		if o.FastPath && n.FastPath {
			fdelta := n.FastNs/o.FastNs - 1
			fmark := ""
			if fdelta > *threshold {
				fmark = "  REGRESSED"
				regressed = true
			}
			fmt.Printf("%-20s fast     %8.2f -> %8.2f ns/write  (%+6.1f%%)%s\n",
				k, o.FastNs, n.FastNs, fdelta*100, fmark)
		}
	}
	newOnly := 0
	for k := range newRes {
		if _, ok := oldRes[k]; !ok {
			newOnly++
		}
	}
	if newOnly > 0 {
		fmt.Printf("%d configurations only in %s (grid grew)\n", newOnly, newPath)
	}
	if joined == 0 {
		fmt.Fprintln(os.Stderr, "benchcmp: no common configurations to compare")
		os.Exit(2)
	}

	// Footprint gate: the memory layout is deterministic (no wall-clock
	// noise), so any growth beyond the threshold on either storage width is
	// a real layout regression. Absent maps (older reports) skip the gate.
	fpJoined := 0
	if len(oldFP) > 0 && len(newFP) > 0 {
		fpKeys := make([]string, 0, len(oldFP))
		for k := range oldFP {
			fpKeys = append(fpKeys, k)
		}
		sort.Strings(fpKeys)
		for _, k := range fpKeys {
			o := oldFP[k]
			n, ok := newFP[k]
			if !ok {
				continue
			}
			fpJoined++
			for _, axis := range []struct {
				name     string
				old, new float64
			}{
				{"wide", o.WideBytesPerPage, n.WideBytesPerPage},
				{"packed", o.PackedBytesPerPage, n.PackedBytesPerPage},
			} {
				if axis.old <= 0 {
					continue
				}
				delta := axis.new/axis.old - 1
				mark := ""
				if delta > *threshold {
					mark = "  REGRESSED"
					regressed = true
				}
				fmt.Printf("%-20s %-6s footprint %7.1f -> %7.1f B/page  (%+6.1f%%)%s\n",
					k, axis.name, axis.old, axis.new, delta*100, mark)
			}
		}
	}

	if regressed {
		fmt.Fprintf(os.Stderr, "benchcmp: a simulation path or footprint regressed beyond %.0f%% on at least one configuration\n", *threshold*100)
		os.Exit(1)
	}
	if fpJoined > 0 {
		fmt.Printf("footprints within %.0f%% on all %d common schemes\n", *threshold*100, fpJoined)
	}
	fmt.Printf("both paths within %.0f%% on all %d common configurations\n", *threshold*100, joined)
}
