// Package sim is the experiment engine: it drives request sources (attacks
// or benchmark workloads) through a wear-leveling scheme until the PCM's
// first page failure (lifetime experiments, Figures 6–8) and accumulates
// per-request latencies for the performance experiments (Figure 9).
//
// Lifetime scaling. The paper simulates a 32 GB array with 10^8-write
// endurance; that is ~10^15 write events, so — like every wear-leveling
// study — the experiments here run on a scaled array (fewer pages, lower
// endurance) and report lifetime normalized to the array's total endurance:
//
//	normalized = demand writes at first failure / Σ endurance
//
// which is exactly the Figure 8 metric (a perfect, overhead-free leveler
// scores 1.0). Years are obtained as normalized × ideal-lifetime-years of
// the full-size system; see IdealYears and EXPERIMENTS.md for the
// calibration against the paper's Table 2 constants.
package sim

import (
	"errors"
	"fmt"

	"twl/internal/attack"
	"twl/internal/obs"
	"twl/internal/pcm"
	"twl/internal/trace"
	"twl/internal/wl"
)

// Source produces the request stream for a run. Implementations receive the
// attacker-visible feedback for the previous request (benign sources ignore
// it).
type Source interface {
	Next(fb attack.Feedback) (addr int, write bool)
}

// RunSource is the optional fast-forward extension of Source: the stream's
// next n requests are all the same operation on the same address. Sources
// implementing it must not vary their output based on the per-request
// Feedback (the simulator hands the fast path a per-batch feedback, not a
// per-request one) — unless they also implement FeedbackObserver, which
// restores per-request feedback delivery — and must treat all n requests as
// consumed even if the run ends early (device failure or the demand cap).
// RunLifetime consumes runs through wl.RunWriter when the scheme opts in,
// and falls back to per-request Write/Read calls — bit-identically — when
// it doesn't.
type RunSource interface {
	Source
	NextRun(fb attack.Feedback) (addr int, write bool, n int)
}

// FeedbackObserver is the extension a RunSource implements when its stream
// is feedback-driven (the inconsistent attack): each NextRun commitment only
// extends as far as no feedback could change the stream's output, and the
// bulk loop relays the served requests' feedback through Observe — uniform
// per absorbed chunk, individual per event write — so the stream's
// detection state evolves exactly as under per-request Next calls. The
// feedback of a run's last request is not delivered here; it reaches the
// stream as the fb argument of the next NextRun, as in the serial protocol.
type FeedbackObserver interface {
	Observe(fb attack.Feedback, n int)
}

// SweepSource is the consecutive-address counterpart of RunSource: the next
// n requests are the same operation on addr, addr+1, …, addr+n-1 (no
// wrapping within a sweep). The same feedback-independence and all-consumed
// rules apply; schemes opt in via wl.SweepWriter.
type SweepSource interface {
	Source
	NextSweep(fb attack.Feedback) (addr int, write bool, n int)
}

// attackSource adapts an attack.Stream (write-only) to Source.
type attackSource struct{ s attack.Stream }

func (a attackSource) Next(fb attack.Feedback) (int, bool) { return a.s.Next(fb), true }

// runAttackSource lifts an attack.RunStream into a RunSource (all writes).
type runAttackSource struct {
	attackSource
	r attack.RunStream
}

func (a runAttackSource) NextRun(fb attack.Feedback) (int, bool, int) {
	addr, n := a.r.NextRun(fb)
	return addr, true, n
}

// sweepAttackSource lifts an attack.SweepStream into a SweepSource.
type sweepAttackSource struct {
	attackSource
	r attack.SweepStream
}

func (a sweepAttackSource) NextSweep(fb attack.Feedback) (int, bool, int) {
	addr, n := a.r.NextSweep(fb)
	return addr, true, n
}

// feedbackRunSource lifts an attack.FeedbackRunStream into a RunSource that
// also relays served-request feedback (FeedbackObserver).
type feedbackRunSource struct {
	attackSource
	r attack.FeedbackRunStream
}

func (a feedbackRunSource) NextRun(fb attack.Feedback) (int, bool, int) {
	addr, n := a.r.NextRun(fb)
	return addr, true, n
}

func (a feedbackRunSource) Observe(fb attack.Feedback, n int) { a.r.Observe(fb, n) }

// FromAttack wraps an attack stream as a request source, preserving the
// stream's run or sweep capability for the fast-forward path. The
// FeedbackRunStream case must precede RunStream: its method set contains
// RunStream's, but consuming it without the Observe relay would starve the
// stream of the feedback it reacts to.
func FromAttack(s attack.Stream) Source {
	base := attackSource{s}
	switch r := s.(type) {
	case attack.FeedbackRunStream:
		return feedbackRunSource{base, r}
	case attack.RunStream:
		return runAttackSource{base, r}
	case attack.SweepStream:
		return sweepAttackSource{base, r}
	}
	return base
}

// workloadSource adapts a synthetic benchmark generator to Source.
type workloadSource struct{ g *trace.Synthetic }

func (w workloadSource) Next(attack.Feedback) (int, bool) { return w.g.Next() }

// FromWorkload wraps a benchmark generator as a request source.
func FromWorkload(g *trace.Synthetic) Source { return workloadSource{g} }

// replayRec is a trace record with the address already folded into the
// simulated page range, so replay pays the modulo once at construction
// instead of once per request per loop.
type replayRec struct {
	addr  int
	write bool
}

// replaySource loops a recorded trace forever.
type replaySource struct {
	recs []replayRec // snap: construction input (the recorded trace itself)
	pos  int
}

// maxRunLength bounds how many requests a single NextRun commits to when
// the underlying stream is unbounded (a uniform trace loops forever).
const maxRunLength = 1 << 20

// FromTrace wraps an in-memory trace, replayed in a loop (the paper's
// methodology: "use the trace to simulate each benchmark's execution in
// loops until a PCM page wears out"). Addresses are folded into
// [0, pages) by modulo at construction time.
func FromTrace(recs []trace.Record, pages int) (Source, error) {
	if len(recs) == 0 {
		return nil, errors.New("sim: empty trace")
	}
	if pages <= 0 {
		return nil, errors.New("sim: pages must be positive")
	}
	folded := make([]replayRec, len(recs))
	for i, rec := range recs {
		folded[i] = replayRec{addr: int(rec.Addr % uint64(pages)), write: rec.Op == trace.Write}
	}
	return &replaySource{recs: folded}, nil
}

func (r *replaySource) Next(attack.Feedback) (int, bool) {
	rec := r.recs[r.pos]
	r.pos++
	if r.pos == len(r.recs) {
		r.pos = 0
	}
	return rec.addr, rec.write
}

// NextRun implements RunSource: the maximal prefix of identical records
// starting at the replay position (wrapping across the loop seam). A fully
// uniform trace would make every run one lap, so it is extended to whole
// multiples of the trace up to maxRunLength.
func (r *replaySource) NextRun(attack.Feedback) (int, bool, int) {
	cur := r.recs[r.pos]
	n := 1
	pos := r.pos + 1
	if pos == len(r.recs) {
		pos = 0
	}
	for n < len(r.recs) && r.recs[pos] == cur {
		n++
		pos++
		if pos == len(r.recs) {
			pos = 0
		}
	}
	r.pos = pos
	if n == len(r.recs) {
		// pos walked a whole lap (back to where it started); committing to
		// whole extra laps keeps the position consistent.
		if reps := maxRunLength / n; reps > 1 {
			n *= reps
		}
	}
	return cur.addr, cur.write, n
}

// LifetimeConfig controls a lifetime run.
type LifetimeConfig struct {
	// MaxDemandWrites caps the run; 0 means 2 × total endurance (beyond
	// which the scheme is performing better than a perfect leveler could,
	// i.e. something is wrong).
	MaxDemandWrites uint64
	// CheckEvery runs the scheme's invariant checker every N demand writes
	// (0 disables). Paranoid mode for integration tests.
	CheckEvery uint64
	// Metrics, when non-nil, receives the run's counters (requests by op,
	// blocked requests, swaps) and the per-request latency histogram.
	// Counters accumulate, so sharing one registry across runs sums them.
	Metrics *obs.Registry
	// Trace, when non-nil, receives structured progress events: a start
	// event, one progress event every Trace.Every() demand writes (with a
	// wear-histogram snapshot), and an end event with the run summary.
	Trace *obs.Tracer
	// DisableFastForward forces the per-request loop even when the source
	// and scheme support run-length fast-forwarding. The fast path is
	// bit-identical by contract (the differential tests pin it), so this
	// exists for those tests and for benchmarking the paths against each
	// other.
	DisableFastForward bool
	// Checkpoint, when non-nil, periodically serializes the whole run state
	// to a file and/or resumes from one; see CheckpointConfig. The scheme
	// and source must implement wl.Snapshotter or RunLifetime fails before
	// serving any request.
	Checkpoint *CheckpointConfig
	// Stop, when non-nil, is polled at the checkpoint cadence (or
	// DefaultCheckpointEvery when no checkpoint is configured); when it
	// returns true the run winds down with an error wrapping ErrRunStopped.
	// With checkpointing configured, a final checkpoint is written at the
	// stop point first, so a preempted run resumes without losing work.
	// Stop may be called from the simulation goroutine at any time and must
	// be safe for concurrent use (an atomic flag, a context check).
	Stop func() bool
}

// ErrRunStopped is returned (wrapped, with the demand count) when a run
// winds down because LifetimeConfig.Stop reported true. It marks a
// preempted run, not a failed one: with checkpointing configured the run
// can be resumed and completed later.
var ErrRunStopped = errors.New("sim: run stopped")

// WearHistogramBuckets is the resolution of the wear/endurance snapshots in
// trace progress events.
const WearHistogramBuckets = 16

// lifetimeMetrics holds the registry handles RunLifetime updates in its
// request loop.
type lifetimeMetrics struct {
	writes  *obs.Counter
	reads   *obs.Counter
	blocked *obs.Counter
	latency *obs.Histogram
}

func newLifetimeMetrics(reg *obs.Registry) *lifetimeMetrics {
	reg.Help("twl_sim_requests_total", "logical requests served, by op")
	reg.Help("twl_sim_blocked_requests_total", "requests delayed behind an internal swap phase")
	reg.Help("twl_sim_request_cycles", "per-request latency in CPU cycles")
	return &lifetimeMetrics{
		writes:  reg.Counter("twl_sim_requests_total", obs.L("op", "write")),
		reads:   reg.Counter("twl_sim_requests_total", obs.L("op", "read")),
		blocked: reg.Counter("twl_sim_blocked_requests_total"),
		latency: reg.Histogram("twl_sim_request_cycles", obs.DefaultLatencyBuckets()),
	}
}

// finishLifetimeMetrics records the end-of-run aggregates. Runs under a
// retirement decorator additionally export the twl_retire_* series.
func finishLifetimeMetrics(reg *obs.Registry, res LifetimeResult, retiring bool) {
	reg.Help("twl_sim_swaps_total", "internal swap operations performed by the scheme")
	reg.Help("twl_sim_swap_writes_total", "device writes caused by internal swaps")
	reg.Help("twl_sim_device_writes_total", "physical page writes applied to the array")
	reg.Help("twl_sim_normalized_lifetime", "demand writes at first failure / total endurance")
	reg.Counter("twl_sim_swaps_total").Add(res.Swaps)
	reg.Counter("twl_sim_swap_writes_total").Add(res.SwapWrites)
	reg.Counter("twl_sim_device_writes_total").Add(res.DeviceWrites)
	reg.Gauge("twl_sim_normalized_lifetime").Set(res.Normalized)
	if !retiring {
		return
	}
	reg.Help("twl_retire_retired_pages", "visible pages retired to the spare pool")
	reg.Help("twl_retire_spares_used", "spare pages consumed (retirements plus spare replacements)")
	reg.Help("twl_retire_spare_pages", "size of the spare pool")
	reg.Help("twl_retire_capacity_exhausted", "1 if the run ended by spare exhaustion or the capacity threshold")
	reg.Gauge("twl_retire_retired_pages").Set(float64(res.RetiredPages))
	reg.Gauge("twl_retire_spares_used").Set(float64(res.SparesUsed))
	reg.Gauge("twl_retire_spare_pages").Set(float64(res.SparePages))
	exhausted := 0.0
	if res.FailCause != nil {
		exhausted = 1
	}
	reg.Gauge("twl_retire_capacity_exhausted").Set(exhausted)
}

// emitProgress writes one tracer progress event with current counters and a
// wear snapshot. Runs under a retirement decorator also report the retired
// and spare counts — the fast path clamps chunks at the trace cadence, so
// both paths observe identical retirement state at each event.
func (l *lifetimeState) emitProgress() {
	st := l.s.Stats()
	sum := l.dev.Summary()
	fields := []obs.Field{
		obs.F("demand_writes", l.demand),
		obs.F("demand_reads", st.DemandReads),
		obs.F("swaps", st.Swaps),
		obs.F("swap_writes", st.SwapWrites),
		obs.F("blocked", l.blocked),
		obs.F("cycles", l.cycles),
		obs.F("max_wear_fraction", sum.MaxFraction),
		obs.F("mean_wear_fraction", sum.MeanFraction),
		obs.F("wear_hist", l.dev.WearHistogram(WearHistogramBuckets)),
	}
	if l.capRep != nil {
		cs := l.capRep.CapacityStats()
		fields = append(fields,
			obs.F("retired", cs.Retired),
			obs.F("spares_used", cs.SparesUsed),
		)
	}
	l.tracer.Emit("progress", fields...)
}

// LifetimeResult summarizes a lifetime run. It stays comparable with ==
// (the differential and checkpoint tests rely on that), so the capacity
// curve lives behind wl.AsCapacityReporter on the scheme, not here.
type LifetimeResult struct {
	Scheme       string
	DemandWrites uint64 // demand writes served before first failure
	DemandReads  uint64
	DeviceWrites uint64
	SwapWrites   uint64
	Swaps        uint64
	// FailedPage is the physical page whose death ended the run (-1 if
	// capped). Under a retirement decorator this is the first failure the
	// spare pool could not cover, and may be a spare index (>= Pages) when
	// an in-service spare died after the pool emptied.
	FailedPage int
	Capped     bool // run hit MaxDemandWrites without a failure
	// FailCause refines FailedPage for runs under a retirement decorator:
	// wl.ErrCapacityExhausted when the run ended because the spare pool
	// emptied or the retired fraction crossed the capacity threshold, nil
	// for a plain first-page death (no decorator) or a capped run.
	FailCause error
	// RetiredPages, SparesUsed and SparePages mirror the decorator's
	// wl.CapacityStats at run end; all zero when no decorator is attached.
	RetiredPages int
	SparesUsed   int
	SparePages   int
	// Normalized is DemandWrites / Σ endurance — the Figure 8 metric. The
	// denominator includes spare-pool endurance, so retirement runs are
	// judged against the capacity they actually had.
	Normalized float64
	// Cycles is the total request latency accumulated over the run.
	Cycles int64
}

// Years converts the normalized lifetime to years given the full-size
// system's ideal lifetime (see IdealYears).
func (r LifetimeResult) Years(idealYears float64) float64 {
	return r.Normalized * idealYears
}

// RunLifetime drives src through s until the device's first page failure or
// the configured cap, and returns the summary.
func RunLifetime(s wl.Scheme, src Source, cfg LifetimeConfig) (LifetimeResult, error) {
	dev := s.Device()
	if _, failed := dev.Failed(); failed {
		return LifetimeResult{}, errors.New("sim: device already failed before the run")
	}
	totalEnd := dev.TotalEndurance()
	limit := cfg.MaxDemandWrites
	if limit == 0 {
		// Full-scale geometries (8Mi pages × 10^8 endurance ≈ 2^63 total)
		// would overflow the doubling; saturate instead of wrapping to a
		// tiny cap.
		if limit = 2 * totalEnd; limit < totalEnd {
			limit = ^uint64(0)
		}
	}
	timing := dev.Timing()
	checker, _ := s.(wl.Checker)
	capRep, _ := wl.AsCapacityReporter(s)

	if cfg.Checkpoint != nil {
		if err := validateCheckpointConfig(s, src, cfg.Checkpoint); err != nil {
			return LifetimeResult{}, err
		}
	}

	var metrics *lifetimeMetrics
	if cfg.Metrics != nil {
		metrics = newLifetimeMetrics(cfg.Metrics)
	}
	var traceEvery uint64
	if cfg.Trace != nil {
		traceEvery = cfg.Trace.Every()
	}

	l := &lifetimeState{
		s:          s,
		dev:        dev,
		timing:     timing,
		checker:    checker,
		capRep:     capRep,
		checkEvery: cfg.CheckEvery,
		metrics:    metrics,
		reg:        cfg.Metrics,
		tracer:     cfg.Trace,
		traceEvery: traceEvery,
		limit:      limit,
		src:        src,
		res:        LifetimeResult{Scheme: s.Name(), FailedPage: -1},
	}
	if checker == nil {
		l.checkEvery = 0
	}

	resuming := false
	if ckpt := cfg.Checkpoint; ckpt != nil {
		l.ckptPath = ckpt.Path
		l.ckptEvery = ckpt.Every
		if l.ckptEvery == 0 {
			l.ckptEvery = DefaultCheckpointEvery
		}
		if cfg.Metrics != nil {
			l.initCkptMetrics(cfg.Metrics)
		}
		if ckpt.Resume {
			resuming = true
			if err := l.restoreCheckpoint(); err != nil {
				return LifetimeResult{}, fmt.Errorf("sim: resume from %s: %w", ckpt.Path, err)
			}
		}
	}
	if cfg.Stop != nil {
		l.stop = cfg.Stop
		if l.stopEvery = l.ckptEvery; l.stopEvery == 0 {
			l.stopEvery = DefaultCheckpointEvery
		}
		// First poll after one full cadence past the (possibly resumed)
		// starting demand count.
		l.nextStop = l.demand + l.stopEvery
	}
	// A resumed run continues the interrupted trace stream mid-flight: the
	// start event was already emitted (and its seq restored), so only fresh
	// runs announce themselves.
	if cfg.Trace != nil && !resuming {
		cfg.Trace.Emit("start",
			obs.F("scheme", s.Name()),
			obs.F("pages", dev.Pages()),
			obs.F("total_endurance", totalEnd),
			obs.F("max_demand_writes", limit),
		)
	}

	// Fast-forward when the source can emit runs/sweeps; the bulk loop
	// serves per-request (bit-identically) for schemes that don't opt in.
	// The per-request loop remains for plain sources and for callers that
	// pin the baseline path.
	var err error
	if cfg.DisableFastForward {
		err = l.perRequestLoop(src)
	} else {
		switch bs := src.(type) {
		case RunSource:
			err = l.bulkLoop(bs.NextRun, false)
		case SweepSource:
			err = l.bulkLoop(bs.NextSweep, true)
		default:
			err = l.perRequestLoop(src)
		}
	}
	if err != nil {
		return l.res, err
	}

	res, blocked, cycles := l.res, l.blocked, l.cycles
	if res.FailedPage < 0 {
		res.Capped = true
	}
	st := s.Stats()
	res.DemandWrites = st.DemandWrites
	res.DemandReads = st.DemandReads
	res.SwapWrites = st.SwapWrites
	res.Swaps = st.Swaps
	res.DeviceWrites = dev.TotalWrites()
	res.Normalized = float64(st.DemandWrites) / float64(totalEnd)
	res.Cycles = cycles
	if capRep != nil {
		cs := capRep.CapacityStats()
		res.RetiredPages = cs.Retired
		res.SparesUsed = cs.SparesUsed
		res.SparePages = cs.SparePages
		if !res.Capped && cs.Exhausted {
			res.FailCause = wl.ErrCapacityExhausted
		}
	}
	if cfg.Metrics != nil {
		finishLifetimeMetrics(cfg.Metrics, res, capRep != nil)
	}
	if cfg.Trace != nil {
		fields := []obs.Field{
			obs.F("scheme", res.Scheme),
			obs.F("demand_writes", res.DemandWrites),
			obs.F("blocked", blocked),
			obs.F("swaps", res.Swaps),
			obs.F("failed_page", res.FailedPage),
			obs.F("capped", res.Capped),
			obs.F("normalized", res.Normalized),
			obs.F("cycles", res.Cycles),
			obs.F("wear_hist", dev.WearHistogram(WearHistogramBuckets)),
		}
		if capRep != nil {
			fields = append(fields,
				obs.F("retired", res.RetiredPages),
				obs.F("spares_used", res.SparesUsed),
				obs.F("spare_pages", res.SparePages),
				obs.F("capacity_exhausted", res.FailCause != nil),
			)
		}
		cfg.Trace.Emit("end", fields...)
	}
	return res, nil
}

// SecondsPerYear is the conversion constant for lifetime reporting.
const SecondsPerYear = 3.1536e7

// IdealYearsCalibration aligns the raw endurance-sum bound with the ideal
// lifetimes the paper reports. Table 2's ideal lifetimes are consistently
// 0.49 × capacity·endurance/bandwidth (e.g. vips: 32 GiB × 10^8 / 3309 MBps
// = 32.9 raw years vs 16 reported; blackscholes 900 vs 446), i.e. the
// authors assume an effective endurance of ~0.49×10^8 per cell. We adopt
// the same constant so absolute years are comparable; it cancels in every
// normalized comparison.
const IdealYearsCalibration = 0.49

// IdealYears returns the ideal lifetime in years of a full-size system:
// capacity × mean endurance / write bandwidth, calibrated to the paper's
// Table 2 convention.
func IdealYears(geom pcm.Geometry, meanEndurance, bytesPerSecond float64) float64 {
	totalBytes := float64(geom.Capacity()) * meanEndurance
	return IdealYearsCalibration * totalBytes / bytesPerSecond / SecondsPerYear
}
