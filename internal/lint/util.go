package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// declName returns the name of the top-level declaration enclosing pos in p
// ("" when outside any), for allowlist entries scoped to one function or
// type.
func declName(p *Package, pos token.Pos) string {
	for _, f := range p.Files {
		if pos < f.Pos() || pos >= f.End() {
			continue
		}
		for _, d := range f.Decls {
			if pos < d.Pos() || pos >= d.End() {
				continue
			}
			switch d := d.(type) {
			case *ast.FuncDecl:
				return d.Name.Name
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					if pos < spec.Pos() || pos >= spec.End() {
						continue
					}
					switch s := spec.(type) {
					case *ast.TypeSpec:
						return s.Name.Name
					case *ast.ValueSpec:
						if len(s.Names) > 0 {
							return s.Names[0].Name
						}
					}
				}
			}
		}
	}
	return ""
}

// report appends a finding unless the allowlist sanctions the enclosing
// declaration (or the whole package) for this analyzer.
func report(diags []Diagnostic, p *Package, w *World, a *Analyzer, pos token.Pos, format string, args ...any) []Diagnostic {
	if w.Allow.Allows(a.Name, p.Path, declName(p, pos)) {
		return diags
	}
	return append(diags, newDiag(p.Fset, pos, p.Path, a.Name, format, args...))
}

// calleeObj resolves the object a call expression invokes, looking through
// parentheses. It returns nil for indirect calls and conversions.
func calleeObj(p *Package, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return p.Info.Uses[fun]
	case *ast.SelectorExpr:
		if sel := p.Info.Selections[fun]; sel != nil {
			return sel.Obj() // method or field
		}
		return p.Info.Uses[fun.Sel] // package-qualified function
	}
	return nil
}

// pkgFunc reports whether obj is the package-level function pkgPath.name.
func pkgFunc(obj types.Object, pkgPath, name string) bool {
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	return fn.Pkg().Path() == pkgPath && fn.Name() == name && fn.Type().(*types.Signature).Recv() == nil
}

// fromPkg reports whether obj is any package-level function of pkgPath.
func fromPkg(obj types.Object, pkgPath string) bool {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil && fn.Pkg().Path() == pkgPath
}

// rootIdent walks to the base identifier of an lvalue chain
// (d.cur[la].x → d); nil when the base is not a plain identifier.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// internalScope reports whether the package is simulation code the
// determinism contract covers: the twl facade and everything under
// twl/internal/.
func internalScope(path string) bool {
	return path == "twl" || strings.HasPrefix(path, "twl/internal/")
}

// lookupInterface fetches a named interface's underlying *types.Interface
// from pkg.
func lookupInterface(pkg *types.Package, name string) *types.Interface {
	if pkg == nil {
		return nil
	}
	obj := pkg.Scope().Lookup(name)
	if obj == nil {
		return nil
	}
	iface, _ := obj.Type().Underlying().(*types.Interface)
	return iface
}

// isWLNamed reports whether t is the named type wl.<name>, matching by path
// and name so it holds across independently checked instances of wl.
func isWLNamed(t types.Type, name string) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == wlPath && obj.Name() == name
}
