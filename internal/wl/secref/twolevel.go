package secref

import (
	"fmt"
	"io"
	"math/bits"

	"twl/internal/pcm"
	"twl/internal/rng"
	"twl/internal/snap"
	"twl/internal/wl"
)

// TwoLevelConfig parameterizes two-level Security Refresh — the variant the
// ISCA 2010 paper recommends for large memories. An outer refresh remaps
// addresses across the whole array at a slow rate, and an inner refresh
// remaps within each region at a fast rate. The composition lets a small,
// cheap inner sweep protect against concentrated streams while the outer
// sweep prevents any region from becoming a permanent target.
type TwoLevelConfig struct {
	// Regions is the inner-region count; pages/Regions must be a power of
	// two, and Regions itself must divide the page count.
	Regions int
	// InnerInterval is demand writes to a region between inner refresh
	// steps.
	InnerInterval int
	// OuterInterval is demand writes (globally) between outer refresh
	// steps.
	OuterInterval int
	// Seed drives key generation.
	Seed uint64
}

// DefaultTwoLevelConfig sizes the levels for a device with pages pages and
// the given mean endurance, preserving the dimensionless leveling rates of
// a full-scale deployment: the inner sweep must complete many times within
// a page lifetime (regionSize × innerInterval ≪ endurance) and the outer
// sweep must rotate a hot address out of its region well before the region
// is exhausted.
func DefaultTwoLevelConfig(pages int, meanEndurance float64, seed uint64) TwoLevelConfig {
	regions := 8
	for pages/regions > 256 && regions < 64 {
		regions *= 2
	}
	if regions > pages/2 {
		regions = 1
	}
	regionSize := pages / regions
	// Inner sweep: a hot address must be re-placed many times within a page
	// lifetime (deposit per slot ≈ regionSize × interval / 2 ≪ endurance).
	inner := int(meanEndurance / (14 * float64(regionSize)))
	if inner < 1 {
		inner = 1
	}
	if inner > 128 {
		inner = 128
	}
	// Outer sweep: a hot address must leave its region long before the
	// region's endurance budget is dented (stay ≈ pages × interval / 2).
	outer := int(float64(regionSize) * meanEndurance / (16 * float64(pages)))
	if outer < 8 {
		outer = 8
	}
	if outer > 1024 {
		outer = 1024
	}
	return TwoLevelConfig{
		Regions:       regions,
		InnerInterval: inner,
		OuterInterval: outer,
		Seed:          seed,
	}
}

// TwoLevel is the two-level Security Refresh scheme. The logical address
// first passes the outer remap (an XOR-key mapping over the whole array
// with a sweeping re-key, exactly like the single-level scheme), producing
// an intermediate address; the intermediate address then passes the inner
// remap of its region.
type TwoLevel struct {
	dev   *pcm.Device    // snap: device state is checkpointed by the sim layer
	cfg   TwoLevelConfig // snap: construction input
	outer region
	inner []region
	src   *rng.Xorshift
	stats wl.Stats

	sinceOuter int
	sinceInner []int

	regionShift int // snap: derived from geometry at NewTwoLevel; log2(inner region size)

	// composed caches the full la → pa mapping. The two-level mapping is
	// frozen between refresh steps, and each step re-maps exactly one
	// address pair, so the cache is maintained with two entry updates per
	// step and lets the bulk paths resolve addresses with one table load.
	// CheckInvariants verifies it against the live two-level computation.
	composed []int // snap: rebuilt from region keys on Restore
}

// NewTwoLevel builds a two-level Security Refresh scheme over dev.
func NewTwoLevel(dev *pcm.Device, cfg TwoLevelConfig) (*TwoLevel, error) {
	if cfg.Regions <= 0 {
		return nil, fmt.Errorf("secref: Regions must be positive: %w", wl.ErrBadConfig)
	}
	if cfg.InnerInterval <= 0 || cfg.OuterInterval <= 0 {
		return nil, fmt.Errorf("secref: intervals must be positive: %w", wl.ErrBadConfig)
	}
	pages := dev.Pages()
	if pages%cfg.Regions != 0 {
		return nil, fmt.Errorf("secref: %d regions do not divide %d pages: %w", cfg.Regions, pages, wl.ErrBadConfig)
	}
	size := pages / cfg.Regions
	if bits.OnesCount(uint(size)) != 1 {
		return nil, fmt.Errorf("secref: region size %d is not a power of two: %w", size, wl.ErrBadConfig)
	}
	if bits.OnesCount(uint(pages)) != 1 {
		return nil, fmt.Errorf("secref: two-level outer remap needs a power-of-two page count, got %d: %w", pages, wl.ErrBadConfig)
	}
	s := &TwoLevel{
		dev:        dev,
		cfg:        cfg,
		src:        rng.NewXorshift(cfg.Seed),
		sinceInner: make([]int, cfg.Regions),
	}
	s.regionShift = bits.TrailingZeros(uint(size))
	s.outer = region{base: 0, size: pages, mask: pages - 1}
	s.outer.keyNew = s.src.Intn(pages)
	s.inner = make([]region, cfg.Regions)
	for i := range s.inner {
		r := &s.inner[i]
		r.base = i * size
		r.size = size
		r.mask = size - 1
		r.keyNew = s.src.Intn(size)
	}
	s.composed = make([]int, pages)
	for la := range s.composed {
		s.composed[la] = s.physical(la)
	}
	return s, nil
}

// Name implements wl.Scheme.
func (s *TwoLevel) Name() string { return "SR2" }

// physical resolves a logical address through both levels.
func (s *TwoLevel) physical(la int) int {
	mid := s.outer.phys(la)
	r := &s.inner[mid/s.inner[0].size]
	return r.base + r.phys(mid&r.mask)
}

// Write implements wl.Scheme.
func (s *TwoLevel) Write(la int, tag uint64) wl.Cost {
	cost := wl.Cost{ExtraCycles: wl.ControlCycles + 2*wl.TableCycles}
	mid := s.outer.phys(la)
	ri := mid / s.inner[0].size
	r := &s.inner[ri]
	pa := r.base + r.phys(mid&r.mask)
	s.dev.Write(pa, tag)
	cost.DeviceWrites = 1
	s.stats.DemandWrites++

	s.sinceInner[ri]++
	if s.sinceInner[ri] >= s.cfg.InnerInterval {
		s.sinceInner[ri] = 0
		cost.Add(s.innerStep(r))
	}
	s.sinceOuter++
	if s.sinceOuter >= s.cfg.OuterInterval {
		s.sinceOuter = 0
		cost.Add(s.outerStep())
	}
	return cost
}

// WriteRun implements wl.RunWriter: a same-address run resolves to one
// physical page under the frozen two-level mapping, and the event-free
// budget is the tighter of the inner region's and the outer level's
// distances to their next refresh steps.
//
//twl:hotpath
func (s *TwoLevel) WriteRun(la int, tag uint64, n int) (wl.Cost, int) {
	pa := s.composed[la]
	ri := pa >> s.regionShift
	k := s.cfg.InnerInterval - s.sinceInner[ri] - 1
	if ko := s.cfg.OuterInterval - s.sinceOuter - 1; ko < k {
		k = ko
	}
	if k <= 0 {
		return wl.Cost{}, 0
	}
	if n < k {
		k = n
	}
	applied := s.dev.WriteN(pa, tag, k)
	s.stats.DemandWrites += uint64(applied)
	s.sinceInner[ri] += applied
	s.sinceOuter += applied
	return wl.Cost{DeviceWrites: 1, ExtraCycles: wl.ControlCycles + 2*wl.TableCycles}, applied
}

// WriteSweep implements wl.SweepWriter. Consecutive logical addresses
// scatter across inner regions under the outer XOR remap, so each write
// checks its own region's inner budget; the sweep is clamped by the outer
// budget up front and stops (absorbed so far) when the next write would
// trigger an inner step. The batch is the prefix composed[la:la+k] of the
// composed la → pa cache — the budget scan only counts per-region writes —
// and is applied with one gather-write; if the device fails mid-batch, the
// inner counters of the unapplied suffix are rolled back so scheme state
// matches the sequential semantics exactly.
//
//twl:hotpath
func (s *TwoLevel) WriteSweep(la int, tag uint64, n int) (wl.Cost, int) {
	cost := wl.Cost{DeviceWrites: 1, ExtraCycles: wl.ControlCycles + 2*wl.TableCycles}
	if ko := s.cfg.OuterInterval - s.sinceOuter - 1; n > ko {
		n = ko
	}
	if n <= 0 {
		return cost, 0
	}
	shift := s.regionShift
	inner := s.cfg.InnerInterval
	since := s.sinceInner
	batch := s.composed[la : la+n]
	k := n
	for i, pa := range batch {
		ri := pa >> shift
		if since[ri]+1 >= inner {
			k = i
			break
		}
		since[ri]++
	}
	if k == 0 {
		return cost, 0
	}
	batch = batch[:k]
	applied := s.dev.WriteSeq(batch, tag)
	for j := applied; j < k; j++ {
		since[batch[j]>>shift]--
	}
	s.stats.DemandWrites += uint64(applied)
	s.sinceOuter += applied
	return cost, applied
}

// innerStep advances a region's inner sweep by one address.
func (s *TwoLevel) innerStep(r *region) wl.Cost {
	var cost wl.Cost
	cost.ExtraCycles = wl.ControlCycles + wl.RNGCycles
	if r.sweep >= r.size {
		// Retiring the old key does not move any address (every offset is
		// refreshed at this point), so the composed cache stays valid.
		r.keyOld = r.keyNew
		r.keyNew = s.src.Intn(r.size)
		r.sweep = 0
	}
	o := r.sweep
	d := r.keyOld ^ r.keyNew
	if d != 0 && (o^d) >= o {
		paO := r.base + (o ^ r.keyOld)
		paP := r.base + (o ^ r.keyNew)
		s.swapPages(paO, paP, &cost)
	}
	r.sweep++
	// The step re-mapped intermediate offsets o and o^d (both now under the
	// new key); refresh their composed entries.
	s.recompose(r.base + o)
	if d != 0 {
		s.recompose(r.base + (o ^ d))
	}
	return cost
}

// recompose refreshes the composed-cache entry of the logical address that
// currently resolves to intermediate address mid.
func (s *TwoLevel) recompose(mid int) {
	la := mid ^ s.outer.keyOld
	if s.outer.refreshed(la) {
		la = mid ^ s.outer.keyNew
	}
	s.composed[la] = s.innerPhys(mid)
}

// outerStep advances the outer sweep by one address. The outer level swaps
// *intermediate* addresses x1 = o^keyOld and x2 = o^keyNew; the data lives
// at the inner-mapped physical positions of those intermediates, so the
// physical swap goes through the inner remap.
func (s *TwoLevel) outerStep() wl.Cost {
	var cost wl.Cost
	cost.ExtraCycles = wl.ControlCycles + wl.RNGCycles
	r := &s.outer
	if r.sweep >= r.size {
		r.keyOld = r.keyNew
		r.keyNew = s.src.Intn(r.size)
		r.sweep = 0
	}
	o := r.sweep
	d := r.keyOld ^ r.keyNew
	if d != 0 && (o^d) >= o {
		x1 := o ^ r.keyOld
		x2 := o ^ r.keyNew
		pa1 := s.innerPhys(x1)
		pa2 := s.innerPhys(x2)
		s.swapPages(pa1, pa2, &cost)
	}
	r.sweep++
	// The step re-mapped logical addresses o and o^d (both now under the new
	// outer key); refresh their composed entries.
	s.composed[o] = s.physical(o)
	if d != 0 {
		s.composed[o^d] = s.physical(o ^ d)
	}
	return cost
}

// innerPhys maps an intermediate address through its region's inner remap.
func (s *TwoLevel) innerPhys(mid int) int {
	r := &s.inner[mid/s.inner[0].size]
	return r.base + r.phys(mid&r.mask)
}

// swapPages exchanges the payloads of two physical pages.
func (s *TwoLevel) swapPages(pa1, pa2 int, cost *wl.Cost) {
	if pa1 == pa2 {
		return
	}
	t1 := s.dev.Peek(pa1)
	t2 := s.dev.Peek(pa2)
	s.dev.Write(pa1, t2)
	s.dev.Write(pa2, t1)
	cost.DeviceWrites += 2
	cost.DeviceReads += 2
	cost.Blocked = true
	s.stats.Swaps++
	s.stats.SwapWrites += 2
}

// Read implements wl.Scheme.
func (s *TwoLevel) Read(la int) (uint64, wl.Cost) {
	s.stats.DemandReads++
	return s.dev.Read(s.physical(la)), wl.Cost{DeviceReads: 1, ExtraCycles: 2 * wl.TableCycles}
}

// Stats implements wl.Scheme.
func (s *TwoLevel) Stats() wl.Stats { return s.stats }

// Device implements wl.Scheme.
func (s *TwoLevel) Device() *pcm.Device { return s.dev }

// CheckInvariants implements wl.Checker: the composed mapping must be a
// bijection over the whole array, and wear must be conserved.
func (s *TwoLevel) CheckInvariants() error {
	seen := make([]bool, s.dev.Pages())
	for la := 0; la < s.dev.Pages(); la++ {
		pa := s.physical(la)
		if pa < 0 || pa >= s.dev.Pages() {
			return fmt.Errorf("secref: LA %d maps out of range: %d", la, pa)
		}
		if seen[pa] {
			return fmt.Errorf("secref: physical page %d claimed twice", pa)
		}
		seen[pa] = true
		if s.composed[la] != pa {
			return fmt.Errorf("secref: composed cache stale: LA %d cached %d, live %d",
				la, s.composed[la], pa)
		}
	}
	want := s.stats.DemandWrites + s.stats.SwapWrites
	if got := s.dev.TotalWrites(); got != want {
		return fmt.Errorf("secref: device writes %d != demand %d + swap %d",
			got, s.stats.DemandWrites, s.stats.SwapWrites)
	}
	return nil
}

// Snapshot implements wl.Snapshotter: outer and inner key/sweep state, the
// per-level interval counters, the key RNG position and the stats.
func (s *TwoLevel) Snapshot(w io.Writer) error {
	sw := snap.NewWriter(w)
	s.outer.snapshot(sw)
	sw.Int(len(s.inner))
	for i := range s.inner {
		s.inner[i].snapshot(sw)
	}
	sw.Int(s.sinceOuter)
	sw.Ints(s.sinceInner)
	if err := sw.Err(); err != nil {
		return err
	}
	if err := s.src.Snapshot(w); err != nil {
		return err
	}
	return s.stats.Snapshot(w)
}

// Restore implements wl.Snapshotter; the composed la → pa cache is rebuilt
// from the restored keys.
func (s *TwoLevel) Restore(r io.Reader) error {
	sr := snap.NewReader(r)
	if err := s.outer.restore(sr); err != nil {
		return err
	}
	if n := sr.Int(); sr.Err() == nil && n != len(s.inner) {
		return fmt.Errorf("secref: checkpoint has %d inner regions, scheme has %d", n, len(s.inner))
	}
	if err := sr.Err(); err != nil {
		return err
	}
	for i := range s.inner {
		if err := s.inner[i].restore(sr); err != nil {
			return err
		}
	}
	s.sinceOuter = sr.Int()
	sr.IntsInto(s.sinceInner)
	if err := sr.Err(); err != nil {
		return err
	}
	if err := s.src.Restore(r); err != nil {
		return err
	}
	if err := s.stats.Restore(r); err != nil {
		return err
	}
	for la := range s.composed {
		s.composed[la] = s.physical(la)
	}
	return nil
}

func init() {
	wl.Register(wl.Registration{
		Name:  "SR2",
		Order: 110,
		Doc:   "Security Refresh, two level, at full-scale leveling rates (lifetime experiments rescale the intervals; see lifetimeScheme in experiments.go)",
		New: func(dev *pcm.Device, seed uint64) (wl.Scheme, error) {
			return NewTwoLevel(dev, DefaultTwoLevelConfig(dev.Pages(), 1e8, seed))
		},
	})
}
