package twl_test

import (
	"fmt"

	"twl"
)

// Build a scaled PCM system, attach TWL, and measure its lifetime under the
// paper's inconsistent-write attack.
func Example() {
	sys := twl.SystemConfig{
		Pages: 512, PageSize: 4096, MeanEndurance: 5000, SigmaFraction: 0.11, Seed: 1,
	}
	dev, err := sys.NewDevice()
	if err != nil {
		panic(err)
	}
	scheme, err := twl.NewScheme("TWL_swp", dev, 7)
	if err != nil {
		panic(err)
	}
	attack, err := twl.NewAttack(twl.AttackInconsistent, sys.Pages, 11)
	if err != nil {
		panic(err)
	}
	res, err := twl.RunLifetime(scheme, attack)
	if err != nil {
		panic(err)
	}
	fmt.Println("survives more than half of the ideal lifetime:", res.Normalized > 0.5)
	// Output:
	// survives more than half of the ideal lifetime: true
}

// Construct a TWL engine with an explicit configuration instead of the
// paper defaults.
func ExampleNewTWL() {
	sys := twl.SystemConfig{
		Pages: 256, PageSize: 4096, MeanEndurance: 1e9, SigmaFraction: 0.11, Seed: 2,
	}
	dev, _ := sys.NewDevice()
	cfg := twl.TWLConfig{
		Pairing:               twl.PairAdjacent,
		TossUpInterval:        8,
		InterPairSwapInterval: 64,
		Seed:                  3,
		UseFeistel:            true,
	}
	engine, err := twl.NewTWL(dev, cfg)
	if err != nil {
		panic(err)
	}
	engine.Write(0, 0xC0FFEE)
	v, _ := engine.Read(0)
	fmt.Printf("%s read back %#x\n", engine.Name(), v)
	// Output:
	// TWL_ap read back 0xc0ffee
}

// The Section 5.4 hardware-cost report.
func ExampleHardwareCost() {
	hc := twl.HardwareCost()
	fmt.Printf("%d bits per page, %d logic gates\n", hc.TotalBits, hc.Logic.TotalGates)
	// Output:
	// 80 bits per page, 840 logic gates
}

// Ideal lifetime of the full-size 32 GB system at the Figure 6 attack
// bandwidth.
func ExampleIdealYears() {
	fmt.Printf("%.1f years\n", twl.IdealYears(twl.Fig6AttackBandwidth))
	// Output:
	// 6.7 years
}

// Table 2 rows are available programmatically.
func ExampleBenchmarkByName() {
	b, err := twl.BenchmarkByName("vips")
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s writes %.0f MB/s; ideal lifetime %.0f years\n",
		b.Name, b.WriteBandwidthMBps, b.IdealLifetimeYears)
	// Output:
	// vips writes 3309 MB/s; ideal lifetime 16 years
}
