// Package wltest provides a conformance suite that every wear-leveling
// scheme must pass: data integrity under arbitrary operation interleavings,
// invariant preservation, wear conservation, and cost-reporting sanity.
// Each scheme package runs the suite against its own constructor, so a new
// scheme gets the full battery for free.
package wltest

import (
	"testing"

	"twl/internal/pcm"
	"twl/internal/pv"
	"twl/internal/rng"
	"twl/internal/wl"
)

// NewDevice builds a test device with a Gaussian endurance map and
// effectively infinite endurance (wear-out is exercised separately).
func NewDevice(tb testing.TB, pages int, seed uint64) *pcm.Device {
	tb.Helper()
	return NewDeviceEndurance(tb, pages, 1e15, seed)
}

// NewDeviceEndurance builds a test device with the given mean endurance.
func NewDeviceEndurance(tb testing.TB, pages int, mean float64, seed uint64) *pcm.Device {
	tb.Helper()
	return NewSpareDevice(tb, pages, 0, mean, seed)
}

// NewPackedDeviceEndurance builds the packed-storage twin of
// NewDeviceEndurance: identical geometry, timing and endurance map, uint32
// device arrays. Differential tests pair the two to prove storage width
// never leaks into results.
func NewPackedDeviceEndurance(tb testing.TB, pages int, mean float64, seed uint64) *pcm.Device {
	tb.Helper()
	geom := pcm.Geometry{Pages: pages, PageSize: 4096, LineSize: 128, Ranks: 4, Banks: 32}
	end, err := pv.Generate(pv.Config{
		Pages: pages, Mean: mean, Sigma: 0.11 * mean, Model: pv.Gaussian, Seed: seed,
	})
	if err != nil {
		tb.Fatal(err)
	}
	dev, err := pcm.NewPackedDevice(geom, pcm.DefaultTiming(), end)
	if err != nil {
		tb.Fatal(err)
	}
	return dev
}

// NewSpareDevice builds a test device with spares spare pages behind the
// visible array, drawing one Gaussian endurance map across both regions —
// the spare pool is fabbed from the same process as the rest of the die.
func NewSpareDevice(tb testing.TB, pages, spares int, mean float64, seed uint64) *pcm.Device {
	tb.Helper()
	geom := pcm.Geometry{Pages: pages, PageSize: 4096, LineSize: 128, Ranks: 4, Banks: 32, SparePages: spares}
	end, err := pv.Generate(pv.Config{
		Pages: pages + spares, Mean: mean, Sigma: 0.11 * mean, Model: pv.Gaussian, Seed: seed,
	})
	if err != nil {
		tb.Fatal(err)
	}
	dev, err := pcm.NewDevice(geom, pcm.DefaultTiming(), end)
	if err != nil {
		tb.Fatal(err)
	}
	return dev
}

// logicalPages returns the demand-addressable page count of a scheme.
func logicalPages(s wl.Scheme) int {
	if z, ok := s.(interface{ LogicalPages() int }); ok {
		return z.LogicalPages()
	}
	return s.Device().Pages()
}

// Run executes the full conformance suite. build must return a fresh scheme
// over a fresh device each call (seed varies the endurance map and any
// internal randomness).
func Run(t *testing.T, build func(tb testing.TB, seed uint64) wl.Scheme) {
	t.Run("DataIntegrity", func(t *testing.T) { dataIntegrity(t, build) })
	t.Run("WearConservation", func(t *testing.T) { wearConservation(t, build) })
	t.Run("InvariantsHold", func(t *testing.T) { invariantsHold(t, build) })
	t.Run("CostSanity", func(t *testing.T) { costSanity(t, build) })
	t.Run("StatsMonotonic", func(t *testing.T) { statsMonotonic(t, build) })
}

// dataIntegrity: reading a logical page always returns the last value
// written to it, across any internal remapping the scheme performs.
func dataIntegrity(t *testing.T, build func(tb testing.TB, seed uint64) wl.Scheme) {
	for _, seed := range []uint64{1, 2, 3} {
		s := build(t, seed)
		n := logicalPages(s)
		shadow := make(map[int]uint64)
		src := rng.NewXorshift(seed * 977)
		for i := 0; i < 60000; i++ {
			la := src.Intn(n)
			if src.Intn(4) == 0 {
				got, _ := s.Read(la)
				if want, ok := shadow[la]; ok && got != want {
					t.Fatalf("seed %d op %d: Read(%d) = %d, want %d", seed, i, la, got, want)
				}
			} else {
				tag := src.Uint64()
				s.Write(la, tag)
				shadow[la] = tag
			}
		}
		for la, want := range shadow {
			if got, _ := s.Read(la); got != want {
				t.Fatalf("seed %d: final Read(%d) = %d, want %d", seed, la, got, want)
			}
		}
	}
}

// wearConservation: device writes must equal demand writes plus the
// scheme's reported swap writes — no silent wear.
func wearConservation(t *testing.T, build func(tb testing.TB, seed uint64) wl.Scheme) {
	s := build(t, 7)
	n := logicalPages(s)
	src := rng.NewXorshift(123)
	for i := 0; i < 50000; i++ {
		s.Write(src.Intn(n), uint64(i))
	}
	st := s.Stats()
	if got, want := s.Device().TotalWrites(), st.DemandWrites+st.SwapWrites; got != want {
		t.Fatalf("device writes %d != demand %d + swap %d", got, st.DemandWrites, st.SwapWrites)
	}
	if st.DemandWrites != 50000 {
		t.Fatalf("DemandWrites = %d, want 50000", st.DemandWrites)
	}
}

// invariantsHold: the scheme's own CheckInvariants passes after heavy load.
func invariantsHold(t *testing.T, build func(tb testing.TB, seed uint64) wl.Scheme) {
	s := build(t, 11)
	c, ok := s.(wl.Checker)
	if !ok {
		t.Skip("scheme does not implement wl.Checker")
	}
	n := logicalPages(s)
	src := rng.NewXorshift(321)
	for i := 0; i < 50000; i++ {
		if src.Intn(5) == 0 {
			s.Read(src.Intn(n))
		} else {
			s.Write(src.Intn(n), src.Uint64())
		}
		if i%9973 == 0 {
			if err := c.CheckInvariants(); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
		}
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// costSanity: every write performs at least one device write; every read at
// least one device read; cycle conversion is positive.
func costSanity(t *testing.T, build func(tb testing.TB, seed uint64) wl.Scheme) {
	s := build(t, 13)
	n := logicalPages(s)
	timing := s.Device().Timing()
	src := rng.NewXorshift(55)
	for i := 0; i < 20000; i++ {
		la := src.Intn(n)
		cost := s.Write(la, uint64(i))
		if cost.DeviceWrites < 1 {
			t.Fatalf("write cost reports %d device writes", cost.DeviceWrites)
		}
		if cost.Cycles(timing) <= 0 {
			t.Fatalf("write cost cycles %d not positive", cost.Cycles(timing))
		}
		if cost.DeviceWrites == 1 && cost.DeviceReads == 0 && cost.Blocked {
			t.Fatal("plain write reported blocked")
		}
		_, rcost := s.Read(la)
		if rcost.DeviceReads < 1 {
			t.Fatalf("read cost reports %d device reads", rcost.DeviceReads)
		}
		if rcost.DeviceWrites != 0 {
			t.Fatalf("read performed %d device writes", rcost.DeviceWrites)
		}
	}
}

// statsMonotonic: counters only grow, and demand counters track operations
// exactly.
func statsMonotonic(t *testing.T, build func(tb testing.TB, seed uint64) wl.Scheme) {
	s := build(t, 17)
	n := logicalPages(s)
	src := rng.NewXorshift(77)
	var prev wl.Stats
	for i := 0; i < 10000; i++ {
		if i%3 == 0 {
			s.Read(src.Intn(n))
		} else {
			s.Write(src.Intn(n), uint64(i))
		}
		st := s.Stats()
		if st.DemandWrites < prev.DemandWrites || st.DemandReads < prev.DemandReads ||
			st.SwapWrites < prev.SwapWrites || st.Swaps < prev.Swaps {
			t.Fatalf("op %d: stats went backwards: %+v -> %+v", i, prev, st)
		}
		prev = st
	}
	// 10000 ops, i%3==0 is a read → 3334 reads, 6666 writes.
	if prev.DemandWrites != 6666 || prev.DemandReads != 3334 {
		t.Fatalf("DemandWrites/Reads = %d/%d, want 6666/3334", prev.DemandWrites, prev.DemandReads)
	}
}
