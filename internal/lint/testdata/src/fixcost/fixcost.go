// Package fixcost exercises the cost analyzer: statements that silently
// discard a returned wl.Cost or error, next to the sanctioned patterns
// (explicit _ assignment, fmt printing, in-memory sinks).
package fixcost

import (
	"fmt"
	"os"
	"strings"

	"twl/internal/wl"
)

func write() wl.Cost                 { return wl.Cost{} }
func writeChecked() (wl.Cost, error) { return wl.Cost{}, nil }
func flush() error                   { return nil }

// Leaky drops every contract-relevant result: five statements, six findings
// (writeChecked drops a wl.Cost and an error at once).
func Leaky() {
	write()
	writeChecked()
	flush()
	defer flush()
	go flush()
}

// Careful consumes or explicitly discards everything: clean.
func Careful() {
	_ = write()
	if _, err := writeChecked(); err != nil {
		return
	}
	fmt.Println("status")
	fmt.Fprintln(os.Stderr, "status")
	var b strings.Builder
	b.WriteString("status")
	_ = b.String()
}
