package main

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files from current analyzer output")

// fixtures maps each analyzer to its fixture package. The synthetic import
// paths matter: determinism only covers twl/internal/..., and registry's
// rule 1 only engages for packages directly under twl/internal/wl/.
var fixtures = []struct {
	analyzer *analyzer
	dir      string
	path     string
}{
	{determinismAnalyzer, "fixdet", "twl/internal/fixdet"},
	{registryAnalyzer, "fixreg", "twl/internal/wl/fixreg"},
	{costAnalyzer, "fixcost", "twl/internal/fixcost"},
	{locksAnalyzer, "fixlocks", "twl/internal/fixlocks"},
	{snapshotAnalyzer, "fixsnap", "twl/internal/fixsnap"},
	{decoratorAnalyzer, "fixdec", "twl/internal/fixdec"},
}

// loadFixture type-checks one fixture package and builds the analysis world
// around it.
func loadFixture(t *testing.T, l *loader, dir, path string, allow *Allowlist) (*Package, *world) {
	t.Helper()
	p, err := l.LoadDir(filepath.Join("testdata", "src", dir), path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := newWorld(l, []*Package{p}, allow)
	if err != nil {
		t.Fatal(err)
	}
	return p, w
}

func render(diags []Diagnostic) string {
	sortDiags(diags)
	var b strings.Builder
	for _, d := range diags {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// TestAnalyzersMatchGolden proves every analyzer fires on its fixture and
// that the exact set of findings — positions and messages — is pinned by a
// golden file. Run with -update to regenerate after intentional changes.
func TestAnalyzersMatchGolden(t *testing.T) {
	l := newLoader()
	for _, fx := range fixtures {
		t.Run(fx.analyzer.name, func(t *testing.T) {
			p, w := loadFixture(t, l, fx.dir, fx.path, nil)
			got := render(fx.analyzer.run(p, w))
			golden := filepath.Join("testdata", fx.dir+".golden")
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatal(err)
			}
			if got != string(want) {
				t.Errorf("diagnostics diverge from %s:\ngot:\n%swant:\n%s", golden, got, want)
			}
			if got == "" {
				t.Error("fixture produced no findings; the analyzer cannot be proven to fire")
			}
		})
	}
}

// TestAllowlistScoping: a package-wide entry silences every finding; a
// declaration-scoped entry silences only the findings inside it.
func TestAllowlistScoping(t *testing.T) {
	l := newLoader()
	writeAllow := func(content string) *Allowlist {
		t.Helper()
		path := filepath.Join(t.TempDir(), "allow")
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		a, err := ParseAllowlist(path)
		if err != nil {
			t.Fatal(err)
		}
		return a
	}

	p, w := loadFixture(t, l, "fixdet", "twl/internal/fixdet", nil)
	all := determinismAnalyzer.run(p, w)
	if len(all) == 0 {
		t.Fatal("fixture produced no findings to filter")
	}

	w.allow = writeAllow("# everything sanctioned\ndeterminism twl/internal/fixdet\n")
	if got := determinismAnalyzer.run(p, w); len(got) != 0 {
		t.Fatalf("package-wide allow left %d findings: %v", len(got), got)
	}

	w.allow = writeAllow("determinism twl/internal/fixdet Clocks\n")
	got := determinismAnalyzer.run(p, w)
	if len(got) != len(all)-2 {
		t.Fatalf("decl-scoped allow: got %d findings, want %d (the two Clocks findings removed)", len(got), len(all)-2)
	}
	for _, d := range got {
		if strings.Contains(d.Message, "wall-clock") {
			t.Fatalf("Clocks finding survived the decl-scoped allow: %v", d)
		}
	}
}

func TestParseAllowlistRejectsMalformed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "allow")
	if err := os.WriteFile(path, []byte("toomany fields in this line here\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseAllowlist(path); err == nil {
		t.Fatal("malformed allowlist accepted")
	}
	if _, err := ParseAllowlist(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("missing allowlist file accepted")
	}
}

// TestCleanTree is the self-test the Makefile's lint target relies on: the
// repository's own packages produce zero findings under the checked-in
// allowlist.
func TestCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	allow, err := ParseAllowlist(filepath.Join("..", "..", "twlint.allow"))
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run([]string{"twl/..."}, allow)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("unexpected finding on clean tree: %v", d)
	}
}
