package attack

import (
	"testing"
)

func TestLocalScanValidation(t *testing.T) {
	if _, err := NewLocalScan(0, 1, 0); err == nil {
		t.Fatal("zero pages accepted")
	}
	if _, err := NewLocalScan(8, 0, 0); err == nil {
		t.Fatal("zero window accepted")
	}
	if _, err := NewLocalScan(8, 9, 0); err == nil {
		t.Fatal("window > pages accepted")
	}
	if _, err := NewLocalScan(8, 2, -1); err == nil {
		t.Fatal("negative dwell accepted")
	}
}

func TestLocalScanStaysInWindow(t *testing.T) {
	s, err := NewLocalScan(64, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		a := s.Next(Feedback{})
		if a < 0 || a >= 4 {
			t.Fatalf("address %d outside fixed window [0,4)", a)
		}
	}
}

func TestLocalScanCycle(t *testing.T) {
	s, _ := NewLocalScan(64, 3, 0)
	want := []int{0, 1, 2, 0, 1, 2}
	for i, w := range want {
		if a := s.Next(Feedback{}); a != w {
			t.Fatalf("step %d = %d, want %d", i, a, w)
		}
	}
}

func TestLocalScanRelocates(t *testing.T) {
	s, _ := NewLocalScan(16, 4, 8)
	seen := map[int]bool{}
	for i := 0; i < 64; i++ {
		seen[s.Next(Feedback{})] = true
	}
	// After several dwells the window must have moved beyond [0,4).
	beyond := false
	for a := range seen {
		if a >= 4 {
			beyond = true
		}
		if a < 0 || a >= 16 {
			t.Fatalf("address %d out of space", a)
		}
	}
	if !beyond {
		t.Fatal("window never relocated")
	}
}

func TestLocalScanWrapsAddressSpace(t *testing.T) {
	s, _ := NewLocalScan(8, 4, 4)
	for i := 0; i < 100; i++ {
		if a := s.Next(Feedback{}); a < 0 || a >= 8 {
			t.Fatalf("address %d out of space after wrap", a)
		}
	}
}
