package sim

import "errors"

// Queue models the memory channel as a single-server FIFO: requests that
// arrive while an earlier request is still being serviced wait, so
// scheme-induced service-time inflation (swap blocking, table lookups)
// compounds under load. RunPerf's headline normalization charges bare
// service time; the queue view adds the utilization-dependent picture a
// full-system simulator would show.
type Queue struct {
	freeAt  int64 // cycle at which the server becomes free
	busy    int64 // total busy cycles
	waited  int64 // total queueing delay across requests
	served  int64
	lastEnd int64
}

// Serve admits a request arriving at cycle `arrival` needing `service`
// cycles, returning when it starts and completes.
func (q *Queue) Serve(arrival, service int64) (start, done int64, err error) {
	if service < 0 || arrival < 0 {
		return 0, 0, errors.New("sim: negative arrival or service")
	}
	start = arrival
	if q.freeAt > start {
		start = q.freeAt
	}
	done = start + service
	q.freeAt = done
	q.busy += service
	q.waited += start - arrival
	q.served++
	q.lastEnd = done
	return start, done, nil
}

// QueueStats summarizes a queue's history.
type QueueStats struct {
	Served       int64
	BusyCycles   int64
	WaitedCycles int64
	// Utilization is busy time over the span from cycle 0 to the last
	// completion.
	Utilization float64
	// MeanWait is the average queueing delay per request, in cycles.
	MeanWait float64
}

// Stats returns the queue summary.
func (q *Queue) Stats() QueueStats {
	s := QueueStats{Served: q.served, BusyCycles: q.busy, WaitedCycles: q.waited}
	if q.lastEnd > 0 {
		s.Utilization = float64(q.busy) / float64(q.lastEnd)
	}
	if q.served > 0 {
		s.MeanWait = float64(q.waited) / float64(q.served)
	}
	return s
}

// QueuedPerf replays a sequence of service times against a fixed arrival
// cadence (cycles between requests) and returns the queue statistics — the
// utilization view of a benchmark's request stream under a given demand
// bandwidth.
func QueuedPerf(serviceCycles []int64, interarrival int64) (QueueStats, error) {
	if interarrival <= 0 {
		return QueueStats{}, errors.New("sim: interarrival must be positive")
	}
	var q Queue
	var t int64
	for _, s := range serviceCycles {
		if _, _, err := q.Serve(t, s); err != nil {
			return QueueStats{}, err
		}
		t += interarrival
	}
	return q.Stats(), nil
}
