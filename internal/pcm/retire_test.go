package pcm

import (
	"bytes"
	"testing"
)

// spareDevice builds a device with visible pages of the given endurance and
// a spare region of spare pages with endurance spareEnd.
func spareDevice(t *testing.T, pages, spares int, endurance, spareEnd uint64) *Device {
	t.Helper()
	geom := Geometry{Pages: pages, PageSize: 4096, LineSize: 128, Ranks: 4, Banks: 32, SparePages: spares}
	end := make([]uint64, pages+spares)
	for i := range end {
		if i < pages {
			end[i] = endurance
		} else {
			end[i] = spareEnd
		}
	}
	d, err := NewDevice(geom, DefaultTiming(), end)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestSpareGeometry(t *testing.T) {
	d := spareDevice(t, 8, 2, 10, 100)
	if d.Pages() != 8 || d.TotalPages() != 10 || d.SparePages() != 2 {
		t.Fatalf("pages=%d total=%d spares=%d", d.Pages(), d.TotalPages(), d.SparePages())
	}
	if len(d.EnduranceMap()) != 8 {
		t.Fatalf("EnduranceMap covers %d pages, want visible 8", len(d.EnduranceMap()))
	}
	if d.TotalEndurance() != 8*10+2*100 {
		t.Fatalf("TotalEndurance = %d, want %d", d.TotalEndurance(), 8*10+2*100)
	}
	// Endurance map length must match the total, not the visible count.
	geom := Geometry{Pages: 8, PageSize: 4096, LineSize: 128, Ranks: 1, Banks: 1, SparePages: 2}
	if _, err := NewDevice(geom, DefaultTiming(), make([]uint64, 8)); err == nil {
		t.Fatal("visible-only endurance map accepted for spare geometry")
	}
	if (Geometry{Pages: 8, PageSize: 4096, LineSize: 128, Ranks: 1, Banks: 1, SparePages: -1}).Validate() == nil {
		t.Fatal("negative SparePages accepted")
	}
}

func TestRemapRedirectsTraffic(t *testing.T) {
	d := spareDevice(t, 4, 2, 3, 100)
	// Wear page 1 out.
	d.Write(1, 10)
	d.Write(1, 11)
	if !d.Write(1, 12) {
		t.Fatal("page 1 did not fail at endurance 3")
	}
	if page, failed := d.Failed(); !failed || page != 1 {
		t.Fatalf("Failed = %d,%v", page, failed)
	}
	// Retire it onto spare 4.
	if err := d.Remap(1, 4); err != nil {
		t.Fatal(err)
	}
	d.AckFailures(1)
	if _, failed := d.Failed(); failed {
		t.Fatal("acked failure still reported")
	}
	if sp, ok := d.Redirect(1); !ok || sp != 4 {
		t.Fatalf("Redirect(1) = %d,%v, want 4,true", sp, ok)
	}
	// Payload carried over; subsequent traffic lands on the spare.
	if v := d.Read(1); v != 12 {
		t.Fatalf("payload after remap = %d, want 12", v)
	}
	prevWrites := d.TotalWrites()
	d.Write(1, 13)
	if d.Wear(4) != 1 || d.Wear(1) != 3 {
		t.Fatalf("wear after redirected write: spare=%d dead=%d", d.Wear(4), d.Wear(1))
	}
	if d.TotalWrites() != prevWrites+1 {
		t.Fatalf("TotalWrites = %d, want %d (remap itself is metadata-only)", d.TotalWrites(), prevWrites+1)
	}
	if v := d.Peek(1); v != 13 {
		t.Fatalf("Peek(1) = %d, want 13", v)
	}
	if d.Remaining(1) != 99 {
		t.Fatalf("Remaining(1) = %d, want spare's 99", d.Remaining(1))
	}
}

func TestRemapValidation(t *testing.T) {
	d := spareDevice(t, 4, 2, 3, 100)
	if err := d.Remap(-1, 4); err == nil {
		t.Fatal("negative from accepted")
	}
	if err := d.Remap(4, 5); err == nil {
		t.Fatal("spare as from accepted")
	}
	if err := d.Remap(0, 3); err == nil {
		t.Fatal("visible page as target accepted")
	}
	if err := d.Remap(0, 6); err == nil {
		t.Fatal("out-of-range target accepted")
	}
	if err := d.Remap(0, 4); err != nil {
		t.Fatal(err)
	}
	if err := d.Remap(1, 4); err == nil {
		t.Fatal("double-booked spare accepted")
	}
}

// TestRemapChain: a spare that wears out is replaced; the origin re-points
// and the dead spare leaves service.
func TestRemapChain(t *testing.T) {
	d := spareDevice(t, 4, 2, 3, 2)
	for i := 0; i < 3; i++ {
		d.Write(1, uint64(i))
	}
	if err := d.Remap(1, 4); err != nil {
		t.Fatal(err)
	}
	d.AckFailures(1)
	// Spare 4 has endurance 2: two more writes kill it.
	d.Write(1, 100)
	if !d.Write(1, 101) {
		t.Fatal("spare did not fail at its endurance")
	}
	if page, failed := d.Failed(); !failed || page != 4 {
		t.Fatalf("Failed = %d,%v, want spare 4", page, failed)
	}
	if err := d.Remap(1, 5); err != nil {
		t.Fatal(err)
	}
	d.AckFailures(2)
	if sp, _ := d.Redirect(1); sp != 5 {
		t.Fatalf("Redirect(1) = %d, want 5", sp)
	}
	if v := d.Read(1); v != 101 {
		t.Fatalf("payload after re-point = %d, want 101", v)
	}
	d.Write(1, 102)
	if d.Wear(5) != 1 || d.Wear(4) != 2 {
		t.Fatalf("wear spare5=%d spare4=%d", d.Wear(5), d.Wear(4))
	}
	// The dead spare no longer drags the min-remaining watermark to zero.
	if !d.MinRemainingAtLeast(1) {
		t.Fatal("MinRemainingAtLeast(1) false with all live cells healthy")
	}
}

func TestAckFailuresValidation(t *testing.T) {
	d := spareDevice(t, 4, 1, 1, 10)
	d.Write(0, 0)
	d.Write(1, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("AckFailures beyond the log did not panic")
		}
	}()
	if d.FailureAt(0) != 0 || d.FailureAt(1) != 1 {
		t.Fatalf("failure log [%d %d], want [0 1]", d.FailureAt(0), d.FailureAt(1))
	}
	d.AckFailures(1)
	d.AckFailures(3)
}

// TestMinRemainingRecoversAcrossRemap: the watermark is invalidated by
// Remap, so the minimum may go back up when a dead cell leaves the live
// set.
func TestMinRemainingRecoversAcrossRemap(t *testing.T) {
	d := spareDevice(t, 2, 1, 5, 50)
	for i := 0; i < 5; i++ {
		d.Write(0, uint64(i))
	}
	if d.MinRemainingAtLeast(1) {
		t.Fatal("min >= 1 with a dead page in the live set")
	}
	if err := d.Remap(0, 2); err != nil {
		t.Fatal(err)
	}
	d.AckFailures(1)
	if !d.MinRemainingAtLeast(5) {
		t.Fatal("min did not recover after retiring the dead page")
	}
	// Decay still works against the spare.
	for i := 0; i < 46; i++ {
		d.Write(0, uint64(i))
	}
	if d.MinRemainingAtLeast(5) {
		t.Fatal("min >= 5 with spare down to 4 remaining")
	}
	if !d.MinRemainingAtLeast(4) {
		t.Fatal("min < 4 with spare at 4 remaining")
	}
}

// TestBulkWritesFollowRedirects: WriteN, WriteRange and WriteSeq resolve
// retired pages exactly like Write.
func TestBulkWritesFollowRedirects(t *testing.T) {
	d := spareDevice(t, 4, 2, 100, 1000)
	for i := 0; i < 100; i++ {
		d.Write(2, uint64(i))
	}
	if err := d.Remap(2, 4); err != nil {
		t.Fatal(err)
	}
	d.AckFailures(1)

	if n := d.WriteN(2, 500, 10); n != 10 {
		t.Fatalf("WriteN applied %d, want 10", n)
	}
	if d.Wear(4) != 10 || d.Peek(2) != 509 {
		t.Fatalf("after WriteN: spare wear %d payload %d", d.Wear(4), d.Peek(2))
	}

	if n := d.WriteRange(1, 600, 3); n != 3 {
		t.Fatalf("WriteRange applied %d, want 3", n)
	}
	if d.Peek(1) != 600 || d.Peek(2) != 601 || d.Peek(3) != 602 {
		t.Fatalf("WriteRange payloads %d %d %d", d.Peek(1), d.Peek(2), d.Peek(3))
	}
	if d.Wear(4) != 11 {
		t.Fatalf("WriteRange wrote dead cell: spare wear %d", d.Wear(4))
	}

	if n := d.WriteSeq([]int{0, 2, 2}, 700); n != 3 {
		t.Fatalf("WriteSeq applied %d, want 3", n)
	}
	if d.Peek(2) != 702 || d.Wear(4) != 13 {
		t.Fatalf("after WriteSeq: payload %d spare wear %d", d.Peek(2), d.Wear(4))
	}
	if d.Wear(2) != 100 {
		t.Fatalf("dead cell wear moved to %d", d.Wear(2))
	}
}

// TestSnapshotRoundTripWithRetirement: redirects, the failure log and the
// ack point survive a snapshot/restore byte-identically.
func TestSnapshotRoundTripWithRetirement(t *testing.T) {
	d := spareDevice(t, 4, 2, 3, 100)
	for i := 0; i < 3; i++ {
		d.Write(1, uint64(i))
	}
	if err := d.Remap(1, 4); err != nil {
		t.Fatal(err)
	}
	d.AckFailures(1)
	d.Write(1, 50)
	d.Write(0, 51)

	var buf bytes.Buffer
	if err := d.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	d2 := spareDevice(t, 4, 2, 3, 100)
	if err := d2.Restore(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if sp, ok := d2.Redirect(1); !ok || sp != 4 {
		t.Fatalf("restored Redirect(1) = %d,%v", sp, ok)
	}
	if _, failed := d2.Failed(); failed {
		t.Fatal("restored device reports an already-acked failure")
	}
	if d2.FailedPages() != 1 || d2.FailureAt(0) != 1 {
		t.Fatalf("restored failure log: count %d", d2.FailedPages())
	}
	if v := d2.Read(1); v != 50 {
		t.Fatalf("restored payload = %d, want 50", v)
	}
	// Re-snapshot must be byte-identical.
	var buf2 bytes.Buffer
	if err := d2.Snapshot(&buf2); err != nil {
		t.Fatal(err)
	}
	// The second snapshot differs only by the read Read(1) performed above;
	// undo by comparing a third snapshot of d after the same read.
	d.Read(1)
	var buf3 bytes.Buffer
	if err := d.Snapshot(&buf3); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf2.Bytes(), buf3.Bytes()) {
		t.Fatal("snapshot round trip not byte-identical")
	}
	// Writes to the restored device land on the spare.
	d2.Write(1, 60)
	if d2.Wear(4) != 2 {
		t.Fatalf("restored redirect inactive: spare wear %d", d2.Wear(4))
	}
}

func TestResetClearsRetirement(t *testing.T) {
	d := spareDevice(t, 4, 1, 1, 10)
	d.Write(1, 0)
	if err := d.Remap(1, 4); err != nil {
		t.Fatal(err)
	}
	d.AckFailures(1)
	d.Reset()
	if _, ok := d.Redirect(1); ok {
		t.Fatal("Reset kept redirect")
	}
	if d.FailedPages() != 0 {
		t.Fatal("Reset kept failure log")
	}
	if _, failed := d.Failed(); failed {
		t.Fatal("Reset kept failure")
	}
}
