package twl

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (DESIGN.md's experiment index). Each benchmark runs the
// corresponding experiment at SmallSystem scale and attaches the reproduced
// headline values as custom metrics, so
//
//	go test -bench=. -benchmem
//
// prints the same rows/series the paper reports. The cmd/ tools run the
// same experiments at the larger default scale; EXPERIMENTS.md records the
// paper-vs-measured comparison.

import (
	"testing"

	"twl/internal/attack"
	"twl/internal/pcm"
)

// BenchmarkTable1Config regenerates the simulation setup of Table 1 by
// constructing the full configuration and reporting its headline constants.
func BenchmarkTable1Config(b *testing.B) {
	var geom pcm.Geometry
	var timing pcm.Timing
	for i := 0; i < b.N; i++ {
		geom = pcm.DefaultGeometry()
		timing = pcm.DefaultTiming()
		sys := DefaultSystem(1)
		if _, err := sys.NewDevice(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(geom.Capacity()>>30), "PCM-GB")
	b.ReportMetric(float64(geom.PageSize), "page-B")
	b.ReportMetric(float64(timing.SetCycles), "set-cycles")
}

// BenchmarkTable2Benchmarks regenerates Table 2: per-benchmark ideal
// lifetime (computed) and no-wear-leveling lifetime (simulated).
func BenchmarkTable2Benchmarks(b *testing.B) {
	var rows []Table2Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = RunTable2(SmallSystem(1))
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Benchmark == "vips" {
			b.ReportMetric(r.IdealYears, "vips-ideal-y")
			b.ReportMetric(r.NoWLYears, "vips-nowl-y")
		}
		if r.Benchmark == "streamcluster" {
			b.ReportMetric(r.NoWLYears, "strmcl-nowl-y")
		}
	}
}

// BenchmarkFig6AttackLifetime regenerates Figure 6, one sub-benchmark per
// scheme, reporting the per-attack lifetimes in years.
func BenchmarkFig6AttackLifetime(b *testing.B) {
	for _, scheme := range []string{"BWL", "SR", "TWL_ap", "TWL_swp", "NOWL"} {
		scheme := scheme
		b.Run(scheme, func(b *testing.B) {
			var res *Fig6Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = RunFig6(SmallSystem(1), Fig6Config{
					Schemes:              []string{scheme},
					Modes:                []AttackMode{AttackRepeat, AttackRandom, AttackScan, AttackInconsistent},
					BandwidthBytesPerSec: Fig6AttackBandwidth,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			for _, m := range res.Modes {
				b.ReportMetric(res.Cells[scheme][m.String()].Years, m.String()+"-y")
			}
			b.ReportMetric(res.Gmean[scheme], "gmean-y")
		})
	}
}

// BenchmarkFig7TossupInterval regenerates Figure 7's two panels across the
// interval sweep, reporting the values at the paper's chosen interval (32).
func BenchmarkFig7TossupInterval(b *testing.B) {
	cfg := Fig7Config{
		Intervals:            []int{1, 2, 4, 8, 16, 32, 64, 128},
		RequestsPerBenchmark: 60000,
		Benchmarks:           []string{"canneal", "vips", "streamcluster"},
		BandwidthBytesPerSec: Fig6AttackBandwidth,
	}
	var pts []Fig7Point
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = RunFig7(SmallSystem(1), cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range pts {
		if p.Interval == 1 {
			b.ReportMetric(p.SwapWriteRatio, "ratio@1")
		}
		if p.Interval == 32 {
			b.ReportMetric(p.SwapWriteRatio, "ratio@32")
			b.ReportMetric(p.ScanLifetimeYears, "scan-y@32")
		}
	}
}

// BenchmarkFig8NormalizedLifetime regenerates Figure 8 on a three-benchmark
// subset, reporting the per-scheme mean normalized lifetimes.
func BenchmarkFig8NormalizedLifetime(b *testing.B) {
	cfg := Fig8Config{
		Schemes:    []string{"BWL", "SR", "TWL_swp", "NOWL"},
		Benchmarks: []string{"canneal", "vips", "streamcluster"},
	}
	var res *Fig8Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = RunFig8(SmallSystem(1), cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, s := range cfg.Schemes {
		b.ReportMetric(res.Mean[s], s+"-norm")
	}
}

// BenchmarkFig9ExecutionTime regenerates Figure 9 on a three-benchmark
// subset, reporting the per-scheme mean overhead in percent.
func BenchmarkFig9ExecutionTime(b *testing.B) {
	cfg := Fig9Config{
		Schemes:    []string{"BWL", "SR", "TWL_swp"},
		Benchmarks: []string{"canneal", "vips", "streamcluster"},
		Requests:   150000,
	}
	var res *Fig9Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = RunFig9(SmallSystem(1), cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, s := range cfg.Schemes {
		b.ReportMetric(100*(res.Mean[s]-1), s+"-ovh-%")
	}
}

// BenchmarkSec54HardwareCost regenerates the Section 5.4 design-overhead
// numbers.
func BenchmarkSec54HardwareCost(b *testing.B) {
	var hc HardwareCostReport
	for i := 0; i < b.N; i++ {
		hc = HardwareCost()
	}
	b.ReportMetric(float64(hc.TotalBits), "bits/page")
	b.ReportMetric(hc.StorageRatio, "storage-ratio")
	b.ReportMetric(float64(hc.Logic.TotalGates), "gates")
}

// BenchmarkAblationPairing compares the three pairing policies under the
// inconsistent attack — the design choice behind "TWL_swp vs TWL_ap"
// (21.7% lifetime improvement in the paper).
func BenchmarkAblationPairing(b *testing.B) {
	for _, scheme := range []string{"TWL_swp", "TWL_ap", "TWL_rand"} {
		scheme := scheme
		b.Run(scheme, func(b *testing.B) {
			var norm float64
			for i := 0; i < b.N; i++ {
				res, err := RunFig6(SmallSystem(1), Fig6Config{
					Schemes:              []string{scheme},
					Modes:                []AttackMode{AttackInconsistent},
					BandwidthBytesPerSec: Fig6AttackBandwidth,
				})
				if err != nil {
					b.Fatal(err)
				}
				norm = res.Cells[scheme]["inconsistent"].Normalized
			}
			b.ReportMetric(norm, "norm-lifetime")
		})
	}
}

// BenchmarkAblationInterPairSwap measures what the inter-pair swap buys:
// without it, a toss-up pair is an island and a concentrated stream
// exhausts one pair instead of spreading across the array.
func BenchmarkAblationInterPairSwap(b *testing.B) {
	for _, tc := range []struct {
		name     string
		interval int
	}{{"on-128", 128}, {"off", 0}} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			var norm float64
			for i := 0; i < b.N; i++ {
				sys := SmallSystem(1)
				dev, err := sys.NewDevice()
				if err != nil {
					b.Fatal(err)
				}
				cfg := TWLConfig{
					Pairing: PairStrongWeak, TossUpInterval: 32,
					InterPairSwapInterval: tc.interval, Seed: 5, UseFeistel: true,
				}
				e, err := NewTWL(dev, cfg)
				if err != nil {
					b.Fatal(err)
				}
				src, err := NewAttack(AttackRepeat, sys.Pages, 7)
				if err != nil {
					b.Fatal(err)
				}
				res, err := RunLifetime(e, src)
				if err != nil {
					b.Fatal(err)
				}
				norm = res.Normalized
			}
			b.ReportMetric(norm, "norm-lifetime")
		})
	}
}

// BenchmarkAblationRNG compares the hardware-faithful Feistel RNG against
// xorshift in the toss-up: lifetimes must agree (the 8-bit quantization is
// statistically irrelevant), while the Feistel costs a few more ns.
func BenchmarkAblationRNG(b *testing.B) {
	for _, tc := range []struct {
		name    string
		feistel bool
	}{{"feistel", true}, {"xorshift", false}} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			var norm float64
			for i := 0; i < b.N; i++ {
				sys := SmallSystem(1)
				dev, err := sys.NewDevice()
				if err != nil {
					b.Fatal(err)
				}
				cfg := DefaultTWLConfig(5)
				cfg.UseFeistel = tc.feistel
				e, err := NewTWL(dev, cfg)
				if err != nil {
					b.Fatal(err)
				}
				src, err := NewAttack(AttackInconsistent, sys.Pages, 7)
				if err != nil {
					b.Fatal(err)
				}
				res, err := RunLifetime(e, src)
				if err != nil {
					b.Fatal(err)
				}
				norm = res.Normalized
			}
			b.ReportMetric(norm, "norm-lifetime")
		})
	}
}

// BenchmarkAblationETNoise measures how TWL's attack immunity degrades as
// the manufacturer-tested endurance table gets noisy — TWL's placement is
// driven entirely by the ET, so this is its key robustness question.
func BenchmarkAblationETNoise(b *testing.B) {
	for _, tc := range []struct {
		name  string
		sigma float64
	}{{"exact", 0}, {"noise-10pct", 0.10}, {"noise-50pct", 0.50}} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			var norm float64
			for i := 0; i < b.N; i++ {
				sys := SmallSystem(1)
				dev, err := sys.NewDevice()
				if err != nil {
					b.Fatal(err)
				}
				cfg := DefaultTWLConfig(5)
				cfg.ETNoiseSigma = tc.sigma
				e, err := NewTWL(dev, cfg)
				if err != nil {
					b.Fatal(err)
				}
				src, err := NewAttack(AttackInconsistent, sys.Pages, 7)
				if err != nil {
					b.Fatal(err)
				}
				res, err := RunLifetime(e, src)
				if err != nil {
					b.Fatal(err)
				}
				norm = res.Normalized
			}
			b.ReportMetric(norm, "norm-lifetime")
		})
	}
}

// BenchmarkExtensionOD3PDegradation measures the graceful-degradation
// extension (reference [1]): demand writes served until 10% of the pages
// have failed, versus the first-failure metric the paper's figures use.
func BenchmarkExtensionOD3PDegradation(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		sys := SmallSystem(1)
		dev, err := sys.NewDevice()
		if err != nil {
			b.Fatal(err)
		}
		s, err := NewScheme("OD3P", dev, 3)
		if err != nil {
			b.Fatal(err)
		}
		src, err := NewWorkload(mustBench(b, "canneal"), sys.Pages, 9)
		if err != nil {
			b.Fatal(err)
		}
		var firstFailure, total uint64
		for total < 50_000_000 {
			addr, write := src.Next(attack.Feedback{})
			if !write {
				continue
			}
			s.Write(addr, total)
			total++
			if _, failed := dev.Failed(); failed && firstFailure == 0 {
				firstFailure = total
			}
			if float64(dev.FailedPages())/float64(sys.Pages) > 0.10 {
				break
			}
		}
		ratio = float64(total) / float64(firstFailure)
	}
	b.ReportMetric(ratio, "writes-past-first-failure-x")
}

func mustBench(b *testing.B, name string) Benchmark {
	bench, err := BenchmarkByName(name)
	if err != nil {
		b.Fatal(err)
	}
	return bench
}
