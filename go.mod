module twl

go 1.22
