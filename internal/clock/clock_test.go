package clock

import (
	"sync"
	"testing"
	"time"
)

func TestRealClockAdvances(t *testing.T) {
	a := Now()
	b := Now()
	if b.Before(a) {
		t.Fatalf("clock went backwards: %v then %v", a, b)
	}
	if d := Since(a); d < 0 {
		t.Fatalf("Since returned negative duration %v", d)
	}
}

func TestSetForTestSwapsAndRestores(t *testing.T) {
	fixed := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	restore := SetForTest(func() time.Time { return fixed })
	if got := Now(); !got.Equal(fixed) {
		t.Fatalf("Now() = %v, want %v", got, fixed)
	}
	if d := Since(fixed.Add(-3 * time.Second)); d != 3*time.Second {
		t.Fatalf("Since = %v, want 3s", d)
	}
	restore()
	if got := Now(); got.Equal(fixed) {
		t.Fatal("restore did not reinstate the real clock")
	}
}

func TestStepperIsDeterministic(t *testing.T) {
	start := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	src := Stepper(start, time.Second)
	for i := 0; i < 5; i++ {
		want := start.Add(time.Duration(i) * time.Second)
		if got := src(); !got.Equal(want) {
			t.Fatalf("call %d = %v, want %v", i, got, want)
		}
	}
}

func TestStepperConcurrentCallsAreDistinct(t *testing.T) {
	start := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	src := Stepper(start, time.Millisecond)
	const n = 64
	var wg sync.WaitGroup
	times := make([]time.Time, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			times[i] = src()
		}(i)
	}
	wg.Wait()
	seen := map[int64]bool{}
	for _, ts := range times {
		ns := ts.UnixNano()
		if seen[ns] {
			t.Fatalf("duplicate timestamp %v", ts)
		}
		seen[ns] = true
	}
}
