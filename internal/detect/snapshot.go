package detect

import (
	"fmt"
	"io"
	"sort"

	"twl/internal/snap"
)

// Snapshot serializes the detector's full mutable state: both window count
// tables, the window position, the flag ring and the last-window statistics.
// Maps are written in sorted-key order so the encoding is deterministic.
func (d *Detector) Snapshot(w io.Writer) error {
	sw := snap.NewWriter(w)
	writeCountMap(sw, d.cur)
	sw.Int(d.inWindow)
	sw.Bool(d.prev != nil)
	if d.prev != nil {
		writeCountMap(sw, d.prev)
	}
	for _, f := range d.flags {
		sw.Bool(f)
	}
	sw.Int(d.flagIdx)
	sw.Int(d.windows)
	sw.F64(d.lastConc)
	sw.F64(d.lastCorr)
	sw.Int(d.lastHottest)
	sw.Bool(d.haveHottest)
	sw.Int(d.alarmEvents)
	return sw.Err()
}

// Restore overwrites the detector's mutable state from a Snapshot taken on
// a detector with the same configuration (the flag-ring length is derived
// from AlarmWindows).
func (d *Detector) Restore(r io.Reader) error {
	sr := snap.NewReader(r)
	cur, err := readCountMap(sr)
	if err != nil {
		return err
	}
	inWindow := sr.Int()
	var prev map[int]int
	if sr.Bool() {
		if prev, err = readCountMap(sr); err != nil {
			return err
		}
	}
	flags := make([]bool, len(d.flags))
	for i := range flags {
		flags[i] = sr.Bool()
	}
	flagIdx := sr.Int()
	windows := sr.Int()
	lastConc := sr.F64()
	lastCorr := sr.F64()
	lastHottest := sr.Int()
	haveHottest := sr.Bool()
	alarmEvents := sr.Int()
	if err := sr.Err(); err != nil {
		return err
	}
	if flagIdx < 0 || flagIdx >= len(flags) {
		return fmt.Errorf("detect: checkpoint flag index %d outside ring of %d", flagIdx, len(flags))
	}
	d.cur = cur
	d.inWindow = inWindow
	d.prev = prev
	d.flags = flags
	d.flagIdx = flagIdx
	d.windows = windows
	d.lastConc = lastConc
	d.lastCorr = lastCorr
	d.lastHottest = lastHottest
	d.haveHottest = haveHottest
	d.alarmEvents = alarmEvents
	return nil
}

// writeCountMap appends a per-address count table in sorted-key order.
func writeCountMap(sw *snap.Writer, m map[int]int) {
	keys := make([]int, 0, len(m))
	for la := range m {
		keys = append(keys, la)
	}
	sort.Ints(keys)
	sw.Int(len(keys))
	for _, la := range keys {
		sw.Int(la)
		sw.Int(m[la])
	}
}

// readCountMap decodes a table written by writeCountMap.
func readCountMap(sr *snap.Reader) (map[int]int, error) {
	n := sr.Int()
	if err := sr.Err(); err != nil {
		return nil, err
	}
	if n < 0 {
		return nil, fmt.Errorf("detect: negative checkpoint map size %d", n)
	}
	m := make(map[int]int, n)
	for i := 0; i < n; i++ {
		la := sr.Int()
		m[la] = sr.Int()
	}
	return m, sr.Err()
}
