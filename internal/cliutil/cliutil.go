// Package cliutil is the shared flag-validation vocabulary of the command
// line tools. Every validator is a pure function returning an error, so the
// rules are unit-testable without forking a process; Check is the one exit
// point, printing "<tool>: <error>" and exiting with status 2 (the flag
// package's own usage-error status).
//
// The package exists because the tools grew ad-hoc checks with ad-hoc gaps:
// a negative -spare-frac slipped through a `!= 0` guard, bigbench accepted
// -resume without a checkpoint directory to resume from, and each main.go
// phrased the same dependency rule differently. Centralizing the
// vocabulary makes the audit one file instead of five.
package cliutil

import (
	"fmt"
	"os"
	"strings"
)

// exit is a test seam; production keeps the os.Exit default.
var exit = func(tool string, err error) {
	fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
	os.Exit(2)
}

// Check exits with status 2 after printing err under the tool's name; a nil
// err is a no-op. Validation failures are usage errors, distinct from the
// runtime-failure exit(1) paths of the tools.
func Check(tool string, err error) {
	if err != nil {
		exit(tool, err)
	}
}

// FirstError returns the first non-nil error, so call sites can batch
// validators: cliutil.Check(tool, cliutil.FirstError(v1, v2, ...)).
func FirstError(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// NoArgs rejects stray positional arguments (every tool here is pure-flag;
// a forgotten dash silently dropping an option is the classic failure).
func NoArgs(args []string) error {
	if len(args) > 0 {
		return fmt.Errorf("unexpected arguments: %s (all options are flags)", strings.Join(args, " "))
	}
	return nil
}

// Required rejects an empty value for a mandatory string flag.
func Required(name, value string) error {
	if value == "" {
		return fmt.Errorf("%s is required", name)
	}
	return nil
}

// Requires enforces a flag dependency: name (when set) needs dep.
func Requires(name string, set bool, dep string, depSet bool) error {
	if set && !depSet {
		return fmt.Errorf("%s requires %s", name, dep)
	}
	return nil
}

// Fraction requires v in [0, 1) — the domain of spare-pool and capacity
// fractions. zeroOK admits the "feature off" zero value.
func Fraction(name string, v float64, zeroOK bool) error {
	if v == 0 {
		if zeroOK {
			return nil
		}
		return fmt.Errorf("%s must be in (0, 1), got 0", name)
	}
	if v < 0 || v >= 1 {
		return fmt.Errorf("%s must be in [0, 1), got %g", name, v)
	}
	return nil
}

// NonNegativeInt rejects negative counts where zero means "use the
// default".
func NonNegativeInt(name string, v int) error {
	if v < 0 {
		return fmt.Errorf("%s must be non-negative, got %d", name, v)
	}
	return nil
}

// PositiveInt rejects non-positive counts where the flag has no "default"
// zero.
func PositiveInt(name string, v int) error {
	if v <= 0 {
		return fmt.Errorf("%s must be positive, got %d", name, v)
	}
	return nil
}

// PositiveFloat rejects non-positive values where the flag has no
// "default" zero.
func PositiveFloat(name string, v float64) error {
	if v <= 0 {
		return fmt.Errorf("%s must be positive, got %g", name, v)
	}
	return nil
}

// NonNegativeFloat rejects negative values where zero means "use the
// default".
func NonNegativeFloat(name string, v float64) error {
	if v < 0 {
		return fmt.Errorf("%s must be non-negative, got %g", name, v)
	}
	return nil
}

// Exclusive rejects setting both of two mutually exclusive flags.
func Exclusive(a string, aSet bool, b string, bSet bool) error {
	if aSet && bSet {
		return fmt.Errorf("choose either %s or %s, not both", a, b)
	}
	return nil
}
