package obs

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartProfile begins a CPU profile at prefix.cpu.pprof and returns a stop
// function that ends it and additionally snapshots the heap to
// prefix.heap.pprof. The cmd tools call this behind their -pprof flag so
// every experiment can be profiled without code changes:
//
//	stop, err := obs.StartProfile("run1")
//	defer stop()
func StartProfile(prefix string) (stop func() error, err error) {
	cpu, err := os.Create(prefix + ".cpu.pprof")
	if err != nil {
		return nil, fmt.Errorf("obs: cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(cpu); err != nil {
		_ = cpu.Close() // the StartCPUProfile error takes precedence
		return nil, fmt.Errorf("obs: cpu profile: %w", err)
	}
	return func() error {
		pprof.StopCPUProfile()
		if err := cpu.Close(); err != nil {
			return err
		}
		heap, err := os.Create(prefix + ".heap.pprof")
		if err != nil {
			return fmt.Errorf("obs: heap profile: %w", err)
		}
		runtime.GC() // settle allocations so the snapshot reflects live data
		if err := pprof.WriteHeapProfile(heap); err != nil {
			_ = heap.Close() // the WriteHeapProfile error takes precedence
			return fmt.Errorf("obs: heap profile: %w", err)
		}
		return heap.Close()
	}, nil
}
