package stats

import (
	"math"
	"testing"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	if !almostEq(Mean([]float64{1, 2, 3}), 2) {
		t.Fatal("Mean([1,2,3]) != 2")
	}
}

func TestGeoMean(t *testing.T) {
	g, err := GeoMean([]float64{1, 100})
	if err != nil || !almostEq(g, 10) {
		t.Fatalf("GeoMean([1,100]) = %v, %v", g, err)
	}
	g, err = GeoMean([]float64{2, 2, 2})
	if err != nil || !almostEq(g, 2) {
		t.Fatalf("GeoMean([2,2,2]) = %v, %v", g, err)
	}
	if _, err := GeoMean(nil); err == nil {
		t.Fatal("GeoMean(nil) accepted")
	}
	if _, err := GeoMean([]float64{1, 0}); err == nil {
		t.Fatal("GeoMean with zero accepted")
	}
	if _, err := GeoMean([]float64{-1}); err == nil {
		t.Fatal("GeoMean with negative accepted")
	}
}

func TestStdDev(t *testing.T) {
	if StdDev(nil) != 0 {
		t.Fatal("StdDev(nil) != 0")
	}
	if !almostEq(StdDev([]float64{5, 5, 5}), 0) {
		t.Fatal("constant StdDev != 0")
	}
	// Population stddev of {2,4,4,4,5,5,7,9} is 2.
	if got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}); !almostEq(got, 2) {
		t.Fatalf("StdDev = %v, want 2", got)
	}
}

func TestStdDevSample(t *testing.T) {
	if StdDevSample(nil) != 0 || StdDevSample([]float64{3}) != 0 {
		t.Fatal("StdDevSample of <2 values != 0")
	}
	// Sample stddev of {2,4,4,4,5,5,7,9}: sum of squares 32, ÷7.
	want := math.Sqrt(32.0 / 7)
	if got := StdDevSample([]float64{2, 4, 4, 4, 5, 5, 7, 9}); !almostEq(got, want) {
		t.Fatalf("StdDevSample = %v, want %v", got, want)
	}
	// Bessel's correction always widens the estimate over the population σ.
	xs := []float64{1, 2, 6, 9}
	if StdDevSample(xs) <= StdDev(xs) {
		t.Fatal("sample stddev not larger than population stddev")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	for _, tc := range []struct{ p, want float64 }{
		{0, 1}, {50, 3}, {100, 5}, {25, 2},
	} {
		got, err := Percentile(xs, tc.p)
		if err != nil || !almostEq(got, tc.want) {
			t.Fatalf("P%v = %v (%v), want %v", tc.p, got, err, tc.want)
		}
	}
	// Interpolation between ranks.
	got, err := Percentile([]float64{1, 2}, 50)
	if err != nil || !almostEq(got, 1.5) {
		t.Fatalf("P50 of {1,2} = %v, want 1.5", got)
	}
	if _, err := Percentile(nil, 50); err == nil {
		t.Fatal("Percentile(nil) accepted")
	}
	if _, err := Percentile(xs, 101); err == nil {
		t.Fatal("p=101 accepted")
	}
	// Input must not be mutated.
	orig := []float64{3, 1, 2}
	Percentile(orig, 50)
	if orig[0] != 3 || orig[1] != 1 || orig[2] != 2 {
		t.Fatal("Percentile mutated its input")
	}
	// Single element.
	got, err = Percentile([]float64{7}, 99)
	if err != nil || got != 7 {
		t.Fatalf("single-element percentile = %v", got)
	}
}

func TestMinMax(t *testing.T) {
	min, max, err := MinMax([]float64{3, -1, 7, 2})
	if err != nil || min != -1 || max != 7 {
		t.Fatalf("MinMax = %v,%v,%v", min, max, err)
	}
	if _, _, err := MinMax(nil); err == nil {
		t.Fatal("MinMax(nil) accepted")
	}
}
