package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// registryAnalyzer enforces the scheme-registry contracts:
//
//  1. Every twl/internal/wl/<name> package that exports a type implementing
//     wl.Scheme must register it (wl.Register, or Registry.Add/MustAdd) —
//     an unregistered scheme compiles but is unreachable from the cmd tools
//     and the experiment grids, which select schemes by name.
//  2. Every concrete type implementing the bulk-write fast paths
//     (wl.RunWriter or wl.SweepWriter) must also implement wl.Checker:
//     the fast-forward engine's shortcuts are only trusted because paranoid
//     mode and the differential tests can invariant-check them
//     (DESIGN.md "Run-length fast-forward").
var registryAnalyzer = &Analyzer{
	Name: "registry",
	Doc:  "schemes must be registered; bulk writers must be invariant-checkable",
}

func init() { registryAnalyzer.Run = runRegistry }

func runRegistry(p *Package, w *World) []Diagnostic {
	wlPkg := w.wlContract(p)
	scheme := lookupInterface(wlPkg, "Scheme")
	checker := lookupInterface(wlPkg, "Checker")
	runWriter := lookupInterface(wlPkg, "RunWriter")
	sweepWriter := lookupInterface(wlPkg, "SweepWriter")
	if scheme == nil || checker == nil || runWriter == nil || sweepWriter == nil {
		return nil // wl package shape changed; the build would have caught real breakage
	}

	var diags []Diagnostic
	schemePkg := isSchemePkg(p.Path)
	registers := schemePkg && callsRegister(p)

	scope := p.Types.Scope()
	for _, name := range scope.Names() {
		obj, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || obj.IsAlias() {
			continue
		}
		named, ok := obj.Type().(*types.Named)
		if !ok {
			continue
		}
		if _, isIface := named.Underlying().(*types.Interface); isIface {
			continue
		}
		ptr := types.NewPointer(named)

		// Rule 2: bulk writers expose invariant checking.
		implBulk := types.Implements(named, runWriter) || types.Implements(ptr, runWriter) ||
			types.Implements(named, sweepWriter) || types.Implements(ptr, sweepWriter)
		if implBulk && !types.Implements(named, checker) && !types.Implements(ptr, checker) {
			diags = report(diags, p, w, registryAnalyzer, obj.Pos(),
				"%s implements a bulk-write fast path (wl.RunWriter/wl.SweepWriter) but not wl.Checker; bulk shortcuts must be invariant-checkable", name)
		}

		// Rule 1: exported schemes in scheme packages must be registered.
		if schemePkg && obj.Exported() && !registers &&
			(types.Implements(named, scheme) || types.Implements(ptr, scheme)) {
			diags = report(diags, p, w, registryAnalyzer, obj.Pos(),
				"package %s exports scheme %s but never calls wl.Register; unregistered schemes are unreachable by name", p.Path, name)
		}
	}
	return diags
}

// isSchemePkg matches twl/internal/wl/<single-segment> scheme packages.
func isSchemePkg(path string) bool {
	rest, ok := strings.CutPrefix(path, wlPath+"/")
	return ok && rest != "" && !strings.Contains(rest, "/")
}

// callsRegister reports whether any file in p calls wl.Register or a
// Registry Add/MustAdd method.
func callsRegister(p *Package) bool {
	found := false
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			obj := calleeObj(p, call)
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != wlPath {
				return true
			}
			switch obj.Name() {
			case "Register", "Add", "MustAdd":
				found = true
			}
			return !found
		})
	}
	return found
}
