package core

import (
	"testing"
)

func TestETNoiseValidation(t *testing.T) {
	dev := newDevice(t, 16, 1e6, 1)
	cfg := DefaultConfig(1)
	cfg.ETNoiseSigma = -0.1
	if _, err := New(dev, cfg); err == nil {
		t.Fatal("negative ET noise accepted")
	}
}

func TestETNoiseZeroMatchesTrue(t *testing.T) {
	dev := newDevice(t, 64, 1e6, 2)
	e, err := New(dev, DefaultConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 64; p++ {
		if e.et[p] != dev.Endurance(p) {
			t.Fatalf("noise-free ET differs from device at page %d", p)
		}
	}
}

func TestETNoisePerturbsTable(t *testing.T) {
	dev := newDevice(t, 256, 1e6, 4)
	cfg := DefaultConfig(5)
	cfg.ETNoiseSigma = 0.2
	e, err := New(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	diff := 0
	for p := 0; p < 256; p++ {
		if e.et[p] != dev.Endurance(p) {
			diff++
		}
	}
	if diff < 200 {
		t.Fatalf("only %d/256 ET entries perturbed at sigma 0.2", diff)
	}
	// Noise must not corrupt pairing validity.
	if err := e.swpt.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestETNoiseDegradesGracefully: lifetime under the repeat attack must
// decrease as the measurement error grows, but moderate noise (20%) must
// not collapse it — the toss-up ratio only needs the *ordering* of pair
// members to be roughly right.
func TestETNoiseDegradesGracefully(t *testing.T) {
	lifetime := func(sigma float64) uint64 {
		dev := newDevice(t, 128, 4000, 11)
		cfg := DefaultConfig(13)
		cfg.ETNoiseSigma = sigma
		e, err := New(dev, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var writes uint64
		for {
			e.Write(0, writes)
			writes++
			if _, failed := dev.Failed(); failed {
				return writes
			}
			if writes > 10_000_000 {
				t.Fatal("no failure")
			}
		}
	}
	exact := lifetime(0)
	noisy := lifetime(0.2)
	wild := lifetime(2.0)
	if noisy < exact/2 {
		t.Fatalf("20%% ET noise halved lifetime: %d vs %d", noisy, exact)
	}
	if wild > exact {
		t.Fatalf("wildly wrong ET (sigma 2.0) beat the exact table: %d vs %d", wild, exact)
	}
}
