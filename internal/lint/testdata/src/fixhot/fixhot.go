// Package fixhot is the allocation-budget fixture: HotAlloc carries a heap
// allocation its committed budget (testdata/fixhot.budget) does not record,
// standing in for an allocation freshly injected into a hot path.
package fixhot

// HotClean is a hot path with no heap allocations, matching its budget
// entry of zero.
//
//twl:hotpath
func HotClean(xs []int) int {
	s := 0
	for _, v := range xs {
		s += v
	}
	return s
}

// HotAlloc allocates on every call — a variable-sized make always lands on
// the heap — while its budget entry still says zero.
//
//twl:hotpath
func HotAlloc(n int) int {
	buf := make([]byte, n)
	for i := range buf {
		buf[i] = byte(i)
	}
	s := 0
	for _, b := range buf {
		s += int(b)
	}
	return s
}
