package sim

import (
	"testing"

	"twl/internal/attack"
	"twl/internal/wl"
	"twl/internal/wl/wltest"
)

// benchSchemes are the fast-forward (RunWriter/SweepWriter) schemes; the
// benchmark compares each against its own per-request baseline.
var benchSchemes = []string{"NOWL", "StartGap", "SR", "SR2", "BWL", "TWL_swp", "TWL_ap", "TWL_rand", "WRL"}

// benchLifetime times full lifetime runs (to first page failure) at the
// SmallSystem scale: 512 pages, mean endurance 5000, σ = 11%.
func benchLifetime(b *testing.B, scheme string, mode attack.Mode, disableFF bool) {
	b.Helper()
	var writes uint64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dev := wltest.NewDeviceEndurance(b, 512, 5000, 1)
		s, err := wl.Default.New(scheme, dev, 1)
		if err != nil {
			b.Fatal(err)
		}
		st, err := attack.New(attack.DefaultConfig(mode, demandPages(s), 1))
		if err != nil {
			b.Fatal(err)
		}
		src := FromAttack(st)
		b.StartTimer()
		res, err := RunLifetime(s, src, LifetimeConfig{DisableFastForward: disableFF})
		if err != nil {
			b.Fatal(err)
		}
		writes += res.DemandWrites
	}
	b.ReportMetric(float64(writes)/float64(b.N), "writes/op")
}

// BenchmarkFastForward is the hot-loop benchmark pair behind BENCH_PR2.json
// (cmd/benchff regenerates the committed numbers): each scheme × attack runs
// once through the fast-forward path and once pinned to the per-request
// path. `make check` runs this with -benchtime=1x as a smoke test.
func BenchmarkFastForward(b *testing.B) {
	for _, mode := range []attack.Mode{attack.Repeat, attack.Scan} {
		for _, scheme := range benchSchemes {
			b.Run(mode.String()+"/"+scheme+"/fast", func(b *testing.B) {
				benchLifetime(b, scheme, mode, false)
			})
			b.Run(mode.String()+"/"+scheme+"/perwrite", func(b *testing.B) {
				benchLifetime(b, scheme, mode, true)
			})
		}
	}
}
