// Package nowl implements the "no wear leveling" baseline (NOWL in the
// paper's figures): logical addresses map to physical pages identically and
// no swaps ever occur. It anchors both ends of the evaluation — the ideal
// lifetime for uniform workloads and near-zero lifetime under the repeat
// attack.
package nowl

import (
	"io"

	"twl/internal/pcm"
	"twl/internal/wl"
)

// Scheme is the identity-mapping baseline.
type Scheme struct {
	dev   *pcm.Device // snap: device state is checkpointed by the sim layer
	stats wl.Stats
}

// New returns a NOWL scheme over dev.
func New(dev *pcm.Device) *Scheme {
	return &Scheme{dev: dev}
}

// Name implements wl.Scheme.
func (s *Scheme) Name() string { return "NOWL" }

// Write implements wl.Scheme: the logical page is the physical page.
func (s *Scheme) Write(la int, tag uint64) wl.Cost {
	s.dev.Write(la, tag)
	s.stats.DemandWrites++
	return wl.Cost{DeviceWrites: 1}
}

// WriteRun implements wl.RunWriter. NOWL has no internal events, so the
// whole run is absorbed in one bulk device write (modulo mid-run failure).
//
//twl:hotpath
func (s *Scheme) WriteRun(la int, tag uint64, n int) (wl.Cost, int) {
	applied := s.dev.WriteN(la, tag, n)
	s.stats.DemandWrites += uint64(applied)
	return wl.Cost{DeviceWrites: 1}, applied
}

// WriteSweep implements wl.SweepWriter: the identity mapping turns a logical
// sweep into a physical range write.
//
//twl:hotpath
func (s *Scheme) WriteSweep(la int, tag uint64, n int) (wl.Cost, int) {
	applied := s.dev.WriteRange(la, tag, n)
	s.stats.DemandWrites += uint64(applied)
	return wl.Cost{DeviceWrites: 1}, applied
}

// Read implements wl.Scheme.
func (s *Scheme) Read(la int) (uint64, wl.Cost) {
	s.stats.DemandReads++
	return s.dev.Read(la), wl.Cost{DeviceReads: 1}
}

// Stats implements wl.Scheme.
func (s *Scheme) Stats() wl.Stats { return s.stats }

// Device implements wl.Scheme.
func (s *Scheme) Device() *pcm.Device { return s.dev }

// CheckInvariants implements wl.Checker (trivially: there is no state).
func (s *Scheme) CheckInvariants() error { return nil }

// Snapshot implements wl.Snapshotter: the only scheme state is the stats.
func (s *Scheme) Snapshot(w io.Writer) error { return s.stats.Snapshot(w) }

// Restore implements wl.Snapshotter.
func (s *Scheme) Restore(r io.Reader) error { return s.stats.Restore(r) }

func init() {
	wl.Register(wl.Registration{
		Name:  "NOWL",
		Order: 50,
		Doc:   "no wear leveling (identity mapping)",
		New: func(dev *pcm.Device, _ uint64) (wl.Scheme, error) {
			return New(dev), nil
		},
	})
}
